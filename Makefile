GO ?= go

# Pinned analysis-tool versions: CI installs exactly these; locally the
# targets run whatever is on PATH and skip (with the install hint) when the
# tool is absent, so `make ci` works on an offline machine.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Directory the determinism target writes its paired run outputs into; CI
# uploads it as a workflow artifact when the diff fails.
DETERMINISM_OUT ?= determinism-out

.PHONY: all fmt-check vet build test test-race staticcheck govulncheck \
	bench-smoke ablation-smoke determinism bench-json bench-gate \
	bench-crosscheck profile ci

all: ci

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulation is single-goroutine by design, but the race detector still
# catches unsynchronised state sneaking into the event machinery.
test-race:
	$(GO) test -race ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not on PATH; skipping (CI installs honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not on PATH; skipping (CI installs golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# One fast benchmark iteration per figure family — paper figures, extension
# figures, the overload/adversarial workloads, the scale family's
# 10000-connection point and the massive-scale family's 100k-connection point
# (on the sharded parallel kernel with one thread per host core) — exercising
# the benchmark plumbing end to end without the full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig04|Fig05|ExtThttpdEpollLoad501|ExtThttpdCompioLoad501|ExtKeepAlive|ExtOverloadKnee/thttpd-poll|ExtWorkloads/slowloris|ExtScale/conns=10000|ExtMassiveScale' -benchtime 1x -figconns 800 .

# Every ablation at a small connection count: a fast end-to-end pass through
# all server families and both dual-mechanism switching paths, so
# dispatch-loop regressions fail the workflow even when unit tests miss them.
ablation-smoke:
	$(GO) run ./cmd/sweep -ablation -connections 600 -quiet > /dev/null

# The simulation promises byte-identical output for identical inputs AND for
# any kernel thread count; run one rate figure, one multi-worker scaling
# figure, one overload-workload figure, one server-push figure and one chaos
# figure (fig 41: seeded fault injection is part of the promise) twice each
# and diff, then re-run the rate, overload, push and chaos figures on the
# sharded parallel kernel at -threads 2 and 8 and diff those against the
# sequential output. Any map iteration,
# wall-clock dependency or cross-shard ordering leak sneaking into the event
# machinery fails this before it can corrupt a figure comparison. Outputs
# stay in $(DETERMINISM_OUT) so CI can attach them to the failed workflow run.
determinism:
	@rm -rf $(DETERMINISM_OUT) && mkdir -p $(DETERMINISM_OUT)
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -quiet > $(DETERMINISM_OUT)/fig12-a.txt
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -quiet > $(DETERMINISM_OUT)/fig12-b.txt
	$(GO) run ./cmd/benchfig -fig 17 -connections 600 -workers 1,2,4 -quiet > $(DETERMINISM_OUT)/fig17-a.txt
	$(GO) run ./cmd/benchfig -fig 17 -connections 600 -workers 1,2,4 -quiet > $(DETERMINISM_OUT)/fig17-b.txt
	$(GO) run ./cmd/benchfig -fig 20 -connections 600 -percentiles -quiet > $(DETERMINISM_OUT)/fig20-a.txt
	$(GO) run ./cmd/benchfig -fig 20 -connections 600 -percentiles -quiet > $(DETERMINISM_OUT)/fig20-b.txt
	$(GO) run ./cmd/benchfig -fig 33 -connections 600 -quiet > $(DETERMINISM_OUT)/fig33-a.txt
	$(GO) run ./cmd/benchfig -fig 33 -connections 600 -quiet > $(DETERMINISM_OUT)/fig33-b.txt
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -threads 2 -quiet > $(DETERMINISM_OUT)/fig12-t2.txt
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -threads 8 -quiet > $(DETERMINISM_OUT)/fig12-t8.txt
	$(GO) run ./cmd/benchfig -fig 20 -connections 600 -percentiles -threads 2 -quiet > $(DETERMINISM_OUT)/fig20-t2.txt
	$(GO) run ./cmd/benchfig -fig 20 -connections 600 -percentiles -threads 8 -quiet > $(DETERMINISM_OUT)/fig20-t8.txt
	$(GO) run ./cmd/benchfig -fig 33 -connections 600 -threads 2 -quiet > $(DETERMINISM_OUT)/fig33-t2.txt
	$(GO) run ./cmd/benchfig -fig 33 -connections 600 -threads 8 -quiet > $(DETERMINISM_OUT)/fig33-t8.txt
	$(GO) run ./cmd/benchfig -fig 37 -connections 2000 -quiet > $(DETERMINISM_OUT)/fig37-a.txt
	$(GO) run ./cmd/benchfig -fig 37 -connections 2000 -quiet > $(DETERMINISM_OUT)/fig37-b.txt
	$(GO) run ./cmd/benchfig -fig 37 -connections 2000 -threads 2 -quiet > $(DETERMINISM_OUT)/fig37-t2.txt
	$(GO) run ./cmd/benchfig -fig 37 -connections 2000 -threads 8 -quiet > $(DETERMINISM_OUT)/fig37-t8.txt
	$(GO) run ./cmd/benchfig -fig 41 -connections 2000 -quiet > $(DETERMINISM_OUT)/fig41-a.txt
	$(GO) run ./cmd/benchfig -fig 41 -connections 2000 -quiet > $(DETERMINISM_OUT)/fig41-b.txt
	$(GO) run ./cmd/benchfig -fig 41 -connections 2000 -threads 2 -quiet > $(DETERMINISM_OUT)/fig41-t2.txt
	$(GO) run ./cmd/benchfig -fig 41 -connections 2000 -threads 8 -quiet > $(DETERMINISM_OUT)/fig41-t8.txt
	@diff $(DETERMINISM_OUT)/fig12-a.txt $(DETERMINISM_OUT)/fig12-b.txt \
		&& diff $(DETERMINISM_OUT)/fig17-a.txt $(DETERMINISM_OUT)/fig17-b.txt \
		&& diff $(DETERMINISM_OUT)/fig20-a.txt $(DETERMINISM_OUT)/fig20-b.txt \
		&& diff $(DETERMINISM_OUT)/fig33-a.txt $(DETERMINISM_OUT)/fig33-b.txt \
		&& diff $(DETERMINISM_OUT)/fig12-a.txt $(DETERMINISM_OUT)/fig12-t2.txt \
		&& diff $(DETERMINISM_OUT)/fig12-a.txt $(DETERMINISM_OUT)/fig12-t8.txt \
		&& diff $(DETERMINISM_OUT)/fig20-a.txt $(DETERMINISM_OUT)/fig20-t2.txt \
		&& diff $(DETERMINISM_OUT)/fig20-a.txt $(DETERMINISM_OUT)/fig20-t8.txt \
		&& diff $(DETERMINISM_OUT)/fig33-a.txt $(DETERMINISM_OUT)/fig33-t2.txt \
		&& diff $(DETERMINISM_OUT)/fig33-a.txt $(DETERMINISM_OUT)/fig33-t8.txt \
		&& diff $(DETERMINISM_OUT)/fig37-a.txt $(DETERMINISM_OUT)/fig37-b.txt \
		&& diff $(DETERMINISM_OUT)/fig37-a.txt $(DETERMINISM_OUT)/fig37-t2.txt \
		&& diff $(DETERMINISM_OUT)/fig37-a.txt $(DETERMINISM_OUT)/fig37-t8.txt \
		&& diff $(DETERMINISM_OUT)/fig41-a.txt $(DETERMINISM_OUT)/fig41-b.txt \
		&& diff $(DETERMINISM_OUT)/fig41-a.txt $(DETERMINISM_OUT)/fig41-t2.txt \
		&& diff $(DETERMINISM_OUT)/fig41-a.txt $(DETERMINISM_OUT)/fig41-t8.txt \
		&& echo "determinism: OK (incl. -threads 2/8 matrix)"

# Refresh the committed benchmark baseline: the key figure points' reply
# rates, p99 latencies and ns/op. Run this (and commit the result) in any PR
# that intentionally moves performance.
bench-json:
	$(GO) run ./cmd/benchgate -emit BENCH_PR10.json

# Gate the working tree against the committed baseline: emit a fresh
# candidate and fail on >5% regression in any simulated metric (reply rate,
# p99). Wall-clock ns/op is a gross-slowdown tripwire only (fail past 2x —
# wall clock jitters even same-machine), and it only means anything when the
# baseline was emitted on this machine; CI runs
# `make bench-gate TIME_TOLERANCE=0` to disable it (different hardware).
TIME_TOLERANCE ?= 1.0
bench-gate:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/benchgate -emit $$tmp -quiet && \
	$(GO) run ./cmd/benchgate -baseline BENCH_PR10.json -candidate $$tmp -time-tolerance $(TIME_TOLERANCE); \
	status=$$?; rm -f $$tmp; exit $$status

# Zero-tolerance parallel determinism gate on the benchmark set: every gated
# point runs once sequentially and once on the sharded kernel with 4 threads,
# and any difference in a simulated metric (reply rate, p99, err%) fails.
# This is the benchmark-level counterpart of `make determinism`'s figure-level
# byte diffs.
bench-crosscheck:
	$(GO) run ./cmd/benchgate -crosscheck 4

# Profile the hot paths: regenerate a representative figure under the CPU,
# heap, mutex-contention and blocking profilers — on the sharded parallel
# kernel, so shard-barrier and ring contention is visible in the mutex/block
# profiles — and leave the pprof files (plus the figure output) in
# $(PROFILE_OUT). Inspect with `go tool pprof $(PROFILE_OUT)/cpu.pprof` (or
# mutex.pprof / block.pprof for synchronization cost).
# CI runs this after a bench-gate failure and uploads the directory, so a
# regression report always ships with the evidence needed to chase it.
PROFILE_OUT ?= profile-out
PROFILE_THREADS ?= 2
profile:
	@rm -rf $(PROFILE_OUT) && mkdir -p $(PROFILE_OUT)
	$(GO) run ./cmd/benchfig -fig 16 -connections 2000 -threads $(PROFILE_THREADS) -quiet \
		-cpuprofile $(PROFILE_OUT)/cpu.pprof -memprofile $(PROFILE_OUT)/mem.pprof \
		-mutexprofile $(PROFILE_OUT)/mutex.pprof -blockprofile $(PROFILE_OUT)/block.pprof \
		> $(PROFILE_OUT)/fig16.txt
	@echo "profiles written to $(PROFILE_OUT)/ (cpu.pprof, mem.pprof, mutex.pprof, block.pprof)"

ci: fmt-check vet staticcheck govulncheck build test bench-smoke ablation-smoke determinism
