GO ?= go

.PHONY: all fmt-check vet build test test-race bench-smoke ablation-smoke determinism ci

all: ci

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulation is single-goroutine by design, but the race detector still
# catches unsynchronised state sneaking into the event machinery.
test-race:
	$(GO) test -race ./...

# One fast benchmark iteration per figure family: exercises the benchmark
# plumbing end to end without the full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig04|Fig05|ExtThttpdEpollLoad501' -benchtime 1x -figconns 800 .

# Every ablation at a small connection count: a fast end-to-end pass through
# all server families and both dual-mechanism switching paths, so
# dispatch-loop regressions fail the workflow even when unit tests miss them.
ablation-smoke:
	$(GO) run ./cmd/sweep -ablation -connections 600 -quiet > /dev/null

# The simulation promises byte-identical output for identical inputs; run one
# rate figure and one multi-worker scaling figure twice and diff. Any map
# iteration or wall-clock dependency sneaking into the event machinery fails
# this before it can corrupt a figure comparison.
determinism:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -quiet > $$tmp/a.txt; \
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -quiet > $$tmp/b.txt; \
	$(GO) run ./cmd/benchfig -fig 17 -connections 600 -workers 1,2,4 -quiet > $$tmp/c.txt; \
	$(GO) run ./cmd/benchfig -fig 17 -connections 600 -workers 1,2,4 -quiet > $$tmp/d.txt; \
	diff $$tmp/a.txt $$tmp/b.txt && diff $$tmp/c.txt $$tmp/d.txt && rm -rf $$tmp && echo "determinism: OK"

ci: fmt-check vet build test bench-smoke ablation-smoke determinism
