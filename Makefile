GO ?= go

.PHONY: all fmt-check vet build test bench-smoke ci

all: ci

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One fast benchmark iteration per figure family: exercises the benchmark
# plumbing end to end without the full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig04|Fig05|ExtThttpdEpollLoad501' -benchtime 1x -figconns 800 .

ci: fmt-check vet build test bench-smoke
