GO ?= go

.PHONY: all fmt-check vet build test test-race bench-smoke ablation-smoke ci

all: ci

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulation is single-goroutine by design, but the race detector still
# catches unsynchronised state sneaking into the event machinery.
test-race:
	$(GO) test -race ./...

# One fast benchmark iteration per figure family: exercises the benchmark
# plumbing end to end without the full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig04|Fig05|ExtThttpdEpollLoad501' -benchtime 1x -figconns 800 .

# Every ablation at a small connection count: a fast end-to-end pass through
# all server families and both dual-mechanism switching paths, so
# dispatch-loop regressions fail the workflow even when unit tests miss them.
ablation-smoke:
	$(GO) run ./cmd/sweep -ablation -connections 600 -quiet > /dev/null

ci: fmt-check vet build test bench-smoke ablation-smoke
