GO ?= go

# Pinned analysis-tool versions: CI installs exactly these; locally the
# targets run whatever is on PATH and skip (with the install hint) when the
# tool is absent, so `make ci` works on an offline machine.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Directory the determinism target writes its paired run outputs into; CI
# uploads it as a workflow artifact when the diff fails.
DETERMINISM_OUT ?= determinism-out

.PHONY: all fmt-check vet build test test-race staticcheck govulncheck \
	bench-smoke ablation-smoke determinism bench-json bench-gate profile ci

all: ci

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulation is single-goroutine by design, but the race detector still
# catches unsynchronised state sneaking into the event machinery.
test-race:
	$(GO) test -race ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not on PATH; skipping (CI installs honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not on PATH; skipping (CI installs golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# One fast benchmark iteration per figure family — paper figures, extension
# figures, the overload/adversarial workloads and the scale family's
# 10000-connection point — exercising the benchmark plumbing end to end
# without the full sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig04|Fig05|ExtThttpdEpollLoad501|ExtOverloadKnee/thttpd-poll|ExtWorkloads/slowloris|ExtScale/conns=10000' -benchtime 1x -figconns 800 .

# Every ablation at a small connection count: a fast end-to-end pass through
# all server families and both dual-mechanism switching paths, so
# dispatch-loop regressions fail the workflow even when unit tests miss them.
ablation-smoke:
	$(GO) run ./cmd/sweep -ablation -connections 600 -quiet > /dev/null

# The simulation promises byte-identical output for identical inputs; run one
# rate figure, one multi-worker scaling figure and one overload-workload
# figure twice each and diff. Any map iteration or wall-clock dependency
# sneaking into the event machinery fails this before it can corrupt a figure
# comparison. Outputs stay in $(DETERMINISM_OUT) so CI can attach them to the
# failed workflow run.
determinism:
	@rm -rf $(DETERMINISM_OUT) && mkdir -p $(DETERMINISM_OUT)
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -quiet > $(DETERMINISM_OUT)/fig12-a.txt
	$(GO) run ./cmd/benchfig -fig 12 -connections 600 -quiet > $(DETERMINISM_OUT)/fig12-b.txt
	$(GO) run ./cmd/benchfig -fig 17 -connections 600 -workers 1,2,4 -quiet > $(DETERMINISM_OUT)/fig17-a.txt
	$(GO) run ./cmd/benchfig -fig 17 -connections 600 -workers 1,2,4 -quiet > $(DETERMINISM_OUT)/fig17-b.txt
	$(GO) run ./cmd/benchfig -fig 20 -connections 600 -percentiles -quiet > $(DETERMINISM_OUT)/fig20-a.txt
	$(GO) run ./cmd/benchfig -fig 20 -connections 600 -percentiles -quiet > $(DETERMINISM_OUT)/fig20-b.txt
	@diff $(DETERMINISM_OUT)/fig12-a.txt $(DETERMINISM_OUT)/fig12-b.txt \
		&& diff $(DETERMINISM_OUT)/fig17-a.txt $(DETERMINISM_OUT)/fig17-b.txt \
		&& diff $(DETERMINISM_OUT)/fig20-a.txt $(DETERMINISM_OUT)/fig20-b.txt \
		&& echo "determinism: OK"

# Refresh the committed benchmark baseline: the key figure points' reply
# rates, p99 latencies and ns/op. Run this (and commit the result) in any PR
# that intentionally moves performance.
bench-json:
	$(GO) run ./cmd/benchgate -emit BENCH_PR5.json

# Gate the working tree against the committed baseline: emit a fresh
# candidate and fail on >5% regression in any simulated metric (reply rate,
# p99). Wall-clock ns/op is a gross-slowdown tripwire only (fail past 2x —
# wall clock jitters even same-machine), and it only means anything when the
# baseline was emitted on this machine; CI runs
# `make bench-gate TIME_TOLERANCE=0` to disable it (different hardware).
TIME_TOLERANCE ?= 1.0
bench-gate:
	@tmp=$$(mktemp); \
	$(GO) run ./cmd/benchgate -emit $$tmp -quiet && \
	$(GO) run ./cmd/benchgate -baseline BENCH_PR5.json -candidate $$tmp -time-tolerance $(TIME_TOLERANCE); \
	status=$$?; rm -f $$tmp; exit $$status

# Profile the hot paths: regenerate a representative figure under the CPU
# and heap profilers and leave the pprof files (plus the figure output) in
# $(PROFILE_OUT). Inspect with `go tool pprof $(PROFILE_OUT)/cpu.pprof`.
# CI runs this after a bench-gate failure and uploads the directory, so a
# regression report always ships with the evidence needed to chase it.
PROFILE_OUT ?= profile-out
profile:
	@rm -rf $(PROFILE_OUT) && mkdir -p $(PROFILE_OUT)
	$(GO) run ./cmd/benchfig -fig 16 -connections 2000 -quiet \
		-cpuprofile $(PROFILE_OUT)/cpu.pprof -memprofile $(PROFILE_OUT)/mem.pprof \
		> $(PROFILE_OUT)/fig16.txt
	@echo "profiles written to $(PROFILE_OUT)/ (cpu.pprof, mem.pprof)"

ci: fmt-check vet staticcheck govulncheck build test bench-smoke ablation-smoke determinism
