// Package repro's top-level benchmarks regenerate every figure of the paper's
// evaluation (Figures 4 through 14) plus the ablation studies listed in
// DESIGN.md. Each benchmark iteration runs one complete benchmark point
// (server + load generator inside the discrete-event simulation) and reports,
// alongside ns/op, the reproduction's own metrics as custom units:
//
//	replies/s      average reply rate (what Figures 4-9 and 11-13 plot)
//	err%           failed connection percentage (Figure 10)
//	median-ms      median connection time (Figure 14)
//
// Reduced-size runs are used so `go test -bench=. -benchmem` finishes in
// minutes; pass -figconns to scale up (the paper used 35000 connections per
// point, cf. cmd/benchfig and cmd/sweep).
package repro

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/servers/httpcore"
	"repro/internal/servers/prefork"
)

var figConns = flag.Int("figconns", 2500, "benchmark connections per figure point in bench runs")

// benchPoint runs one benchmark point per iteration and reports its metrics.
func benchPoint(b *testing.B, server experiments.ServerKind, rate float64, inactive int) {
	b.Helper()
	var last experiments.RunResult
	for i := 0; i < b.N; i++ {
		spec := experiments.RunSpec{
			Server:      server,
			RequestRate: rate,
			Inactive:    inactive,
			Connections: *figConns,
			Seed:        int64(i + 1),
		}
		last = experiments.Run(spec)
	}
	b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
	b.ReportMetric(last.Load.ErrorPercent, "err%")
	b.ReportMetric(last.Load.MedianLatencyMs, "median-ms")
	b.ReportMetric(last.Latency.P99, "p99-ms")
	b.ReportMetric(100*last.CPUUtilization, "cpu%")
}

// benchFigure sweeps the three representative rates of a figure's x axis (low,
// middle, high) as sub-benchmarks.
func benchFigure(b *testing.B, server experiments.ServerKind, inactive int) {
	b.Helper()
	for _, rate := range []float64{500, 800, 1100} {
		rate := rate
		b.Run(fmt.Sprintf("rate=%.0f", rate), func(b *testing.B) {
			benchPoint(b, server, rate, inactive)
		})
	}
}

// Figures 4, 6, 8: stock thttpd on poll() at inactive loads 1, 251, 501.
func BenchmarkFig04ThttpdPollLoad1(b *testing.B)   { benchFigure(b, experiments.ServerThttpdPoll, 1) }
func BenchmarkFig06ThttpdPollLoad251(b *testing.B) { benchFigure(b, experiments.ServerThttpdPoll, 251) }
func BenchmarkFig08ThttpdPollLoad501(b *testing.B) { benchFigure(b, experiments.ServerThttpdPoll, 501) }

// Figures 5, 7, 9: thttpd on /dev/poll at inactive loads 1, 251, 501.
func BenchmarkFig05ThttpdDevpollLoad1(b *testing.B) {
	benchFigure(b, experiments.ServerThttpdDevPoll, 1)
}
func BenchmarkFig07ThttpdDevpollLoad251(b *testing.B) {
	benchFigure(b, experiments.ServerThttpdDevPoll, 251)
}
func BenchmarkFig09ThttpdDevpollLoad501(b *testing.B) {
	benchFigure(b, experiments.ServerThttpdDevPoll, 501)
}

// Figure 10: error percentage, poll vs /dev/poll at loads 251 and 501. The
// err% metric of each sub-benchmark is the figure's y value.
func BenchmarkFig10ErrorRate(b *testing.B) {
	curves := []struct {
		name     string
		server   experiments.ServerKind
		inactive int
	}{
		{"poll-load251", experiments.ServerThttpdPoll, 251},
		{"devpoll-load251", experiments.ServerThttpdDevPoll, 251},
		{"poll-load501", experiments.ServerThttpdPoll, 501},
		{"devpoll-load501", experiments.ServerThttpdDevPoll, 501},
	}
	for _, c := range curves {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchPoint(b, c.server, 1000, c.inactive)
		})
	}
}

// Figures 11, 12, 13: phhttpd (RT signals) at inactive loads 1, 251, 501.
func BenchmarkFig11PhhttpdLoad1(b *testing.B)   { benchFigure(b, experiments.ServerPhhttpd, 1) }
func BenchmarkFig12PhhttpdLoad251(b *testing.B) { benchFigure(b, experiments.ServerPhhttpd, 251) }
func BenchmarkFig13PhhttpdLoad501(b *testing.B) { benchFigure(b, experiments.ServerPhhttpd, 501) }

// Figure 14: median connection time at load 251 for the three servers; the
// median-ms metric of each sub-benchmark is the figure's y value.
func BenchmarkFig14MedianLatency(b *testing.B) {
	curves := []struct {
		name   string
		server experiments.ServerKind
	}{
		{"devpoll", experiments.ServerThttpdDevPoll},
		{"normal-poll", experiments.ServerThttpdPoll},
		{"phhttpd", experiments.ServerPhhttpd},
	}
	for _, c := range curves {
		c := c
		for _, rate := range []float64{700, 1000} {
			rate := rate
			b.Run(fmt.Sprintf("%s/rate=%.0f", c.name, rate), func(b *testing.B) {
				benchPoint(b, c.server, rate, 251)
			})
		}
	}
}

// Extension: the hybrid server of §4, which the paper could not evaluate.
func BenchmarkExtHybridLoad501(b *testing.B) { benchFigure(b, experiments.ServerHybrid, 501) }

// Extensions: thttpd on epoll, the mechanism Linux ultimately adopted, in both
// trigger modes, plus the hybrid server running epoll as its bulk poller
// (Figures 15 and 16 of the extension set).
func BenchmarkExtThttpdEpollLoad501(b *testing.B) {
	benchFigure(b, experiments.ServerThttpdEpoll, 501)
}
func BenchmarkExtThttpdEpollETLoad501(b *testing.B) {
	benchFigure(b, experiments.ServerThttpdEpollET, 501)
}
func BenchmarkExtHybridEpollLoad501(b *testing.B) {
	benchFigure(b, experiments.ServerHybridEpoll, 501)
}

// Extension: thttpd on the completion-ring mechanism (compio), the
// io_uring-shaped fifth backend — batched submission, per-batch completion
// posting, registered buffers.
func BenchmarkExtThttpdCompioLoad501(b *testing.B) {
	benchFigure(b, experiments.ServerThttpdCompio, 501)
}

// Extension: the persistent-connection hot path (figure-32 family). Each
// sub-benchmark runs thttpd/epoll at the overload knee under 501 inactive
// connections; the variants walk the axes one at a time — HTTP/1.0 baseline,
// serial keep-alive, pipelined keep-alive, and pipelined keep-alive with the
// mmap response cache and sendfile write path. Connections counts offered
// requests, so every variant serves the same request budget.
func BenchmarkExtKeepAlive(b *testing.B) {
	variants := []struct {
		name string
		spec experiments.RunSpec
	}{
		{"http10", experiments.RunSpec{}},
		{"keepalive", experiments.RunSpec{
			HTTP:            httpcore.Options{KeepAlive: true},
			RequestsPerConn: experiments.KeepAliveRequests,
		}},
		{"pipelined", experiments.RunSpec{
			HTTP:            httpcore.Options{KeepAlive: true},
			RequestsPerConn: experiments.KeepAliveRequests,
			PipelineDepth:   experiments.KeepAliveRequests,
		}},
		{"cached-sendfile", experiments.RunSpec{
			HTTP: httpcore.Options{
				KeepAlive: true,
				CacheKB:   64,
				WriteMode: httpcore.WriteSendfile,
			},
			RequestsPerConn: experiments.KeepAliveRequests,
			PipelineDepth:   experiments.KeepAliveRequests,
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var last experiments.RunResult
			for i := 0; i < b.N; i++ {
				spec := v.spec
				spec.Server = experiments.ServerThttpdEpoll
				spec.RequestRate = 1300
				spec.Inactive = 501
				spec.Connections = *figConns
				spec.Seed = int64(i + 1)
				last = experiments.Run(spec)
			}
			b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
			b.ReportMetric(last.Load.ErrorPercent, "err%")
			b.ReportMetric(last.Load.MedianLatencyMs, "median-ms")
			b.ReportMetric(last.Latency.P99, "p99-ms")
			b.ReportMetric(100*last.CPUUtilization, "cpu%")
		})
	}
}

// Extension: the prefork multi-worker server (figure-17 family). Each
// sub-benchmark runs N epoll workers on N simulated CPUs under an offered
// load well above single-worker capacity, in both accept-distribution modes;
// replies/s is the scaling curve's y value.
func BenchmarkExtPreforkScaling(b *testing.B) {
	for _, mode := range []prefork.Mode{prefork.ModeReuseport, prefork.ModeHandoff} {
		mode := mode
		for _, workers := range []int{1, 2, 4} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				var last experiments.RunResult
				for i := 0; i < b.N; i++ {
					spec := experiments.RunSpec{
						Server:      experiments.PreforkKind(workers),
						RequestRate: 3000,
						Inactive:    1500,
						Connections: *figConns,
						Seed:        int64(i + 1),
						PreforkMode: mode,
					}
					last = experiments.Run(spec)
				}
				b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
				b.ReportMetric(last.Load.ErrorPercent, "err%")
				b.ReportMetric(100*last.CPUUtilization, "cpu%")
			})
		}
	}
}

// Extension: the overload figure family (19+). One sub-benchmark per
// mechanism at a rate below and one past the uniprocessor knee, under the
// paper's constant workload; replies/s and p99-ms are the overload figures'
// two y values.
func BenchmarkExtOverloadKnee(b *testing.B) {
	servers := []experiments.ServerKind{
		experiments.ServerThttpdPoll,
		experiments.ServerThttpdDevPoll,
		experiments.ServerPhhttpd,
		experiments.ServerHybrid,
	}
	for _, server := range servers {
		server := server
		for _, rate := range []float64{700, 1300} {
			rate := rate
			b.Run(fmt.Sprintf("%s/rate=%.0f", server, rate), func(b *testing.B) {
				benchPoint(b, server, rate, 251)
			})
		}
	}
}

// Extension: the adversarial workload scenarios (figures 20-24). Each
// sub-benchmark runs one mechanism at a fixed mid-sweep rate under a named
// loadgen workload; the spread between a mechanism's constant-workload
// replies/s and its slowloris/stalled numbers is the adversarial tax.
func BenchmarkExtWorkloads(b *testing.B) {
	for _, workload := range []string{"flashcrowd", "pareto", "slowloris", "stalled", "wan"} {
		workload := workload
		for _, server := range []experiments.ServerKind{
			experiments.ServerThttpdPoll,
			experiments.ServerThttpdDevPoll,
		} {
			server := server
			b.Run(fmt.Sprintf("%s/%s", workload, server), func(b *testing.B) {
				var last experiments.RunResult
				for i := 0; i < b.N; i++ {
					spec := experiments.RunSpec{
						Server:      server,
						RequestRate: 1000,
						Inactive:    251,
						Connections: *figConns,
						Seed:        int64(i + 1),
						Workload:    workload,
					}
					last = experiments.Run(spec)
				}
				b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
				b.ReportMetric(last.Load.ErrorPercent, "err%")
				b.ReportMetric(last.Latency.P99, "p99-ms")
				b.ReportMetric(last.ServiceLatency.P99, "svc-p99-ms")
			})
		}
	}
}

// Extension: the scale family (figures 26-28). One sub-benchmark per
// connection count at a mid-sweep rate for a representative mechanism pair:
// the figures the optimized hot paths exist to make routine. Unlike the other
// benchmarks these ignore -figconns — the connection count IS the x axis.
func BenchmarkExtScale(b *testing.B) {
	for _, conns := range []int{10000, 20000, 30000} {
		conns := conns
		for _, server := range []experiments.ServerKind{
			experiments.ServerThttpdPoll,
			experiments.ServerThttpdEpoll,
		} {
			server := server
			b.Run(fmt.Sprintf("conns=%d/%s", conns, server), func(b *testing.B) {
				var last experiments.RunResult
				for i := 0; i < b.N; i++ {
					spec := experiments.RunSpec{
						Server:      server,
						RequestRate: 1000,
						Inactive:    251,
						Connections: conns,
						Seed:        int64(i + 1),
					}
					last = experiments.Run(spec)
				}
				b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
				b.ReportMetric(last.Load.ErrorPercent, "err%")
				b.ReportMetric(last.Latency.P99, "p99-ms")
				b.ReportMetric(100*last.CPUUtilization, "cpu%")
			})
		}
	}
}

// Extension: the massive-scale family's anchor (figures 29-31) — the
// 100k-connection point on the cheapest sustaining mechanism, run on the
// sharded parallel kernel with one thread per host core. This is the
// smoke-level proof that the parallel engine survives a full-size point; the
// simulated metrics it reports are bit-identical to a -threads 1 run. Like
// ExtScale it ignores -figconns — the connection count is the point. The
// port space widens the way the massive-scale figures' own does: TIME-WAIT
// holds rate x 61s of ports at this size.
func BenchmarkExtMassiveScale(b *testing.B) {
	netCfg := netsim.DefaultConfig()
	netCfg.PortSpace = 2*100000 + 100000
	b.Run("conns=100000/thttpd-epoll", func(b *testing.B) {
		var last experiments.RunResult
		for i := 0; i < b.N; i++ {
			last = experiments.Run(experiments.RunSpec{
				Server:      experiments.ServerThttpdEpoll,
				RequestRate: 1000,
				Inactive:    251,
				Connections: 100000,
				Threads:     runtime.NumCPU(),
				Network:     &netCfg,
				Seed:        int64(i + 1),
			})
		}
		b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
		b.ReportMetric(last.Load.ErrorPercent, "err%")
		b.ReportMetric(last.Latency.P99, "p99-ms")
		b.ReportMetric(float64(last.Threads), "threads")
	})
}

// Ablation benchmarks: one sub-benchmark per variant, so `-bench Ablation`
// prints the design-choice comparisons from DESIGN.md.
func BenchmarkAblation(b *testing.B) {
	for _, a := range experiments.Ablations(*figConns) {
		a := a
		for _, v := range a.Variants {
			v := v
			b.Run(a.ID+"/"+v.Label, func(b *testing.B) {
				var last experiments.RunResult
				for i := 0; i < b.N; i++ {
					spec := v.Spec
					spec.Seed = int64(i + 1)
					last = experiments.Run(spec)
				}
				b.ReportMetric(last.Load.ReplyRate.Mean, "replies/s")
				b.ReportMetric(last.Load.ErrorPercent, "err%")
				b.ReportMetric(last.Load.MedianLatencyMs, "median-ms")
			})
		}
	}
}

// Micro-benchmarks of the mechanisms themselves (cost per wait as the idle
// interest set grows), complementing the end-to-end figure benchmarks.
func BenchmarkMechanismWaitCost(b *testing.B) {
	for _, inactive := range []int{64, 512} {
		inactive := inactive
		for _, server := range []experiments.ServerKind{
			experiments.ServerThttpdPoll,
			experiments.ServerThttpdDevPoll,
			experiments.ServerThttpdEpoll,
			experiments.ServerThttpdEpollET,
		} {
			server := server
			b.Run(fmt.Sprintf("%s/idle=%d", server, inactive), func(b *testing.B) {
				var last experiments.RunResult
				for i := 0; i < b.N; i++ {
					spec := experiments.RunSpec{
						Server:      server,
						RequestRate: 300, // light load: the wait path dominates
						Inactive:    inactive,
						Connections: 600,
						Seed:        int64(i + 1),
					}
					last = experiments.Run(spec)
				}
				perWait := float64(0)
				if last.Primary.Waits > 0 {
					perWait = float64(last.Primary.DriverPolls) / float64(last.Primary.Waits)
				}
				b.ReportMetric(perWait, "driver-polls/wait")
				b.ReportMetric(100*last.CPUUtilization, "cpu%")
			})
		}
	}
}
