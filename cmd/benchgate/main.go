// Command benchgate records and gates the repository's benchmark trajectory.
//
// In emit mode it runs the key figure benchmarks — representative points of
// the paper's figures, the extension figures, one overload point per
// workload scenario and the scale family's 10k-100k-connection points — and
// writes one JSON entry per point: the simulated reply rate and p99
// connection latency (bit-deterministic for a given seed and connection
// count) plus the measured wall-clock cost (ns/op, noisy) and heap
// allocation count (allocs_per_op, near-deterministic) of the run. In gate
// mode it compares a candidate file against the committed baseline and exits
// non-zero on regression: a reply rate more than -tolerance below the
// baseline, a p99 more than -tolerance above it, an allocation count more
// than -alloc-tolerance above it, or a ns/op more than -time-tolerance above
// it. The simulated gates are tight because those numbers only move when
// the simulation's behavior moves; the allocation gate is nearly as tight
// (the count is a property of the code path, not the machine); the
// wall-clock gate is looser, and only meaningful when baseline and candidate
// ran on the same machine — pass -time-tolerance 0 to disable it when
// comparing a committed baseline on different hardware (CI does).
//
// In cross-check mode (-crosscheck N) it instead runs every point twice —
// once sequentially and once on the sharded parallel kernel with N threads —
// and fails if any deterministic metric (reply rate, p99, error percentage)
// differs at all: the parallel engine promises bit-equal simulation results,
// so the tolerance there is exactly zero.
//
// Usage:
//
//	benchgate -emit BENCH_PR10.json         # refresh the baseline
//	benchgate -baseline BENCH_PR10.json -candidate new.json
//	benchgate -crosscheck 4                 # parallel == sequential, bit for bit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/servers/httpcore"
)

// Entry is one gated benchmark point.
type Entry struct {
	ID        string  `json:"id"`
	RepliesPS float64 `json:"replies_per_sec"`
	P99Ms     float64 `json:"p99_ms"`
	ErrPct    float64 `json:"err_pct"`
	// Threads is the kernel thread count the point actually ran with (1 for
	// the sequential engine). The simulated metrics are bit-identical across
	// thread counts — that invariant is what -crosscheck enforces — so the
	// field documents the run, it does not shift the gate.
	Threads int   `json:"threads"`
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of one run (the minimum of
	// the timed repetitions, so one-time warmup does not inflate it). It is
	// a property of the executed code path, not of the machine, so the gate
	// holds it to a tight tolerance even in CI.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// File is the benchmark baseline schema.
type File struct {
	Schema      int     `json:"schema"`
	Connections int     `json:"connections"`
	Seed        int64   `json:"seed"`
	Entries     []Entry `json:"entries"`
}

// points returns the gated benchmark set: the id names the figure point, the
// spec runs it. The set mirrors bench_test.go's key benchmarks at a size that
// keeps the whole emit run under a minute.
func points(connections int, seed int64) []struct {
	id   string
	spec experiments.RunSpec
} {
	var out []struct {
		id   string
		spec experiments.RunSpec
	}
	add := func(id string, spec experiments.RunSpec) {
		if spec.Connections == 0 {
			spec.Connections = connections
		}
		spec.Seed = seed
		out = append(out, struct {
			id   string
			spec experiments.RunSpec
		}{id, spec})
	}

	// The paper's figure families: each mechanism at its heaviest inactive
	// load, mid-sweep rate (the knee region is where regressions show).
	for _, p := range []struct {
		name     string
		server   experiments.ServerKind
		inactive int
	}{
		{"fig08-poll-load501", experiments.ServerThttpdPoll, 501},
		{"fig09-devpoll-load501", experiments.ServerThttpdDevPoll, 501},
		{"fig13-phhttpd-load501", experiments.ServerPhhttpd, 501},
		{"ext-hybrid-load501", experiments.ServerHybrid, 501},
		{"ext-epoll-load501", experiments.ServerThttpdEpoll, 501},
		{"ext-epoll-et-load501", experiments.ServerThttpdEpollET, 501},
		{"ext-compio-load501", experiments.ServerThttpdCompio, 501},
	} {
		add(p.name+"-rate1000", experiments.RunSpec{
			Server: p.server, RequestRate: 1000, Inactive: p.inactive,
		})
	}

	// Prefork worker scaling (figure 17): the multi-CPU speedup.
	for _, workers := range []int{1, 2, 4} {
		add(fmt.Sprintf("ext-prefork%d-rate3000", workers), experiments.RunSpec{
			Server: experiments.PreforkKind(workers), RequestRate: 3000, Inactive: 500,
		})
	}

	// The scale family (figures 26-28): the 10k/20k/30k-connection points on
	// the cheapest sustaining mechanism, plus the collapsing baseline at 10k.
	// These pin their own connection counts — the count is the point.
	for _, conns := range []int{10000, 20000, 30000} {
		add(fmt.Sprintf("scale-%d-epoll-rate1000", conns), experiments.RunSpec{
			Server: experiments.ServerThttpdEpoll, RequestRate: 1000, Inactive: 251,
			Connections: conns,
		})
	}
	add("scale-10000-poll-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdPoll, RequestRate: 1000, Inactive: 251,
		Connections: 10000,
	})
	add("scale-10000-compio-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdCompio, RequestRate: 1000, Inactive: 251,
		Connections: 10000,
	})

	// The massive-scale anchor (figures 29-31): the 100k-connection point on
	// the cheapest sustaining mechanism. TIME-WAIT holds rate x 61s of ports
	// at this size, so the point widens the port space the way the
	// massive-scale figures themselves do.
	massiveNet := netsim.DefaultConfig()
	massiveNet.PortSpace = 2*100000 + 100000
	add("scale-100000-epoll-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1000, Inactive: 251,
		Connections: 100000, Network: &massiveNet,
	})
	add("scale-100000-compio-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdCompio, RequestRate: 1000, Inactive: 251,
		Connections: 100000, Network: &massiveNet,
	})

	// One overload point per workload scenario (figures 19-24), past the
	// knee, where the latency distribution carries the signal. Most run on
	// devpoll; the stalled-reader scenario runs on poll(), the mechanism that
	// rescans the write-parked background entries every loop (on devpoll the
	// jammed connections are invisible after their one pre-benchmark serve).
	for _, w := range loadgen.Workloads() {
		// The push and dhtchurn workloads drive their own server families;
		// their gated points follow below.
		if w.Kind != loadgen.KindRequest {
			continue
		}
		server := experiments.ServerThttpdDevPoll
		if w.Name == "stalled" {
			server = experiments.ServerThttpdPoll
		}
		add(fmt.Sprintf("overload-%s-%s-rate1300", w.Name, server), experiments.RunSpec{
			Server: server, RequestRate: 1300, Inactive: 251,
			Workload: w.Name,
		})
	}

	// The mostly-idle families (figures 36-39): the push daemon fanning out
	// over a 100k-member interest set of which well under 5% are active per
	// tick (the figure-37 acceptance point), and the datagram node at its
	// churn knee. Both pin their own connection counts — the idle population
	// is the point — and the push entry widens the port space like the other
	// 100k anchors.
	add("push-100k-idle-epoll-rate1000", experiments.RunSpec{
		Server: "push-epoll", Workload: "push", RequestRate: 1000,
		Connections: 100000, Network: &massiveNet,
	})
	add("dhtchurn-knee-epoll-rate2000", experiments.RunSpec{
		Server: "dht-epoll", Workload: "dhtchurn", RequestRate: 2000,
		Connections: 4000,
	})

	// The persistent-connection hot path (figure-32 family): the epoll knee
	// point with the axes turned on one at a time — serial keep-alive,
	// pipelined keep-alive, and pipelined keep-alive with the response cache
	// and sendfile write path — plus pipelined keep-alive at the 10k and 100k
	// scale anchors. Connections counts offered requests for these points, so
	// they serve the same budget as their HTTP/1.0 siblings above.
	ka := httpcore.Options{KeepAlive: true}
	kaHot := httpcore.Options{KeepAlive: true, CacheKB: 64, WriteMode: httpcore.WriteSendfile}
	add("ext-keepalive-epoll-load501-rate1300", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1300, Inactive: 501,
		HTTP: ka, RequestsPerConn: experiments.KeepAliveRequests,
	})
	add("ext-pipelined-epoll-load501-rate1300", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1300, Inactive: 501,
		HTTP: ka, RequestsPerConn: experiments.KeepAliveRequests,
		PipelineDepth: experiments.KeepAliveRequests,
	})
	add("ext-cached-sendfile-epoll-load501-rate1300", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1300, Inactive: 501,
		HTTP: kaHot, RequestsPerConn: experiments.KeepAliveRequests,
		PipelineDepth: experiments.KeepAliveRequests,
	})
	add("scale-10000-epoll-keepalive-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1000, Inactive: 251,
		Connections: 10000,
		HTTP:        ka, RequestsPerConn: experiments.KeepAliveRequests,
		PipelineDepth: experiments.KeepAliveRequests,
	})
	add("scale-100000-epoll-keepalive-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1000, Inactive: 251,
		Connections: 100000, Network: &massiveNet,
		HTTP: ka, RequestsPerConn: experiments.KeepAliveRequests,
		PipelineDepth: experiments.KeepAliveRequests,
	})

	// The chaos points (figures 40-43): one per fault class, each on the
	// mechanism whose degradation path it exercises. Fault decisions are
	// seeded hashes, so these metrics are exactly as bit-deterministic as the
	// healthy points; a change in injection pricing, EMFILE shedding, EINTR
	// restart or overflow recovery moves them where nothing else does.
	add("chaos-reset-epoll-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdEpoll, RequestRate: 1000, Inactive: 251,
		Faults: faults.Config{Seed: 3, ResetRate: 0.1, VanishRate: 0.02},
	})
	add("chaos-emfile-poll-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdPoll, RequestRate: 1000, Inactive: 251,
		Faults: faults.Config{Seed: 3, FDLimit: 280},
	})
	add("chaos-eintr-devpoll-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdDevPoll, RequestRate: 1000, Inactive: 251,
		Faults: faults.Config{Seed: 3, EINTRRate: 0.4},
	})
	add("chaos-overflow-compio-rate1000", experiments.RunSpec{
		Server: experiments.ServerThttpdCompio, RequestRate: 1000, Inactive: 251,
		Faults: faults.Config{Seed: 3, OverflowStormRate: 0.1},
	})
	return out
}

// emit runs every gated point and writes the baseline file.
func emit(path string, connections int, seed int64, threads int, quiet bool) error {
	f := File{Schema: 2, Connections: connections, Seed: seed}
	for _, p := range points(connections, seed) {
		p.spec.Threads = threads
		// Three timed runs, keeping the fastest (and fewest allocations):
		// the first pass pays cache warmup, and the gate wants the run's
		// cost, not the machine's mood.
		var res experiments.RunResult
		best := int64(1<<63 - 1)
		bestAllocs := int64(1<<63 - 1)
		var msBefore, msAfter runtime.MemStats
		for i := 0; i < 3; i++ {
			runtime.ReadMemStats(&msBefore)
			start := time.Now()
			res = experiments.Run(p.spec)
			ns := time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&msAfter)
			if ns < best {
				best = ns
			}
			if allocs := int64(msAfter.Mallocs - msBefore.Mallocs); allocs < bestAllocs {
				bestAllocs = allocs
			}
		}
		e := Entry{
			ID:          p.id,
			RepliesPS:   res.Load.ReplyRate.Mean,
			P99Ms:       res.Latency.P99,
			ErrPct:      res.Load.ErrorPercent,
			Threads:     res.Threads,
			NsPerOp:     best,
			AllocsPerOp: bestAllocs,
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "%-40s %8.1f replies/s %8.2f p99-ms %12d ns/op %10d allocs/op %2d threads\n",
				e.ID, e.RepliesPS, e.P99Ms, e.NsPerOp, e.AllocsPerOp, e.Threads)
		}
		f.Entries = append(f.Entries, e)
	}
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].ID < f.Entries[j].ID })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// crosscheck runs every gated point on both engines — sequential and sharded
// with the given thread count — and returns the number of points whose
// deterministic metrics differ. One run per engine suffices: the compared
// metrics are simulated quantities, not wall-clock ones, and the parallel
// kernel's contract is exact equality, so any difference at all is a bug.
func crosscheck(threads, connections int, seed int64, quiet bool) int {
	mismatches := 0
	for _, p := range points(connections, seed) {
		seq := p.spec
		seq.Threads = 1
		par := p.spec
		par.Threads = threads
		sres := experiments.Run(seq)
		pres := experiments.Run(par)
		if sres.Load.ReplyRate.Mean != pres.Load.ReplyRate.Mean ||
			sres.Latency.P99 != pres.Latency.P99 ||
			sres.Load.ErrorPercent != pres.Load.ErrorPercent {
			mismatches++
			fmt.Printf("FAIL %-40s threads=%d diverged from threads=1: "+
				"replies %v vs %v, p99-ms %v vs %v, err%% %v vs %v\n",
				p.id, pres.Threads,
				pres.Load.ReplyRate.Mean, sres.Load.ReplyRate.Mean,
				pres.Latency.P99, sres.Latency.P99,
				pres.Load.ErrorPercent, sres.Load.ErrorPercent)
			continue
		}
		if !quiet {
			fmt.Printf("ok   %-40s threads=%d == threads=1  %8.1f replies/s %7.2f p99-ms\n",
				p.id, pres.Threads, pres.Load.ReplyRate.Mean, pres.Latency.P99)
		}
	}
	return mismatches
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// gate compares candidate against baseline, printing one line per entry and
// returning the number of regressions.
func gate(baseline, candidate File, tol, timeTol, allocTol float64) int {
	if baseline.Connections != candidate.Connections || baseline.Seed != candidate.Seed {
		fmt.Printf("benchgate: WARNING: baseline ran %d conns seed %d, candidate %d conns seed %d — "+
			"simulated metrics are only comparable at identical parameters\n",
			baseline.Connections, baseline.Seed, candidate.Connections, candidate.Seed)
	}
	cand := map[string]Entry{}
	for _, e := range candidate.Entries {
		cand[e.ID] = e
	}
	regressions := 0
	fail := func(id, format string, args ...interface{}) {
		regressions++
		fmt.Printf("FAIL %-40s %s\n", id, fmt.Sprintf(format, args...))
	}
	for _, base := range baseline.Entries {
		c, ok := cand[base.ID]
		if !ok {
			fail(base.ID, "missing from candidate")
			continue
		}
		ok = true
		if c.RepliesPS < base.RepliesPS*(1-tol) {
			fail(base.ID, "reply rate %.1f fell >%.0f%% below baseline %.1f", c.RepliesPS, tol*100, base.RepliesPS)
			ok = false
		}
		// Sub-millisecond p99s sit at the histogram's resolution floor; only
		// gate meaningful values.
		if base.P99Ms > 0.1 && c.P99Ms > base.P99Ms*(1+tol) {
			fail(base.ID, "p99 %.2fms rose >%.0f%% above baseline %.2fms", c.P99Ms, tol*100, base.P99Ms)
			ok = false
		}
		// Allocation counts are a property of the code path, not the
		// machine, so this gate stays on in CI. Baselines predating the
		// field (zero) are not gated.
		if allocTol > 0 && base.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(base.AllocsPerOp)*(1+allocTol) {
			fail(base.ID, "allocs/op %d rose >%.0f%% above baseline %d", c.AllocsPerOp, allocTol*100, base.AllocsPerOp)
			ok = false
		}
		// The wall-clock gate only means something when baseline and
		// candidate ran on the same machine; -time-tolerance 0 disables it
		// (CI compares a committed baseline against different hardware).
		if timeTol > 0 && base.NsPerOp > 0 && float64(c.NsPerOp) > float64(base.NsPerOp)*(1+timeTol) {
			fail(base.ID, "ns/op %d rose >%.0f%% above baseline %d", c.NsPerOp, timeTol*100, base.NsPerOp)
			ok = false
		}
		if ok {
			fmt.Printf("ok   %-40s %8.1f replies/s (base %8.1f)  %7.2f p99-ms (base %7.2f)\n",
				base.ID, c.RepliesPS, base.RepliesPS, c.P99Ms, base.P99Ms)
		}
	}
	for _, e := range candidate.Entries {
		found := false
		for _, base := range baseline.Entries {
			if base.ID == e.ID {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("new  %-40s (not in baseline — refresh with make bench-json)\n", e.ID)
		}
	}
	return regressions
}

func main() {
	emitPath := flag.String("emit", "", "run the gated benchmark set and write the JSON baseline to this path")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	candidatePath := flag.String("candidate", "", "freshly emitted JSON to compare")
	crosscheckN := flag.Int("crosscheck", 0, "run every point at this thread count AND at one thread, failing on any deterministic-metric difference (0 disables)")
	connections := flag.Int("connections", 1500, "benchmark connections per point")
	threads := flag.Int("threads", 1, "kernel threads for the emitted points (simulated metrics are bit-identical across thread counts)")
	seed := flag.Int64("seed", 1, "load generator seed")
	tol := flag.Float64("tolerance", 0.05, "allowed fractional regression for simulated metrics (reply rate, p99)")
	allocTol := flag.Float64("alloc-tolerance", 0.10, "allowed fractional regression for per-run heap allocation counts; 0 disables the allocation gate")
	timeTol := flag.Float64("time-tolerance", 1.0, "allowed fractional regression for wall-clock ns/op (1.0 = fail past 2x: a gross-slowdown tripwire, since wall clock jitters even same-machine); 0 disables the wall-clock gate (use when baseline and candidate ran on different machines)")
	quiet := flag.Bool("quiet", false, "suppress per-point progress output on stderr")
	flag.Parse()

	switch {
	case *crosscheckN > 1:
		if n := crosscheck(*crosscheckN, *connections, *seed, *quiet); n > 0 {
			fmt.Printf("benchgate: %d point(s) diverged between -threads 1 and -threads %d\n", n, *crosscheckN)
			os.Exit(1)
		}
		fmt.Printf("benchgate: all points bit-identical at -threads 1 and -threads %d\n", *crosscheckN)
	case *emitPath != "":
		if err := emit(*emitPath, *connections, *seed, *threads, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
	case *baselinePath != "" && *candidatePath != "":
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		candidate, err := load(*candidatePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if n := gate(baseline, candidate, *tol, *timeTol, *allocTol); n > 0 {
			fmt.Printf("benchgate: %d regression(s) against %s\n", n, *baselinePath)
			os.Exit(1)
		}
		fmt.Printf("benchgate: no regressions against %s (%d entries)\n", *baselinePath, len(baseline.Entries))
	default:
		fmt.Fprintln(os.Stderr, "benchgate: use -emit OUT.json, -baseline BASE.json -candidate NEW.json, or -crosscheck N")
		os.Exit(2)
	}
}
