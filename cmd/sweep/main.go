// Command sweep runs the full evaluation: every figure of the paper (4-14),
// the extension figures (15+, the epoll curves) and, optionally, the ablation
// studies described in DESIGN.md. It prints each figure/ablation as a text
// table, suitable for pasting into EXPERIMENTS.md.
//
// Usage:
//
//	sweep                          # all figures, scaled-down runs
//	sweep -connections 35000       # the paper's full procedure (slow)
//	sweep -figs 8,9,10             # a subset of figures
//	sweep -figs 17,18 -workers 1,2,4   # just the prefork scaling figures
//	sweep -ablation                # the ablation studies instead of figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eventlib"
	"repro/internal/experiments"
)

func main() {
	connections := flag.Int("connections", 4000, "benchmark connections per point (paper: 35000)")
	figs := flag.String("figs", "", "comma-separated figure numbers to run (default: all)")
	ablation := flag.Bool("ablation", false, "run the ablation studies instead of the figures")
	ablationID := flag.String("ablation-id", "", "run a single ablation by id")
	backend := flag.String("backend", "", "re-run the figures' thttpd/hybrid/prefork curves on this eventlib backend")
	workers := flag.String("workers", "", "comma-separated worker counts for the scaling figures (default 1,2,4,8)")
	seed := flag.Int64("seed", 1, "load generator seed")
	quiet := flag.Bool("quiet", false, "suppress per-point progress output")
	flag.Parse()

	if *backend != "" {
		if _, ok := eventlib.Lookup(*backend); !ok {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", eventlib.UnknownBackendError(*backend))
			os.Exit(2)
		}
	}
	workerCounts, err := experiments.ParseWorkerCounts(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}

	progress := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *ablation || *ablationID != "" {
		for _, a := range experiments.Ablations(*connections) {
			if *ablationID != "" && a.ID != *ablationID {
				continue
			}
			res := experiments.RunAblation(a, progress)
			fmt.Println(experiments.FormatAblation(res))
		}
		return
	}

	wanted := map[string]bool{}
	for _, part := range strings.Split(*figs, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			wanted[part] = true
		}
	}
	for _, fig := range experiments.AllFigures() {
		if len(wanted) > 0 && !wanted[fmt.Sprintf("%d", fig.Number)] && !wanted[fig.ID] {
			continue
		}
		res := experiments.RunFigure(fig, experiments.SweepOptions{
			Connections: *connections,
			Seed:        *seed,
			Backend:     *backend,
			Progress:    progress,
		})
		fmt.Println(experiments.Format(res))
	}

	for _, fig := range experiments.WorkerFigures() {
		if len(wanted) > 0 && !wanted[fmt.Sprintf("%d", fig.Number)] && !wanted[fig.ID] {
			continue
		}
		res := experiments.RunWorkerFigure(fig, experiments.WorkerSweepOptions{
			Connections: *connections,
			Workers:     workerCounts,
			Seed:        *seed,
			Backend:     *backend,
			Progress:    progress,
		})
		fmt.Println(experiments.FormatWorkers(res))
	}
}
