// Command sweep runs the full evaluation: every figure of the paper (4-14),
// the extension figures (15+, epoll and prefork scaling), the overload
// figures (19+, reply rate and p99 latency past saturation under each
// workload scenario) and, optionally, the ablation studies described in
// DESIGN.md. It prints each figure/ablation as a text table, suitable for
// pasting into EXPERIMENTS.md.
//
// Usage:
//
//	sweep                          # all figures, scaled-down runs
//	sweep -connections 35000       # the paper's full procedure (slow)
//	sweep -figs 8,9,10             # a subset of figures
//	sweep -figs 17,18 -workers 1,2,4   # just the prefork scaling figures
//	sweep -figs 20,22 -percentiles     # overload figures with percentile tables
//	sweep -workload slowloris -figs 12 # a paper figure under an adversarial workload
//	sweep -ablation                # the ablation studies instead of figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eventlib"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/profiling"
	"repro/internal/servers/httpcore"
)

func main() {
	connections := flag.Int("connections", 0, "benchmark connections per point (0 = each figure's own default: 4000 for most figures, 10000-30000 for the scale family, 100000-1000000 for the massive-scale family; paper: 35000)")
	threads := flag.Int("threads", 1, "OS threads per simulated point (>=2 shards the event kernel; figures are byte-identical across thread counts)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile (taken at exit) to this file")
	blockprofile := flag.String("blockprofile", "", "write a pprof blocking profile (taken at exit) to this file")
	figs := flag.String("figs", "", "comma-separated figure numbers to run (default: all)")
	ablation := flag.Bool("ablation", false, "run the ablation studies instead of the figures")
	ablationID := flag.String("ablation-id", "", "run a single ablation by id")
	backend := flag.String("backend", "", "re-run the figures' thttpd/hybrid/prefork curves on this eventlib backend (see -list-backends)")
	listBackends := flag.Bool("list-backends", false, "list registered event backends and exit")
	workload := flag.String("workload", "", "run every point under this loadgen workload (see benchfig -list-workloads)")
	percentiles := flag.Bool("percentiles", false, "append the per-point latency percentile table to every figure")
	keepalive := flag.Bool("keepalive", false, "serve every curve over HTTP/1.1 keep-alive connections (default 8 requests per connection; curves with their own persistent-connection config keep it)")
	requestsPerConn := flag.Int("requests-per-conn", 0, "requests each client connection issues (>1 implies -keepalive)")
	pipelineDepth := flag.Int("pipeline-depth", 0, "requests the keep-alive client keeps outstanding (>1 implies -keepalive)")
	cacheKB := flag.Int("cache-kb", 0, "server response-cache capacity in KB (0 = the legacy no-file-charge model)")
	writeMode := flag.String("write-mode", "", "server write path: copy, writev or sendfile (default writev)")
	fanout := flag.Int("fanout", 0, "members the push server fans out to per tick (push figures; 0 = the workload's default)")
	churnRate := flag.Float64("churn-rate", 0, "peer join rate in peers/s (dhtchurn figures; 0 = the workload's default; fig39's churn axis wins)")
	workers := flag.String("workers", "", "comma-separated worker counts for the scaling figures (default 1,2,4,8)")
	seed := flag.Int64("seed", 1, "load generator seed")
	quiet := flag.Bool("quiet", false, "suppress all progress output on stderr")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed (consulted only when some -fault-* knob is set)")
	faultEINTR := flag.Float64("fault-eintr", 0, "probability one blocking wait is interrupted (EINTR) and restarted")
	faultAcceptEAGAIN := flag.Float64("fault-accept-eagain", 0, "probability one accept fails spuriously with EAGAIN")
	faultReadEAGAIN := flag.Float64("fault-read-eagain", 0, "probability one read fails spuriously with EAGAIN")
	faultWriteEAGAIN := flag.Float64("fault-write-eagain", 0, "probability one write accepts nothing (EAGAIN)")
	faultFDLimit := flag.Int("fault-fdlimit", 0, "per-process RLIMIT_NOFILE: accept fails with EMFILE at the limit (0 = unlimited)")
	faultReset := flag.Float64("fault-reset", 0, "fraction of benchmark connections reset (RST) mid-exchange")
	faultVanish := flag.Float64("fault-vanish", 0, "fraction of benchmark connections whose peer silently vanishes")
	faultOverflowStorm := flag.Float64("fault-overflow-storm", 0, "probability one RT-signal/completion-ring post is swallowed by an injected queue overflow")
	retry := flag.Bool("retry", false, "clients retry failed connections with deterministic capped exponential backoff (3 attempts, 100ms base)")
	flag.Parse()

	faultCfg := faults.Config{
		Seed:              *faultSeed,
		EINTRRate:         *faultEINTR,
		AcceptEAGAINRate:  *faultAcceptEAGAIN,
		ReadEAGAINRate:    *faultReadEAGAIN,
		WriteEAGAINRate:   *faultWriteEAGAIN,
		FDLimit:           *faultFDLimit,
		ResetRate:         *faultReset,
		VanishRate:        *faultVanish,
		OverflowStormRate: *faultOverflowStorm,
	}

	if *listBackends {
		fmt.Println(eventlib.DescribeBackends(""))
		return
	}
	if *backend != "" {
		if _, ok := eventlib.Lookup(*backend); !ok {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", eventlib.UnknownBackendError(*backend))
			os.Exit(2)
		}
	}
	if *workload != "" {
		if _, ok := loadgen.LookupWorkload(*workload); !ok {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", loadgen.UnknownWorkloadError(*workload))
			os.Exit(2)
		}
	}
	workerCounts, err := experiments.ParseWorkerCounts(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	mode, err := httpcore.ParseWriteMode(*writeMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	httpOpts := func(o *experiments.SweepOptions) {
		o.KeepAlive = *keepalive
		o.RequestsPerConn = *requestsPerConn
		o.PipelineDepth = *pipelineDepth
		o.CacheKB = *cacheKB
		o.WriteMode = mode
		o.Fanout = *fanout
		o.ChurnRate = *churnRate
		o.Faults = faultCfg
		o.Retry = *retry
	}
	stopProfiles := profiling.StartAll(profiling.Config{
		CPU: *cpuprofile, Mem: *memprofile,
		Mutex: *mutexprofile, Block: *blockprofile,
	})
	defer stopProfiles()

	// With -quiet the progress callback stays nil everywhere, so nothing can
	// reach stderr; without it every point prints one line.
	var progress func(format string, args ...interface{})
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *ablation || *ablationID != "" {
		// The ablations' own zero-fallback is 3000; this flag's pre-figure-default
		// behaviour was 4000, so keep default ablation outputs unchanged.
		ablConns := *connections
		if ablConns <= 0 {
			ablConns = 4000
		}
		for _, a := range experiments.Ablations(ablConns) {
			if *ablationID != "" && a.ID != *ablationID {
				continue
			}
			res := experiments.RunAblation(a, progress)
			fmt.Println(experiments.FormatAblation(res))
		}
		return
	}

	wanted := map[string]bool{}
	for _, part := range strings.Split(*figs, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			wanted[part] = true
		}
	}
	selected := func(id string, number int) bool {
		return len(wanted) == 0 || wanted[fmt.Sprintf("%d", number)] || wanted[id]
	}
	for _, fig := range experiments.AllFigures() {
		if !selected(fig.ID, fig.Number) {
			continue
		}
		opts := experiments.SweepOptions{
			Connections: *connections,
			Seed:        *seed,
			Threads:     *threads,
			Backend:     *backend,
			Workload:    *workload,
			Progress:    progress,
		}
		httpOpts(&opts)
		res := experiments.RunFigure(fig, opts)
		fmt.Println(experiments.Format(res))
		if *percentiles {
			fmt.Println(experiments.FormatPercentiles(res.Runs))
		}
	}

	for _, fig := range experiments.WorkerFigures() {
		if !selected(fig.ID, fig.Number) {
			continue
		}
		res := experiments.RunWorkerFigure(fig, experiments.WorkerSweepOptions{
			Connections: *connections,
			Workers:     workerCounts,
			Seed:        *seed,
			Backend:     *backend,
			Workload:    *workload,
			Progress:    progress,
		})
		fmt.Println(experiments.FormatWorkers(res))
		if *percentiles {
			fmt.Println(experiments.FormatPercentiles(res.Runs))
		}
	}

	// The scale families (figs 26-31) and the mostly-idle families (figs
	// 36-39) pin their own connection counts (fig.Connections > 0), so the
	// guard below keeps them out of the default sweep: at 10k-1M connections
	// per point they would dominate it.
	overloadFigs := append(experiments.OverloadFigures(), experiments.KeepAliveFigures()...)
	overloadFigs = append(overloadFigs, experiments.ScaleFigures()...)
	overloadFigs = append(overloadFigs, experiments.MassiveScaleFigures()...)
	overloadFigs = append(overloadFigs, experiments.MostlyIdleFigures()...)
	overloadFigs = append(overloadFigs, experiments.ChaosFigures()...)
	for _, fig := range overloadFigs {
		if !selected(fig.ID, fig.Number) || (fig.Connections > 0 && len(wanted) == 0) {
			continue
		}
		opts := experiments.SweepOptions{
			Connections: *connections,
			Seed:        *seed,
			Threads:     *threads,
			Backend:     *backend,
			Workload:    *workload,
			Progress:    progress,
		}
		httpOpts(&opts)
		res := experiments.RunOverloadFigure(fig.WithWorkerCounts(workerCounts), opts)
		fmt.Println(experiments.FormatOverload(res))
		if *percentiles {
			fmt.Println(experiments.FormatPercentiles(res.Runs))
		}
	}
}
