// Command benchfig regenerates one of the paper's figures (4 through 14), or
// one of the extension figures (15+, the epoll curves), by sweeping the
// request rate for the figure's server/inactive-load configuration and
// printing the resulting data series as a text table.
//
// Usage:
//
//	benchfig -fig 8                 # quick, scaled-down run of Figure 8
//	benchfig -fig 16                # extension: all four mechanisms incl. epoll
//	benchfig -fig 17                # extension: prefork worker scaling
//	benchfig -fig 18 -workers 1,2,4 # accept-sharding ablation, custom sweep
//	benchfig -fig 10 -connections 35000   # the paper's full-size procedure
//	benchfig -list                  # list available figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/eventlib"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (4..18 or fig04..fig18)")
	list := flag.Bool("list", false, "list available figures and exit")
	connections := flag.Int("connections", 4000, "benchmark connections per point (paper: 35000)")
	rates := flag.String("rates", "", "comma-separated request rates overriding the default 500..1100 sweep")
	workers := flag.String("workers", "", "comma-separated worker counts overriding the scaling figures' 1,2,4,8 sweep")
	backend := flag.String("backend", "", "re-run the figure's thttpd/hybrid/prefork curves on this eventlib backend (see -list-backends)")
	listBackends := flag.Bool("list-backends", false, "list registered event backends and exit")
	seed := flag.Int64("seed", 1, "load generator seed")
	quiet := flag.Bool("quiet", false, "suppress per-point progress output")
	flag.Parse()

	if *list {
		for _, f := range experiments.AllFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.WorkerFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		return
	}
	if *listBackends {
		for _, b := range eventlib.Backends() {
			fmt.Printf("%-10s %s\n", b.Name, b.Description)
		}
		return
	}
	if *backend != "" {
		if _, ok := eventlib.Lookup(*backend); !ok {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", eventlib.UnknownBackendError(*backend))
			os.Exit(2)
		}
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "benchfig: -fig is required (use -list to see figures)")
		os.Exit(2)
	}

	progress := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	workerCounts, err := experiments.ParseWorkerCounts(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(2)
	}

	if wf, ok := experiments.WorkerFigureByID(*fig); ok {
		wopts := experiments.WorkerSweepOptions{
			Connections: *connections, Workers: workerCounts,
			Seed: *seed, Backend: *backend, Progress: progress,
		}
		fmt.Print(experiments.FormatWorkers(experiments.RunWorkerFigure(wf, wopts)))
		return
	}

	figure, ok := experiments.FigureByID(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	opts := experiments.SweepOptions{Connections: *connections, Seed: *seed, Backend: *backend}
	if !*quiet {
		opts.Progress = progress
	}
	if *rates != "" {
		for _, part := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfig: bad rate %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Rates = append(opts.Rates, v)
		}
	}

	result := experiments.RunFigure(figure, opts)
	fmt.Print(experiments.Format(result))
}
