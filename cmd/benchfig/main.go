// Command benchfig regenerates one of the paper's figures (4 through 14), an
// extension figure (15+: epoll, prefork scaling) or an overload figure (19+:
// reply rate and p99 latency past saturation under a named workload), by
// sweeping the request rate (or worker count) for the figure's configuration
// and printing the resulting data series as a text table.
//
// Usage:
//
//	benchfig -fig 8                 # quick, scaled-down run of Figure 8
//	benchfig -fig 16                # extension: all four mechanisms incl. epoll
//	benchfig -fig 17                # extension: prefork worker scaling
//	benchfig -fig 20                # overload: flash-crowd bursts, four mechanisms
//	benchfig -fig 12 -workload slowloris  # re-run a paper figure under an adversarial workload
//	benchfig -fig 19 -percentiles   # append the per-point latency percentile table
//	benchfig -fig 32                # keep-alive vs HTTP/1.0 at the knee
//	benchfig -fig 16 -keepalive     # re-run a figure on the persistent hot path
//	benchfig -fig 10 -connections 35000   # the paper's full-size procedure
//	benchfig -fig 37                # server push at 100k mostly-idle members
//	benchfig -fig 39 -churn-rate 400      # datagram churn, custom join rate
//	benchfig -list                  # list available figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/eventlib"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/profiling"
	"repro/internal/servers/httpcore"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (4..35 or fig04..fig35)")
	list := flag.Bool("list", false, "list available figures and exit")
	connections := flag.Int("connections", 0, "benchmark connections per point (0 = the figure's own default: 4000 for most figures, 10000-30000 for the scale family, 100000-1000000 for the massive-scale family; paper: 35000)")
	threads := flag.Int("threads", 1, "OS threads per simulated point (>=2 shards the event kernel; figures are byte-identical across thread counts)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile (taken at exit) to this file")
	blockprofile := flag.String("blockprofile", "", "write a pprof blocking profile (taken at exit) to this file")
	rates := flag.String("rates", "", "comma-separated request rates overriding the figure's sweep")
	workers := flag.String("workers", "", "comma-separated worker counts overriding the scaling figures' 1,2,4,8 sweep")
	backend := flag.String("backend", "", "re-run the figure's thttpd/hybrid/prefork curves on this eventlib backend (see -list-backends)")
	workload := flag.String("workload", "", "run every point under this loadgen workload (see -list-workloads)")
	percentiles := flag.Bool("percentiles", false, "append the per-point latency percentile table (p50/p90/p99/p999, client and service side)")
	keepalive := flag.Bool("keepalive", false, "serve every curve over HTTP/1.1 keep-alive connections (default 8 requests per connection; curves with their own persistent-connection config keep it)")
	requestsPerConn := flag.Int("requests-per-conn", 0, "requests each client connection issues (>1 implies -keepalive)")
	pipelineDepth := flag.Int("pipeline-depth", 0, "requests the keep-alive client keeps outstanding (>1 implies -keepalive)")
	cacheKB := flag.Int("cache-kb", 0, "server response-cache capacity in KB (0 = the legacy no-file-charge model)")
	writeMode := flag.String("write-mode", "", "server write path: copy, writev or sendfile (default writev)")
	fanout := flag.Int("fanout", 0, "members the push server fans out to per tick (push figures; 0 = the workload's default)")
	churnRate := flag.Float64("churn-rate", 0, "peer join rate in peers/s (dhtchurn figures; 0 = the workload's default; fig39's churn axis wins)")
	listBackends := flag.Bool("list-backends", false, "list registered event backends and exit")
	listWorkloads := flag.Bool("list-workloads", false, "list registered workload scenarios and exit")
	seed := flag.Int64("seed", 1, "load generator seed")
	quiet := flag.Bool("quiet", false, "suppress all progress output on stderr")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed (consulted only when some -fault-* knob is set)")
	faultEINTR := flag.Float64("fault-eintr", 0, "probability one blocking wait is interrupted (EINTR) and restarted")
	faultAcceptEAGAIN := flag.Float64("fault-accept-eagain", 0, "probability one accept fails spuriously with EAGAIN")
	faultReadEAGAIN := flag.Float64("fault-read-eagain", 0, "probability one read fails spuriously with EAGAIN")
	faultWriteEAGAIN := flag.Float64("fault-write-eagain", 0, "probability one write accepts nothing (EAGAIN)")
	faultFDLimit := flag.Int("fault-fdlimit", 0, "per-process RLIMIT_NOFILE: accept fails with EMFILE at the limit (0 = unlimited)")
	faultReset := flag.Float64("fault-reset", 0, "fraction of benchmark connections reset (RST) mid-exchange")
	faultVanish := flag.Float64("fault-vanish", 0, "fraction of benchmark connections whose peer silently vanishes")
	faultOverflowStorm := flag.Float64("fault-overflow-storm", 0, "probability one RT-signal/completion-ring post is swallowed by an injected queue overflow")
	retry := flag.Bool("retry", false, "clients retry failed connections with deterministic capped exponential backoff (3 attempts, 100ms base)")
	flag.Parse()

	faultCfg := faults.Config{
		Seed:              *faultSeed,
		EINTRRate:         *faultEINTR,
		AcceptEAGAINRate:  *faultAcceptEAGAIN,
		ReadEAGAINRate:    *faultReadEAGAIN,
		WriteEAGAINRate:   *faultWriteEAGAIN,
		FDLimit:           *faultFDLimit,
		ResetRate:         *faultReset,
		VanishRate:        *faultVanish,
		OverflowStormRate: *faultOverflowStorm,
	}

	if *list {
		for _, f := range experiments.AllFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.WorkerFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.OverloadFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.KeepAliveFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.ScaleFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.MassiveScaleFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.MostlyIdleFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		for _, f := range experiments.ChaosFigures() {
			fmt.Printf("%-6s %s\n", f.ID, f.Title)
		}
		return
	}
	if *listBackends {
		fmt.Println(eventlib.DescribeBackends(""))
		return
	}
	if *listWorkloads {
		for _, w := range loadgen.Workloads() {
			fmt.Printf("%-11s %s\n", w.Name, w.Description)
		}
		return
	}
	if *backend != "" {
		if _, ok := eventlib.Lookup(*backend); !ok {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", eventlib.UnknownBackendError(*backend))
			os.Exit(2)
		}
	}
	if *workload != "" {
		if _, ok := loadgen.LookupWorkload(*workload); !ok {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", loadgen.UnknownWorkloadError(*workload))
			os.Exit(2)
		}
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "benchfig: -fig is required (use -list to see figures)")
		os.Exit(2)
	}

	// With -quiet the progress callback stays nil everywhere, so nothing can
	// reach stderr; without it every point prints one line.
	var progress func(format string, args ...interface{})
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	workerCounts, err := experiments.ParseWorkerCounts(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(2)
	}

	mode, err := httpcore.ParseWriteMode(*writeMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(2)
	}
	opts := experiments.SweepOptions{
		Connections: *connections, Seed: *seed, Threads: *threads,
		Backend: *backend, Workload: *workload, Progress: progress,
		KeepAlive: *keepalive, RequestsPerConn: *requestsPerConn,
		PipelineDepth: *pipelineDepth, CacheKB: *cacheKB, WriteMode: mode,
		Fanout: *fanout, ChurnRate: *churnRate,
		Faults: faultCfg, Retry: *retry,
	}
	if *rates != "" {
		for _, part := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfig: bad rate %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Rates = append(opts.Rates, v)
		}
	}

	// Resolve the figure before starting the profilers, so an input error
	// cannot leave a truncated profile behind.
	workerFig, isWorkerFig := experiments.WorkerFigureByID(*fig)
	overloadFig, isOverloadFig := experiments.OverloadFigureByID(*fig)
	figure, isFigure := experiments.FigureByID(*fig)
	if !isWorkerFig && !isOverloadFig && !isFigure {
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	stopProfiles := profiling.StartAll(profiling.Config{
		CPU: *cpuprofile, Mem: *memprofile,
		Mutex: *mutexprofile, Block: *blockprofile,
	})
	defer stopProfiles()

	switch {
	case isWorkerFig:
		res := experiments.RunWorkerFigure(workerFig, experiments.WorkerSweepOptions{
			Connections: *connections, Workers: workerCounts,
			Seed: *seed, Backend: *backend, Workload: *workload, Progress: progress,
		})
		fmt.Print(experiments.FormatWorkers(res))
		if *percentiles {
			fmt.Print(experiments.FormatPercentiles(res.Runs))
		}
	case isOverloadFig:
		res := experiments.RunOverloadFigure(overloadFig.WithWorkerCounts(workerCounts), opts)
		fmt.Print(experiments.FormatOverload(res))
		if *percentiles {
			fmt.Print(experiments.FormatPercentiles(res.Runs))
		}
	default:
		res := experiments.RunFigure(figure, opts)
		fmt.Print(experiments.Format(res))
		if *percentiles {
			fmt.Print(experiments.FormatPercentiles(res.Runs))
		}
	}
}
