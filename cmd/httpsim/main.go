// Command httpsim runs a single benchmark point — one server, one request
// rate, one inactive-connection load — and prints the detailed result:
// reply-rate samples, latency percentiles, error breakdown, mechanism
// statistics and CPU utilisation. It is the tool for poking at a single
// configuration; cmd/sweep and cmd/benchfig regenerate whole figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/loadgen"
)

func main() {
	server := flag.String("server", string(experiments.ServerThttpdDevPoll),
		"server under test (see -list-servers)")
	listServers := flag.Bool("list-servers", false, "list selectable server kinds and exit")
	rate := flag.Float64("rate", 800, "targeted request rate (requests/second)")
	inactive := flag.Int("inactive", 251, "inactive (idle, high-latency) connections")
	connections := flag.Int("connections", 4000, "benchmark connections (paper: 35000)")
	seed := flag.Int64("seed", 1, "load generator seed")
	batchDequeue := flag.Bool("sigtimedwait4", false, "enable batch signal dequeue (phhttpd)")
	queueLimit := flag.Int("queue-limit", 0, "override the RT signal queue limit (phhttpd, hybrid)")
	flag.Parse()

	if *listServers {
		for _, k := range experiments.ServerKinds() {
			fmt.Println(k)
		}
		return
	}

	kind := experiments.ServerKind(*server)
	if err := experiments.ValidateServerKind(kind); err != nil {
		fmt.Fprintf(os.Stderr, "httpsim: %v\n", err)
		os.Exit(2)
	}

	spec := experiments.RunSpec{
		Server:              kind,
		RequestRate:         *rate,
		Inactive:            *inactive,
		Connections:         *connections,
		Seed:                *seed,
		PhhttpdBatchDequeue: *batchDequeue,
		RTQueueLimit:        *queueLimit,
	}
	res := experiments.Run(spec)
	load := res.Load

	fmt.Printf("server            %s (final mode %s)\n", spec.Server, res.FinalMode)
	fmt.Printf("workload          rate=%.0f req/s, %d connections, %d inactive\n",
		spec.RequestRate, spec.Connections, spec.Inactive)
	fmt.Printf("virtual duration  %v   CPU utilisation %.0f%%   event loops %d\n",
		res.VirtualTime, 100*res.CPUUtilization, res.EventLoops)
	fmt.Printf("replies           %d of %d issued (%.1f%% errors)\n",
		load.Completed, load.Issued, load.ErrorPercent)
	fmt.Printf("reply rate        avg=%.1f sd=%.1f min=%.1f max=%.1f replies/s\n",
		load.ReplyRate.Mean, load.ReplyRate.StdDev, load.ReplyRate.Min, load.ReplyRate.Max)
	fmt.Printf("latency           median=%.2fms mean=%.2fms p90=%.2fms max=%.2fms\n",
		load.MedianLatencyMs, load.MeanLatencyMs, load.P90LatencyMs, load.MaxLatencyMs)

	if len(load.ErrorsBy) > 0 {
		fmt.Println("errors by reason:")
		reasons := make([]string, 0, len(load.ErrorsBy))
		for r := range load.ErrorsBy {
			reasons = append(reasons, string(r))
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("  %-14s %d\n", r, load.ErrorsBy[loadgen.ErrorReason(r)])
		}
	}

	fmt.Println("reply-rate samples (replies/s per interval):")
	for i, s := range load.ReplyRateSamples {
		fmt.Printf("  interval %2d: %8.1f\n", i, s)
	}

	fmt.Printf("mechanism stats   waits=%d events=%d driver-polls=%d hint-hits=%d copied-out=%d enqueued=%d overflows=%d\n",
		res.Primary.Waits, res.Primary.EventsReturned, res.Primary.DriverPolls,
		res.Primary.HintHits, res.Primary.CopiedOut, res.Primary.Enqueued, res.Primary.Overflows)
	if res.Overflows > 0 || res.Handoffs > 0 {
		fmt.Printf("phhttpd recovery  overflows=%d handoffs=%d\n", res.Overflows, res.Handoffs)
	}
	if res.SwitchesToPoll > 0 || res.SwitchesToSignal > 0 {
		fmt.Printf("hybrid switches   to-devpoll=%d to-signal=%d\n", res.SwitchesToPoll, res.SwitchesToSignal)
	}
	fmt.Printf("server stats      accepted=%d served=%d closed=%d idle-closes=%d bad-requests=%d\n",
		res.Server.Accepted, res.Server.Served, res.Server.Closed, res.Server.IdleCloses, res.Server.BadRequests)
}
