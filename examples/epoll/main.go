// Epoll: the fourth event mechanism, in isolation.
//
// This example drives the simulated epoll interface directly — the successor
// mechanism Linux adopted after the paper's /dev/poll and RT-signal
// experiments — and contrasts its two trigger modes on the same workload. A
// level-triggered instance keeps reporting a descriptor while request bytes
// remain unread; an edge-triggered instance reports each readiness transition
// exactly once. Both share the kernel-resident interest engine
// (internal/interest) with the other mechanisms, so a wait touches only the
// ready list no matter how many idle descriptors are registered.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/epoll"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func main() {
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, netsim.DefaultConfig())
	proc := k.NewProc("epoll-example")
	api := netsim.NewSockAPI(k, proc, net)

	// One level-triggered and one edge-triggered instance watch the same
	// descriptors (a process may hold many epoll instances).
	lt := epoll.Open(k, proc, epoll.Options{EdgeTriggered: false})
	et := epoll.Open(k, proc, epoll.Options{EdgeTriggered: true})

	// A listener plus three connections: one active, two idle.
	var lfd *simkernel.FD
	proc.Batch(k.Now(), func() {
		lfd, _ = api.Listen()
		for _, ep := range []*epoll.Epoll{lt, et} {
			if err := ep.Add(lfd.Num, core.POLLIN); err != nil {
				log.Fatal(err)
			}
		}
	}, nil)

	active := net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	k.Sim.Run()

	// Accept everything and register each connection with both instances.
	proc.Batch(k.Now(), func() {
		for {
			fd, _, err := api.Accept(lfd)
			if err != nil {
				break
			}
			for _, ep := range []*epoll.Epoll{lt, et} {
				if err := ep.Add(fd.Num, core.POLLIN); err != nil {
					log.Fatal(err)
				}
			}
		}
	}, nil)
	k.Sim.Run()
	fmt.Printf("interest sets: LT holds %d descriptors, ET holds %d\n", lt.Len(), et.Len())

	// The active client sends 64 bytes of request data: one readiness
	// transition, observed by both instances.
	active.Send(k.Now(), make([]byte, 64))
	k.Sim.Run()

	collect := func(label string, ep *epoll.Epoll) int {
		n := 0
		ep.Wait(16, 0, func(events []core.Event, now core.Time) {
			n = len(events)
			fmt.Printf("at %v %s epoll_wait returned %d event(s)\n", now, label, len(events))
			for _, ev := range events {
				fmt.Printf("  fd %d ready for %v\n", ev.FD, ev.Ready)
			}
		})
		k.Sim.Run()
		return n
	}

	// First wait: both modes report the readable connection.
	collect("LT", lt)
	collect("ET", et)

	// Second wait without reading the data: level-triggered reports it again,
	// edge-triggered stays silent until the next transition.
	ltAgain := collect("LT", lt)
	etAgain := collect("ET", et)
	fmt.Printf("unread data redelivered: LT=%d event(s), ET=%d event(s)\n", ltAgain, etAgain)

	ltStats, etStats := lt.MechanismStats(), et.MechanismStats()
	fmt.Printf("LT stats: waits=%d driver-polls=%d events=%d\n",
		ltStats.Waits, ltStats.DriverPolls, ltStats.EventsReturned)
	fmt.Printf("ET stats: waits=%d driver-polls=%d events=%d\n",
		etStats.Waits, etStats.DriverPolls, etStats.EventsReturned)
	fmt.Printf("simulated CPU time consumed: %v\n", k.CPU.Busy)
}
