// Compio: the completion-based fifth mechanism, in isolation.
//
// This example drives the simulated completion-ring interface (an
// io_uring-shaped design) directly rather than through a server. It shows the
// three properties that distinguish the ring from the readiness mechanisms:
//
//  1. Batched submission — registering interest writes a submission entry
//     into a shared ring instead of making a system call; one Enter is
//     charged per batch of entries, either when the SQ fills or lazily on
//     the next wait.
//  2. Registered buffers — descriptors armed for reading carry a pre-pinned
//     fixed buffer, so socket reads skip the copy-to-user portion of their
//     cost.
//  3. CQ overflow and recovery — the completion queue is bounded; when
//     completions arrive faster than the process reaps them the ring drops
//     the excess, raises an overflow flag and, on the next wait, rebuilds
//     the lost completions with one priced rescan of the interest set.
package main

import (
	"fmt"
	"log"

	"repro/internal/compio"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func main() {
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, netsim.DefaultConfig())
	proc := k.NewProc("compio-example")
	api := netsim.NewSockAPI(k, proc, net)

	// A deliberately tiny ring: the SQ flushes after 4 queued submissions and
	// the CQ overflows past 2 pending completions, so both backpressure paths
	// are visible in a small example.
	opts := compio.DefaultOptions()
	opts.SQSize = 4
	opts.CQSize = 2
	ring := compio.Open(k, proc, opts)

	// --- 1. Batched submission -------------------------------------------
	// A listener plus three connections. Each Add writes one SQE; none of
	// them enters the kernel until the fourth fills the SQ.
	var lfd *simkernel.FD
	proc.Batch(k.Now(), func() {
		lfd, _ = api.Listen()
		if err := ring.Add(lfd.Num, core.POLLIN); err != nil {
			log.Fatal(err)
		}
	}, nil)
	conns := make([]*netsim.ClientConn, 3)
	for i := range conns {
		conns[i] = net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	}
	k.Sim.Run()

	var fds []*simkernel.FD
	proc.Batch(k.Now(), func() {
		for {
			fd, _, err := api.Accept(lfd)
			if err != nil {
				break
			}
			fds = append(fds, fd)
			fmt.Printf("queued SQE for fd %d: SQ holds %d entries, Enter batches so far: %d\n",
				fd.Num, ring.SQPending(), ring.SQFlushes())
			if err := ring.Add(fd.Num, core.POLLIN); err != nil {
				log.Fatal(err)
			}
		}
	}, nil)
	k.Sim.Run()
	fmt.Printf("after registering %d descriptors: SQ holds %d entries, Enter batches: %d\n\n",
		ring.Len(), ring.SQPending(), ring.SQFlushes())

	// --- 2. Registered buffers -------------------------------------------
	// The POLLIN registrations armed each connection with a fixed buffer, so
	// the read below costs SockRead minus the copy-to-user component.
	conns[0].Send(k.Now(), make([]byte, 64))
	k.Sim.Run()
	before := proc.TotalCharged
	proc.Batch(k.Now(), func() {
		api.Read(fds[0], 256)
	}, nil)
	k.Sim.Run()
	fmt.Printf("registered-buffer read charged %v (SockRead %v minus copy %v, plus syscall entry %v)\n\n",
		proc.TotalCharged-before, k.Cost.SockRead, k.Cost.SockReadCopy, k.Cost.SyscallEntry)

	// Completions posted during the accept and read phases are still sitting
	// in the CQ. With the SQ empty and the CQ non-empty this wait is a pure
	// user-space reap: no system call is charged.
	ring.Wait(16, 0, func(events []core.Event, now core.Time) {
		fmt.Printf("reaped %d stale completion(s) without entering the kernel\n\n", len(events))
	})
	k.Sim.Run()

	// --- 3. CQ overflow and recovery -------------------------------------
	// All three connections become readable while the process is away from
	// the ring. The CQ holds two completions; the third is dropped and the
	// overflow flag raised.
	for _, c := range conns {
		c.Send(k.Now(), make([]byte, 64))
	}
	k.Sim.Run()
	fmt.Printf("three completions against a CQ of %d: CQ holds %d, overflowed=%v\n",
		opts.CQSize, ring.CQLen(), ring.Overflowed())

	// The next wait notices the flag, rescans the interest set at driver-poll
	// cost, and delivers every lost completion — nothing is silently missing.
	ring.Wait(16, 0, func(events []core.Event, now core.Time) {
		fmt.Printf("at %v recovery wait returned %d event(s):\n", now, len(events))
		for _, ev := range events {
			fmt.Printf("  fd %d ready for %v\n", ev.FD, ev.Ready)
		}
	})
	k.Sim.Run()
	fmt.Printf("overflow recoveries: %d, overflowed=%v\n\n", ring.Recoveries(), ring.Overflowed())

	stats := ring.MechanismStats()
	fmt.Printf("ring stats: waits=%d submissions=%d events=%d dropped=%d doorbells=%d\n",
		stats.Waits, stats.Enqueued, stats.EventsReturned, stats.Dropped, ring.Doorbells())
	fmt.Printf("simulated CPU time consumed: %v\n", k.CPU.Busy)
}
