// Chaos: the deterministic fault plane and graceful degradation.
//
// This example runs two fault episodes against the benchmark harness and
// itemises what each one cost. First a descriptor-limit (EMFILE) episode: the
// process fd limit is squeezed until accept fails, and the server survives by
// the classic reserve-descriptor trick — close the reserve, accept the waiting
// connection into the freed slot, close it immediately, reopen the reserve —
// plus a paced backoff that keeps the accept loop from spinning. Then a reset
// storm: a deterministic fraction of connections RST mid-exchange (half while
// the request is still arriving, half while the response drains), and the
// server unwinds each without leaking a descriptor, a pooled connection or a
// timer. The storm is run twice, once with plain clients and once with the
// load generator's capped-exponential-backoff retry, showing how much of the
// damage client-side retry absorbs.
//
// Every fault decision is a seeded hash, and every failed operation charges
// the cost model like the real failed syscall (a failed accept still pays its
// syscall entry; a shed connection pays the accept, the close and the reserve
// reopen; an RST read pays the read that returned ECONNRESET), so the books
// below are bit-identical on every run and any -threads count.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/faults"
)

func spec(server experiments.ServerKind, f faults.Config) experiments.RunSpec {
	s := experiments.DefaultSpec(server, 900, 251)
	s.Faults = f
	return s
}

func main() {
	// --- Episode 1: EMFILE on thttpd/poll ----------------------------------
	// 251 inactive connections pin descriptors; a 270-fd process limit leaves
	// so little headroom that bursts of active connections hit EMFILE. A dash
	// of injected accept-EAGAIN exercises the other survival tool: the paced
	// retry timer that keeps a stalled accept loop from spinning.
	healthy := experiments.Run(spec(experiments.ServerThttpdPoll, faults.Config{}))
	limited := experiments.Run(spec(experiments.ServerThttpdPoll,
		faults.Config{Seed: 1, FDLimit: 270, AcceptEAGAINRate: 0.25}))

	fmt.Println("EMFILE episode: thttpd/poll, 251 inactive, fd limit 270 (vs unlimited):")
	fmt.Printf("  %-34s %12s %12s\n", "", "unlimited", "fd limit 270")
	row := func(label string, a, b interface{}) {
		fmt.Printf("  %-34s %12v %12v\n", label, a, b)
	}
	row("replies/s", fmt.Sprintf("%.1f", healthy.Load.ReplyRate.Mean), fmt.Sprintf("%.1f", limited.Load.ReplyRate.Mean))
	row("p99 connection ms", fmt.Sprintf("%.2f", healthy.Latency.P99), fmt.Sprintf("%.2f", limited.Latency.P99))
	row("completed", healthy.Load.Completed, limited.Load.Completed)
	row("errors", healthy.Load.Errors, limited.Load.Errors)
	row("reserve-fd sheds (EmfileSheds)", healthy.Server.EmfileSheds, limited.Server.EmfileSheds)
	row("paced backoffs (AcceptBackoffs)", healthy.Server.AcceptBackoffs, limited.Server.AcceptBackoffs)
	row("cpu utilisation", fmt.Sprintf("%.3f", healthy.CPUUtilization), fmt.Sprintf("%.3f", limited.CPUUtilization))
	fmt.Println("  every shed charged its failed accept, the reserve close, the drain")
	fmt.Println("  accept, the immediate close and the reserve reopen — survival is")
	fmt.Println("  priced, not free; the paced backoff keeps the loop from spinning.")
	fmt.Println()

	// --- Episode 2: a reset storm on thttpd/epoll --------------------------
	// 15% of connections are doomed at birth (seeded hash of the connection
	// id): half RST mid-request, half mid-response. Run it against plain
	// clients, then against clients that retry with capped exponential
	// backoff and seeded jitter.
	storm := faults.Config{Seed: 1, ResetRate: 0.15}
	plain := experiments.Run(spec(experiments.ServerThttpdEpoll, storm))
	withRetry := spec(experiments.ServerThttpdEpoll, storm)
	withRetry.Client.Retry = true
	retried := experiments.Run(withRetry)

	fmt.Println("Reset storm: thttpd/epoll, ResetRate 0.15, plain vs retrying clients:")
	fmt.Printf("  %-34s %12s %12s\n", "", "plain", "with -retry")
	row("replies/s", fmt.Sprintf("%.1f", plain.Load.ReplyRate.Mean), fmt.Sprintf("%.1f", retried.Load.ReplyRate.Mean))
	row("completed", plain.Load.Completed, retried.Load.Completed)
	row("client errors", plain.Load.Errors, retried.Load.Errors)
	row("client retries", plain.Load.Retries, retried.Load.Retries)
	row("server resets booked", plain.Server.Resets, retried.Server.Resets)
	row("p99 connection ms", fmt.Sprintf("%.2f", plain.Latency.P99), fmt.Sprintf("%.2f", retried.Latency.P99))
	fmt.Println("  each reset charged the syscall that observed it (ECONNRESET on the")
	fmt.Println("  read path, EPIPE on the draining write) plus the ordinary close; a")
	fmt.Println("  retried connection keeps its original start time, so the p99 above")
	fmt.Println("  honestly includes the backoff waits the retries inserted.")

	// Conservation holds in every scenario: nothing is double-booked and
	// nothing vanishes, faults or no faults.
	for _, r := range []experiments.RunResult{healthy, limited, plain, retried} {
		if r.Load.Completed+r.Load.Errors != r.Load.Issued {
			fmt.Printf("BOOKS DO NOT BALANCE: %+v\n", r.Load)
		}
	}
}
