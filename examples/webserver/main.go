// Webserver: thttpd on /dev/poll versus stock poll() under inactive load.
//
// This example reproduces, in miniature, the experiment behind Figures 6-9 of
// the paper: the same single-process web server is run twice — once on stock
// poll(), once on /dev/poll — against an httperf-like load of 800 requests per
// second while 251 idle connections sit in its interest set. It prints the
// reply rate, error percentage and median latency for both, showing the
// /dev/poll advantage the paper measured.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
)

func run(label, backend string) loadgen.Result {
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, netsim.DefaultConfig())

	cfg := thttpd.DefaultConfig()
	cfg.Backend = backend
	server := thttpd.New(k, net, cfg)
	server.Start()

	lcfg := loadgen.DefaultConfig(1000, 251)
	lcfg.Connections = 3000
	lcfg.SampleInterval = 500 * core.Millisecond
	lcfg.Timeout = core.Second
	gen := loadgen.New(k, net, lcfg)
	gen.OnDone(func(loadgen.Result) {
		server.Stop()
		k.Sim.Stop()
	})
	gen.Start(k.Now())
	k.Sim.RunUntil(core.Time(120 * core.Second))

	res := gen.Result()
	fmt.Printf("%-22s reply avg=%7.1f/s  errors=%5.1f%%  median=%7.2fms  served=%d\n",
		label, res.ReplyRate.Mean, res.ErrorPercent, res.MedianLatencyMs, server.Stats().Served)
	return res
}

func main() {
	fmt.Println("thttpd at 1000 req/s with 251 inactive connections (3000 benchmark connections)")
	stock := run("stock poll()", "poll")
	dev := run("/dev/poll", "devpoll")

	fmt.Printf("\n/dev/poll delivered %.2fx the reply rate at %.0fx lower median latency than stock poll()\n",
		dev.ReplyRate.Mean/stock.ReplyRate.Mean, stock.MedianLatencyMs/dev.MedianLatencyMs)
}
