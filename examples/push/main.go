// Push: server-originated traffic over a mostly-idle interest set.
//
// The request-driven figures measure how much a reply costs; this example
// measures what it costs to merely *hold* connections. A pushcore daemon
// keeps every member readable-registered, and on each 10 ms tick fans a
// 512-byte payload out to 32 members sampled from the set — so with 2000
// members, over 98% of the interest set is idle at any instant, and almost
// all the work is interest-set bookkeeping rather than I/O.
//
// That is the regime where the paper's mechanisms separate hardest: stock
// poll() rebuilds and scans the whole 2000-entry pollfd array every loop,
// while /dev/poll, epoll and the completion ring pay per *event*, i.e. per
// fan-out, no matter how large the idle population grows. RT signals sit in
// between: per-event delivery, but through a bounded queue. The same daemon
// runs on all five mechanisms below; only the CPU column moves.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/pushcore"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// run starts a pushcore daemon on the named backend, ramps the member
// population in over the first virtual second and lets the fan-out tick fire
// until the three-second mark.
func run(backend string, members int) (pushcore.Stats, core.Duration, int64) {
	k := simkernel.NewKernel(nil)
	ncfg := netsim.DefaultConfig()
	ncfg.ListenBacklog = members // let join bursts queue rather than refuse
	net := netsim.New(k, ncfg)

	cfg := pushcore.DefaultConfig() // fanout 32, 512 B payload, 10 ms tick
	cfg.Backend = backend
	cfg.Seed = 1
	s := pushcore.New(k, net, cfg)
	s.Start()

	ramp := core.Second / core.Duration(members)
	for i := 0; i < members; i++ {
		k.Sim.At(core.Time(core.Duration(i)*ramp), func(now core.Time) {
			var cc *netsim.ClientConn
			hooks := &simtest.ConnHooks{}
			hooks.OnConnected = func(now core.Time) {
				cc.Send(now, make([]byte, pushcore.SubscribeSize))
			}
			cc = net.ConnectWith(now, netsim.ConnectOptions{}, hooks)
		})
	}

	k.Sim.RunUntil(core.Time(3 * core.Second))
	s.Stop()
	k.Sim.Run()
	return s.Stats(), k.CPU.Busy, s.Loops()
}

func table(members int) {
	fmt.Printf("%-9s %10s %8s %8s %12s\n",
		"backend", "subscribed", "ticks", "pushed", "server-cpu")
	for _, backend := range []string{"poll", "devpoll", "rtsig", "epoll", "compio"} {
		st, busy, _ := run(backend, members)
		fmt.Printf("%-9s %10d %8d %8d %12v\n",
			backend, st.Subscribed, st.Ticks, st.Pushed, busy)
	}
}

func main() {
	// --- 1. A set every mechanism can hold --------------------------------
	// At 400 members all five mechanisms subscribe everyone and fire every
	// tick; the CPU column already separates them, because poll pays for 400
	// registrations per loop while the others pay for ~32 events per tick.
	fmt.Println("1. 400 members, fanout 32 every 10 ms, 3 s of virtual time")
	fmt.Printf("   active fraction per tick: %.0f%%\n\n", 100*32.0/400)
	table(400)

	// --- 2. Growing only the idle population ------------------------------
	// Five times the members, identical traffic: the fan-out is still 32
	// payloads per tick, so a per-event mechanism's work barely moves. poll's
	// scan cost is O(members) per loop, and here it saturates the CPU —
	// subscriptions lag and ticks are missed outright, the figure-36/37 knee
	// in miniature.
	fmt.Println("\n2. 2000 members, same fanout — only the *idle* set grew")
	fmt.Printf("   active fraction per tick: %.1f%%\n\n", 100*32.0/2000)
	table(2000)

	fmt.Println("\nThe pushed column is the real throughput: per-event mechanisms do")
	fmt.Println("identical application work in both tables, while poll loses ticks to")
	fmt.Println("interest-set scanning. Figures 36-37 sweep this to 100k+ members.")
}
