// Hybrid: a load ramp across the RT-signal/devpoll crossover.
//
// The paper's §4 imagines a server that uses RT signals while lightly loaded
// (for their latency advantage) and polling once load grows (for its
// throughput advantage), using the RT signal queue as the load indicator. This
// example runs that server — built in internal/servers/hybrid following §6's
// prescriptions — against a request-rate ramp and reports, per step, the reply
// rate, the mode it ran in, and the switching it performed.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("hybrid server under a request-rate ramp, 251 inactive connections")
	fmt.Printf("%8s %12s %8s %12s %18s %18s\n",
		"rate", "reply avg", "err%", "median ms", "switches→devpoll", "final mode")

	for _, rate := range []float64{400, 700, 1000, 1300} {
		spec := experiments.RunSpec{
			Server:      experiments.ServerHybrid,
			RequestRate: rate,
			Inactive:    251,
			Connections: 2500,
			Seed:        7,
			// A small queue makes the crossover visible at ramp scale, the way
			// §4 proposes using the queue limit itself as the trigger.
			RTQueueLimit: 64,
		}
		res := experiments.Run(spec)
		fmt.Printf("%8.0f %12.1f %8.1f %12.2f %18d %18s\n",
			rate, res.Load.ReplyRate.Mean, res.Load.ErrorPercent,
			res.Load.MedianLatencyMs, res.SwitchesToPoll, res.FinalMode)
	}

	fmt.Println("\nacross the ramp the hybrid keeps /dev/poll-class throughput; it stays in its")
	fmt.Println("low-latency RT-signal mode while it can and crosses over to /dev/poll when the")
	fmt.Println("signal queue backs up or overflows (see examples/overload for a burst that")
	fmt.Println("forces the crossover, and internal/servers/hybrid for the §4/§6 policy)")
}
