// Eventlib: the callback API on a mixed read+timer workload, with priorities.
//
// One EventBase (epoll backend, two priority buckets) multiplexes three kinds
// of work, the composition the hand-rolled server loops could not express
// without duplicating dispatch code:
//
//   - high-priority (bucket 0) read events on two client connections;
//   - a low-priority (bucket 1) persistent housekeeping timer, which starves
//     while high-priority I/O keeps arriving and runs the moment it quiets;
//   - a one-shot watchdog timer that re-adds itself from inside its own
//     callback, the libevent idiom for adaptive timers.
//
// Everything runs in virtual time on the simulated CPU, so the printout is
// deterministic and the CPU cost of the event machinery itself is visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func main() {
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, netsim.DefaultConfig())
	proc := k.NewProc("eventlib-demo")
	api := netsim.NewSockAPI(k, proc, net)

	base, err := eventlib.New(k, proc, eventlib.Config{Priorities: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event base on %q with 2 priority buckets\n", base.Poller().Name())

	// Accept connections and give each a high-priority persistent read event.
	var lfd *simkernel.FD
	reads := 0
	proc.Batch(k.Now(), func() {
		lfd, _ = api.Listen()
		acceptEv := base.NewEvent(lfd.Num, eventlib.EvRead|eventlib.EvPersist,
			func(_ int, _ eventlib.What, now core.Time) {
				for {
					fd, _, err := api.Accept(lfd)
					if err != nil {
						return
					}
					var ev *eventlib.Event
					ev = base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
						func(cfd int, _ eventlib.What, now core.Time) {
							data, eof := api.Read(fd, 0)
							if len(data) > 0 {
								reads++
								fmt.Printf("at %v [pri0] fd %d: %d bytes\n", now, cfd, len(data))
								api.Write(fd, 64)
							}
							if eof {
								_ = ev.Del()
								api.Close(fd)
							}
						})
					// Priority 0 (highest): connection I/O preempts housekeeping.
					if err := ev.SetPriority(0); err != nil {
						log.Fatal(err)
					}
					if err := ev.Add(0); err != nil {
						log.Fatal(err)
					}
				}
			})
		if err := acceptEv.Add(0); err != nil {
			log.Fatal(err)
		}
	}, nil)

	// Low-priority housekeeping: drained only when no higher bucket is active.
	housekeeping := base.NewTimer(eventlib.EvPersist, func(_ int, _ eventlib.What, now core.Time) {
		fmt.Printf("at %v [pri1] housekeeping (%d reads so far)\n", now, reads)
	})
	if err := housekeeping.SetPriority(1); err != nil {
		log.Fatal(err)
	}
	if err := housekeeping.Add(15 * core.Millisecond); err != nil {
		log.Fatal(err)
	}

	// A one-shot watchdog that re-arms itself from inside its callback,
	// doubling its interval each time — the adaptive-timer idiom.
	interval := 10 * core.Millisecond
	beats := 0
	var watchdog *eventlib.Event
	watchdog = base.NewTimer(0, func(_ int, what eventlib.What, now core.Time) {
		beats++
		fmt.Printf("at %v [watchdog] beat %d (%v), interval now %v\n", now, beats, what, interval*2)
		interval *= 2
		if beats < 3 {
			if err := watchdog.Add(interval); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Printf("at %v [watchdog] final beat: shutting the base down\n", now)
		if err := base.Close(); err != nil {
			log.Fatal(err)
		}
	})
	if err := watchdog.Add(interval); err != nil {
		log.Fatal(err)
	}

	// Two clients send staggered bursts of request data.
	for i, delay := range []core.Duration{3 * core.Millisecond, 8 * core.Millisecond} {
		cc := net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
		size := 32 * (i + 1)
		k.Sim.After(delay, func(now core.Time) { cc.Send(now, make([]byte, size)) })
		k.Sim.After(delay+18*core.Millisecond, func(now core.Time) { cc.Send(now, make([]byte, size)) })
	}

	base.Dispatch()
	k.Sim.Run()

	fmt.Printf("done: %d reads, %d watchdog beats, %d dispatch iterations, CPU %v\n",
		reads, beats, base.Iterations(), k.CPU.Busy)
}
