// Overload: the RT signal queue, its overflow, and phhttpd's recovery.
//
// This example shrinks phhttpd's RT signal queue and hits the server with a
// synchronized burst of connections, demonstrating the overflow path the paper
// dissects in §6: SIGIO is raised, pending signals are flushed, every open
// connection is handed to the poll sibling one at a time, and the server ends
// its life in polling mode. It then repeats the burst against the hybrid
// server, which keeps its /dev/poll interest set current and absorbs the same
// overload without the expensive handoff.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/servers/hybrid"
	"repro/internal/servers/phhttpd"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// burst launches n simultaneous requests against the network's listener.
func burst(k *simkernel.Kernel, net *netsim.Network, n int) *int {
	served := new(int)
	for i := 0; i < n; i++ {
		cc := net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
			OnPeerClosed: func(core.Time) { *served++ },
		})
		k.Sim.After(core.Millisecond, func(now core.Time) {
			cc.Send(now, httpsim.FormatRequest("/index.html"))
		})
	}
	return served
}

func main() {
	const burstSize = 80

	// --- phhttpd with a tiny RT signal queue -------------------------------
	k1 := simkernel.NewKernel(nil)
	net1 := netsim.New(k1, netsim.DefaultConfig())
	phCfg := phhttpd.DefaultConfig()
	phCfg.QueueLimit = 8
	ph := phhttpd.New(k1, net1, phCfg)
	ph.Start()
	k1.Sim.RunUntil(core.Time(10 * core.Millisecond))

	served1 := burst(k1, net1, burstSize)
	k1.Sim.RunUntil(core.Time(10 * core.Second))
	ph.Stop()

	q := ph.SignalQueue().MechanismStats()
	fmt.Println("phhttpd with an 8-entry RT signal queue, 80-connection burst:")
	fmt.Printf("  signals enqueued=%d dropped=%d overflows=%d\n", q.Enqueued, q.Dropped, q.Overflows)
	fmt.Printf("  recovery: handed %d descriptors to the poll sibling, final mode %q\n",
		ph.Handoffs, ph.Mode())
	fmt.Printf("  served %d of %d (clients observed %d completions)\n\n",
		ph.Stats().Served, burstSize, *served1)

	// --- the hybrid server under the same burst ----------------------------
	k2 := simkernel.NewKernel(nil)
	net2 := netsim.New(k2, netsim.DefaultConfig())
	hyCfg := hybrid.DefaultConfig()
	hyCfg.QueueLimit = 8
	hyCfg.HighWater = 4
	hy := hybrid.New(k2, net2, hyCfg)
	hy.Start()
	k2.Sim.RunUntil(core.Time(10 * core.Millisecond))

	served2 := burst(k2, net2, burstSize)
	k2.Sim.RunUntil(core.Time(10 * core.Second))
	hy.Stop()

	fmt.Println("hybrid server with the same 8-entry queue and burst:")
	fmt.Printf("  switches to /dev/poll=%d, back to signals=%d, final mode %q\n",
		hy.SwitchesToPoll, hy.SwitchesToSignal, hy.Mode())
	fmt.Printf("  served %d of %d (clients observed %d completions)\n",
		hy.Stats().Served, burstSize, *served2)
	fmt.Println("\nthe hybrid needs no per-connection handoff: its kernel interest set was maintained all along (§6)")
}
