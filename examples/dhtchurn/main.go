// Dhtchurn: a datagram rendezvous node under peer churn.
//
// The push example grows an idle interest set; this one keeps the set small
// but churning. Peers ping a well-known datagram address to join; the node
// opens a dedicated session socket per live peer (the NAT-keepalive shape of
// real DHT nodes), pongs every ping from it, and expires peers that go quiet
// past the peer timeout, closing their sockets. The interest set is one
// descriptor per live peer, joining and leaving at the churn rate — so
// descriptor numbers recycle constantly while pings for dead sessions may
// still be in flight, which is exactly the race the fd-generation machinery
// exists to kill: a stale datagram must die at the generation check, never
// leak into whichever new session recycled the slot.
//
// Part 2 turns on the wire's loss and reorder knobs: losses are decided by a
// deterministic hash of the send sequence, so the run — including which join
// pings vanish — is bit-identical every time.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/dhtnode"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// tally counts the client side of one run.
type tally struct {
	pings int
	pongs int
}

// startPeer schedules one peer: join at `at`, then ping the session socket
// every interval, `pings` times, and go silent (to be expired by the sweep).
func startPeer(k *simkernel.Kernel, net *netsim.Network, at core.Time,
	pings int, interval core.Duration, c *tally) {
	k.Sim.At(at, func(now core.Time) {
		var pr *netsim.Peer
		var session netsim.Addr
		hooks := &simtest.DgramHooks{}
		hooks.OnStarted = func(now core.Time) {
			c.pings++
			pr.SendTo(now, dhtnode.WellKnownAddr, 64)
		}
		hooks.OnDatagram = func(now core.Time, from netsim.Addr, size int) {
			c.pongs++
			if session != 0 {
				return
			}
			// The first pong reveals the dedicated session socket; keep it
			// alive for a while, then stop and let the node expire us.
			session = from
			for i := 1; i <= pings; i++ {
				k.Sim.At(now.Add(core.Duration(i)*interval), func(now core.Time) {
					c.pings++
					pr.SendTo(now, session, 64)
				})
			}
		}
		pr = net.NewPeer(now, netsim.PeerOptions{}, hooks)
	})
}

// run drives `peers` churning peers through a dhtnode on the named backend
// for three virtual seconds and returns both sides' books.
func run(backend string, peers int, ncfg netsim.Config) (dhtnode.Stats, netsim.Stats, tally, int, core.Duration) {
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, ncfg)

	cfg := dhtnode.DefaultConfig()
	cfg.Backend = backend
	cfg.PeerTimeout = 300 * core.Millisecond
	cfg.SweepInterval = 100 * core.Millisecond
	s := dhtnode.New(k, net, cfg)
	s.Start()

	var c tally
	ramp := core.Second / core.Duration(peers)
	for i := 0; i < peers; i++ {
		// Each peer lives ~500 ms (5 keepalives at 100 ms), so joins and
		// expiries overlap for the whole first two seconds.
		startPeer(k, net, core.Time(core.Duration(i)*ramp), 5, 100*core.Millisecond, &c)
	}
	k.Sim.RunUntil(core.Time(3 * core.Second))
	s.Stop()
	k.Sim.Run()
	return s.Stats(), net.Stats(), c, s.LivePeers(), k.CPU.Busy
}

func main() {
	const peers = 200

	// --- 1. The churn lifecycle, on every mechanism -----------------------
	// 200 peers join over one second, each keeps its session alive for half a
	// second and goes quiet; the sweep expires it 300 ms later. Every backend
	// sees the same deterministic traffic.
	fmt.Printf("1. %d peers churning through the node, 3 s of virtual time\n\n", peers)
	fmt.Printf("%-9s %6s %6s %8s %6s %12s\n",
		"backend", "joins", "pongs", "expired", "live", "server-cpu")
	for _, backend := range []string{"poll", "devpoll", "rtsig", "epoll", "compio"} {
		st, _, _, live, busy := run(backend, peers, netsim.DefaultConfig())
		fmt.Printf("%-9s %6d %6d %8d %6d %12v\n",
			backend, st.Joins, st.Pongs, st.Expired, live, busy)
	}

	// --- 2. A lossy, reordering wire --------------------------------------
	// 10% of datagrams vanish and 20% arrive an extra half-RTT late, decided
	// by a deterministic hash of the send order. Peers whose one join ping is
	// lost never enter; everything else keeps balancing: every ping is
	// accounted for as delivered, dropped in flight, or stale (in flight
	// across a session expiry when its descriptor slot had been recycled).
	ncfg := netsim.DefaultConfig()
	ncfg.DgramLossRate = 0.10
	ncfg.DgramReorderRate = 0.20
	st, ns, c, live, _ := run("epoll", peers, ncfg)
	fmt.Printf("\n2. same run on epoll with 10%% loss, 20%% reorder\n")
	fmt.Printf("   client pings sent: %d   pongs received: %d\n", c.pings, c.pongs)
	fmt.Printf("   node: joins=%d pongs=%d expired=%d live-at-end=%d\n",
		st.Joins, st.Pongs, st.Expired, live)
	fmt.Printf("   wire: sent=%d delivered=%d dropped=%d stale=%d (sent = delivered+dropped+stale: %v)\n",
		ns.DgramsSent, ns.DgramsDelivered, ns.DgramsDropped, ns.DgramsStale,
		ns.DgramsSent == ns.DgramsDelivered+ns.DgramsDropped+ns.DgramsStale)
	fmt.Println("\nFigure 38 sweeps this node's ping rate past saturation on all five")
	fmt.Println("mechanisms; figure 39 holds the rate and sweeps the churn instead.")
}
