// Keepalive: the persistent-connection hot path, one connection at a time.
//
// This example walks the three axes of the HTTP/1.1 hot path that the
// figure-32 family measures at scale, each isolated on a single simulated
// connection so the individual charges are visible:
//
//  1. Keep-alive and pipelining — one connection carries eight pipelined
//     requests plus a final Connection: close; the server answers all nine
//     over a single accept and a single interest-set registration.
//  2. The mmap response cache — the first request for a document charges
//     open(2)+fstat(2) and a page-fault walk (a miss); repeat requests charge
//     only the cache-hit cost. The CPU time of the miss exchange and a hit
//     exchange are printed side by side.
//  3. sendfile versus copy — the same pipelined exchange is served once with
//     two write(2) calls per response (header, then body copied through user
//     space) and once with write+sendfile(2); the zero-copy path's saving is
//     the per-KB copy charge the cost model prices.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rcache"
	"repro/internal/servers/httpcore"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// exchange starts a fresh thttpd/epoll with the given options, drives one
// client connection through the payload, and returns the server, the bytes
// the client received and the server CPU time consumed.
func exchange(opts httpcore.Options, payload []byte) (*thttpd.Server, int, core.Duration) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := thttpd.DefaultConfig()
	cfg.Backend = "epoll"
	cfg.HTTP = opts
	s := thttpd.New(k, n, cfg)
	s.Start()

	received := 0
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData: func(_ core.Time, b int) { received += b },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) { cc.Send(now, payload) })
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()
	return s, received, k.CPU.Busy
}

// pipeline builds n keep-alive requests plus one Connection: close request.
func pipeline(n int) []byte {
	var payload []byte
	for i := 0; i < n; i++ {
		payload = append(payload, httpsim.FormatRequest11("/index.html", false)...)
	}
	return append(payload, httpsim.FormatRequest11("/index.html", true)...)
}

func main() {
	cost := simkernel.DefaultCostModel()

	// --- 1. Keep-alive and pipelining ------------------------------------
	// Nine requests, one connection: the server accepts once, registers the
	// descriptor once, and the pipelined batch is dispatched a budget at a
	// time from single readiness events.
	s, received, busy := exchange(httpcore.Options{KeepAlive: true}, pipeline(8))
	st := s.Stats()
	fmt.Println("1. keep-alive + pipelining: 9 requests, 1 connection")
	fmt.Printf("   served=%d kept-alive=%d accepts=%d client-bytes=%d cpu=%v\n",
		st.Served, st.KeptAlive, st.Accepted, received, busy)

	// The same nine requests over nine HTTP/1.0 connections pay nine accepts
	// and nine teardowns.
	var total core.Duration
	var accepts int64
	for i := 0; i < 9; i++ {
		one := []byte(httpsim.FormatRequest("/index.html"))
		s, _, busy := exchange(httpcore.Options{}, one)
		total += busy
		accepts += s.Stats().Accepted
	}
	fmt.Printf("   http/1.0 comparison: 9 connections, accepts=%d cpu=%v (%.2fx the keep-alive cpu)\n\n",
		accepts, total, float64(total)/float64(busy))

	// --- 2. The mmap response cache --------------------------------------
	// With the cache enabled, the first request faults the document in: one
	// FileOpen plus one FileReadPage per page. Every later request for the
	// same document is a hit and charges only CacheHit.
	s, _, _ = exchange(httpcore.Options{KeepAlive: true, CacheKB: 64}, pipeline(8))
	st = s.Stats()
	fmt.Println("2. mmap response cache: first request misses, the rest hit")
	fmt.Printf("   cache-misses=%d cache-hits=%d\n", st.CacheMisses, st.CacheHits)
	pages := rcache.Pages(httpsim.DefaultDocumentSize)
	fmt.Printf("   miss charge: FileOpen %v + %d pages x FileReadPage %v = %v\n",
		cost.FileOpen, pages, cost.FileReadPage,
		cost.FileOpen+core.Duration(pages)*cost.FileReadPage)
	fmt.Printf("   hit charge:  CacheHit %v\n\n", cost.CacheHit)

	// --- 3. sendfile versus copy -----------------------------------------
	// Identical exchanges; only the response write path differs. The copy
	// path pays SockWriteCopyPerKB for every body byte it drags through user
	// space, the sendfile path pays SendfilePage per page instead.
	_, _, copyBusy := exchange(httpcore.Options{KeepAlive: true, WriteMode: httpcore.WriteCopy}, pipeline(8))
	_, _, sfBusy := exchange(httpcore.Options{KeepAlive: true, WriteMode: httpcore.WriteSendfile}, pipeline(8))
	fmt.Println("3. write path: copy vs sendfile, same 9-request exchange")
	fmt.Printf("   copy cpu=%v sendfile cpu=%v (saving %v)\n",
		copyBusy, sfBusy, copyBusy-sfBusy)
	fmt.Printf("   per response: copy charges %v/KB of body, sendfile %v/page\n",
		cost.SockWriteCopyPerKB, cost.SendfilePage)
}
