// Quickstart: the eventlib callback API in five minutes.
//
// This example builds the smallest possible simulation — a kernel, one
// process, a handful of simulated sockets — and drives it through eventlib,
// the libevent-style API the servers use: an EventBase opened on a registry
// backend (here /dev/poll, the paper's §3 mechanism), persistent read events,
// and a timer, all dispatched by callbacks while every operation still
// charges the calibrated cost model.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func main() {
	// A kernel (virtual clock + simulated CPU + cost model) and one process.
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, netsim.DefaultConfig())
	proc := k.NewProc("quickstart")
	api := netsim.NewSockAPI(k, proc, net)

	// The backend registry replaces per-mechanism constructors: ask for
	// /dev/poll by name, or pass "" for the preferred backend (epoll).
	fmt.Print("registered backends (preference order):")
	for _, b := range eventlib.Backends() {
		fmt.Printf(" %s", b.Name)
	}
	fmt.Println()
	base, err := eventlib.New(k, proc, eventlib.Config{Backend: "devpoll"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event base running on %q\n", base.Poller().Name())

	// The listener: a persistent read event whose callback accepts and, for
	// each new connection, registers another persistent read event. This is
	// the whole server pattern — no hand-rolled wait loop, no readiness
	// iteration.
	var lfd *simkernel.FD
	served := 0
	proc.Batch(k.Now(), func() {
		lfd, _ = api.Listen()
		acceptEv := base.NewEvent(lfd.Num, eventlib.EvRead|eventlib.EvPersist,
			func(_ int, _ eventlib.What, now core.Time) {
				for {
					fd, _, err := api.Accept(lfd)
					if err != nil {
						return
					}
					fmt.Printf("at %v accepted fd %d\n", now, fd.Num)
					var ev *eventlib.Event
					ev = base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
						func(cfd int, what eventlib.What, now core.Time) {
							data, eof := api.Read(fd, 0)
							if len(data) > 0 {
								fmt.Printf("at %v fd %d %v: read %d bytes, replying\n", now, cfd, what, len(data))
								api.Write(fd, 128)
								served++
							}
							if eof {
								// Deleting from inside the callback is safe and
								// deterministic: this event never fires again.
								_ = ev.Del()
								fmt.Printf("at %v fd %d closed by peer\n", now, cfd)
								api.Close(fd)
							}
						})
					if err := ev.Add(0); err != nil {
						log.Fatal(err)
					}
				}
			})
		if err := acceptEv.Add(0); err != nil {
			log.Fatal(err)
		}
	}, nil)

	// A periodic timer shares the loop with the I/O events; the base derives
	// its poll timeouts from the timer heap.
	ticks := 0
	tick := base.NewTimer(eventlib.EvPersist, func(_ int, _ eventlib.What, now core.Time) {
		ticks++
		fmt.Printf("at %v timer tick %d (%d events registered)\n", now, ticks, base.NumEvents())
		if ticks == 3 {
			base.Stop()
		}
	})
	if err := tick.Add(20 * core.Millisecond); err != nil {
		log.Fatal(err)
	}

	// Two clients connect; one sends a request, one stays idle.
	active := net.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	net.ConnectWith(k.Now(), netsim.ConnectOptions{RTT: 100 * core.Millisecond}, &simtest.ConnHooks{})
	k.Sim.After(5*core.Millisecond, func(now core.Time) {
		active.Send(now, make([]byte, 64))
	})

	base.Dispatch()
	k.Sim.Run()

	fmt.Printf("served %d requests over %d dispatch iterations\n", served, base.Iterations())
	if src, ok := base.Poller().(core.StatsSource); ok {
		st := src.MechanismStats()
		fmt.Printf("mechanism stats: waits=%d events=%d driver-polls=%d hint-hits=%d\n",
			st.Waits, st.EventsReturned, st.DriverPolls, st.HintHits)
	}
	fmt.Printf("simulated CPU time consumed: %v\n", k.CPU.Busy)
}
