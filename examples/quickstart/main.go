// Quickstart: the /dev/poll event API in isolation.
//
// This example builds the smallest possible simulation — a kernel, one
// process, a handful of simulated sockets — and drives the /dev/poll interface
// exactly as §3 of the paper describes: interests are written incrementally
// (including a POLLREMOVE), readiness is collected with DP_POLL, and the
// mechanism statistics show driver hints doing their job.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/netsim"
	"repro/internal/simkernel"
)

func main() {
	// A kernel (virtual clock + simulated CPU + cost model) and one process.
	k := simkernel.NewKernel(nil)
	net := netsim.New(k, netsim.DefaultConfig())
	proc := k.NewProc("quickstart")
	api := netsim.NewSockAPI(k, proc, net)

	// Open /dev/poll with the paper's full option set (hints + mmap results).
	dp := devpoll.Open(k, proc, devpoll.DefaultOptions())

	// A listening socket plus three client connections: one sends a request
	// immediately, one stays idle, one will be removed from the interest set.
	var lfd *simkernel.FD
	proc.Batch(k.Now(), func() {
		lfd, _ = api.Listen()
		if err := dp.Add(lfd.Num, core.POLLIN); err != nil {
			log.Fatal(err)
		}
	}, nil)

	active := net.Connect(k.Now(), netsim.ConnectOptions{}, netsim.Handlers{})
	net.Connect(k.Now(), netsim.ConnectOptions{RTT: 100 * core.Millisecond}, netsim.Handlers{})
	net.Connect(k.Now(), netsim.ConnectOptions{}, netsim.Handlers{})
	k.Sim.Run()

	// Accept everything and register interest in each connection.
	var fds []int
	proc.Batch(k.Now(), func() {
		for {
			fd, _, ok := api.Accept(lfd)
			if !ok {
				break
			}
			if err := dp.Add(fd.Num, core.POLLIN); err != nil {
				log.Fatal(err)
			}
			fds = append(fds, fd.Num)
		}
		// Drop interest in the last connection with a POLLREMOVE write.
		if err := dp.Update([]core.PollFD{{FD: fds[len(fds)-1], Events: core.POLLREMOVE}}); err != nil {
			log.Fatal(err)
		}
	}, nil)
	k.Sim.Run()
	fmt.Printf("interest set holds %d descriptors (listener + connections - POLLREMOVE)\n", dp.Len())

	// The first client sends 64 bytes of request data.
	active.Send(k.Now(), make([]byte, 64))
	k.Sim.Run()

	// DP_POLL returns exactly the descriptor that became ready.
	dp.Wait(16, core.Forever, func(events []core.Event, now core.Time) {
		fmt.Printf("at %v DP_POLL returned %d event(s):\n", now, len(events))
		for _, ev := range events {
			fmt.Printf("  fd %d ready for %v\n", ev.FD, ev.Ready)
		}
	})
	k.Sim.Run()

	stats := dp.MechanismStats()
	fmt.Printf("mechanism stats: waits=%d driver-polls=%d hint-hits=%d copied-out=%d\n",
		stats.Waits, stats.DriverPolls, stats.HintHits, stats.CopiedOut)
	fmt.Printf("interest table: %d entries in %d hash buckets\n", dp.Table().Len(), dp.Table().Buckets())
	fmt.Printf("simulated CPU time consumed: %v\n", k.CPU.Busy)
}
