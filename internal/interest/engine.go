package interest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simkernel"
)

// engineState tracks where a wait currently is.
type engineState int

const (
	// stateIdle: no Wait in flight.
	stateIdle engineState = iota
	// stateScanning: a scan/dequeue batch is on the simulated CPU.
	stateScanning
	// stateBlocked: the scan found nothing; the process sleeps until a driver
	// notification (Wake) or the timeout fires.
	stateBlocked
	// stateExpiring: the timeout fired and its teardown batch is on the CPU;
	// the wait is committed to returning empty. Wakes during this window are
	// ignored — the readiness they announce is already latched in the
	// mechanism's ledger or queue and the next Wait's first pass collects it.
	stateExpiring
)

// Engine is the blocking-wait state machine shared by every event mechanism.
// Each mechanism owns what happens inside a scan (which descriptors to
// examine, what CPU costs to charge) and plugs it in through the hook fields;
// the engine owns the part they all used to duplicate: the
// idle/scanning/blocked lifecycle, the first-pass fast path versus the
// rescan-after-wakeup path, wakeups racing with an in-flight scan, timeout
// scheduling and cancellation, and dispatching the handler at the virtual
// instant the underlying blocking call would have returned.
//
// The zero value is not usable; populate the exported fields before the first
// Wait and do not change them afterwards.
type Engine struct {
	// Name identifies the mechanism in panic messages.
	Name string
	K    *simkernel.Kernel
	P    *simkernel.Proc

	// Collect runs inside the scan batch and returns the ready events for this
	// pass, charging all scan CPU costs (syscall entry on the first pass,
	// scheduler wakeup on rescans, per-descriptor work, copy-out) as it goes.
	// It must respect max, and it must build its result by appending to buf
	// (length zero, engine-owned storage): the engine double-buffers the
	// result area, so one wait's events stay valid while the next wait
	// collects, and steady-state waits allocate nothing.
	Collect func(firstPass bool, max int, buf []core.Event) []core.Event

	// OnBlock, if non-nil, runs inside the scan batch when nothing was ready
	// and the wait is about to block (timeout != 0): the point where a
	// mechanism joins wait queues (arms watchers) and charges for doing so.
	OnBlock func(firstPass bool)

	// OnFinish, if non-nil, runs immediately before the handler is invoked:
	// the point where a mechanism leaves the wait queues it joined (disarms
	// watchers). It runs on every completion path (events, timeout, abort).
	OnFinish func()

	// TimeoutTeardown, if non-nil, returns the CPU cost of dismantling the
	// blocked wait when its timeout expires; the engine charges it in a batch
	// before delivering the empty result. Nil means the timeout completes
	// without CPU work (RT signals).
	TimeoutTeardown func() core.Duration

	// Stats, if non-nil, receives the engine-level counters the mechanism
	// exposes (currently the EINTR interrupt count). Mechanisms point it at
	// their core.Stats block.
	Stats *core.Stats

	state      engineState
	pendWake   bool
	pendExpire bool
	curMax     int
	curHand    func(events []core.Event, now core.Time)

	// timeoutID is the generation of the live timeout registration; completing
	// a wait bumps it, so stale registrations still queued in the simulator
	// become no-ops. Registration records (each carrying its generation and a
	// once-bound callback) are pooled: a blocking wait with a finite timeout
	// allocates nothing at steady state.
	timeoutID   int64
	timeoutPool []*timeoutReg

	// EINTR fault-injection state. intrSeq counts blocking episodes on this
	// engine (the deterministic decision sequence — lane-local, so it is
	// identical at every thread count); intrSalt separates this engine's
	// decision stream from every other engine's; intrCharge marks that the
	// next scan batch must charge the signal delivery that interrupted the
	// wait. Interrupt registrations share the timeout pool's generation check,
	// so completing a wait staleness-kills any interrupt still in flight.
	intrSalt   uint64
	intrSeq    uint64
	intrCharge bool
	intrPool   []*intrReg

	// Per-scan parameters and the pre-bound batch closures: one wait is in
	// flight at a time, so the parameters live in fields and the two closures
	// handed to Proc.Batch are created once and reused for every scan —
	// the wait path performs no allocation of its own.
	scanFirst   bool
	scanTimeout core.Duration
	scanReady   []core.Event
	scanFn      func()
	scanDoneFn  func(done core.Time)

	// bufs is the double-buffered result area Collect appends into; cur
	// selects the buffer the in-flight scan owns. Two buffers make the events
	// delivered to one handler survive a Wait started from inside that
	// handler, matching the fresh-slice behaviour the mechanisms had before
	// the result area was pooled.
	bufs [2][]core.Event
	cur  int
}

// Idle reports whether no Wait is in flight.
func (e *Engine) Idle() bool { return e.state == stateIdle }

// Wait starts one blocking wait: at most max events, blocking for at most
// timeout (core.Forever blocks indefinitely, 0 never blocks). The handler is
// invoked exactly once, at the virtual time the underlying call would have
// returned. A second Wait while one is in flight is a programming error.
func (e *Engine) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if e.state != stateIdle {
		panic(fmt.Sprintf("%s: concurrent Wait while one is in flight", e.Name))
	}
	e.curMax = max
	e.curHand = handler
	e.pendWake = false
	e.pendExpire = false
	e.scan(true, timeout)
}

// Wake is called by the mechanism's readiness notification (driver hint,
// wait-queue wakeup, signal enqueue). A wake during a scan marks the scan for
// an immediate rescan; a wake while blocked starts the rescan right away. The
// rescan carries core.Forever: any original timeout stays scheduled and still
// bounds the overall wait through its generation check.
func (e *Engine) Wake() {
	switch e.state {
	case stateScanning:
		e.pendWake = true
	case stateBlocked:
		e.scan(false, core.Forever)
	}
}

// Abort cancels a blocked wait, delivering an empty result at now. Waits that
// are mid-scan are left to complete normally. Mechanisms call it from Close so
// a close-while-waiting never strands the caller.
func (e *Engine) Abort(now core.Time) {
	if e.state == stateBlocked {
		e.finish(nil, now)
	}
}

// scan performs one pass inside a process batch. firstPass distinguishes the
// initial system call (which pays entry and copy-in costs) from a rescan after
// a wait-queue wakeup (which pays the scheduler wakeup instead).
func (e *Engine) scan(firstPass bool, timeout core.Duration) {
	if e.scanFn == nil {
		e.scanFn = e.runScan
		e.scanDoneFn = e.scanDone
	}
	e.state = stateScanning
	e.scanFirst = firstPass
	e.scanTimeout = timeout
	e.P.Batch(e.P.Now(), e.scanFn, e.scanDoneFn)
}

// runScan is the batch body of one scan pass.
func (e *Engine) runScan() {
	if e.intrCharge {
		// The previous blocking call was interrupted: charge delivering the
		// signal and returning from its handler. Collect's first-pass entry
		// charge below is the restarted syscall's fresh kernel entry.
		e.intrCharge = false
		e.P.Charge(e.K.Cost.SignalDeliver)
	}
	e.cur ^= 1
	e.scanReady = e.Collect(e.scanFirst, e.curMax, e.bufs[e.cur][:0])
	e.bufs[e.cur] = e.scanReady[:0]
	if len(e.scanReady) > 0 || e.scanTimeout == 0 {
		return
	}
	if e.OnBlock != nil {
		e.OnBlock(e.scanFirst)
	}
}

// scanDone runs at the scan batch's completion instant.
func (e *Engine) scanDone(done core.Time) {
	ready := e.scanReady
	timeout := e.scanTimeout
	e.scanReady = nil
	if len(ready) > 0 || timeout == 0 {
		e.finish(ready, done)
		return
	}
	if e.pendWake {
		// A readiness notification raced with the scan; rescan immediately.
		// A deadline that passed meanwhile (pendExpire) stays pending: if
		// the rescan also finds nothing, the wait times out below instead
		// of re-blocking forever.
		e.pendWake = false
		e.scan(false, timeout)
		return
	}
	if e.pendExpire {
		// The deadline passed while a rescan was on the CPU and the rescan
		// found nothing: the wait times out now.
		e.pendExpire = false
		e.expire(done)
		return
	}
	e.state = stateBlocked
	if timeout > 0 {
		e.timeoutID++
		var reg *timeoutReg
		if n := len(e.timeoutPool); n > 0 {
			reg = e.timeoutPool[n-1]
			e.timeoutPool[n-1] = nil
			e.timeoutPool = e.timeoutPool[:n-1]
		} else {
			reg = &timeoutReg{e: e}
			reg.fn = reg.fire
		}
		reg.id = e.timeoutID
		e.P.Q().At(done.Add(timeout), reg.fn)
	}
	if e.K.Faults.EINTRRate > 0 {
		e.armInterrupt(done)
	}
}

// armInterrupt rolls the EINTR decision for the blocking episode that just
// began and, when doomed, schedules the interrupt. Every blocking episode
// rolls independently — including the re-block after an interrupted wait's
// restart found nothing — so a high rate produces the geometric interrupt
// storms fig 42 sweeps.
func (e *Engine) armInterrupt(done core.Time) {
	if e.intrSalt == 0 {
		e.intrSalt = faults.SaltString(e.Name + "/" + e.P.Name)
	}
	e.intrSeq++
	fire, delay := e.K.Faults.EINTR(e.intrSalt, e.intrSeq)
	if !fire {
		return
	}
	var reg *intrReg
	if n := len(e.intrPool); n > 0 {
		reg = e.intrPool[n-1]
		e.intrPool[n-1] = nil
		e.intrPool = e.intrPool[:n-1]
	} else {
		reg = &intrReg{e: e}
		reg.fn = reg.fire
	}
	reg.id = e.timeoutID
	e.P.Q().At(done.Add(delay), reg.fn)
}

// intrReg is one scheduled EINTR delivery. Like timeoutReg it carries the
// engine generation it was armed under and recycles itself after firing.
type intrReg struct {
	e  *Engine
	id int64
	fn func(t core.Time)
}

// fire interrupts the blocked wait: the sleeping process is made runnable by a
// signal, observes EINTR, and restarts the call. The restart is a first-pass
// scan — a fresh kernel entry that collects anything that became ready during
// the interrupt window, so no wakeup is lost — carried with core.Forever so an
// original finite timeout stays armed at its absolute deadline (the recomputed
// timeout of a real restart loop). Interrupts that land after the wait
// completed (stale generation) or while a scan is already on the CPU are
// dropped: a signal delivered outside a blocking call interrupts nothing.
func (r *intrReg) fire(t core.Time) {
	e := r.e
	live := e.timeoutID == r.id
	e.intrPool = append(e.intrPool, r)
	if !live || e.state != stateBlocked {
		return
	}
	if e.Stats != nil {
		e.Stats.Interrupts++
	}
	e.intrCharge = true
	e.scan(true, core.Forever)
}

// timeoutReg is one scheduled wait deadline: the engine generation it was
// armed for and a callback bound once for the record's life. It recycles
// itself after firing (each registration fires exactly once).
type timeoutReg struct {
	e  *Engine
	id int64
	fn func(t core.Time)
}

func (r *timeoutReg) fire(t core.Time) {
	e := r.e
	live := e.timeoutID == r.id
	e.timeoutPool = append(e.timeoutPool, r)
	if !live {
		return
	}
	switch e.state {
	case stateBlocked:
		e.expire(t)
	case stateScanning:
		// A rescan is on the CPU as the deadline passes; let it finish, but
		// remember that the wait's time is up.
		e.pendExpire = true
	}
}

// finish tears down the wait and delivers results to the handler.
func (e *Engine) finish(events []core.Event, now core.Time) {
	if e.OnFinish != nil {
		e.OnFinish()
	}
	e.state = stateIdle
	e.timeoutID++
	h := e.curHand
	e.curHand = nil
	if h != nil {
		h(events, now)
	}
}

// AppendEvent appends e to events unless the result cap max has been reached,
// the bound every mechanism's Collect applies to its result area.
func AppendEvent(events []core.Event, max int, e core.Event) []core.Event {
	if len(events) >= max {
		return events
	}
	return append(events, e)
}

// expire completes a blocked wait whose timeout fired, charging the
// mechanism's teardown cost first if it has one. The state moves to
// stateExpiring before the teardown batch so a Wake racing with it cannot
// start a scan on behalf of a wait that is already returning.
func (e *Engine) expire(now core.Time) {
	if e.TimeoutTeardown == nil {
		e.finish(nil, now)
		return
	}
	e.state = stateExpiring
	cost := e.TimeoutTeardown()
	e.P.Batch(now, func() {
		e.P.Charge(cost)
	}, func(done core.Time) {
		e.finish(nil, done)
	})
}
