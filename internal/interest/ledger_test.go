package interest

import (
	"testing"

	"repro/internal/core"
)

func TestLedgerMarkAccumulatesAndReportsNewness(t *testing.T) {
	l := NewLedger()
	if !l.Mark(4, core.POLLIN) {
		t.Fatal("first Mark should report newly marked")
	}
	if l.Mark(4, core.POLLOUT) {
		t.Fatal("second Mark of same fd should not be new")
	}
	if l.Mask(4) != core.POLLIN|core.POLLOUT {
		t.Fatalf("Mask = %v", l.Mask(4))
	}
	if !l.Ready(4) || l.Ready(5) || l.Len() != 1 {
		t.Fatal("Ready/Len wrong")
	}
	if !l.Clear(4) || l.Clear(4) {
		t.Fatal("Clear wrong")
	}
	if l.Len() != 0 || l.Mask(4) != 0 {
		t.Fatal("ledger not empty after Clear")
	}
}

func TestLedgerScanOrderAndKeepSemantics(t *testing.T) {
	l := NewLedger()
	l.Mark(7, core.POLLIN)
	l.Mark(3, core.POLLIN)
	l.Mark(9, core.POLLOUT)

	// Drop fd 3, keep the others: arrival order must be preserved.
	var visited []int
	l.Scan(func(fd int, mask core.EventMask) bool {
		visited = append(visited, fd)
		return fd != 3
	})
	if len(visited) != 3 || visited[0] != 7 || visited[1] != 3 || visited[2] != 9 {
		t.Fatalf("visited = %v", visited)
	}
	if l.Len() != 2 || l.Ready(3) {
		t.Fatalf("keep semantics broken: len=%d", l.Len())
	}

	visited = nil
	l.Scan(func(fd int, mask core.EventMask) bool {
		visited = append(visited, fd)
		return false
	})
	if len(visited) != 2 || visited[0] != 7 || visited[1] != 9 {
		t.Fatalf("second scan visited = %v", visited)
	}
	if l.Len() != 0 {
		t.Fatalf("ledger should be drained, len=%d", l.Len())
	}
}

func TestLedgerRemarkAfterClearKeepsSingleEntry(t *testing.T) {
	l := NewLedger()
	l.Mark(1, core.POLLIN)
	l.Mark(2, core.POLLIN)
	l.Clear(1)
	if !l.Mark(1, core.POLLOUT) {
		t.Fatal("re-mark after clear should be new")
	}
	var visited []int
	l.Scan(func(fd int, mask core.EventMask) bool {
		visited = append(visited, fd)
		return false
	})
	// fd 1 re-arrived after fd 2, and is visited exactly once.
	if len(visited) != 2 || visited[0] != 2 || visited[1] != 1 {
		t.Fatalf("visited = %v", visited)
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger()
	l.Mark(1, core.POLLIN)
	l.Mark(2, core.POLLIN)
	l.Reset()
	if l.Len() != 0 || l.Ready(1) {
		t.Fatal("Reset did not empty the ledger")
	}
	l.Mark(3, core.POLLIN)
	if l.Len() != 1 {
		t.Fatal("ledger unusable after Reset")
	}
}
