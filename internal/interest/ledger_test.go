package interest

import (
	"testing"

	"repro/internal/core"
)

func TestLedgerMarkAccumulatesAndReportsNewness(t *testing.T) {
	l := NewLedger()
	if !l.Mark(4, core.POLLIN, 1) {
		t.Fatal("first Mark should report newly marked")
	}
	if l.Mark(4, core.POLLOUT, 1) {
		t.Fatal("second Mark of same fd should not be new")
	}
	if l.Mask(4) != core.POLLIN|core.POLLOUT {
		t.Fatalf("Mask = %v", l.Mask(4))
	}
	if !l.Ready(4) || l.Ready(5) || l.Len() != 1 {
		t.Fatal("Ready/Len wrong")
	}
	if !l.Clear(4) || l.Clear(4) {
		t.Fatal("Clear wrong")
	}
	if l.Len() != 0 || l.Mask(4) != 0 {
		t.Fatal("ledger not empty after Clear")
	}
}

func TestLedgerScanOrderAndKeepSemantics(t *testing.T) {
	l := NewLedger()
	l.Mark(7, core.POLLIN, 1)
	l.Mark(3, core.POLLIN, 1)
	l.Mark(9, core.POLLOUT, 1)

	// Drop fd 3, keep the others: arrival order must be preserved.
	var visited []int
	l.Scan(func(fd int, mask core.EventMask, gen uint64) bool {
		visited = append(visited, fd)
		return fd != 3
	})
	if len(visited) != 3 || visited[0] != 7 || visited[1] != 3 || visited[2] != 9 {
		t.Fatalf("visited = %v", visited)
	}
	if l.Len() != 2 || l.Ready(3) {
		t.Fatalf("keep semantics broken: len=%d", l.Len())
	}

	visited = nil
	l.Scan(func(fd int, mask core.EventMask, gen uint64) bool {
		visited = append(visited, fd)
		return false
	})
	if len(visited) != 2 || visited[0] != 7 || visited[1] != 9 {
		t.Fatalf("second scan visited = %v", visited)
	}
	if l.Len() != 0 {
		t.Fatalf("ledger should be drained, len=%d", l.Len())
	}
}

func TestLedgerRemarkAfterClearKeepsSingleEntry(t *testing.T) {
	l := NewLedger()
	l.Mark(1, core.POLLIN, 1)
	l.Mark(2, core.POLLIN, 1)
	l.Clear(1)
	if !l.Mark(1, core.POLLOUT, 1) {
		t.Fatal("re-mark after clear should be new")
	}
	var visited []int
	l.Scan(func(fd int, mask core.EventMask, gen uint64) bool {
		visited = append(visited, fd)
		return false
	})
	// fd 1 re-arrived after fd 2, and is visited exactly once.
	if len(visited) != 2 || visited[0] != 2 || visited[1] != 1 {
		t.Fatalf("visited = %v", visited)
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger()
	l.Mark(1, core.POLLIN, 1)
	l.Mark(2, core.POLLIN, 1)
	l.Reset()
	if l.Len() != 0 || l.Ready(1) {
		t.Fatal("Reset did not empty the ledger")
	}
	l.Mark(3, core.POLLIN, 1)
	if l.Len() != 1 {
		t.Fatal("ledger unusable after Reset")
	}
}

func TestLedgerMarkNewGenerationReplacesStaleMask(t *testing.T) {
	l := NewLedger()
	l.Mark(5, core.POLLIN, 1)
	// The descriptor number was recycled: readiness for generation 2 must not
	// inherit generation 1's pending mask, and counts as a fresh transition.
	if !l.Mark(5, core.POLLOUT, 2) {
		t.Fatal("mark with a new generation should report newly marked")
	}
	if l.Mask(5) != core.POLLOUT {
		t.Fatalf("stale generation's mask leaked through: %v", l.Mask(5))
	}
	if l.Gen(5) != 2 {
		t.Fatalf("Gen = %d, want 2", l.Gen(5))
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}
