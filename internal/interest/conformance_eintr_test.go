package interest_test

// EINTR-restart conformance: with the fault plane interrupting every blocking
// episode, each mechanism's wait must observe the signal, restart with a
// recomputed timeout, and neither overshoot the original absolute deadline nor
// lose readiness that arrives during an interrupt window.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simtest"
)

func TestConformanceEINTRRestartHonoursDeadline(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		env.K.Faults = faults.Config{Seed: 42, EINTRRate: 1}
		fd, _ := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		// Every ~200µs the blocked call takes a signal and restarts; the wait
		// must still time out empty at (or marginally past) the original
		// deadline, not at deadline-plus-accumulated-restarts.
		const timeout = 5 * core.Millisecond
		var col simtest.Collector
		p.Wait(0, timeout, col.Handler())
		env.Run()
		if col.Calls != 1 || len(col.Events) != 0 {
			t.Fatalf("interrupted wait: %+v", col)
		}
		if col.At < core.Time(timeout) {
			t.Fatalf("timeout fired early: %v", col.At)
		}
		if col.At > core.Time(timeout+core.Millisecond) {
			t.Fatalf("restarts pushed the deadline from %v to %v", timeout, col.At)
		}
		src, ok := p.(core.StatsSource)
		if !ok {
			t.Fatal("mechanism does not expose stats")
		}
		if src.MechanismStats().Interrupts == 0 {
			t.Fatal("no EINTR interrupts were injected")
		}
	})
}

func TestConformanceEINTRRestartKeepsReadiness(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		env.K.Faults = faults.Config{Seed: 42, EINTRRate: 1}
		fd, file := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		// The wait blocks forever under a continuous interrupt storm;
		// readiness lands 2ms in, between two interrupts. A restart that
		// dropped its registrations or its pending set would strand the
		// caller or return empty.
		var col simtest.Collector
		p.Wait(0, core.Forever, col.Handler())
		env.K.Sim.At(core.Time(2*core.Millisecond), func(now core.Time) {
			file.SetReady(now, core.POLLIN)
		})
		env.Run()
		if col.Calls != 1 {
			t.Fatalf("handler calls = %d", col.Calls)
		}
		found := false
		for _, ev := range col.Events {
			if ev.FD == fd.Num && ev.Ready.Any(core.POLLIN) {
				found = true
			}
		}
		if !found {
			t.Fatalf("readiness lost across EINTR restarts: %+v", col.Events)
		}
		if col.At < core.Time(2*core.Millisecond) {
			t.Fatalf("handler ran before the readiness existed: %v", col.At)
		}
	})
}
