package interest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simtest"
)

// A Wake that lands while the timeout's teardown batch is on the CPU must not
// start a scan on behalf of the expiring wait: that scan would consume latched
// readiness and deliver it to nobody (the expiring wait already returned),
// losing the event. The engine parks in stateExpiring for the teardown window;
// the readiness stays latched in the mechanism and the next Wait collects it.
func TestEngineTimeoutTeardownIgnoresRacingWake(t *testing.T) {
	env := simtest.NewEnv()
	pending := false
	collects := 0
	eng := Engine{
		Name: "racetest",
		K:    env.K,
		P:    env.P,
		Collect: func(firstPass bool, max int, buf []core.Event) []core.Event {
			collects++
			if pending {
				pending = false
				return []core.Event{{FD: 7, Ready: core.POLLIN}}
			}
			return nil
		},
		TimeoutTeardown: func() core.Duration { return 10 * core.Microsecond },
	}

	var first [][]core.Event
	eng.Wait(4, 5*core.Millisecond, func(ev []core.Event, now core.Time) {
		first = append(first, ev)
	})
	// The timeout fires at 5 ms and its teardown batch occupies the CPU for
	// 10 µs; readiness is latched and Wake arrives in the middle of that
	// window.
	env.K.Sim.At(core.Time(5*core.Millisecond+5*core.Microsecond), func(core.Time) {
		pending = true
		eng.Wake()
	})
	env.Run()

	if len(first) != 1 || len(first[0]) != 0 {
		t.Fatalf("expiring wait delivered %v, want one empty result", first)
	}
	if collects != 1 {
		t.Fatalf("collects = %d; a stale scan ran during the teardown window", collects)
	}

	// The latched readiness was not consumed: the next wait's first pass
	// returns it.
	var second []core.Event
	eng.Wait(4, 0, func(ev []core.Event, now core.Time) { second = ev })
	env.Run()
	if len(second) != 1 || second[0].FD != 7 {
		t.Fatalf("latched readiness lost across the expiring wait: %v", second)
	}
}

// A finite timeout whose deadline passes while a wakeup-triggered rescan is on
// the CPU must still expire the wait if the rescan finds nothing. (The rescan
// runs with core.Forever, so without the pendExpire latch the consumed timer
// would leave the wait blocked for good.)
func TestEngineTimeoutSurvivesRacingRescan(t *testing.T) {
	env := simtest.NewEnv()
	collects := 0
	eng := Engine{
		Name: "expiretest",
		K:    env.K,
		P:    env.P,
		Collect: func(firstPass bool, max int, buf []core.Event) []core.Event {
			collects++
			// Every scan costs enough CPU that a rescan started just before
			// the deadline is still running when it passes.
			env.P.Charge(50 * core.Microsecond)
			return nil // nothing is ever ready: a spurious wake
		},
	}
	var calls int
	var at core.Time
	const timeout = 5 * core.Millisecond
	eng.Wait(4, timeout, func(ev []core.Event, now core.Time) {
		calls++
		at = now
		if len(ev) != 0 {
			t.Errorf("expected an empty timeout result, got %v", ev)
		}
	})
	// The first scan costs 50 µs, so the wait blocks at 50 µs and its deadline
	// is timeout+50µs. A spurious wake (e.g. a hint whose mask the wait
	// doesn't want) lands 20 µs before that deadline; its 50 µs rescan spans
	// the deadline instant, so the timer fires mid-scan.
	env.K.Sim.At(core.Time(timeout+30*core.Microsecond), func(core.Time) {
		eng.Wake()
	})
	env.Run()
	if calls != 1 {
		t.Fatalf("handler calls = %d; the bounded wait hung after the racing rescan", calls)
	}
	if at < core.Time(timeout) {
		t.Fatalf("timed out early at %v", at)
	}
	if collects != 2 {
		t.Fatalf("collects = %d, want initial scan + the racing rescan", collects)
	}
}

// A wake during the scan batch itself (not the teardown) must still force the
// immediate rescan that prevents lost wakeups.
func TestEngineWakeDuringScanForcesRescan(t *testing.T) {
	env := simtest.NewEnv()
	pending := false
	collects := 0
	eng := Engine{
		Name: "rescantest",
		K:    env.K,
		P:    env.P,
		Collect: func(firstPass bool, max int, buf []core.Event) []core.Event {
			collects++
			// The scan itself costs CPU time, opening the race window.
			env.P.Charge(20 * core.Microsecond)
			if pending {
				pending = false
				return []core.Event{{FD: 3, Ready: core.POLLIN}}
			}
			return nil
		},
	}
	var got []core.Event
	calls := 0
	eng.Wait(4, core.Forever, func(ev []core.Event, now core.Time) {
		calls++
		got = ev
	})
	// Readiness lands while the first scan batch is still on the CPU.
	env.K.Sim.At(core.Time(10*core.Microsecond), func(core.Time) {
		pending = true
		eng.Wake()
	})
	env.Run()
	if calls != 1 || len(got) != 1 || got[0].FD != 3 {
		t.Fatalf("rescan after mid-scan wake failed: calls=%d events=%v", calls, got)
	}
	if collects != 2 {
		t.Fatalf("collects = %d, want initial scan + one rescan", collects)
	}
}
