package interest_test

// The shared Poller conformance suite: one table-driven file exercised against
// every event-notification mechanism (stock poll, /dev/poll, RT signals,
// epoll in both trigger modes, and the compio completion rings). It pins the contract every mechanism must
// honour so refactors of the shared interest engine are provably
// behaviour-preserving: error cases on interest management (ErrExists,
// ErrNotFound, ErrClosed), Interested/Len bookkeeping, readiness delivery,
// wait-with-timeout, non-blocking waits, and close-while-waiting.

import (
	"testing"

	"repro/internal/compio"
	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/epoll"
	"repro/internal/eventlib"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/simkernel"
	"repro/internal/simtest"
	"repro/internal/stockpoll"
)

// mechanism names one Poller implementation under test.
type mechanism struct {
	name string
	open func(env *simtest.Env) core.Poller
}

func mechanisms() []mechanism {
	return []mechanism{
		{"stockpoll", func(env *simtest.Env) core.Poller {
			return stockpoll.New(env.K, env.P)
		}},
		{"devpoll", func(env *simtest.Env) core.Poller {
			return devpoll.Open(env.K, env.P, devpoll.DefaultOptions())
		}},
		{"rtsig", func(env *simtest.Env) core.Poller {
			return rtsig.New(env.K, env.P, rtsig.DefaultOptions())
		}},
		{"epoll-lt", func(env *simtest.Env) core.Poller {
			return epoll.Open(env.K, env.P, epoll.Options{EdgeTriggered: false})
		}},
		{"epoll-et", func(env *simtest.Env) core.Poller {
			return epoll.Open(env.K, env.P, epoll.Options{EdgeTriggered: true})
		}},
		{"compio", func(env *simtest.Env) core.Poller {
			return compio.Open(env.K, env.P, compio.DefaultOptions())
		}},
	}
}

// forEachMechanism runs fn as a sub-test per mechanism, with a fresh
// simulation environment each time.
func forEachMechanism(t *testing.T, fn func(t *testing.T, env *simtest.Env, p core.Poller)) {
	t.Helper()
	for _, m := range mechanisms() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			env := simtest.NewEnv()
			fn(t, env, m.open(env))
		})
	}
}

func TestConformanceInterestErrors(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fdA, _ := env.NewFD(0)
		fdB, _ := env.NewFD(0)

		if err := p.Add(fdA.Num, core.POLLIN); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := p.Add(fdA.Num, core.POLLIN); err != core.ErrExists {
			t.Fatalf("duplicate Add = %v, want ErrExists", err)
		}
		if err := p.Modify(fdB.Num, core.POLLIN); err != core.ErrNotFound {
			t.Fatalf("Modify of unregistered fd = %v, want ErrNotFound", err)
		}
		if err := p.Remove(fdB.Num); err != core.ErrNotFound {
			t.Fatalf("Remove of unregistered fd = %v, want ErrNotFound", err)
		}
		if err := p.Modify(fdA.Num, core.POLLIN|core.POLLOUT); err != nil {
			t.Fatalf("Modify: %v", err)
		}
		if err := p.Remove(fdA.Num); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		if err := p.Remove(fdA.Num); err != core.ErrNotFound {
			t.Fatalf("double Remove = %v, want ErrNotFound", err)
		}
	})
}

func TestConformanceInterestedAndLen(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		if p.Len() != 0 {
			t.Fatalf("fresh poller Len = %d", p.Len())
		}
		var fds []int
		for i := 0; i < 5; i++ {
			fd, _ := env.NewFD(0)
			if err := p.Add(fd.Num, core.POLLIN); err != nil {
				t.Fatalf("Add %d: %v", i, err)
			}
			fds = append(fds, fd.Num)
		}
		if p.Len() != 5 {
			t.Fatalf("Len = %d, want 5", p.Len())
		}
		for _, fd := range fds {
			if !p.Interested(fd) {
				t.Fatalf("Interested(%d) = false", fd)
			}
		}
		if p.Interested(fds[4] + 1) {
			t.Fatal("Interested reports an unregistered fd")
		}
		if err := p.Remove(fds[2]); err != nil {
			t.Fatal(err)
		}
		if p.Interested(fds[2]) || p.Len() != 4 {
			t.Fatalf("after Remove: Interested=%v Len=%d", p.Interested(fds[2]), p.Len())
		}
	})
}

func TestConformanceClosedPollerErrors(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, _ := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := p.Close(); err != core.ErrClosed {
			t.Fatalf("double Close = %v, want ErrClosed", err)
		}
		if err := p.Add(fd.Num+1, core.POLLIN); err != core.ErrClosed {
			t.Fatalf("Add after Close = %v, want ErrClosed", err)
		}
		if err := p.Modify(fd.Num, core.POLLIN); err != core.ErrClosed {
			t.Fatalf("Modify after Close = %v, want ErrClosed", err)
		}
		if err := p.Remove(fd.Num); err != core.ErrClosed {
			t.Fatalf("Remove after Close = %v, want ErrClosed", err)
		}
		// A Wait on a closed poller completes immediately and delivers nothing.
		var col simtest.Collector
		p.Wait(0, core.Forever, col.Handler())
		if col.Calls != 1 || len(col.Events) != 0 {
			t.Fatalf("Wait after Close: %+v", col)
		}
		// Closing must not leave watchers on the descriptor.
		if fd.Watchers() != 0 {
			t.Fatalf("watchers leaked after Close: %d", fd.Watchers())
		}
	})
}

func TestConformanceWaitDeliversReadiness(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, file := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		var col simtest.Collector
		p.Wait(0, core.Forever, col.Handler())
		// Readiness arrives 2 ms into the run — after registration, so every
		// mechanism (including transition-driven RT signals) observes it.
		env.K.Sim.At(core.Time(2*core.Millisecond), func(now core.Time) {
			file.SetReady(now, core.POLLIN)
		})
		env.Run()
		if col.Calls != 1 {
			t.Fatalf("handler calls = %d", col.Calls)
		}
		if len(col.Events) == 0 {
			t.Fatal("no events delivered")
		}
		found := false
		for _, ev := range col.Events {
			if ev.FD == fd.Num && ev.Ready.Any(core.POLLIN) {
				found = true
			}
		}
		if !found {
			t.Fatalf("readiness on fd %d not delivered: %+v", fd.Num, col.Events)
		}
		if col.At < core.Time(2*core.Millisecond) {
			t.Fatalf("handler ran before the readiness existed: %v", col.At)
		}
	})
}

// TestConformanceWriteInterestNoPendingRead pins the server-push pattern: a
// descriptor armed for write interest only, while it stays readable the whole
// time and nothing ever reads it. The pending readability must not wake the
// write-only registration, and the later writability transition must — a
// push daemon parked on a full send buffer depends on both halves.
func TestConformanceWriteInterestNoPendingRead(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, file := env.NewFD(core.POLLIN) // readable from birth, never read
		if err := p.Add(fd.Num, core.POLLOUT); err != nil {
			t.Fatal(err)
		}
		var col simtest.Collector
		p.Wait(0, core.Forever, col.Handler())
		env.K.Sim.At(core.Time(2*core.Millisecond), func(now core.Time) {
			file.SetReady(now, core.POLLIN|core.POLLOUT)
		})
		env.Run()
		if col.Calls != 1 {
			t.Fatalf("handler calls = %d", col.Calls)
		}
		if col.At < core.Time(2*core.Millisecond) {
			t.Fatalf("write-only wait woke at %v, before the descriptor was writable (the unwatched readability leaked through)", col.At)
		}
		found := false
		for _, ev := range col.Events {
			if ev.FD == fd.Num && ev.Ready.Any(core.POLLOUT) {
				found = true
			}
		}
		if !found {
			t.Fatalf("writability not delivered: %+v", col.Events)
		}
	})
}

// TestConformanceDatagramReadiness runs a bound datagram socket through every
// mechanism: a fresh socket is writable but not readable, an arriving
// datagram wakes a blocked wait with POLLIN, draining the queue clears the
// readability, and a second datagram re-arms the mechanism (the
// empty→non-empty edge, which edge-triggered modes depend on).
func TestConformanceDatagramReadiness(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		const addr netsim.Addr = 1
		net := netsim.New(env.K, netsim.DefaultConfig())
		api := netsim.NewSockAPI(env.K, env.P, net)
		var fd *simkernel.FD
		env.P.Batch(0, func() { fd, _ = api.OpenDatagram(addr) }, nil)
		env.Run()

		if m := fd.Poll(); m.Any(core.POLLIN) || !m.Any(core.POLLOUT) {
			t.Fatalf("fresh datagram socket polls %v, want writable and not readable", m)
		}
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		var col simtest.Collector
		p.Wait(0, core.Forever, col.Handler())
		var peer *netsim.Peer
		peer = net.NewPeer(env.K.Now(), netsim.PeerOptions{}, &simtest.DgramHooks{
			OnStarted: func(now core.Time) { peer.SendTo(now, addr, 64) },
		})
		env.Run()
		if col.Calls != 1 {
			t.Fatalf("handler calls = %d", col.Calls)
		}
		woke := false
		for _, ev := range col.Events {
			if ev.FD == fd.Num && ev.Ready.Any(core.POLLIN) {
				woke = true
			}
		}
		if !woke {
			t.Fatalf("datagram arrival not delivered: %+v", col.Events)
		}

		env.P.Batch(env.K.Now(), func() {
			if _, _, ok := api.RecvFrom(fd); !ok {
				t.Error("woken socket had nothing to read")
			}
		}, nil)
		env.Run()
		if m := fd.Poll(); m.Any(core.POLLIN) {
			t.Fatalf("drained socket still polls readable: %v", m)
		}

		var col2 simtest.Collector
		p.Wait(0, core.Forever, col2.Handler())
		peer.SendTo(env.K.Now(), addr, 64)
		env.Run()
		if col2.Calls != 1 {
			t.Fatalf("second wait calls = %d (mechanism failed to re-arm after the drain)", col2.Calls)
		}
		woke = false
		for _, ev := range col2.Events {
			if ev.FD == fd.Num && ev.Ready.Any(core.POLLIN) {
				woke = true
			}
		}
		if !woke {
			t.Fatalf("second datagram not delivered: %+v", col2.Events)
		}
	})
}

func TestConformanceWaitTimeout(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, _ := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		const timeout = 10 * core.Millisecond
		var col simtest.Collector
		p.Wait(0, timeout, col.Handler())
		env.Run()
		if col.Calls != 1 || len(col.Events) != 0 {
			t.Fatalf("timed-out wait: %+v", col)
		}
		if col.At < core.Time(timeout) {
			t.Fatalf("timeout fired early: %v", col.At)
		}
		// The poller is reusable after a timeout.
		var col2 simtest.Collector
		p.Wait(0, 0, col2.Handler())
		env.Run()
		if col2.Calls != 1 {
			t.Fatal("second Wait never completed")
		}
	})
}

func TestConformanceWaitZeroTimeoutNeverBlocks(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, _ := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		var col simtest.Collector
		p.Wait(0, 0, col.Handler())
		env.Run()
		if col.Calls != 1 || len(col.Events) != 0 {
			t.Fatalf("non-blocking wait: %+v", col)
		}
	})
}

func TestConformanceCloseWhileWaiting(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, _ := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		var col simtest.Collector
		p.Wait(0, core.Forever, col.Handler())
		env.K.Sim.At(core.Time(core.Millisecond), func(core.Time) {
			if err := p.Close(); err != nil {
				t.Errorf("Close while waiting: %v", err)
			}
		})
		env.Run()
		// The blocked wait must complete (empty) rather than strand the caller.
		if col.Calls != 1 || len(col.Events) != 0 {
			t.Fatalf("close-while-waiting: %+v", col)
		}
		if col.At < core.Time(core.Millisecond) {
			t.Fatalf("wait completed before the Close: %v", col.At)
		}
		if fd.Watchers() != 0 {
			t.Fatalf("watchers leaked: %d", fd.Watchers())
		}
	})
}

func TestConformanceConcurrentWaitPanics(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		fd, _ := env.NewFD(0)
		if err := p.Add(fd.Num, core.POLLIN); err != nil {
			t.Fatal(err)
		}
		p.Wait(0, core.Forever, func([]core.Event, core.Time) {})
		defer func() {
			if recover() == nil {
				t.Error("second Wait should panic while the first is in flight")
			}
		}()
		p.Wait(0, core.Forever, func([]core.Event, core.Time) {})
	})
}

// --- EventBase conformance -------------------------------------------------
//
// The eventlib redesign moved every server's dispatch loop into
// eventlib.Base; these tests re-run the readiness and timeout contract with
// each mechanism wrapped in a Base, pinning that the callback API preserves
// the two properties the hand-rolled loops guaranteed: no lost wakeups
// (readiness arriving after registration is always delivered, whether the
// loop is blocked or between iterations) and timeout semantics (timers fire
// at their virtual deadline, and I/O beats a later deadline).

// baseFire records one eventlib callback delivery.
type baseFire struct {
	what eventlib.What
	at   core.Time
}

func TestConformanceEventBaseNoLostWakeup(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		base := eventlib.NewWithPoller(env.K, env.P, p, eventlib.Config{})
		fd, file := env.NewFD(0)
		var fires []baseFire
		ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
			func(_ int, what eventlib.What, now core.Time) {
				fires = append(fires, baseFire{what, now})
				base.Stop()
			})
		if err := ev.Add(0); err != nil {
			t.Fatal(err)
		}
		base.Dispatch()
		// Readiness arrives while the loop is blocked waiting.
		env.K.Sim.At(core.Time(2*core.Millisecond), func(now core.Time) {
			file.SetReady(now, core.POLLIN)
		})
		env.Run()
		if len(fires) != 1 || !fires[0].what.Has(eventlib.EvRead) {
			t.Fatalf("fires = %+v, want one EvRead", fires)
		}
		if fires[0].at < core.Time(2*core.Millisecond) {
			t.Fatalf("callback ran before the readiness existed: %v", fires[0].at)
		}
	})
}

func TestConformanceEventBaseWakeupBeforeDispatch(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		base := eventlib.NewWithPoller(env.K, env.P, p, eventlib.Config{})
		fd, file := env.NewFD(0)
		var fires []baseFire
		ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
			func(_ int, what eventlib.What, now core.Time) {
				fires = append(fires, baseFire{what, now})
				base.Stop()
			})
		if err := ev.Add(0); err != nil {
			t.Fatal(err)
		}
		// The readiness transition lands after registration but before the
		// loop starts: every mechanism must have latched it (the RT queue as
		// a pending siginfo, the ready-list mechanisms in their ledgers, the
		// scanning mechanisms by re-polling), so the first wait delivers it.
		file.SetReady(env.K.Now(), core.POLLIN)
		base.Dispatch()
		env.Run()
		if len(fires) != 1 || !fires[0].what.Has(eventlib.EvRead) {
			t.Fatalf("fires = %+v, want one EvRead", fires)
		}
	})
}

func TestConformanceEventBaseTimeoutSemantics(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		base := eventlib.NewWithPoller(env.K, env.P, p, eventlib.Config{})
		// An I/O event that never fires keeps the loop waiting; a timer must
		// still fire at its deadline, driving the poll timeout computation.
		fd, _ := env.NewFD(0)
		idle := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
			func(int, eventlib.What, core.Time) { t.Error("idle descriptor fired") })
		if err := idle.Add(0); err != nil {
			t.Fatal(err)
		}
		const deadline = 10 * core.Millisecond
		var fires []baseFire
		timer := base.NewTimer(0, func(_ int, what eventlib.What, now core.Time) {
			fires = append(fires, baseFire{what, now})
			base.Stop()
		})
		if err := timer.Add(deadline); err != nil {
			t.Fatal(err)
		}
		base.Dispatch()
		env.Run()
		if len(fires) != 1 || !fires[0].what.Has(eventlib.EvTimeout) {
			t.Fatalf("fires = %+v, want one EvTimeout", fires)
		}
		if fires[0].at < core.Time(deadline) {
			t.Fatalf("timer fired early: %v", fires[0].at)
		}
		if fires[0].at > core.Time(deadline).Add(2*core.Millisecond) {
			t.Fatalf("timer fired far past its deadline: %v", fires[0].at)
		}
	})
}

func TestConformanceEventBaseReadinessBeatsLaterDeadline(t *testing.T) {
	forEachMechanism(t, func(t *testing.T, env *simtest.Env, p core.Poller) {
		base := eventlib.NewWithPoller(env.K, env.P, p, eventlib.Config{})
		fd, file := env.NewFD(0)
		var fires []baseFire
		// One event carrying both interests: readable, with a 50 ms timeout.
		ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist,
			func(_ int, what eventlib.What, now core.Time) {
				fires = append(fires, baseFire{what, now})
				base.Stop()
			})
		if err := ev.Add(50 * core.Millisecond); err != nil {
			t.Fatal(err)
		}
		base.Dispatch()
		env.K.Sim.At(core.Time(3*core.Millisecond), func(now core.Time) {
			file.SetReady(now, core.POLLIN)
		})
		env.Run()
		if len(fires) != 1 {
			t.Fatalf("fires = %+v", fires)
		}
		if !fires[0].what.Has(eventlib.EvRead) || fires[0].what.Has(eventlib.EvTimeout) {
			t.Fatalf("what = %v, want EvRead without EvTimeout", fires[0].what)
		}
		if fires[0].at > core.Time(10*core.Millisecond) {
			t.Fatalf("readiness delivered late: %v", fires[0].at)
		}
	})
}
