package interest

import "repro/internal/core"

// ledgerNode is one marked descriptor, linked in arrival order. Nodes live in
// the Ledger's arena and link by index, so marking and clearing recycle
// storage instead of allocating: the hot interrupt path (every driver
// notification lands here) performs no allocation at steady state.
type ledgerNode struct {
	fd         int
	mask       core.EventMask
	gen        uint64
	prev, next int32
}

// none is the nil value of an arena link.
const none int32 = -1

// Ledger is the readiness side of the kernel-resident interest engine: the set
// of registered descriptors that currently have undelivered readiness, in
// arrival order. Device drivers update it once per readiness notification
// (Mark), and a mechanism's wait path scans only the marked descriptors —
// O(ready) work — instead of walking the whole interest set. Mark and Clear
// are O(1) (a dense fd-indexed slot table plus an intrusive list over a node
// arena), so hot paths never pay for the ledger's size, and recycled nodes
// make both allocation-free after warm-up.
//
// Descriptors are non-negative, as POSIX allocates them; the dense slot table
// is indexed by descriptor number directly, which PR 3's lowest-unused
// allocation keeps compact.
//
// /dev/poll uses it as the §3.2 hint backmap (a marked descriptor is one whose
// driver posted a hint since the last scan); epoll uses it as the ready list
// behind epoll_wait.
type Ledger struct {
	nodes []ledgerNode // arena; a node id is an index into it
	slot  []int32      // fd -> node id + 1; 0 = not marked
	free  []int32      // recycled node ids
	head  int32
	tail  int32
	count int
}

// NewLedger returns an empty readiness ledger.
func NewLedger() *Ledger {
	return &Ledger{head: none, tail: none}
}

// lookup returns the node id marked for fd, or none.
func (l *Ledger) lookup(fd int) int32 {
	if fd < 0 || fd >= len(l.slot) {
		return none
	}
	return l.slot[fd] - 1
}

// alloc returns a free node id, growing the arena if the free list is empty.
func (l *Ledger) alloc() int32 {
	if n := len(l.free); n > 0 {
		id := l.free[n-1]
		l.free = l.free[:n-1]
		return id
	}
	l.nodes = append(l.nodes, ledgerNode{})
	return int32(len(l.nodes) - 1)
}

// Mark records readiness mask for fd, OR-ing it into any mask already pending,
// and reports whether fd was newly marked. The bool lets callers charge the
// interrupt-context posting cost once per transition to ready, as the
// /dev/poll hint system does.
//
// gen is the generation of the descriptor the readiness belongs to (see
// simkernel.FD.Gen). A mark carrying a different generation than one already
// pending replaces it rather than merging: the old mark described a previous
// open of the same descriptor number, whose readiness means nothing for the
// new one. The replacement counts as a new transition.
func (l *Ledger) Mark(fd int, mask core.EventMask, gen uint64) bool {
	if id := l.lookup(fd); id >= 0 {
		n := &l.nodes[id]
		if n.gen != gen {
			n.gen = gen
			n.mask = mask
			return true
		}
		n.mask |= mask
		return false
	}
	if fd < 0 {
		panic("interest: Ledger.Mark with negative descriptor")
	}
	for fd >= len(l.slot) {
		l.slot = append(l.slot, 0)
	}
	id := l.alloc()
	l.nodes[id] = ledgerNode{fd: fd, mask: mask, gen: gen, prev: l.tail, next: none}
	if l.tail == none {
		l.head, l.tail = id, id
	} else {
		l.nodes[l.tail].next = id
		l.tail = id
	}
	l.slot[fd] = id + 1
	l.count++
	return true
}

// Ready reports whether fd has undelivered readiness.
func (l *Ledger) Ready(fd int) bool { return l.lookup(fd) >= 0 }

// Mask returns the accumulated readiness mask pending for fd (zero if none).
func (l *Ledger) Mask(fd int) core.EventMask {
	if id := l.lookup(fd); id >= 0 {
		return l.nodes[id].mask
	}
	return 0
}

// Gen returns the generation recorded for fd's pending readiness (zero if
// none is pending).
func (l *Ledger) Gen(fd int) uint64 {
	if id := l.lookup(fd); id >= 0 {
		return l.nodes[id].gen
	}
	return 0
}

// Clear drops any pending readiness for fd, reporting whether there was any.
func (l *Ledger) Clear(fd int) bool {
	id := l.lookup(fd)
	if id < 0 {
		return false
	}
	l.unlink(id)
	return true
}

// Len reports the number of descriptors with undelivered readiness.
func (l *Ledger) Len() int { return l.count }

// Reset empties the ledger, keeping the arena, slot table and free list so a
// reused ledger (phhttpd's recovery flush, repeated experiment runs) does not
// reallocate its storage.
func (l *Ledger) Reset() {
	l.nodes = l.nodes[:0]
	l.free = l.free[:0]
	clear(l.slot)
	l.head, l.tail = none, none
	l.count = 0
}

// Scan visits the marked descriptors in arrival order. fn returns whether the
// descriptor should stay marked: a level-triggered consumer keeps descriptors
// that remain ready, an edge-triggered one drops each mark as it is delivered.
// fn must not call Mark or Clear during the scan.
func (l *Ledger) Scan(fn func(fd int, mask core.EventMask, gen uint64) (keep bool)) {
	for id := l.head; id != none; {
		n := &l.nodes[id]
		next := n.next
		if !fn(n.fd, n.mask, n.gen) {
			l.unlink(id)
		}
		id = next
	}
}

// unlink removes a node from the list and the slot table, recycling its id.
func (l *Ledger) unlink(id int32) {
	n := &l.nodes[id]
	if n.prev == none {
		l.head = n.next
	} else {
		l.nodes[n.prev].next = n.next
	}
	if n.next == none {
		l.tail = n.prev
	} else {
		l.nodes[n.next].prev = n.prev
	}
	l.slot[n.fd] = 0
	n.prev, n.next = none, none
	l.free = append(l.free, id)
	l.count--
}
