package interest

import "repro/internal/core"

// ledgerNode is one marked descriptor, linked in arrival order.
type ledgerNode struct {
	fd         int
	mask       core.EventMask
	gen        uint64
	prev, next *ledgerNode
}

// Ledger is the readiness side of the kernel-resident interest engine: the set
// of registered descriptors that currently have undelivered readiness, in
// arrival order. Device drivers update it once per readiness notification
// (Mark), and a mechanism's wait path scans only the marked descriptors —
// O(ready) work — instead of walking the whole interest set. Mark and Clear
// are O(1) (map plus intrusive list), so hot paths never pay for the ledger's
// size.
//
// /dev/poll uses it as the §3.2 hint backmap (a marked descriptor is one whose
// driver posted a hint since the last scan); epoll uses it as the ready list
// behind epoll_wait.
type Ledger struct {
	nodes map[int]*ledgerNode
	head  *ledgerNode
	tail  *ledgerNode
}

// NewLedger returns an empty readiness ledger.
func NewLedger() *Ledger {
	return &Ledger{nodes: make(map[int]*ledgerNode)}
}

// Mark records readiness mask for fd, OR-ing it into any mask already pending,
// and reports whether fd was newly marked. The bool lets callers charge the
// interrupt-context posting cost once per transition to ready, as the
// /dev/poll hint system does.
//
// gen is the generation of the descriptor the readiness belongs to (see
// simkernel.FD.Gen). A mark carrying a different generation than one already
// pending replaces it rather than merging: the old mark described a previous
// open of the same descriptor number, whose readiness means nothing for the
// new one. The replacement counts as a new transition.
func (l *Ledger) Mark(fd int, mask core.EventMask, gen uint64) bool {
	if n, ok := l.nodes[fd]; ok {
		if n.gen != gen {
			n.gen = gen
			n.mask = mask
			return true
		}
		n.mask |= mask
		return false
	}
	n := &ledgerNode{fd: fd, mask: mask, gen: gen}
	l.nodes[fd] = n
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		n.prev = l.tail
		l.tail.next = n
		l.tail = n
	}
	return true
}

// Ready reports whether fd has undelivered readiness.
func (l *Ledger) Ready(fd int) bool {
	_, ok := l.nodes[fd]
	return ok
}

// Mask returns the accumulated readiness mask pending for fd (zero if none).
func (l *Ledger) Mask(fd int) core.EventMask {
	if n, ok := l.nodes[fd]; ok {
		return n.mask
	}
	return 0
}

// Gen returns the generation recorded for fd's pending readiness (zero if
// none is pending).
func (l *Ledger) Gen(fd int) uint64 {
	if n, ok := l.nodes[fd]; ok {
		return n.gen
	}
	return 0
}

// Clear drops any pending readiness for fd, reporting whether there was any.
func (l *Ledger) Clear(fd int) bool {
	n, ok := l.nodes[fd]
	if !ok {
		return false
	}
	l.unlink(n)
	return true
}

// Len reports the number of descriptors with undelivered readiness.
func (l *Ledger) Len() int { return len(l.nodes) }

// Reset empties the ledger.
func (l *Ledger) Reset() {
	l.nodes = make(map[int]*ledgerNode)
	l.head, l.tail = nil, nil
}

// Scan visits the marked descriptors in arrival order. fn returns whether the
// descriptor should stay marked: a level-triggered consumer keeps descriptors
// that remain ready, an edge-triggered one drops each mark as it is delivered.
// fn must not call Mark or Clear during the scan.
func (l *Ledger) Scan(fn func(fd int, mask core.EventMask, gen uint64) (keep bool)) {
	for n := l.head; n != nil; {
		next := n.next
		if !fn(n.fd, n.mask, n.gen) {
			l.unlink(n)
		}
		n = next
	}
}

// unlink removes a node from the list and the index.
func (l *Ledger) unlink(n *ledgerNode) {
	if n.prev == nil {
		l.head = n.next
	} else {
		n.prev.next = n.next
	}
	if n.next == nil {
		l.tail = n.prev
	} else {
		n.next.prev = n.prev
	}
	n.prev, n.next = nil, nil
	delete(l.nodes, n.fd)
}
