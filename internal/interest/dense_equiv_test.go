package interest

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// refTable is the hash-map reference model of the dense Table: a plain map
// plus an insertion-order list and the §3.1 virtual-bucket trajectory.
type refTable struct {
	entries map[int]*refEntry
	order   []int // insertion order of live fds
	buckets int
	grows   int
}

type refEntry struct {
	events core.EventMask
	data   int64
}

func newRefTable() *refTable {
	return &refTable{entries: map[int]*refEntry{}, buckets: initialBuckets}
}

func (r *refTable) upsert(fd int) (*refEntry, bool) {
	if e, ok := r.entries[fd]; ok {
		return e, false
	}
	e := &refEntry{}
	r.entries[fd] = e
	r.order = append(r.order, fd)
	if float64(len(r.entries))/float64(r.buckets) >= 2 {
		r.buckets *= 2
		r.grows++
	}
	return e, true
}

func (r *refTable) delete(fd int) bool {
	if _, ok := r.entries[fd]; !ok {
		return false
	}
	delete(r.entries, fd)
	for i, n := range r.order {
		if n == fd {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// refLedger is the map-based reference model of the dense Ledger.
type refLedger struct {
	nodes map[int]*refNode
	order []int // arrival order of marked fds
}

type refNode struct {
	mask core.EventMask
	gen  uint64
}

func newRefLedger() *refLedger { return &refLedger{nodes: map[int]*refNode{}} }

func (r *refLedger) mark(fd int, mask core.EventMask, gen uint64) bool {
	if n, ok := r.nodes[fd]; ok {
		if n.gen != gen {
			n.gen = gen
			n.mask = mask
			return true
		}
		n.mask |= mask
		return false
	}
	r.nodes[fd] = &refNode{mask: mask, gen: gen}
	r.order = append(r.order, fd)
	return true
}

func (r *refLedger) clear(fd int) bool {
	if _, ok := r.nodes[fd]; !ok {
		return false
	}
	delete(r.nodes, fd)
	for i, n := range r.order {
		if n == fd {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// TestDenseTableMatchesMapModel drives randomized install/set/delete
// sequences — with heavy fd reuse, as POSIX lowest-unused allocation
// produces — through the dense Table and the map reference, comparing
// membership, masks, insertion order and the modelled bucket trajectory
// after every step.
func TestDenseTableMatchesMapModel(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		dense := NewTable()
		ref := newRefTable()
		const fdSpace = 40 // small: forces constant reuse
		for step := 0; step < 2000; step++ {
			fd := rng.Intn(fdSpace)
			switch rng.Intn(4) {
			case 0, 1: // Set (upsert + mask)
				mask := core.EventMask(rng.Intn(8))
				gotNew := dense.Set(fd, mask)
				e, wantNew := ref.upsert(fd)
				e.events = mask
				if gotNew != wantNew {
					t.Fatalf("trial %d step %d: Set(%d) new=%v, reference %v", trial, step, fd, gotNew, wantNew)
				}
			case 2: // Upsert + Data mutation
				e, gotNew := dense.Upsert(fd)
				re, wantNew := ref.upsert(fd)
				if gotNew != wantNew {
					t.Fatalf("trial %d step %d: Upsert(%d) new=%v, reference %v", trial, step, fd, gotNew, wantNew)
				}
				d := int64(rng.Intn(100))
				e.Data = d
				re.data = d
			case 3: // Delete
				got := dense.Delete(fd)
				want := ref.delete(fd)
				if got != want {
					t.Fatalf("trial %d step %d: Delete(%d)=%v, reference %v", trial, step, fd, got, want)
				}
			}

			if dense.Len() != len(ref.entries) {
				t.Fatalf("trial %d step %d: Len=%d, reference %d", trial, step, dense.Len(), len(ref.entries))
			}
			if dense.Buckets() != ref.buckets || dense.Grows != ref.grows {
				t.Fatalf("trial %d step %d: buckets/grows %d/%d, reference %d/%d",
					trial, step, dense.Buckets(), dense.Grows, ref.buckets, ref.grows)
			}
			if got := dense.FDs(); !reflect.DeepEqual(got, append([]int{}, ref.order...)) {
				t.Fatalf("trial %d step %d: insertion order %v, reference %v", trial, step, got, ref.order)
			}
			for fd := 0; fd < fdSpace; fd++ {
				gm, gok := dense.Get(fd)
				re, wok := ref.entries[fd]
				if gok != wok {
					t.Fatalf("trial %d step %d: Contains(%d)=%v, reference %v", trial, step, fd, gok, wok)
				}
				if gok && (gm != re.events || dense.Lookup(fd).Data != re.data) {
					t.Fatalf("trial %d step %d: fd %d state mismatch", trial, step, fd)
				}
			}
		}
	}
}

// TestDenseLedgerMatchesMapModel drives randomized mark/clear/scan/reset
// sequences with fd and generation reuse through the dense Ledger and the
// map reference, comparing pending state, masks, generations and scan order.
func TestDenseLedgerMatchesMapModel(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 100)))
		dense := NewLedger()
		ref := newRefLedger()
		const fdSpace = 32
		for step := 0; step < 2000; step++ {
			fd := rng.Intn(fdSpace)
			switch rng.Intn(5) {
			case 0, 1: // Mark, occasionally with a new generation (fd reuse)
				mask := core.EventMask(1 << rng.Intn(3))
				gen := uint64(rng.Intn(3) + 1)
				got := dense.Mark(fd, mask, gen)
				want := ref.mark(fd, mask, gen)
				if got != want {
					t.Fatalf("trial %d step %d: Mark(%d,gen=%d)=%v, reference %v", trial, step, fd, gen, got, want)
				}
			case 2: // Clear
				got := dense.Clear(fd)
				want := ref.clear(fd)
				if got != want {
					t.Fatalf("trial %d step %d: Clear(%d)=%v, reference %v", trial, step, fd, got, want)
				}
			case 3: // Scan, randomly keeping or dropping (edge/level consumers)
				drop := rng.Intn(2) == 0
				var scanned []int
				dense.Scan(func(fd int, mask core.EventMask, gen uint64) bool {
					scanned = append(scanned, fd)
					return !drop
				})
				if !reflect.DeepEqual(scanned, append([]int{}, ref.order...)) && !(len(scanned) == 0 && len(ref.order) == 0) {
					t.Fatalf("trial %d step %d: scan order %v, reference %v", trial, step, scanned, ref.order)
				}
				if drop {
					ref.nodes = map[int]*refNode{}
					ref.order = nil
				}
			case 4: // Reset, rarely
				if rng.Intn(10) == 0 {
					dense.Reset()
					ref.nodes = map[int]*refNode{}
					ref.order = nil
				}
			}

			if dense.Len() != len(ref.nodes) {
				t.Fatalf("trial %d step %d: Len=%d, reference %d", trial, step, dense.Len(), len(ref.nodes))
			}
			for fd := 0; fd < fdSpace; fd++ {
				if dense.Ready(fd) != (ref.nodes[fd] != nil) {
					t.Fatalf("trial %d step %d: Ready(%d) mismatch", trial, step, fd)
				}
				if n := ref.nodes[fd]; n != nil {
					if dense.Mask(fd) != n.mask || dense.Gen(fd) != n.gen {
						t.Fatalf("trial %d step %d: fd %d mask/gen mismatch: %v/%d vs %v/%d",
							trial, step, fd, dense.Mask(fd), dense.Gen(fd), n.mask, n.gen)
					}
				}
			}
		}
	}
}
