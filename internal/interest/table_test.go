package interest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestTableSetGetDelete(t *testing.T) {
	tb := NewTable()
	if tb.Len() != 0 || tb.Buckets() != initialBuckets {
		t.Fatalf("fresh table: len=%d buckets=%d", tb.Len(), tb.Buckets())
	}
	if !tb.Set(7, core.POLLIN) {
		t.Fatal("first Set should report a new entry")
	}
	if tb.Set(7, core.POLLOUT) {
		t.Fatal("second Set of same fd should report replacement")
	}
	if ev, ok := tb.Get(7); !ok || ev != core.POLLOUT {
		t.Fatalf("Get = %v %v", ev, ok)
	}
	if _, ok := tb.Get(8); ok {
		t.Fatal("Get of missing fd succeeded")
	}
	if !tb.Contains(7) || tb.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if !tb.Delete(7) {
		t.Fatal("Delete failed")
	}
	if tb.Delete(7) {
		t.Fatal("second Delete should fail")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableUpsertPreservesFileAndData(t *testing.T) {
	tb := NewTable()
	e, isNew := tb.Upsert(9)
	if !isNew {
		t.Fatal("Upsert of fresh fd should be new")
	}
	e.Events = core.POLLIN
	e.Data = 42
	if tb.Set(9, core.POLLOUT) {
		t.Fatal("Set of existing fd reported new")
	}
	got := tb.Lookup(9)
	if got == nil || got.Events != core.POLLOUT || got.Data != 42 {
		t.Fatalf("entry after Set = %+v", got)
	}
}

func TestTableGrowthDoublesBuckets(t *testing.T) {
	tb := NewTable()
	start := tb.Buckets()
	for fd := 0; fd < start*2; fd++ {
		tb.Set(fd, core.POLLIN)
	}
	if tb.Buckets() <= start {
		t.Fatalf("buckets did not grow: %d", tb.Buckets())
	}
	// The paper's rule: double when the average chain reaches two; so after any
	// insertion the average chain stays below two.
	if tb.AverageChain() >= 2 {
		t.Fatalf("average chain %.2f not kept below 2", tb.AverageChain())
	}
	if tb.Grows == 0 {
		t.Fatal("Grows not counted")
	}
	// All entries survive rehashing.
	for fd := 0; fd < start*2; fd++ {
		if _, ok := tb.Get(fd); !ok {
			t.Fatalf("fd %d lost during growth", fd)
		}
	}
}

func TestTableNeverShrinks(t *testing.T) {
	tb := NewTable()
	for fd := 0; fd < 1000; fd++ {
		tb.Set(fd, core.POLLIN)
	}
	grown := tb.Buckets()
	for fd := 0; fd < 1000; fd++ {
		tb.Delete(fd)
	}
	if tb.Buckets() != grown {
		t.Fatalf("table shrank from %d to %d buckets", grown, tb.Buckets())
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableIteratesInInsertionOrder(t *testing.T) {
	tb := NewTable()
	// Enough entries to force growth, so rehashing is covered too.
	var want []int
	for i := 0; i < 40; i++ {
		fd := (i * 13) % 97 // scattered, all distinct
		tb.Set(fd, core.POLLIN)
		want = append(want, fd)
	}
	if got := tb.FDs(); len(got) != len(want) {
		t.Fatalf("FDs = %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("insertion order broken at %d: got %v want %v", i, got, want)
			}
		}
	}
	// Deleting from the middle preserves the order of the rest.
	tb.Delete(want[3])
	want = append(want[:3], want[4:]...)
	got := tb.FDs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after delete broken at %d: got %v want %v", i, got, want)
		}
	}
}

func TestTableForEachAndFDs(t *testing.T) {
	tb := NewTable()
	want := map[int]core.EventMask{10: core.POLLIN, 20: core.POLLOUT, 30: core.POLLIN | core.POLLOUT}
	for fd, ev := range want {
		tb.Set(fd, ev)
	}
	got := map[int]core.EventMask{}
	tb.ForEach(func(fd int, ev core.EventMask) { got[fd] = ev })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries", len(got))
	}
	for fd, ev := range want {
		if got[fd] != ev {
			t.Fatalf("fd %d: got %v want %v", fd, got[fd], ev)
		}
	}
	if fds := tb.FDs(); len(fds) != 3 {
		t.Fatalf("FDs = %v", fds)
	}
	// Iteration order is deterministic.
	first := tb.FDs()
	second := tb.FDs()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("iteration order not deterministic")
		}
	}
}

// Property: the table behaves exactly like a map under a random sequence of
// set/delete operations, and the average chain length stays below two.
func TestTableMatchesModelProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable()
		model := map[int]core.EventMask{}
		ops := int(n%800) + 50
		for i := 0; i < ops; i++ {
			fd := rng.Intn(200)
			switch rng.Intn(3) {
			case 0, 1:
				ev := core.EventMask(rng.Intn(0x20))
				isNew := tb.Set(fd, ev)
				_, existed := model[fd]
				if isNew == existed {
					return false
				}
				model[fd] = ev
			case 2:
				deleted := tb.Delete(fd)
				_, existed := model[fd]
				if deleted != existed {
					return false
				}
				delete(model, fd)
			}
			if tb.Len() != len(model) {
				return false
			}
			if tb.Len() > 0 && tb.AverageChain() >= 2.0 {
				return false
			}
		}
		for fd, ev := range model {
			got, ok := tb.Get(fd)
			if !ok || got != ev {
				return false
			}
		}
		visited := 0
		tb.ForEach(func(fd int, ev core.EventMask) {
			visited++
			if model[fd] != ev {
				visited = -1 << 20
			}
		})
		return visited == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
