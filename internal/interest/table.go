// Package interest is the shared kernel-resident interest engine behind every
// event-notification mechanism in the reproduction. The paper's central
// argument (Provos & Lever, "Scalable Network I/O in Linux", FREENIX 2000) is
// that /dev/poll and RT signals beat stock poll() because the interest set
// lives inside the kernel instead of being copied in on every call; this
// package is that kernel-resident state, factored out so the mechanisms
// (stock poll, /dev/poll, RT signals, epoll) differ only in what they charge
// the cost model and how they present readiness, not in how they store
// interests or run a blocking wait.
//
// It provides three pieces:
//
//   - Table: the kernel-resident interest set of §3.1, generalized with
//     insertion-order iteration so the same structure can also stand in for
//     stock poll's user-space pollfd array;
//   - Ledger: a readiness ledger recording which registered descriptors have
//     pending readiness, updated once per driver notification and scanned in
//     O(ready) rather than O(registered);
//   - Engine: the common blocking-wait state machine (first-pass fast path,
//     rescan-on-wakeup, timeout, handler dispatch at the correct virtual
//     time).
package interest

import (
	"repro/internal/core"
	"repro/internal/simkernel"
)

// Entry is one registered interest in the kernel-resident set. Events is the
// requested interest mask; File caches the resolved descriptor-table entry
// (nil until a mechanism resolves it); Data carries mechanism-specific
// per-interest state (the RT signal number for rtsig, user data for epoll).
type Entry struct {
	FD     int
	Events core.EventMask
	File   *simkernel.FD
	Data   int64

	prev, next *Entry // insertion-order list; next doubles as the pool link
}

// Table is the kernel-resident interest set described in §3.1 of the paper.
// The paper implements it as a chained hash table ("when the average bucket
// size is two, the number of buckets in the hash table is doubled. The hash
// table is never shrunk"); this reproduction stores entries in a dense
// descriptor-indexed slice instead — PR 3's lowest-unused fd allocation keeps
// descriptor numbers compact, so the slice is the cache-friendly,
// allocation-free equivalent — while the paper's bucket-count trajectory is
// still tracked (Buckets, AverageChain, Grows) so the ablations and tests
// that observe the §3.1 growth policy see identical values.
//
// Iteration (Each, ForEach, FDs) runs in insertion order, which keeps
// simulation runs deterministic and lets stock poll reuse the table as its
// ordered pollfd array. Deleted entries return to an internal pool, making
// Set/Upsert allocation-free at steady state.
type Table struct {
	slots []*Entry // fd-indexed; nil = not registered
	head  *Entry
	tail  *Entry
	count int
	pool  *Entry // recycled entries, linked through next

	// vbuckets is the bucket count the paper's hash table would have: it
	// doubles whenever the average chain length reaches two and never
	// shrinks.
	vbuckets int

	// Grows counts bucket-doubling events, exposed for tests and ablations.
	Grows int
}

// initialBuckets is the starting bucket count; the exact value only affects
// how soon the first doubling happens.
const initialBuckets = 8

// NewTable returns an empty interest table.
func NewTable() *Table {
	return &Table{vbuckets: initialBuckets}
}

// Len reports the number of registered interests.
func (t *Table) Len() int { return t.count }

// Buckets reports the bucket count of the §3.1 hash table this set models.
func (t *Table) Buckets() int { return t.vbuckets }

// AverageChain reports the average bucket occupancy of the modelled table.
func (t *Table) AverageChain() float64 {
	if t.vbuckets == 0 {
		return 0
	}
	return float64(t.count) / float64(t.vbuckets)
}

// Lookup returns the entry registered for fd, or nil. The entry is owned by
// the table: it is valid until the interest is deleted.
func (t *Table) Lookup(fd int) *Entry {
	if fd < 0 || fd >= len(t.slots) {
		return nil
	}
	return t.slots[fd]
}

// Get returns the interest mask registered for fd.
func (t *Table) Get(fd int) (core.EventMask, bool) {
	if e := t.Lookup(fd); e != nil {
		return e.Events, true
	}
	return 0, false
}

// Contains reports whether fd has a registered interest.
func (t *Table) Contains(fd int) bool { return t.Lookup(fd) != nil }

// Upsert returns the entry for fd, creating it (appended to the insertion
// order) if absent, and reports whether it was newly created.
func (t *Table) Upsert(fd int) (*Entry, bool) {
	if e := t.Lookup(fd); e != nil {
		return e, false
	}
	if fd < 0 {
		panic("interest: Table.Upsert with negative descriptor")
	}
	var e *Entry
	if t.pool != nil {
		e = t.pool
		t.pool = e.next
		*e = Entry{FD: fd}
	} else {
		e = &Entry{FD: fd}
	}
	for fd >= len(t.slots) {
		t.slots = append(t.slots, nil)
	}
	t.slots[fd] = e
	if t.tail == nil {
		t.head, t.tail = e, e
	} else {
		e.prev = t.tail
		t.tail.next = e
		t.tail = e
	}
	t.count++
	if t.AverageChain() >= 2 {
		t.vbuckets *= 2
		t.Grows++
	}
	return e, true
}

// Set registers or replaces the interest mask for fd and reports whether the
// entry was newly created. File and Data of an existing entry are preserved.
func (t *Table) Set(fd int, events core.EventMask) bool {
	e, isNew := t.Upsert(fd)
	e.Events = events
	return isNew
}

// Delete removes the interest for fd, reporting whether it was present. The
// modelled hash table never shrinks; the entry's storage is recycled.
func (t *Table) Delete(fd int) bool {
	e := t.Lookup(fd)
	if e == nil {
		return false
	}
	if e.prev == nil {
		t.head = e.next
	} else {
		e.prev.next = e.next
	}
	if e.next == nil {
		t.tail = e.prev
	} else {
		e.next.prev = e.prev
	}
	t.slots[fd] = nil
	t.count--
	*e = Entry{next: t.pool}
	t.pool = e
	return true
}

// Each visits every entry in insertion order. fn must not add or remove table
// entries during the walk.
func (t *Table) Each(fn func(e *Entry)) {
	for e := t.head; e != nil; e = e.next {
		fn(e)
	}
}

// ForEach visits every interest in insertion order. Iteration order is
// deterministic so simulation runs are repeatable.
func (t *Table) ForEach(fn func(fd int, events core.EventMask)) {
	t.Each(func(e *Entry) { fn(e.FD, e.Events) })
}

// FDs returns all registered descriptors in insertion order.
func (t *Table) FDs() []int {
	out := make([]int, 0, t.count)
	t.Each(func(e *Entry) { out = append(out, e.FD) })
	return out
}
