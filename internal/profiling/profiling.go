// Package profiling implements the -cpuprofile/-memprofile support shared by
// the benchmark command-line tools.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap profile to memPath (when non-empty).
// Callers invoke Start only after validating their arguments, so an input
// error cannot leave a truncated profile behind, and must call the returned
// function on every exit path that should produce usable profiles.
func Start(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
