// Package profiling implements the -cpuprofile/-memprofile support shared by
// the benchmark command-line tools.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profile outputs a tool was asked for; empty paths are
// skipped. Mutex and Block exist for the sharded parallel engine: contention
// on its barriers and rings shows up in exactly these two profiles.
type Config struct {
	CPU   string // pprof CPU profile, sampled over the whole run
	Mem   string // heap profile, taken at exit after a GC
	Mutex string // mutex contention profile (SetMutexProfileFraction(1))
	Block string // blocking profile (SetBlockProfileRate(1))
}

// Start begins CPU profiling (when cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap profile to memPath (when non-empty).
// Callers invoke Start only after validating their arguments, so an input
// error cannot leave a truncated profile behind, and must call the returned
// function on every exit path that should produce usable profiles.
func Start(cpuPath, memPath string) func() {
	return StartAll(Config{CPU: cpuPath, Mem: memPath})
}

// StartAll begins every profile named in cfg and returns the stop function
// that ends them and writes the at-exit profiles.
func StartAll(cfg Config) func() {
	if cfg.CPU != "" {
		f, err := os.Create(cfg.CPU)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if cfg.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() {
		if cfg.CPU != "" {
			pprof.StopCPUProfile()
		}
		if cfg.Mem != "" {
			f, err := os.Create(cfg.Mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		writeLookup(cfg.Mutex, "mutex")
		writeLookup(cfg.Block, "block")
	}
}

// writeLookup writes one of the runtime's named profiles (mutex, block) at
// exit, in the uncompacted debug=0 pprof format the pprof tool expects.
func writeLookup(path, name string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", name, err)
		os.Exit(1)
	}
}
