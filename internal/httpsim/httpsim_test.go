package httpsim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatRequestIsParseable(t *testing.T) {
	raw := FormatRequest("/index.html")
	p := NewParser()
	complete, err := p.Feed(raw)
	if err != nil || !complete {
		t.Fatalf("Feed: complete=%v err=%v", complete, err)
	}
	req := p.Request()
	if req.Method != "GET" || req.Path != "/index.html" || req.Version != "HTTP/1.0" {
		t.Fatalf("req = %+v", req)
	}
	if req.Headers["host"] == "" || req.Headers["user-agent"] == "" {
		t.Fatalf("headers = %v", req.Headers)
	}
}

func TestPartialRequestNeverCompletes(t *testing.T) {
	raw := FormatPartialRequest("/index.html")
	p := NewParser()
	complete, err := p.Feed(raw)
	if err != nil {
		t.Fatal(err)
	}
	if complete || p.Complete() {
		t.Fatal("partial request must not complete — it is what keeps inactive connections open")
	}
	if p.Buffered() != len(raw) {
		t.Fatalf("Buffered = %d", p.Buffered())
	}
	// Completing it later works.
	complete, err = p.Feed([]byte("\r\n"))
	if err != nil || !complete {
		t.Fatalf("completion: %v %v", complete, err)
	}
}

func TestParserIncrementalBytes(t *testing.T) {
	raw := FormatRequest("/small.html")
	p := NewParser()
	for i := 0; i < len(raw); i++ {
		complete, err := p.Feed(raw[i : i+1])
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if complete != (i == len(raw)-1) {
			t.Fatalf("byte %d: complete=%v", i, complete)
		}
	}
	if p.Request().Path != "/small.html" {
		t.Fatalf("path = %q", p.Request().Path)
	}
	// Feeding after completion is a no-op.
	if complete, err := p.Feed([]byte("garbage")); !complete || err != nil {
		t.Fatalf("post-completion feed: %v %v", complete, err)
	}
	p.Reset()
	if p.Complete() || p.Buffered() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestParserMalformedRequests(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /x\r\n\r\n",
		"GET noslash HTTP/1.0\r\n\r\n",
		"GET / FTP/1.0\r\n\r\n",
		"GET / HTTP/1.0\r\nBadHeaderNoColon\r\n\r\n",
		" / HTTP/1.0\r\n\r\n",
	}
	for _, c := range cases {
		p := NewParser()
		complete, err := p.Feed([]byte(c))
		if complete || err == nil {
			t.Errorf("case %q: complete=%v err=%v", c, complete, err)
		}
		if p.Err() == nil {
			t.Errorf("case %q: Err not sticky", c)
		}
		// Subsequent feeds keep returning the error.
		if _, err2 := p.Feed([]byte("more")); err2 == nil {
			t.Errorf("case %q: error not sticky on later feeds", c)
		}
	}
}

func TestParserTooLarge(t *testing.T) {
	p := NewParser()
	junk := strings.Repeat("X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n", 300)
	_, err := p.Feed([]byte("GET / HTTP/1.0\r\n" + junk))
	if err != ErrTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestResponseHeadAndSize(t *testing.T) {
	head := ResponseHead(StatusOK, 6144)
	s := string(head)
	if !strings.HasPrefix(s, "HTTP/1.0 200 OK\r\n") {
		t.Fatalf("head = %q", s)
	}
	if !strings.Contains(s, "Content-Length: 6144") || !strings.Contains(s, "Connection: close") {
		t.Fatalf("head = %q", s)
	}
	if ResponseSize(StatusOK, 6144) != len(head)+6144 {
		t.Fatal("ResponseSize mismatch")
	}
	if !strings.Contains(string(ResponseHead(StatusNotFound, 0)), "404 Not Found") {
		t.Fatal("404 reason phrase missing")
	}
	if !strings.Contains(string(ResponseHead(StatusBadReq, 0)), "400 Bad Request") {
		t.Fatal("400 reason phrase missing")
	}
	if !strings.Contains(string(ResponseHead(599, 0)), "599 Unknown") {
		t.Fatal("unknown status handling missing")
	}
}

func TestContentStore(t *testing.T) {
	cs := DefaultContentStore()
	size, ok := cs.Lookup(DefaultDocumentPath)
	if !ok || size != DefaultDocumentSize {
		t.Fatalf("default document: %d %v", size, ok)
	}
	if _, ok := cs.Lookup("/missing.html"); ok {
		t.Fatal("missing document found")
	}
	if cs.Len() < 4 {
		t.Fatalf("Len = %d", cs.Len())
	}
	docs := cs.Documents()
	for i := 1; i < len(docs); i++ {
		if docs[i-1].Path >= docs[i].Path {
			t.Fatal("Documents not sorted")
		}
	}
	cs.Add("/neg.html", -5)
	if size, _ := cs.Lookup("/neg.html"); size != 0 {
		t.Fatalf("negative size not clamped: %d", size)
	}
}

// Property: any well-formed GET request produced by FormatRequest parses back
// to the same path, regardless of how it is split into feed chunks.
func TestFormatParseRoundTripProperty(t *testing.T) {
	f := func(pathSeed uint16, split uint8) bool {
		path := "/doc" + strings.Repeat("x", int(pathSeed%32)) + ".html"
		raw := FormatRequest(path)
		cut := int(split) % len(raw)
		p := NewParser()
		if cut > 0 {
			if complete, err := p.Feed(raw[:cut]); err != nil || (complete && cut < len(raw)-1) {
				// Completing early is only possible if the cut is after the
				// terminator, which cannot happen for cut < len-1.
				if err != nil {
					return false
				}
			}
		}
		complete, err := p.Feed(raw[cut:])
		if err != nil || !complete {
			return false
		}
		return p.Request().Path == path && p.Request().Method == "GET"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestResponseSizeMatchesFormattedHead pins the arithmetic ResponseSize to
// the formatted header it replaced: the two must never drift, because the
// servers charge write costs by the computed size while tests and the wire
// model measure the formatted bytes.
func TestResponseSizeMatchesFormattedHead(t *testing.T) {
	codes := []int{StatusOK, StatusNotFound, StatusBadReq, 999, 1}
	lengths := []int{0, 1, 9, 10, 99, 512, 6144, 128 * 1024, 1<<20 - 1}
	for _, code := range codes {
		for _, n := range lengths {
			want := len(ResponseHead(code, n)) + n
			if got := ResponseSize(code, n); got != want {
				t.Fatalf("ResponseSize(%d, %d) = %d, formatted head gives %d", code, n, got, want)
			}
		}
	}
}

// TestResponseSizeVersionMatchesFormattedHead pins the keep-alive variant of
// the arithmetic size to its formatted head for every version/disposition
// combination, including that the version token never changes the size.
func TestResponseSizeVersionMatchesFormattedHead(t *testing.T) {
	codes := []int{StatusOK, StatusNotFound, StatusBadReq, 999}
	lengths := []int{0, 9, 512, 6144, 128 * 1024}
	for _, code := range codes {
		for _, n := range lengths {
			for _, http11 := range []bool{false, true} {
				for _, keep := range []bool{false, true} {
					want := len(ResponseHeadVersion(code, n, http11, keep)) + n
					if got := ResponseSizeVersion(code, n, keep); got != want {
						t.Fatalf("ResponseSizeVersion(%d, %d, %v) = %d, head(http11=%v) gives %d",
							code, n, keep, got, http11, want)
					}
				}
			}
		}
	}
	// The legacy HTTP/1.0 head is bytes written before the refactor.
	if string(ResponseHead(StatusOK, 6144)) != "HTTP/1.0 200 OK\r\nServer: thttpd-sim/2.16\r\nContent-Type: text/html\r\nContent-Length: 6144\r\nConnection: close\r\n\r\n" {
		t.Fatalf("legacy head drifted: %q", ResponseHead(StatusOK, 6144))
	}
}

// TestKeepAliveNegotiation covers the version-dependent Connection defaults.
func TestKeepAliveNegotiation(t *testing.T) {
	cases := []struct {
		raw  []byte
		keep bool
	}{
		{FormatRequest("/index.html"), false},         // 1.0, no header
		{FormatRequest11("/index.html", false), true}, // 1.1 default persistent
		{FormatRequest11("/index.html", true), false}, // 1.1 + Connection: close
		{[]byte("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"), true},
		{[]byte("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"), true},
	}
	for i, c := range cases {
		p := NewParser()
		complete, err := p.Feed(c.raw)
		if err != nil || !complete {
			t.Fatalf("case %d: complete=%v err=%v", i, complete, err)
		}
		if got := p.Request().KeepAlive(); got != c.keep {
			t.Fatalf("case %d (%q): KeepAlive = %v, want %v", i, c.raw, got, c.keep)
		}
	}
}

// TestParserPipelinedRequests feeds three back-to-back requests in one chunk
// and walks them with Consume.
func TestParserPipelinedRequests(t *testing.T) {
	paths := []string{"/index.html", "/small.html", "/large.html"}
	var raw []byte
	for i, path := range paths {
		raw = append(raw, FormatRequest11(path, i == len(paths)-1)...)
	}
	p := NewParser()
	complete, err := p.Feed(raw)
	if err != nil || !complete {
		t.Fatalf("Feed: complete=%v err=%v", complete, err)
	}
	for i, path := range paths {
		if p.Request().Path != path {
			t.Fatalf("request %d: path = %q, want %q", i, p.Request().Path, path)
		}
		wantKeep := i < len(paths)-1
		if p.Request().KeepAlive() != wantKeep {
			t.Fatalf("request %d: KeepAlive = %v", i, p.Request().KeepAlive())
		}
		complete, err = p.Consume()
		if err != nil {
			t.Fatalf("Consume %d: %v", i, err)
		}
		if wantMore := i < len(paths)-1; complete != wantMore {
			t.Fatalf("Consume %d: complete=%v, want %v", i, complete, wantMore)
		}
	}
	if p.Buffered() != 0 {
		t.Fatalf("Buffered = %d after draining", p.Buffered())
	}
	// Consume on an empty, incomplete parser is a no-op.
	if complete, err := p.Consume(); complete || err != nil {
		t.Fatalf("idle Consume: %v %v", complete, err)
	}
}

// TestParserPipelineSplitAcrossFeeds splits a two-request pipeline so the
// second request's bytes straddle the first's completion: some arrive with
// request one (retained past the terminator), the rest arrive only after
// Consume.
func TestParserPipelineSplitAcrossFeeds(t *testing.T) {
	first := FormatRequest11("/index.html", false)
	second := FormatRequest11("/small.html", false)
	both := append(append([]byte{}, first...), second...)
	for cut := len(first); cut < len(both); cut++ {
		p := NewParser()
		complete, err := p.Feed(both[:cut])
		if err != nil || !complete {
			t.Fatalf("cut %d: first request not complete (%v, %v)", cut, complete, err)
		}
		if p.Request().Path != "/index.html" {
			t.Fatalf("cut %d: path = %q", cut, p.Request().Path)
		}
		complete, err = p.Consume()
		if err != nil {
			t.Fatalf("cut %d: Consume: %v", cut, err)
		}
		if complete {
			t.Fatalf("cut %d: second request complete early", cut)
		}
		complete, err = p.Feed(both[cut:])
		if err != nil || !complete {
			t.Fatalf("cut %d: second request not complete (%v, %v)", cut, complete, err)
		}
		if p.Request().Path != "/small.html" || !p.Request().KeepAlive() {
			t.Fatalf("cut %d: second request = %+v", cut, p.Request())
		}
	}
}

// TestParserReuse drives two full requests through one parser with a Reset
// between them, the lifecycle a pooled connection record performs.
func TestParserReuse(t *testing.T) {
	p := NewParser()
	for i, path := range []string{"/index.html", "/large.html"} {
		complete, err := p.Feed(FormatRequest(path))
		if err != nil || !complete {
			t.Fatalf("round %d: complete=%v err=%v", i, complete, err)
		}
		req := p.Request()
		if req.Path != path || req.Method != "GET" || req.Version != "HTTP/1.0" {
			t.Fatalf("round %d: req = %+v", i, req)
		}
		if req.Headers["host"] != "server.citi.umich.edu" {
			t.Fatalf("round %d: headers = %v", i, req.Headers)
		}
		p.Reset()
		if p.Complete() || p.Buffered() != 0 || p.Request() != nil || p.Err() != nil {
			t.Fatalf("round %d: Reset left state behind", i)
		}
	}
}
