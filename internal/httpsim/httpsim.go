// Package httpsim provides the minimal HTTP/1.0 machinery the simulated web
// servers and the load generator share: an incremental request parser (so a
// server can handle requests that arrive split across reads, including the
// deliberately incomplete requests of the paper's inactive clients), request
// and response formatting, and a static content store holding the 6 KB
// index.html document the benchmark requests.
package httpsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors reported by the parser.
var (
	// ErrMalformed indicates a request line or header that cannot be parsed.
	ErrMalformed = errors.New("httpsim: malformed request")
	// ErrTooLarge indicates a request exceeding the parser's size limit.
	ErrTooLarge = errors.New("httpsim: request too large")
)

// MaxRequestBytes bounds how much request data the parser accepts before
// declaring the request hostile, matching the small fixed buffers of
// thttpd-era servers.
const MaxRequestBytes = 8192

// Request is a parsed HTTP/1.0 request.
type Request struct {
	Method  string
	Path    string
	Version string
	Headers map[string]string
}

// FormatRequest renders a well-formed HTTP/1.0 GET request for path, as the
// httperf-like load generator sends it.
func FormatRequest(path string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nUser-Agent: httperf-sim/0.8\r\nHost: server.citi.umich.edu\r\n\r\n", path))
}

// FormatPartialRequest renders the deliberately incomplete request an inactive
// (high-latency, stalled) client sends: the request line without the final
// blank line, so the server keeps the connection open waiting for the rest.
func FormatPartialRequest(path string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nUser-Agent: httperf-sim/0.8\r\n", path))
}

// Parser incrementally assembles a request from the byte chunks a server
// reads. It is a small state machine over the accumulated buffer: a request is
// complete when the terminating blank line has been seen.
type Parser struct {
	buf      []byte
	complete bool
	req      *Request
	err      error
}

// NewParser returns an empty request parser.
func NewParser() *Parser { return &Parser{} }

// Feed appends data read from the connection and reports whether a complete
// request is now available. Feeding after completion is a no-op.
func (p *Parser) Feed(data []byte) (complete bool, err error) {
	if p.err != nil {
		return false, p.err
	}
	if p.complete {
		return true, nil
	}
	p.buf = append(p.buf, data...)
	if len(p.buf) > MaxRequestBytes {
		p.err = ErrTooLarge
		return false, p.err
	}
	idx := strings.Index(string(p.buf), "\r\n\r\n")
	if idx < 0 {
		return false, nil
	}
	req, perr := parseHead(string(p.buf[:idx]))
	if perr != nil {
		p.err = perr
		return false, perr
	}
	p.req = req
	p.complete = true
	return true, nil
}

// Complete reports whether a full request has been assembled.
func (p *Parser) Complete() bool { return p.complete }

// Buffered reports how many bytes are held while waiting for completion.
func (p *Parser) Buffered() int { return len(p.buf) }

// Request returns the parsed request once Complete is true.
func (p *Parser) Request() *Request { return p.req }

// Err returns the parse error, if any.
func (p *Parser) Err() error { return p.err }

// Reset clears the parser for reuse on a keep-alive connection.
func (p *Parser) Reset() { *p = Parser{} }

// parseHead parses the request line and headers (everything before the blank
// line).
func parseHead(head string) (*Request, error) {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, ErrMalformed
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 {
		return nil, ErrMalformed
	}
	method, path, version := parts[0], parts[1], parts[2]
	if method == "" || !strings.HasPrefix(path, "/") || !strings.HasPrefix(version, "HTTP/") {
		return nil, ErrMalformed
	}
	req := &Request{Method: method, Path: path, Version: version, Headers: map[string]string{}}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		colon := strings.Index(line, ":")
		if colon <= 0 {
			return nil, ErrMalformed
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		req.Headers[key] = strings.TrimSpace(line[colon+1:])
	}
	return req, nil
}

// Status codes used by the simulated servers.
const (
	StatusOK       = 200
	StatusNotFound = 404
	StatusBadReq   = 400
)

// statusText maps the codes above to reason phrases.
func statusText(code int) string {
	switch code {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "Not Found"
	case StatusBadReq:
		return "Bad Request"
	default:
		return "Unknown"
	}
}

// ResponseHead renders the response status line and headers for a body of
// contentLength bytes. The servers charge the CPU for writing
// len(ResponseHead) + contentLength bytes.
func ResponseHead(code, contentLength int) []byte {
	return []byte(fmt.Sprintf(
		"HTTP/1.0 %d %s\r\nServer: thttpd-sim/2.16\r\nContent-Type: text/html\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		code, statusText(code), contentLength))
}

// ResponseSize is the total on-the-wire size of a response with the given
// status and body length.
func ResponseSize(code, contentLength int) int {
	return len(ResponseHead(code, contentLength)) + contentLength
}

// Document is one entry in the content store.
type Document struct {
	Path string
	Size int
}

// ContentStore is the static document tree the server exports. Only sizes are
// stored; the simulation never ships document bodies.
type ContentStore struct {
	docs map[string]int
}

// DefaultDocumentPath is the document every benchmark run requests.
const DefaultDocumentPath = "/index.html"

// DefaultDocumentSize is the paper's workload: "we request a 6 Kbyte document,
// a typical index.html file from the CITI web site".
const DefaultDocumentSize = 6 * 1024

// NewContentStore returns an empty store.
func NewContentStore() *ContentStore { return &ContentStore{docs: make(map[string]int)} }

// DefaultContentStore returns a store holding the paper's 6 KB index.html plus
// a small spread of other document sizes used by the extension workloads.
func DefaultContentStore() *ContentStore {
	cs := NewContentStore()
	cs.Add(DefaultDocumentPath, DefaultDocumentSize)
	cs.Add("/small.html", 512)
	cs.Add("/medium.html", 24*1024)
	cs.Add("/large.html", 128*1024)
	return cs
}

// Add registers a document of the given size.
func (c *ContentStore) Add(path string, size int) {
	if size < 0 {
		size = 0
	}
	c.docs[path] = size
}

// Lookup returns a document's size.
func (c *ContentStore) Lookup(path string) (int, bool) {
	size, ok := c.docs[path]
	return size, ok
}

// Len reports the number of documents.
func (c *ContentStore) Len() int { return len(c.docs) }

// Documents lists the store's contents sorted by path.
func (c *ContentStore) Documents() []Document {
	out := make([]Document, 0, len(c.docs))
	for p, s := range c.docs {
		out = append(out, Document{Path: p, Size: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
