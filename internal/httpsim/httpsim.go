// Package httpsim provides the minimal HTTP/1.0 machinery the simulated web
// servers and the load generator share: an incremental request parser (so a
// server can handle requests that arrive split across reads, including the
// deliberately incomplete requests of the paper's inactive clients), request
// and response formatting, and a static content store holding the 6 KB
// index.html document the benchmark requests.
package httpsim

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors reported by the parser.
var (
	// ErrMalformed indicates a request line or header that cannot be parsed.
	ErrMalformed = errors.New("httpsim: malformed request")
	// ErrTooLarge indicates a request exceeding the parser's size limit.
	ErrTooLarge = errors.New("httpsim: request too large")
)

// MaxRequestBytes bounds how much request data the parser accepts before
// declaring the request hostile, matching the small fixed buffers of
// thttpd-era servers.
const MaxRequestBytes = 8192

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Version string
	Headers map[string]string
}

// HTTP11 reports whether the request was made with HTTP/1.1.
func (r *Request) HTTP11() bool { return r.Version == "HTTP/1.1" }

// KeepAlive reports whether the client asked for the connection to persist
// after the response: HTTP/1.1 defaults to persistent unless the client sent
// `Connection: close`; HTTP/1.0 persists only on an explicit
// `Connection: keep-alive`.
func (r *Request) KeepAlive() bool {
	conn := r.Headers["connection"]
	if r.HTTP11() {
		return conn != "close"
	}
	return conn == "keep-alive"
}

// FormatRequest renders a well-formed HTTP/1.0 GET request for path, as the
// httperf-like load generator sends it.
func FormatRequest(path string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nUser-Agent: httperf-sim/0.8\r\nHost: server.citi.umich.edu\r\n\r\n", path))
}

// FormatRequest11 renders an HTTP/1.1 GET request for path. With close set
// the request carries `Connection: close` (the keep-alive client's final
// request); otherwise it relies on HTTP/1.1's default persistence.
func FormatRequest11(path string, close bool) []byte {
	conn := ""
	if close {
		conn = "Connection: close\r\n"
	}
	return []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nUser-Agent: httperf-sim/0.8\r\nHost: server.citi.umich.edu\r\n%s\r\n", path, conn))
}

// FormatPartialRequest renders the deliberately incomplete request an inactive
// (high-latency, stalled) client sends: the request line without the final
// blank line, so the server keeps the connection open waiting for the rest.
func FormatPartialRequest(path string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nUser-Agent: httperf-sim/0.8\r\n", path))
}

// Parser incrementally assembles a request from the byte chunks a server
// reads. It is a small state machine over the accumulated buffer: a request is
// complete when the terminating blank line has been seen. Bytes beyond the
// terminator (pipelined follow-up requests) are retained; Consume discards the
// completed request and advances to them.
//
// The parser is built for reuse on the server's hottest path: Reset keeps the
// accumulated buffer's storage and the parsed request's header map, the
// terminator search resumes where the previous Feed left off (so trickled
// bytes cost O(new bytes), not O(buffer)), and the tokens every benchmark
// request carries are interned. Parsing a well-formed benchmark request
// allocates nothing at steady state.
type Parser struct {
	buf      []byte
	end      int // one past the completed request's terminator
	complete bool
	req      *Request // points at store once complete, nil before
	store    Request
	err      error
}

// NewParser returns an empty request parser.
func NewParser() *Parser { return &Parser{} }

var crlf2 = []byte("\r\n\r\n")

// Feed appends data read from the connection and reports whether a complete
// request is now available. Bytes fed after completion are buffered for
// Consume but not scanned.
func (p *Parser) Feed(data []byte) (complete bool, err error) {
	if p.err != nil {
		return false, p.err
	}
	if p.complete {
		p.buf = append(p.buf, data...)
		return true, nil
	}
	// The terminator cannot end before the new bytes, so resume the search
	// three bytes before them (it may straddle the boundary).
	from := len(p.buf) - 3
	if from < 0 {
		from = 0
	}
	p.buf = append(p.buf, data...)
	if len(p.buf) > MaxRequestBytes {
		p.err = ErrTooLarge
		return false, p.err
	}
	return p.scan(from)
}

// scan searches for the request terminator at or after from and parses the
// head on a match.
func (p *Parser) scan(from int) (bool, error) {
	idx := bytes.Index(p.buf[from:], crlf2)
	if idx < 0 {
		return false, nil
	}
	if perr := p.parseHead(p.buf[:from+idx]); perr != nil {
		p.err = perr
		return false, perr
	}
	p.end = from + idx + len(crlf2)
	p.req = &p.store
	p.complete = true
	return true, nil
}

// Consume discards the completed request's bytes, retains any pipelined
// remainder and scans it, reporting whether another complete request is
// already buffered. Calling Consume before completion is a no-op.
func (p *Parser) Consume() (complete bool, err error) {
	if !p.complete {
		return false, p.err
	}
	n := copy(p.buf, p.buf[p.end:])
	p.buf = p.buf[:n]
	p.end = 0
	p.complete = false
	p.req = nil
	p.store.Method, p.store.Path, p.store.Version = "", "", ""
	if p.store.Headers != nil {
		clear(p.store.Headers)
	}
	if len(p.buf) == 0 {
		return false, nil
	}
	return p.scan(0)
}

// Complete reports whether a full request has been assembled.
func (p *Parser) Complete() bool { return p.complete }

// Buffered reports how many bytes are held while waiting for completion.
func (p *Parser) Buffered() int { return len(p.buf) }

// Request returns the parsed request once Complete is true. The returned
// value is owned by the parser and is invalidated by Reset.
func (p *Parser) Request() *Request { return p.req }

// Err returns the parse error, if any.
func (p *Parser) Err() error { return p.err }

// Reset clears the parser for reuse, keeping the buffer and header-map
// storage so a pooled connection's next request parses without allocating.
func (p *Parser) Reset() {
	p.buf = p.buf[:0]
	p.end = 0
	p.complete = false
	p.req = nil
	p.err = nil
	p.store.Method, p.store.Path, p.store.Version = "", "", ""
	if p.store.Headers != nil {
		clear(p.store.Headers)
	}
}

// parseHead parses the request line and headers (everything before the blank
// line) into the parser's reusable request.
func (p *Parser) parseHead(head []byte) error {
	line, rest, _ := bytes.Cut(head, crlf2[:2])
	// Request line: exactly three space-separated parts.
	s1 := bytes.IndexByte(line, ' ')
	if s1 < 0 {
		return ErrMalformed
	}
	s2 := bytes.IndexByte(line[s1+1:], ' ')
	if s2 < 0 {
		return ErrMalformed
	}
	s2 += s1 + 1
	if bytes.IndexByte(line[s2+1:], ' ') >= 0 {
		return ErrMalformed
	}
	method, path, version := line[:s1], line[s1+1:s2], line[s2+1:]
	if len(method) == 0 || len(path) == 0 || path[0] != '/' || !bytes.HasPrefix(version, []byte("HTTP/")) {
		return ErrMalformed
	}
	if p.store.Headers == nil {
		p.store.Headers = make(map[string]string, 4)
	}
	p.store.Method = intern(method)
	p.store.Path = intern(path)
	p.store.Version = intern(version)
	for len(rest) > 0 {
		line, rest, _ = bytes.Cut(rest, crlf2[:2])
		if len(line) == 0 {
			continue
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			return ErrMalformed
		}
		key := internHeaderKey(bytes.TrimSpace(line[:colon]))
		p.store.Headers[key] = intern(bytes.TrimSpace(line[colon+1:]))
	}
	return nil
}

// internHeaderKey lower-cases a header name, returning shared constants for
// the benchmark request's headers.
func internHeaderKey(b []byte) string {
	switch string(b) {
	case "User-Agent", "user-agent":
		return "user-agent"
	case "Host", "host":
		return "host"
	case "Connection", "connection":
		return "connection"
	}
	return strings.ToLower(string(b))
}

// intern converts a byte slice to a string, returning a shared constant for
// the tokens every benchmark request carries so the per-request parse does
// not allocate. The switch's string conversions do not allocate.
func intern(b []byte) string {
	switch string(b) {
	case "GET":
		return "GET"
	case "HTTP/1.0":
		return "HTTP/1.0"
	case "HTTP/1.1":
		return "HTTP/1.1"
	case DefaultDocumentPath:
		return DefaultDocumentPath
	case "/small.html":
		return "/small.html"
	case "/medium.html":
		return "/medium.html"
	case "/large.html":
		return "/large.html"
	case "httperf-sim/0.8":
		return "httperf-sim/0.8"
	case "server.citi.umich.edu":
		return "server.citi.umich.edu"
	case "keep-alive":
		return "keep-alive"
	case "close":
		return "close"
	}
	return string(b)
}

// Status codes used by the simulated servers.
const (
	StatusOK       = 200
	StatusNotFound = 404
	StatusBadReq   = 400
)

// statusText maps the codes above to reason phrases.
func statusText(code int) string {
	switch code {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "Not Found"
	case StatusBadReq:
		return "Bad Request"
	default:
		return "Unknown"
	}
}

// connectionToken is the Connection header value for a response that keeps
// the connection open (keepAlive) or closes it.
func connectionToken(keepAlive bool) string {
	if keepAlive {
		return "keep-alive"
	}
	return "close"
}

// versionToken is the response status line's protocol token.
func versionToken(http11 bool) string {
	if http11 {
		return "HTTP/1.1"
	}
	return "HTTP/1.0"
}

// ResponseHead renders the HTTP/1.0 response status line and headers for a
// body of contentLength bytes. The servers charge the CPU for writing
// len(ResponseHead) + contentLength bytes.
func ResponseHead(code, contentLength int) []byte {
	return ResponseHeadVersion(code, contentLength, false, false)
}

// ResponseHeadVersion renders the response status line and headers with the
// given protocol version and Connection disposition. With http11 and
// keepAlive both false it produces exactly the historical HTTP/1.0 head.
func ResponseHeadVersion(code, contentLength int, http11, keepAlive bool) []byte {
	return []byte(fmt.Sprintf(
		"%s %d %s\r\nServer: thttpd-sim/2.16\r\nContent-Type: text/html\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n",
		versionToken(http11), code, statusText(code), contentLength, connectionToken(keepAlive)))
}

// responseHeadFixed is the byte count of ResponseHeadVersion's format string
// with the variable parts (status code, reason phrase, content length,
// connection token) removed: the version token + " " + " " + the fixed header
// block. Both version tokens are eight bytes.
const responseHeadFixed = len("HTTP/1.0 ") + len(" ") +
	len("\r\nServer: thttpd-sim/2.16\r\nContent-Type: text/html\r\nContent-Length: ") +
	len("\r\nConnection: ") + len("\r\n\r\n")

// decimalDigits is the rendered width of %d for v.
func decimalDigits(v int) int {
	n := 1
	if v < 0 {
		n++ // the minus sign
		v = -v
	}
	for v >= 10 {
		n++
		v /= 10
	}
	return n
}

// ResponseSize is the total on-the-wire size of an HTTP/1.0 response with the
// given status and body length. It is computed arithmetically — the servers
// call it once per request to size their write, and formatting the header just
// to measure it was a measurable share of the serve path's allocations.
func ResponseSize(code, contentLength int) int {
	return ResponseSizeVersion(code, contentLength, false)
}

// ResponseSizeVersion is the total on-the-wire size of a response whose
// Connection disposition is keepAlive. The version token does not change the
// size (both are eight bytes); the connection token does.
func ResponseSizeVersion(code, contentLength int, keepAlive bool) int {
	return responseHeadFixed + len(connectionToken(keepAlive)) +
		decimalDigits(code) + len(statusText(code)) +
		decimalDigits(contentLength) + contentLength
}

// Document is one entry in the content store.
type Document struct {
	Path string
	Size int
}

// ContentStore is the static document tree the server exports. Only sizes are
// stored; the simulation never ships document bodies.
type ContentStore struct {
	docs map[string]int
}

// DefaultDocumentPath is the document every benchmark run requests.
const DefaultDocumentPath = "/index.html"

// DefaultDocumentSize is the paper's workload: "we request a 6 Kbyte document,
// a typical index.html file from the CITI web site".
const DefaultDocumentSize = 6 * 1024

// NewContentStore returns an empty store.
func NewContentStore() *ContentStore { return &ContentStore{docs: make(map[string]int)} }

// DefaultContentStore returns a store holding the paper's 6 KB index.html plus
// a small spread of other document sizes used by the extension workloads.
func DefaultContentStore() *ContentStore {
	cs := NewContentStore()
	cs.Add(DefaultDocumentPath, DefaultDocumentSize)
	cs.Add("/small.html", 512)
	cs.Add("/medium.html", 24*1024)
	cs.Add("/large.html", 128*1024)
	return cs
}

// Add registers a document of the given size.
func (c *ContentStore) Add(path string, size int) {
	if size < 0 {
		size = 0
	}
	c.docs[path] = size
}

// Lookup returns a document's size.
func (c *ContentStore) Lookup(path string) (int, bool) {
	size, ok := c.docs[path]
	return size, ok
}

// Len reports the number of documents.
func (c *ContentStore) Len() int { return len(c.docs) }

// Documents lists the store's contents sorted by path.
func (c *ContentStore) Documents() []Document {
	out := make([]Document, 0, len(c.docs))
	for p, s := range c.docs {
		out = append(out, Document{Path: p, Size: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
