package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeAddSub(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Second)
	if t1 != Time(5*Second) {
		t.Fatalf("Add: got %d want %d", t1, 5*Second)
	}
	if d := t1.Sub(t0); d != 5*Second {
		t.Fatalf("Sub: got %v want %v", d, 5*Second)
	}
	if s := t1.Seconds(); s != 5.0 {
		t.Fatalf("Seconds: got %v want 5", s)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if ms := d.Milliseconds(); ms != 1.5 {
		t.Fatalf("Milliseconds: got %v", ms)
	}
	if us := d.Microseconds(); us != 1500 {
		t.Fatalf("Microseconds: got %v", us)
	}
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds: got %v", s)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{Forever, "forever"},
		{250 * Microsecond, "250.00µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDurationScale(t *testing.T) {
	if got := (10 * Microsecond).Scale(2.5); got != 25*Microsecond {
		t.Fatalf("Scale: got %v want %v", got, 25*Microsecond)
	}
	if got := (10 * Microsecond).Scale(0); got != 0 {
		t.Fatalf("Scale(0): got %v", got)
	}
}

func TestTimeString(t *testing.T) {
	got := Time(1500 * Millisecond).String()
	if got != "1.500000s" {
		t.Fatalf("Time.String: got %q", got)
	}
}

func TestEventMaskString(t *testing.T) {
	m := POLLIN | POLLOUT
	s := m.String()
	if !strings.Contains(s, "POLLIN") || !strings.Contains(s, "POLLOUT") {
		t.Fatalf("String: got %q", s)
	}
	if EventMask(0).String() != "0" {
		t.Fatalf("zero mask: got %q", EventMask(0).String())
	}
	if got := POLLREMOVE.String(); got != "POLLREMOVE" {
		t.Fatalf("POLLREMOVE: got %q", got)
	}
	if got := EventMask(0x4000).String(); !strings.Contains(got, "0x4000") {
		t.Fatalf("unknown bits: got %q", got)
	}
	combined := (POLLHUP | EventMask(0x4000)).String()
	if !strings.Contains(combined, "POLLHUP") || !strings.Contains(combined, "0x4000") {
		t.Fatalf("mixed known/unknown: got %q", combined)
	}
}

// Unknown-bit rendering pinned exactly: a pure-unknown mask renders as one hex
// literal with no separator, multiple unknown bits collapse into a single
// literal, and a mixed mask joins names and the literal with "|" in order.
func TestEventMaskStringUnknownBits(t *testing.T) {
	cases := []struct {
		m    EventMask
		want string
	}{
		{EventMask(0x4000), "0x4000"},
		{EventMask(0x4000 | 0x0400), "0x4400"},
		{POLLIN | EventMask(0x0800), "POLLIN|0x800"},
		{POLLIN | POLLHUP | EventMask(0x4000), "POLLIN|POLLHUP|0x4000"},
		{POLLIN | POLLOUT, "POLLIN|POLLOUT"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("EventMask(%#x).String() = %q, want %q", uint16(c.m), got, c.want)
		}
	}
}

func TestEventMaskHasAny(t *testing.T) {
	m := POLLIN | POLLHUP
	if !m.Has(POLLIN) {
		t.Error("Has(POLLIN) = false")
	}
	if m.Has(POLLIN | POLLOUT) {
		t.Error("Has(POLLIN|POLLOUT) = true, want false")
	}
	if !m.Any(POLLOUT | POLLHUP) {
		t.Error("Any(POLLOUT|POLLHUP) = false")
	}
	if m.Any(POLLOUT | POLLPRI) {
		t.Error("Any(POLLOUT|POLLPRI) = true, want false")
	}
}

func TestEventMaskFlagsDistinct(t *testing.T) {
	flags := []EventMask{POLLIN, POLLPRI, POLLOUT, POLLERR, POLLHUP, POLLNVAL, POLLREMOVE}
	for i, a := range flags {
		for j, b := range flags {
			if i != j && a&b != 0 {
				t.Errorf("flags %d and %d overlap: %v %v", i, j, a, b)
			}
		}
	}
}

func TestErrorsDistinct(t *testing.T) {
	errs := []error{ErrBadFD, ErrExists, ErrNotFound, ErrClosed, ErrOverflow, ErrNoSpace}
	seen := map[string]bool{}
	for _, e := range errs {
		if e == nil || e.Error() == "" {
			t.Fatalf("empty error in set")
		}
		if seen[e.Error()] {
			t.Fatalf("duplicate error message %q", e.Error())
		}
		seen[e.Error()] = true
	}
}

func TestSignalConstants(t *testing.T) {
	if SIGRTMIN <= SIGIO {
		t.Fatalf("SIGRTMIN (%d) must be above SIGIO (%d)", SIGRTMIN, SIGIO)
	}
	if SIGRTMAX <= SIGRTMIN {
		t.Fatalf("SIGRTMAX (%d) must exceed SIGRTMIN (%d)", SIGRTMAX, SIGRTMIN)
	}
}

// Property: Add/Sub round-trip for arbitrary times and durations that do not
// overflow the virtual-time range used by the simulation.
func TestTimeAddSubRoundTripProperty(t *testing.T) {
	f := func(base int64, delta int32) bool {
		t0 := Time(base % (1 << 50))
		d := Duration(delta)
		if d < 0 {
			d = -d
		}
		t1 := t0.Add(d)
		return t1.Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Has implies Any for any non-zero want mask.
func TestMaskHasImpliesAnyProperty(t *testing.T) {
	f := func(m, want uint16) bool {
		mask, w := EventMask(m), EventMask(want)
		if w == 0 {
			return true
		}
		if mask.Has(w) {
			return mask.Any(w)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
