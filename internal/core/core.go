// Package core defines the shared vocabulary of the scalable network I/O
// reproduction: virtual time, poll event masks, the pollfd/dvpoll/siginfo
// structures described in the paper (Provos & Lever, "Scalable Network I/O in
// Linux", FREENIX 2000), and the Poller interface that every event-notification
// mechanism (stock poll(), /dev/poll, POSIX RT signals) implements for the
// simulated servers.
//
// The package has no dependencies so that every other package in the
// repository — the simulated kernel, the network simulator, the mechanisms and
// the servers — can share these types without import cycles.
package core

import (
	"errors"
	"fmt"
	"strings"
)

// Time is an absolute instant of virtual (simulated) time, in nanoseconds
// since the start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Forever is a timeout value meaning "block until an event arrives".
const Forever Duration = -1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds of virtual time.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats a virtual instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// String formats a virtual duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "forever"
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Scale returns d scaled by the factor f, used by the cost model to express
// per-item costs.
func (d Duration) Scale(f float64) Duration { return Duration(float64(d) * f) }

// EventMask is the set of poll events requested for, or reported on, a file
// descriptor. The values match the classic poll(2) bit definitions, plus
// POLLREMOVE which the /dev/poll write() interface uses to delete an interest.
type EventMask uint16

// Poll event bits.
const (
	POLLIN   EventMask = 0x0001 // data available to read, or pending accept
	POLLPRI  EventMask = 0x0002 // urgent data available
	POLLOUT  EventMask = 0x0004 // writing will not block
	POLLERR  EventMask = 0x0008 // error condition (always reported)
	POLLHUP  EventMask = 0x0010 // peer hung up (always reported)
	POLLNVAL EventMask = 0x0020 // invalid descriptor (always reported)

	// POLLREMOVE requests removal of an interest when written to /dev/poll.
	// It mirrors the Solaris /dev/poll extension adopted by the paper.
	POLLREMOVE EventMask = 0x1000
)

// String renders the mask as a "|"-joined list of flag names; bits without a
// name are rendered once, collectively, as a trailing hex literal.
func (m EventMask) String() string {
	if m == 0 {
		return "0"
	}
	type flag struct {
		bit  EventMask
		name string
	}
	flags := []flag{
		{POLLIN, "POLLIN"}, {POLLPRI, "POLLPRI"}, {POLLOUT, "POLLOUT"},
		{POLLERR, "POLLERR"}, {POLLHUP, "POLLHUP"}, {POLLNVAL, "POLLNVAL"},
		{POLLREMOVE, "POLLREMOVE"},
	}
	var b strings.Builder
	for _, f := range flags {
		if m&f.bit != 0 {
			if b.Len() > 0 {
				b.WriteByte('|')
			}
			b.WriteString(f.name)
		}
	}
	if rest := m &^ (POLLIN | POLLPRI | POLLOUT | POLLERR | POLLHUP | POLLNVAL | POLLREMOVE); rest != 0 {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "0x%x", uint16(rest))
	}
	return b.String()
}

// Has reports whether every bit of want is set in m.
func (m EventMask) Has(want EventMask) bool { return m&want == want }

// Any reports whether any bit of want is set in m.
func (m EventMask) Any(want EventMask) bool { return m&want != 0 }

// PollFD mirrors struct pollfd from Figure 1 of the paper: the descriptor, the
// requested interest mask, and the returned events.
type PollFD struct {
	FD      int
	Events  EventMask
	Revents EventMask
}

// Event is a single readiness report delivered to a server: descriptor FD is
// ready for the operations in Ready. Gen identifies which open of the
// descriptor number the report is about (the generation the kernel stamped on
// the descriptor at open; see simkernel.FD): descriptor numbers are recycled,
// so a report that was in flight when a connection closed carries the same FD
// as a newly accepted connection, and only the generation tells them apart.
// Zero means the mechanism could not attribute the report to a particular
// open (sentinel events such as the RT-signal overflow indication).
type Event struct {
	FD    int
	Ready EventMask
	Gen   uint64
}

// DVPoll mirrors struct dvpoll from Figure 3 of the paper. It is the argument
// block for the DP_POLL ioctl on /dev/poll: where to deposit results, how many
// results fit, and how long to wait. A nil Results slice together with
// UseMapped selects the mmap'd result area (DP_ALLOC).
type DVPoll struct {
	Results   []PollFD // dp_fds: caller-supplied result area (nil with UseMapped)
	NFDs      int      // dp_nfds: capacity of the result area
	Timeout   Duration // dp_timeout: how long to block for events
	UseMapped bool     // deposit results into the mmap'd kernel/user shared area
}

// Siginfo mirrors the simplified siginfo struct from Figure 2 of the paper:
// the signal number and the sigpoll payload carrying the descriptor and the
// band (event mask) that changed. Gen records the generation of the descriptor
// the completion was queued for; the real kernel has no such field, which is
// exactly why the paper warns that "events queued before an application closes
// a connection will remain on the RT signal queue, and must be processed
// and/or ignored by applications" — the simulation carries it so the
// application layer can do that ignoring reliably.
type Siginfo struct {
	Signo int
	Code  int
	Band  EventMask // si_band: same information as pollfd.revents
	FD    int       // si_fd: the descriptor whose state changed
	Gen   uint64    // generation of the descriptor at enqueue time
}

// Signal numbers used by the RT-signal mechanism. SIGIO is raised when the
// RT signal queue overflows; SIGRTMIN..SIGRTMAX are available for F_SETSIG.
const (
	SIGIO    = 29
	SIGRTMIN = 33
	SIGRTMAX = 64
)

// Errors shared by the event mechanisms.
var (
	// ErrBadFD is returned for operations on descriptors that are not open.
	ErrBadFD = errors.New("core: bad file descriptor")
	// ErrExists is returned when adding an interest that is already present.
	ErrExists = errors.New("core: interest already exists")
	// ErrNotFound is returned when modifying or removing an unknown interest.
	ErrNotFound = errors.New("core: interest not found")
	// ErrClosed is returned for operations on a closed poller or queue.
	ErrClosed = errors.New("core: use of closed poller")
	// ErrOverflow is returned when a bounded queue (the RT signal queue) is full.
	ErrOverflow = errors.New("core: queue overflow")
	// ErrNoSpace is returned when a result area is too small for the ready set.
	ErrNoSpace = errors.New("core: result area too small")
)

// Poller is the server-facing event-notification API. Stock poll(), /dev/poll
// and the RT-signal queue all present this interface to the simulated servers,
// which lets the same server core (thttpd) run on either mechanism and lets the
// hybrid server switch between them.
//
// Wait is asynchronous because the servers run inside a discrete-event
// simulation: the handler is invoked at the virtual instant at which the
// underlying blocking call would have returned, after its CPU cost has been
// charged to the simulated processor.
type Poller interface {
	// Name identifies the mechanism ("poll", "devpoll", "rtsig", ...).
	Name() string

	// Add registers interest in events on fd.
	Add(fd int, events EventMask) error
	// Modify replaces the interest registered for fd.
	Modify(fd int, events EventMask) error
	// Remove deletes the interest registered for fd.
	Remove(fd int) error
	// Interested reports whether fd currently has a registered interest.
	Interested(fd int) bool
	// Len reports the number of registered interests.
	Len() int

	// Wait collects up to max ready events, blocking for at most timeout
	// (Forever blocks indefinitely). The handler receives the ready events and
	// the virtual time at which the call returned.
	Wait(max int, timeout Duration, handler func(events []Event, now Time))

	// Close releases kernel state associated with the poller.
	Close() error
}

// Stats captures mechanism-level counters that the experiments and ablation
// benchmarks report alongside throughput.
type Stats struct {
	Waits          int64 // number of wait invocations (poll/ioctl/sigwaitinfo calls)
	EventsReturned int64 // readiness events delivered to the application
	DriverPolls    int64 // device-driver poll callbacks invoked
	HintHits       int64 // descriptors skipped thanks to driver hints
	CacheHits      int64 // descriptors answered from the cached result
	CopiedIn       int64 // pollfd entries copied user->kernel
	CopiedOut      int64 // pollfd entries copied kernel->user
	Overflows      int64 // RT signal queue overflows (SIGIO raised)
	Enqueued       int64 // RT siginfo entries enqueued
	Dropped        int64 // RT siginfo entries dropped due to overflow
	Interrupts     int64 // blocking waits interrupted by EINTR (fault injection)
}

// StatsSource is implemented by mechanisms that expose their Stats.
type StatsSource interface {
	MechanismStats() Stats
}
