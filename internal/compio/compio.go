// Package compio simulates a completion-based I/O facility shaped like Linux
// io_uring — the modern endpoint of the paper's thesis. The paper's mechanisms
// (/dev/poll, RT signals) move the *interest set* into the kernel so that
// declaring interest stops costing a syscall per wait; compio moves the
// *notifications* there too, so that submitting interest and consuming events
// both become shared-memory ring operations with the syscall paid once per
// batch:
//
//   - submission: Add/Modify/Remove append submission entries (poll-add /
//     poll-remove, io_uring's multishot poll) to a user-side submission queue
//     without entering the kernel. One batched Enter — charged RingEnter plus
//     RingSubmit per drained entry — hands the whole batch to the kernel, at
//     the next Wait or earlier when the SQ fills (backpressure flush);
//   - completion: the driver's wakeup callback publishes a completion entry
//     to the CQ ring. The interrupt-context doorbell (RingCQPost) is paid once
//     per posting batch — completions arriving while the CQ is already
//     non-empty coalesce onto the pending doorbell — which is the amortisation
//     the RT-signal queue lacks (it pays SigEnqueue + SigEnqueuePerFD per
//     event). Reaping a completion is a user-space ring read (RingCQReap), so
//     no result array is ever copied out: the CopiedOut stat stays zero, the
//     mmap'd-ring analogue of /dev/poll's result area;
//   - overflow: the CQ ring is finite. When it fills, further completions are
//     dropped and an overflow flag is raised — the analogue of the RT-signal
//     queue overflowing and raising SIGIO, and of phhttpd's sentinel. Recovery
//     is explicit: the next wait re-enters the kernel and rescans the armed
//     interest set with the device drivers, repopulating the CQ from ground
//     truth, exactly the "fall back to a full scan" recovery the paper's §6
//     prescribes. Unlike RT signals the common case never degrades: the CQ is
//     sized like /dev/poll's result area, so overflow needs a pathological
//     burst;
//   - registered buffers: with Options.RegisteredBuffers the ring pays a
//     one-time RingRegisterBuf at open (pinning the fixed buffer pool) and
//     every read interest arms into a registered buffer, so socket reads skip
//     the per-read copy-out component (Cost.SockReadCopy) — io_uring's
//     IORING_REGISTER_BUFFERS.
//
// The mechanism reuses the shared substrate from internal/interest: the Table
// is the kernel-side armed-interest set (what the drained SQEs built), the
// Ledger is the CQ ring (one slot per descriptor — multishot completions for
// the same descriptor coalesce, which is what keeps the ring from overflowing
// under level-style rearming), and the Engine is the blocking wait state
// machine. Delivery is edge-shaped like EPOLLET — a completion records the
// transition that posted it, with the generation captured at posting time so
// stale completions for a recycled descriptor number are dropped by the
// eventlib generation check — but, as with epoll-et, registration primes the
// current readiness so consumers need no unprompted reads (EdgeStyle=false in
// the backend registry).
//
// Sharded-kernel interaction: the CQ doorbell is charged on the owning
// process's own CPU (Kernel.InterruptOn), which on a sharded run is the lane
// every completion for this ring already executes on — connections are homed
// on their server's lane — so per-lane rings compose with the PR 6 parallel
// kernel without cross-lane writes. On a uniprocessor run InterruptOn is
// identical to Interrupt.
package compio

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/interest"
	"repro/internal/simkernel"
)

// Options configure a compio ring pair.
type Options struct {
	// SQSize is the submission ring capacity: the number of submission
	// entries that accumulate syscall-free before the ring forces a flush
	// (one io_uring_enter charged for the whole batch). The next Wait always
	// flushes whatever is pending, so SQSize bounds staleness, not
	// correctness. Larger values amortise RingEnter over more submissions.
	SQSize int
	// CQSize is the completion ring capacity. Completions posted while the
	// ring is full are dropped and raise the overflow flag; the next wait
	// runs the recovery rescan.
	CQSize int
	// MaxEvents is the default reap capacity when Wait is called with
	// max <= 0.
	MaxEvents int
	// RegisteredBuffers arms read interests into kernel-registered fixed
	// buffers: one RingRegisterBuf charge at open, and every socket read on
	// an armed descriptor skips the Cost.SockReadCopy component.
	RegisteredBuffers bool
}

// DefaultOptions matches the /dev/poll and epoll configurations so
// comparisons are fair: a 4096-entry CQ and result capacity, a 64-entry SQ,
// and registered buffers on (the mechanism's headline configuration).
func DefaultOptions() Options {
	return Options{SQSize: 64, CQSize: 4096, MaxEvents: 4096, RegisteredBuffers: true}
}

// Compio is one ring pair: the user-side submission queue accumulator, the
// kernel-resident armed-interest set, and the completion ring.
type Compio struct {
	k    *simkernel.Kernel
	p    *simkernel.Proc
	opts Options

	table *interest.Table  // kernel-side armed interests (drained SQEs)
	cq    *interest.Ledger // the completion ring, one slot per descriptor

	eng interest.Engine

	sqPending  int  // submission entries enqueued and not yet drained
	overflowed bool // CQ overflowed; next wait must rescan the interest set

	// stormSalt / stormSeq key the injected CQ-overflow-storm decision stream
	// (faults.Config.OverflowStormRate): one lane-local sequence per
	// interrupt-context post, salted by the owning process.
	stormSalt uint64
	stormSeq  uint64

	sqFlushes   int64 // forced SQ-full flushes (backpressure enters)
	cqRecovered int64 // overflow recovery rescans performed
	doorbells   int64 // interrupt-context CQ doorbells actually charged

	stats  core.Stats
	closed bool
}

// Open creates a compio ring pair for process p (io_uring_setup). With
// registered buffers enabled the fixed buffer pool is registered here, a
// one-time charge like /dev/poll's mmap of its result area.
func Open(k *simkernel.Kernel, p *simkernel.Proc, opts Options) *Compio {
	if opts.SQSize <= 0 {
		opts.SQSize = 64
	}
	if opts.CQSize <= 0 {
		opts.CQSize = 4096
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 4096
	}
	c := &Compio{
		k:     k,
		p:     p,
		opts:  opts,
		table: interest.NewTable(),
		cq:    interest.NewLedger(),
	}
	if opts.RegisteredBuffers {
		p.ChargeSyscall(k.Cost.RingRegisterBuf)
	}
	c.eng = interest.Engine{
		Name:    c.Name(),
		K:       k,
		P:       p,
		Collect: c.collect,
		// Blocking joins the ring's single CQ wait queue.
		OnBlock:         func(bool) { c.p.Charge(c.k.Cost.WaitQueueOp) },
		TimeoutTeardown: func() core.Duration { return c.k.Cost.WaitQueueOp },
		Stats:           &c.stats,
	}
	return c
}

// Name implements core.Poller.
func (c *Compio) Name() string { return "compio" }

// Options returns the active option set.
func (c *Compio) Options() Options { return c.opts }

// Table exposes the kernel-resident armed-interest set (for tests).
func (c *Compio) Table() *interest.Table { return c.table }

// SQPending reports the submission entries awaiting the next Enter.
func (c *Compio) SQPending() int { return c.sqPending }

// CQLen reports the completions currently in the ring (for tests).
func (c *Compio) CQLen() int { return c.cq.Len() }

// Overflowed reports whether the CQ has overflowed since the last recovery.
func (c *Compio) Overflowed() bool { return c.overflowed }

// SQFlushes reports how many SQ-full backpressure flushes have happened.
func (c *Compio) SQFlushes() int64 { return c.sqFlushes }

// Recoveries reports how many CQ-overflow recovery rescans have run.
func (c *Compio) Recoveries() int64 { return c.cqRecovered }

// Doorbells reports how many interrupt-context CQ doorbells were charged —
// one per posting batch, however many completions the batch coalesced.
func (c *Compio) Doorbells() int64 { return c.doorbells }

// MechanismStats implements core.StatsSource. Enqueued counts submission
// entries, Overflows counts CQ overflow episodes, Dropped counts completions
// lost to a full CQ (all repaired by recovery). CopiedOut stays zero: results
// are reaped from the shared ring, never copied out.
func (c *Compio) MechanismStats() core.Stats { return c.stats }

// Add implements core.Poller: append a multishot poll-add submission for fd.
// The entry is armed immediately (validation is synchronous, as the SQE would
// fail at Enter otherwise) but nothing is charged here beyond the arm — the
// syscall cost is paid per batch when the SQ drains.
func (c *Compio) Add(fd int, events core.EventMask) error {
	if c.closed {
		return core.ErrClosed
	}
	if c.table.Contains(fd) {
		return core.ErrExists
	}
	entry, ok := c.p.Get(fd)
	if !ok {
		return core.ErrBadFD
	}
	e, _ := c.table.Upsert(fd)
	e.Events = events
	e.File = entry
	entry.AddWatcher(c)
	c.arm(e)
	c.enqueueSQE()
	return nil
}

// Modify implements core.Poller: re-arm the multishot poll with a new mask.
func (c *Compio) Modify(fd int, events core.EventMask) error {
	if c.closed {
		return core.ErrClosed
	}
	e := c.table.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	e.Events = events
	c.arm(e)
	c.enqueueSQE()
	return nil
}

// Remove implements core.Poller: a poll-remove submission. Any completion
// still in the CQ for the descriptor is cancelled with the interest.
func (c *Compio) Remove(fd int) error {
	if c.closed {
		return core.ErrClosed
	}
	e := c.table.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	if e.File != nil {
		e.File.BufferRegistered = false
		e.File.RemoveWatcher(c)
	}
	c.table.Delete(fd)
	c.cq.Clear(fd)
	c.enqueueSQE()
	return nil
}

// Interested implements core.Poller.
func (c *Compio) Interested(fd int) bool { return c.table.Contains(fd) }

// Len implements core.Poller.
func (c *Compio) Len() int { return c.table.Len() }

// Close implements core.Poller: tearing down the ring releases the armed
// interests and the CQ. A wait blocked on the CQ completes immediately with
// no events.
func (c *Compio) Close() error {
	if c.closed {
		return core.ErrClosed
	}
	c.table.Each(func(e *interest.Entry) {
		if e.File != nil {
			e.File.BufferRegistered = false
			e.File.RemoveWatcher(c)
		}
	})
	c.cq.Reset()
	c.sqPending = 0
	c.closed = true
	c.eng.Abort(c.k.Now())
	return nil
}

// Wait implements core.Poller: one CQ reap, entering the kernel only when
// there is something to submit or nothing to reap. The handler is invoked at
// the virtual instant the reap would have returned.
func (c *Compio) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if c.closed {
		handler(nil, c.k.Now())
		return
	}
	if max <= 0 {
		max = c.opts.MaxEvents
	}
	c.eng.Wait(max, timeout, handler)
}

// arm records the SQE's kernel-side effect: the registered-buffer binding for
// read interests, and the registration-time readiness check (io_uring's poll
// arm races the driver exactly like epoll_ctl does, so pre-existing readiness
// posts a completion immediately and consumers need no unprompted reads).
func (c *Compio) arm(e *interest.Entry) {
	if e.File == nil {
		return
	}
	e.File.BufferRegistered = c.opts.RegisteredBuffers && e.Events.Any(core.POLLIN)
	revents := e.File.DriverPoll()
	c.stats.DriverPolls++
	if revents.Any(e.Events | core.POLLERR | core.POLLHUP) {
		// Posted from syscall context: the app is about to reap anyway, so
		// no doorbell fires (and overflow here is repaired like any other).
		c.post(e.FD, revents, e.File.Gen)
	}
}

// enqueueSQE accounts one submission entry. Submissions are free until the SQ
// fills; a full SQ forces a flush so the ring never blocks a registration —
// the explicit backpressure path.
func (c *Compio) enqueueSQE() {
	c.sqPending++
	c.stats.Enqueued++
	if c.sqPending >= c.opts.SQSize {
		c.sqFlushes++
		c.flushSQ()
	}
}

// flushSQ drains the submission queue into the kernel: one Enter charged for
// the batch, plus the per-entry consume cost.
func (c *Compio) flushSQ() {
	if c.sqPending == 0 {
		return
	}
	c.p.ChargeSyscall(c.k.Cost.RingEnter + c.k.Cost.RingSubmit.Scale(float64(c.sqPending)))
	c.sqPending = 0
}

// post places a completion in the CQ ring, enforcing the ring capacity. It
// returns true when the posting batch was empty before — the caller owes the
// doorbell. A completion for a descriptor already in the ring coalesces onto
// its slot for free (multishot).
func (c *Compio) post(fd int, mask core.EventMask, gen uint64) (doorbell bool) {
	if c.cq.Ready(fd) {
		c.cq.Mark(fd, mask, gen)
		return false
	}
	if c.cq.Len() >= c.opts.CQSize {
		c.stats.Dropped++
		if !c.overflowed {
			c.overflowed = true
			c.stats.Overflows++
		}
		return false
	}
	wasEmpty := c.cq.Len() == 0
	c.cq.Mark(fd, mask, gen)
	return wasEmpty
}

// collect performs one reap pass over the CQ ring. The syscall is conditional
// — the headline property of the mechanism: when completions are already
// visible in the shared ring and nothing is pending submission, the reap is
// pure user-space work.
func (c *Compio) collect(firstPass bool, max int, buf []core.Event) []core.Event {
	cost := c.k.Cost
	c.stats.Waits++
	if !firstPass {
		c.p.Charge(cost.SchedWakeup)
	}
	if c.overflowed {
		c.recover()
	} else if firstPass && (c.sqPending > 0 || c.cq.Len() == 0) {
		// Enter the kernel: submit the pending batch and/or prepare to block
		// (io_uring_enter with GETEVENTS). One entry charge for the batch.
		c.p.Charge(cost.SyscallEntry + cost.RingEnter + cost.RingSubmit.Scale(float64(c.sqPending)))
		c.sqPending = 0
	}
	events := buf
	c.cq.Scan(func(fd int, pending core.EventMask, gen uint64) (keep bool) {
		if len(events) >= max {
			// Reap capacity reached: the rest stays in the ring.
			return true
		}
		e := c.table.Lookup(fd)
		if e == nil {
			// Interest cancelled while the completion was in flight.
			return false
		}
		// The completion records the transition that posted it; deliver it
		// once with the generation captured at posting time, like EPOLLET.
		revents := pending & (e.Events | core.POLLERR | core.POLLHUP | core.POLLNVAL)
		if revents == 0 {
			return false
		}
		events = append(events, core.Event{FD: fd, Ready: revents, Gen: gen})
		return false
	})
	if n := len(events); n > 0 {
		c.p.Charge(cost.RingCQReap.Scale(float64(n)))
		c.stats.EventsReturned += int64(n)
	}
	return events
}

// recover repairs a CQ overflow: enter the kernel (draining any pending
// submissions on the way) and rescan every armed interest with its device
// driver, repopulating the ring from ground truth — the paper's §6 "fall back
// to poll" recovery, priced per armed descriptor. The rescan posts directly
// into the ring without the capacity check: it is authoritative, and the
// Ledger coalesces per descriptor so it cannot grow past the interest set.
func (c *Compio) recover() {
	cost := c.k.Cost
	c.p.Charge(cost.SyscallEntry + cost.RingEnter + cost.RingSubmit.Scale(float64(c.sqPending)))
	c.sqPending = 0
	c.table.Each(func(e *interest.Entry) {
		if e.File == nil {
			return
		}
		revents := e.File.DriverPoll()
		c.stats.DriverPolls++
		if revents.Any(e.Events | core.POLLERR | core.POLLHUP) {
			c.cq.Mark(e.FD, revents, e.File.Gen)
		}
	})
	c.overflowed = false
	c.cqRecovered++
}

// ReadinessChanged implements simkernel.Watcher: the driver's wakeup callback
// posts a completion to the CQ ring in interrupt context. The doorbell charge
// is paid once per posting batch — only when the ring transitions from empty
// — and lands on the owning process's own CPU, so per-lane rings stay
// lane-local on a sharded run.
func (c *Compio) ReadinessChanged(now core.Time, fd *simkernel.FD, mask core.EventMask) {
	if c.closed {
		return
	}
	e := c.table.Lookup(fd.Num)
	if e == nil {
		return
	}
	if !mask.Any(e.Events | core.POLLERR | core.POLLHUP) {
		return
	}
	// An injected overflow storm swallows this post as if a kernel-side burst
	// had already filled the ring: the completion is dropped, the overflow
	// flag raises, and the next wait runs the recovery rescan.
	if f := &c.k.Faults; f.OverflowStormRate > 0 {
		if c.stormSalt == 0 {
			c.stormSalt = faults.SaltString(c.p.Name)
		}
		c.stormSeq++
		if f.OverflowStorm(c.stormSalt, c.stormSeq) {
			c.stats.Dropped++
			if !c.overflowed {
				c.overflowed = true
				c.stats.Overflows++
			}
			c.eng.Wake()
			return
		}
	}
	if c.post(fd.Num, mask, fd.Gen) {
		c.doorbells++
		c.k.InterruptOn(c.p.CPU(), now, c.k.Cost.RingCQPost, nil)
	}
	// Always wake — on overflow the dropped completion still must not strand
	// a blocked waiter; the wake's collect pass runs the recovery.
	c.eng.Wake()
}

var _ core.Poller = (*Compio)(nil)
var _ core.StatsSource = (*Compio)(nil)
var _ simkernel.Watcher = (*Compio)(nil)
