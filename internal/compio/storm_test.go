package compio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simtest"
)

// Sustained injected CQ-overflow storms (faults.Config.OverflowStormRate):
// several consecutive episodes with live traffic between them. The default
// 4096-slot ring never overflows naturally here, so every episode is the
// injected kernel-side burst; each must drop the post, raise the overflow
// flag, leave no waiter stranded, and be repaired by the next wait's recovery
// rescan at exactly the §6 fall-back-to-a-scan price.
func TestSustainedCQOverflowStormRecovery(t *testing.T) {
	env := simtest.NewEnv()
	env.K.Faults = faults.Config{Seed: 11, OverflowStormRate: 1}
	c := open(env, DefaultOptions())
	fd, file := env.NewFD(0)
	liveFD, liveFile := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, c.Add(fd.Num, core.POLLIN))
		must(t, c.Add(liveFD.Num, core.POLLIN))
	}, nil)
	// Drain the SQ so later waits and recoveries carry no submissions.
	var warm simtest.Collector
	c.Wait(16, 0, warm.Handler())
	env.Run()

	cost := env.K.Cost
	for episode := 1; episode <= 3; episode++ {
		if episode == 2 {
			// One episode lands on a blocked waiter: the swallowed post
			// still wakes it, and the wake's collect pass runs the recovery
			// rescan, so the dropped completion is delivered, not lost.
			var blocked simtest.Collector
			c.Wait(16, core.Second, blocked.Handler())
			file.SetReady(env.K.Now(), core.POLLIN)
			env.Run()
			if blocked.Calls != 1 {
				t.Fatalf("episode %d: waiter stranded by the storm", episode)
			}
			if !hasFD(blocked.Events, fd.Num) {
				t.Fatalf("episode %d: dropped completion not recovered: %+v", episode, blocked.Events)
			}
		} else {
			// Episode starts with no waiter; the next wait's first pass runs
			// the recovery rescan, priced per armed descriptor plus one ring
			// entry — identical for every episode.
			file.SetReady(env.K.Now(), core.POLLIN)
			if !c.Overflowed() {
				t.Fatalf("episode %d: injected storm did not raise the overflow flag", episode)
			}
			before := env.P.TotalCharged
			var col simtest.Collector
			c.Wait(16, core.Second, col.Handler())
			env.Run()
			if col.Calls != 1 {
				t.Fatalf("episode %d: recovery wait never completed", episode)
			}
			if !hasFD(col.Events, fd.Num) {
				t.Fatalf("episode %d: dropped completion not recovered: %+v", episode, col.Events)
			}
			want := cost.SyscallEntry + cost.RingEnter + cost.DriverPoll.Scale(2) +
				cost.RingCQReap.Scale(float64(len(col.Events)))
			if got := env.P.TotalCharged - before; got != want {
				t.Fatalf("episode %d: recovery charged %v, want %v", episode, got, want)
			}
		}
		if c.Overflowed() {
			t.Fatalf("episode %d: overflow flag survived recovery", episode)
		}
		if c.Recoveries() != int64(episode) {
			t.Fatalf("episode %d: Recoveries = %d", episode, c.Recoveries())
		}

		// Live traffic between storms: completions flow through the ring
		// again without a rescan.
		env.K.Faults.OverflowStormRate = 0
		liveFile.SetReady(env.K.Now(), core.POLLIN)
		var live simtest.Collector
		c.Wait(16, core.Second, live.Handler())
		env.Run()
		if live.Calls != 1 || !hasFD(live.Events, liveFD.Num) {
			t.Fatalf("episode %d: post-recovery delivery broken: %+v", episode, live.Events)
		}
		if c.Recoveries() != int64(episode) {
			t.Fatalf("episode %d: live traffic ran a spurious recovery", episode)
		}
		env.K.Faults.OverflowStormRate = 1
	}

	st := c.MechanismStats()
	if st.Overflows != 3 {
		t.Fatalf("Overflows = %d, want one per episode (3)", st.Overflows)
	}
	if st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want one swallowed post per episode", st.Dropped)
	}
}

func hasFD(events []core.Event, fd int) bool {
	for _, ev := range events {
		if ev.FD == fd {
			return true
		}
	}
	return false
}
