package compio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simtest"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// open builds a ring with registered buffers off so charge assertions don't
// need to fold in the one-time RingRegisterBuf.
func open(env *simtest.Env, opts Options) *Compio {
	return Open(env.K, env.P, opts)
}

func TestDefaults(t *testing.T) {
	opts := DefaultOptions()
	if opts.SQSize != 64 || opts.CQSize != 4096 || opts.MaxEvents != 4096 {
		t.Fatalf("DefaultOptions = %+v", opts)
	}
	if !opts.RegisteredBuffers {
		t.Fatal("registered buffers must be the default configuration")
	}
	env := simtest.NewEnv()
	c := open(env, Options{})
	if o := c.Options(); o.SQSize != 64 || o.CQSize != 4096 || o.MaxEvents != 4096 {
		t.Fatalf("zero options not clamped: %+v", o)
	}
	if c.Name() != "compio" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestRegisteredBufferPoolChargedOnceAtOpen(t *testing.T) {
	env := simtest.NewEnv()
	open(env, Options{RegisteredBuffers: true})
	want := env.K.Cost.SyscallEntry + env.K.Cost.RingRegisterBuf
	if env.P.TotalCharged != want {
		t.Fatalf("open charged %v, want %v", env.P.TotalCharged, want)
	}
}

// Submissions are syscall-free until the SQ fills: an Add charges only the
// registration-time driver readiness check, never a syscall entry.
func TestSubmissionIsSyscallFree(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 16})
	var fds []int
	env.P.Batch(0, func() {
		for i := 0; i < 3; i++ {
			fd, _ := env.NewFD(0)
			must(t, c.Add(fd.Num, core.POLLIN))
			fds = append(fds, fd.Num)
		}
	}, nil)
	env.Run()
	want := env.K.Cost.DriverPoll.Scale(3)
	if env.P.TotalCharged != want {
		t.Fatalf("3 Adds charged %v, want %v (driver polls only)", env.P.TotalCharged, want)
	}
	if c.SQPending() != 3 || c.MechanismStats().Enqueued != 3 {
		t.Fatalf("SQPending = %d, Enqueued = %d", c.SQPending(), c.MechanismStats().Enqueued)
	}
	for _, fd := range fds {
		if !c.Interested(fd) {
			t.Fatalf("fd %d not armed", fd)
		}
	}
}

// A full SQ forces one batched Enter: SyscallEntry + RingEnter once, plus
// RingSubmit per drained entry — the backpressure path.
func TestSQFullForcesBatchedFlush(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 4})
	env.P.Batch(0, func() {
		for i := 0; i < 4; i++ {
			fd, _ := env.NewFD(0)
			must(t, c.Add(fd.Num, core.POLLIN))
		}
	}, nil)
	env.Run()
	cost := env.K.Cost
	want := cost.DriverPoll.Scale(4) +
		cost.SyscallEntry + cost.RingEnter + cost.RingSubmit.Scale(4)
	if env.P.TotalCharged != want {
		t.Fatalf("4 Adds with SQSize=4 charged %v, want %v", env.P.TotalCharged, want)
	}
	if c.SQPending() != 0 || c.SQFlushes() != 1 {
		t.Fatalf("SQPending = %d, SQFlushes = %d", c.SQPending(), c.SQFlushes())
	}
}

// The first Wait pass drains the pending SQ under one Enter and reaps the
// primed completion from the shared ring — no copy-out is ever charged.
func TestWaitDrainsSQAndReapsFromSharedRing(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 16})
	fd, _ := env.NewFD(core.POLLIN)
	env.P.Batch(0, func() { must(t, c.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	before := env.P.TotalCharged
	var col simtest.Collector
	c.Wait(16, core.Second, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("collected %+v", col)
	}
	if col.Events[0].Gen != fd.Gen {
		t.Fatalf("event gen = %d, want %d", col.Events[0].Gen, fd.Gen)
	}
	cost := env.K.Cost
	want := cost.SyscallEntry + cost.RingEnter + cost.RingSubmit.Scale(1) +
		cost.RingCQReap.Scale(1)
	if got := env.P.TotalCharged - before; got != want {
		t.Fatalf("Wait charged %v, want %v", got, want)
	}
	if st := c.MechanismStats(); st.CopiedOut != 0 || st.EventsReturned != 1 {
		t.Fatalf("stats = %+v, want zero CopiedOut", st)
	}
}

// When completions are already visible in the CQ ring and nothing is pending
// submission, a Wait is pure user-space work: no syscall entry at all.
func TestReapWithoutSyscallWhenCQNonEmpty(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 16})
	fd, f := env.NewFD(0)
	env.P.Batch(0, func() { must(t, c.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	// First Wait drains the SQ and blocks; readiness arrives at 2ms.
	var col1 simtest.Collector
	c.Wait(16, core.Second, col1.Handler())
	env.K.Sim.At(core.Time(2*core.Millisecond), func(now core.Time) {
		f.SetReady(now, core.POLLIN)
	})
	env.Run()
	if col1.Calls != 1 || len(col1.Events) != 1 {
		t.Fatalf("first wait collected %+v", col1)
	}
	if col1.At < core.Time(2*core.Millisecond) {
		t.Fatalf("delivered at %v, before readiness", col1.At)
	}
	// Readiness fires again while no one waits: the completion sits in the
	// shared ring, so the next Wait reaps it without entering the kernel.
	f.SetReady(env.K.Now(), core.POLLIN)
	if c.CQLen() != 1 {
		t.Fatalf("CQLen = %d", c.CQLen())
	}
	before := env.P.TotalCharged
	var col2 simtest.Collector
	c.Wait(16, core.Second, col2.Handler())
	env.Run()
	if col2.Calls != 1 || len(col2.Events) != 1 {
		t.Fatalf("second wait collected %+v", col2)
	}
	if got, want := env.P.TotalCharged-before, env.K.Cost.RingCQReap.Scale(1); got != want {
		t.Fatalf("syscall-free reap charged %v, want %v", got, want)
	}
}

// The interrupt-context doorbell is charged once per posting batch: only the
// completion that finds the CQ empty pays RingCQPost; the rest of the batch
// coalesces onto the pending doorbell.
func TestDoorbellChargedPerPostingBatch(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 16})
	var files []*simtest.FakeFile
	env.P.Batch(0, func() {
		for i := 0; i < 3; i++ {
			fd, f := env.NewFD(0)
			must(t, c.Add(fd.Num, core.POLLIN))
			files = append(files, f)
		}
	}, nil)
	env.Run()
	busyBefore := env.K.CPU.Busy
	for _, f := range files {
		f.SetReady(env.K.Now(), core.POLLIN)
	}
	if c.Doorbells() != 1 {
		t.Fatalf("Doorbells = %d, want 1 for the whole batch", c.Doorbells())
	}
	if got, want := env.K.CPU.Busy-busyBefore, env.K.Cost.RingCQPost; got != want {
		t.Fatalf("posting batch charged %v interrupt time, want %v", got, want)
	}
	if c.CQLen() != 3 {
		t.Fatalf("CQLen = %d", c.CQLen())
	}
	// A second transition on an fd already in the ring coalesces for free.
	files[0].SetReady(env.K.Now(), core.POLLIN|core.POLLOUT)
	if c.Doorbells() != 1 || c.CQLen() != 3 {
		t.Fatalf("coalescing failed: doorbells=%d cqlen=%d", c.Doorbells(), c.CQLen())
	}
	// Reaping empties the ring; the next posting batch pays a new doorbell.
	var col simtest.Collector
	c.Wait(16, core.Second, col.Handler())
	env.Run()
	if len(col.Events) != 3 {
		t.Fatalf("reaped %d events", len(col.Events))
	}
	files[1].SetReady(env.K.Now(), core.POLLIN)
	if c.Doorbells() != 2 {
		t.Fatalf("Doorbells = %d, want 2 after ring drained", c.Doorbells())
	}
}

// CQ overflow drops completions, raises the overflow flag once, and never
// strands a blocked waiter; the next wait rescans the armed interest set with
// the drivers and repopulates the ring from ground truth.
func TestCQOverflowAndRecovery(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 64, CQSize: 2})
	var files []*simtest.FakeFile
	var fds []int
	env.P.Batch(0, func() {
		for i := 0; i < 3; i++ {
			fd, f := env.NewFD(0)
			must(t, c.Add(fd.Num, core.POLLIN))
			files = append(files, f)
			fds = append(fds, fd.Num)
		}
	}, nil)
	env.Run()
	// Drain the SQ with a non-blocking wait, then let readiness arrive while
	// the server is busy elsewhere (no wait in flight): the third completion
	// finds the 2-slot ring full and is dropped.
	var col0 simtest.Collector
	c.Wait(16, 0, col0.Handler())
	env.Run()
	for _, f := range files {
		f.SetReady(env.K.Now(), core.POLLIN)
	}
	st := c.MechanismStats()
	if st.Overflows != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 overflow episode dropping 1 completion", st)
	}
	if !c.Overflowed() || c.CQLen() != 2 {
		t.Fatalf("overflowed=%v cqlen=%d", c.Overflowed(), c.CQLen())
	}
	// The next wait runs the recovery rescan, so all three completions —
	// including the dropped one — are delivered.
	var col1 simtest.Collector
	c.Wait(16, core.Second, col1.Handler())
	env.Run()
	if col1.Calls != 1 {
		t.Fatal("waiter stranded by overflow")
	}
	if len(col1.Events) != 3 {
		t.Fatalf("recovered %d events, want 3 (got %v)", len(col1.Events), col1.FDNums())
	}
	if c.Overflowed() {
		t.Fatal("overflow flag not cleared by recovery")
	}
	if c.Recoveries() != 1 {
		t.Fatalf("Recoveries = %d", c.Recoveries())
	}
	// Steady state after recovery: a fresh transition flows normally.
	files[2].SetReady(env.K.Now(), core.POLLIN)
	var col2 simtest.Collector
	c.Wait(16, core.Second, col2.Handler())
	env.Run()
	if len(col2.Events) != 1 || col2.Events[0].FD != fds[2] {
		t.Fatalf("post-recovery events = %v", col2.FDNums())
	}
}

// The recovery pass prices the rescan per armed descriptor (DriverPoll each)
// plus one Enter — the §6 "fall back to a scan" cost shape.
func TestRecoveryChargesInterestSetScan(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{SQSize: 64, CQSize: 1})
	var files []*simtest.FakeFile
	env.P.Batch(0, func() {
		for i := 0; i < 4; i++ {
			fd, f := env.NewFD(0)
			must(t, c.Add(fd.Num, core.POLLIN))
			files = append(files, f)
		}
	}, nil)
	// Drain the SQ so recovery's Enter carries no submissions.
	var warm simtest.Collector
	c.Wait(16, 0, warm.Handler())
	env.Run()
	for _, f := range files {
		f.SetReady(env.K.Now(), core.POLLIN)
	}
	if !c.Overflowed() {
		t.Fatal("1-slot CQ did not overflow")
	}
	before := env.P.TotalCharged
	var col simtest.Collector
	c.Wait(16, core.Second, col.Handler())
	env.Run()
	if len(col.Events) != 4 {
		t.Fatalf("recovered %d events, want 4", len(col.Events))
	}
	cost := env.K.Cost
	want := cost.SyscallEntry + cost.RingEnter + cost.DriverPoll.Scale(4) +
		cost.RingCQReap.Scale(4)
	if got := env.P.TotalCharged - before; got != want {
		t.Fatalf("recovery charged %v, want %v", got, want)
	}
}

// Registered buffers arm on read interests and die with the interest: the
// descriptor flag is what netsim's socket reads consult for the copy skip.
func TestRegisteredBufferArming(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{RegisteredBuffers: true})
	fd, _ := env.NewFD(0)
	wfd, _ := env.NewFD(0)
	env.P.Batch(0, func() {
		must(t, c.Add(fd.Num, core.POLLIN))
		must(t, c.Add(wfd.Num, core.POLLOUT))
	}, nil)
	env.Run()
	if !fd.BufferRegistered {
		t.Fatal("read interest did not arm a registered buffer")
	}
	if wfd.BufferRegistered {
		t.Fatal("write-only interest must not arm a registered buffer")
	}
	env.P.Batch(env.K.Now(), func() { must(t, c.Modify(fd.Num, core.POLLOUT)) }, nil)
	env.Run()
	if fd.BufferRegistered {
		t.Fatal("Modify away from reads must release the registered buffer")
	}
	env.P.Batch(env.K.Now(), func() { must(t, c.Modify(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	if !fd.BufferRegistered {
		t.Fatal("Modify back to reads must re-arm")
	}
	env.P.Batch(env.K.Now(), func() { must(t, c.Remove(fd.Num)) }, nil)
	env.Run()
	if fd.BufferRegistered {
		t.Fatal("Remove must release the registered buffer")
	}

	// Without the option nothing is armed.
	env2 := simtest.NewEnv()
	c2 := open(env2, Options{})
	fd2, _ := env2.NewFD(0)
	env2.P.Batch(0, func() { must(t, c2.Add(fd2.Num, core.POLLIN)) }, nil)
	env2.Run()
	if fd2.BufferRegistered {
		t.Fatal("registered buffer armed without the option")
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	env := simtest.NewEnv()
	c := open(env, Options{RegisteredBuffers: true})
	fd, _ := env.NewFD(core.POLLIN)
	env.P.Batch(0, func() { must(t, c.Add(fd.Num, core.POLLIN)) }, nil)
	env.Run()
	must(t, c.Close())
	if fd.Watchers() != 0 {
		t.Fatalf("watchers = %d after close", fd.Watchers())
	}
	if fd.BufferRegistered {
		t.Fatal("registered buffer survived close")
	}
	if c.CQLen() != 0 || c.SQPending() != 0 {
		t.Fatal("rings not released")
	}
	if err := c.Close(); err != core.ErrClosed {
		t.Fatalf("double close: %v", err)
	}
	var col simtest.Collector
	c.Wait(16, core.Second, col.Handler())
	if col.Calls != 1 || len(col.Events) != 0 {
		t.Fatalf("Wait after close: %+v", col)
	}
}
