package rcache

import "testing"

func TestPages(t *testing.T) {
	cases := map[int]int{0: 0, -1: 0, 1: 1, PageSize: 1, PageSize + 1: 2, 6144: 2, 128 * 1024: 32}
	for size, want := range cases {
		if got := Pages(size); got != want {
			t.Errorf("Pages(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(64 * 1024)
	pages, hit := c.Acquire("/index.html", 6144)
	if hit || pages != 2 {
		t.Fatalf("first acquire: pages=%d hit=%v", pages, hit)
	}
	c.Release("/index.html")
	pages, hit = c.Acquire("/index.html", 6144)
	if !hit || pages != 2 {
		t.Fatalf("second acquire: pages=%d hit=%v", pages, hit)
	}
	c.Release("/index.html")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 1 || c.UsedBytes() != 6144 {
		t.Fatalf("len=%d used=%d", c.Len(), c.UsedBytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3 * PageSize)
	for _, p := range []string{"/a", "/b", "/c"} {
		c.Acquire(p, PageSize)
		c.Release(p)
	}
	// Touch /a so /b becomes least recent.
	c.Acquire("/a", PageSize)
	c.Release("/a")
	// Inserting /d must evict exactly /b.
	c.Acquire("/d", PageSize)
	c.Release("/d")
	if c.Contains("/b") {
		t.Fatal("/b should have been evicted")
	}
	for _, p := range []string{"/a", "/c", "/d"} {
		if !c.Contains(p) {
			t.Fatalf("%s missing", p)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPinnedEntriesAreNotEvicted(t *testing.T) {
	c := New(2 * PageSize)
	c.Acquire("/pinned", PageSize) // stays pinned: response in flight
	c.Acquire("/other", PageSize)
	c.Release("/other")

	// Capacity is full; only /other may be evicted.
	if _, hit := c.Acquire("/new", PageSize); hit {
		t.Fatal("unexpected hit")
	}
	if !c.Contains("/pinned") || c.Contains("/other") || !c.Contains("/new") {
		t.Fatalf("residency: pinned=%v other=%v new=%v",
			c.Contains("/pinned"), c.Contains("/other"), c.Contains("/new"))
	}

	// With everything pinned, a further insert is refused, not forced.
	if _, hit := c.Acquire("/blocked", PageSize); hit {
		t.Fatal("unexpected hit")
	}
	if c.Contains("/blocked") {
		t.Fatal("insert should have been refused while all entries are pinned")
	}
	if st := c.Stats(); st.Uncacheable != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Draining the pins makes the space reclaimable again.
	c.Release("/pinned")
	c.Release("/new")
	if _, hit := c.Acquire("/blocked", PageSize); hit {
		t.Fatal("unexpected hit")
	}
	if !c.Contains("/blocked") {
		t.Fatal("insert should succeed after pins drain")
	}
}

func TestOversizedBodyStaysUncached(t *testing.T) {
	c := New(PageSize)
	for i := 0; i < 2; i++ {
		if _, hit := c.Acquire("/huge", 10*PageSize); hit {
			t.Fatalf("round %d: oversized body hit", i)
		}
		c.Release("/huge") // must be a no-op
	}
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("len=%d used=%d", c.Len(), c.UsedBytes())
	}
	if st := c.Stats(); st.Uncacheable != 2 || st.Inserts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentPinsOnOneEntry(t *testing.T) {
	c := New(4 * PageSize)
	c.Acquire("/doc", PageSize)
	c.Acquire("/doc", PageSize) // pipelined second response, same mapping
	c.Release("/doc")
	// One pin still holds: filling the cache may not evict /doc.
	c.Acquire("/a", PageSize)
	c.Release("/a")
	c.Acquire("/b", PageSize)
	c.Release("/b")
	c.Acquire("/c", PageSize)
	c.Release("/c")
	if _, hit := c.Acquire("/d", PageSize); hit {
		t.Fatal("unexpected hit")
	}
	c.Release("/d")
	if !c.Contains("/doc") {
		t.Fatal("/doc evicted while still pinned")
	}
	c.Release("/doc")
	// Over-releasing must not underflow the pin count.
	c.Release("/doc")
	c.Release("/doc")
}
