// Package rcache models the mmap-backed response cache phhttpd built its
// design around: document bodies are mapped into the server's address space
// once and served from memory afterwards, so a cache hit costs a hash lookup
// while a miss pays open(2) plus a page-granular read to fault the mapping in.
//
// The cache itself is pure bookkeeping — the simulation never ships document
// bodies — so it stores only sizes and recency. The server charges the CPU
// cost asymmetry (CacheHit vs FileOpen + FileReadPage per page) based on what
// Acquire reports. Entries are reference-counted while a response that uses
// them is in flight: a mapping must stay pinned while write(2) or sendfile(2)
// is draining from it, so pinned entries are never evicted, exactly like a
// mapped region that cannot be munmapped mid-transfer.
package rcache

// PageSize is the granularity at which misses charge file reads and sendfile
// charges transfers: the 4 KB page of the era's hardware.
const PageSize = 4096

// Pages is the number of pages a body of size bytes occupies.
func Pages(size int) int {
	if size <= 0 {
		return 0
	}
	return (size + PageSize - 1) / PageSize
}

// Stats counts cache traffic.
type Stats struct {
	Hits      int64
	Misses    int64
	Inserts   int64
	Evictions int64
	// Uncacheable counts misses that could not be inserted: the body exceeds
	// the capacity, or every resident entry was pinned.
	Uncacheable int64
}

// entry is one cached document on an intrusive LRU list.
type entry struct {
	path       string
	size       int
	pins       int
	prev, next *entry
}

// Cache is a fixed-capacity LRU over document bodies. It is driven entirely
// from inside the owning process's simulation batches, so it needs no
// locking, and eviction order comes from the recency list, never from map
// iteration — determinism is preserved.
type Cache struct {
	capacity int
	used     int
	entries  map[string]*entry
	lru      entry // sentinel: lru.next is most recent, lru.prev least
	stats    Stats
}

// New builds a cache holding at most capacityBytes of document bodies.
func New(capacityBytes int) *Cache {
	c := &Cache{capacity: capacityBytes, entries: make(map[string]*entry)}
	c.lru.next, c.lru.prev = &c.lru, &c.lru
	return c
}

// Acquire looks path up, reporting whether it was resident (hit) and how many
// pages its body spans. On a hit the entry moves to the most-recent position;
// on a miss the entry is inserted (evicting least-recently-used unpinned
// entries as needed) so the next request hits. Either way the entry is pinned
// until the caller's Release: the response about to be written transfers from
// the mapping. A body that cannot be made resident (larger than the capacity,
// or eviction blocked by pins) stays uncached and Release becomes a no-op.
func (c *Cache) Acquire(path string, size int) (pages int, hit bool) {
	pages = Pages(size)
	if e, ok := c.entries[path]; ok {
		c.stats.Hits++
		e.pins++
		c.moveFront(e)
		return pages, true
	}
	c.stats.Misses++
	if size > c.capacity || !c.evictDownTo(c.capacity-size) {
		c.stats.Uncacheable++
		return pages, false
	}
	e := &entry{path: path, size: size, pins: 1}
	c.entries[path] = e
	c.used += size
	c.pushFront(e)
	c.stats.Inserts++
	return pages, false
}

// Release unpins one acquisition of path. Entries become evictable again once
// every in-flight response using them has drained.
func (c *Cache) Release(path string) {
	if e, ok := c.entries[path]; ok && e.pins > 0 {
		e.pins--
	}
}

// evictDownTo removes least-recently-used unpinned entries until the resident
// total is at most target, reporting whether it succeeded. Pinned entries are
// skipped: their mappings are mid-transfer.
func (c *Cache) evictDownTo(target int) bool {
	for e := c.lru.prev; c.used > target && e != &c.lru; {
		victim := e
		e = e.prev
		if victim.pins > 0 {
			continue
		}
		c.unlink(victim)
		delete(c.entries, victim.path)
		c.used -= victim.size
		c.stats.Evictions++
	}
	return c.used <= target
}

// Contains reports whether path is resident (tests and the demo).
func (c *Cache) Contains(path string) bool { _, ok := c.entries[path]; return ok }

// Len reports the number of resident entries.
func (c *Cache) Len() int { return len(c.entries) }

// UsedBytes reports the resident body total.
func (c *Cache) UsedBytes() int { return c.used }

// Capacity reports the configured byte capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns the traffic counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = &c.lru, c.lru.next
	e.prev.next, e.next.prev = e, e
}

func (c *Cache) unlink(e *entry) {
	e.prev.next, e.next.prev = e.next, e.prev
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFront(e *entry) {
	c.unlink(e)
	c.pushFront(e)
}
