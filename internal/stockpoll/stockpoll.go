// Package stockpoll implements the baseline event-notification mechanism of
// the paper: the stock Linux 2.2 poll() system call. The application keeps its
// interest set in user space as a pollfd array and passes the entire array to
// the kernel on every call; the kernel copies it in, invokes the device
// driver's poll callback for every descriptor, manipulates a wait queue per
// descriptor when it has to block, and copies results back out.
//
// All of those per-interest costs are charged on every Wait, which is exactly
// the O(interest set) behaviour whose breakdown under many inactive
// connections the paper's Figures 4, 6 and 8 document.
//
// The interest set and the blocking-wait state machine come from the shared
// engine in internal/interest — the same kernel-resident structures the other
// mechanisms use — but stock poll still charges the full per-call copy-in,
// full-scan and copy-out costs, so the paper's figures are unchanged: the
// refactor moves code, not costs.
package stockpoll

import (
	"sort"

	"repro/internal/core"
	"repro/internal/interest"
	"repro/internal/simkernel"
)

// Poller is a stock poll()-based implementation of core.Poller.
type Poller struct {
	k *simkernel.Kernel
	p *simkernel.Proc

	// table holds the interest set. Insertion-order iteration stands in for
	// the application's pollfd array order; Entry.File caches the descriptor
	// entries on whose wait queues a blocked poll() is sleeping.
	table *interest.Table
	armed bool // watchers currently registered (poll() is blocked or about to)

	eng interest.Engine

	stats  core.Stats
	closed bool
}

// New creates a poll()-based poller for process p.
func New(k *simkernel.Kernel, p *simkernel.Proc) *Poller {
	pl := &Poller{k: k, p: p, table: interest.NewTable()}
	pl.eng = interest.Engine{
		Name:    "stockpoll",
		K:       k,
		P:       p,
		Collect: pl.collect,
		// Nothing ready: join each file's wait queue before sleeping. The
		// rescan path already paid its wait-queue teardown inside collect.
		OnBlock: func(firstPass bool) {
			if firstPass {
				pl.p.Charge(pl.k.Cost.WaitQueueOp.Scale(float64(pl.table.Len())))
			}
			pl.arm()
		},
		OnFinish: pl.disarm,
		TimeoutTeardown: func() core.Duration {
			return pl.k.Cost.WaitQueueOp.Scale(float64(pl.table.Len()))
		},
		Stats: &pl.stats,
	}
	return pl
}

// Name implements core.Poller.
func (pl *Poller) Name() string { return "poll" }

// Add implements core.Poller. Maintaining the pollfd array is a user-space
// operation for stock poll, so it costs nothing in the kernel; the price is
// paid on every Wait instead.
func (pl *Poller) Add(fd int, events core.EventMask) error {
	if pl.closed {
		return core.ErrClosed
	}
	if pl.table.Contains(fd) {
		return core.ErrExists
	}
	pl.table.Set(fd, events)
	return nil
}

// Modify implements core.Poller.
func (pl *Poller) Modify(fd int, events core.EventMask) error {
	if pl.closed {
		return core.ErrClosed
	}
	if !pl.table.Contains(fd) {
		return core.ErrNotFound
	}
	pl.table.Set(fd, events)
	return nil
}

// Remove implements core.Poller.
func (pl *Poller) Remove(fd int) error {
	if pl.closed {
		return core.ErrClosed
	}
	e := pl.table.Lookup(fd)
	if e == nil {
		return core.ErrNotFound
	}
	if pl.armed && e.File != nil {
		e.File.RemoveWatcher(pl)
	}
	pl.table.Delete(fd)
	return nil
}

// Interested implements core.Poller.
func (pl *Poller) Interested(fd int) bool { return pl.table.Contains(fd) }

// Len implements core.Poller.
func (pl *Poller) Len() int { return pl.table.Len() }

// FDs returns the interest set in pollfd-array order (for tests).
func (pl *Poller) FDs() []int { return pl.table.FDs() }

// MechanismStats implements core.StatsSource.
func (pl *Poller) MechanismStats() core.Stats { return pl.stats }

// Close implements core.Poller. A wait blocked in poll() completes
// immediately with no events.
func (pl *Poller) Close() error {
	if pl.closed {
		return core.ErrClosed
	}
	pl.disarm()
	pl.closed = true
	pl.eng.Abort(pl.k.Now())
	return nil
}

// Wait implements core.Poller: one poll() invocation over the whole interest
// set. The handler runs at the virtual instant the call would have returned.
func (pl *Poller) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if pl.closed {
		handler(nil, pl.k.Now())
		return
	}
	if max <= 0 {
		max = pl.table.Len() + 1
	}
	pl.eng.Wait(max, timeout, handler)
}

// collect performs one full pass over the pollfd array, charging the per-call
// copy-in (first pass) or the wakeup and wait-queue teardown (rescan), then a
// driver poll callback per descriptor, ready or not.
func (pl *Poller) collect(firstPass bool, max int, buf []core.Event) []core.Event {
	pl.stats.Waits++
	cost := pl.k.Cost
	n := pl.table.Len()
	if firstPass {
		pl.p.Charge(cost.SyscallEntry)
		// The entire pollfd array is copied into the kernel and parsed.
		pl.p.Charge(cost.PollCopyIn.Scale(float64(n)))
		pl.stats.CopiedIn += int64(n)
	} else {
		// Wakeup path: the process is rescheduled and the wait queues it
		// joined are torn down.
		pl.p.Charge(cost.SchedWakeup)
		pl.p.Charge(cost.WaitQueueOp.Scale(float64(n)))
	}
	ready := buf
	pl.table.Each(func(e *interest.Entry) {
		entry, ok := pl.p.Get(e.FD)
		if !ok {
			ready = interest.AppendEvent(ready, max, core.Event{FD: e.FD, Ready: core.POLLNVAL})
			return
		}
		revents := entry.DriverPoll()
		pl.stats.DriverPolls++
		revents &= e.Events | core.POLLERR | core.POLLHUP | core.POLLNVAL
		if revents != 0 {
			ready = interest.AppendEvent(ready, max, core.Event{FD: e.FD, Ready: revents, Gen: entry.Gen})
		}
	})
	if len(ready) > 0 {
		// Results are copied back to user space.
		pl.p.Charge(cost.PollCopyOut.Scale(float64(len(ready))))
		// The non-amortising part of the 2.2 poll path: for each readiness
		// transition that woke us, the wait queues and interest set were
		// re-walked (see CostModel.PollReadyRescan). This is the cost the
		// /dev/poll hints eliminate.
		pl.p.Charge(cost.PollReadyRescan.Scale(float64(n) * float64(len(ready))))
		pl.stats.CopiedOut += int64(len(ready))
		pl.stats.EventsReturned += int64(len(ready))
	}
	return ready
}

// arm registers the poller as a watcher on every descriptor in the interest
// set, modelling the per-descriptor wait-queue entries poll() creates when it
// blocks.
func (pl *Poller) arm() {
	pl.armed = true
	pl.table.Each(func(e *interest.Entry) {
		if entry, ok := pl.p.Get(e.FD); ok {
			entry.AddWatcher(pl)
			e.File = entry
		}
	})
}

// disarm removes all wait-queue entries.
func (pl *Poller) disarm() {
	if !pl.armed {
		return
	}
	pl.armed = false
	pl.table.Each(func(e *interest.Entry) {
		if e.File != nil {
			e.File.RemoveWatcher(pl)
			e.File = nil
		}
	})
}

// ReadinessChanged implements simkernel.Watcher: a driver woke one of the wait
// queues poll() is sleeping on. The rescan batch begins immediately;
// SchedWakeup is charged inside it.
func (pl *Poller) ReadinessChanged(now core.Time, fd *simkernel.FD, mask core.EventMask) {
	pl.eng.Wake()
}

// SortEvents orders events by descriptor, which keeps golden outputs stable in
// tests and examples.
func SortEvents(events []core.Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].FD < events[j].FD })
}

var _ core.Poller = (*Poller)(nil)
var _ core.StatsSource = (*Poller)(nil)
var _ simkernel.Watcher = (*Poller)(nil)
