// Package stockpoll implements the baseline event-notification mechanism of
// the paper: the stock Linux 2.2 poll() system call. The application keeps its
// interest set in user space as a pollfd array and passes the entire array to
// the kernel on every call; the kernel copies it in, invokes the device
// driver's poll callback for every descriptor, manipulates a wait queue per
// descriptor when it has to block, and copies results back out.
//
// All of those per-interest costs are charged on every Wait, which is exactly
// the O(interest set) behaviour whose breakdown under many inactive
// connections the paper's Figures 4, 6 and 8 document.
package stockpoll

import (
	"sort"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// Poller is a stock poll()-based implementation of core.Poller.
type Poller struct {
	k *simkernel.Kernel
	p *simkernel.Proc

	interests map[int]core.EventMask
	order     []int // pollfd array order (insertion order, like a real server's array)

	state     waitState
	pendWake  bool
	armed     map[int]*simkernel.FD // descriptors with our watcher registered
	curMax    int
	curHand   func([]core.Event, core.Time)
	timeoutID int64 // generation counter to cancel stale timeouts

	stats  core.Stats
	closed bool
}

type waitState int

const (
	stateIdle waitState = iota
	stateScanning
	stateBlocked
)

// New creates a poll()-based poller for process p.
func New(k *simkernel.Kernel, p *simkernel.Proc) *Poller {
	return &Poller{
		k:         k,
		p:         p,
		interests: make(map[int]core.EventMask),
		armed:     make(map[int]*simkernel.FD),
	}
}

// Name implements core.Poller.
func (pl *Poller) Name() string { return "poll" }

// Add implements core.Poller. Maintaining the pollfd array is a user-space
// operation for stock poll, so it costs nothing in the kernel; the price is
// paid on every Wait instead.
func (pl *Poller) Add(fd int, events core.EventMask) error {
	if pl.closed {
		return core.ErrClosed
	}
	if _, ok := pl.interests[fd]; ok {
		return core.ErrExists
	}
	pl.interests[fd] = events
	pl.order = append(pl.order, fd)
	return nil
}

// Modify implements core.Poller.
func (pl *Poller) Modify(fd int, events core.EventMask) error {
	if pl.closed {
		return core.ErrClosed
	}
	if _, ok := pl.interests[fd]; !ok {
		return core.ErrNotFound
	}
	pl.interests[fd] = events
	return nil
}

// Remove implements core.Poller.
func (pl *Poller) Remove(fd int) error {
	if pl.closed {
		return core.ErrClosed
	}
	if _, ok := pl.interests[fd]; !ok {
		return core.ErrNotFound
	}
	delete(pl.interests, fd)
	for i, n := range pl.order {
		if n == fd {
			pl.order = append(pl.order[:i], pl.order[i+1:]...)
			break
		}
	}
	if e, ok := pl.armed[fd]; ok {
		e.RemoveWatcher(pl)
		delete(pl.armed, fd)
	}
	return nil
}

// Interested implements core.Poller.
func (pl *Poller) Interested(fd int) bool { _, ok := pl.interests[fd]; return ok }

// Len implements core.Poller.
func (pl *Poller) Len() int { return len(pl.interests) }

// FDs returns the interest set in pollfd-array order (for tests).
func (pl *Poller) FDs() []int {
	out := make([]int, len(pl.order))
	copy(out, pl.order)
	return out
}

// MechanismStats implements core.StatsSource.
func (pl *Poller) MechanismStats() core.Stats { return pl.stats }

// Close implements core.Poller.
func (pl *Poller) Close() error {
	if pl.closed {
		return core.ErrClosed
	}
	pl.disarm()
	pl.closed = true
	return nil
}

// Wait implements core.Poller: one poll() invocation over the whole interest
// set. The handler runs at the virtual instant the call would have returned.
func (pl *Poller) Wait(max int, timeout core.Duration, handler func(events []core.Event, now core.Time)) {
	if pl.closed {
		handler(nil, pl.k.Now())
		return
	}
	if pl.state != stateIdle {
		panic("stockpoll: concurrent Wait on a single-threaded poller")
	}
	if max <= 0 {
		max = len(pl.interests) + 1
	}
	pl.curMax = max
	pl.curHand = handler
	pl.pendWake = false
	pl.scan(true, timeout)
}

// scan performs one pass over the interest set inside a process batch.
// firstPass distinguishes the initial syscall (which pays the copy-in) from a
// rescan after a wait-queue wakeup.
func (pl *Poller) scan(firstPass bool, timeout core.Duration) {
	pl.state = stateScanning
	now := pl.k.Now()
	var ready []core.Event
	pl.p.Batch(now, func() {
		pl.stats.Waits++
		cost := pl.k.Cost
		if firstPass {
			pl.p.Charge(cost.SyscallEntry)
			// The entire pollfd array is copied into the kernel and parsed.
			pl.p.Charge(cost.PollCopyIn.Scale(float64(len(pl.order))))
			pl.stats.CopiedIn += int64(len(pl.order))
		} else {
			// Wakeup path: the process is rescheduled and the wait queues it
			// joined are torn down.
			pl.p.Charge(cost.SchedWakeup)
			pl.p.Charge(cost.WaitQueueOp.Scale(float64(len(pl.order))))
		}
		// Every descriptor's driver poll callback is invoked, ready or not.
		for _, fd := range pl.order {
			want := pl.interests[fd]
			entry, ok := pl.p.Get(fd)
			if !ok {
				ready = appendEvent(ready, pl.curMax, core.Event{FD: fd, Ready: core.POLLNVAL})
				continue
			}
			revents := entry.DriverPoll()
			pl.stats.DriverPolls++
			revents &= want | core.POLLERR | core.POLLHUP | core.POLLNVAL
			if revents != 0 {
				ready = appendEvent(ready, pl.curMax, core.Event{FD: fd, Ready: revents})
			}
		}
		if len(ready) > 0 {
			// Results are copied back to user space.
			pl.p.Charge(cost.PollCopyOut.Scale(float64(len(ready))))
			// The non-amortising part of the 2.2 poll path: for each readiness
			// transition that woke us, the wait queues and interest set were
			// re-walked (see CostModel.PollReadyRescan). This is the cost the
			// /dev/poll hints eliminate.
			pl.p.Charge(cost.PollReadyRescan.Scale(float64(len(pl.order)) * float64(len(ready))))
			pl.stats.CopiedOut += int64(len(ready))
			pl.stats.EventsReturned += int64(len(ready))
			return
		}
		if timeout == 0 {
			return
		}
		// Nothing ready: join each file's wait queue before sleeping.
		if firstPass {
			pl.p.Charge(cost.WaitQueueOp.Scale(float64(len(pl.order))))
		}
		pl.arm()
	}, func(done core.Time) {
		if len(ready) > 0 || timeout == 0 {
			pl.finish(ready, done)
			return
		}
		if pl.pendWake {
			// A readiness notification raced with the scan; poll loops again.
			pl.pendWake = false
			pl.scan(false, timeout)
			return
		}
		pl.state = stateBlocked
		if timeout > 0 {
			pl.timeoutID++
			id := pl.timeoutID
			pl.k.Sim.At(done.Add(timeout), func(t core.Time) {
				if pl.state == stateBlocked && pl.timeoutID == id {
					pl.finishTimeout(t)
				}
			})
		}
	})
}

// finish tears down the wait and delivers results.
func (pl *Poller) finish(events []core.Event, now core.Time) {
	pl.disarm()
	pl.state = stateIdle
	pl.timeoutID++
	h := pl.curHand
	pl.curHand = nil
	if h != nil {
		h(events, now)
	}
}

// finishTimeout delivers an empty result after the timeout expires; the
// wait-queue teardown costs one batch.
func (pl *Poller) finishTimeout(now core.Time) {
	pl.p.Batch(now, func() {
		pl.p.Charge(pl.k.Cost.WaitQueueOp.Scale(float64(len(pl.order))))
	}, func(done core.Time) {
		pl.finish(nil, done)
	})
}

// arm registers the poller as a watcher on every descriptor in the interest
// set, modelling the per-descriptor wait-queue entries poll() creates when it
// blocks.
func (pl *Poller) arm() {
	for _, fd := range pl.order {
		if _, ok := pl.armed[fd]; ok {
			continue
		}
		if entry, ok := pl.p.Get(fd); ok {
			entry.AddWatcher(pl)
			pl.armed[fd] = entry
		}
	}
}

// disarm removes all wait-queue entries.
func (pl *Poller) disarm() {
	for fd, entry := range pl.armed {
		entry.RemoveWatcher(pl)
		delete(pl.armed, fd)
	}
}

// ReadinessChanged implements simkernel.Watcher: a driver woke one of the wait
// queues poll() is sleeping on.
func (pl *Poller) ReadinessChanged(now core.Time, fd *simkernel.FD, mask core.EventMask) {
	switch pl.state {
	case stateScanning:
		pl.pendWake = true
	case stateBlocked:
		pl.state = stateScanning
		pl.scanAfterWakeup()
	}
}

// scanAfterWakeup re-runs the scan once the sleeping process has been
// rescheduled.
func (pl *Poller) scanAfterWakeup() {
	// The rescan batch begins immediately; SchedWakeup is charged inside it.
	pl.scan(false, core.Forever)
}

// appendEvent appends e unless the result cap has been reached.
func appendEvent(events []core.Event, max int, e core.Event) []core.Event {
	if len(events) >= max {
		return events
	}
	return append(events, e)
}

// SortEvents orders events by descriptor, which keeps golden outputs stable in
// tests and examples.
func SortEvents(events []core.Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].FD < events[j].FD })
}

var _ core.Poller = (*Poller)(nil)
var _ core.StatsSource = (*Poller)(nil)
var _ simkernel.Watcher = (*Poller)(nil)
