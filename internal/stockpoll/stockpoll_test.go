package stockpoll

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simtest"
)

func TestInterestSetManagement(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	if pl.Name() != "poll" {
		t.Fatalf("Name = %q", pl.Name())
	}
	if err := pl.Add(3, core.POLLIN); err != nil {
		t.Fatal(err)
	}
	if err := pl.Add(3, core.POLLIN); err != core.ErrExists {
		t.Fatalf("duplicate Add: %v", err)
	}
	if err := pl.Add(4, core.POLLOUT); err != nil {
		t.Fatal(err)
	}
	if !pl.Interested(3) || pl.Len() != 2 {
		t.Fatalf("Interested/Len wrong: %v %d", pl.Interested(3), pl.Len())
	}
	if err := pl.Modify(3, core.POLLIN|core.POLLOUT); err != nil {
		t.Fatal(err)
	}
	if err := pl.Modify(99, core.POLLIN); err != core.ErrNotFound {
		t.Fatalf("Modify missing: %v", err)
	}
	if err := pl.Remove(4); err != nil {
		t.Fatal(err)
	}
	if err := pl.Remove(4); err != core.ErrNotFound {
		t.Fatalf("Remove missing: %v", err)
	}
	if got := pl.FDs(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("FDs = %v", got)
	}
	// Interest management for stock poll is a user-space affair: no CPU cost.
	if env.P.TotalCharged != 0 {
		t.Fatalf("interest updates should be free in the kernel, charged %v", env.P.TotalCharged)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Add(5, core.POLLIN); err != core.ErrClosed {
		t.Fatalf("Add after Close: %v", err)
	}
	if err := pl.Close(); err != core.ErrClosed {
		t.Fatalf("double Close: %v", err)
	}
}

func TestWaitReturnsReadyDescriptors(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fdA, _ := env.NewFD(core.POLLIN)
	fdB, _ := env.NewFD(0)
	fdC, _ := env.NewFD(core.POLLIN | core.POLLOUT)
	must(t, pl.Add(fdA.Num, core.POLLIN))
	must(t, pl.Add(fdB.Num, core.POLLIN))
	must(t, pl.Add(fdC.Num, core.POLLIN))

	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	env.Run()

	if col.Calls != 1 {
		t.Fatalf("handler calls = %d", col.Calls)
	}
	SortEvents(col.Events)
	if got := col.FDNums(); len(got) != 2 || got[0] != fdA.Num || got[1] != fdC.Num {
		t.Fatalf("ready fds = %v", got)
	}
	// fdC's POLLOUT is filtered out because only POLLIN was requested.
	if col.Events[1].Ready != core.POLLIN {
		t.Fatalf("fdC revents = %v", col.Events[1].Ready)
	}
	st := pl.MechanismStats()
	if st.Waits != 1 || st.DriverPolls != 3 || st.CopiedIn != 3 || st.CopiedOut != 2 || st.EventsReturned != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWaitChargesPerInterestCosts(t *testing.T) {
	env := simtest.NewEnv()
	cost := env.K.Cost
	pl := New(env.K, env.P)
	// One ready descriptor plus many idle ones.
	fdReady, _ := env.NewFD(core.POLLIN)
	must(t, pl.Add(fdReady.Num, core.POLLIN))
	const idle = 100
	for i := 0; i < idle; i++ {
		fd, _ := env.NewFD(0)
		must(t, pl.Add(fd.Num, core.POLLIN))
	}
	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	env.Run()

	n := idle + 1
	want := cost.SyscallEntry +
		cost.PollCopyIn.Scale(float64(n)) +
		cost.DriverPoll.Scale(float64(n)) +
		cost.PollCopyOut +
		cost.PollReadyRescan.Scale(float64(n)) // one ready event, rescan charged against the whole set
	if env.P.TotalCharged != want {
		t.Fatalf("charged %v, want %v", env.P.TotalCharged, want)
	}
	if col.At != core.Time(want) {
		t.Fatalf("completion at %v, want %v", col.At, core.Time(want))
	}
}

func TestWaitBlocksUntilReadinessThenRescans(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fd, file := env.NewFD(0)
	must(t, pl.Add(fd.Num, core.POLLIN))

	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	// Data arrives 5 ms into the run.
	env.K.Sim.At(core.Time(5*core.Millisecond), func(now core.Time) {
		file.SetReady(now, core.POLLIN)
	})
	env.Run()

	if col.Calls != 1 || len(col.Events) != 1 || col.Events[0].FD != fd.Num {
		t.Fatalf("collector = %+v", col)
	}
	if col.At < core.Time(5*core.Millisecond) {
		t.Fatalf("woke too early: %v", col.At)
	}
	// While blocked the poller must have been registered on the wait queue and
	// removed afterwards.
	if fd.Watchers() != 0 {
		t.Fatalf("wait-queue entries leaked: %d", fd.Watchers())
	}
	st := pl.MechanismStats()
	if st.Waits != 2 {
		t.Fatalf("expected an initial scan plus a rescan, got %d", st.Waits)
	}
}

func TestWaitZeroTimeoutDoesNotBlock(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fd, _ := env.NewFD(0)
	must(t, pl.Add(fd.Num, core.POLLIN))
	var col simtest.Collector
	pl.Wait(0, 0, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 0 {
		t.Fatalf("collector = %+v", col)
	}
	if fd.Watchers() != 0 {
		t.Fatal("non-blocking poll should not join wait queues")
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fd, _ := env.NewFD(0)
	must(t, pl.Add(fd.Num, core.POLLIN))
	var col simtest.Collector
	pl.Wait(0, 10*core.Millisecond, col.Handler())
	env.Run()
	if col.Calls != 1 || len(col.Events) != 0 {
		t.Fatalf("collector = %+v", col)
	}
	if col.At < core.Time(10*core.Millisecond) {
		t.Fatalf("timeout fired early: %v", col.At)
	}
	if fd.Watchers() != 0 {
		t.Fatal("wait-queue entries leaked after timeout")
	}
	// The poller is reusable afterwards.
	var col2 simtest.Collector
	pl.Wait(0, 0, col2.Handler())
	env.Run()
	if col2.Calls != 1 {
		t.Fatal("second Wait never completed")
	}
}

func TestWaitMaxCapsResults(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	for i := 0; i < 10; i++ {
		fd, _ := env.NewFD(core.POLLIN)
		must(t, pl.Add(fd.Num, core.POLLIN))
	}
	var col simtest.Collector
	pl.Wait(4, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(col.Events))
	}
}

func TestClosedDescriptorReportsPOLLNVAL(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fd, _ := env.NewFD(0)
	must(t, pl.Add(fd.Num, core.POLLIN))
	if err := env.P.CloseFD(0, fd.Num); err != nil {
		t.Fatal(err)
	}
	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 || !col.Events[0].Ready.Has(core.POLLNVAL) {
		t.Fatalf("events = %+v", col.Events)
	}
}

func TestHUPReportedEvenIfNotRequested(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fd, file := env.NewFD(0)
	must(t, pl.Add(fd.Num, core.POLLOUT))
	file.ReadyMask = core.POLLHUP
	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	env.Run()
	if len(col.Events) != 1 || !col.Events[0].Ready.Has(core.POLLHUP) {
		t.Fatalf("events = %+v", col.Events)
	}
}

func TestReadinessDuringScanTriggersImmediateRescan(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	// Many descriptors so the first scan takes measurable CPU time.
	var files []*simtest.FakeFile
	for i := 0; i < 200; i++ {
		fd, f := env.NewFD(0)
		must(t, pl.Add(fd.Num, core.POLLIN))
		files = append(files, f)
	}
	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	// Readiness arrives while the first scan is still on the CPU (its cost is
	// well over 50 µs for 200 descriptors).
	env.K.Sim.At(core.Time(10*core.Microsecond), func(now core.Time) {
		files[7].SetReady(now, core.POLLIN)
	})
	env.Run()
	if col.Calls != 1 || len(col.Events) != 1 {
		t.Fatalf("collector = %+v", col)
	}
}

func TestWaitOnClosedPollerReturnsNothing(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	_ = pl.Close()
	var col simtest.Collector
	pl.Wait(0, core.Forever, col.Handler())
	if col.Calls != 1 || col.Events != nil {
		t.Fatalf("collector = %+v", col)
	}
}

func TestConcurrentWaitPanics(t *testing.T) {
	env := simtest.NewEnv()
	pl := New(env.K, env.P)
	fd, _ := env.NewFD(0)
	must(t, pl.Add(fd.Num, core.POLLIN))
	pl.Wait(0, core.Forever, func([]core.Event, core.Time) {})
	defer func() {
		if recover() == nil {
			t.Error("second Wait should panic while the first is in flight")
		}
	}()
	pl.Wait(0, core.Forever, func([]core.Event, core.Time) {})
}

// The cost of stock poll must grow linearly with the interest-set size even
// when only one descriptor is active — the central inefficiency the paper's
// /dev/poll work removes.
func TestCostGrowsWithIdleInterestSet(t *testing.T) {
	charge := func(idle int) core.Duration {
		env := simtest.NewEnv()
		pl := New(env.K, env.P)
		fd, _ := env.NewFD(core.POLLIN)
		must(t, pl.Add(fd.Num, core.POLLIN))
		for i := 0; i < idle; i++ {
			idleFD, _ := env.NewFD(0)
			must(t, pl.Add(idleFD.Num, core.POLLIN))
		}
		var col simtest.Collector
		pl.Wait(0, core.Forever, col.Handler())
		env.Run()
		return env.P.TotalCharged
	}
	small := charge(10)
	large := charge(510)
	if large <= small*10 {
		t.Fatalf("expected ~50x cost growth from 10 to 510 idle descriptors, got %v -> %v", small, large)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
