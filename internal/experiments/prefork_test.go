package experiments

// Tests for the prefork server kinds and the worker-scaling (figure-17)
// machinery: kind resolution, the prefork-1 degeneracy guarantee, determinism
// of multi-worker runs, and the scaling acceptance the figure claims.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/servers/prefork"
)

func TestResolvePreforkKinds(t *testing.T) {
	cases := []struct {
		kind    ServerKind
		workers int
		backend string
	}{
		{"prefork-1", 1, "epoll"},
		{"prefork-4", 4, "epoll"},
		{"prefork-2-epoll-et", 2, "epoll-et"},
		{"prefork-2-rtsig", 2, "rtsig"},
		{"prefork-8-devpoll", 8, "devpoll"},
	}
	for _, c := range cases {
		rk, err := resolveKind(c.kind)
		if err != nil {
			t.Fatalf("resolveKind(%q): %v", c.kind, err)
		}
		if rk.family != "prefork" || rk.workers != c.workers || rk.backend != c.backend {
			t.Fatalf("resolveKind(%q) = %+v", c.kind, rk)
		}
	}
	for _, bad := range []ServerKind{"prefork-0", "prefork-65", "prefork-x", "prefork-2-kqueue", "prefork-"} {
		if err := ValidateServerKind(bad); err == nil || !strings.Contains(err.Error(), "choices") {
			t.Fatalf("ValidateServerKind(%q) = %v, want listed-choices error", bad, err)
		}
	}
	if kind, err := RetargetKind("prefork-4", "epoll-et"); err != nil || kind != "prefork-4-epoll-et" {
		t.Fatalf("RetargetKind = %v, %v", kind, err)
	}
	if kind, err := RetargetKind("prefork-4-epoll-et", "epoll"); err != nil || kind != "prefork-4" {
		t.Fatalf("RetargetKind back = %v, %v", kind, err)
	}
}

// prefork-1 must degenerate to exactly the single-process thttpd model: same
// load results, same server counters, same loop counts as thttpd on the same
// backend — the conformance that guarantees figures 4-16 are untouched by the
// scheduler.
func TestPreforkOneWorkerMatchesThttpd(t *testing.T) {
	for _, backend := range []string{"epoll", "poll"} {
		a := Run(RunSpec{Server: ServerKind("prefork-1-" + backend), RequestRate: 1000, Inactive: 501, Connections: 1500, Seed: 1})
		b := Run(RunSpec{Server: ServerKind("thttpd-" + backend), RequestRate: 1000, Inactive: 501, Connections: 1500, Seed: 1})
		if !reflect.DeepEqual(a.Load, b.Load) {
			t.Fatalf("[%s] prefork-1 load diverges from thttpd:\n%v\n%v", backend, a.Load, b.Load)
		}
		if !reflect.DeepEqual(a.Server, b.Server) {
			t.Fatalf("[%s] prefork-1 server stats diverge: %+v vs %+v", backend, a.Server, b.Server)
		}
		if a.EventLoops != b.EventLoops || !reflect.DeepEqual(a.Primary, b.Primary) {
			t.Fatalf("[%s] prefork-1 mechanism behaviour diverges: loops %d vs %d", backend, a.EventLoops, b.EventLoops)
		}
	}
}

// Two identical multi-worker benchmark points must produce identical results
// in every observable: the determinism the discrete-event scheduler promises.
func TestMultiWorkerRunsAreDeterministic(t *testing.T) {
	spec := RunSpec{Server: "prefork-4", RequestRate: 2500, Inactive: 251, Connections: 1500, Seed: 7}
	a, b := Run(spec), Run(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical prefork-4 runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Workers != 4 || len(a.PerCPUUtilization) != 4 || len(a.PerWorkerServed) != 4 {
		t.Fatalf("per-worker reporting incomplete: %+v", a)
	}
}

// The figure-17 acceptance claim: under heavy offered load, two workers serve
// at least 1.7x one worker's replies, and throughput is monotone through four
// workers. Run scaled down (the shape is load-ratio driven, not size driven).
func TestWorkerScalingMeetsAcceptance(t *testing.T) {
	reply := func(workers int) float64 {
		res := Run(RunSpec{
			Server:      PreforkKind(workers),
			RequestRate: 3000,
			Inactive:    1500,
			Connections: 2000,
			Seed:        1,
		})
		for _, u := range res.PerCPUUtilization {
			if u > 1 {
				t.Fatalf("workers=%d: per-CPU utilisation %v > 1", workers, u)
			}
		}
		return res.Load.ReplyRate.Mean
	}
	r1, r2, r4 := reply(1), reply(2), reply(4)
	if r2 < 1.7*r1 {
		t.Fatalf("2 workers reply %.1f < 1.7x single worker's %.1f", r2, r1)
	}
	if r4 < r2 {
		t.Fatalf("throughput not monotone: 4 workers %.1f < 2 workers %.1f", r4, r2)
	}
}

// The sharding-policy ablation must exercise all three variants and show the
// single-acceptor handoff costing throughput against in-stack sharding at the
// contended point.
func TestShardingPolicyAblation(t *testing.T) {
	point := func(mode prefork.Mode, shard netsim.ShardPolicy) RunResult {
		netCfg := netsim.DefaultConfig()
		netCfg.Shard = shard
		return Run(RunSpec{
			Server:      "prefork-2",
			RequestRate: 3000,
			Inactive:    501,
			Connections: 1500,
			Seed:        1,
			Network:     &netCfg,
			PreforkMode: mode,
		})
	}
	hash := point(prefork.ModeReuseport, netsim.ShardHash)
	rr := point(prefork.ModeReuseport, netsim.ShardRoundRobin)
	handoff := point(prefork.ModeHandoff, netsim.ShardHash)
	if handoff.Handoffs == 0 {
		t.Fatal("handoff mode performed no handoffs")
	}
	if hash.Handoffs != 0 {
		t.Fatal("reuseport mode should not hand connections off")
	}
	for _, res := range []RunResult{hash, rr} {
		if res.Load.ReplyRate.Mean < handoff.Load.ReplyRate.Mean*0.95 {
			t.Fatalf("in-stack sharding (%.1f) fell behind single-acceptor handoff (%.1f)",
				res.Load.ReplyRate.Mean, handoff.Load.ReplyRate.Mean)
		}
	}
}

func TestWorkerFigureDefinitions(t *testing.T) {
	figs := WorkerFigures()
	if len(figs) != 2 {
		t.Fatalf("worker figures = %d, want 2", len(figs))
	}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.Paper == "" || len(f.Curves) == 0 || len(f.Workers) == 0 {
			t.Fatalf("incomplete worker figure: %+v", f)
		}
	}
	if _, ok := WorkerFigureByID("fig17"); !ok {
		t.Fatal("WorkerFigureByID(fig17) failed")
	}
	if _, ok := WorkerFigureByID("18"); !ok {
		t.Fatal("WorkerFigureByID(18) failed")
	}
	if _, ok := WorkerFigureByID("fig04"); ok {
		t.Fatal("WorkerFigureByID(fig04) should fail: it is a rate figure")
	}
	res := RunWorkerFigure(WorkerFigure{
		ID: "figtest", Number: 99, Title: "t", Paper: "p",
		Rate: 1500, Inactive: 1, Workers: []int{1, 2},
		Curves:          []WorkerCurve{{Label: "c", Mode: prefork.ModeReuseport, Shard: netsim.ShardHash}},
		PlotUtilization: true,
	}, WorkerSweepOptions{Connections: 400})
	if len(res.Series) != 4 || len(res.Runs) != 2 {
		t.Fatalf("series=%d runs=%d, want 4 and 2", len(res.Series), len(res.Runs))
	}
	text := FormatWorkers(res)
	if !strings.Contains(text, "workers") || !strings.Contains(text, "c (avg)") {
		t.Fatalf("FormatWorkers output malformed:\n%s", text)
	}
}
