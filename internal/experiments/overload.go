package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/servers/httpcore"
)

// OverloadFigure is a figure of the overload family: the request-rate sweep
// is driven well past every mechanism's saturation point, each curve is
// plotted as reply rate *and* p99 connection latency, and the whole figure
// runs under one named workload scenario (loadgen.Workloads). This is the
// measurement the paper's Figures 4-13 gesture at — reply rate flat, then
// declining past the knee — extended with the latency-distribution lens and
// the adversarial client behaviors the original testbed could not produce.
type OverloadFigure struct {
	ID     string
	Number int
	Title  string
	Paper  string
	// Workload names the loadgen scenario every point runs under.
	Workload string
	Rates    []float64
	Curves   []Curve
	// Connections, when positive, is the figure's own per-point connection
	// count, used when the sweep options leave it unset. The scale family
	// (figs 26-28) pins 10k/20k/30k here; every other figure uses the global
	// scaled-down default.
	Connections int
	// PortSpace, when positive, overrides the client ephemeral-port space.
	// The 100k-1M family (figs 29-31) must raise it: the paper capped runs
	// at 35000 connections precisely because 60 s of TIME-WAIT exhausts a
	// 60000-port space, and these figures push far past that.
	PortSpace int
	// Churn, when non-empty, turns the figure's x axis into the churn
	// workload's peer join rate: every curve runs once per churn value at the
	// figure's single fixed offered rate (Rates[0]). Only the mostly-idle
	// family (fig39) uses it.
	Churn []float64
	// Fault, when non-empty, turns the figure's x axis into a fault-injection
	// knob swept over FaultValues at the figure's single fixed offered rate
	// (Rates[0]), the same shape as the churn axis. Knobs: "reset" (fraction
	// of connections RST mid-exchange), "fdlimit" (RLIMIT_NOFILE; 0 =
	// unlimited), "eintr" (probability a blocking wait is interrupted),
	// "overflow" (RT signal queue limit and completion-ring capacity). Only
	// the chaos family (figs 40-43) uses it.
	Fault       string
	FaultValues []float64
	// Faults is the figure's base fault configuration, applied to every point
	// before the Fault axis knob; the zero value injects nothing.
	Faults faults.Config
}

// OverloadRates is the default overload sweep: from comfortably below a
// uniprocessor's capacity to well past it, so the knee falls inside the
// figure for every mechanism.
func OverloadRates() []float64 {
	return []float64{400, 700, 1000, 1300, 1600}
}

// overloadMechanismCurves returns the paper's four servers at the given
// inactive load plus the compio extension, the fixed curve set of the
// per-workload overload figures. compio stays last so the pre-existing
// columns keep their positions (each curve runs on a fresh kernel, so the
// earlier columns' values are unaffected by the addition).
func overloadMechanismCurves(inactive int) []Curve {
	return []Curve{
		{Label: "normal poll", Server: ServerThttpdPoll, Inactive: inactive},
		{Label: "devpoll", Server: ServerThttpdDevPoll, Inactive: inactive},
		{Label: "phhttpd", Server: ServerPhhttpd, Inactive: inactive},
		{Label: "hybrid", Server: ServerHybrid, Inactive: inactive},
		{Label: "compio", Server: ServerThttpdCompio, Inactive: inactive},
	}
}

// OverloadFigures returns the overload figure family: one figure per
// workload scenario over the paper's four mechanisms, plus the prefork
// worker-count figure. Numbers continue after the worker-scaling figures so
// identifiers stay unambiguous.
func OverloadFigures() []OverloadFigure {
	return []OverloadFigure{
		{
			ID:     "fig19",
			Number: 19,
			Title:  "Overload: constant arrivals past saturation, 251 inactive connections",
			Paper: "The shape Figures 4-13 imply but never draw in full: reply rate tracks the offered " +
				"load, flattens at each mechanism's capacity, then declines as retries and timeouts eat " +
				"useful work, while p99 latency explodes at the knee.",
			Workload: "constant",
			Rates:    OverloadRates(),
			Curves:   overloadMechanismCurves(251),
		},
		{
			ID:     "fig20",
			Number: 20,
			Title:  "Overload: flash-crowd burst trains, 251 inactive connections",
			Paper: "Not in the paper. Bursts at three times the nominal rate saturate every mechanism " +
				"well before its constant-rate knee; the interest-set-scanning servers degrade soonest " +
				"because each burst arrives on top of the idle-connection scan.",
			Workload: "flashcrowd",
			Rates:    OverloadRates(),
			Curves:   overloadMechanismCurves(251),
		},
		{
			ID:     "fig21",
			Number: 21,
			Title:  "Overload: heavy-tailed (Pareto) arrivals, 251 inactive connections",
			Paper: "Not in the paper. Clumped arrivals with the same mean rate raise tail latency at " +
				"every load; mechanisms with O(ready) waits absorb the clumps, poll() pays the full " +
				"interest-set scan per clump.",
			Workload: "pareto",
			Rates:    OverloadRates(),
			Curves:   overloadMechanismCurves(251),
		},
		{
			ID:     "fig22",
			Number: 22,
			Title:  "Adversarial: slow-loris background population (251 tricklers)",
			Paper: "Not in the paper. Unlike silent inactive connections, tricklers generate a steady " +
				"event stream and defeat the idle sweep: every dribbled byte costs an interrupt, a " +
				"readiness event and a read, so the background load taxes the event path itself.",
			Workload: "slowloris",
			Rates:    OverloadRates(),
			Curves:   overloadMechanismCurves(251),
		},
		{
			ID:     "fig23",
			Number: 23,
			Title:  "Adversarial: stalled-reader background population (251 stalled)",
			Paper: "Not in the paper. Stalled readers make the server do the full accept/parse/serve " +
				"work, then jam its response against a closed receive window: each one holds a " +
				"descriptor, an interest-set entry and a blocked write until the idle sweep evicts it.",
			Workload: "stalled",
			Rates:    OverloadRates(),
			Curves:   overloadMechanismCurves(251),
		},
		{
			ID:     "fig24",
			Number: 24,
			Title:  "Overload: WAN RTT mix, 251 inactive connections",
			Paper: "Not in the paper, whose clients sit on a uniform LAN. Wide-area RTTs stretch " +
				"connection lifetimes, so the server holds many more concurrent connections at the " +
				"same offered rate and the p99 is dominated by the slow-path tail.",
			Workload: "wan",
			Rates:    OverloadRates(),
			Curves:   overloadMechanismCurves(251),
		},
		{
			ID:     "fig25",
			Number: 25,
			Title:  "Overload: prefork worker counts under flash-crowd bursts, 500 inactive connections",
			Paper: "Not in the paper. Adding workers moves the knee to the right near-linearly: the " +
				"offered rate at which reply rate departs the diagonal and p99 departs the floor " +
				"roughly doubles from one to two to four workers.",
			Workload: "flashcrowd",
			Rates:    []float64{1000, 2000, 3000, 4000},
			Curves: []Curve{
				{Label: "prefork-1", Server: PreforkKind(1), Inactive: 500},
				{Label: "prefork-2", Server: PreforkKind(2), Inactive: 500},
				{Label: "prefork-4", Server: PreforkKind(4), Inactive: 500},
			},
		},
	}
}

// ScaleRates is the request-rate sweep of the scale figures: below, at and
// past the uniprocessor knee, so both the flat region and the collapse are
// visible at every connection count.
func ScaleRates() []float64 {
	return []float64{700, 1000, 1300}
}

// ScaleFigures returns the scale figure family (figs 26-28): the paper's
// reply-rate and p99 curves re-run at 10000, 20000 and 30000 benchmark
// connections per point across all four event mechanisms plus the four-worker
// prefork server. The paper's testbed topped out around 35000 connections per
// run on a 400 MHz uniprocessor; these figures are what the optimized
// simulation substrate buys — the same measurement an order of magnitude
// beyond the original hardware's practical reach.
func ScaleFigures() []OverloadFigure {
	mk := func(num, conns int) OverloadFigure {
		return OverloadFigure{
			ID:     fmt.Sprintf("fig%d", num),
			Number: num,
			Title: fmt.Sprintf("Scale: %d connections per point, four mechanisms plus prefork-4 and compio, 251 inactive connections",
				conns),
			Paper: "Not in the paper, whose procedure was capped near 35000 connections per run by the " +
				"client's port space and the testbed's speed. The mechanism ordering (poll collapses, " +
				"/dev/poll and epoll sustain, RT signals fall between, prefork moves the knee right) " +
				"must hold unchanged as the run grows an order of magnitude.",
			Workload:    "constant",
			Rates:       ScaleRates(),
			Connections: conns,
			Curves: []Curve{
				{Label: "normal poll", Server: ServerThttpdPoll, Inactive: 251},
				{Label: "devpoll", Server: ServerThttpdDevPoll, Inactive: 251},
				{Label: "phhttpd", Server: ServerPhhttpd, Inactive: 251},
				{Label: "epoll", Server: ServerThttpdEpoll, Inactive: 251},
				{Label: "prefork-4", Server: PreforkKind(4), Inactive: 251},
				{Label: "compio", Server: ServerThttpdCompio, Inactive: 251},
			},
		}
	}
	return []OverloadFigure{mk(26, 10000), mk(27, 20000), mk(28, 30000)}
}

// MassiveScaleFigures returns the 100k-1M-connection figure family (figs
// 29-31): the scale measurement continued two further orders of magnitude,
// which is what the sharded parallel kernel exists to make affordable. The
// client port space grows with the run (the paper's 60000-port limit is a
// client artifact, not a property of the server mechanisms under test); all
// five server kinds remain comparable because each point still sweeps the
// same rates against the same 251-connection inactive load.
func MassiveScaleFigures() []OverloadFigure {
	mk := func(num, conns int) OverloadFigure {
		return OverloadFigure{
			ID:     fmt.Sprintf("fig%d", num),
			Number: num,
			Title: fmt.Sprintf("Massive scale: %d connections per point, four mechanisms plus prefork-4, 251 inactive connections",
				conns),
			Paper: "Not in the paper: its testbed topped out near 35000 connections per run. This family " +
				"re-runs the scale measurement at 100k-1M connections per point, where the interest-set " +
				"mechanisms' ordering must survive three orders of magnitude of growth.",
			Workload:    "constant",
			Rates:       ScaleRates(),
			Connections: conns,
			PortSpace:   2*conns + 100000,
			Curves: []Curve{
				{Label: "normal poll", Server: ServerThttpdPoll, Inactive: 251},
				{Label: "devpoll", Server: ServerThttpdDevPoll, Inactive: 251},
				{Label: "phhttpd", Server: ServerPhhttpd, Inactive: 251},
				{Label: "epoll", Server: ServerThttpdEpoll, Inactive: 251},
				{Label: "prefork-4", Server: PreforkKind(4), Inactive: 251},
			},
		}
	}
	return []OverloadFigure{mk(29, 100000), mk(30, 300000), mk(31, 1000000)}
}

// mostlyIdleCurves returns the five paper mechanisms as curves of the given
// family prefix ("push" or "dht"): the millions-mostly-idle figures compare
// the same event mechanisms the HTTP figures do, but hosted in the non-HTTP
// daemons, so the backend name is the whole server kind.
func mostlyIdleCurves(family string) []Curve {
	curves := make([]Curve, 0, 5)
	for _, b := range []string{"poll", "devpoll", "rtsig", "epoll", "compio"} {
		curves = append(curves, Curve{Label: b, Server: ServerKind(family + "-" + b)})
	}
	return curves
}

// MostlyIdleFigures returns the millions-mostly-idle figure family (figs
// 36-39): the server-push daemon's delivery rate and p99 delivery latency
// against interest-set size and offered delivery rate, and the datagram
// rendezvous node against ping rate and peer churn. These figures pin their
// own connection counts (like the scale family), so the default sweep skips
// them; regenerate with -figs 36,37,38,39.
func MostlyIdleFigures() []OverloadFigure {
	return []OverloadFigure{
		{
			ID:     "fig36",
			Number: 36,
			Title:  "Server push: delivery rate and p99 vs offered rate, 10000 subscribed members, five mechanisms",
			Paper: "Not in the paper, whose traffic is all client-initiated. Members subscribe once and go " +
				"silent; the server fans 32-payload ticks out to sampled member sets, so under 1% of the " +
				"interest set is active at any instant and the mechanisms separate purely on what an " +
				"idle registration costs per dispatch: poll rescans all 10000 members every tick.",
			Workload:    "push",
			Rates:       []float64{1000, 4000, 16000},
			Connections: 10000,
			Curves:      mostlyIdleCurves("push"),
		},
		{
			ID:     "fig37",
			Number: 37,
			Title:  "Server push at 100000 members: the millions-mostly-idle regime, five mechanisms",
			Paper: "Not in the paper: two orders of magnitude past its testbed. With 100k members and 32 " +
				"pushes per tick (>=99.9% of the interest set idle), poll's full-set scan per tick " +
				"dominates everything else the server does and its delivery rate collapses, while " +
				"/dev/poll, epoll and the completion ring stay on the offered-rate diagonal.",
			Workload:    "push",
			Rates:       []float64{1000, 3200, 6400},
			Connections: 100000,
			PortSpace:   2*100000 + 100000,
			Curves:      mostlyIdleCurves("push"),
		},
		{
			ID:     "fig38",
			Number: 38,
			Title:  "Datagram churn: pong rate and p99 vs offered ping rate, 4000 peer sessions, five mechanisms",
			Paper: "Not in the paper, which never leaves TCP. Peers join a rendezvous node at 200/s, ping " +
				"their per-peer session sockets and leave; the interest set is one datagram descriptor " +
				"per live peer, churning constantly, so the figure measures registration and teardown " +
				"cost as much as dispatch.",
			Workload:    "dhtchurn",
			Rates:       []float64{1000, 2000, 4000, 8000},
			Connections: 4000,
			Curves:      mostlyIdleCurves("dht"),
		},
		{
			ID:     "fig39",
			Number: 39,
			Title:  "Datagram churn: pong rate and p99 vs churn rate at 2000 pings/s, 4000 peer sessions, five mechanisms",
			Paper: "Not in the paper. Holding the ping rate fixed and sweeping the join rate moves the " +
				"descriptor-churn/dispatch ratio: at low churn sessions live long and the run is all " +
				"dispatch, at high churn every mechanism pays constant interest-set registration and " +
				"teardown, the cost /dev/poll-style kernel-resident sets amortise and poll does not.",
			Workload:    "dhtchurn",
			Rates:       []float64{2000},
			Churn:       []float64{50, 100, 200, 400, 800},
			Connections: 4000,
			Curves:      mostlyIdleCurves("dht"),
		},
	}
}

// FaultAxisLabel names a chaos figure's x axis.
func FaultAxisLabel(fault string) string {
	switch fault {
	case "reset":
		return "reset rate"
	case "vanish":
		return "vanish rate"
	case "fdlimit":
		return "fd limit"
	case "eintr":
		return "eintr rate"
	case "overflow":
		return "overflow-storm rate"
	default:
		return fault
	}
}

// applyFaultAxis sets the swept fault knob on one point's spec.
func applyFaultAxis(spec *RunSpec, fault string, x float64) {
	switch fault {
	case "reset":
		spec.Faults.ResetRate = x
	case "vanish":
		spec.Faults.VanishRate = x
	case "fdlimit":
		spec.Faults.FDLimit = int(x)
	case "eintr":
		spec.Faults.EINTRRate = x
	case "overflow":
		spec.Faults.OverflowStormRate = x
	default:
		panic("experiments: unknown fault axis " + fault)
	}
}

// ChaosRate is the fixed offered rate of the chaos figures: just below the
// slowest mechanism's knee, so the degradation each figure plots is the
// fault's doing, not ambient overload.
const ChaosRate = 900

// ChaosFigures returns the chaos figure family (figs 40-43): the overload
// measurement re-run with the deterministic fault plane turned on, one fault
// class per figure, swept on the x axis at a fixed offered rate. The
// acceptance shape is graceful degradation: reply rate declines and p99 climbs
// smoothly with the fault intensity, with no mechanism cliffing to zero.
func ChaosFigures() []OverloadFigure {
	return []OverloadFigure{
		{
			ID:     "fig40",
			Number: 40,
			Title:  "Chaos: connection resets mid-request and mid-response, five mechanisms, 251 inactive connections",
			Paper: "Not in the paper, whose clients always complete or time out cleanly. A deterministic " +
				"fraction of connections RST mid-exchange: half mid-request (the server's read fails with " +
				"ECONNRESET), half mid-response (the draining write fails with EPIPE). The server must " +
				"unwind each one without leaking a descriptor, a pooled connection or a timer; reply rate " +
				"should fall roughly linearly with the doomed fraction.",
			Workload:    "constant",
			Rates:       []float64{ChaosRate},
			Fault:       "reset",
			FaultValues: []float64{0, 0.02, 0.05, 0.1, 0.2},
			Curves:      overloadMechanismCurves(251),
		},
		{
			ID:     "fig41",
			Number: 41,
			Title:  "Chaos: descriptor-limit headroom (RLIMIT_NOFILE), five mechanisms, 251 inactive connections",
			Paper: "Not in the paper. With 251 inactive connections pinning descriptors, shrinking the " +
				"process fd limit squeezes the headroom for active ones until accept fails with EMFILE. " +
				"The reserve-descriptor drain sheds the overflow cleanly and paced backoff keeps the " +
				"accept loop from spinning; reply rate should degrade to the sustainable headroom, not " +
				"collapse.",
			Workload:    "constant",
			Rates:       []float64{ChaosRate},
			Fault:       "fdlimit",
			FaultValues: []float64{0, 600, 450, 350, 300},
			Curves:      overloadMechanismCurves(251),
		},
		{
			ID:     "fig42",
			Number: 42,
			Title:  "Chaos: EINTR storms on the blocking wait, five mechanisms, 251 inactive connections",
			Paper: "Not in the paper. Each blocking wait episode is interrupted with probability p and " +
				"restarts with a recomputed timeout; the interrupt charges a signal delivery and the " +
				"restart a fresh syscall entry. Readiness arriving during the interrupt window must not " +
				"be lost, so the cost is pure overhead: reply rate bends down gently as p grows.",
			Workload:    "constant",
			Rates:       []float64{ChaosRate},
			Fault:       "eintr",
			FaultValues: []float64{0, 0.2, 0.4, 0.6, 0.8},
			Curves:      overloadMechanismCurves(251),
		},
		{
			ID:     "fig43",
			Number: 43,
			Title:  "Chaos: notification-queue overflow storms, RT signals and completion ring",
			Paper: "Not in the paper, though its Section 5 fears exactly this: the RT signal queue " +
				"overflows and the server must fall back to a full scan. Injected kernel-side bursts " +
				"swallow a deterministic fraction of signal enqueues and ring posts, forcing repeated " +
				"overflow-recovery cycles with live traffic between them; the mechanisms whose recovery " +
				"is a bounded rescan degrade smoothly as the storm intensifies.",
			Workload:    "constant",
			Rates:       []float64{ChaosRate},
			Fault:       "overflow",
			FaultValues: []float64{0, 0.05, 0.1, 0.2, 0.4},
			Curves: []Curve{
				{Label: "phhttpd", Server: ServerPhhttpd, Inactive: 251},
				{Label: "hybrid", Server: ServerHybrid, Inactive: 251},
				{Label: "compio", Server: ServerThttpdCompio, Inactive: 251},
			},
		},
	}
}

// KeepAliveRequests is the per-connection request count of the keep-alive
// figure family and the sweep-level -keepalive default: long enough to
// amortise the connection setup, short enough that connections still churn.
const KeepAliveRequests = 8

// KeepAliveFigures returns the persistent-connection figure family (figs
// 32-35): the HTTP/1.1 hot path measured one axis at a time — keep-alive
// against close-per-request on all five mechanisms, pipeline depth, response
// cache size, and the write path (copy vs writev vs sendfile).
func KeepAliveFigures() []OverloadFigure {
	ka := httpcore.Options{KeepAlive: true}
	pair := func(label string, server ServerKind) []Curve {
		return []Curve{
			{Label: label + " http/1.0", Server: server, Inactive: 251},
			{Label: label + " keepalive", Server: server, Inactive: 251,
				HTTP: ka, RequestsPerConn: KeepAliveRequests,
				PipelineDepth: KeepAliveRequests},
		}
	}
	var cmp []Curve
	cmp = append(cmp, pair("normal poll", ServerThttpdPoll)...)
	cmp = append(cmp, pair("devpoll", ServerThttpdDevPoll)...)
	cmp = append(cmp, pair("phhttpd", ServerPhhttpd)...)
	cmp = append(cmp, pair("hybrid", ServerHybrid)...)
	cmp = append(cmp, pair("compio", ServerThttpdCompio)...)

	depth := func(d int) Curve {
		return Curve{Label: fmt.Sprintf("depth-%d", d), Server: ServerThttpdEpoll,
			Inactive: 251, HTTP: ka, RequestsPerConn: 16, PipelineDepth: d}
	}
	cache := func(kb int) Curve {
		label := "cache-off"
		if kb > 0 {
			label = fmt.Sprintf("cache-%dkb", kb)
		}
		return Curve{Label: label, Server: ServerThttpdEpoll, Inactive: 251,
			HTTP:            httpcore.Options{KeepAlive: true, CacheKB: kb},
			RequestsPerConn: KeepAliveRequests}
	}
	write := func(m httpcore.WriteMode) Curve {
		return Curve{Label: m.String(), Server: ServerThttpdEpoll, Inactive: 251,
			HTTP:            httpcore.Options{KeepAlive: true, WriteMode: m},
			RequestsPerConn: KeepAliveRequests}
	}
	return []OverloadFigure{
		{
			ID:     "fig32",
			Number: 32,
			Title:  "Keep-alive vs HTTP/1.0 at the overload knee, five mechanisms, 251 inactive connections",
			Paper: "Not in the paper, whose testbed closed every connection after one request. Each keep-alive " +
				"client pipelines its eight requests over one connection, so the accept, the interest-set " +
				"registration and the close are amortised over eight requests and the server dispatches " +
				"whole batches per readiness event. Every mechanism's reply-rate knee moves right; the " +
				"mechanisms whose per-event costs dominate (poll's full-set scan on every dispatch) gain " +
				"the most. The offered request budget matches the HTTP/1.0 curves: one eighth as many " +
				"connections at one eighth the connection rate.",
			Workload: "constant",
			Rates:    OverloadRates(),
			Curves:   cmp,
		},
		{
			ID:     "fig33",
			Number: 33,
			Title:  "Pipeline depth 1 vs 4 vs 16 on keep-alive epoll, 16 requests per connection, 251 inactive connections",
			Paper: "Not in the paper. Pipelining removes the client's request-response round trip from the " +
				"connection's critical path; past depth ~4 the server's bounded per-dispatch batch (not " +
				"the network) paces the connection, so returns diminish.",
			Workload: "constant",
			Rates:    OverloadRates(),
			Curves:   []Curve{depth(1), depth(4), depth(16)},
		},
		{
			ID:     "fig34",
			Number: 34,
			Title:  "Response cache size sweep on keep-alive epoll, 251 inactive connections",
			Paper: "Not in the paper. cache-off is the legacy model with no file-access charges at all; " +
				"turning the explicit file model on, a cache too small for the document (4 KB vs the " +
				"6 KB default document) pays open-plus-page-read on every request, while any " +
				"sufficient size serves from the mmap'd cache at a fraction of that.",
			Workload: "constant",
			Rates:    OverloadRates(),
			Curves:   []Curve{cache(0), cache(4), cache(64), cache(1024)},
		},
		{
			ID:     "fig35",
			Number: 35,
			Title:  "Write path copy vs writev vs sendfile on keep-alive epoll, 251 inactive connections",
			Paper: "Not in the paper. Two-write copy pays the user-space copy twice plus an extra " +
				"syscall; writev folds header and body into one charge; sendfile skips the " +
				"user-space copy entirely and charges per page crossed.",
			Workload: "constant",
			Rates:    OverloadRates(),
			Curves:   []Curve{write(httpcore.WriteCopy), write(httpcore.WriteWritev), write(httpcore.WriteSendfile)},
		},
	}
}

// OverloadFigureByID looks an overload, keep-alive or scale figure up by
// identifier ("fig19") or bare number ("19").
func OverloadFigureByID(id string) (OverloadFigure, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	families := [][]OverloadFigure{
		OverloadFigures(), KeepAliveFigures(), ScaleFigures(), MassiveScaleFigures(),
		MostlyIdleFigures(), ChaosFigures(),
	}
	for _, fam := range families {
		for _, f := range fam {
			if f.ID == id || fmt.Sprintf("%d", f.Number) == id {
				return f, true
			}
		}
	}
	return OverloadFigure{}, false
}

// WithWorkerCounts rebuilds the figure's curves for the given worker counts,
// honoring the tools' -workers flag on the prefork overload figure; figures
// without prefork curves (and empty counts) pass through unchanged.
func (f OverloadFigure) WithWorkerCounts(counts []int) OverloadFigure {
	if len(counts) == 0 {
		return f
	}
	inactive := -1
	for _, c := range f.Curves {
		if strings.HasPrefix(string(c.Server), "prefork-") {
			inactive = c.Inactive
			break
		}
	}
	if inactive < 0 {
		return f
	}
	curves := make([]Curve, 0, len(counts))
	for _, n := range counts {
		curves = append(curves, Curve{
			Label:    fmt.Sprintf("prefork-%d", n),
			Server:   PreforkKind(n),
			Inactive: inactive,
		})
	}
	f.Curves = curves
	return f
}

// OverloadFigureResult holds one regenerated overload figure: two series per
// curve (reply-rate average and p99 latency) plus the raw runs.
type OverloadFigureResult struct {
	Figure OverloadFigure
	Series []metrics.Series
	Runs   []RunResult
}

// RunOverloadFigure regenerates one overload figure. SweepOptions are honored
// as for RunFigure; opts.Workload, when non-empty, overrides the figure's own
// workload (re-running fig19's curves under another scenario).
func RunOverloadFigure(fig OverloadFigure, opts SweepOptions) OverloadFigureResult {
	rates := fig.Rates
	if len(opts.Rates) > 0 {
		rates = opts.Rates
	}
	connections := opts.Connections
	if connections <= 0 {
		connections = fig.Connections
	}
	if connections <= 0 {
		connections = 4000
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	workload := fig.Workload
	if opts.Workload != "" {
		workload = opts.Workload
	}
	out := OverloadFigureResult{Figure: fig}
	for _, curve := range fig.Curves {
		if opts.Backend != "" {
			kind, err := RetargetKind(curve.Server, opts.Backend)
			if err != nil {
				panic(err)
			}
			if kind != curve.Server {
				curve.Label += " [" + string(kind) + "]"
				curve.Server = kind
			}
		}
		// A churn axis (fig39) or fault axis (figs 40-43) sweeps its knob at
		// the figure's single fixed offered rate; otherwise the x axis is the
		// offered rate.
		xlabel, xs := "request rate", rates
		if len(fig.Churn) > 0 {
			xlabel, xs = "churn rate", fig.Churn
		}
		if fig.Fault != "" {
			xlabel, xs = FaultAxisLabel(fig.Fault), fig.FaultValues
		}
		reply := metrics.Series{Label: curve.Label + " (reply avg)", XLabel: xlabel, YLabel: MetricReplyRate.String()}
		p99 := metrics.Series{Label: curve.Label + " (p99 ms)", XLabel: xlabel, YLabel: "p99 connection time (ms)"}
		for _, x := range xs {
			spec := RunSpec{
				Server:      curve.Server,
				RequestRate: x,
				Inactive:    curve.Inactive,
				Connections: connections,
				Seed:        seed,
				Workload:    workload,
				Threads:     opts.Threads,
				FanoutSize:  opts.Fanout,
				ChurnRate:   opts.ChurnRate,
				Faults:      opts.Faults,
			}
			spec.Client.Retry = opts.Retry
			if len(fig.Churn) > 0 {
				spec.RequestRate = rates[0]
				spec.ChurnRate = x
			}
			if fig.Fault != "" {
				spec.RequestRate = rates[0]
				if fig.Faults.Enabled() {
					spec.Faults = fig.Faults
				}
				applyFaultAxis(&spec, fig.Fault, x)
			}
			if fig.PortSpace > 0 {
				netCfg := netsim.DefaultConfig()
				netCfg.PortSpace = fig.PortSpace
				spec.Network = &netCfg
			}
			applyHTTPSweep(&spec, curve, opts)
			res := Run(spec)
			out.Runs = append(out.Runs, res)
			reply.Append(x, res.Load.ReplyRate.Mean)
			p99.Append(x, res.Latency.P99)
			if opts.Progress != nil {
				opts.Progress("%s [%s] %s", fig.ID, workload, Describe(res))
			}
		}
		out.Series = append(out.Series, reply, p99)
	}
	return out
}

// FormatOverload renders an overload figure result as an aligned text table,
// the shape Format gives the paper's figures.
func FormatOverload(res OverloadFigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE %d (%s): %s\n", res.Figure.Number, res.Figure.ID, res.Figure.Title)
	fmt.Fprintf(&b, "paper: %s\n", res.Figure.Paper)
	workload := res.Figure.Workload
	if len(res.Runs) > 0 && res.Runs[0].Spec.Workload != "" {
		workload = res.Runs[0].Spec.Workload
	}
	fmt.Fprintf(&b, "metric: reply rate and p99 connection time vs offered load, workload %s\n", workload)
	if res.Figure.Connections > 0 && len(res.Runs) > 0 {
		fmt.Fprintf(&b, "connections: %d per point\n", res.Runs[0].Spec.Connections)
	}

	xs := map[float64]bool{}
	for _, s := range res.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	rates := make([]float64, 0, len(xs))
	for x := range xs {
		rates = append(rates, x)
	}
	sort.Float64s(rates)

	// Backend retargeting lengthens curve labels; widen every column to the
	// longest so the header stays over its data.
	width := 26
	for _, s := range res.Series {
		if len(s.Label)+2 > width {
			width = len(s.Label) + 2
		}
	}
	xname := "rate"
	if len(res.Figure.Churn) > 0 {
		xname = "churn"
	}
	if res.Figure.Fault != "" {
		xname = res.Figure.Fault
	}
	// Fault-rate axes carry fractional x values (a 0.02 reset rate); keep the
	// historical whole-number format everywhere else.
	xfmt := "%-12.0f"
	for _, rate := range rates {
		if rate != float64(int64(rate)) {
			xfmt = "%-12.2f"
			break
		}
	}
	fmt.Fprintf(&b, "%-12s", xname)
	for _, s := range res.Series {
		fmt.Fprintf(&b, "%*s", width, s.Label)
	}
	b.WriteString("\n")
	for _, rate := range rates {
		fmt.Fprintf(&b, xfmt, rate)
		for _, s := range res.Series {
			if y, ok := s.YAt(rate); ok {
				fmt.Fprintf(&b, "%*.1f", width, y)
			} else {
				fmt.Fprintf(&b, "%*s", width, "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatPercentiles renders the per-point latency-percentile table the
// -percentiles flag appends below a figure: the client-observed connection
// distribution next to the server-side service distribution for every run.
func FormatPercentiles(runs []RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %6s %10s | %9s %9s %9s %9s %9s | %9s %9s\n",
		"server", "rate", "load", "workload",
		"p50 ms", "p90 ms", "p99 ms", "p999 ms", "max ms", "svc p99", "svc p999")
	for _, r := range runs {
		wl := r.Spec.Workload
		if wl == "" {
			wl = "constant"
		}
		fmt.Fprintf(&b, "%-18s %6.0f %6d %10s | %9.2f %9.2f %9.2f %9.2f %9.2f | %9.2f %9.2f\n",
			r.Spec.Server, r.Spec.RequestRate, r.Spec.Inactive, wl,
			r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999, r.Latency.Max,
			r.ServiceLatency.P99, r.ServiceLatency.P999)
	}
	return b.String()
}
