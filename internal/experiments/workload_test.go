package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

// TestWorkloadRunsAreDeterministic: for every registered workload and each of
// the paper's four mechanisms, two identical runs must be DeepEqual in every
// observable — arrival schedules, adversarial client behavior and the latency
// histograms all derive from the seeded generator and virtual time, never
// from wall clock or map order.
func TestWorkloadRunsAreDeterministic(t *testing.T) {
	// Each workload family pairs with its own server family (the pairing is
	// enforced by Run): request workloads run against the HTTP servers, push
	// against pushcore and dhtchurn against dhtnode.
	serversFor := func(w loadgen.Workload) []ServerKind {
		switch w.Kind {
		case loadgen.KindPush:
			return []ServerKind{"push-poll", "push-devpoll", "push-epoll", "push-compio"}
		case loadgen.KindDHTChurn:
			return []ServerKind{"dht-poll", "dht-devpoll", "dht-epoll", "dht-compio"}
		default:
			return []ServerKind{ServerThttpdPoll, ServerThttpdDevPoll, ServerPhhttpd, ServerHybrid}
		}
	}
	for _, w := range loadgen.Workloads() {
		for _, server := range serversFor(w) {
			t.Run(w.Name+"/"+string(server), func(t *testing.T) {
				spec := RunSpec{
					Server:      server,
					RequestRate: 900,
					Connections: 800,
					Seed:        3,
					Workload:    w.Name,
				}
				if w.Kind == loadgen.KindRequest {
					spec.Inactive = 101
				}
				a, b := Run(spec), Run(spec)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("two identical %s runs diverged under workload %s:\n%+v\n%+v",
						server, w.Name, a, b)
				}
				if a.Load.Issued != 800 {
					t.Fatalf("issued = %d", a.Load.Issued)
				}
				// Request and push clients record one latency sample per
				// completion; a churning peer records one per pong, so its
				// histogram holds a whole-number multiple of the completions.
				if a.Load.Completed > 0 {
					if w.Kind == loadgen.KindDHTChurn {
						if a.Latency.Count < int64(a.Load.Completed) || a.Latency.Count%int64(a.Load.Completed) != 0 {
							t.Fatalf("latency histogram count %d not a multiple of completed %d", a.Latency.Count, a.Load.Completed)
						}
					} else if a.Latency.Count != int64(a.Load.Completed) {
						t.Fatalf("latency histogram count %d != completed %d", a.Latency.Count, a.Load.Completed)
					}
				}
			})
		}
	}
}

// TestWorkloadPercentilesPopulated: a served run fills both the
// client-observed connection percentiles and the server-side service
// percentiles, and they are ordered.
func TestWorkloadPercentilesPopulated(t *testing.T) {
	res := Run(RunSpec{Server: ServerThttpdDevPoll, RequestRate: 800, Inactive: 101, Connections: 1000, Seed: 1})
	if res.Latency.Count == 0 || res.ServiceLatency.Count == 0 {
		t.Fatalf("percentiles empty: client=%+v service=%+v", res.Latency, res.ServiceLatency)
	}
	for name, p := range map[string]struct {
		p50, p90, p99, p999, max float64
	}{
		"client":  {res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.P999, res.Latency.Max},
		"service": {res.ServiceLatency.P50, res.ServiceLatency.P90, res.ServiceLatency.P99, res.ServiceLatency.P999, res.ServiceLatency.Max},
	} {
		if p.p50 <= 0 || p.p50 > p.p90 || p.p90 > p.p99 || p.p99 > p.p999 || p.p999 > p.max {
			t.Fatalf("%s percentiles not ordered: %+v", name, p)
		}
	}
}

// TestAdversarialWorkloadsTaxPoll pins the extension's qualitative claim: the
// slow-loris background population costs poll() real throughput at a rate
// devpoll sustains, because every dribbled byte re-triggers poll's full
// interest-set scan.
func TestAdversarialWorkloadsTaxPoll(t *testing.T) {
	run := func(server ServerKind) RunResult {
		return Run(RunSpec{
			Server:      server,
			RequestRate: 1000,
			Inactive:    251,
			Connections: 1500,
			Seed:        1,
			Workload:    "slowloris",
		})
	}
	poll, devpoll := run(ServerThttpdPoll), run(ServerThttpdDevPoll)
	if devpoll.Load.ReplyRate.Mean < 900 {
		t.Fatalf("devpoll should sustain ~1000 req/s under slowloris, got %.1f", devpoll.Load.ReplyRate.Mean)
	}
	if poll.Load.ReplyRate.Mean > 0.8*devpoll.Load.ReplyRate.Mean {
		t.Fatalf("slowloris should tax poll vs devpoll: poll %.1f, devpoll %.1f",
			poll.Load.ReplyRate.Mean, devpoll.Load.ReplyRate.Mean)
	}
}

// TestStalledReadersHoldDescriptors: the stalled-reader population forces the
// server through the full serve path and then jams its responses, so the
// server performs more serves than the benchmark population alone explains.
func TestStalledReadersHoldDescriptors(t *testing.T) {
	res := Run(RunSpec{
		Server:      ServerThttpdDevPoll,
		RequestRate: 600,
		Inactive:    101,
		Connections: 800,
		Seed:        1,
		Workload:    "stalled",
	})
	if res.Server.Served <= int64(res.Load.Completed) {
		t.Fatalf("stalled readers should add serves beyond the %d benchmark completions, served %d",
			res.Load.Completed, res.Server.Served)
	}
	if res.Load.ErrorPercent > 20 {
		t.Fatalf("benchmark population should still mostly complete: %+v", res.Load)
	}
}

// TestOverloadFigureDefinitionsAndRun: the overload family is well-formed
// (unique ids, known workloads, four-mechanism curve sets) and a scaled-down
// run of one figure produces a formatted table with both series per curve.
func TestOverloadFigureDefinitionsAndRun(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range OverloadFigures() {
		if seen[f.ID] {
			t.Fatalf("duplicate overload figure id %s", f.ID)
		}
		seen[f.ID] = true
		if _, ok := loadgen.LookupWorkload(f.Workload); !ok {
			t.Fatalf("%s names unknown workload %q", f.ID, f.Workload)
		}
		if len(f.Rates) < 3 || len(f.Curves) < 3 {
			t.Fatalf("%s underspecified: %+v", f.ID, f)
		}
	}
	if _, ok := OverloadFigureByID("19"); !ok {
		t.Fatal("fig19 not found by number")
	}

	fig, _ := OverloadFigureByID("fig20")
	fig.Rates = []float64{500, 900}
	fig.Curves = fig.Curves[:2]
	res := RunOverloadFigure(fig, SweepOptions{Connections: 600, Seed: 1})
	if len(res.Series) != 4 { // reply + p99 per curve
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(res.Runs))
	}
	out := FormatOverload(res)
	if !strings.Contains(out, "FIGURE 20") || !strings.Contains(out, "p99") {
		t.Fatalf("FormatOverload output malformed:\n%s", out)
	}
	pt := FormatPercentiles(res.Runs)
	if !strings.Contains(pt, "p999 ms") || len(strings.Split(strings.TrimSpace(pt), "\n")) != 5 {
		t.Fatalf("FormatPercentiles output malformed:\n%s", pt)
	}
}
