package experiments

import (
	"strings"
	"testing"
)

// TestPushRunAccounting runs one push point end to end: every member
// subscribes, the delivery budget is spent exactly, and the server-side
// counters agree with the client-side books.
func TestPushRunAccounting(t *testing.T) {
	spec := RunSpec{
		Server:      "push-epoll",
		Workload:    "push",
		RequestRate: 1600,
		Connections: 1000,
		Seed:        1,
	}
	res := Run(spec)
	if res.Load.Issued != 1000 || res.Load.Completed != 1000 || res.Load.Errors != 0 {
		t.Fatalf("load = issued %d completed %d errors %d (%+v)",
			res.Load.Issued, res.Load.Completed, res.Load.Errors, res.Load.ErrorsBy)
	}
	if res.Load.Replies != 1000 {
		t.Fatalf("booked deliveries = %d, want the exact budget 1000", res.Load.Replies)
	}
	if res.Server.Served != 1000 {
		t.Fatalf("subscribed members = %d, want 1000", res.Server.Served)
	}
	// Pushed counts warmup deliveries too, so it must be at least the budget.
	if res.Server.Pushed < 1000 {
		t.Fatalf("server pushes = %d, want >= 1000", res.Server.Pushed)
	}
	if res.Load.MedianLatencyMs <= 0 {
		t.Fatalf("median delivery latency = %v ms, want > 0", res.Load.MedianLatencyMs)
	}
	if res.FinalMode != "epoll" {
		t.Fatalf("final mode = %q, want epoll", res.FinalMode)
	}
	if res.EventLoops == 0 || res.Primary.Waits == 0 {
		t.Fatalf("mechanism stats not filled: loops=%d waits=%d", res.EventLoops, res.Primary.Waits)
	}
}

// TestDHTRunAccounting runs one churn point end to end: every peer session
// completes its pong quota and the node's counters line up.
func TestDHTRunAccounting(t *testing.T) {
	spec := RunSpec{
		Server:      "dht-epoll",
		Workload:    "dhtchurn",
		RequestRate: 1000, // quota 5 pongs per peer at the workload's 200/s churn
		Connections: 200,
		Seed:        1,
	}
	res := Run(spec)
	if res.Load.Issued != 200 || res.Load.Completed != 200 || res.Load.Errors != 0 {
		t.Fatalf("load = issued %d completed %d errors %d (%+v)",
			res.Load.Issued, res.Load.Completed, res.Load.Errors, res.Load.ErrorsBy)
	}
	if res.Load.Replies != 1000 {
		t.Fatalf("pongs booked = %d, want 200 peers x 5", res.Load.Replies)
	}
	if res.Server.Accepted != 200 {
		t.Fatalf("joins = %d, want 200", res.Server.Accepted)
	}
	if res.Server.Served < 1000 {
		t.Fatalf("pongs sent = %d, want >= 1000", res.Server.Served)
	}
}

// TestFamilyPairingRejected pins the validation: a push daemon driven by the
// request workload (or an HTTP server by the push workload) must fail with an
// explanatory error, not run to an all-error result.
func TestFamilyPairingRejected(t *testing.T) {
	cases := []RunSpec{
		{Server: "push-epoll"},                                    // request workload against the push daemon
		{Server: "dht-poll", Workload: "flashcrowd"},              // request workload against the node
		{Server: ServerThttpdEpoll, Workload: "push"},             // push traffic against an HTTP server
		{Server: PreforkKind(2), Workload: "dhtchurn"},            // datagrams against prefork
		{Server: "push-epoll", Workload: "dhtchurn"},              // wrong non-request family
		{Server: "dht-epoll", Workload: "push", RequestRate: 500}, // wrong non-request family
	}
	for _, spec := range cases {
		if _, err := RunE(spec); err == nil || !strings.Contains(err.Error(), "traffic") {
			t.Fatalf("spec %+v: error = %v, want a family-pairing error", spec.Server, err)
		}
	}
}

// TestMostlyIdleFiguresRegistered pins figs 36-39 into the lookup path the
// tools use.
func TestMostlyIdleFiguresRegistered(t *testing.T) {
	if n := len(MostlyIdleFigures()); n != 4 {
		t.Fatalf("MostlyIdleFigures = %d figures, want 4", n)
	}
	for _, id := range []string{"fig36", "37", "fig38", "39"} {
		fig, ok := OverloadFigureByID(id)
		if !ok {
			t.Fatalf("OverloadFigureByID(%q) failed", id)
		}
		if fig.Connections <= 0 {
			t.Fatalf("%s has no pinned connection count; the default sweep would run it", fig.ID)
		}
		for _, c := range fig.Curves {
			if err := ValidateServerKind(c.Server); err != nil {
				t.Fatalf("%s curve %q: %v", fig.ID, c.Label, err)
			}
		}
	}
	fig39, _ := OverloadFigureByID("fig39")
	if len(fig39.Churn) == 0 || len(fig39.Rates) != 1 {
		t.Fatalf("fig39 must sweep churn at one fixed rate: churn=%v rates=%v", fig39.Churn, fig39.Rates)
	}
}

// TestMostlyIdleFigureRunAndFormat regenerates a scaled-down fig36 and fig39
// and checks the rendered tables carry the right axes.
func TestMostlyIdleFigureRunAndFormat(t *testing.T) {
	fig36, _ := OverloadFigureByID("fig36")
	fig36.Curves = fig36.Curves[:2] // poll and devpoll suffice
	res := RunOverloadFigure(fig36, SweepOptions{Connections: 300, Rates: []float64{800}})
	if len(res.Runs) != 2 || len(res.Series) != 4 {
		t.Fatalf("fig36 runs=%d series=%d, want 2 runs / 4 series", len(res.Runs), len(res.Series))
	}
	out := FormatOverload(res)
	if !strings.Contains(out, "rate") || !strings.Contains(out, "devpoll (reply avg)") {
		t.Fatalf("fig36 table missing expected columns:\n%s", out)
	}

	fig39, _ := OverloadFigureByID("fig39")
	fig39.Curves = fig39.Curves[:1]
	fig39.Churn = []float64{100, 400}
	res = RunOverloadFigure(fig39, SweepOptions{Connections: 200})
	if len(res.Runs) != 2 {
		t.Fatalf("fig39 runs = %d, want one per churn value", len(res.Runs))
	}
	if res.Runs[0].Spec.ChurnRate != 100 || res.Runs[1].Spec.ChurnRate != 400 {
		t.Fatalf("fig39 churn axis not applied: %v / %v",
			res.Runs[0].Spec.ChurnRate, res.Runs[1].Spec.ChurnRate)
	}
	out = FormatOverload(res)
	if !strings.Contains(out, "churn") {
		t.Fatalf("fig39 table missing the churn axis header:\n%s", out)
	}
}

// TestParallelMatchesSequentialMostlyIdle extends the engine's bit-equality
// contract to the two new traffic families: push and churn runs must produce
// byte-identical deterministic metrics at -threads 1, 2 and 8.
func TestParallelMatchesSequentialMostlyIdle(t *testing.T) {
	specs := []RunSpec{
		{Server: "push-epoll", Workload: "push", RequestRate: 1600, Connections: 1000},
		{Server: "push-poll", Workload: "push", RequestRate: 800, Connections: 500},
		{Server: "dht-epoll", Workload: "dhtchurn", RequestRate: 1000, Connections: 200},
		{Server: "dht-compio", Workload: "dhtchurn", RequestRate: 600, Connections: 150},
	}
	for _, spec := range specs {
		spec.Seed = 1
		want := gatedMetrics(Run(spec))
		for _, threads := range []int{2, 8} {
			spec.Threads = threads
			res := Run(spec)
			if res.Threads != threads {
				t.Errorf("%s threads=%d: engine fell back to %d threads", spec.Server, threads, res.Threads)
			}
			if got := gatedMetrics(res); got != want {
				t.Errorf("%s/%s threads=%d diverged from sequential:\nseq: %s\npar: %s",
					spec.Server, spec.Workload, threads, want, got)
			}
		}
	}
}
