package experiments

import (
	"testing"

	"repro/internal/faults"
)

// TestChaosRunsAreDeterministicAcrossThreads extends the byte-identity claim
// to the fault plane: every fault class's decisions are keyed by lane-local
// sequences or driver-assigned connection ids, so a chaos run shards exactly
// like a healthy one.
func TestChaosRunsAreDeterministicAcrossThreads(t *testing.T) {
	cases := []struct {
		name   string
		server ServerKind
		mutate func(*RunSpec)
	}{
		{"reset-epoll", ServerThttpdEpoll, func(s *RunSpec) {
			s.Faults = faults.Config{Seed: 3, ResetRate: 0.1, VanishRate: 0.02}
		}},
		{"emfile-poll", ServerThttpdPoll, func(s *RunSpec) {
			s.Faults = faults.Config{Seed: 3, FDLimit: 280}
		}},
		{"eintr-devpoll", ServerThttpdDevPoll, func(s *RunSpec) {
			s.Faults = faults.Config{Seed: 3, EINTRRate: 0.4}
		}},
		{"overflow-phhttpd", ServerPhhttpd, func(s *RunSpec) {
			s.Faults = faults.Config{Seed: 3, OverflowStormRate: 0.1}
		}},
		{"overflow-compio", ServerThttpdCompio, func(s *RunSpec) {
			s.Faults = faults.Config{Seed: 3, OverflowStormRate: 0.1}
		}},
		{"retry-hybrid", ServerHybrid, func(s *RunSpec) {
			s.Faults = faults.Config{Seed: 3, ResetRate: 0.1}
			s.Client.Retry = true
		}},
	}
	for _, c := range cases {
		spec := DefaultSpec(c.server, 400, 251)
		spec.Connections = 1500
		c.mutate(&spec)
		want := gatedMetrics(Run(spec))
		for _, threads := range []int{2, 8} {
			spec.Threads = threads
			res := Run(spec)
			if res.Threads != threads {
				t.Errorf("%s threads=%d: engine fell back to %d threads", c.name, threads, res.Threads)
			}
			if got := gatedMetrics(res); got != want {
				t.Errorf("%s threads=%d diverged from sequential:\nseq: %s\npar: %s", c.name, threads, want, got)
			}
		}
	}
}

// TestChaosGracefulDegradation runs all five mechanisms under a combined
// fault storm — connection resets, a binding descriptor limit and EINTR on
// every other blocking wait — and requires each to degrade rather than break:
// the run finishes, the books balance, the server keeps completing requests,
// and the fault machinery demonstrably engaged.
func TestChaosGracefulDegradation(t *testing.T) {
	kinds := []ServerKind{
		ServerThttpdPoll, ServerThttpdDevPoll, ServerPhhttpd,
		ServerThttpdEpoll, ServerThttpdCompio, ServerHybrid,
	}
	for _, kind := range kinds {
		spec := DefaultSpec(kind, 400, 251)
		spec.Connections = 1500
		spec.Faults = faults.Config{
			Seed:      5,
			ResetRate: 0.15,
			FDLimit:   300,
			EINTRRate: 0.5,
		}
		res := Run(spec)
		if res.Load.Completed+res.Load.Errors != res.Load.Issued || res.Load.Issued != 1500 {
			t.Errorf("%s: conservation violated under chaos: %+v", kind, res.Load)
			continue
		}
		if res.Load.Completed == 0 {
			t.Errorf("%s: served nothing under chaos (errors=%v)", kind, res.Load.ErrorsBy)
		}
		if res.Server.Resets == 0 {
			t.Errorf("%s: no server-side resets booked at ResetRate 0.15", kind)
		}
		if res.Primary.Interrupts == 0 && res.Secondary.Interrupts == 0 {
			t.Errorf("%s: no EINTR interrupts at rate 0.5", kind)
		}
	}
}
