package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compio"
	"repro/internal/devpoll"
	"repro/internal/servers/httpcore"
	"repro/internal/servers/hybrid"
)

// Ablation is one design-choice study beyond the paper's figures: it compares
// a small set of variant configurations at a fixed, stressful operating point
// (high request rate, 501 inactive connections unless noted).
type Ablation struct {
	ID          string
	Title       string
	Description string
	// Variants maps a variant label to the spec that realises it.
	Variants []AblationVariant
}

// AblationVariant is one configuration within an ablation.
type AblationVariant struct {
	Label string
	Spec  RunSpec
}

// AblationResult pairs each variant with its run result.
type AblationResult struct {
	Ablation Ablation
	Results  []RunResult
	Labels   []string
}

// Ablations returns the ablation studies listed in DESIGN.md. connections
// scales the per-variant run size (0 selects 3000).
func Ablations(connections int) []Ablation {
	if connections <= 0 {
		connections = 3000
	}
	base := func(server ServerKind, rate float64, inactive int) RunSpec {
		s := DefaultSpec(server, rate, inactive)
		s.Connections = connections
		return s
	}

	noHints := devpoll.DefaultOptions()
	noHints.UseHints = false
	noMmap := devpoll.DefaultOptions()
	noMmap.UseMmap = false

	hintsOn := base(ServerThttpdDevPoll, 900, 501)
	hintsOff := base(ServerThttpdDevPoll, 900, 501)
	hintsOff.DevPollOptions = &noHints

	mmapOn := base(ServerThttpdDevPoll, 1000, 501)
	mmapOff := base(ServerThttpdDevPoll, 1000, 501)
	mmapOff.DevPollOptions = &noMmap

	single := base(ServerPhhttpd, 900, 251)
	batch := base(ServerPhhttpd, 900, 251)
	batch.PhhttpdBatchDequeue = true

	smallQueue := base(ServerPhhttpd, 1000, 501)
	smallQueue.RTQueueLimit = 128
	bigQueue := base(ServerPhhttpd, 1000, 501)
	bigQueue.RTQueueLimit = 4096

	hybridEarly := base(ServerHybrid, 1000, 501)
	earlyCfg := hybrid.DefaultConfig()
	earlyCfg.HighWater = 32
	hybridEarly.HybridConfig = &earlyCfg
	hybridLate := base(ServerHybrid, 1000, 501)
	lateCfg := hybrid.DefaultConfig()
	lateCfg.HighWater = lateCfg.QueueLimit
	hybridLate.HybridConfig = &lateCfg

	hybridVsPh := base(ServerHybrid, 1000, 501)
	phVsHybrid := base(ServerPhhttpd, 1000, 501)

	epollLT := base(ServerThttpdEpoll, 1000, 501)
	epollET := base(ServerThttpdEpollET, 1000, 501)
	devpollVsEpoll := base(ServerThttpdDevPoll, 1000, 501)
	hybridEpollBulk := base(ServerHybridEpoll, 1000, 501)

	// compio batch-size sweep: the copy configuration is held fixed
	// (registered buffers on, the default) while the SQ size — the number of
	// submissions one Enter amortises over — sweeps from no batching to deep
	// batching.
	compioBatch := func(sqSize int) RunSpec {
		s := base(ServerThttpdCompio, 1300, 501)
		opts := compio.DefaultOptions()
		opts.SQSize = sqSize
		s.CompioOptions = &opts
		return s
	}

	// compio copy-avoidance: the batch configuration is held fixed (default
	// SQ) while registered buffers toggle, isolating the per-read copy skip.
	compioCopy := func(registered bool) RunSpec {
		s := base(ServerThttpdCompio, 1300, 501)
		opts := compio.DefaultOptions()
		opts.RegisteredBuffers = registered
		s.CompioOptions = &opts
		return s
	}

	// Persistent-connection hot path, one axis at a time on keep-alive epoll.
	keepalive := func(http httpcore.Options, reqs, depth int) RunSpec {
		s := base(ServerThttpdEpoll, 1300, 501)
		s.HTTP = http
		s.RequestsPerConn = reqs
		s.PipelineDepth = depth
		return s
	}
	kaOn := httpcore.Options{KeepAlive: true}
	pipelined := func(depth int) RunSpec { return keepalive(kaOn, 16, depth) }
	cached := func(kb int) RunSpec {
		return keepalive(httpcore.Options{KeepAlive: true, CacheKB: kb}, KeepAliveRequests, 0)
	}
	writePath := func(m httpcore.WriteMode) RunSpec {
		return keepalive(httpcore.Options{KeepAlive: true, WriteMode: m}, KeepAliveRequests, 0)
	}

	return []Ablation{
		{
			ID:          "hints",
			Title:       "Device-driver hints on vs off (/dev/poll, 900 req/s, 501 inactive)",
			Description: "Quantifies §3.2: hints let DP_POLL skip the per-descriptor driver callback for idle connections.",
			Variants: []AblationVariant{
				{Label: "hints-on", Spec: hintsOn},
				{Label: "hints-off", Spec: hintsOff},
			},
		},
		{
			ID:          "mmap",
			Title:       "mmap'd result area on vs off (/dev/poll, 1000 req/s, 501 inactive)",
			Description: "Quantifies §3.3: the shared result area removes the per-ready-descriptor copy-out.",
			Variants: []AblationVariant{
				{Label: "mmap-on", Spec: mmapOn},
				{Label: "mmap-off", Spec: mmapOff},
			},
		},
		{
			ID:          "sigtimedwait4",
			Title:       "sigwaitinfo vs sigtimedwait4 batch dequeue (phhttpd, 900 req/s, 251 inactive)",
			Description: "Quantifies the paper's §6 proposal to dequeue RT signals in groups rather than one per system call.",
			Variants: []AblationVariant{
				{Label: "sigwaitinfo", Spec: single},
				{Label: "sigtimedwait4", Spec: batch},
			},
		},
		{
			ID:          "queue-limit",
			Title:       "RT signal queue limit 128 vs 4096 (phhttpd, 1000 req/s, 501 inactive)",
			Description: "Explores §4's load-threshold idea: a small queue forces early overflow recovery, a large one defers it.",
			Variants: []AblationVariant{
				{Label: "limit-128", Spec: smallQueue},
				{Label: "limit-4096", Spec: bigQueue},
			},
		},
		{
			ID:          "hybrid-threshold",
			Title:       "Hybrid crossover threshold: early vs at-queue-limit (1000 req/s, 501 inactive)",
			Description: "Evaluates the crossover-point question of §4 using the hybrid server the paper could not build.",
			Variants: []AblationVariant{
				{Label: "switch-early", Spec: hybridEarly},
				{Label: "switch-at-limit", Spec: hybridLate},
			},
		},
		{
			ID:          "hybrid-vs-phhttpd",
			Title:       "Hybrid server vs phhttpd under overload (1000 req/s, 501 inactive)",
			Description: "Tests §6's claim that maintaining kernel interest state concurrently with RT signal activity makes mode switching cheap.",
			Variants: []AblationVariant{
				{Label: "hybrid", Spec: hybridVsPh},
				{Label: "phhttpd", Spec: phVsHybrid},
			},
		},
		{
			ID:          "epoll-trigger-mode",
			Title:       "epoll level-triggered vs edge-triggered (1000 req/s, 501 inactive)",
			Description: "Compares the two epoll delivery modes on the shared interest engine: LT re-validates ready descriptors with the driver, ET delivers each transition once without re-polling.",
			Variants: []AblationVariant{
				{Label: "level-triggered", Spec: epollLT},
				{Label: "edge-triggered", Spec: epollET},
			},
		},
		{
			ID:          "epoll-vs-devpoll",
			Title:       "epoll vs /dev/poll under heavy inactive load (1000 req/s, 501 inactive)",
			Description: "The successor mechanism against the paper's: epoll's O(ready) wait versus /dev/poll's O(registered) hint-check scan.",
			Variants: []AblationVariant{
				{Label: "epoll", Spec: epollLT},
				{Label: "devpoll", Spec: devpollVsEpoll},
			},
		},
		{
			ID:          "compio-batch",
			Title:       "compio Enter batch size: SQ 1/4/16/64 (1300 req/s, 501 inactive)",
			Description: "Isolates submission-batch amortisation: one syscall entry per Enter is spread over SQSize submissions, the completion-side decomposition the paper's §3-4 performs for /dev/poll's interest updates. The copy configuration is held fixed.",
			Variants: []AblationVariant{
				{Label: "sq-1", Spec: compioBatch(1)},
				{Label: "sq-4", Spec: compioBatch(4)},
				{Label: "sq-16", Spec: compioBatch(16)},
				{Label: "sq-64", Spec: compioBatch(64)},
			},
		},
		{
			ID:          "compio-regbuf",
			Title:       "compio registered buffers on vs off (1300 req/s, 501 inactive)",
			Description: "Isolates copy avoidance: fixed pre-pinned buffers skip exactly the per-read user-space copy charge (Cost.SockReadCopy), the mmap-result-area argument of §3.3 applied to data instead of events. The batch configuration is held fixed.",
			Variants: []AblationVariant{
				{Label: "registered", Spec: compioCopy(true)},
				{Label: "unregistered", Spec: compioCopy(false)},
			},
		},
		{
			ID:          "hybrid-bulk-mechanism",
			Title:       "Hybrid bulk poller: /dev/poll vs epoll (1000 req/s, 501 inactive)",
			Description: "Swaps the hybrid server's load-time mechanism, possible only because both maintain the shared kernel-resident interest set concurrently with RT signal activity.",
			Variants: []AblationVariant{
				{Label: "bulk-devpoll", Spec: hybridVsPh},
				{Label: "bulk-epoll", Spec: hybridEpollBulk},
			},
		},
		{
			ID:          "keepalive",
			Title:       "HTTP/1.0 close-per-request vs HTTP/1.1 keep-alive (epoll, 1300 req/s, 501 inactive)",
			Description: "The tentpole axis: eight requests per connection amortise the accept, the interest-set registration and the close. Serial keep-alive trades a sliver of reply rate for a much better median (each request waits a client round trip); pipelining the same eight requests recovers the rate and keeps the latency win.",
			Variants: []AblationVariant{
				{Label: "http10", Spec: base(ServerThttpdEpoll, 1300, 501)},
				{Label: "keepalive-8", Spec: keepalive(kaOn, KeepAliveRequests, 0)},
				{Label: "pipelined-8", Spec: keepalive(kaOn, KeepAliveRequests, KeepAliveRequests)},
			},
		},
		{
			ID:          "pipeline-depth",
			Title:       "Pipeline depth 1 vs 4 vs 16 (keep-alive epoll, 16 req/conn, 1300 req/s, 501 inactive)",
			Description: "Pipelining removes the client round trip between a connection's requests; the server's bounded per-dispatch batch caps how much a deeper pipeline can add.",
			Variants: []AblationVariant{
				{Label: "depth-1", Spec: pipelined(1)},
				{Label: "depth-4", Spec: pipelined(4)},
				{Label: "depth-16", Spec: pipelined(16)},
			},
		},
		{
			ID:          "cache-size",
			Title:       "Response cache off / 4KB / 64KB / 1MB (keep-alive epoll, 1300 req/s, 501 inactive)",
			Description: "cache-off is the legacy no-file-charge model; a cache smaller than the 6KB document pays open-plus-page-reads on every request (uncacheable), any sufficient size serves hits from the mmap'd cache.",
			Variants: []AblationVariant{
				{Label: "cache-off", Spec: cached(0)},
				{Label: "cache-4kb", Spec: cached(4)},
				{Label: "cache-64kb", Spec: cached(64)},
				{Label: "cache-1mb", Spec: cached(1024)},
			},
		},
		{
			ID:          "write-path",
			Title:       "Write path copy vs writev vs sendfile (keep-alive epoll, 1300 req/s, 501 inactive)",
			Description: "Two-write copy pays the user-space copy and an extra syscall per response, writev folds header and body into one charge, sendfile skips the user-space copy and charges per page.",
			Variants: []AblationVariant{
				{Label: "copy", Spec: writePath(httpcore.WriteCopy)},
				{Label: "writev", Spec: writePath(httpcore.WriteWritev)},
				{Label: "sendfile", Spec: writePath(httpcore.WriteSendfile)},
			},
		},
	}
}

// AblationByID finds an ablation by identifier.
func AblationByID(id string, connections int) (Ablation, bool) {
	for _, a := range Ablations(connections) {
		if a.ID == id {
			return a, true
		}
	}
	return Ablation{}, false
}

// RunAblation executes every variant of an ablation.
func RunAblation(a Ablation, progress func(format string, args ...interface{})) AblationResult {
	out := AblationResult{Ablation: a}
	for _, v := range a.Variants {
		res := Run(v.Spec)
		out.Results = append(out.Results, res)
		out.Labels = append(out.Labels, v.Label)
		if progress != nil {
			progress("%s/%s %s", a.ID, v.Label, Describe(res))
		}
	}
	return out
}

// FormatAblation renders an ablation result as a text table.
func FormatAblation(res AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATION %s: %s\n%s\n", res.Ablation.ID, res.Ablation.Title, res.Ablation.Description)
	fmt.Fprintf(&b, "%-18s %10s %8s %10s %8s %10s %12s\n",
		"variant", "reply/s", "err%", "median ms", "cpu%", "loops", "mode")
	for i, r := range res.Results {
		fmt.Fprintf(&b, "%-18s %10.1f %8.1f %10.2f %8.0f %10d %12s\n",
			res.Labels[i], r.Load.ReplyRate.Mean, r.Load.ErrorPercent, r.Load.MedianLatencyMs,
			100*r.CPUUtilization, r.EventLoops, r.FinalMode)
	}
	return b.String()
}
