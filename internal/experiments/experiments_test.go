package experiments

import (
	"strings"
	"testing"

	"repro/internal/servers/hybrid"
)

// testConns keeps the integration runs quick while staying long enough to
// reach steady state.
const testConns = 1500

func spec(server ServerKind, rate float64, inactive int) RunSpec {
	s := DefaultSpec(server, rate, inactive)
	s.Connections = testConns
	return s
}

func TestRunProducesConsistentAccounting(t *testing.T) {
	res := Run(spec(ServerThttpdDevPoll, 600, 1))
	if res.Load.Issued != testConns {
		t.Fatalf("issued = %d", res.Load.Issued)
	}
	if res.Load.Completed+res.Load.Errors != res.Load.Issued {
		t.Fatalf("accounting: %+v", res.Load)
	}
	if res.Server.Served == 0 || res.EventLoops == 0 {
		t.Fatalf("server stats empty: %+v loops=%d", res.Server, res.EventLoops)
	}
	if res.CPUUtilization <= 0 || res.CPUUtilization > 1 {
		t.Fatalf("cpu utilization = %v", res.CPUUtilization)
	}
	if res.Primary.Waits == 0 {
		t.Fatalf("mechanism stats empty: %+v", res.Primary)
	}
	if Describe(res) == "" {
		t.Fatal("empty Describe")
	}
	if res.FinalMode != "devpoll" {
		t.Fatalf("final mode = %s", res.FinalMode)
	}
}

func TestRunDefaultsForZeroSpec(t *testing.T) {
	res := Run(RunSpec{Server: ServerThttpdPoll, RequestRate: 0, Connections: 0, Inactive: 0,
		MaxVirtualTime: 0})
	if res.Load.Issued == 0 {
		t.Fatal("defaults did not produce a run")
	}
}

// The paper's headline result (Figures 8 vs 9, Figure 10): with 501 inactive
// connections, thttpd using /dev/poll sustains the offered load with few or no
// errors while stock poll() collapses, losing throughput and failing a large
// fraction of connections.
func TestDevPollBeatsStockPollUnderInactiveLoad(t *testing.T) {
	rate := 900.0
	poll := Run(spec(ServerThttpdPoll, rate, 501))
	dev := Run(spec(ServerThttpdDevPoll, rate, 501))

	if dev.Load.ReplyRate.Mean < 0.95*rate {
		t.Fatalf("devpoll should sustain ~%v replies/s, got %v", rate, dev.Load.ReplyRate.Mean)
	}
	if dev.Load.ErrorPercent > 1 {
		t.Fatalf("devpoll error rate = %v%%", dev.Load.ErrorPercent)
	}
	if poll.Load.ReplyRate.Mean > 0.85*rate {
		t.Fatalf("stock poll should fall well short of %v replies/s at load 501, got %v",
			rate, poll.Load.ReplyRate.Mean)
	}
	if poll.Load.ErrorPercent < 5 {
		t.Fatalf("stock poll should fail a significant fraction of connections, got %v%%",
			poll.Load.ErrorPercent)
	}
	if poll.Load.MedianLatencyMs < 5*dev.Load.MedianLatencyMs {
		t.Fatalf("stock poll median latency (%vms) should dwarf devpoll's (%vms)",
			poll.Load.MedianLatencyMs, dev.Load.MedianLatencyMs)
	}
	// The mechanism statistics explain why: every stock poll() call scans the
	// whole interest set (≈500+ driver callbacks per wait), while /dev/poll
	// with hints touches only the descriptors that changed.
	devPerWait := float64(dev.Primary.DriverPolls) / float64(dev.Primary.Waits)
	if devPerWait > 60 {
		t.Fatalf("devpoll driver polls per wait = %.0f, want only hinted descriptors", devPerWait)
	}
	if dev.Primary.HintHits == 0 {
		t.Fatal("devpoll hint machinery unused")
	}
	if poll.Primary.DriverPolls <= dev.Primary.DriverPolls {
		t.Fatalf("stock poll performed fewer driver polls (%d) than devpoll (%d)",
			poll.Primary.DriverPolls, dev.Primary.DriverPolls)
	}
}

// At a low inactive load every thttpd variant keeps up with a moderate
// request rate (Figures 4 and 5 below the breakdown point, plus the epoll
// extensions).
func TestThttpdVariantsKeepUpAtLowLoad(t *testing.T) {
	for _, server := range []ServerKind{
		ServerThttpdPoll, ServerThttpdDevPoll, ServerThttpdEpoll, ServerThttpdEpollET,
	} {
		res := Run(spec(server, 600, 1))
		if res.Load.ErrorPercent > 0.5 {
			t.Fatalf("%s errors = %v%%", server, res.Load.ErrorPercent)
		}
		if res.Load.ReplyRate.Mean < 570 {
			t.Fatalf("%s reply rate = %v", server, res.Load.ReplyRate.Mean)
		}
	}
}

// The epoll extension: under heavy inactive load, epoll (in either trigger
// mode) sustains the offered rate like /dev/poll does, while performing only
// O(ready) work per wait — far fewer driver polls than stock poll.
func TestEpollSustainsHeavyInactiveLoad(t *testing.T) {
	rate := 900.0
	poll := Run(spec(ServerThttpdPoll, rate, 501))
	for _, server := range []ServerKind{ServerThttpdEpoll, ServerThttpdEpollET} {
		res := Run(spec(server, rate, 501))
		if res.Load.ReplyRate.Mean < 0.95*rate {
			t.Fatalf("%s should sustain ~%v replies/s, got %v", server, rate, res.Load.ReplyRate.Mean)
		}
		if res.Load.ErrorPercent > 1 {
			t.Fatalf("%s error rate = %v%%", server, res.Load.ErrorPercent)
		}
		if res.Primary.Waits == 0 {
			t.Fatalf("%s mechanism stats empty", server)
		}
		perWait := float64(res.Primary.DriverPolls) / float64(res.Primary.Waits)
		if perWait > 60 {
			t.Fatalf("%s driver polls per wait = %.0f, want O(ready)", server, perWait)
		}
		if poll.Primary.DriverPolls <= res.Primary.DriverPolls {
			t.Fatalf("stock poll performed fewer driver polls (%d) than %s (%d)",
				poll.Primary.DriverPolls, server, res.Primary.DriverPolls)
		}
		wantMode := "epoll"
		if server == ServerThttpdEpollET {
			wantMode = "epoll-et"
		}
		if res.FinalMode != wantMode {
			t.Fatalf("%s final mode = %q", server, res.FinalMode)
		}
	}
}

// The hybrid server accepts epoll as its bulk mechanism and still survives
// overload with a tiny signal queue; with an aggressive crossover it actually
// engages the epoll bulk poller and reports it by name.
func TestHybridEpollSurvivesOverload(t *testing.T) {
	s := spec(ServerHybridEpoll, 1300, 251)
	s.RTQueueLimit = 16
	res := Run(s)
	if res.Load.ReplyRate.Mean < 1000 {
		t.Fatalf("hybrid-epoll throughput = %v, want epoll-class", res.Load.ReplyRate.Mean)
	}
	if res.Load.ErrorPercent > 10 {
		t.Fatalf("hybrid-epoll errors = %v%%", res.Load.ErrorPercent)
	}

	early := spec(ServerHybridEpoll, 1300, 251)
	cfg := hybrid.DefaultConfig()
	cfg.HighWater = 2
	cfg.ConsecutiveLow = 1 << 30 // never switch back: pin polling mode
	early.HybridConfig = &cfg
	eres := Run(early)
	if eres.SwitchesToPoll == 0 {
		t.Fatal("hybrid-epoll never engaged its bulk poller despite HighWater=2")
	}
	if eres.FinalMode != "epoll" {
		t.Fatalf("final mode = %q, want the epoll bulk poller by name", eres.FinalMode)
	}
	if eres.Load.ReplyRate.Mean < 1000 {
		t.Fatalf("hybrid-epoll in polling mode throughput = %v", eres.Load.ReplyRate.Mean)
	}
}

// Figures 12/13: phhttpd degrades with inactive connections — worse than
// thttpd+/dev/poll under the same load — while remaining better than stock
// poll (its events still arrive one at a time rather than via full scans).
func TestPhhttpdSitsBetweenPollAndDevPollAt501(t *testing.T) {
	rate := 1000.0
	ph := Run(spec(ServerPhhttpd, rate, 501))
	dev := Run(spec(ServerThttpdDevPoll, rate, 501))
	poll := Run(spec(ServerThttpdPoll, rate, 501))

	if !(ph.Load.ReplyRate.Mean < dev.Load.ReplyRate.Mean) {
		t.Fatalf("phhttpd (%v) should trail devpoll (%v) at load 501",
			ph.Load.ReplyRate.Mean, dev.Load.ReplyRate.Mean)
	}
	if !(ph.Load.ReplyRate.Mean > poll.Load.ReplyRate.Mean) {
		t.Fatalf("phhttpd (%v) should beat stock poll (%v) at load 501",
			ph.Load.ReplyRate.Mean, poll.Load.ReplyRate.Mean)
	}
	if ph.Load.MedianLatencyMs <= dev.Load.MedianLatencyMs {
		t.Fatalf("phhttpd median latency (%v) should exceed devpoll's (%v) under overload",
			ph.Load.MedianLatencyMs, dev.Load.MedianLatencyMs)
	}
}

// The hybrid server (the paper's §4 design) should match or beat phhttpd
// under overload because its interest state is maintained concurrently and
// switching costs almost nothing.
func TestHybridHandlesOverloadGracefully(t *testing.T) {
	rate := 1000.0
	hy := Run(spec(ServerHybrid, rate, 501))
	ph := Run(spec(ServerPhhttpd, rate, 501))
	if hy.Load.ReplyRate.Mean < ph.Load.ReplyRate.Mean {
		t.Fatalf("hybrid (%v) should not trail phhttpd (%v) under overload",
			hy.Load.ReplyRate.Mean, ph.Load.ReplyRate.Mean)
	}
	if hy.Load.ErrorPercent > ph.Load.ErrorPercent+1 {
		t.Fatalf("hybrid errors (%v%%) should not exceed phhttpd's (%v%%)",
			hy.Load.ErrorPercent, ph.Load.ErrorPercent)
	}
}

// Sustained extreme overload must not break the hybrid even when the RT
// signal queue is tiny: overflow either switches it to /dev/poll (cheaply,
// because the interest set was maintained all along) or is absorbed without
// losing connections beyond what the offered load itself forces.
func TestHybridSurvivesTinySignalQueueUnderOverload(t *testing.T) {
	s := spec(ServerHybrid, 1300, 251)
	s.RTQueueLimit = 16
	res := Run(s)
	if res.Load.ReplyRate.Mean < 1000 {
		t.Fatalf("hybrid throughput = %v, want /dev/poll-class", res.Load.ReplyRate.Mean)
	}
	if res.Load.ErrorPercent > 10 {
		t.Fatalf("hybrid errors = %v%%", res.Load.ErrorPercent)
	}
	if res.Server.Served == 0 || res.Load.Completed == 0 {
		t.Fatalf("hybrid served nothing: %+v", res.Server)
	}
}

func TestFigureDefinitionsCoverPaper(t *testing.T) {
	figs := Figures()
	if len(figs) != 11 {
		t.Fatalf("figures = %d, want 11 (FIG 4 through FIG 14)", len(figs))
	}
	seen := map[int]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.Paper == "" || len(f.Curves) == 0 || len(f.Rates) == 0 {
			t.Fatalf("incomplete figure: %+v", f)
		}
		seen[f.Number] = true
	}
	for n := 4; n <= 14; n++ {
		if !seen[n] {
			t.Fatalf("figure %d missing", n)
		}
	}
	if _, ok := FigureByID("fig10"); !ok {
		t.Fatal("FigureByID(fig10) failed")
	}
	if _, ok := FigureByID("14"); !ok {
		t.Fatal("FigureByID(14) failed")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Fatal("FigureByID(nope) should fail")
	}
	if len(ServerKinds()) != 27 {
		t.Fatalf("ServerKinds = %d, want the paper's four plus the registry-derived extensions, the prefork sizes and the push/dht families", len(ServerKinds()))
	}
	kinds := map[ServerKind]bool{}
	for _, k := range ServerKinds() {
		kinds[k] = true
		if err := ValidateServerKind(k); err != nil {
			t.Fatalf("listed kind %q does not validate: %v", k, err)
		}
	}
	for _, want := range []ServerKind{
		ServerThttpdEpoll, ServerThttpdEpollET, ServerThttpdRtsig,
		ServerHybridEpoll, ServerHybridEpollET,
		ServerThttpdCompio, ServerKind("hybrid-compio"),
		ServerKind("push-poll"), ServerKind("push-compio"),
		ServerKind("dht-poll"), ServerKind("dht-epoll-et"),
	} {
		if !kinds[want] {
			t.Fatalf("ServerKinds missing %q", want)
		}
	}
	if err := ValidateServerKind("thttpd-kqueue"); err == nil ||
		!strings.Contains(err.Error(), "choices") {
		t.Fatalf("unknown kind error = %v, want listed choices", err)
	}
	if _, err := RunE(RunSpec{Server: "nope"}); err == nil {
		t.Fatal("RunE with an unknown kind should fail")
	}
	if kind, err := RetargetKind(ServerThttpdPoll, "epoll-et"); err != nil || kind != ServerThttpdEpollET {
		t.Fatalf("RetargetKind = %v, %v", kind, err)
	}
	if kind, err := RetargetKind(ServerHybridEpoll, "devpoll"); err != nil || kind != ServerHybrid {
		t.Fatalf("RetargetKind(hybrid-epoll, devpoll) = %v, %v", kind, err)
	}
	if kind, err := RetargetKind(ServerPhhttpd, "epoll"); err != nil || kind != ServerPhhttpd {
		t.Fatalf("RetargetKind(phhttpd, epoll) = %v, %v", kind, err)
	}
	if _, err := RetargetKind(ServerThttpdPoll, "kqueue"); err == nil {
		t.Fatal("RetargetKind with an unknown backend should fail")
	}
	if len(ExtensionFigures()) == 0 || len(AllFigures()) != len(Figures())+len(ExtensionFigures()) {
		t.Fatal("extension figures not wired into AllFigures")
	}
	if _, ok := FigureByID("fig16"); !ok {
		t.Fatal("FigureByID(fig16) failed")
	}
	for _, m := range []MetricKind{MetricReplyRate, MetricErrorPercent, MetricMedianLatency, MetricKind(99)} {
		if m.String() == "" {
			t.Fatal("metric string empty")
		}
	}
}

func TestRunFigureAndFormat(t *testing.T) {
	fig, _ := FigureByID("fig05")
	res := RunFigure(fig, SweepOptions{Connections: 800, Rates: []float64{600, 900}, Progress: t.Logf})
	// One curve × (avg, min, max) series.
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	for _, s := range res.Series {
		if s.Len() != 2 {
			t.Fatalf("series %q has %d points", s.Label, s.Len())
		}
	}
	out := Format(res)
	if !strings.Contains(out, "FIGURE 5") || !strings.Contains(out, "600") {
		t.Fatalf("format output:\n%s", out)
	}

	// An error-percent figure produces one series per curve.
	fig10, _ := FigureByID("fig10")
	res10 := RunFigure(fig10, SweepOptions{Connections: 600, Rates: []float64{900}})
	if len(res10.Series) != len(fig10.Curves) {
		t.Fatalf("fig10 series = %d", len(res10.Series))
	}
	if !strings.Contains(Format(res10), "errors") {
		t.Fatal("fig10 format missing metric")
	}
}

func TestAblationDefinitionsAndRun(t *testing.T) {
	abls := Ablations(0)
	if len(abls) < 5 {
		t.Fatalf("ablations = %d", len(abls))
	}
	ids := map[string]bool{}
	for _, a := range abls {
		if a.ID == "" || a.Title == "" || len(a.Variants) < 2 {
			t.Fatalf("incomplete ablation %+v", a)
		}
		ids[a.ID] = true
	}
	for _, want := range []string{"hints", "mmap", "sigtimedwait4", "hybrid-vs-phhttpd", "compio-batch", "compio-regbuf"} {
		if !ids[want] {
			t.Fatalf("ablation %q missing", want)
		}
	}
	if _, ok := AblationByID("hints", 0); !ok {
		t.Fatal("AblationByID failed")
	}
	if _, ok := AblationByID("nope", 0); ok {
		t.Fatal("AblationByID(nope) should fail")
	}

	// Run the cheapest meaningful ablation end to end with a small size.
	a, _ := AblationByID("hints", 800)
	res := RunAblation(a, nil)
	if len(res.Results) != 2 {
		t.Fatalf("results = %d", len(res.Results))
	}
	// Hints must reduce driver poll callbacks dramatically.
	on, off := res.Results[0], res.Results[1]
	if on.Primary.DriverPolls*5 > off.Primary.DriverPolls {
		t.Fatalf("hints-on driver polls (%d) should be far below hints-off (%d)",
			on.Primary.DriverPolls, off.Primary.DriverPolls)
	}
	if !strings.Contains(FormatAblation(res), "hints") {
		t.Fatal("FormatAblation output missing id")
	}
}

// TestCompioAblationEffects checks the directional claims behind the two
// compio ablations at a reduced run size: deeper Enter batching and
// registered buffers must each lower the virtual-time CPU cost of serving
// the same workload. (The exact per-operation charges are pinned by the
// compio and netsim unit tests; at the full-size 1300 req/s knee the effect
// surfaces as a monotone median-latency improvement.)
func TestCompioAblationEffects(t *testing.T) {
	batch, ok := AblationByID("compio-batch", 800)
	if !ok {
		t.Fatal("compio-batch ablation missing")
	}
	shallow := Run(batch.Variants[0].Spec)                  // sq-1
	deep := Run(batch.Variants[len(batch.Variants)-1].Spec) // sq-64
	if shallow.CPUUtilization <= deep.CPUUtilization {
		t.Fatalf("sq-1 cpu %.4f should exceed sq-64 cpu %.4f: batching amortises the Enter syscall",
			shallow.CPUUtilization, deep.CPUUtilization)
	}

	regbuf, ok := AblationByID("compio-regbuf", 800)
	if !ok {
		t.Fatal("compio-regbuf ablation missing")
	}
	registered := Run(regbuf.Variants[0].Spec)
	unregistered := Run(regbuf.Variants[1].Spec)
	if registered.CPUUtilization >= unregistered.CPUUtilization {
		t.Fatalf("registered cpu %.4f should be below unregistered cpu %.4f: registered buffers skip the read copy",
			registered.CPUUtilization, unregistered.CPUUtilization)
	}
}
