package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/servers/prefork"
)

// WorkerCurve is one plotted configuration of a worker-scaling figure: an
// accept-distribution architecture plus a sharding policy.
type WorkerCurve struct {
	Label string
	Mode  prefork.Mode
	Shard netsim.ShardPolicy
	// Backend names the per-worker eventlib backend; empty selects epoll.
	Backend string
}

// WorkerFigure describes a figure whose x axis is the worker count rather
// than the request rate: the SMP extension the paper's uniprocessor testbed
// could not measure.
type WorkerFigure struct {
	ID     string
	Number int
	Title  string
	Paper  string
	// Rate is the offered request rate, chosen well above a single worker's
	// capacity so scaling is visible; Inactive is the idle-connection load.
	Rate     float64
	Inactive int
	Workers  []int
	Curves   []WorkerCurve
	// PlotUtilization adds a mean per-CPU utilisation series per curve.
	PlotUtilization bool
}

// DefaultWorkerCounts is the worker sweep used by the scaling figures.
func DefaultWorkerCounts() []int { return []int{1, 2, 4, 8} }

// ParseWorkerCounts parses a comma-separated worker-count list ("1,2,4,8")
// against the same bounds resolveKind enforces for prefork kinds. An empty
// string returns nil (use the figure's default sweep). Both CLI tools share
// this so their -workers flags cannot drift apart.
func ParseWorkerCounts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 || v > 64 {
			return nil, fmt.Errorf("experiments: bad worker count %q (want 1..64)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// WorkerFigures returns the figure-17 family: reply-rate and utilisation
// scaling with worker count, and the accept-sharding ablation. Numbers
// continue after the extension figures so identifiers stay unambiguous.
func WorkerFigures() []WorkerFigure {
	return []WorkerFigure{
		{
			ID:     "fig17",
			Number: 17,
			Title:  "Extension: prefork worker scaling, 1500 inactive connections, 3000 req/s offered",
			Paper: "Not in the paper, whose testbed is a uniprocessor. N epoll workers on N CPUs " +
				"(SO_REUSEPORT sharding) should lift the single-worker saturation point near-linearly " +
				"until capacity meets the offered load; per-CPU utilisation falls once it does.",
			Rate:            3000,
			Inactive:        1500,
			Workers:         DefaultWorkerCounts(),
			Curves:          []WorkerCurve{{Label: "reuseport-hash", Mode: prefork.ModeReuseport, Shard: netsim.ShardHash}},
			PlotUtilization: true,
		},
		{
			ID:     "fig18",
			Number: 18,
			Title:  "Extension: accept-sharding policy ablation, 1500 inactive connections, 3000 req/s offered",
			Paper: "Not in the paper. SO_REUSEPORT hash sharding versus idealised round-robin dispatch " +
				"versus the classic single-acceptor handoff: the handoff's serialised accept path and " +
				"per-connection descriptor passing cost it the scaling the in-stack policies keep.",
			Rate:     3000,
			Inactive: 1500,
			Workers:  DefaultWorkerCounts(),
			Curves: []WorkerCurve{
				{Label: "reuseport-hash", Mode: prefork.ModeReuseport, Shard: netsim.ShardHash},
				{Label: "reuseport-rr", Mode: prefork.ModeReuseport, Shard: netsim.ShardRoundRobin},
				{Label: "handoff", Mode: prefork.ModeHandoff, Shard: netsim.ShardHash},
			},
		},
	}
}

// WorkerFigureByID looks a worker-scaling figure up by identifier ("fig17")
// or bare number ("17").
func WorkerFigureByID(id string) (WorkerFigure, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, f := range WorkerFigures() {
		if f.ID == id || fmt.Sprintf("%d", f.Number) == id {
			return f, true
		}
	}
	return WorkerFigure{}, false
}

// WorkerSweepOptions control how a worker-scaling figure is regenerated.
type WorkerSweepOptions struct {
	// Connections per point; zero selects 4000.
	Connections int
	// Workers overrides the figure's worker-count sweep.
	Workers []int
	// Backend, when non-empty, re-parameterises every curve's per-worker
	// event backend. The name must be registry-valid.
	Backend string
	// Workload, when non-empty, runs every point under the named loadgen
	// workload scenario; the name must be valid (loadgen.LookupWorkload).
	Workload string
	// Seed for the load generator.
	Seed int64
	// Progress, when non-nil, receives a line per completed point.
	Progress func(format string, args ...interface{})
}

// WorkerFigureResult holds one regenerated worker-scaling figure.
type WorkerFigureResult struct {
	Figure WorkerFigure
	Series []metrics.Series
	Runs   []RunResult
}

// RunWorkerFigure regenerates one worker-scaling figure by sweeping the
// worker count for each of its curves at the figure's fixed offered rate.
func RunWorkerFigure(fig WorkerFigure, opts WorkerSweepOptions) WorkerFigureResult {
	workers := fig.Workers
	if len(opts.Workers) > 0 {
		workers = opts.Workers
	}
	connections := opts.Connections
	if connections <= 0 {
		connections = 4000
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	out := WorkerFigureResult{Figure: fig}
	for _, curve := range fig.Curves {
		backend := curve.Backend
		if opts.Backend != "" {
			backend = opts.Backend
		}
		label := curve.Label
		if backend != "" && backend != "epoll" {
			label += " [" + backend + "]"
		}
		avg := metrics.Series{Label: label + " (avg)", XLabel: "workers", YLabel: MetricReplyRate.String()}
		min := metrics.Series{Label: label + " (min)", XLabel: "workers", YLabel: MetricReplyRate.String()}
		max := metrics.Series{Label: label + " (max)", XLabel: "workers", YLabel: MetricReplyRate.String()}
		util := metrics.Series{Label: label + " (cpu%)", XLabel: "workers", YLabel: "mean per-CPU utilisation (percent)"}
		for _, n := range workers {
			kind := PreforkKind(n)
			if backend != "" && backend != "epoll" {
				kind = ServerKind(fmt.Sprintf("prefork-%d-%s", n, backend))
			}
			netCfg := netsim.DefaultConfig()
			netCfg.Shard = curve.Shard
			spec := RunSpec{
				Server:      kind,
				RequestRate: fig.Rate,
				Inactive:    fig.Inactive,
				Connections: connections,
				Seed:        seed,
				Workload:    opts.Workload,
				Network:     &netCfg,
				PreforkMode: curve.Mode,
			}
			res := Run(spec)
			out.Runs = append(out.Runs, res)
			x := float64(n)
			avg.Append(x, res.Load.ReplyRate.Mean)
			min.Append(x, res.Load.ReplyRate.Min)
			max.Append(x, res.Load.ReplyRate.Max)
			util.Append(x, 100*res.CPUUtilization)
			if opts.Progress != nil {
				opts.Progress("%s workers=%d %s", fig.ID, n, Describe(res))
			}
		}
		out.Series = append(out.Series, avg, min, max)
		if fig.PlotUtilization {
			out.Series = append(out.Series, util)
		}
	}
	return out
}

// FormatWorkers renders a worker-scaling figure result as an aligned text
// table, the shape Format gives the rate figures.
func FormatWorkers(res WorkerFigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE %d (%s): %s\n", res.Figure.Number, res.Figure.ID, res.Figure.Title)
	fmt.Fprintf(&b, "paper: %s\n", res.Figure.Paper)
	fmt.Fprintf(&b, "metric: %s vs workers at %.0f req/s, %d inactive\n",
		MetricReplyRate, res.Figure.Rate, res.Figure.Inactive)

	xs := map[float64]bool{}
	for _, s := range res.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	counts := make([]float64, 0, len(xs))
	for x := range xs {
		counts = append(counts, x)
	}
	sort.Float64s(counts)

	fmt.Fprintf(&b, "%-12s", "workers")
	for _, s := range res.Series {
		fmt.Fprintf(&b, "%28s", s.Label)
	}
	b.WriteString("\n")
	for _, n := range counts {
		fmt.Fprintf(&b, "%-12.0f", n)
		for _, s := range res.Series {
			if y, ok := s.YAt(n); ok {
				fmt.Fprintf(&b, "%28.1f", y)
			} else {
				fmt.Fprintf(&b, "%28s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
