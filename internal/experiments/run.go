// Package experiments ties the substrate together into the paper's
// evaluation: it builds a simulated testbed (kernel, network, one of the four
// servers, the httperf-like load generator), runs one benchmark point, and
// provides the figure definitions and sweep drivers that regenerate every
// figure of the paper plus the ablation studies described in DESIGN.md.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/epoll"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/servers/hybrid"
	"repro/internal/servers/phhttpd"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
)

// ServerKind selects the server under test.
type ServerKind string

// The servers the repository can benchmark: the paper's four, plus the epoll
// extensions (the mechanism Linux ultimately adopted).
const (
	ServerThttpdPoll    ServerKind = "thttpd-poll"     // stock thttpd on stock poll()
	ServerThttpdDevPoll ServerKind = "thttpd-devpoll"  // thttpd modified to use /dev/poll
	ServerPhhttpd       ServerKind = "phhttpd"         // RT-signal phhttpd
	ServerHybrid        ServerKind = "hybrid"          // the paper's hypothetical hybrid
	ServerThttpdEpoll   ServerKind = "thttpd-epoll"    // thttpd on level-triggered epoll
	ServerThttpdEpollET ServerKind = "thttpd-epoll-et" // thttpd on edge-triggered epoll
	ServerHybridEpoll   ServerKind = "hybrid-epoll"    // hybrid with epoll as the bulk poller
)

// ServerKinds lists all selectable servers.
func ServerKinds() []ServerKind {
	return []ServerKind{
		ServerThttpdPoll, ServerThttpdDevPoll, ServerPhhttpd, ServerHybrid,
		ServerThttpdEpoll, ServerThttpdEpollET, ServerHybridEpoll,
	}
}

// RunSpec describes one benchmark point: one server, one offered rate, one
// inactive-connection load.
type RunSpec struct {
	Server      ServerKind
	RequestRate float64
	Inactive    int
	// Connections is the number of benchmark connections (the paper uses
	// 35000; the test and bench defaults scale this down, which preserves the
	// curve shapes because the run is long enough to reach steady state).
	Connections int
	Seed        int64

	// Cost optionally overrides the calibrated cost model (ablations).
	Cost *simkernel.CostModel
	// Network optionally overrides the testbed configuration.
	Network *netsim.Config
	// DevPollOptions overrides /dev/poll options for thttpd-devpoll and hybrid.
	DevPollOptions *devpoll.Options
	// EpollOptions overrides epoll options for the epoll server kinds.
	EpollOptions *epoll.Options
	// PhhttpdBatchDequeue enables the sigtimedwait4 extension in phhttpd.
	PhhttpdBatchDequeue bool
	// HybridConfig optionally overrides the hybrid server configuration.
	HybridConfig *hybrid.Config
	// RTQueueLimit overrides the RT signal queue limit (phhttpd, hybrid).
	RTQueueLimit int

	// MaxVirtualTime caps the simulated run as a safety net; zero selects a
	// generous default derived from the workload.
	MaxVirtualTime core.Duration
}

// DefaultSpec returns a spec for the given server, rate and inactive load with
// a reduced connection count suitable for tests and benchmarks.
func DefaultSpec(server ServerKind, rate float64, inactive int) RunSpec {
	return RunSpec{
		Server:      server,
		RequestRate: rate,
		Inactive:    inactive,
		Connections: 4000,
		Seed:        1,
	}
}

// RunResult is the outcome of one benchmark point.
type RunResult struct {
	Spec RunSpec

	Load   loadgen.Result
	Server httpcore.Stats

	// Mechanism statistics: Primary is the mechanism the server used most
	// (poll, devpoll or rtsig); Secondary is populated for the two-mechanism
	// servers (phhttpd's recovery poll set, hybrid's RT queue).
	Primary   core.Stats
	Secondary core.Stats

	// Mode/switching information for phhttpd and hybrid.
	FinalMode        string
	Overflows        int64
	Handoffs         int64
	SwitchesToPoll   int64
	SwitchesToSignal int64

	CPUUtilization float64
	VirtualTime    core.Duration
	EventLoops     int64
}

// server is the minimal control surface shared by all four servers.
type serverControl interface {
	Start()
	Stop()
	Stats() httpcore.Stats
}

// Run executes one benchmark point to completion and returns its results.
func Run(spec RunSpec) RunResult {
	if spec.Connections <= 0 {
		spec.Connections = 4000
	}
	if spec.RequestRate <= 0 {
		spec.RequestRate = 500
	}
	k := simkernel.NewKernel(spec.Cost)
	netCfg := netsim.DefaultConfig()
	if spec.Network != nil {
		netCfg = *spec.Network
	}
	net := netsim.New(k, netCfg)

	var (
		ctl        serverControl
		thttpdSrv  *thttpd.Server
		phhttpdSrv *phhttpd.Server
		hybridSrv  *hybrid.Server
	)
	switch spec.Server {
	case ServerThttpdDevPoll:
		cfg := thttpd.DefaultConfig()
		opts := devpoll.DefaultOptions()
		if spec.DevPollOptions != nil {
			opts = *spec.DevPollOptions
		}
		cfg.Mechanism = thttpd.DevPoll(opts)
		thttpdSrv = thttpd.New(k, net, cfg)
		ctl = thttpdSrv
	case ServerThttpdEpoll, ServerThttpdEpollET:
		cfg := thttpd.DefaultConfig()
		opts := epoll.DefaultOptions()
		if spec.EpollOptions != nil {
			opts = *spec.EpollOptions
		}
		opts.EdgeTriggered = spec.Server == ServerThttpdEpollET
		cfg.Mechanism = thttpd.Epoll(opts)
		thttpdSrv = thttpd.New(k, net, cfg)
		ctl = thttpdSrv
	case ServerPhhttpd:
		cfg := phhttpd.DefaultConfig()
		cfg.BatchDequeue = spec.PhhttpdBatchDequeue
		if spec.RTQueueLimit > 0 {
			cfg.QueueLimit = spec.RTQueueLimit
		}
		phhttpdSrv = phhttpd.New(k, net, cfg)
		ctl = phhttpdSrv
	case ServerHybrid, ServerHybridEpoll:
		cfg := hybrid.DefaultConfig()
		if spec.HybridConfig != nil {
			cfg = *spec.HybridConfig
		}
		if spec.DevPollOptions != nil {
			cfg.DevPoll = *spec.DevPollOptions
		}
		if spec.Server == ServerHybridEpoll {
			opts := epoll.DefaultOptions()
			if spec.EpollOptions != nil {
				opts = *spec.EpollOptions
			}
			cfg.Bulk = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
				return epoll.Open(k, p, opts)
			}
		}
		if spec.RTQueueLimit > 0 {
			cfg.QueueLimit = spec.RTQueueLimit
		}
		hybridSrv = hybrid.New(k, net, cfg)
		ctl = hybridSrv
	default: // ServerThttpdPoll
		cfg := thttpd.DefaultConfig()
		cfg.Mechanism = thttpd.StockPoll()
		thttpdSrv = thttpd.New(k, net, cfg)
		ctl = thttpdSrv
	}

	lcfg := loadgen.DefaultConfig(spec.RequestRate, spec.Inactive)
	lcfg.Connections = spec.Connections
	lcfg.Seed = spec.Seed
	// Scaled-down runs (fewer than the paper's 35000 connections) shrink the
	// sampling interval and the client timeout proportionally, so that the
	// ratio of queue-buildup time to client patience — which is what turns an
	// overloaded server into the paper's error percentages — is preserved.
	if spec.Connections < 20000 {
		issue := core.Duration(float64(spec.Connections) / spec.RequestRate * float64(core.Second))
		si := issue / 8
		if si < 500*core.Millisecond {
			si = 500 * core.Millisecond
		}
		if si > 5*core.Second {
			si = 5 * core.Second
		}
		lcfg.SampleInterval = si
		to := core.Duration(float64(5*core.Second) * float64(spec.Connections) / 35000.0)
		if to < core.Second {
			to = core.Second
		}
		lcfg.Timeout = to
	}
	gen := loadgen.New(k, net, lcfg)
	gen.OnDone(func(loadgen.Result) {
		ctl.Stop()
		k.Sim.Stop()
	})

	ctl.Start()
	gen.Start(k.Now())

	deadline := spec.MaxVirtualTime
	if deadline <= 0 {
		// Issue time plus a generous drain allowance.
		issue := core.Duration(float64(spec.Connections)/spec.RequestRate*float64(core.Second)) + 30*core.Second
		deadline = issue * 2
	}
	k.Sim.RunUntil(core.Time(deadline))

	res := RunResult{
		Spec:           spec,
		Load:           gen.Result(),
		Server:         ctl.Stats(),
		VirtualTime:    k.Now().Sub(0),
		CPUUtilization: k.CPU.Utilization(k.Now().Sub(0)),
	}
	switch spec.Server {
	case ServerThttpdPoll, ServerThttpdDevPoll, ServerThttpdEpoll, ServerThttpdEpollET:
		if src, ok := thttpdSrv.Poller().(core.StatsSource); ok {
			res.Primary = src.MechanismStats()
		}
		res.EventLoops = thttpdSrv.Loops
		res.FinalMode = thttpdSrv.Poller().Name()
	case ServerPhhttpd:
		res.Primary = phhttpdSrv.SignalQueue().MechanismStats()
		res.Secondary = phhttpdSrv.PollSet().MechanismStats()
		res.EventLoops = phhttpdSrv.Loops
		res.FinalMode = phhttpdSrv.Mode().String()
		res.Overflows = phhttpdSrv.Overflows
		res.Handoffs = phhttpdSrv.Handoffs
	case ServerHybrid, ServerHybridEpoll:
		if src, ok := hybridSrv.DevPollSet().(core.StatsSource); ok {
			res.Primary = src.MechanismStats()
		}
		res.Secondary = hybridSrv.SignalQueue().MechanismStats()
		res.EventLoops = hybridSrv.Loops
		res.FinalMode = hybridSrv.ModeName()
		res.SwitchesToPoll = hybridSrv.SwitchesToPoll
		res.SwitchesToSignal = hybridSrv.SwitchesToSignal
	}
	return res
}

// Describe renders a short human-readable summary of one run.
func Describe(r RunResult) string {
	return fmt.Sprintf("%-15s %s cpu=%4.0f%% loops=%d mode=%s",
		r.Spec.Server, r.Load.String(), 100*r.CPUUtilization, r.EventLoops, r.FinalMode)
}

// ensure referenced packages stay linked even if a server kind is unused in a
// particular build of the experiments (keeps the import set stable).
var _ = rtsig.DefaultQueueLimit
