// Package experiments ties the substrate together into the paper's
// evaluation: it builds a simulated testbed (kernel, network, one of the
// servers, the httperf-like load generator), runs one benchmark point, and
// provides the figure definitions and sweep drivers that regenerate every
// figure of the paper plus the ablation studies described in DESIGN.md.
package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/compio"
	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/epoll"
	"repro/internal/eventlib"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/servers/dhtnode"
	"repro/internal/servers/httpcore"
	"repro/internal/servers/hybrid"
	"repro/internal/servers/phhttpd"
	"repro/internal/servers/prefork"
	"repro/internal/servers/pushcore"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
)

// ServerKind selects the server under test: a server family, optionally
// parameterised by an eventlib backend name ("thttpd-epoll-et",
// "hybrid-epoll"). The set of valid kinds derives from the backend registry —
// see ServerKinds — rather than a hard-coded enumeration.
type ServerKind string

// The paper's four servers plus the backend-parameterised extensions.
const (
	ServerThttpdPoll    ServerKind = "thttpd-poll"     // stock thttpd on stock poll()
	ServerThttpdDevPoll ServerKind = "thttpd-devpoll"  // thttpd modified to use /dev/poll
	ServerPhhttpd       ServerKind = "phhttpd"         // RT-signal phhttpd
	ServerHybrid        ServerKind = "hybrid"          // the paper's hypothetical hybrid
	ServerThttpdEpoll   ServerKind = "thttpd-epoll"    // thttpd on level-triggered epoll
	ServerThttpdEpollET ServerKind = "thttpd-epoll-et" // thttpd on edge-triggered epoll
	ServerThttpdRtsig   ServerKind = "thttpd-rtsig"    // thttpd on the RT signal queue
	ServerHybridEpoll   ServerKind = "hybrid-epoll"    // hybrid with epoll as the bulk poller
	ServerHybridEpollET ServerKind = "hybrid-epoll-et" // hybrid with edge-triggered epoll bulk
	ServerThttpdCompio  ServerKind = "thttpd-compio"   // thttpd on the completion rings
)

// PreforkKind names the N-worker prefork server: "prefork-N" runs N workers
// on epoll, "prefork-N-<backend>" on the named eventlib backend. Any N >= 1
// resolves; ServerKinds lists the power-of-two sizes.
func PreforkKind(workers int) ServerKind {
	return ServerKind(fmt.Sprintf("prefork-%d", workers))
}

// bulkCapable lists backends able to serve as the hybrid's bulk poller: the
// mechanisms that keep a kernel-resident interest set the server can maintain
// concurrently with RT signal activity (§6's requirement for a cheap switch).
func bulkCapable(name string) bool {
	switch name {
	case "devpoll", "epoll", "epoll-et", "compio":
		return true
	}
	return false
}

// ServerKinds lists all selectable servers: the paper's four first, then the
// extensions generated from the backend registry.
func ServerKinds() []ServerKind {
	kinds := []ServerKind{ServerThttpdPoll, ServerThttpdDevPoll, ServerPhhttpd, ServerHybrid}
	for _, b := range eventlib.Backends() {
		if b.Name == "poll" || b.Name == "devpoll" {
			continue // already listed as the paper's thttpd configurations
		}
		kinds = append(kinds, ServerKind("thttpd-"+b.Name))
	}
	for _, b := range eventlib.Backends() {
		if b.Name == "devpoll" || !bulkCapable(b.Name) {
			continue // plain "hybrid" is the devpoll-bulk configuration
		}
		kinds = append(kinds, ServerKind("hybrid-"+b.Name))
	}
	for _, n := range []int{1, 2, 4, 8} {
		kinds = append(kinds, PreforkKind(n))
	}
	// The millions-mostly-idle families: the server-push daemon and the
	// datagram rendezvous node, each on any registered backend.
	for _, b := range eventlib.Backends() {
		kinds = append(kinds, ServerKind("push-"+b.Name))
	}
	for _, b := range eventlib.Backends() {
		kinds = append(kinds, ServerKind("dht-"+b.Name))
	}
	return kinds
}

// resolvedKind is a parsed ServerKind: the family plus the backend that
// parameterises it (the event backend for thttpd, the bulk poller for hybrid,
// the per-worker backend for prefork) and, for prefork, the worker count.
type resolvedKind struct {
	family  string
	backend string
	workers int
}

// resolveKind parses and validates kind against the family set and the
// eventlib backend registry. The empty kind selects the paper's baseline,
// thttpd on stock poll().
func resolveKind(kind ServerKind) (resolvedKind, error) {
	s := string(kind)
	if s == "" {
		s = string(ServerThttpdPoll)
	}
	switch {
	case s == "phhttpd":
		return resolvedKind{family: "phhttpd"}, nil
	case s == "hybrid":
		return resolvedKind{family: "hybrid", backend: "devpoll"}, nil
	case strings.HasPrefix(s, "thttpd-"):
		name := strings.TrimPrefix(s, "thttpd-")
		if _, ok := eventlib.Lookup(name); ok {
			return resolvedKind{family: "thttpd", backend: name}, nil
		}
	case strings.HasPrefix(s, "hybrid-"):
		name := strings.TrimPrefix(s, "hybrid-")
		if _, ok := eventlib.Lookup(name); ok && bulkCapable(name) {
			return resolvedKind{family: "hybrid", backend: name}, nil
		}
	case strings.HasPrefix(s, "push-"):
		name := strings.TrimPrefix(s, "push-")
		if _, ok := eventlib.Lookup(name); ok {
			return resolvedKind{family: "push", backend: name}, nil
		}
	case strings.HasPrefix(s, "dht-"):
		name := strings.TrimPrefix(s, "dht-")
		if _, ok := eventlib.Lookup(name); ok {
			return resolvedKind{family: "dht", backend: name}, nil
		}
	case strings.HasPrefix(s, "prefork-"):
		rest := strings.TrimPrefix(s, "prefork-")
		count, backend := rest, "epoll"
		if i := strings.IndexByte(rest, '-'); i >= 0 {
			count, backend = rest[:i], rest[i+1:]
		}
		n, err := strconv.Atoi(count)
		if err != nil || n < 1 || n > 64 {
			break
		}
		if _, ok := eventlib.Lookup(backend); ok {
			return resolvedKind{family: "prefork", backend: backend, workers: n}, nil
		}
	}
	return resolvedKind{}, unknownServerKindError(kind)
}

// unknownServerKindError is the single source of the listed-choices error for
// server kinds, mirroring eventlib's for backends.
func unknownServerKindError(kind ServerKind) error {
	names := make([]string, 0, len(ServerKinds()))
	for _, k := range ServerKinds() {
		names = append(names, string(k))
	}
	return fmt.Errorf("experiments: unknown server kind %q (choices: %s)",
		kind, strings.Join(names, ", "))
}

// ValidateServerKind reports whether kind names a runnable server, returning
// the listed-choices error otherwise. Command-line tools call it before
// building specs.
func ValidateServerKind(kind ServerKind) error {
	_, err := resolveKind(kind)
	return err
}

// RetargetKind re-parameterises kind onto the named eventlib backend: thttpd
// kinds switch their event backend, hybrid kinds switch their bulk poller
// when the backend is bulk-capable, and other kinds (phhttpd, a hybrid asked
// for a non-bulk backend) are returned unchanged. Unknown backend names
// produce the registry's listed-choices error.
func RetargetKind(kind ServerKind, backend string) (ServerKind, error) {
	if _, ok := eventlib.Lookup(backend); !ok {
		return kind, eventlib.UnknownBackendError(backend)
	}
	rk, err := resolveKind(kind)
	if err != nil {
		return kind, err
	}
	switch rk.family {
	case "thttpd":
		return ServerKind("thttpd-" + backend), nil
	case "push":
		return ServerKind("push-" + backend), nil
	case "dht":
		return ServerKind("dht-" + backend), nil
	case "hybrid":
		if backend == "devpoll" {
			return ServerHybrid, nil
		}
		if bulkCapable(backend) {
			return ServerKind("hybrid-" + backend), nil
		}
	case "prefork":
		if backend == "epoll" {
			return PreforkKind(rk.workers), nil
		}
		return ServerKind(fmt.Sprintf("prefork-%d-%s", rk.workers, backend)), nil
	}
	return kind, nil
}

// RunSpec describes one benchmark point: one server, one offered rate, one
// inactive-connection load.
type RunSpec struct {
	Server      ServerKind
	RequestRate float64
	Inactive    int
	// Connections is the number of benchmark connections (the paper uses
	// 35000; the test and bench defaults scale this down, which preserves the
	// curve shapes because the run is long enough to reach steady state).
	// When RequestsPerConn > 1 it counts offered requests instead: the run
	// launches Connections/RequestsPerConn persistent connections, so the
	// total work and issue window match an HTTP/1.0 run of the same spec.
	Connections int
	Seed        int64
	// Workload names the loadgen workload scenario (arrival process,
	// background-population behavior, RTT distribution); empty selects the
	// paper's constant workload. See loadgen.Workloads.
	Workload string

	// HTTP selects the server's persistent-connection features (keep-alive,
	// pipelining budget, response cache, write path) for every family; the
	// zero value is the historical one-request HTTP/1.0 server.
	HTTP httpcore.Options
	// RequestsPerConn makes each client connection issue N HTTP/1.1 requests
	// (final one Connection: close); 0 or 1 keeps the HTTP/1.0 client.
	// RequestRate remains the request rate — connections launch at rate/N.
	RequestsPerConn int
	// PipelineDepth is how many requests the keep-alive client keeps
	// outstanding; 0 or 1 is the serial request-response client.
	PipelineDepth int
	// Client carries the collapsed per-client knobs straight through to
	// loadgen.Config.Profile; non-zero profile fields win over the flat
	// RequestsPerConn/PipelineDepth fields above (which remain for
	// compatibility with the figure definitions).
	Client loadgen.ClientProfile

	// FanoutSize overrides the push workload's per-tick fan-out (push-* server
	// kinds); zero keeps the workload's own value. The push server's tick
	// interval derives from it: FanoutSize pushes per tick at RequestRate
	// deliveries per second overall.
	FanoutSize int
	// ChurnRate overrides the churn workload's peer join rate in peers/second
	// (dht-* server kinds); zero keeps the workload's own value.
	ChurnRate float64

	// Faults configures the deterministic fault-injection plane (EINTR storms,
	// spurious EAGAIN, a descriptor limit, connection resets, vanishing
	// peers). The zero value injects nothing and charges nothing, leaving
	// every fault-free figure byte-identical.
	Faults faults.Config

	// Cost optionally overrides the calibrated cost model (ablations).
	Cost *simkernel.CostModel
	// Network optionally overrides the testbed configuration.
	Network *netsim.Config
	// DevPollOptions overrides /dev/poll options for thttpd-devpoll and hybrid.
	DevPollOptions *devpoll.Options
	// EpollOptions overrides epoll options for the epoll server kinds.
	EpollOptions *epoll.Options
	// CompioOptions overrides completion-ring options for the compio server
	// kinds (SQ batch size and registered-buffer ablations).
	CompioOptions *compio.Options
	// PhhttpdBatchDequeue enables the sigtimedwait4 extension in phhttpd.
	PhhttpdBatchDequeue bool
	// HybridConfig optionally overrides the hybrid server configuration.
	HybridConfig *hybrid.Config
	// PreforkMode selects the prefork accept-distribution architecture
	// (reuseport by default; handoff for the single-acceptor comparison).
	PreforkMode prefork.Mode
	// PreforkConfig optionally overrides the prefork configuration wholesale;
	// Workers and Backend still come from the ServerKind.
	PreforkConfig *prefork.Config
	// RTQueueLimit overrides the RT signal queue limit (phhttpd, hybrid).
	RTQueueLimit int

	// Threads is the number of OS threads driving the simulation. 1 (or 0)
	// selects the sequential engine; N >= 2 shards the event kernel into one
	// lane per simulated CPU plus a driver lane, synchronised by RTT
	// lookahead, and runs it on N goroutines. Figures are byte-identical
	// across thread counts. Configurations the sharded engine cannot host
	// (round-robin listener sharding, prefork handoff mode, a TIME-WAIT
	// shorter than the lookahead window) silently run sequentially.
	Threads int

	// MaxVirtualTime caps the simulated run as a safety net; zero selects a
	// generous default derived from the workload.
	MaxVirtualTime core.Duration
}

// DefaultSpec returns a spec for the given server, rate and inactive load with
// a reduced connection count suitable for tests and benchmarks.
func DefaultSpec(server ServerKind, rate float64, inactive int) RunSpec {
	return RunSpec{
		Server:      server,
		RequestRate: rate,
		Inactive:    inactive,
		Connections: 4000,
		Seed:        1,
	}
}

// RunResult is the outcome of one benchmark point.
type RunResult struct {
	Spec RunSpec

	Load   loadgen.Result
	Server httpcore.Stats

	// Mechanism statistics: Primary is the mechanism the server used most
	// (poll, devpoll or rtsig); Secondary is populated for the two-mechanism
	// servers (phhttpd's recovery poll set, hybrid's RT queue).
	Primary   core.Stats
	Secondary core.Stats

	// Mode/switching information for phhttpd and hybrid.
	FinalMode        string
	Overflows        int64
	Handoffs         int64
	SwitchesToPoll   int64
	SwitchesToSignal int64

	// Latency is the client-observed connection-latency percentile summary
	// (identical to Load.Latency, surfaced here so figure and gate tooling
	// need not reach into the loadgen result); ServiceLatency is the
	// server-side accept-to-response-written distribution measured inside
	// the dispatch path, merged across prefork workers.
	Latency        metrics.LatencyPercentiles
	ServiceLatency metrics.LatencyPercentiles

	// CPUUtilization is the mean per-CPU utilisation over each CPU's work
	// window — identical to the single CPU's utilisation on a uniprocessor
	// run. PerCPUUtilization holds the per-core values; Workers the prefork
	// worker count (1 for the single-process servers); PerWorkerServed the
	// served-request balance the accept sharding achieved.
	CPUUtilization    float64
	PerCPUUtilization []float64
	Workers           int
	PerWorkerServed   []int64
	VirtualTime       core.Duration
	EventLoops        int64

	// Threads is the number of OS threads that actually drove the run: the
	// spec's request, downgraded to 1 when the configuration was ineligible
	// for the sharded engine.
	Threads int
}

// benchServer is the control surface a family builder returns: server
// lifecycle plus the family-specific result extraction.
type benchServer interface {
	Start()
	Stop()
	Stats() httpcore.Stats
	fill(res *RunResult)
}

type thttpdRun struct{ *thttpd.Server }

func (r thttpdRun) fill(res *RunResult) {
	if src, ok := r.Poller().(core.StatsSource); ok {
		res.Primary = src.MechanismStats()
	}
	res.EventLoops = r.Loops()
	res.FinalMode = r.Poller().Name()
	res.ServiceLatency = r.Handler().ServiceLatency.Percentiles()
}

type phhttpdRun struct{ *phhttpd.Server }

func (r phhttpdRun) fill(res *RunResult) {
	res.Primary = r.SignalQueue().MechanismStats()
	res.Secondary = r.PollSet().MechanismStats()
	res.EventLoops = r.Loops()
	res.FinalMode = r.Mode().String()
	res.Overflows = r.Overflows
	res.Handoffs = r.Handoffs
	res.ServiceLatency = r.Handler().ServiceLatency.Percentiles()
}

type preforkRun struct{ *prefork.Server }

func (r preforkRun) fill(res *RunResult) {
	res.Primary = r.MechanismStats()
	res.EventLoops = r.Loops()
	res.FinalMode = fmt.Sprintf("prefork-%d/%s/%s",
		r.Config().Workers, r.Config().Backend, r.Config().Mode)
	res.Workers = r.Config().Workers
	res.PerWorkerServed = r.PerWorkerServed()
	res.Handoffs = r.Handoffs
	merged := r.ServiceLatency()
	res.ServiceLatency = merged.Percentiles()
}

type hybridRun struct{ *hybrid.Server }

func (r hybridRun) fill(res *RunResult) {
	if src, ok := r.DevPollSet().(core.StatsSource); ok {
		res.Primary = src.MechanismStats()
	}
	res.Secondary = r.SignalQueue().MechanismStats()
	res.EventLoops = r.Loops()
	res.FinalMode = r.ModeName()
	res.SwitchesToPoll = r.SwitchesToPoll
	res.SwitchesToSignal = r.SwitchesToSignal
	res.ServiceLatency = r.Handler().ServiceLatency.Percentiles()
}

// pushRun adapts the server-push daemon to the benchServer surface. Its
// application counters map onto the HTTP stats shape so figure and gate
// tooling read every family uniformly: Served counts subscribed members,
// Pushed the server-originated deliveries.
type pushRun struct{ *pushcore.Server }

func (r pushRun) Stats() httpcore.Stats {
	st := r.Server.Stats()
	return httpcore.Stats{
		Accepted:  st.Accepted,
		Served:    st.Subscribed,
		Pushed:    st.Pushed,
		BytesSent: st.BytesSent,
		Closed:    st.Closed,
	}
}

func (r pushRun) fill(res *RunResult) {
	if src, ok := r.Poller().(core.StatsSource); ok {
		res.Primary = src.MechanismStats()
	}
	res.EventLoops = r.Loops()
	res.FinalMode = r.Poller().Name()
}

// dhtRun adapts the datagram rendezvous node: Accepted counts peer joins,
// Served the pongs sent, IdleCloses the sessions the sweep expired.
type dhtRun struct{ *dhtnode.Server }

func (r dhtRun) Stats() httpcore.Stats {
	st := r.Server.Stats()
	return httpcore.Stats{
		Accepted:   st.Joins,
		Served:     st.Pongs,
		IdleCloses: st.Expired,
		Closed:     st.Expired,
	}
}

func (r dhtRun) fill(res *RunResult) {
	if src, ok := r.Poller().(core.StatsSource); ok {
		res.Primary = src.MechanismStats()
	}
	res.EventLoops = r.Loops()
	res.FinalMode = r.Poller().Name()
}

// buildServer constructs the server a resolved kind names. The workload
// carries the push/churn-family knobs the non-HTTP servers derive their
// configuration from.
func buildServer(spec RunSpec, wl loadgen.Workload, rk resolvedKind, k *simkernel.Kernel, net *netsim.Network) benchServer {
	switch rk.family {
	case "push":
		cfg := pushcore.DefaultConfig()
		cfg.Backend = rk.backend
		if wl.FanoutSize > 0 {
			cfg.FanoutSize = wl.FanoutSize
		}
		if wl.PushPayload > 0 {
			cfg.Payload = wl.PushPayload
		}
		cfg.Seed = uint64(spec.Seed)
		// RequestRate is the offered delivery rate: one tick pushes
		// FanoutSize payloads, so the tick period is FanoutSize/rate.
		cfg.TickInterval = core.Duration(float64(cfg.FanoutSize) / spec.RequestRate * float64(core.Second))
		return pushRun{pushcore.New(k, net, cfg)}
	case "dht":
		cfg := dhtnode.DefaultConfig()
		cfg.Backend = rk.backend
		if wl.PingSize > 0 {
			cfg.PongSize = wl.PingSize
		}
		if wl.PeerTimeout > 0 {
			cfg.PeerTimeout = wl.PeerTimeout
		}
		return dhtRun{dhtnode.New(k, net, cfg)}
	case "prefork":
		cfg := prefork.DefaultConfig(rk.workers)
		if spec.PreforkConfig != nil {
			cfg = *spec.PreforkConfig
		}
		cfg.Workers = rk.workers
		cfg.Backend = rk.backend
		if spec.PreforkConfig == nil {
			cfg.Mode = spec.PreforkMode
		}
		applyHTTP(&cfg.HTTP, spec)
		return preforkRun{prefork.New(k, net, cfg)}
	case "phhttpd":
		cfg := phhttpd.DefaultConfig()
		cfg.BatchDequeue = spec.PhhttpdBatchDequeue
		if spec.RTQueueLimit > 0 {
			cfg.QueueLimit = spec.RTQueueLimit
		}
		applyHTTP(&cfg.HTTP, spec)
		return phhttpdRun{phhttpd.New(k, net, cfg)}
	case "hybrid":
		cfg := hybrid.DefaultConfig()
		if spec.HybridConfig != nil {
			cfg = *spec.HybridConfig
		}
		if spec.DevPollOptions != nil {
			cfg.DevPoll = *spec.DevPollOptions
		}
		switch {
		case rk.backend == "" || rk.backend == "devpoll":
			// /dev/poll bulk poller from cfg.DevPoll.
		case spec.EpollOptions != nil && strings.HasPrefix(rk.backend, "epoll"):
			opts := *spec.EpollOptions
			opts.EdgeTriggered = rk.backend == "epoll-et"
			cfg.Bulk = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
				return epoll.Open(k, p, opts)
			}
		case spec.CompioOptions != nil && rk.backend == "compio":
			opts := *spec.CompioOptions
			cfg.Bulk = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
				return compio.Open(k, p, opts)
			}
		default:
			cfg.BulkBackend = rk.backend
		}
		if spec.RTQueueLimit > 0 {
			cfg.QueueLimit = spec.RTQueueLimit
		}
		applyHTTP(&cfg.HTTP, spec)
		return hybridRun{hybrid.New(k, net, cfg)}
	default: // thttpd
		cfg := thttpd.DefaultConfig()
		cfg.Backend = rk.backend
		switch {
		case spec.DevPollOptions != nil && rk.backend == "devpoll":
			opts := *spec.DevPollOptions
			cfg.OpenPoller = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
				return devpoll.Open(k, p, opts)
			}
		case spec.EpollOptions != nil && strings.HasPrefix(rk.backend, "epoll"):
			opts := *spec.EpollOptions
			opts.EdgeTriggered = rk.backend == "epoll-et"
			cfg.OpenPoller = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
				return epoll.Open(k, p, opts)
			}
		case spec.CompioOptions != nil && rk.backend == "compio":
			opts := *spec.CompioOptions
			cfg.OpenPoller = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
				return compio.Open(k, p, opts)
			}
		}
		applyHTTP(&cfg.HTTP, spec)
		return thttpdRun{thttpd.New(k, net, cfg)}
	}
}

// applyHTTP copies the spec's persistent-connection options into a server
// configuration. A zero spec.HTTP leaves the configuration's own value alone,
// so wholesale config overrides (PreforkConfig, HybridConfig) keep theirs.
func applyHTTP(dst *httpcore.Options, spec RunSpec) {
	if spec.HTTP != (httpcore.Options{}) {
		*dst = spec.HTTP
	}
}

// Run executes one benchmark point to completion and returns its results. The
// spec's ServerKind must be valid; Run panics with the listed-choices error
// otherwise. Callers handling user input use RunE or ValidateServerKind.
func Run(spec RunSpec) RunResult {
	res, err := RunE(spec)
	if err != nil {
		panic(err)
	}
	return res
}

// RunE executes one benchmark point, returning the registry's listed-choices
// error for an unknown ServerKind.
func RunE(spec RunSpec) (RunResult, error) {
	rk, err := resolveKind(spec.Server)
	if err != nil {
		return RunResult{}, err
	}
	workload, ok := loadgen.LookupWorkload(spec.Workload)
	if !ok {
		return RunResult{}, loadgen.UnknownWorkloadError(spec.Workload)
	}
	if err := checkFamilyPairing(rk, workload); err != nil {
		return RunResult{}, err
	}
	if spec.FanoutSize > 0 {
		workload.FanoutSize = spec.FanoutSize
	}
	if spec.ChurnRate > 0 {
		workload.ChurnRate = spec.ChurnRate
	}
	if spec.Connections <= 0 {
		spec.Connections = 4000
	}
	if spec.RequestRate <= 0 {
		spec.RequestRate = 500
	}
	// Keep-alive runs hold the request budget constant: Connections counts
	// offered requests, so N requests per connection means 1/N as many
	// connections, launched at 1/N the rate by the generator. Offered load,
	// total work and issue window all match the HTTP/1.0 curve of the same
	// figure — the comparison isolates the per-connection costs (accept,
	// interest-set registration, teardown) that persistence amortises. The
	// profile's request count wins over the flat field, mirroring loadgen's
	// merge; the non-request families have no request budget to normalise.
	requests := spec.Connections
	rpc := spec.RequestsPerConn
	if spec.Client.RequestsPerConn > 0 {
		rpc = spec.Client.RequestsPerConn
	}
	if workload.Kind == loadgen.KindRequest && rpc > 1 {
		spec.Connections = (spec.Connections + rpc - 1) / rpc
	}
	ncpu := rk.workers
	if ncpu < 1 {
		ncpu = 1
	}
	k := simkernel.NewKernelSMP(spec.Cost, ncpu)
	k.Faults = spec.Faults
	netCfg := netsim.DefaultConfig()
	if spec.Network != nil {
		netCfg = *spec.Network
	}
	if workload.Kind == loadgen.KindPush && netCfg.ListenBacklog < spec.Connections {
		// The push workload front-loads its entire population: members connect
		// at MemberRate (tens of thousands per second) before measurement
		// starts, which is not the arrival process under test — the fan-out
		// is. Let the whole population queue rather than refuse the ramp.
		netCfg.ListenBacklog = spec.Connections
	}

	lcfg := loadgen.DefaultConfig(spec.RequestRate, spec.Inactive)
	lcfg.Connections = spec.Connections
	lcfg.Seed = spec.Seed
	lcfg.Workload = workload
	lcfg.RequestsPerConn = spec.RequestsPerConn
	lcfg.PipelineDepth = spec.PipelineDepth
	lcfg.Profile = spec.Client
	// The work window is how long the run's traffic takes to offer: the issue
	// window for the request family, the member ramp plus the delivery budget
	// for push, the join window plus one peer's ping lifetime for churn. It
	// paces the sampling interval and bounds the virtual-time safety net.
	work := workWindow(spec, workload, requests)
	// Scaled-down runs (fewer than the paper's 35000 connections) shrink the
	// sampling interval and the client timeout proportionally, so that the
	// ratio of queue-buildup time to client patience — which is what turns an
	// overloaded server into the paper's error percentages — is preserved.
	if requests < 20000 {
		si := work / 8
		if si < 500*core.Millisecond {
			si = 500 * core.Millisecond
		}
		if si > 5*core.Second {
			si = 5 * core.Second
		}
		lcfg.SampleInterval = si
		to := core.Duration(float64(5*core.Second) * float64(requests) / 35000.0)
		if to < core.Second {
			to = core.Second
		}
		lcfg.Timeout = to
	}

	threads := parallelThreads(spec, rk, netCfg, lcfg)
	if threads > 1 {
		// One lane per simulated CPU plus a driver lane for the load
		// generator, the rng and the port/TIME-WAIT accounting; cross-lane
		// traffic (SYNs, port releases) is covered by half the shortest RTT.
		k.EnableParallel(ncpu+1, threads, minRTT(netCfg, lcfg)/2)
	}
	net := netsim.New(k, netCfg)
	if threads > 1 {
		net.Parallelize()
	}

	srv := buildServer(spec, workload, rk, k, net)
	gen := loadgen.New(k, net, lcfg)
	if pr, ok := srv.(pushRun); ok {
		// The generator anchors delivery latency at push initiation.
		pr.OnDeliver = gen.PushDeliver
	}
	gen.OnDone(func(loadgen.Result) {
		srv.Stop()
		k.Sim.Stop()
	})

	srv.Start()
	gen.Start(k.Now())

	deadline := spec.MaxVirtualTime
	if deadline <= 0 {
		// Work window plus a generous drain allowance.
		deadline = (work + 30*core.Second) * 2
	}
	k.Sim.RunUntil(core.Time(deadline))

	res := RunResult{
		Spec:              spec,
		Load:              gen.Result(),
		Server:            srv.Stats(),
		VirtualTime:       k.Now().Sub(0),
		PerCPUUtilization: k.Sched.Utilizations(k.Now()),
		Workers:           1,
		Threads:           threads,
	}
	for _, u := range res.PerCPUUtilization {
		// CPU.Utilization no longer clamps, so a ratio above 1 over the work
		// window can only mean a batch was charged twice — fail loudly rather
		// than report corrupted utilisation alongside otherwise-plausible
		// throughput numbers.
		if u > 1 {
			panic(fmt.Sprintf("experiments: CPU utilisation %.6f > 1 — a batch was double-charged", u))
		}
		res.CPUUtilization += u
	}
	res.CPUUtilization /= float64(len(res.PerCPUUtilization))
	res.Latency = res.Load.Latency
	srv.fill(&res)
	return res, nil
}

// checkFamilyPairing rejects a server kind driven by the wrong traffic
// family: the push daemon cannot parse HTTP requests, the HTTP servers
// cannot answer datagram pings, and silently running the mismatch would
// produce all-error results that look like a mechanism collapse.
func checkFamilyPairing(rk resolvedKind, wl loadgen.Workload) error {
	want := loadgen.KindRequest
	switch rk.family {
	case "push":
		want = loadgen.KindPush
	case "dht":
		want = loadgen.KindDHTChurn
	}
	if wl.Kind != want {
		return fmt.Errorf("experiments: server family %q serves %q traffic, but workload %q drives %q (pair push-* kinds with the push workload, dht-* kinds with dhtchurn, HTTP kinds with the request workloads)",
			rk.family, want, wl.Name, wl.Kind)
	}
	return nil
}

// workWindow is the virtual-time span the spec's traffic takes to offer.
// The request family issues requests/rate seconds of connections; push ramps
// the member population at MemberRate and then spends its delivery budget at
// RequestRate; churn joins peers at ChurnRate and the last peer still pings
// through its quota afterwards.
func workWindow(spec RunSpec, wl loadgen.Workload, requests int) core.Duration {
	switch wl.Kind {
	case loadgen.KindPush:
		mr := wl.MemberRate
		if mr <= 0 {
			mr = 50000
		}
		ramp := core.Duration(float64(requests)/mr*float64(core.Second)) + 400*core.Millisecond
		return ramp + core.Duration(float64(requests)/spec.RequestRate*float64(core.Second))
	case loadgen.KindDHTChurn:
		churn := wl.ChurnRate
		if churn <= 0 {
			churn = 100
		}
		interval := wl.PingInterval
		if interval <= 0 {
			interval = 500 * core.Millisecond
		}
		quota := spec.RequestRate / churn
		if quota < 1 {
			quota = 1
		}
		join := core.Duration(float64(requests) / churn * float64(core.Second))
		return join + core.Duration(quota*float64(interval))
	default:
		return core.Duration(float64(requests) / spec.RequestRate * float64(core.Second))
	}
}

// minRTT returns the shortest round-trip time any connection in the run can
// be configured with: the bound on how early a SYN launched on the driver
// lane can reach a server lane, and therefore the basis of the sharded
// engine's lookahead window.
func minRTT(netCfg netsim.Config, lcfg loadgen.Config) core.Duration {
	min := netCfg.DefaultRTT
	if min <= 0 {
		min = 200 * core.Microsecond // netsim.New's default
	}
	consider := func(d core.Duration) {
		if d > 0 && d < min {
			min = d
		}
	}
	consider(lcfg.ActiveRTT)
	consider(lcfg.InactiveRTT)
	for _, band := range lcfg.Workload.RTTMix {
		consider(band.RTT)
	}
	return min
}

// parallelThreads resolves the spec's thread request against the sharded
// engine's eligibility rules, returning 1 (sequential) when the configuration
// cannot be parallelised: round-robin listener sharding mutates shared state
// per connection, prefork handoff adopts connections across workers, and a
// TIME-WAIT shorter than the lookahead window cannot defer port releases.
func parallelThreads(spec RunSpec, rk resolvedKind, netCfg netsim.Config, lcfg loadgen.Config) int {
	if spec.Threads < 2 {
		return 1
	}
	if netCfg.Shard == netsim.ShardRoundRobin {
		return 1
	}
	if rk.family == "prefork" {
		mode := spec.PreforkMode
		if spec.PreforkConfig != nil {
			mode = spec.PreforkConfig.Mode
		}
		if mode == prefork.ModeHandoff {
			return 1
		}
	}
	tw := netCfg.TimeWait
	if tw <= 0 {
		tw = netsim.DefaultConfig().TimeWait
	}
	if tw < minRTT(netCfg, lcfg)/2 {
		return 1
	}
	return spec.Threads
}

// Describe renders a short human-readable summary of one run.
func Describe(r RunResult) string {
	return fmt.Sprintf("%-15s %s cpu=%4.0f%% loops=%d mode=%s",
		r.Spec.Server, r.Load.String(), 100*r.CPUUtilization, r.EventLoops, r.FinalMode)
}
