package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/servers/httpcore"
)

// MetricKind selects what a figure plots on its y axis.
type MetricKind int

// Metrics plotted by the paper's figures.
const (
	MetricReplyRate     MetricKind = iota // average/min/max reply rate (FIGS 4-9, 11-13)
	MetricErrorPercent                    // percentage of failed connections (FIG 10)
	MetricMedianLatency                   // median connection time in ms (FIG 14)
)

// String names the metric.
func (m MetricKind) String() string {
	switch m {
	case MetricReplyRate:
		return "reply rate (replies/s)"
	case MetricErrorPercent:
		return "errors (percent)"
	case MetricMedianLatency:
		return "median connection time (ms)"
	default:
		return "unknown"
	}
}

// Curve is one plotted configuration within a figure.
type Curve struct {
	Label    string
	Server   ServerKind
	Inactive int

	// HTTP, RequestsPerConn and PipelineDepth give the curve its own
	// persistent-connection configuration (the keep-alive figure family,
	// figs 32-35); zero values select the HTTP/1.0 paths or the sweep-level
	// overrides.
	HTTP            httpcore.Options
	RequestsPerConn int
	PipelineDepth   int
}

// Figure describes one of the paper's evaluation figures and how to
// regenerate it.
type Figure struct {
	ID     string // "fig04" ... "fig14"
	Number int
	Title  string
	// Paper summarises what the original figure showed, so EXPERIMENTS.md can
	// compare shape against the reproduction.
	Paper  string
	Metric MetricKind
	Rates  []float64
	Curves []Curve
}

// DefaultRates is the request-rate sweep used by every figure (the paper's x
// axis runs from 500 to 1100 requests per second).
func DefaultRates() []float64 {
	return []float64{500, 600, 700, 800, 900, 1000, 1100}
}

// Figures returns the full set of figure definitions, in paper order.
func Figures() []Figure {
	rates := DefaultRates()
	replyFig := func(num int, server ServerKind, inactive int, title, paper string) Figure {
		return Figure{
			ID:     fmt.Sprintf("fig%02d", num),
			Number: num,
			Title:  title,
			Paper:  paper,
			Metric: MetricReplyRate,
			Rates:  rates,
			Curves: []Curve{{Label: string(server), Server: server, Inactive: inactive}},
		}
	}
	return []Figure{
		replyFig(4, ServerThttpdPoll, 1,
			"Stock thttpd with poll(), 1 inactive connection",
			"Server performs well until a high enough request rate, then breaks down as processing latency exceeds the request rate."),
		replyFig(5, ServerThttpdDevPoll, 1,
			"thttpd with /dev/poll, 1 inactive connection",
			"Performs well at all request rates; no point where processing latency exceeds request rate."),
		replyFig(6, ServerThttpdPoll, 251,
			"Stock thttpd with poll(), 251 inactive connections",
			"Breaks down sooner as inactive-connection load increases; minimum response rates hit zero in several places."),
		replyFig(7, ServerThttpdDevPoll, 251,
			"thttpd with /dev/poll, 251 inactive connections",
			"Performs almost as well as with no inactive connections."),
		replyFig(8, ServerThttpdPoll, 501,
			"Stock thttpd with poll(), 501 inactive connections",
			"Latency due to inactive connections dominates at all request rates: poor performance and high error rates."),
		replyFig(9, ServerThttpdDevPoll, 501,
			"thttpd with /dev/poll, 501 inactive connections",
			"Handles the high inactive load with ease; performance begins to break down only at extreme request rates."),
		{
			ID:     "fig10",
			Number: 10,
			Title:  "Connection error rate, stock poll() vs /dev/poll, 251 and 501 inactive connections",
			Paper:  "Stock thttpd's error rate climbs toward ~60% of connections; thttpd with /dev/poll shows only sporadic errors (none at 251).",
			Metric: MetricErrorPercent,
			Rates:  rates,
			Curves: []Curve{
				{Label: "normal poll, load 251", Server: ServerThttpdPoll, Inactive: 251},
				{Label: "devpoll, load 251", Server: ServerThttpdDevPoll, Inactive: 251},
				{Label: "normal poll, load 501", Server: ServerThttpdPoll, Inactive: 501},
				{Label: "devpoll, load 501", Server: ServerThttpdDevPoll, Inactive: 501},
			},
		},
		replyFig(11, ServerPhhttpd, 1,
			"phhttpd (RT signals), 1 inactive connection",
			"Compares with the best servers at lower rates; very high request rates make it falter due to per-signal system-call overhead."),
		replyFig(12, ServerPhhttpd, 251,
			"phhttpd (RT signals), 251 inactive connections",
			"Reaches its performance knee sooner; inactive connections unexpectedly increase the cost of handling active ones."),
		replyFig(13, ServerPhhttpd, 501,
			"phhttpd (RT signals), 501 inactive connections",
			"Inactive-connection load affects throughput at all request rates; scales less well than thttpd with /dev/poll."),
		{
			ID:     "fig14",
			Number: 14,
			Title:  "Median connection time, 251 inactive connections",
			Paper:  "phhttpd responds 1-3 ms faster than thttpd+/dev/poll up to ~900 req/s, then its median latency jumps past 120 ms while thttpd+/dev/poll stays steady; stock poll sits above both.",
			Metric: MetricMedianLatency,
			Rates:  rates,
			Curves: []Curve{
				{Label: "devpoll", Server: ServerThttpdDevPoll, Inactive: 251},
				{Label: "normal poll", Server: ServerThttpdPoll, Inactive: 251},
				{Label: "phhttpd", Server: ServerPhhttpd, Inactive: 251},
			},
		},
	}
}

// ExtensionFigures returns figures that go beyond the paper: the epoll curves
// the follow-up literature made the obvious next measurement. Extension
// figures use numbers above the paper's 14 so identifiers stay unambiguous.
func ExtensionFigures() []Figure {
	rates := DefaultRates()
	return []Figure{
		{
			ID:     "fig15",
			Number: 15,
			Title:  "Extension: thttpd with epoll (level-triggered), 501 inactive connections",
			Paper:  "Not in the paper. epoll's O(ready) wait should match or beat /dev/poll under heavy inactive load.",
			Metric: MetricReplyRate,
			Rates:  rates,
			Curves: []Curve{{Label: string(ServerThttpdEpoll), Server: ServerThttpdEpoll, Inactive: 501}},
		},
		{
			ID:     "fig16",
			Number: 16,
			Title:  "Extension: event mechanisms compared at 501 inactive connections",
			Paper:  "Not in the paper. Stock poll collapses, /dev/poll and both epoll modes sustain the load.",
			Metric: MetricReplyRate,
			Rates:  rates,
			Curves: []Curve{
				{Label: "normal poll", Server: ServerThttpdPoll, Inactive: 501},
				{Label: "devpoll", Server: ServerThttpdDevPoll, Inactive: 501},
				{Label: "epoll", Server: ServerThttpdEpoll, Inactive: 501},
				{Label: "epoll-et", Server: ServerThttpdEpollET, Inactive: 501},
			},
		},
	}
}

// AllFigures returns the paper's figures followed by the extension figures.
func AllFigures() []Figure {
	return append(Figures(), ExtensionFigures()...)
}

// FigureByID looks a figure up by its "fig04"-style identifier or by its bare
// number ("4"), searching the paper's figures and the extensions.
func FigureByID(id string) (Figure, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, f := range AllFigures() {
		if f.ID == id || fmt.Sprintf("%d", f.Number) == id {
			return f, true
		}
	}
	return Figure{}, false
}

// SweepOptions control how a figure is regenerated.
type SweepOptions struct {
	// Connections per point; zero selects 4000 (the scaled-down default). Use
	// 35000 to reproduce the paper's full procedure.
	Connections int
	// Rates overrides the figure's request-rate sweep (useful for quick runs).
	Rates []float64
	// Backend, when non-empty, re-parameterises each curve's server onto the
	// named eventlib backend (see RetargetKind): thttpd curves switch their
	// event backend, hybrid curves their bulk poller. The name must be valid —
	// callers validate it against the registry first.
	Backend string
	// Workload, when non-empty, re-runs every point under the named loadgen
	// workload scenario (arrival process, background behavior, RTT mix). The
	// name must be valid — callers validate it via loadgen.LookupWorkload
	// first; Run panics on an unknown name, like Backend.
	Workload string
	// Seed for the load generator.
	Seed int64
	// KeepAlive, RequestsPerConn, PipelineDepth, CacheKB and WriteMode apply
	// a persistent-connection configuration to every curve that does not
	// carry its own (the -keepalive/-requests-per-conn/-pipeline-depth/
	// -cache-kb/-write-mode flags). RequestsPerConn > 1 or PipelineDepth > 1
	// implies KeepAlive; KeepAlive alone defaults to 8 requests per
	// connection.
	KeepAlive       bool
	RequestsPerConn int
	PipelineDepth   int
	CacheKB         int
	WriteMode       httpcore.WriteMode

	// Fanout overrides the push workload's per-tick fan-out on push-* curves
	// and ChurnRate the churn workload's join rate on dht-* curves (the
	// -fanout and -churn-rate flags). Zero keeps the workload's own values; a
	// figure's own churn axis (fig39) wins over ChurnRate.
	Fanout    int
	ChurnRate float64

	// Faults applies a fault-injection configuration to every point (the
	// -fault-* flags). A chaos figure's own base config and swept axis win
	// over it; the zero value injects nothing.
	Faults faults.Config

	// Retry enables the load generator's deterministic capped-exponential-
	// backoff retry on every point (the -retry flag); off by default.
	Retry bool

	// Threads is the number of OS threads driving each point's simulation;
	// values below 2 select the sequential engine. Deterministic metrics are
	// byte-identical across thread counts (see RunSpec.Threads).
	Threads int
	// Progress, when non-nil, receives a line per completed point.
	Progress func(format string, args ...interface{})
}

// FigureResult holds everything needed to print or compare one regenerated
// figure.
type FigureResult struct {
	Figure Figure
	// Series holds one labelled series per plotted line. Reply-rate figures
	// produce three series per curve (average, minimum, maximum), mirroring the
	// error bars and min/max marks in the paper's graphs.
	Series []metrics.Series
	// Runs holds the raw per-point results, keyed in sweep order.
	Runs []RunResult
}

// RunFigure regenerates one figure by sweeping the request rate for each of
// its curves.
func RunFigure(fig Figure, opts SweepOptions) FigureResult {
	rates := fig.Rates
	if len(opts.Rates) > 0 {
		rates = opts.Rates
	}
	connections := opts.Connections
	if connections <= 0 {
		connections = 4000
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	out := FigureResult{Figure: fig}
	for _, curve := range fig.Curves {
		if opts.Backend != "" {
			kind, err := RetargetKind(curve.Server, opts.Backend)
			if err != nil {
				// The backend name is documented as caller-validated; running
				// the wrong configuration while claiming the requested one
				// would silently corrupt results, so fail loudly like Run.
				panic(err)
			}
			if kind != curve.Server {
				// The label must name what actually ran, not the figure's
				// original mechanism.
				if curve.Label == string(curve.Server) {
					curve.Label = string(kind)
				} else {
					curve.Label += " [" + string(kind) + "]"
				}
				curve.Server = kind
			}
		}
		var avg, min, max, series metrics.Series
		label := curve.Label
		avg = metrics.Series{Label: label + " (avg)", XLabel: "request rate", YLabel: fig.Metric.String()}
		min = metrics.Series{Label: label + " (min)", XLabel: "request rate", YLabel: fig.Metric.String()}
		max = metrics.Series{Label: label + " (max)", XLabel: "request rate", YLabel: fig.Metric.String()}
		series = metrics.Series{Label: label, XLabel: "request rate", YLabel: fig.Metric.String()}
		for _, rate := range rates {
			spec := RunSpec{
				Server:      curve.Server,
				RequestRate: rate,
				Inactive:    curve.Inactive,
				Connections: connections,
				Seed:        seed,
				Workload:    opts.Workload,
				Threads:     opts.Threads,
				Faults:      opts.Faults,
			}
			spec.Client.Retry = opts.Retry
			applyHTTPSweep(&spec, curve, opts)
			res := Run(spec)
			out.Runs = append(out.Runs, res)
			switch fig.Metric {
			case MetricReplyRate:
				avg.Append(rate, res.Load.ReplyRate.Mean)
				min.Append(rate, res.Load.ReplyRate.Min)
				max.Append(rate, res.Load.ReplyRate.Max)
			case MetricErrorPercent:
				series.Append(rate, res.Load.ErrorPercent)
			case MetricMedianLatency:
				series.Append(rate, res.Load.MedianLatencyMs)
			}
			if opts.Progress != nil {
				opts.Progress("%s %s", fig.ID, Describe(res))
			}
		}
		if fig.Metric == MetricReplyRate {
			out.Series = append(out.Series, avg, min, max)
		} else {
			out.Series = append(out.Series, series)
		}
	}
	return out
}

// applyHTTPSweep fills a spec's persistent-connection fields from the curve
// (the keep-alive figure family carries per-curve configurations) or, when
// the curve has none, from the sweep-level flag overrides. A zero curve and
// zero options leave the spec untouched — the historical HTTP/1.0 run.
func applyHTTPSweep(spec *RunSpec, curve Curve, opts SweepOptions) {
	if curve.HTTP != (httpcore.Options{}) || curve.RequestsPerConn > 0 {
		spec.HTTP = curve.HTTP
		spec.RequestsPerConn = curve.RequestsPerConn
		spec.PipelineDepth = curve.PipelineDepth
		return
	}
	ka := opts.KeepAlive || opts.RequestsPerConn > 1 || opts.PipelineDepth > 1
	http := httpcore.Options{KeepAlive: ka, CacheKB: opts.CacheKB, WriteMode: opts.WriteMode}
	if http == (httpcore.Options{}) {
		return
	}
	spec.HTTP = http
	if ka {
		spec.RequestsPerConn = opts.RequestsPerConn
		if spec.RequestsPerConn <= 1 {
			spec.RequestsPerConn = KeepAliveRequests
		}
		spec.PipelineDepth = opts.PipelineDepth
	}
}

// Format renders a figure result as the aligned text table the command-line
// tools print and EXPERIMENTS.md records.
func Format(res FigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE %d (%s): %s\n", res.Figure.Number, res.Figure.ID, res.Figure.Title)
	fmt.Fprintf(&b, "paper: %s\n", res.Figure.Paper)
	fmt.Fprintf(&b, "metric: %s\n", res.Figure.Metric)

	// Collect the x values actually present.
	xs := map[float64]bool{}
	for _, s := range res.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	rates := make([]float64, 0, len(xs))
	for x := range xs {
		rates = append(rates, x)
	}
	sort.Float64s(rates)

	fmt.Fprintf(&b, "%-12s", "rate")
	for _, s := range res.Series {
		fmt.Fprintf(&b, "%22s", s.Label)
	}
	b.WriteString("\n")
	for _, rate := range rates {
		fmt.Fprintf(&b, "%-12.0f", rate)
		for _, s := range res.Series {
			if y, ok := s.YAt(rate); ok {
				fmt.Fprintf(&b, "%22.1f", y)
			} else {
				fmt.Fprintf(&b, "%22s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
