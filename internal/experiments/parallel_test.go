package experiments

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/servers/prefork"
)

// gatedMetrics renders every deterministic metric the figure and gate tooling
// consumes. A parallel run must reproduce all of them byte-for-byte.
func gatedMetrics(r RunResult) string {
	return fmt.Sprintf("samples=%v reply=%+v err=%.6f errsBy=%v median=%v p90=%v max=%v lat=%+v svc=%+v offered=%v issued=%d completed=%d",
		r.Load.ReplyRateSamples, r.Load.ReplyRate, r.Load.ErrorPercent,
		r.Load.ErrorsBy, r.Load.MedianLatencyMs, r.Load.P90LatencyMs,
		r.Load.MaxLatencyMs, r.Latency, r.ServiceLatency, r.Load.OfferedRate,
		r.Load.Issued, r.Load.Completed)
}

// TestParallelMatchesSequential pins the tentpole determinism claim: for every
// server family, a sharded run produces byte-identical deterministic metrics
// at any thread count, including the single-threaded legacy engine.
func TestParallelMatchesSequential(t *testing.T) {
	kinds := []ServerKind{
		ServerThttpdPoll, ServerPhhttpd, ServerThttpdEpoll, PreforkKind(4), ServerHybrid,
		// compio rides the same sharded kernel: its completion postings run as
		// same-lane interrupts, so both the single-process server and the
		// prefork wrapper must stay bit-identical at any thread count.
		ServerThttpdCompio, ServerKind("prefork-2-compio"),
	}
	for _, kind := range kinds {
		spec := DefaultSpec(kind, 400, 251)
		spec.Connections = 1500
		want := gatedMetrics(Run(spec))
		for _, threads := range []int{2, 8} {
			spec.Threads = threads
			res := Run(spec)
			if res.Threads != threads {
				t.Errorf("%s threads=%d: engine fell back to %d threads", kind, threads, res.Threads)
			}
			if got := gatedMetrics(res); got != want {
				t.Errorf("%s threads=%d diverged from sequential:\nseq: %s\npar: %s", kind, threads, want, got)
			}
		}
	}
}

// TestParallelMatchesSequentialWorkloads repeats the determinism check across
// the adversarial workloads, which exercise the cross-lane paths hardest:
// flash crowds issue same-instant bursts, slow-loris keeps per-lane trickle
// timers running, and the WAN mix spreads RTTs across three orders of
// magnitude (shrinking the lookahead window to the fastest band).
func TestParallelMatchesSequentialWorkloads(t *testing.T) {
	for _, wl := range []string{"flashcrowd", "slowloris", "wan"} {
		spec := DefaultSpec(ServerPhhttpd, 400, 251)
		spec.Connections = 1500
		spec.Workload = wl
		want := gatedMetrics(Run(spec))
		spec.Threads = 8
		if got := gatedMetrics(Run(spec)); got != want {
			t.Errorf("workload %s diverged from sequential:\nseq: %s\npar: %s", wl, want, got)
		}
	}
}

// TestParallelIneligibleFallsBack covers the configurations the sharded
// engine refuses: they must run sequentially (Threads reported as 1) and
// still complete correctly rather than panic.
func TestParallelIneligibleFallsBack(t *testing.T) {
	rr := netsim.DefaultConfig()
	rr.Shard = netsim.ShardRoundRobin
	cases := []struct {
		name string
		spec RunSpec
	}{
		{"round-robin", func() RunSpec {
			s := DefaultSpec(PreforkKind(2), 400, 0)
			s.Network = &rr
			return s
		}()},
		{"handoff", func() RunSpec {
			s := DefaultSpec(PreforkKind(2), 400, 0)
			s.PreforkMode = prefork.ModeHandoff
			return s
		}()},
	}
	for _, c := range cases {
		c.spec.Connections = 500
		c.spec.Threads = 4
		res := Run(c.spec)
		if res.Threads != 1 {
			t.Errorf("%s: ineligible config ran with %d threads", c.name, res.Threads)
		}
		if res.Load.Issued != 500 {
			t.Errorf("%s: issued %d connections, want 500", c.name, res.Load.Issued)
		}
	}
}
