package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || !almost(s.Mean, 5) || !almost(s.StdDev, 2) || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 || empty.StdDev != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestPercentileAndMedian(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Median(samples); !almost(got, 5.5) {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(samples, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(samples, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(samples, 25); !almost(got, 3.25) {
		t.Fatalf("p25 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	if got := Percentile([]float64{42}, 75); got != 42 {
		t.Fatalf("single-sample percentile = %v", got)
	}
	// Percentile must not mutate its input.
	unsorted := []float64{9, 1, 5}
	Percentile(unsorted, 50)
	if unsorted[0] != 9 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRateSampler(t *testing.T) {
	r := NewRateSampler(core.Second)
	r.Start(0)
	// 10 completions in the first second, 5 in the second, none in the third.
	for i := 0; i < 10; i++ {
		r.Record(core.Time(i) * core.Time(100*core.Millisecond))
	}
	for i := 0; i < 5; i++ {
		r.Record(core.Time(core.Second) + core.Time(i)*core.Time(100*core.Millisecond))
	}
	samples := r.Finish(core.Time(3 * core.Second))
	if len(samples) != 3 {
		t.Fatalf("samples = %v", samples)
	}
	if !almost(samples[0], 10) || !almost(samples[1], 5) || !almost(samples[2], 0) {
		t.Fatalf("samples = %v", samples)
	}
}

func TestRateSamplerAutoStartAndDefaults(t *testing.T) {
	r := NewRateSampler(0) // defaults to 5 s
	r.Record(core.Time(core.Second))
	samples := r.Finish(core.Time(6 * core.Second))
	if len(samples) != 1 || !almost(samples[0], 0.2) {
		t.Fatalf("samples = %v", samples)
	}
	if len(r.Samples()) != 1 {
		t.Fatalf("Samples = %v", r.Samples())
	}
	// Finishing an unstarted sampler yields nothing.
	if got := NewRateSampler(core.Second).Finish(core.Time(core.Second)); got != nil {
		t.Fatalf("unstarted Finish = %v", got)
	}
}

func TestRateSamplerPartialTail(t *testing.T) {
	r := NewRateSampler(core.Second)
	r.Start(0)
	r.Record(core.Time(2300 * core.Millisecond)) // falls in the third interval
	samples := r.Finish(core.Time(2900 * core.Millisecond))
	// Two full empty intervals plus a 0.9 s tail holding one completion.
	if len(samples) != 3 {
		t.Fatalf("samples = %v", samples)
	}
	if !almost(samples[2], 1/0.9) {
		t.Fatalf("tail sample = %v", samples[2])
	}
	// A very short tail is discarded.
	r2 := NewRateSampler(core.Second)
	r2.Start(0)
	r2.Record(core.Time(1100 * core.Millisecond))
	if samples := r2.Finish(core.Time(1200 * core.Millisecond)); len(samples) != 1 {
		t.Fatalf("short tail not discarded: %v", samples)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 100)
	latencies := []float64{0.5, 1.5, 2.5, 2.6, 3.5, 120}
	for _, ms := range latencies {
		h.Observe(core.Duration(ms * float64(core.Millisecond)))
	}
	if h.Count() != int64(len(latencies)) {
		t.Fatalf("Count = %d", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-21.766) > 0.1 {
		t.Fatalf("Mean = %v", mean)
	}
	med := h.Quantile(0.5)
	if med < 2 || med > 3 {
		t.Fatalf("median = %v", med)
	}
	// Out-of-range samples clamp into the last bucket.
	if q := h.Quantile(1.0); q < 99 {
		t.Fatalf("q100 = %v", q)
	}
	if q := h.Quantile(-1); q <= 0 {
		t.Fatalf("q<0 = %v", q)
	}
	empty := NewHistogram(0, 0)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	empty.Observe(-5 * core.Millisecond)
	if empty.Count() != 1 {
		t.Fatal("negative observation dropped")
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Label: "devpoll", XLabel: "request rate", YLabel: "reply rate"}
	s.Append(500, 499)
	s.Append(600, 597)
	s.Append(700, 650)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(600); !ok || y != 597 {
		t.Fatalf("YAt = %v %v", y, ok)
	}
	if _, ok := s.YAt(9999); ok {
		t.Fatal("YAt of missing x succeeded")
	}
	if s.MaxY() != 650 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
	if (&Series{}).MaxY() != 0 {
		t.Fatal("empty MaxY")
	}
}

// Property: the summary's min/max bound the mean, and stddev is zero iff all
// samples are equal.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		allEqual := true
		for i, v := range raw {
			samples[i] = float64(v)
			if v != raw[0] {
				allEqual = false
			}
		}
		s := Summarize(samples)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if allEqual && s.StdDev > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p and bounded by the sample range.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		p1 := float64(a%101) - 0
		p2 := float64(b%101) - 0
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := Percentile(samples, p1)
		v2 := Percentile(samples, p2)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		return v1 <= v2+1e-9 && v1 >= sorted[0]-1e-9 && v2 <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
