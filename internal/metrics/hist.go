package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
)

// LatencyHist is a fixed-bucket latency histogram with a log-linear bucket
// layout (HDR-style): exact microsecond buckets below 32 µs, then 32 linear
// sub-buckets per power of two, giving a worst-case relative error of ~3%
// from a few microseconds up past an hour. The layout is identical for every
// histogram, so histograms merge bucket-by-bucket (per-worker service-time
// histograms in the prefork server sum into one server-wide distribution).
//
// The struct holds its buckets inline: Observe performs no allocation, no
// sorting and no floating-point work, so it can sit on the dispatch hot path
// (one observation per served request) without perturbing either run time or
// determinism. All derived statistics (quantiles, mean) are computed from the
// integer bucket counts with fixed arithmetic, so two runs that observe the
// same virtual-time latencies produce bit-identical percentile output.
type LatencyHist struct {
	counts [histBuckets]int64
	total  int64
	sumUs  int64
	minUs  int64
	maxUs  int64
}

const (
	// histSubBits fixes 2^histSubBits linear sub-buckets per power of two.
	histSubBits = 5
	histSubs    = 1 << histSubBits
	// histBuckets' top bucket starts at 63<<30 µs (≈19 hours) — far beyond
	// any virtual-time latency the simulation can produce; larger
	// observations clamp into that final bucket.
	histBuckets = 1024
)

// histIndex maps a non-negative microsecond value onto its bucket.
func histIndex(us int64) int {
	if us < histSubs {
		return int(us)
	}
	exp := bits.Len64(uint64(us)) - 1 - histSubBits
	idx := exp<<histSubBits + int(us>>uint(exp))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histBoundsUs returns the [lo, hi) microsecond range of bucket idx.
func histBoundsUs(idx int) (lo, hi int64) {
	if idx < histSubs {
		return int64(idx), int64(idx) + 1
	}
	exp := uint(idx>>histSubBits - 1)
	sub := int64(idx&(histSubs-1)) + histSubs
	return sub << exp, (sub + 1) << exp
}

// Observe records one latency. Negative durations clamp to zero.
func (h *LatencyHist) Observe(d core.Duration) {
	us := int64(d) / int64(core.Microsecond)
	if us < 0 {
		us = 0
	}
	h.counts[histIndex(us)]++
	h.sumUs += us
	if h.total == 0 || us < h.minUs {
		h.minUs = us
	}
	if us > h.maxUs {
		h.maxUs = us
	}
	h.total++
}

// Count reports the number of observations.
func (h *LatencyHist) Count() int64 { return h.total }

// MeanMs reports the mean observed latency in milliseconds.
func (h *LatencyHist) MeanMs() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sumUs) / float64(h.total) / 1000
}

// MinMs and MaxMs report the exact extremes in milliseconds (the extremes are
// tracked outside the buckets, so they carry no quantisation error).
func (h *LatencyHist) MinMs() float64 { return float64(h.minUs) / 1000 }

// MaxMs reports the largest observed latency in milliseconds.
func (h *LatencyHist) MaxMs() float64 { return float64(h.maxUs) / 1000 }

// Merge adds o's observations into h. Both histograms share the fixed global
// bucket layout, so the merge is an exact bucket-wise sum.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.minUs < h.minUs {
		h.minUs = o.minUs
	}
	if o.maxUs > h.maxUs {
		h.maxUs = o.maxUs
	}
	h.total += o.total
	h.sumUs += o.sumUs
}

// QuantileMs returns the q-th quantile (0..1) in milliseconds, interpolating
// linearly inside the bucket that holds the target rank. The extremes are
// exact: q=0 returns the minimum and q=1 the maximum observation.
func (h *LatencyHist) QuantileMs(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.MinMs()
	}
	if q >= 1 {
		return h.MaxMs()
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c >= target {
			lo, hi := histBoundsUs(i)
			// Rank position within this bucket, in (0, 1].
			frac := float64(target-seen) / float64(c)
			us := float64(lo) + frac*float64(hi-lo)
			// The interpolated value cannot meaningfully exceed the exact
			// tracked maximum (the last bucket is a clamp bucket).
			if us > float64(h.maxUs) {
				us = float64(h.maxUs)
			}
			if us < float64(h.minUs) {
				us = float64(h.minUs)
			}
			return us / 1000
		}
		seen += c
	}
	return h.MaxMs()
}

// LatencyPercentiles is the fixed percentile summary the figures and the
// benchmark baseline record: a plain comparable struct so run results stay
// reflect.DeepEqual-friendly.
type LatencyPercentiles struct {
	Count int64
	P50   float64 // milliseconds
	P90   float64
	P99   float64
	P999  float64
	Mean  float64
	Max   float64
}

// Percentiles summarises the histogram into the standard percentile set.
func (h *LatencyHist) Percentiles() LatencyPercentiles {
	if h.total == 0 {
		return LatencyPercentiles{}
	}
	return LatencyPercentiles{
		Count: h.total,
		P50:   h.QuantileMs(0.50),
		P90:   h.QuantileMs(0.90),
		P99:   h.QuantileMs(0.99),
		P999:  h.QuantileMs(0.999),
		Mean:  h.MeanMs(),
		Max:   h.MaxMs(),
	}
}

// String renders the percentile summary as one aligned fragment.
func (p LatencyPercentiles) String() string {
	return fmt.Sprintf("n=%d p50=%.2fms p90=%.2fms p99=%.2fms p999=%.2fms max=%.2fms",
		p.Count, p.P50, p.P90, p.P99, p.P999, p.Max)
}
