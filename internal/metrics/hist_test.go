package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestHistIndexBoundaries pins the log-linear layout: exact buckets below 32,
// 32 sub-buckets per power of two above, contiguous and monotone.
func TestHistIndexBoundaries(t *testing.T) {
	cases := []struct {
		us  int64
		idx int
	}{
		{0, 0}, {1, 1}, {31, 31}, // exact region
		{32, 32}, {63, 63}, // first binary order: one µs per bucket
		{64, 64}, {65, 64}, {66, 65}, // second order: 2 µs per bucket
		{127, 95}, {128, 96}, // order boundary
		{1 << 20, 16 * histSubs},     // 1 s region lower bound
		{1<<20 + 1, 16 * histSubs},   // same bucket
		{1<<21 - 1, 17*histSubs - 1}, // last bucket of that order
	}
	for _, c := range cases {
		if got := histIndex(c.us); got != c.idx {
			t.Errorf("histIndex(%d) = %d, want %d", c.us, got, c.idx)
		}
	}
}

// TestHistIndexMonotoneContiguous sweeps a wide range and checks the mapping
// never decreases and never skips more than one bucket.
func TestHistIndexMonotoneContiguous(t *testing.T) {
	prev := histIndex(0)
	for us := int64(1); us < 1<<22; us++ {
		idx := histIndex(us)
		if idx < prev || idx > prev+1 {
			t.Fatalf("histIndex not contiguous at %d µs: %d -> %d", us, prev, idx)
		}
		prev = idx
	}
}

// TestHistBoundsRoundTrip verifies every value maps into a bucket whose
// bounds contain it, and that bucket bounds tile the axis without gaps.
func TestHistBoundsRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets-1; idx++ {
		lo, hi := histBoundsUs(idx)
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d,%d)", idx, lo, hi)
		}
		if got := histIndex(lo); got != idx {
			t.Fatalf("histIndex(lo=%d) = %d, want %d", lo, got, idx)
		}
		if got := histIndex(hi - 1); got != idx {
			t.Fatalf("histIndex(hi-1=%d) = %d, want %d", hi-1, got, idx)
		}
		nlo, _ := histBoundsUs(idx + 1)
		if nlo != hi {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", idx, hi, idx+1, nlo)
		}
	}
}

// TestHistRelativeError confirms the layout's ~3% relative-resolution claim:
// a bucket's width never exceeds 1/32 of its lower bound (above the exact
// region).
func TestHistRelativeError(t *testing.T) {
	for idx := histSubs; idx < histBuckets-1; idx++ {
		lo, hi := histBoundsUs(idx)
		if (hi-lo)*histSubs > lo {
			t.Fatalf("bucket %d [%d,%d): width %d exceeds lo/32", idx, lo, hi, hi-lo)
		}
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	var h LatencyHist
	if h.QuantileMs(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram must report zero quantiles")
	}

	h.Observe(7 * core.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.QuantileMs(q)
		if got < 6.9 || got > 7.1 {
			t.Fatalf("single-sample quantile(%v) = %v, want ~7ms", q, got)
		}
	}

	// Out-of-range q clamps to the exact extremes.
	h.Observe(1 * core.Millisecond)
	if got := h.QuantileMs(-3); got != h.MinMs() {
		t.Fatalf("quantile(-3) = %v, want min %v", got, h.MinMs())
	}
	if got := h.QuantileMs(42); got != h.MaxMs() {
		t.Fatalf("quantile(42) = %v, want max %v", got, h.MaxMs())
	}
}

func TestHistQuantileOrdering(t *testing.T) {
	var h LatencyHist
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		h.Observe(core.Duration(rng.Int63n(int64(2 * core.Second))))
	}
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		v := h.QuantileMs(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
	p := h.Percentiles()
	if p.Count != 10000 || p.P50 > p.P90 || p.P90 > p.P99 || p.P99 > p.P999 || p.P999 > p.Max {
		t.Fatalf("percentile summary not ordered: %+v", p)
	}
}

// TestHistQuantileAccuracy checks the interpolated quantile lands within the
// layout's relative-error bound of the exact empirical quantile.
func TestHistQuantileAccuracy(t *testing.T) {
	var h LatencyHist
	n := 5000
	for i := 1; i <= n; i++ {
		h.Observe(core.Duration(i) * core.Millisecond)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := float64(int(q * float64(n))) // ms, to within one sample
		got := h.QuantileMs(q)
		if got < exact*0.95 || got > exact*1.05 {
			t.Fatalf("quantile(%v) = %.2fms, want within 5%% of %.0fms", q, got, exact)
		}
	}
}

// TestHistMerge verifies merging two histograms is exactly equivalent to
// observing every sample into one.
func TestHistMerge(t *testing.T) {
	var all, a, b LatencyHist
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		d := core.Duration(rng.Int63n(int64(10 * core.Second)))
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if !reflect.DeepEqual(&all, &a) {
		t.Fatalf("merge(a,b) differs from observing all samples directly:\nall=%+v\n  a=%+v", all.Percentiles(), a.Percentiles())
	}

	// Merging an empty or nil histogram changes nothing.
	before := a
	a.Merge(&LatencyHist{})
	a.Merge(nil)
	if !reflect.DeepEqual(before, a) {
		t.Fatalf("merging an empty histogram changed state")
	}
}

func TestHistObserveClampsNegative(t *testing.T) {
	var h LatencyHist
	h.Observe(-5 * core.Second)
	if h.Count() != 1 || h.MaxMs() != 0 || h.QuantileMs(0.5) != 0 {
		t.Fatalf("negative observation must clamp to zero: %+v", h.Percentiles())
	}
}

// TestHistDeterminism: two histograms fed the same sequence are DeepEqual —
// the property the experiment determinism suite relies on.
func TestHistDeterminism(t *testing.T) {
	run := func() *LatencyHist {
		var h LatencyHist
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			h.Observe(core.Duration(rng.Int63n(int64(core.Minute))))
		}
		return &h
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("identical observation sequences produced different histograms")
	}
}
