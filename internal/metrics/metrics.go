// Package metrics implements the measurement side of the reproduction: the
// per-interval reply-rate samples, min/max/average/standard deviation, median
// and percentile latencies, and error percentages that the paper's figures
// plot, plus small histogram and time-series helpers used by the experiment
// harness.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Summary describes a set of scalar samples.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes count, mean, population standard deviation, minimum and
// maximum of the samples. An empty input yields a zero Summary.
func Summarize(samples []float64) Summary {
	s := Summary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(samples))
	varSum := 0.0
	for _, v := range samples {
		d := v - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(samples)))
	return s
}

// String formats the summary the way the experiment tables print it.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f max=%.1f", s.Count, s.Mean, s.StdDev, s.Min, s.Max)
}

// Percentile returns the p-th percentile (0..100) of the samples using
// nearest-rank interpolation. It returns 0 for an empty slice.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(samples []float64) float64 { return Percentile(samples, 50) }

// RateSampler accumulates completion events and converts them into
// per-interval rates, the way httperf samples reply rate every few seconds and
// then reports the average, standard deviation, minimum and maximum of those
// samples.
type RateSampler struct {
	interval core.Duration
	start    core.Time
	nextEdge core.Time
	current  int
	samples  []float64
	started  bool
}

// NewRateSampler creates a sampler with the given sampling interval (httperf
// uses 5 seconds).
func NewRateSampler(interval core.Duration) *RateSampler {
	if interval <= 0 {
		interval = 5 * core.Second
	}
	return &RateSampler{interval: interval}
}

// Start begins sampling at the given virtual time.
func (r *RateSampler) Start(now core.Time) {
	r.start = now
	r.nextEdge = now.Add(r.interval)
	r.started = true
	r.current = 0
	r.samples = nil
}

// Record notes one completion at the given virtual time, closing any sampling
// intervals that have elapsed since the last event.
func (r *RateSampler) Record(now core.Time) {
	if !r.started {
		r.Start(now)
	}
	r.advance(now)
	r.current++
}

// advance closes all intervals that ended at or before now.
func (r *RateSampler) advance(now core.Time) {
	for now >= r.nextEdge {
		r.samples = append(r.samples, float64(r.current)/r.interval.Seconds())
		r.current = 0
		r.nextEdge = r.nextEdge.Add(r.interval)
	}
}

// Finish closes the final partial interval at the given end time and returns
// the per-interval rate samples. Partial trailing intervals shorter than half
// the sampling interval are discarded to avoid a misleading final sample.
func (r *RateSampler) Finish(end core.Time) []float64 {
	if !r.started {
		return nil
	}
	r.advance(end)
	tail := end.Sub(r.nextEdge.Add(-r.interval))
	if tail >= r.interval/2 && r.current > 0 {
		r.samples = append(r.samples, float64(r.current)/tail.Seconds())
	}
	return r.samples
}

// Samples returns the closed samples so far.
func (r *RateSampler) Samples() []float64 { return r.samples }

// Histogram is a fixed-bucket latency histogram (milliseconds) used by the
// latency experiments and the trace tooling.
type Histogram struct {
	BucketWidth float64 // milliseconds per bucket
	counts      []int64
	total       int64
	sum         float64
}

// NewHistogram creates a histogram with the given bucket width in
// milliseconds and bucket count; samples beyond the last bucket are clamped
// into it.
func NewHistogram(bucketWidthMs float64, buckets int) *Histogram {
	if bucketWidthMs <= 0 {
		bucketWidthMs = 1
	}
	if buckets <= 0 {
		buckets = 256
	}
	return &Histogram{BucketWidth: bucketWidthMs, counts: make([]int64, buckets)}
}

// Observe records one latency.
func (h *Histogram) Observe(d core.Duration) {
	ms := d.Milliseconds()
	idx := int(ms / h.BucketWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += ms
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean reports the mean latency in milliseconds.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the approximate q-th quantile (0..1) in milliseconds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return (float64(i) + 0.5) * h.BucketWidth
		}
	}
	return float64(len(h.counts)) * h.BucketWidth
}

// Series is a labelled (x, y) series, one per curve in a figure.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, if present.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MaxY returns the largest y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	max := 0.0
	for _, y := range s.Y {
		if y > max {
			max = y
		}
	}
	return max
}
