// Package httpcore contains the connection-handling logic shared by the
// simulated web servers (thttpd, phhttpd and the hybrid server): accepting
// connections, incrementally parsing HTTP requests, serving static documents
// from a content store, closing connections and sweeping idle ones.
//
// Connections are a persistent state machine. In the historical HTTP/1.0 mode
// (Options zero value) every connection serves one request and closes, with
// charges identical to the pre-keep-alive implementation. With
// Options.KeepAlive the connection survives its responses: the parser advances
// past each served request and retains pipelined bytes, one readable dispatch
// drains at most PipelineBatch buffered requests (fairness), a blocked
// response parks the pipeline on write interest until the window reopens, and
// the per-connection request cap and keep-alive idle timeout bound the
// connection's lifetime.
//
// Handler.Attach (serve.go) wires this logic onto an eventlib.Base — the
// listener's accept event, a persistent read event per connection, the
// idle-sweep timer — so the servers own no dispatch loops of their own. What
// still differentiates them (which mechanism backs the base, per-event cost
// wrappers, post-accept reads for edge-style delivery, mode-switch policy)
// plugs in through ServeConfig and the base's configuration.
package httpcore

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rcache"
	"repro/internal/simkernel"
)

// WriteMode selects how a response's header and body reach the socket.
type WriteMode int

const (
	// WriteWritev coalesces header and body into one vectored write: a single
	// syscall charged over the combined length — exactly what the historical
	// single-buffer write path charged, so it is the default.
	WriteWritev WriteMode = iota
	// WriteCopy issues two separate write() calls (header, then body): the
	// naive server's extra kernel entry, for the write-path ablation.
	WriteCopy
	// WriteSendfile writes the header and transfers the body zero-copy with
	// sendfile(2): charged per page with the user-space copy skipped.
	WriteSendfile
)

// String renders the mode for figure labels and flags.
func (m WriteMode) String() string {
	switch m {
	case WriteCopy:
		return "copy"
	case WriteSendfile:
		return "sendfile"
	default:
		return "writev"
	}
}

// ParseWriteMode parses a -write-path flag value.
func ParseWriteMode(s string) (WriteMode, error) {
	switch s {
	case "", "writev":
		return WriteWritev, nil
	case "copy":
		return WriteCopy, nil
	case "sendfile":
		return WriteSendfile, nil
	}
	return WriteWritev, fmt.Errorf("httpcore: unknown write mode %q (want writev, copy or sendfile)", s)
}

// DefaultPipelineBatch bounds how many buffered pipelined requests one
// readable dispatch serves when Options.PipelineBatch is zero: enough to
// amortise the dispatch, small enough that one deep pipeline cannot starve
// the other ready descriptors in the batch.
const DefaultPipelineBatch = 4

// Options bundles the persistent-connection features shared by every server
// family. The zero value is the historical behaviour — HTTP/1.0, close after
// one response, no cache, single combined write — and charges exactly what
// the pre-keep-alive implementation charged, which is what keeps the existing
// figures byte-identical.
type Options struct {
	// KeepAlive honours the request's persistence negotiation (HTTP/1.1
	// default-persistent, HTTP/1.0 opt-in via Connection: keep-alive) instead
	// of closing after every response.
	KeepAlive bool
	// MaxRequests caps how many requests one connection may serve before the
	// server closes it (real thttpd's defense against connection hogging);
	// zero means unlimited.
	MaxRequests int
	// KeepAliveIdle closes a persistent connection that stays idle between
	// requests this long. It rides the per-connection event timeout on the
	// eventlib timer wheel, so it costs one wheel entry per connection and
	// re-arms automatically with each activity. Zero disables it (the coarse
	// SweepIdle path still applies when IdleTimeout is set).
	KeepAliveIdle core.Duration
	// PipelineBatch bounds pipelined requests served per readable dispatch;
	// zero selects DefaultPipelineBatch.
	PipelineBatch int
	// CacheKB sizes the mmap response cache in kilobytes; zero disables the
	// cache and its charges entirely.
	CacheKB int
	// WriteMode selects the response write path.
	WriteMode WriteMode
}

// CloseReason explains why the server closed a connection.
type CloseReason int

// Close reasons, tallied in Stats.
const (
	CloseServed CloseReason = iota // response written
	CloseBadRequest
	CloseEOF // client closed before sending a complete request
	CloseIdle
	CloseShutdown
	// CloseReset: the peer reset the connection (ECONNRESET on read or EPIPE
	// on write); any response in flight is discarded.
	CloseReset
)

// Stats tallies server-side application events.
type Stats struct {
	Accepted    int64
	Served      int64
	NotFound    int64
	BadRequests int64
	EOFCloses   int64
	IdleCloses  int64
	Closed      int64
	BytesSent   int64
	// KeptAlive counts responses after which the connection stayed open.
	KeptAlive int64
	// Pushed counts server-originated pushes (Push calls that wrote bytes).
	Pushed int64
	// CacheHits / CacheMisses count response-cache lookups (zero without a
	// cache).
	CacheHits   int64
	CacheMisses int64
	// Resets counts connections torn down because the peer reset them
	// (ECONNRESET/EPIPE under the fault plane).
	Resets int64
	// EmfileSheds counts connections drained and immediately closed through
	// the reserve-descriptor trick while accept was failing with EMFILE.
	EmfileSheds int64
	// AcceptBackoffs counts paced accept-retry timers armed after accept
	// stalled (EMFILE or an injected EAGAIN).
	AcceptBackoffs int64
}

// Conn is the per-connection state a server keeps. Closed connections return
// to a pool on the handler, and the embedded parser keeps its buffer and
// header-map storage across reuses, so the accept path allocates nothing at
// steady state.
type Conn struct {
	FD     *simkernel.FD
	SC     *netsim.ServerConn
	Parser httpsim.Parser

	OpenedAt     core.Time
	LastActivity core.Time

	// Requests counts requests served on this connection (the keep-alive
	// request cap compares against it).
	Requests int

	// PendingWrite is how many response bytes the socket has not yet accepted
	// (the peer's receive window closed mid-response). While positive the
	// connection is parked on write interest; finishReason records how the
	// connection should be closed once the response finally drains, and
	// keepOpen overrides it for a persistent connection that resumes its
	// pipeline instead of closing. pendingBody is the portion of the
	// remainder that is document body, so a sendfile-mode retry charges the
	// zero-copy rate for it.
	PendingWrite int
	pendingBody  int
	writeBlocked bool
	keepOpen     bool
	finishReason CloseReason

	// reqStart anchors the in-flight request's service-latency observation:
	// connection establishment for a connection's first request (time in the
	// listener backlog counts), the parse-completion dispatch for keep-alive
	// successors.
	reqStart core.Time

	// cachePath names the response-cache entry pinned for the in-flight
	// response; empty when no pin is held.
	cachePath string
}

// Handler implements the application layer of a static-content HTTP/1.0
// server over the simulated socket API. All methods that perform socket calls
// must be invoked from inside a simkernel batch; the servers' event loops
// guarantee this.
type Handler struct {
	K       *simkernel.Kernel
	P       *simkernel.Proc
	API     *netsim.SockAPI
	Content *httpsim.ContentStore

	// IdleTimeout closes connections that have shown no activity for this
	// long; zero disables the sweep. thttpd's connection timeout is what makes
	// the paper's inactive clients reopen their connections.
	IdleTimeout core.Duration

	// Opts selects the persistent-connection features; its zero value is the
	// historical one-request HTTP/1.0 behaviour. Install with SetOptions so
	// the response cache is built alongside.
	Opts Options
	// Cache is the mmap response cache, nil when disabled.
	Cache *rcache.Cache

	// OnConnOpen is called (inside the batch) after a connection is accepted
	// and installed; the server registers the descriptor with its event
	// mechanism here.
	OnConnOpen func(fd int)
	// OnConnClose is called (inside the batch) just before a connection's
	// descriptor is closed; the server unregisters it here.
	OnConnClose func(fd int)
	// OnWriteBlocked is called (inside the batch) when a response write could
	// not complete because the peer's receive window closed; the event loop
	// adds write interest for the descriptor so HandleWritable runs when the
	// window reopens.
	OnWriteBlocked func(fd int)
	// OnWriteDrained is called (inside the batch) when a persistent
	// connection's blocked response finishes draining and the connection
	// stays open; the event loop downgrades the descriptor back to read-only
	// interest.
	OnWriteDrained func(fd int)
	// OnDeferred is called (inside the batch) when a readable dispatch's
	// pipeline budget ran out with at least one more complete request
	// buffered; the event loop schedules a continuation so the remainder is
	// served without waiting for more client bytes.
	OnDeferred func(fd int)
	// OnAcceptStall is called (inside the batch) when an accept pass ended
	// with the queue possibly non-empty — EMFILE with no descriptor headroom,
	// or an injected EAGAIN on an edge-triggered backend whose listener will
	// post no further notification. The event loop arms a paced retry so the
	// queue is re-drained without spinning.
	OnAcceptStall func()

	Conns map[int]*Conn
	Stats Stats

	// reserve is the descriptor held back for the EMFILE accept-drain trick:
	// when accept fails on the descriptor limit, the reserve is closed to make
	// one slot, the pending connection is accepted and immediately closed
	// (shedding it with a clean FIN instead of leaving it to time out in the
	// queue), and the reserve is reopened. Armed by Attach when the fault
	// plane sets an FDLimit.
	reserve *simkernel.FD

	// free recycles Conn records (and their parser storage) across the
	// connection churn of a benchmark run; acceptScratch is AcceptAll's
	// reused result slice.
	free          []*Conn
	acceptScratch []int

	// ServiceLatency is the server-side request-latency histogram: accept to
	// response-fully-written, observed inside the dispatch batch that
	// completes each request. The histogram is embedded (fixed buckets, no
	// allocation per observation) so measuring it never perturbs the run it
	// measures; prefork merges the per-worker histograms into one.
	ServiceLatency metrics.LatencyHist
}

// NewHandler builds a handler with an empty connection table.
func NewHandler(k *simkernel.Kernel, p *simkernel.Proc, api *netsim.SockAPI, content *httpsim.ContentStore) *Handler {
	if content == nil {
		content = httpsim.DefaultContentStore()
	}
	return &Handler{K: k, P: p, API: api, Content: content, Conns: make(map[int]*Conn)}
}

// SetOptions installs the persistent-connection options, building the
// response cache when one is configured. Call it before Attach — the event
// loop reads the keep-alive idle timeout at registration time.
func (h *Handler) SetOptions(opts Options) {
	h.Opts = opts
	h.Cache = nil
	if opts.CacheKB > 0 {
		h.Cache = rcache.New(opts.CacheKB * 1024)
	}
}

// pipelineBudget is the per-dispatch bound on buffered requests served.
func (h *Handler) pipelineBudget() int {
	if h.Opts.PipelineBatch > 0 {
		return h.Opts.PipelineBatch
	}
	return DefaultPipelineBatch
}

// OpenConns returns the open connection descriptors in ascending order.
func (h *Handler) OpenConns() []int {
	out := make([]int, 0, len(h.Conns))
	for fd := range h.Conns {
		out = append(out, fd)
	}
	sort.Ints(out)
	return out
}

// newConn pops a pooled connection record (or allocates one) and initialises
// it for the given descriptor.
func (h *Handler) newConn(now core.Time, fd *simkernel.FD, sc *netsim.ServerConn) *Conn {
	var c *Conn
	if n := len(h.free); n > 0 {
		c = h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		c.Parser.Reset()
	} else {
		c = &Conn{}
	}
	c.FD, c.SC = fd, sc
	c.OpenedAt, c.LastActivity = now, now
	c.Requests = 0
	c.PendingWrite = 0
	c.pendingBody = 0
	c.writeBlocked = false
	c.keepOpen = false
	c.finishReason = CloseServed
	c.reqStart = now
	c.cachePath = ""
	return c
}

// AcceptAll drains the listener's accept queue, installing a connection for
// each pending client and invoking OnConnOpen. It returns the descriptors of
// the newly accepted connections; edge-style servers (RT signals) use the list
// to perform an immediate read, since data that arrived before registration
// produces no completion signal. The returned slice is reused by the next
// AcceptAll call.
func (h *Handler) AcceptAll(now core.Time, lfd *simkernel.FD) []int {
	accepted := h.acceptScratch[:0]
	for {
		fd, sc, err := h.API.Accept(lfd)
		if err == netsim.ErrMFile && h.reserve != nil {
			// Descriptor limit: drain the queue through the reserve slot,
			// shedding each pending connection with an immediate close.
			if h.shedOverLimit(now, lfd) {
				continue
			}
			break
		}
		if err != nil {
			if h.OnAcceptStall != nil &&
				(h.K.Faults.AcceptEAGAINRate > 0 || (err == netsim.ErrMFile && h.K.Faults.FDLimit > 0)) {
				// The queue may still hold connections no further notification
				// will announce; have the loop retry on a paced timer.
				h.OnAcceptStall()
			}
			break
		}
		h.Stats.Accepted++
		h.Conns[fd.Num] = h.newConn(now, fd, sc)
		accepted = append(accepted, fd.Num)
		if h.OnConnOpen != nil {
			h.OnConnOpen(fd.Num)
		}
	}
	h.acceptScratch = accepted
	return accepted
}

// reserveFile is the dummy file occupying the reserve descriptor (a dup of
// /dev/null in a real server): never ready, never notifies.
type reserveFile struct{}

func (reserveFile) Poll() core.EventMask           { return 0 }
func (reserveFile) SetNotifier(simkernel.Notifier) {}
func (reserveFile) Close(core.Time)                {}

// ArmReserve opens the reserve descriptor for the EMFILE accept-drain trick.
// Attach calls it when the fault plane sets a descriptor limit; it must run
// inside the process's batch.
func (h *Handler) ArmReserve() {
	if h.reserve != nil {
		return
	}
	h.P.ChargeSyscall(0) // open("/dev/null")
	h.reserve = h.P.Install(reserveFile{})
}

// shedOverLimit runs one round of the reserve-descriptor trick: close the
// reserve to free a slot, accept the head of the queue, close it immediately
// (the client sees a clean FIN instead of rotting in the backlog), then reopen
// the reserve. It reports whether a connection was shed; false means the queue
// was empty.
func (h *Handler) shedOverLimit(now core.Time, lfd *simkernel.FD) bool {
	h.P.ChargeSyscall(h.K.Cost.SockClose) // close(reserve)
	_ = h.P.CloseFD(now, h.reserve.Num)
	h.reserve = nil
	fd, _, err := h.API.Accept(lfd)
	shed := err == nil
	if shed {
		h.API.Close(fd)
		h.Stats.EmfileSheds++
	}
	h.ArmReserve()
	return shed
}

// AdoptConn installs state for a connection accepted by a sibling worker and
// passed over (netsim.SockAPI.AcceptDetach / Adopt): the receiving half of a
// prefork handoff. Like AcceptAll it must run inside the adopting process's
// batch, and it invokes OnConnOpen so the worker's event loop registers the
// descriptor. The caller is responsible for the one unprompted read that
// covers request data delivered before the registration existed.
func (h *Handler) AdoptConn(now core.Time, fd *simkernel.FD, sc *netsim.ServerConn) {
	h.Stats.Accepted++
	h.Conns[fd.Num] = h.newConn(now, fd, sc)
	if h.OnConnOpen != nil {
		h.OnConnOpen(fd.Num)
	}
}

// HandleReadable processes a readability event on a connection: it reads
// whatever is buffered, advances the request parser and serves what completed
// — one request-then-close in HTTP/1.0 mode, up to the pipeline budget on a
// persistent connection. Events for unknown descriptors (stale RT signals,
// for example) are ignored, as the paper notes real servers must do.
func (h *Handler) HandleReadable(now core.Time, fd int) {
	c, ok := h.Conns[fd]
	if !ok {
		return
	}
	data, eof := h.API.Read(c.FD, 0)
	if len(data) > 0 {
		c.LastActivity = now
		if c.writeBlocked && h.Opts.KeepAlive {
			// A parked response owns the socket's write side; buffer the new
			// requests for the resume pump (sticky parse errors surface there
			// too) and keep the receive buffer drained.
			_, _ = c.Parser.Feed(data)
			return
		}
		if !h.pump(now, c, data) {
			return // closed, or parked on a blocked response
		}
	}
	h.settle(now, c, eof)
}

// Continue serves requests already buffered on fd without touching the
// socket: the continuation of a pipeline batch whose dispatch budget ran out.
// Unknown descriptors — the connection closed between deferral and
// continuation — are ignored.
func (h *Handler) Continue(now core.Time, fd int) {
	c, ok := h.Conns[fd]
	if !ok || c.writeBlocked {
		return
	}
	if h.pump(now, c, nil) {
		h.settle(now, c, false)
	}
}

// pump is the persistent connection's state machine: feed freshly read bytes
// to the parser, then serve complete requests until the connection closes,
// the pipeline budget runs out, a response jams against the peer's window, or
// no complete request remains. It reports whether the connection is still
// open with no response in flight.
func (h *Handler) pump(now core.Time, c *Conn, data []byte) bool {
	complete, err := c.Parser.Feed(data)
	for budget := h.pipelineBudget(); ; budget-- {
		if err != nil {
			h.respondError(c, httpsim.StatusBadReq)
			h.finishResponse(now, c, CloseBadRequest)
			return false
		}
		if !complete {
			return true
		}
		if budget <= 0 {
			// Fairness: another request is ready but this dispatch's budget
			// is spent. Defer the remainder so one deep pipeline cannot
			// monopolise the batch.
			if h.OnDeferred != nil {
				h.OnDeferred(c.FD.Num)
			}
			return true
		}
		c.reqStart = now
		if c.Requests == 0 {
			// A connection's first request anchors at establishment (SYN on
			// the accept queue): time spent in the listener backlog counts
			// the same for a server that accepts eagerly and one that
			// accepts only once data has arrived.
			c.reqStart = c.OpenedAt
			if c.SC != nil && c.SC.EstablishedAt > 0 {
				c.reqStart = c.SC.EstablishedAt
			}
		}
		keep := h.serve(c)
		c.Requests++
		if !keep {
			h.finishResponse(now, c, CloseServed)
			return false
		}
		h.Stats.KeptAlive++
		complete, err = c.Parser.Consume()
		if c.PendingWrite > 0 {
			// The response jammed against the peer's receive window
			// mid-pipeline: park on write interest. Requests already
			// buffered resume from HandleWritable once the window reopens.
			c.keepOpen = true
			c.writeBlocked = true
			c.finishReason = CloseServed
			if h.OnWriteBlocked != nil {
				h.OnWriteBlocked(c.FD.Num)
			}
			return false
		}
		h.bookServed(now, c)
	}
}

// settle closes the connection once the peer is gone. In the historical
// HTTP/1.0 mode an observed EOF closes unconditionally, exactly as before. A
// persistent connection additionally checks the socket directly — its FIN may
// have been consumed by an earlier dispatch whose budget deferred the final
// requests. Requests still buffered at EOF are discarded, not served: our
// clients only half-close after the final reply, so a FIN with requests
// outstanding means the client is dead, and a real server would hit RST/EPIPE
// on the next write rather than stream responses into the void. Serving those
// zombie pipelines is what collapses a keep-alive server under overload —
// most of its capacity goes to clients that already timed out.
func (h *Handler) settle(now core.Time, c *Conn, eof bool) {
	if c.SC != nil && c.SC.ResetPeer() {
		// ECONNRESET: the peer slammed the connection shut. Whatever the
		// parser has buffered is a dead pipeline; unwind immediately.
		h.abortReset(c)
		return
	}
	if !h.Opts.KeepAlive {
		if eof {
			// The client went away before completing its request.
			h.closeConn(c, CloseEOF)
		}
		return
	}
	if !eof {
		eof = c.SC != nil && c.SC.PeerClosed() && c.SC.Buffered() == 0
	}
	if eof {
		h.closeConn(c, CloseEOF)
	}
}

// bookServed records a completed keep-alive exchange — the response fully
// accepted by the socket — without closing the connection.
func (h *Handler) bookServed(now core.Time, c *Conn) {
	h.ServiceLatency.Observe(now.Sub(c.reqStart))
	h.releaseCache(c)
}

// releaseCache drops the pin taken for the in-flight response, if any.
func (h *Handler) releaseCache(c *Conn) {
	if c.cachePath != "" {
		h.Cache.Release(c.cachePath)
		c.cachePath = ""
	}
}

// Push writes an n-byte server-originated payload to connection fd with no
// pending request — the fan-out path of a push/chat server, where the server,
// not the client, decides when bytes flow. Must run inside the process's
// batch. If the peer's receive window accepts only part of the payload the
// remainder parks on write interest exactly like a blocked response:
// OnWriteBlocked arms write interest via the event loop with no read pending,
// and HandleWritable drains the tail and downgrades back to read-only
// interest when the window reopens. Pushes to unknown descriptors or to a
// connection still draining an earlier write report false and write nothing.
func (h *Handler) Push(now core.Time, fd int, n int) bool {
	c, ok := h.Conns[fd]
	if !ok || n <= 0 || c.PendingWrite > 0 {
		return false
	}
	wrote := h.API.Write(c.FD, n)
	h.Stats.BytesSent += int64(wrote)
	h.Stats.Pushed++
	c.LastActivity = now
	if wrote < n {
		// reqStart anchors the drain observation bookServed makes when the
		// tail finally clears: push-initiation to fully-written.
		c.reqStart = now
		c.PendingWrite = n - wrote
		c.pendingBody = 0
		c.writeBlocked = true
		c.keepOpen = true
		c.finishReason = CloseServed
		if h.OnWriteBlocked != nil {
			h.OnWriteBlocked(c.FD.Num)
		}
	}
	return true
}

// HandleWritable processes a writability event on a connection whose response
// jammed against the peer's receive window: it retries the blocked tail and,
// once the response has fully drained, either closes the connection with the
// reason recorded when the write first blocked or — on a persistent
// connection — books the exchange, downgrades back to read interest and
// resumes the parked pipeline. Events for unknown descriptors or connections
// with nothing pending are ignored.
func (h *Handler) HandleWritable(now core.Time, fd int) {
	c, ok := h.Conns[fd]
	if !ok || c.PendingWrite <= 0 {
		return
	}
	wrote := h.retryWrite(c)
	if wrote <= 0 {
		if c.SC != nil && c.SC.ResetPeer() {
			// EPIPE: the parked response can never drain. Discard it and
			// unwind mid-partial-write — the close below releases the cache
			// pin, the event registration and the descriptor.
			h.abortReset(c)
		}
		return
	}
	h.Stats.BytesSent += int64(wrote)
	c.PendingWrite -= wrote
	if c.pendingBody > c.PendingWrite {
		c.pendingBody = c.PendingWrite
	}
	c.LastActivity = now
	if c.PendingWrite > 0 || !c.writeBlocked {
		return
	}
	c.writeBlocked = false
	if !c.keepOpen {
		h.completeResponse(now, c, c.finishReason)
		return
	}
	c.keepOpen = false
	h.bookServed(now, c)
	if h.OnWriteDrained != nil {
		h.OnWriteDrained(c.FD.Num)
	}
	if h.pump(now, c, nil) {
		h.settle(now, c, false)
	}
}

// abortReset unwinds a connection whose peer reset it: any blocked response
// is discarded (there is no one left to drain it) and the connection closes
// through the ordinary path, releasing its cache pin, event registration,
// descriptor and pooled record.
func (h *Handler) abortReset(c *Conn) {
	c.PendingWrite, c.pendingBody = 0, 0
	c.writeBlocked, c.keepOpen = false, false
	h.closeConn(c, CloseReset)
}

// retryWrite pushes the blocked remainder into the socket. The copy and
// vectored paths retry with a plain write; sendfile mode keeps charging the
// zero-copy rate for the body portion of the remainder.
func (h *Handler) retryWrite(c *Conn) int {
	if h.Opts.WriteMode != WriteSendfile || c.pendingBody <= 0 {
		return h.API.Write(c.FD, c.PendingWrite)
	}
	headLeft := c.PendingWrite - c.pendingBody
	wrote := 0
	if headLeft > 0 {
		wrote = h.API.Write(c.FD, headLeft)
		if wrote < headLeft {
			return wrote
		}
	}
	return wrote + h.API.Sendfile(c.FD, c.pendingBody)
}

// finishResponse closes the connection if its response was fully accepted by
// the socket, or parks it on write interest until the peer's window reopens.
func (h *Handler) finishResponse(now core.Time, c *Conn, reason CloseReason) {
	if c.PendingWrite > 0 {
		c.writeBlocked = true
		c.finishReason = reason
		if h.OnWriteBlocked != nil {
			h.OnWriteBlocked(c.FD.Num)
		}
		return
	}
	h.completeResponse(now, c, reason)
}

// completeResponse books the end of a request-response exchange: the
// service-latency observation and the connection close. reqStart was anchored
// when the request entered service (connection establishment for a
// connection's first request, so time in the listener backlog counts).
func (h *Handler) completeResponse(now core.Time, c *Conn, reason CloseReason) {
	if reason == CloseServed {
		h.ServiceLatency.Observe(now.Sub(c.reqStart))
	}
	h.closeConn(c, reason)
}

// serve writes the response for the parsed request and reports whether the
// connection persists afterwards (keep-alive negotiated and under the request
// cap). Error responses always close.
func (h *Handler) serve(c *Conn) (keep bool) {
	req := c.Parser.Request()
	// The application-level work of serving a request: parse, map the URL,
	// locate the cached document, build headers.
	h.P.Charge(h.K.Cost.HTTPService)
	size, ok := h.Content.Lookup(req.Path)
	if !ok {
		h.Stats.NotFound++
		h.respondError(c, httpsim.StatusNotFound)
		return false
	}
	keep = h.persistAfter(c, req)
	head := httpsim.ResponseSizeVersion(httpsim.StatusOK, size, keep) - size
	h.chargeFileAccess(c, req.Path, size)
	h.writeResponse(c, head, size)
	h.Stats.Served++
	return keep
}

// persistAfter decides whether the connection survives the response being
// served: keep-alive enabled, the per-connection cap not yet reached, and the
// request negotiated persistence.
func (h *Handler) persistAfter(c *Conn, req *httpsim.Request) bool {
	if !h.Opts.KeepAlive {
		return false
	}
	if h.Opts.MaxRequests > 0 && c.Requests+1 >= h.Opts.MaxRequests {
		return false
	}
	return req.KeepAlive()
}

// chargeFileAccess charges the document-access asymmetry of the response
// cache: a hit touches the resident mapping, a miss opens the file and faults
// its pages in. Without a cache nothing is charged — the flat HTTPService
// constant already folds in the historical document access, which keeps the
// no-cache figures byte-identical.
func (h *Handler) chargeFileAccess(c *Conn, path string, size int) {
	if h.Cache == nil {
		return
	}
	pages, hit := h.Cache.Acquire(path, size)
	c.cachePath = path
	if hit {
		h.Stats.CacheHits++
		h.P.Charge(h.K.Cost.CacheHit)
		return
	}
	h.Stats.CacheMisses++
	h.P.Charge(h.K.Cost.FileOpen + core.Duration(pages)*h.K.Cost.FileReadPage)
}

// respondError writes a minimal error response (always Connection: close).
func (h *Handler) respondError(c *Conn, status int) {
	h.P.Charge(h.K.Cost.HTTPService / 4)
	h.writeResponse(c, httpsim.ResponseSize(status, 0), 0)
	if status == httpsim.StatusBadReq {
		h.Stats.BadRequests++
	}
}

// writeResponse pushes a head+body response into the socket along the
// configured write path, recording any blocked remainder on the connection.
// With the paper's always-draining clients the whole response is accepted in
// one call and PendingWrite stays zero. The default vectored path charges one
// syscall over the combined length — exactly the historical single-buffer
// write.
func (h *Handler) writeResponse(c *Conn, head, body int) {
	var wrote int
	switch {
	case h.Opts.WriteMode == WriteCopy && body > 0:
		wrote = h.API.Write(c.FD, head)
		if wrote == head {
			wrote += h.API.Write(c.FD, body)
		}
	case h.Opts.WriteMode == WriteSendfile && body > 0:
		wrote = h.API.Write(c.FD, head)
		if wrote == head {
			wrote += h.API.Sendfile(c.FD, body)
		}
	default:
		wrote = h.API.Writev(c.FD, head, body)
	}
	h.Stats.BytesSent += int64(wrote)
	c.PendingWrite = head + body - wrote
	c.pendingBody = body
	if c.pendingBody > c.PendingWrite {
		c.pendingBody = c.PendingWrite
	}
}

// CloseIdle closes a persistent connection whose keep-alive idle timeout
// fired — unless work is outstanding: a response still draining, or request
// bytes already buffered in the parser or on the socket (a request racing the
// timeout wins, matching a real server that checks for input before closing).
func (h *Handler) CloseIdle(now core.Time, fd int) {
	c, ok := h.Conns[fd]
	if !ok {
		return
	}
	if c.PendingWrite > 0 || c.Parser.Buffered() > 0 || (c.SC != nil && c.SC.Buffered() > 0) {
		return
	}
	h.closeConn(c, CloseIdle)
}

// CloseConn closes the connection for descriptor fd with the given reason, if
// it is still open.
func (h *Handler) CloseConn(now core.Time, fd int, reason CloseReason) {
	if c, ok := h.Conns[fd]; ok {
		h.closeConn(c, reason)
	}
}

func (h *Handler) closeConn(c *Conn, reason CloseReason) {
	// The identity check (not just presence) keeps a stale double-close from
	// tearing down a pooled record that has since been reissued for a new
	// connection on a recycled descriptor number.
	if cur, ok := h.Conns[c.FD.Num]; !ok || cur != c {
		return
	}
	h.releaseCache(c)
	if h.OnConnClose != nil {
		h.OnConnClose(c.FD.Num)
	}
	delete(h.Conns, c.FD.Num)
	h.API.Close(c.FD)
	c.FD, c.SC = nil, nil
	h.free = append(h.free, c)
	h.Stats.Closed++
	switch reason {
	case CloseEOF:
		h.Stats.EOFCloses++
	case CloseIdle:
		h.Stats.IdleCloses++
	case CloseReset:
		h.Stats.Resets++
	}
}

// SweepIdle closes connections that have been inactive longer than
// IdleTimeout and returns how many were closed. thttpd performs this from its
// timer callbacks; the simulated servers call it when their wait times out.
func (h *Handler) SweepIdle(now core.Time) int {
	if h.IdleTimeout <= 0 {
		return 0
	}
	var victims []*Conn
	for _, c := range h.Conns {
		if now.Sub(c.LastActivity) >= h.IdleTimeout {
			victims = append(victims, c)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].FD.Num < victims[j].FD.Num })
	for _, c := range victims {
		h.closeConn(c, CloseIdle)
	}
	return len(victims)
}

// CloseAll tears down every open connection (server shutdown).
func (h *Handler) CloseAll(now core.Time) {
	for _, fd := range h.OpenConns() {
		h.CloseConn(now, fd, CloseShutdown)
	}
}
