// Package httpcore contains the connection-handling logic shared by the
// simulated web servers (thttpd, phhttpd and the hybrid server): accepting
// connections, incrementally parsing HTTP/1.0 requests, serving static
// documents from a content store, closing connections and sweeping idle ones.
//
// Handler.Attach (serve.go) wires this logic onto an eventlib.Base — the
// listener's accept event, a persistent read event per connection, the
// idle-sweep timer — so the servers own no dispatch loops of their own. What
// still differentiates them (which mechanism backs the base, per-event cost
// wrappers, post-accept reads for edge-style delivery, mode-switch policy)
// plugs in through ServeConfig and the base's configuration.
package httpcore

import (
	"sort"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simkernel"
)

// CloseReason explains why the server closed a connection.
type CloseReason int

// Close reasons, tallied in Stats.
const (
	CloseServed CloseReason = iota // response written
	CloseBadRequest
	CloseEOF // client closed before sending a complete request
	CloseIdle
	CloseShutdown
)

// Stats tallies server-side application events.
type Stats struct {
	Accepted    int64
	Served      int64
	NotFound    int64
	BadRequests int64
	EOFCloses   int64
	IdleCloses  int64
	Closed      int64
	BytesSent   int64
}

// Conn is the per-connection state a server keeps. Closed connections return
// to a pool on the handler, and the embedded parser keeps its buffer and
// header-map storage across reuses, so the accept path allocates nothing at
// steady state.
type Conn struct {
	FD     *simkernel.FD
	SC     *netsim.ServerConn
	Parser httpsim.Parser

	OpenedAt     core.Time
	LastActivity core.Time

	// PendingWrite is how many response bytes the socket has not yet accepted
	// (the peer's receive window closed mid-response). While positive the
	// connection is parked on write interest; finishReason records how the
	// connection should be closed once the response finally drains.
	PendingWrite int
	writeBlocked bool
	finishReason CloseReason
}

// Handler implements the application layer of a static-content HTTP/1.0
// server over the simulated socket API. All methods that perform socket calls
// must be invoked from inside a simkernel batch; the servers' event loops
// guarantee this.
type Handler struct {
	K       *simkernel.Kernel
	P       *simkernel.Proc
	API     *netsim.SockAPI
	Content *httpsim.ContentStore

	// IdleTimeout closes connections that have shown no activity for this
	// long; zero disables the sweep. thttpd's connection timeout is what makes
	// the paper's inactive clients reopen their connections.
	IdleTimeout core.Duration

	// OnConnOpen is called (inside the batch) after a connection is accepted
	// and installed; the server registers the descriptor with its event
	// mechanism here.
	OnConnOpen func(fd int)
	// OnConnClose is called (inside the batch) just before a connection's
	// descriptor is closed; the server unregisters it here.
	OnConnClose func(fd int)
	// OnWriteBlocked is called (inside the batch) when a response write could
	// not complete because the peer's receive window closed; the event loop
	// adds write interest for the descriptor so HandleWritable runs when the
	// window reopens.
	OnWriteBlocked func(fd int)

	Conns map[int]*Conn
	Stats Stats

	// free recycles Conn records (and their parser storage) across the
	// connection churn of a benchmark run; acceptScratch is AcceptAll's
	// reused result slice.
	free          []*Conn
	acceptScratch []int

	// ServiceLatency is the server-side request-latency histogram: accept to
	// response-fully-written, observed inside the dispatch batch that
	// completes each request. The histogram is embedded (fixed buckets, no
	// allocation per observation) so measuring it never perturbs the run it
	// measures; prefork merges the per-worker histograms into one.
	ServiceLatency metrics.LatencyHist
}

// NewHandler builds a handler with an empty connection table.
func NewHandler(k *simkernel.Kernel, p *simkernel.Proc, api *netsim.SockAPI, content *httpsim.ContentStore) *Handler {
	if content == nil {
		content = httpsim.DefaultContentStore()
	}
	return &Handler{K: k, P: p, API: api, Content: content, Conns: make(map[int]*Conn)}
}

// OpenConns returns the open connection descriptors in ascending order.
func (h *Handler) OpenConns() []int {
	out := make([]int, 0, len(h.Conns))
	for fd := range h.Conns {
		out = append(out, fd)
	}
	sort.Ints(out)
	return out
}

// newConn pops a pooled connection record (or allocates one) and initialises
// it for the given descriptor.
func (h *Handler) newConn(now core.Time, fd *simkernel.FD, sc *netsim.ServerConn) *Conn {
	var c *Conn
	if n := len(h.free); n > 0 {
		c = h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		c.Parser.Reset()
	} else {
		c = &Conn{}
	}
	c.FD, c.SC = fd, sc
	c.OpenedAt, c.LastActivity = now, now
	c.PendingWrite = 0
	c.writeBlocked = false
	c.finishReason = CloseServed
	return c
}

// AcceptAll drains the listener's accept queue, installing a connection for
// each pending client and invoking OnConnOpen. It returns the descriptors of
// the newly accepted connections; edge-style servers (RT signals) use the list
// to perform an immediate read, since data that arrived before registration
// produces no completion signal. The returned slice is reused by the next
// AcceptAll call.
func (h *Handler) AcceptAll(now core.Time, lfd *simkernel.FD) []int {
	accepted := h.acceptScratch[:0]
	for {
		fd, sc, ok := h.API.Accept(lfd)
		if !ok {
			break
		}
		h.Stats.Accepted++
		h.Conns[fd.Num] = h.newConn(now, fd, sc)
		accepted = append(accepted, fd.Num)
		if h.OnConnOpen != nil {
			h.OnConnOpen(fd.Num)
		}
	}
	h.acceptScratch = accepted
	return accepted
}

// AdoptConn installs state for a connection accepted by a sibling worker and
// passed over (netsim.SockAPI.AcceptDetach / Adopt): the receiving half of a
// prefork handoff. Like AcceptAll it must run inside the adopting process's
// batch, and it invokes OnConnOpen so the worker's event loop registers the
// descriptor. The caller is responsible for the one unprompted read that
// covers request data delivered before the registration existed.
func (h *Handler) AdoptConn(now core.Time, fd *simkernel.FD, sc *netsim.ServerConn) {
	h.Stats.Accepted++
	h.Conns[fd.Num] = h.newConn(now, fd, sc)
	if h.OnConnOpen != nil {
		h.OnConnOpen(fd.Num)
	}
}

// HandleReadable processes a readability event on a connection: it reads
// whatever is buffered, advances the request parser and, when a complete
// request has arrived, serves it and closes the connection (HTTP/1.0). Events
// for unknown descriptors (stale RT signals, for example) are ignored, as the
// paper notes real servers must do.
func (h *Handler) HandleReadable(now core.Time, fd int) {
	c, ok := h.Conns[fd]
	if !ok {
		return
	}
	data, eof := h.API.Read(c.FD, 0)
	if len(data) > 0 {
		c.LastActivity = now
		complete, err := c.Parser.Feed(data)
		if err != nil {
			h.respondError(c, httpsim.StatusBadReq)
			h.finishResponse(now, c, CloseBadRequest)
			return
		}
		if complete {
			h.serve(c)
			h.finishResponse(now, c, CloseServed)
			return
		}
	}
	if eof {
		// The client went away before completing its request.
		h.closeConn(c, CloseEOF)
	}
}

// HandleWritable processes a writability event on a connection whose response
// jammed against the peer's receive window: it retries the blocked tail and,
// once the response has fully drained, closes the connection with the reason
// recorded when the write first blocked. Events for unknown descriptors or
// connections with nothing pending are ignored.
func (h *Handler) HandleWritable(now core.Time, fd int) {
	c, ok := h.Conns[fd]
	if !ok || c.PendingWrite <= 0 {
		return
	}
	wrote := h.API.Write(c.FD, c.PendingWrite)
	if wrote <= 0 {
		return
	}
	h.Stats.BytesSent += int64(wrote)
	c.PendingWrite -= wrote
	c.LastActivity = now
	if c.PendingWrite <= 0 && c.writeBlocked {
		c.writeBlocked = false
		h.completeResponse(now, c, c.finishReason)
	}
}

// finishResponse closes the connection if its response was fully accepted by
// the socket, or parks it on write interest until the peer's window reopens.
func (h *Handler) finishResponse(now core.Time, c *Conn, reason CloseReason) {
	if c.PendingWrite > 0 {
		c.writeBlocked = true
		c.finishReason = reason
		if h.OnWriteBlocked != nil {
			h.OnWriteBlocked(c.FD.Num)
		}
		return
	}
	h.completeResponse(now, c, reason)
}

// completeResponse books the end of a request-response exchange: the
// service-latency observation (accept to response-fully-written) and the
// HTTP/1.0 close.
func (h *Handler) completeResponse(now core.Time, c *Conn, reason CloseReason) {
	if reason == CloseServed {
		// Anchor at connection establishment (SYN queued), not accept: time
		// spent in the listener backlog counts the same for a server that
		// accepts eagerly and one that accepts only once data has arrived.
		since := c.OpenedAt
		if c.SC != nil && c.SC.EstablishedAt > 0 {
			since = c.SC.EstablishedAt
		}
		h.ServiceLatency.Observe(now.Sub(since))
	}
	h.closeConn(c, reason)
}

// serve writes the response for the parsed request.
func (h *Handler) serve(c *Conn) {
	req := c.Parser.Request()
	// The application-level work of serving a request: parse, map the URL,
	// locate the cached document, build headers.
	h.P.Charge(h.K.Cost.HTTPService)
	size, ok := h.Content.Lookup(req.Path)
	if !ok {
		h.Stats.NotFound++
		h.respondError(c, httpsim.StatusNotFound)
		return
	}
	total := httpsim.ResponseSize(httpsim.StatusOK, size)
	h.startResponse(c, total)
	h.Stats.Served++
}

// respondError writes a minimal error response.
func (h *Handler) respondError(c *Conn, status int) {
	h.P.Charge(h.K.Cost.HTTPService / 4)
	total := httpsim.ResponseSize(status, 0)
	h.startResponse(c, total)
	if status == httpsim.StatusBadReq {
		h.Stats.BadRequests++
	}
}

// startResponse writes as much of a total-byte response as the socket
// accepts, recording the blocked remainder on the connection. With the
// paper's always-draining clients the whole response is accepted in one call
// and PendingWrite stays zero.
func (h *Handler) startResponse(c *Conn, total int) {
	wrote := h.API.Write(c.FD, total)
	h.Stats.BytesSent += int64(wrote)
	c.PendingWrite = total - wrote
}

// CloseConn closes the connection for descriptor fd with the given reason, if
// it is still open.
func (h *Handler) CloseConn(now core.Time, fd int, reason CloseReason) {
	if c, ok := h.Conns[fd]; ok {
		h.closeConn(c, reason)
	}
}

func (h *Handler) closeConn(c *Conn, reason CloseReason) {
	// The identity check (not just presence) keeps a stale double-close from
	// tearing down a pooled record that has since been reissued for a new
	// connection on a recycled descriptor number.
	if cur, ok := h.Conns[c.FD.Num]; !ok || cur != c {
		return
	}
	if h.OnConnClose != nil {
		h.OnConnClose(c.FD.Num)
	}
	delete(h.Conns, c.FD.Num)
	h.API.Close(c.FD)
	c.FD, c.SC = nil, nil
	h.free = append(h.free, c)
	h.Stats.Closed++
	switch reason {
	case CloseEOF:
		h.Stats.EOFCloses++
	case CloseIdle:
		h.Stats.IdleCloses++
	}
}

// SweepIdle closes connections that have been inactive longer than
// IdleTimeout and returns how many were closed. thttpd performs this from its
// timer callbacks; the simulated servers call it when their wait times out.
func (h *Handler) SweepIdle(now core.Time) int {
	if h.IdleTimeout <= 0 {
		return 0
	}
	var victims []*Conn
	for _, c := range h.Conns {
		if now.Sub(c.LastActivity) >= h.IdleTimeout {
			victims = append(victims, c)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].FD.Num < victims[j].FD.Num })
	for _, c := range victims {
		h.closeConn(c, CloseIdle)
	}
	return len(victims)
}

// CloseAll tears down every open connection (server shutdown).
func (h *Handler) CloseAll(now core.Time) {
	for _, fd := range h.OpenConns() {
		h.CloseConn(now, fd, CloseShutdown)
	}
}
