package httpcore

import (
	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/simkernel"
)

// ServeConfig customises how a Handler is wired onto an eventlib.Base. The
// zero value serves the plain thttpd shape: every readable connection goes
// through HandleReadable and idle sweeping follows Handler.IdleTimeout.
type ServeConfig struct {
	// Read handles readability on one connection; nil selects
	// Handler.HandleReadable. phhttpd wraps it with its per-connection
	// bookkeeping charge.
	Read func(now core.Time, fd int)
	// Accept, when non-nil, replaces the whole listener-readable callback:
	// the prefork server's single-acceptor mode drains the queue with
	// AcceptDetach and hands connections to sibling workers instead of
	// installing them locally. AfterAccept is not invoked for it.
	Accept func(now core.Time)
	// AfterAccept, when non-nil, runs after each accept burst with the new
	// descriptors. Edge-style backends (RT signals) must read each freshly
	// accepted connection once here, since request data that arrived before
	// registration produces no completion event.
	AfterAccept func(now core.Time, fds []int)
	// SweepInterval is the period of the idle-sweep timer (thttpd's one-second
	// timer granularity). Zero selects one second. The timer is only armed
	// when Handler.IdleTimeout is positive.
	SweepInterval core.Duration
}

// EventLoop is a Handler bound to an eventlib.Base: the listener's accept
// event, one persistent read event per open connection, and the idle-sweep
// timer. It replaces the readiness-iteration and timeout loops the servers
// used to hand-roll — they now consume only eventlib callbacks.
type EventLoop struct {
	h    *Handler
	base *eventlib.Base
	cfg  ServeConfig
	lfd  *simkernel.FD

	accept *eventlib.Event
	sweep  *eventlib.Event
	conns  []*eventlib.Event // fd-indexed; nil = no event registered

	// connTimeout is the per-connection event timeout: the keep-alive idle
	// deadline riding the base's timer wheel, re-armed automatically by every
	// firing. Zero (HTTP/1.0 mode) registers events with no timeout.
	connTimeout core.Duration

	// resume / resumeQ / resumeSpare implement pipeline-budget continuations: a
	// zero-delay one-shot timer drains the deferred descriptors in arrival
	// order on the next dispatch, so one deep pipeline yields to the rest of
	// the current batch without stalling its own remaining requests.
	resume      *eventlib.Event
	resumeQ     []int
	resumeSpare []int

	// acceptRetry / acceptBackoff implement paced accept backoff: when an
	// accept pass stalls (EMFILE, or an injected EAGAIN that may have left the
	// queue non-empty on an edge-triggered backend), a one-shot timer retries
	// the drain after an exponentially growing delay instead of spinning. A
	// pass that accepts connections resets the pace.
	acceptRetry   *eventlib.Event
	acceptBackoff core.Duration
}

// Accept-backoff pacing bounds: the first retry after a stall comes quickly,
// then the pace halves the poll rate each barren pass up to the cap. The floor
// is far above the parallel engine's lookahead, so retry timing is identical
// at every thread count.
const (
	minAcceptBackoff = core.Millisecond
	maxAcceptBackoff = 64 * core.Millisecond
)

// Attach wires the handler onto base: it registers a persistent accept event
// on the listener, installs OnConnOpen/OnConnClose so each accepted
// connection gets a persistent read event (deleted again on close), and arms
// the periodic idle-sweep timer. A nil lfd wires a loop with no listener —
// a prefork worker that only adopts connections accepted by a sibling — with
// everything but the accept event intact. It must be called from inside a
// process batch, like every other socket operation; the caller then starts
// base.Dispatch once the batch completes.
func (h *Handler) Attach(base *eventlib.Base, lfd *simkernel.FD, cfg ServeConfig) *EventLoop {
	if cfg.Read == nil {
		cfg.Read = h.HandleReadable
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = core.Second
	}
	loop := &EventLoop{h: h, base: base, cfg: cfg, lfd: lfd}
	if h.Opts.KeepAlive {
		loop.connTimeout = h.Opts.KeepAliveIdle
	}

	if lfd != nil {
		loop.accept = base.NewEvent(lfd.Num, eventlib.EvRead|eventlib.EvPersist, loop.onAcceptable)
		if err := loop.accept.Add(0); err != nil {
			panic("httpcore: registering the listener: " + err.Error())
		}
	}

	h.OnConnOpen = loop.openConn
	h.OnConnClose = loop.closeConn
	h.OnWriteBlocked = loop.blockOnWrite
	h.OnWriteDrained = loop.drainedConn
	h.OnDeferred = loop.deferConn
	h.OnAcceptStall = loop.stallAccept
	if h.K.Faults.FDLimit > 0 {
		// Survive EMFILE: hold one descriptor in reserve so the accept queue
		// can always be drained (see Handler.shedOverLimit).
		h.ArmReserve()
	}

	if h.IdleTimeout > 0 {
		loop.sweep = base.NewTimer(eventlib.EvPersist, func(_ int, _ eventlib.What, now core.Time) {
			h.SweepIdle(now)
		})
		if err := loop.sweep.Add(cfg.SweepInterval); err != nil {
			panic("httpcore: arming the sweep timer: " + err.Error())
		}
	}
	return loop
}

// Base returns the event base the loop runs on.
func (l *EventLoop) Base() *eventlib.Base { return l.base }

// ConnEvent returns the read event registered for a connection (tests).
func (l *EventLoop) ConnEvent(fd int) *eventlib.Event {
	if fd < 0 || fd >= len(l.conns) {
		return nil
	}
	return l.conns[fd]
}

// setConn records fd's registered event in the dense table.
func (l *EventLoop) setConn(fd int, ev *eventlib.Event) {
	for fd >= len(l.conns) {
		l.conns = append(l.conns, nil)
	}
	l.conns[fd] = ev
}

// onAcceptable is the listener callback: drain the accept queue, then let the
// server perform its post-accept work (the edge-style immediate read).
func (l *EventLoop) onAcceptable(_ int, _ eventlib.What, now core.Time) {
	if l.cfg.Accept != nil {
		l.cfg.Accept(now)
		return
	}
	fds := l.h.AcceptAll(now, l.lfd)
	if len(fds) > 0 {
		// Progress: the next accept stall starts pacing from the floor again.
		l.acceptBackoff = 0
	}
	if l.cfg.AfterAccept != nil && len(fds) > 0 {
		l.cfg.AfterAccept(now, fds)
	}
}

// stallAccept arms the paced accept-retry timer (Handler.OnAcceptStall): the
// accept pass ended with the queue possibly non-empty and no notification
// guaranteed to follow. Exponential pacing keeps a sustained stall (EMFILE
// with no headroom) from degenerating into a poll spin.
func (l *EventLoop) stallAccept() {
	if l.lfd == nil {
		return
	}
	if l.acceptRetry == nil {
		l.acceptRetry = l.base.NewTimer(0, l.onAcceptRetry)
	}
	if l.acceptRetry.Pending() {
		return
	}
	if l.acceptBackoff < minAcceptBackoff {
		l.acceptBackoff = minAcceptBackoff
	}
	_ = l.acceptRetry.Add(l.acceptBackoff)
	l.h.Stats.AcceptBackoffs++
	l.acceptBackoff *= 2
	if l.acceptBackoff > maxAcceptBackoff {
		l.acceptBackoff = maxAcceptBackoff
	}
}

// onAcceptRetry re-runs the accept drain when the backoff timer fires.
func (l *EventLoop) onAcceptRetry(_ int, _ eventlib.What, now core.Time) {
	l.onAcceptable(0, 0, now)
}

// connReady is the shared per-connection callback. Write readiness is served
// first — draining a blocked response may close the connection, after which
// the read branch finds no state and does nothing. An expiry that coincides
// with I/O readiness folds into the same invocation; readiness wins, and the
// re-armed timeout covers the next idle period.
func (l *EventLoop) connReady(fd int, what eventlib.What, now core.Time) {
	if what.Has(eventlib.EvWrite) {
		l.h.HandleWritable(now, fd)
	}
	if what.Has(eventlib.EvRead) {
		l.cfg.Read(now, fd)
	}
	if what.Has(eventlib.EvTimeout) && what&(eventlib.EvRead|eventlib.EvWrite) == 0 {
		l.h.CloseIdle(now, fd)
	}
}

// openConn registers a persistent read event for a freshly accepted
// connection; with keep-alive configured the event carries the idle timeout.
func (l *EventLoop) openConn(fd int) {
	ev := l.base.NewEvent(fd, eventlib.EvRead|eventlib.EvPersist, l.connReady)
	l.setConn(fd, ev)
	_ = ev.Add(l.connTimeout)
}

// blockOnWrite upgrades a connection's event to read+write interest: the
// handler's response jammed against the peer's receive window, and only a
// writability event (the window update) can resume it. The base allows one
// event per descriptor, so the read event is replaced rather than augmented —
// the same re-registration a real server performs with epoll_ctl(MOD).
func (l *EventLoop) blockOnWrite(fd int) {
	ev := l.ConnEvent(fd)
	if ev == nil {
		return
	}
	_ = ev.Del()
	nev := l.base.NewEvent(fd, eventlib.EvRead|eventlib.EvWrite|eventlib.EvPersist, l.connReady)
	l.setConn(fd, nev)
	_ = nev.Add(l.connTimeout)
}

// drainedConn is blockOnWrite's inverse: the parked response finished and the
// persistent connection stays open, so the descriptor downgrades back to
// read-only interest (epoll_ctl(MOD) in a real server).
func (l *EventLoop) drainedConn(fd int) {
	ev := l.ConnEvent(fd)
	if ev == nil {
		return
	}
	_ = ev.Del()
	nev := l.base.NewEvent(fd, eventlib.EvRead|eventlib.EvPersist, l.connReady)
	l.setConn(fd, nev)
	_ = nev.Add(l.connTimeout)
}

// deferConn queues fd's remaining pipelined requests for the next dispatch
// and arms the resume timer if it is not already pending.
func (l *EventLoop) deferConn(fd int) {
	l.resumeQ = append(l.resumeQ, fd)
	if l.resume == nil {
		l.resume = l.base.NewTimer(0, l.onResume)
	}
	if !l.resume.Pending() {
		_ = l.resume.Add(1) // minimal positive delay: the very next tick
	}
}

// onResume continues every deferred pipeline. The queue is swapped out first:
// a continuation that again exhausts its budget re-defers onto a fresh queue
// (and re-arms the one-shot timer) instead of extending the slice being
// walked.
func (l *EventLoop) onResume(_ int, _ eventlib.What, now core.Time) {
	q := l.resumeQ
	l.resumeQ = l.resumeSpare[:0]
	for _, fd := range q {
		l.h.Continue(now, fd)
	}
	l.resumeSpare = q[:0]
}

// Rescan drains the accept queue and reads every open connection once, as if
// each had just reported readable. Servers on transition-driven backends call
// it after a lost notification (an RT-signal queue overflow): activity the
// dropped signals announced produces no further transitions, so only an
// explicit scan rediscovers it. The AfterAccept hook is deliberately skipped —
// freshly accepted connections are read by the sweep below, and reading them
// twice would inflate the recovery's simulated cost.
func (l *EventLoop) Rescan(now core.Time) {
	if l.lfd != nil {
		l.h.AcceptAll(now, l.lfd)
	}
	for _, fd := range l.h.OpenConns() {
		// A lost writability transition (window update) is recovered the same
		// way as lost readability: retry the blocked write, then read. The
		// write may close the connection; HandleWritable and the read handler
		// both ignore unknown descriptors.
		l.h.HandleWritable(now, fd)
		l.cfg.Read(now, fd)
	}
}

// closeConn deletes the connection's event; a pending activation in the
// current dispatch batch is discarded by eventlib's Del semantics.
func (l *EventLoop) closeConn(fd int) {
	if ev := l.ConnEvent(fd); ev != nil {
		l.conns[fd] = nil
		_ = ev.Del()
	}
}
