package httpcore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/httpsim"
)

// attachLoop wires the env's handler onto a poll-backed event base. The base
// is never dispatched — tests drive the loop's callbacks directly to pin
// their semantics; the end-to-end paths run in the server packages.
func attachLoop(t *testing.T, e *env) *EventLoop {
	t.Helper()
	var loop *EventLoop
	e.p.Batch(e.k.Now(), func() {
		poller, _, err := eventlib.OpenBackend(e.k, e.p, "poll")
		if err != nil {
			t.Fatal(err)
		}
		base := eventlib.NewWithPoller(e.k, e.p, poller, eventlib.Config{})
		loop = e.handler.Attach(base, e.lfd, ServeConfig{})
	}, nil)
	e.k.Sim.Run()
	return loop
}

// TestConnReadyTimeoutRacingRequest: when the keep-alive idle expiry and a
// request's readability fold into one event activation, the request wins and
// the connection survives; a pure expiry with no readiness closes it.
func TestConnReadyTimeoutRacingRequest(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true, KeepAliveIdle: core.Second})
	loop := attachLoop(t, e)

	_, probe := e.connectAndSend(t, httpsim.FormatRequest11("/index.html", false))
	e.p.Batch(e.k.Now(), func() { e.handler.AcceptAll(e.k.Now(), e.lfd) }, nil)
	e.k.Sim.Run()
	fds := e.handler.OpenConns()
	if len(fds) != 1 {
		t.Fatalf("OpenConns = %v", fds)
	}
	fd := fds[0]
	if ev := loop.ConnEvent(fd); ev == nil {
		t.Fatal("no event registered for the accepted connection")
	}

	// Expiry and readability in the same activation: readiness is served,
	// CloseIdle is skipped, the connection stays open for its next request.
	e.p.Batch(e.k.Now(), func() {
		loop.connReady(fd, eventlib.EvRead|eventlib.EvTimeout, e.k.Now())
	}, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.Served != 1 || st.IdleCloses != 0 || st.Closed != 0 {
		t.Fatalf("stats after folded event = %+v", st)
	}
	if probe.closed {
		t.Fatal("connection closed despite the racing request")
	}

	// A pure expiry on the now-idle connection closes it.
	e.p.Batch(e.k.Now(), func() {
		loop.connReady(fd, eventlib.EvTimeout, e.k.Now())
	}, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.IdleCloses != 1 || st.Closed != 1 {
		t.Fatalf("stats after pure expiry = %+v", st)
	}
}

// TestConnEventCarriesKeepAliveTimeout: with keep-alive configured the
// per-connection event rides the timer wheel; without it the event has no
// timeout, exactly as before.
func TestConnEventCarriesKeepAliveTimeout(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		want core.Duration
	}{
		{"keepalive", Options{KeepAlive: true, KeepAliveIdle: 2 * core.Second}, 2 * core.Second},
		{"http10", Options{}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			e.handler.SetOptions(tc.opts)
			loop := attachLoop(t, e)
			if loop.connTimeout != tc.want {
				t.Fatalf("connTimeout = %v, want %v", loop.connTimeout, tc.want)
			}
		})
	}
}

// TestDeferredPipelineResumesThroughTimer: a deferral queues the descriptor
// and arms the zero-delay resume timer; firing it continues the pipeline, and
// a continuation that re-exhausts its budget re-defers onto a fresh queue.
func TestDeferredPipelineResumesThroughTimer(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true, PipelineBatch: 2})
	loop := attachLoop(t, e)

	var payload []byte
	for i := 0; i < 4; i++ {
		payload = append(payload, httpsim.FormatRequest11("/index.html", false)...)
	}
	payload = append(payload, httpsim.FormatRequest11("/index.html", true)...)
	_, probe := e.connectAndSend(t, payload)
	e.p.Batch(e.k.Now(), func() {
		for _, fd := range e.handler.AcceptAll(e.k.Now(), e.lfd) {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()

	if st := e.handler.Stats; st.Served != 2 {
		t.Fatalf("after first dispatch: %+v", st)
	}
	if len(loop.resumeQ) != 1 || loop.resume == nil || !loop.resume.Pending() {
		t.Fatalf("resume timer not armed: q=%v", loop.resumeQ)
	}

	// First firing serves the next budget's worth and re-defers the rest.
	e.p.Batch(e.k.Now(), func() { loop.onResume(0, eventlib.EvTimeout, e.k.Now()) }, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.Served != 4 {
		t.Fatalf("after first resume: %+v", st)
	}
	if len(loop.resumeQ) != 1 {
		t.Fatalf("re-deferral missing: q=%v", loop.resumeQ)
	}

	// Second firing drains the pipeline; the close request ends it.
	e.p.Batch(e.k.Now(), func() { loop.onResume(0, eventlib.EvTimeout, e.k.Now()) }, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.Served != 5 || st.Closed != 1 {
		t.Fatalf("final stats = %+v", st)
	}
	if len(loop.resumeQ) != 0 {
		t.Fatalf("resume queue not drained: %v", loop.resumeQ)
	}
	if want := 4*sizeKA + sizeClose; probe.bytes != want || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes", probe, want)
	}
}
