package httpcore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/simtest"
)

var (
	sizeKA    = httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, true)
	sizeClose = httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, false)
)

// drive accepts pending connections and dispatches HandleReadable for each.
func (e *env) drive(t *testing.T) {
	t.Helper()
	e.p.Batch(e.k.Now(), func() {
		for _, fd := range e.handler.AcceptAll(e.k.Now(), e.lfd) {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()
}

// readable dispatches one readable event on fd inside a batch.
func (e *env) readable(t *testing.T, fd int) {
	t.Helper()
	e.p.Batch(e.k.Now(), func() { e.handler.HandleReadable(e.k.Now(), fd) }, nil)
	e.k.Sim.Run()
}

func TestKeepAliveServesSequentialRequests(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})
	cc, probe := e.connectAndSend(t, httpsim.FormatRequest11("/index.html", false))
	e.drive(t)

	if st := e.handler.Stats; st.Served != 1 || st.KeptAlive != 1 || st.Closed != 0 {
		t.Fatalf("after first request: %+v", st)
	}
	if probe.bytes != sizeKA || probe.closed {
		t.Fatalf("probe = %+v, want %d bytes and open", probe, sizeKA)
	}
	fds := e.handler.OpenConns()
	if len(fds) != 1 {
		t.Fatalf("OpenConns = %v", fds)
	}

	// The second request carries Connection: close; the server answers with a
	// close response and tears the connection down.
	cc.Send(e.k.Now(), httpsim.FormatRequest11("/index.html", true))
	e.k.Sim.Run()
	e.readable(t, fds[0])

	if st := e.handler.Stats; st.Served != 2 || st.KeptAlive != 1 || st.Closed != 1 {
		t.Fatalf("after second request: %+v", st)
	}
	if probe.bytes != sizeKA+sizeClose || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes and closed", probe, sizeKA+sizeClose)
	}
}

func TestHTTP10RequestClosesEvenWithKeepAliveEnabled(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})
	_, probe := e.connectAndSend(t, httpsim.FormatRequest("/index.html"))
	e.drive(t)
	if st := e.handler.Stats; st.Served != 1 || st.KeptAlive != 0 || st.Closed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if probe.bytes != sizeClose || !probe.closed {
		t.Fatalf("probe = %+v", probe)
	}
}

func TestPipelinedBatchServedFromOneReadable(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})
	payload := append(httpsim.FormatRequest11("/index.html", false),
		append(httpsim.FormatRequest11("/index.html", false),
			httpsim.FormatRequest11("/index.html", true)...)...)
	_, probe := e.connectAndSend(t, payload)
	e.drive(t)

	if st := e.handler.Stats; st.Served != 3 || st.KeptAlive != 2 || st.Closed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := 2*sizeKA + sizeClose; probe.bytes != want || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes and closed", probe, want)
	}
	if e.handler.ServiceLatency.Count() != 3 {
		t.Fatalf("latency observations = %d", e.handler.ServiceLatency.Count())
	}
}

func TestPipelineBudgetDefersRemainder(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true, PipelineBatch: 2})
	var deferred []int
	e.handler.OnDeferred = func(fd int) { deferred = append(deferred, fd) }

	var payload []byte
	for i := 0; i < 4; i++ {
		payload = append(payload, httpsim.FormatRequest11("/index.html", false)...)
	}
	payload = append(payload, httpsim.FormatRequest11("/index.html", true)...)
	_, probe := e.connectAndSend(t, payload)
	e.drive(t)

	if st := e.handler.Stats; st.Served != 2 || st.Closed != 0 {
		t.Fatalf("after first dispatch: %+v", st)
	}
	if len(deferred) != 1 {
		t.Fatalf("deferred = %v", deferred)
	}
	fd := deferred[0]

	// The continuation serves the next budget's worth and defers again.
	e.p.Batch(e.k.Now(), func() { e.handler.Continue(e.k.Now(), fd) }, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.Served != 4 || st.Closed != 0 {
		t.Fatalf("after second dispatch: %+v", st)
	}
	if len(deferred) != 2 {
		t.Fatalf("deferred = %v", deferred)
	}

	// The final continuation serves the close request and tears down.
	e.p.Batch(e.k.Now(), func() { e.handler.Continue(e.k.Now(), fd) }, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.Served != 5 || st.KeptAlive != 4 || st.Closed != 1 {
		t.Fatalf("final stats = %+v", st)
	}
	if want := 4*sizeKA + sizeClose; probe.bytes != want || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes", probe, want)
	}
}

func TestRequestSplitAcrossTwoReadables(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})
	second := httpsim.FormatRequest11("/index.html", true)
	cut := len(second) / 2
	payload := append(httpsim.FormatRequest11("/index.html", false), second[:cut]...)
	cc, probe := e.connectAndSend(t, payload)
	e.drive(t)

	// The first request is served; the second's fragment waits in the parser.
	if st := e.handler.Stats; st.Served != 1 || st.Closed != 0 {
		t.Fatalf("after fragment: %+v", st)
	}
	fds := e.handler.OpenConns()
	if len(fds) != 1 {
		t.Fatalf("OpenConns = %v", fds)
	}

	cc.Send(e.k.Now(), second[cut:])
	e.k.Sim.Run()
	e.readable(t, fds[0])
	if st := e.handler.Stats; st.Served != 2 || st.KeptAlive != 1 || st.Closed != 1 {
		t.Fatalf("after completion: %+v", st)
	}
	if want := sizeKA + sizeClose; probe.bytes != want || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes", probe, want)
	}
}

// TestStalledWindowParksPipelineAndResumes: the first response of a pipeline
// jams against a small receive window; the parked batch resumes from
// HandleWritable once the client drains, and the buffered close request is
// served without a further readable event.
func TestStalledWindowParksPipelineAndResumes(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})
	var blocked, drained []int
	e.handler.OnWriteBlocked = func(fd int) { blocked = append(blocked, fd) }
	e.handler.OnWriteDrained = func(fd int) { drained = append(drained, fd) }

	payload := append(httpsim.FormatRequest11("/index.html", false),
		httpsim.FormatRequest11("/index.html", true)...)
	probe := &clientProbe{}
	cc := e.net.ConnectWith(e.k.Now(), netsim.ConnectOptions{RecvWindow: 1024}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, n int) { probe.bytes += n },
		OnPeerClosed: func(core.Time) { probe.closed = true },
	})
	e.k.Sim.Run()
	cc.Send(e.k.Now(), payload)
	e.k.Sim.Run()
	e.drive(t)

	if st := e.handler.Stats; st.Served != 1 || st.Closed != 0 {
		t.Fatalf("after jam: %+v", st)
	}
	if len(blocked) != 1 {
		t.Fatalf("OnWriteBlocked calls = %v", blocked)
	}
	fd := blocked[0]
	c := e.handler.Conns[fd]
	if c.PendingWrite <= 0 || !c.writeBlocked || !c.keepOpen {
		t.Fatalf("conn not parked: pending=%d blocked=%v keepOpen=%v",
			c.PendingWrite, c.writeBlocked, c.keepOpen)
	}

	// The draining client reopens the window batch by batch; each writable
	// dispatch pushes another window's worth until both responses are out.
	for i := 0; i < 64 && len(e.handler.Conns) > 0; i++ {
		e.p.Batch(e.k.Now(), func() { e.handler.HandleWritable(e.k.Now(), fd) }, nil)
		e.k.Sim.Run()
	}

	if st := e.handler.Stats; st.Served != 2 || st.KeptAlive != 1 || st.Closed != 1 {
		t.Fatalf("final stats = %+v", st)
	}
	if len(drained) != 1 {
		t.Fatalf("OnWriteDrained calls = %v", drained)
	}
	if want := sizeKA + sizeClose; probe.bytes != want || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes", probe, want)
	}
	if e.handler.ServiceLatency.Count() != 2 {
		t.Fatalf("latency observations = %d", e.handler.ServiceLatency.Count())
	}
}

func TestMaxRequestsCapClosesConnection(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true, MaxRequests: 2})
	var payload []byte
	for i := 0; i < 3; i++ {
		payload = append(payload, httpsim.FormatRequest11("/index.html", false)...)
	}
	_, probe := e.connectAndSend(t, payload)
	e.drive(t)

	// The second response reaches the cap: it goes out with Connection: close
	// and the third buffered request is never served.
	if st := e.handler.Stats; st.Served != 2 || st.KeptAlive != 1 || st.Closed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := sizeKA + sizeClose; probe.bytes != want || !probe.closed {
		t.Fatalf("probe = %+v, want %d bytes", probe, want)
	}
}

func TestCloseIdleSparesBusyConnections(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})

	// A connection with unread socket bytes is not idle: the request racing
	// the timeout wins.
	e.connectAndSend(t, httpsim.FormatRequest11("/index.html", false))
	e.p.Batch(e.k.Now(), func() { e.handler.AcceptAll(e.k.Now(), e.lfd) }, nil)
	e.k.Sim.Run()
	fd := e.handler.OpenConns()[0]
	e.p.Batch(e.k.Now(), func() { e.handler.CloseIdle(e.k.Now(), fd) }, nil)
	e.k.Sim.Run()
	if len(e.handler.Conns) != 1 || e.handler.Stats.IdleCloses != 0 {
		t.Fatalf("busy connection closed: %+v", e.handler.Stats)
	}

	// Served and drained, the connection really is idle: the timeout closes it.
	e.readable(t, fd)
	if len(e.handler.Conns) != 1 {
		t.Fatal("keep-alive connection should have survived the response")
	}
	e.p.Batch(e.k.Now(), func() { e.handler.CloseIdle(e.k.Now(), fd) }, nil)
	e.k.Sim.Run()
	if len(e.handler.Conns) != 0 || e.handler.Stats.IdleCloses != 1 {
		t.Fatalf("idle close missing: %+v", e.handler.Stats)
	}

	// Unknown descriptors are ignored.
	e.p.Batch(e.k.Now(), func() { e.handler.CloseIdle(e.k.Now(), fd) }, nil)
	e.k.Sim.Run()
	if e.handler.Stats.IdleCloses != 1 {
		t.Fatalf("stale CloseIdle fired: %+v", e.handler.Stats)
	}
}

// TestStaleEventsAfterKeepAliveCloseAreSafe: a keep-alive connection torn
// down with a response still pending must not let stale readable/writable
// events (or a stale CloseIdle) disturb a new connection reusing its pooled
// record.
func TestStaleEventsAfterKeepAliveCloseAreSafe(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{KeepAlive: true})

	probe := &clientProbe{}
	cc := e.net.ConnectWith(e.k.Now(), netsim.ConnectOptions{RecvWindow: 512, StallReads: true}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, n int) { probe.bytes += n },
		OnPeerClosed: func(core.Time) { probe.closed = true },
	})
	e.k.Sim.Run()
	cc.Send(e.k.Now(), httpsim.FormatRequest11("/index.html", false))
	e.k.Sim.Run()
	e.drive(t)

	fds := e.handler.OpenConns()
	if len(fds) != 1 {
		t.Fatalf("OpenConns = %v", fds)
	}
	stale := fds[0]
	if e.handler.Conns[stale].PendingWrite <= 0 {
		t.Fatal("response should have jammed against the stalled window")
	}

	// Shut the connection down with the response still pending, then open a
	// fresh one (the pooled record is reissued) that has request bytes in
	// flight — not yet served, not idle.
	e.p.Batch(e.k.Now(), func() { e.handler.CloseConn(e.k.Now(), stale, CloseShutdown) }, nil)
	e.k.Sim.Run()
	e.connectAndSend(t, httpsim.FormatPartialRequest("/index.html"))
	e.p.Batch(e.k.Now(), func() { e.handler.AcceptAll(e.k.Now(), e.lfd) }, nil)
	e.k.Sim.Run()
	served, closed := e.handler.Stats.Served, e.handler.Stats.Closed

	// Stale events for the old descriptor must not serve, close or write
	// anything on the new connection.
	e.p.Batch(e.k.Now(), func() {
		e.handler.HandleWritable(e.k.Now(), stale)
		e.handler.HandleReadable(e.k.Now(), stale)
		e.handler.CloseIdle(e.k.Now(), stale)
	}, nil)
	e.k.Sim.Run()
	if st := e.handler.Stats; st.Served != served || st.Closed != closed {
		t.Fatalf("stale events changed stats: %+v", st)
	}
	if got := len(e.handler.Conns); got != 1 {
		t.Fatalf("connections = %d, want the fresh one intact", got)
	}
}

func TestResponseCacheChargesHitMissAsymmetry(t *testing.T) {
	e := newEnv(t)
	e.handler.SetOptions(Options{CacheKB: 64})

	charge := func() core.Duration {
		before := e.p.TotalCharged
		e.connectAndSend(t, httpsim.FormatRequest("/index.html"))
		e.drive(t)
		return e.p.TotalCharged - before
	}
	missCost := charge()
	hitCost := charge()

	if st := e.handler.Stats; st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	pages := int64(httpsim.DefaultDocumentSize+4095) / 4096
	wantDelta := e.k.Cost.FileOpen + core.Duration(pages)*e.k.Cost.FileReadPage - e.k.Cost.CacheHit
	if missCost-hitCost != wantDelta {
		t.Fatalf("miss-hit charge delta = %v, want %v", missCost-hitCost, wantDelta)
	}
	if cs := e.handler.Cache.Stats(); cs.Hits != 1 || cs.Misses != 1 || cs.Inserts != 1 {
		t.Fatalf("cache stats = %+v", cs)
	}
	// Both responses drained, so no pins remain and the entry is evictable.
	if !e.handler.Cache.Contains("/index.html") {
		t.Fatal("document not resident after serving")
	}
}

func TestWriteModeChargeOrdering(t *testing.T) {
	serveCost := func(mode WriteMode) (core.Duration, int) {
		e := newEnv(t)
		e.handler.SetOptions(Options{WriteMode: mode})
		_, probe := e.connectAndSend(t, httpsim.FormatRequest("/index.html"))
		before := e.p.TotalCharged
		e.drive(t)
		if e.handler.Stats.Served != 1 {
			t.Fatalf("%v: served = %d", mode, e.handler.Stats.Served)
		}
		return e.p.TotalCharged - before, probe.bytes
	}

	writev, nv := serveCost(WriteWritev)
	copy2, nc := serveCost(WriteCopy)
	sendfile, ns := serveCost(WriteSendfile)

	// All three paths put the same bytes on the wire.
	if nv != sizeClose || nc != nv || ns != nv {
		t.Fatalf("bytes: writev=%d copy=%d sendfile=%d want %d", nv, nc, ns, sizeClose)
	}
	// Two syscalls cost more than one vectored write; zero-copy costs least.
	if !(sendfile < writev && writev < copy2) {
		t.Fatalf("cost ordering violated: sendfile=%v writev=%v copy=%v", sendfile, writev, copy2)
	}
}
