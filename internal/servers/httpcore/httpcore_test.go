package httpcore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// env bundles a kernel, network, server process and handler with a listener.
type env struct {
	k       *simkernel.Kernel
	net     *netsim.Network
	p       *simkernel.Proc
	api     *netsim.SockAPI
	handler *Handler
	lfd     *simkernel.FD

	opened []int
	closed []int
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	p := k.NewProc("server")
	api := netsim.NewSockAPI(k, p, n)
	e := &env{k: k, net: n, p: p, api: api}
	e.handler = NewHandler(k, p, api, nil)
	e.handler.OnConnOpen = func(fd int) { e.opened = append(e.opened, fd) }
	e.handler.OnConnClose = func(fd int) { e.closed = append(e.closed, fd) }
	p.Batch(0, func() { e.lfd, _ = api.Listen() }, nil)
	k.Sim.Run()
	return e
}

// connectAndSend opens a client connection and optionally sends a payload.
func (e *env) connectAndSend(t *testing.T, payload []byte) (*netsim.ClientConn, *clientProbe) {
	t.Helper()
	probe := &clientProbe{}
	cc := e.net.ConnectWith(e.k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, n int) { probe.bytes += n },
		OnPeerClosed: func(core.Time) { probe.closed = true },
	})
	e.k.Sim.Run()
	if payload != nil {
		cc.Send(e.k.Now(), payload)
		e.k.Sim.Run()
	}
	return cc, probe
}

type clientProbe struct {
	bytes  int
	closed bool
}

func TestNewHandlerDefaults(t *testing.T) {
	e := newEnv(t)
	if e.handler.Content == nil || e.handler.Content.Len() == 0 {
		t.Fatal("default content store not installed")
	}
	if len(e.handler.OpenConns()) != 0 {
		t.Fatal("fresh handler has connections")
	}
}

func TestAcceptAllAndServeCompleteRequest(t *testing.T) {
	e := newEnv(t)
	_, probe := e.connectAndSend(t, httpsim.FormatRequest("/index.html"))

	var accepted []int
	e.p.Batch(e.k.Now(), func() {
		accepted = e.handler.AcceptAll(e.k.Now(), e.lfd)
		for _, fd := range accepted {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()

	if len(accepted) != 1 {
		t.Fatalf("accepted = %v", accepted)
	}
	if len(e.opened) != 1 || len(e.closed) != 1 {
		t.Fatalf("callbacks: opened=%v closed=%v", e.opened, e.closed)
	}
	st := e.handler.Stats
	if st.Accepted != 1 || st.Served != 1 || st.Closed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	want := httpsim.ResponseSize(httpsim.StatusOK, httpsim.DefaultDocumentSize)
	if probe.bytes != want {
		t.Fatalf("client received %d bytes, want %d", probe.bytes, want)
	}
	if !probe.closed {
		t.Fatal("server did not close after the response (HTTP/1.0)")
	}
	if len(e.handler.Conns) != 0 {
		t.Fatal("connection table not cleaned up")
	}
}

func TestPartialRequestKeepsConnectionOpen(t *testing.T) {
	e := newEnv(t)
	_, probe := e.connectAndSend(t, httpsim.FormatPartialRequest("/index.html"))
	e.p.Batch(e.k.Now(), func() {
		for _, fd := range e.handler.AcceptAll(e.k.Now(), e.lfd) {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()

	if e.handler.Stats.Served != 0 || e.handler.Stats.Closed != 0 {
		t.Fatalf("partial request should not be served: %+v", e.handler.Stats)
	}
	if len(e.handler.Conns) != 1 {
		t.Fatal("inactive connection should remain in the table")
	}
	if probe.bytes != 0 {
		t.Fatalf("client received %d bytes", probe.bytes)
	}

	// Completing the request later serves it.
	conns := e.handler.OpenConns()
	cc := e.handler.Conns[conns[0]].SC.Peer()
	cc.Send(e.k.Now(), []byte("\r\n"))
	e.k.Sim.Run()
	e.p.Batch(e.k.Now(), func() { e.handler.HandleReadable(e.k.Now(), conns[0]) }, nil)
	e.k.Sim.Run()
	if e.handler.Stats.Served != 1 {
		t.Fatalf("completion not served: %+v", e.handler.Stats)
	}
}

func TestNotFoundAndBadRequest(t *testing.T) {
	e := newEnv(t)
	_, probe404 := e.connectAndSend(t, httpsim.FormatRequest("/missing.html"))
	e.p.Batch(e.k.Now(), func() {
		for _, fd := range e.handler.AcceptAll(e.k.Now(), e.lfd) {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()
	if e.handler.Stats.NotFound != 1 {
		t.Fatalf("stats = %+v", e.handler.Stats)
	}
	if probe404.bytes != httpsim.ResponseSize(httpsim.StatusNotFound, 0) {
		t.Fatalf("404 size = %d", probe404.bytes)
	}

	_, probe400 := e.connectAndSend(t, []byte("THIS IS NOT HTTP\r\n\r\n"))
	e.p.Batch(e.k.Now(), func() {
		for _, fd := range e.handler.AcceptAll(e.k.Now(), e.lfd) {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()
	if e.handler.Stats.BadRequests != 1 {
		t.Fatalf("stats = %+v", e.handler.Stats)
	}
	if probe400.bytes != httpsim.ResponseSize(httpsim.StatusBadReq, 0) {
		t.Fatalf("400 size = %d", probe400.bytes)
	}
}

func TestEOFBeforeRequestClosesConnection(t *testing.T) {
	e := newEnv(t)
	cc, _ := e.connectAndSend(t, nil)
	e.p.Batch(e.k.Now(), func() { e.handler.AcceptAll(e.k.Now(), e.lfd) }, nil)
	e.k.Sim.Run()
	cc.Close(e.k.Now())
	e.k.Sim.Run()

	fds := e.handler.OpenConns()
	if len(fds) != 1 {
		t.Fatalf("OpenConns = %v", fds)
	}
	e.p.Batch(e.k.Now(), func() { e.handler.HandleReadable(e.k.Now(), fds[0]) }, nil)
	e.k.Sim.Run()
	if e.handler.Stats.EOFCloses != 1 || len(e.handler.Conns) != 0 {
		t.Fatalf("stats = %+v conns = %d", e.handler.Stats, len(e.handler.Conns))
	}
}

func TestHandleReadableUnknownFDIsIgnored(t *testing.T) {
	e := newEnv(t)
	e.p.Batch(e.k.Now(), func() { e.handler.HandleReadable(e.k.Now(), 999) }, nil)
	e.k.Sim.Run()
	if e.handler.Stats.Served != 0 || e.handler.Stats.Closed != 0 {
		t.Fatalf("stats = %+v", e.handler.Stats)
	}
}

func TestSweepIdleClosesOnlyStaleConnections(t *testing.T) {
	e := newEnv(t)
	e.handler.IdleTimeout = 10 * core.Second

	// Two inactive connections established at t≈0.
	e.connectAndSend(t, httpsim.FormatPartialRequest("/index.html"))
	e.connectAndSend(t, httpsim.FormatPartialRequest("/index.html"))
	e.p.Batch(e.k.Now(), func() {
		for _, fd := range e.handler.AcceptAll(e.k.Now(), e.lfd) {
			e.handler.HandleReadable(e.k.Now(), fd)
		}
	}, nil)
	e.k.Sim.Run()
	if len(e.handler.Conns) != 2 {
		t.Fatalf("conns = %d", len(e.handler.Conns))
	}

	// A sweep before the timeout closes nothing.
	e.p.Batch(e.k.Now(), func() {
		if n := e.handler.SweepIdle(e.k.Now()); n != 0 {
			t.Errorf("early sweep closed %d", n)
		}
	}, nil)
	e.k.Sim.Run()

	// Advance past the timeout; both connections are idle and get closed.
	e.k.Sim.After(11*core.Second, func(core.Time) {})
	e.k.Sim.Run()
	e.p.Batch(e.k.Now(), func() {
		if n := e.handler.SweepIdle(e.k.Now()); n != 2 {
			t.Errorf("sweep closed %d, want 2", n)
		}
	}, nil)
	e.k.Sim.Run()
	if e.handler.Stats.IdleCloses != 2 || len(e.handler.Conns) != 0 {
		t.Fatalf("stats = %+v", e.handler.Stats)
	}

	// Sweeping with IdleTimeout disabled is a no-op.
	e.handler.IdleTimeout = 0
	if n := e.handler.SweepIdle(e.k.Now()); n != 0 {
		t.Fatalf("disabled sweep closed %d", n)
	}
}

func TestCloseAllAndCloseConnIdempotent(t *testing.T) {
	e := newEnv(t)
	e.connectAndSend(t, httpsim.FormatPartialRequest("/index.html"))
	e.connectAndSend(t, httpsim.FormatPartialRequest("/index.html"))
	e.p.Batch(e.k.Now(), func() { e.handler.AcceptAll(e.k.Now(), e.lfd) }, nil)
	e.k.Sim.Run()
	fds := e.handler.OpenConns()
	if len(fds) != 2 {
		t.Fatalf("OpenConns = %v", fds)
	}
	e.p.Batch(e.k.Now(), func() {
		e.handler.CloseConn(e.k.Now(), fds[0], CloseShutdown)
		e.handler.CloseConn(e.k.Now(), fds[0], CloseShutdown) // second close is a no-op
		e.handler.CloseAll(e.k.Now())
	}, nil)
	e.k.Sim.Run()
	if len(e.handler.Conns) != 0 {
		t.Fatal("CloseAll left connections")
	}
	if e.handler.Stats.Closed != 2 {
		t.Fatalf("Closed = %d", e.handler.Stats.Closed)
	}
	if len(e.closed) != 2 {
		t.Fatalf("OnConnClose calls = %d", len(e.closed))
	}
}
