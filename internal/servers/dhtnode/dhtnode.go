// Package dhtnode simulates a DHT/P2P rendezvous daemon over the datagram
// transport — the churn shape of the millions-mostly-idle regime. Peers ping
// a well-known address to join; the node opens a dedicated datagram socket
// per live peer (the NAT-keepalive/session shape of real DHT nodes), pongs
// every ping from it, and expires peers that go quiet past the peer timeout,
// closing their sockets. The interest set is therefore one descriptor per
// live peer, joining and leaving at the churn rate — which is exactly the
// workload that re-stresses the fd-generation machinery: descriptor numbers
// recycle constantly while pings for the dead sessions are still in flight.
//
// Like every other server the node owns no dispatch loop: the eventlib
// backend registry supplies the mechanism (poll, /dev/poll, RT signals,
// epoll, completion ring) and the node only consumes readiness callbacks.
package dhtnode

import (
	"sort"

	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/simkernel"
)

// WellKnownAddr is the rendezvous address peers ping to join.
const WellKnownAddr netsim.Addr = 1

// Config parameterises a dhtnode instance.
type Config struct {
	// Backend names the eventlib backend; empty selects stock poll().
	Backend string
	// PongSize is the reply datagram size in bytes.
	PongSize int
	// PeerTimeout expires a peer whose last ping is older than this.
	PeerTimeout core.Duration
	// SweepInterval is the period of the expiry sweep timer.
	SweepInterval core.Duration
	// MaxEventsPerWait caps how many events one wait delivers.
	MaxEventsPerWait int
}

// DefaultConfig returns a small-DHT shape: 64-byte pongs, 30-second peer
// timeout swept every second, on stock poll.
func DefaultConfig() Config {
	return Config{
		Backend:          "poll",
		PongSize:         64,
		PeerTimeout:      30 * core.Second,
		SweepInterval:    core.Second,
		MaxEventsPerWait: 1024,
	}
}

// Stats tallies the node's application events.
type Stats struct {
	Received int64 // datagrams read
	Joins    int64 // new peers admitted
	Pongs    int64 // replies sent
	Expired  int64 // peers expired by the sweep
	Orphans  int64 // datagrams on the well-known socket rejected mid-join race
}

// session is one live peer: its dedicated socket and liveness state.
type session struct {
	peer     netsim.Addr
	fd       *simkernel.FD
	sock     *netsim.DgramSock
	ev       *eventlib.Event
	lastSeen core.Time
}

// Server is a running dhtnode instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg  Config
	api  *netsim.SockAPI
	base *eventlib.Base

	mainFD   *simkernel.FD
	mainSock *netsim.DgramSock

	sessions map[netsim.Addr]*session
	byFD     []*session // fd-indexed; nil = not a session socket
	free     []*session

	stats   Stats
	started bool
}

// New creates a dhtnode bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.Backend == "" {
		cfg.Backend = "poll"
	}
	if cfg.PongSize <= 0 {
		cfg.PongSize = 64
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 30 * core.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = core.Second
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	p := k.NewProc("dhtnode")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api, sessions: make(map[netsim.Addr]*session)}

	poller, _, err := eventlib.OpenBackend(k, p, cfg.Backend)
	if err != nil {
		panic("dhtnode: " + err.Error())
	}
	s.base = eventlib.NewWithPoller(k, p, poller, eventlib.Config{
		MaxEventsPerWait: cfg.MaxEventsPerWait,
		LoopCost:         k.Cost.ServerLoopOverhead,
	})
	return s
}

// Start binds the well-known socket, arms the expiry sweep and starts
// dispatching. It may be called once.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.mainFD, s.mainSock = s.api.OpenDatagram(WellKnownAddr)
		main := s.base.NewEvent(s.mainFD.Num, eventlib.EvRead|eventlib.EvPersist, s.onReadable)
		if err := main.Add(0); err != nil {
			panic("dhtnode: registering the well-known socket: " + err.Error())
		}
		sweep := s.base.NewTimer(eventlib.EvPersist, s.onSweep)
		if err := sweep.Add(s.cfg.SweepInterval); err != nil {
			panic("dhtnode: arming the sweep timer: " + err.Error())
		}
		if q, ok := s.base.Poller().(*rtsig.Queue); ok {
			ovf := s.base.NewEvent(rtsig.OverflowFD, eventlib.EvSignal|eventlib.EvPersist,
				func(_ int, _ eventlib.What, now core.Time) {
					q.Recover()
					s.rescan(now)
				})
			if err := ovf.Add(0); err != nil {
				panic("dhtnode: arming the overflow event: " + err.Error())
			}
		}
	}, func(core.Time) {
		s.base.Dispatch()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() { s.base.Stop() }

// Stats returns the application-level counters.
func (s *Server) Stats() Stats { return s.stats }

// LivePeers reports the current session count (the interest set minus the
// well-known socket).
func (s *Server) LivePeers() int { return len(s.sessions) }

// Poller exposes the event mechanism (for experiment statistics).
func (s *Server) Poller() core.Poller { return s.base.Poller() }

// Base exposes the event base (for tests).
func (s *Server) Base() *eventlib.Base { return s.base }

// Loops counts completed event-loop iterations.
func (s *Server) Loops() int64 { return s.base.Iterations() }

// sessionAt resolves a readiness event's descriptor to its session.
func (s *Server) sessionAt(fd int) *session {
	if fd < 0 || fd >= len(s.byFD) {
		return nil
	}
	return s.byFD[fd]
}

func (s *Server) setByFD(fd int, e *session) {
	for fd >= len(s.byFD) {
		s.byFD = append(s.byFD, nil)
	}
	s.byFD[fd] = e
}

// onReadable drains whichever socket reported readable — the well-known
// rendezvous socket admits unknown senders, a session socket refreshes its
// peer.
func (s *Server) onReadable(fd int, _ eventlib.What, now core.Time) {
	if fd == s.mainFD.Num {
		s.drainMain(now)
		return
	}
	sess := s.sessionAt(fd)
	if sess == nil {
		return // stale event: the session expired before the callback ran
	}
	for {
		from, _, ok := s.api.RecvFrom(sess.fd)
		if !ok {
			return
		}
		s.stats.Received++
		sess.lastSeen = now
		s.pong(sess, from)
	}
}

// drainMain empties the well-known socket: known peers are refreshed (a
// re-ping that raced its session's pong), unknown ones join.
func (s *Server) drainMain(now core.Time) {
	for {
		from, _, ok := s.api.RecvFrom(s.mainFD)
		if !ok {
			return
		}
		s.stats.Received++
		if sess, known := s.sessions[from]; known {
			sess.lastSeen = now
			s.pong(sess, from)
			continue
		}
		s.join(now, from)
	}
}

// join admits a new peer: a dedicated datagram socket, its read event, a
// session record and the first pong (sent from the new socket, which is how
// the peer learns its session address).
func (s *Server) join(now core.Time, peer netsim.Addr) {
	var sess *session
	if n := len(s.free); n > 0 {
		sess = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		sess = &session{}
	}
	fd, sock := s.api.OpenDatagram(0)
	sess.peer, sess.fd, sess.sock, sess.lastSeen = peer, fd, sock, now
	sess.ev = s.base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, s.onReadable)
	s.sessions[peer] = sess
	s.setByFD(fd.Num, sess)
	if err := sess.ev.Add(0); err != nil {
		panic("dhtnode: registering a session socket: " + err.Error())
	}
	s.stats.Joins++
	s.pong(sess, peer)
}

// pong replies from the session's dedicated socket.
func (s *Server) pong(sess *session, to netsim.Addr) {
	if s.api.SendTo(sess.fd, to, s.cfg.PongSize) {
		s.stats.Pongs++
	}
}

// onSweep expires peers whose last ping is older than PeerTimeout, closing
// their sockets — the descriptor churn the fd-generation machinery absorbs.
// Victims close in ascending descriptor order so runs are deterministic.
func (s *Server) onSweep(_ int, _ eventlib.What, now core.Time) {
	var victims []*session
	for _, sess := range s.sessions {
		if now.Sub(sess.lastSeen) >= s.cfg.PeerTimeout {
			victims = append(victims, sess)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].fd.Num < victims[j].fd.Num })
	for _, sess := range victims {
		s.expire(sess)
	}
}

// expire tears one session down.
func (s *Server) expire(sess *session) {
	delete(s.sessions, sess.peer)
	s.byFD[sess.fd.Num] = nil
	_ = sess.ev.Del()
	s.api.Close(sess.fd)
	s.stats.Expired++
	sess.fd, sess.sock, sess.ev = nil, nil, nil
	s.free = append(s.free, sess)
}

// rescan recovers from a lost-notification condition (RT-signal queue
// overflow): read every socket once, well-known first, sessions in
// descriptor order.
func (s *Server) rescan(now core.Time) {
	s.drainMain(now)
	for fd := 0; fd < len(s.byFD); fd++ {
		if s.byFD[fd] != nil {
			s.onReadable(fd, 0, now)
		}
	}
}
