package dhtnode_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/dhtnode"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func startNode(t *testing.T, backend string, cfg dhtnode.Config) (*simkernel.Kernel, *netsim.Network, *dhtnode.Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg.Backend = backend
	s := dhtnode.New(k, n, cfg)
	s.Start()
	return k, n, s
}

// TestJoinPongExpire walks one peer through the whole session lifecycle on
// every backend: join via the well-known address, pong from a dedicated
// session socket, keepalive pings to that socket, then expiry once the peer
// goes quiet.
func TestJoinPongExpire(t *testing.T) {
	for _, backend := range []string{"poll", "devpoll", "rtsig", "epoll", "epoll-et", "compio"} {
		t.Run(backend, func(t *testing.T) {
			cfg := dhtnode.DefaultConfig()
			cfg.PeerTimeout = 50 * core.Millisecond
			cfg.SweepInterval = 10 * core.Millisecond
			k, n, s := startNode(t, backend, cfg)

			var pongs int
			var sessionAddr netsim.Addr
			var p *netsim.Peer
			p = n.NewPeer(k.Now(), netsim.PeerOptions{}, &simtest.DgramHooks{
				OnStarted: func(now core.Time) { p.SendTo(now, dhtnode.WellKnownAddr, 64) },
				OnDatagram: func(now core.Time, from netsim.Addr, size int) {
					pongs++
					sessionAddr = from
					if pongs < 3 {
						// Keepalive pings go to the session socket.
						p.SendTo(now, from, 64)
					}
				},
			})
			k.Sim.RunUntil(core.Time(20 * core.Millisecond))
			if pongs != 3 {
				t.Fatalf("pongs = %d, want 3", pongs)
			}
			if sessionAddr == dhtnode.WellKnownAddr || sessionAddr == 0 {
				t.Fatalf("pong came from %d, want a dedicated session address", sessionAddr)
			}
			if s.LivePeers() != 1 {
				t.Fatalf("live peers = %d, want 1", s.LivePeers())
			}

			// The peer goes quiet; the sweep must expire it.
			k.Sim.RunUntil(core.Time(200 * core.Millisecond))
			if s.LivePeers() != 0 {
				t.Fatalf("live peers = %d after timeout, want 0", s.LivePeers())
			}
			st := s.Stats()
			if st.Joins != 1 || st.Expired != 1 {
				t.Fatalf("joins=%d expired=%d, want 1/1", st.Joins, st.Expired)
			}
			s.Stop()
			k.Sim.Run()
		})
	}
}

// TestRejoinAfterExpiry pins that an expired peer's re-ping to the well-known
// address creates a fresh session (and a fresh descriptor).
func TestRejoinAfterExpiry(t *testing.T) {
	cfg := dhtnode.DefaultConfig()
	cfg.PeerTimeout = 20 * core.Millisecond
	cfg.SweepInterval = 5 * core.Millisecond
	k, n, s := startNode(t, "epoll", cfg)

	var pongs int
	var p *netsim.Peer
	p = n.NewPeer(k.Now(), netsim.PeerOptions{}, &simtest.DgramHooks{
		OnStarted:  func(now core.Time) { p.SendTo(now, dhtnode.WellKnownAddr, 64) },
		OnDatagram: func(now core.Time, from netsim.Addr, size int) { pongs++ },
	})
	k.Sim.RunUntil(core.Time(100 * core.Millisecond))
	if s.LivePeers() != 0 {
		t.Fatalf("peer not expired: %d live", s.LivePeers())
	}
	// Rejoin: same peer address, new session.
	p.Q().At(k.Now(), func(now core.Time) { p.SendTo(now, dhtnode.WellKnownAddr, 64) })
	k.Sim.RunUntil(core.Time(120 * core.Millisecond))
	st := s.Stats()
	if st.Joins != 2 {
		t.Fatalf("joins = %d, want 2 (rejoin)", st.Joins)
	}
	if pongs != 2 {
		t.Fatalf("pongs = %d, want 2", pongs)
	}
	s.Stop()
	k.Sim.Run()
}
