package thttpd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// startHTTP builds a running thttpd with the given persistent-connection
// options, the idle sweep disabled so only the keep-alive machinery closes
// connections.
func startHTTP(t *testing.T, opts httpcore.Options) (*simkernel.Kernel, *netsim.Network, *Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.IdleTimeout = 0
	cfg.HTTP = opts
	s := New(k, n, cfg)
	s.Start()
	k.Sim.RunUntil(core.Time(10 * core.Millisecond))
	return k, n, s
}

// TestKeepAlivePipelinedEndToEnd drives a deep pipeline through the full
// event loop: one readable dispatch serves a budget's worth, the zero-delay
// resume timer continues the rest, and the final Connection: close request
// tears the connection down.
func TestKeepAlivePipelinedEndToEnd(t *testing.T) {
	k, n, s := startHTTP(t, httpcore.Options{KeepAlive: true})

	var payload []byte
	for i := 0; i < 8; i++ {
		payload = append(payload, httpsim.FormatRequest11("/index.html", false)...)
	}
	payload = append(payload, httpsim.FormatRequest11("/index.html", true)...)

	p := &probe{}
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, b int) { p.bytes += b },
		OnPeerClosed: func(core.Time) { p.closed = true },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) { cc.Send(now, payload) })
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()

	st := s.Stats()
	if st.Served != 9 || st.KeptAlive != 8 || st.Closed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	ka := httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, true)
	cl := httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, false)
	if want := 8*ka + cl; p.bytes != want || !p.closed {
		t.Fatalf("probe = %+v, want %d bytes and closed", p, want)
	}
	if s.OpenConnections() != 0 {
		t.Fatalf("open connections = %d", s.OpenConnections())
	}
	// One latency observation per request, not per connection.
	if got := s.Handler().ServiceLatency.Count(); got != 9 {
		t.Fatalf("latency observations = %d", got)
	}
}

// TestKeepAliveIdleTimeoutEndToEnd: a persistent connection that goes quiet
// is closed by the per-connection wheel timeout, while one that keeps
// issuing requests inside the idle window survives until its close request.
func TestKeepAliveIdleTimeoutEndToEnd(t *testing.T) {
	k, n, s := startHTTP(t, httpcore.Options{KeepAlive: true, KeepAliveIdle: 500 * core.Millisecond})

	quiet := &probe{}
	qc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, b int) { quiet.bytes += b },
		OnPeerClosed: func(core.Time) { quiet.closed = true },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		qc.Send(now, httpsim.FormatRequest11("/index.html", false))
	})

	busy := &probe{}
	bc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, b int) { busy.bytes += b },
		OnPeerClosed: func(core.Time) { busy.closed = true },
	})
	// Requests every 300 ms stay inside the 500 ms idle window; the last one
	// closes voluntarily at t=1.2s, after the quiet connection has timed out.
	for i, at := range []core.Duration{core.Millisecond, 300 * core.Millisecond, 600 * core.Millisecond, 900 * core.Millisecond} {
		last := i == 3
		k.Sim.After(at, func(now core.Time) {
			bc.Send(now, httpsim.FormatRequest11("/index.html", last))
		})
	}

	k.Sim.RunUntil(core.Time(3 * core.Second))
	s.Stop()

	st := s.Stats()
	if st.Served != 5 || st.IdleCloses != 1 || st.Closed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !quiet.closed {
		t.Fatal("idle connection not closed by the keep-alive timeout")
	}
	ka := httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, true)
	cl := httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, false)
	if want := 3*ka + cl; busy.bytes != want || !busy.closed {
		t.Fatalf("busy probe = %+v, want %d bytes", busy, want)
	}
	if s.OpenConnections() != 0 {
		t.Fatalf("open connections = %d", s.OpenConnections())
	}
}

// TestKeepAliveWithCacheAndSendfileEndToEnd: the full persistent hot path —
// keep-alive, response cache and sendfile — serves repeat requests with hit
// charges and closes cleanly.
func TestKeepAliveWithCacheAndSendfileEndToEnd(t *testing.T) {
	k, n, s := startHTTP(t, httpcore.Options{
		KeepAlive: true,
		CacheKB:   64,
		WriteMode: httpcore.WriteSendfile,
	})

	p := &probe{}
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, b int) { p.bytes += b },
		OnPeerClosed: func(core.Time) { p.closed = true },
	})
	var payload []byte
	for i := 0; i < 3; i++ {
		payload = append(payload, httpsim.FormatRequest11("/index.html", i == 2)...)
	}
	k.Sim.After(core.Millisecond, func(now core.Time) { cc.Send(now, payload) })
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()

	st := s.Stats()
	if st.Served != 3 || st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v", st)
	}
	ka := httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, true)
	cl := httpsim.ResponseSizeVersion(httpsim.StatusOK, httpsim.DefaultDocumentSize, false)
	if want := 2*ka + cl; p.bytes != want || !p.closed {
		t.Fatalf("probe = %+v, want %d bytes", p, want)
	}
}
