// Package thttpd simulates the paper's thttpd: a simple single-process,
// event-driven static web server. The event backend is pluggable through the
// eventlib registry — the stock poll() baseline, the modified /dev/poll build
// (the two configurations measured in Figures 4 through 10), epoll in either
// trigger mode, or even the RT signal queue.
//
// The server owns no dispatch loop of its own: it registers callbacks on an
// eventlib.Base (accept on the listener, read per connection, a periodic
// idle-sweep timer) and lets the base compute poll timeouts and iterate
// readiness.
package thttpd

import (
	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
)

// Config parameterises a thttpd instance.
type Config struct {
	// Backend names the eventlib backend ("poll", "devpoll", "epoll",
	// "epoll-et", "rtsig"); empty selects stock poll(), the paper's baseline
	// configuration.
	Backend string
	// OpenPoller, when non-nil, overrides Backend with a custom-configured
	// poller (the ablations disable individual /dev/poll optimisations this
	// way). EdgeStyle declares its delivery semantics when they differ from
	// level-triggered.
	OpenPoller func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller
	// EdgeStyle marks an OpenPoller mechanism as transition-driven (freshly
	// accepted connections are read once unprompted). Registry backends carry
	// this flag themselves.
	EdgeStyle bool
	// Content is the static document tree; nil selects the default store with
	// the paper's 6 KB index.html.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long (thttpd's
	// connection timeout). Zero disables idle sweeping.
	IdleTimeout core.Duration
	// MaxEventsPerWait caps how many events one wait delivers.
	MaxEventsPerWait int
	// WaitTimeout is the idle-sweep timer period, mirroring thttpd's
	// one-second timer granularity.
	WaitTimeout core.Duration
	// HTTP selects the persistent-connection features (keep-alive,
	// pipelining, response cache, write path); the zero value is the
	// historical one-request HTTP/1.0 behaviour.
	HTTP httpcore.Options
}

// DefaultConfig returns the configuration used in the paper's runs: stock
// poll(), the 6 KB document, a 60-second connection timeout.
func DefaultConfig() Config {
	return Config{
		Backend:          "poll",
		IdleTimeout:      60 * core.Second,
		MaxEventsPerWait: 1024,
		WaitTimeout:      core.Second,
	}
}

// Server is a running thttpd instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg       Config
	api       *netsim.SockAPI
	base      *eventlib.Base
	edgeStyle bool
	handler   *httpcore.Handler
	lfd       *simkernel.FD

	started bool
}

// New creates a thttpd instance bound to the kernel and network. An unknown
// Backend name panics with the registry's listed-choices error; callers that
// take backend names from user input validate them through the registry (or
// the experiments kind resolver) first.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.Backend == "" {
		cfg.Backend = "poll"
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	p := k.NewProc("thttpd")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api}

	baseCfg := eventlib.Config{
		MaxEventsPerWait: cfg.MaxEventsPerWait,
		// thttpd's per-iteration bookkeeping: timer list scan, connection
		// table management, fdwatch setup.
		LoopCost: k.Cost.ServerLoopOverhead,
	}
	if cfg.OpenPoller != nil {
		s.base = eventlib.NewWithPoller(k, p, cfg.OpenPoller(k, p), baseCfg)
		s.edgeStyle = cfg.EdgeStyle
	} else {
		poller, backend, err := eventlib.OpenBackend(k, p, cfg.Backend)
		if err != nil {
			panic("thttpd: " + err.Error())
		}
		s.base = eventlib.NewWithPoller(k, p, poller, baseCfg)
		s.edgeStyle = backend.EdgeStyle
	}

	s.handler = httpcore.NewHandler(k, p, api, cfg.Content)
	s.handler.IdleTimeout = cfg.IdleTimeout
	s.handler.SetOptions(cfg.HTTP)
	return s
}

// Start opens the listening socket, wires the handler onto the event base and
// starts dispatching. It may be called once.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.lfd, _ = s.api.Listen()
		serveCfg := httpcore.ServeConfig{SweepInterval: s.cfg.WaitTimeout}
		if s.edgeStyle {
			serveCfg.AfterAccept = func(now core.Time, fds []int) {
				for _, fd := range fds {
					s.handler.HandleReadable(now, fd)
				}
			}
		}
		loop := s.handler.Attach(s.base, s.lfd, serveCfg)
		if q, ok := s.base.Poller().(*rtsig.Queue); ok {
			// On the RT-signal backend the queue can overflow; dropped signals
			// are gone for good (delivery is transition-driven), so the server
			// must do what the paper says applications must: flush the queue
			// and re-scan every descriptor it watches for activity the lost
			// signals would have announced.
			ovf := s.base.NewEvent(rtsig.OverflowFD, eventlib.EvSignal|eventlib.EvPersist,
				func(_ int, _ eventlib.What, now core.Time) {
					q.Recover()
					loop.Rescan(now)
				})
			if err := ovf.Add(0); err != nil {
				panic("thttpd: arming the overflow event: " + err.Error())
			}
		}
	}, func(core.Time) {
		s.base.Dispatch()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() { s.base.Stop() }

// Stats returns the application-level counters.
func (s *Server) Stats() httpcore.Stats { return s.handler.Stats }

// Base exposes the event base (for tests).
func (s *Server) Base() *eventlib.Base { return s.base }

// Poller exposes the event mechanism (for experiment statistics).
func (s *Server) Poller() core.Poller { return s.base.Poller() }

// Handler exposes the shared HTTP engine (for tests).
func (s *Server) Handler() *httpcore.Handler { return s.handler }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int { return len(s.handler.Conns) }

// Loops counts completed event-loop iterations.
func (s *Server) Loops() int64 { return s.base.Iterations() }
