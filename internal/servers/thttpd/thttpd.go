// Package thttpd simulates the paper's thttpd: a simple single-process,
// event-driven static web server. The event mechanism is pluggable — the stock
// poll() baseline or the modified /dev/poll build — which mirrors the two
// thttpd configurations measured in Figures 4 through 10.
package thttpd

import (
	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/epoll"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
	"repro/internal/stockpoll"
)

// Mechanism constructs the event-notification backend for a server process.
type Mechanism func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller

// StockPoll selects the unmodified poll() event core.
func StockPoll() Mechanism {
	return func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller { return stockpoll.New(k, p) }
}

// DevPoll selects the /dev/poll event core with the given options.
func DevPoll(opts devpoll.Options) Mechanism {
	return func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller { return devpoll.Open(k, p, opts) }
}

// Epoll selects the epoll event core with the given options (level- or
// edge-triggered).
func Epoll(opts epoll.Options) Mechanism {
	return func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller { return epoll.Open(k, p, opts) }
}

// Config parameterises a thttpd instance.
type Config struct {
	// Mechanism chooses the event backend; nil selects stock poll().
	Mechanism Mechanism
	// Content is the static document tree; nil selects the default store with
	// the paper's 6 KB index.html.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long (thttpd's
	// connection timeout). Zero disables idle sweeping.
	IdleTimeout core.Duration
	// MaxEventsPerWait caps how many events one wait delivers.
	MaxEventsPerWait int
	// WaitTimeout is the poll timeout used to drive timer processing (idle
	// sweeps); it mirrors thttpd's one-second timer granularity.
	WaitTimeout core.Duration
}

// DefaultConfig returns the configuration used in the paper's runs: stock
// poll(), the 6 KB document, a 60-second connection timeout.
func DefaultConfig() Config {
	return Config{
		Mechanism:        StockPoll(),
		IdleTimeout:      60 * core.Second,
		MaxEventsPerWait: 1024,
		WaitTimeout:      core.Second,
	}
}

// Server is a running thttpd instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg     Config
	api     *netsim.SockAPI
	poller  core.Poller
	handler *httpcore.Handler
	lfd     *simkernel.FD

	started   bool
	stopped   bool
	lastSweep core.Time

	// Loops counts completed event-loop iterations.
	Loops int64
}

// New creates a thttpd instance bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.Mechanism == nil {
		cfg.Mechanism = StockPoll()
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	p := k.NewProc("thttpd")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api}
	s.poller = cfg.Mechanism(k, p)
	s.handler = httpcore.NewHandler(k, p, api, cfg.Content)
	s.handler.IdleTimeout = cfg.IdleTimeout
	s.handler.OnConnOpen = func(fd int) { _ = s.poller.Add(fd, core.POLLIN) }
	s.handler.OnConnClose = func(fd int) { _ = s.poller.Remove(fd) }
	return s
}

// Start opens the listening socket, registers it with the event mechanism and
// enters the event loop. It may be called once.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.lfd, _ = s.api.Listen()
		_ = s.poller.Add(s.lfd.Num, core.POLLIN)
	}, func(done core.Time) {
		s.lastSweep = done
		s.loop()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() { s.stopped = true }

// Stats returns the application-level counters.
func (s *Server) Stats() httpcore.Stats { return s.handler.Stats }

// Poller exposes the event mechanism (for experiment statistics).
func (s *Server) Poller() core.Poller { return s.poller }

// Handler exposes the shared HTTP engine (for tests).
func (s *Server) Handler() *httpcore.Handler { return s.handler }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int { return len(s.handler.Conns) }

// loop performs one wait-and-dispatch iteration.
func (s *Server) loop() {
	if s.stopped {
		return
	}
	s.poller.Wait(s.cfg.MaxEventsPerWait, s.waitTimeout(), s.handleEvents)
}

// waitTimeout returns the poll timeout: bounded by the timer tick when idle
// sweeping is enabled, otherwise indefinite.
func (s *Server) waitTimeout() core.Duration {
	if s.cfg.IdleTimeout > 0 {
		return s.cfg.WaitTimeout
	}
	return core.Forever
}

// handleEvents processes one batch of readiness events as a single scheduling
// quantum of the server process.
func (s *Server) handleEvents(events []core.Event, now core.Time) {
	if s.stopped {
		return
	}
	s.Loops++
	s.P.Batch(now, func() {
		// thttpd's per-iteration bookkeeping: timer list scan, connection table
		// management, fdwatch setup.
		s.P.Charge(s.K.Cost.ServerLoopOverhead)
		for _, ev := range events {
			if s.lfd != nil && ev.FD == s.lfd.Num {
				s.handler.AcceptAll(now, s.lfd)
				continue
			}
			s.handler.HandleReadable(now, ev.FD)
		}
		if s.cfg.IdleTimeout > 0 && now.Sub(s.lastSweep) >= s.cfg.WaitTimeout {
			s.handler.SweepIdle(now)
			s.lastSweep = now
		}
	}, func(core.Time) {
		s.loop()
	})
}
