package thttpd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// start builds a kernel, network and running thttpd on the given backend.
func start(t *testing.T, backend string, idle core.Duration) (*simkernel.Kernel, *netsim.Network, *Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Backend = backend
	cfg.IdleTimeout = idle
	s := New(k, n, cfg)
	s.Start()
	k.Sim.RunUntil(core.Time(10 * core.Millisecond))
	return k, n, s
}

// get issues one client GET and reports bytes received and completion.
type probe struct {
	bytes  int
	closed bool
}

func get(k *simkernel.Kernel, n *netsim.Network, path string) *probe {
	p := &probe{}
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnConnected:  func(now core.Time) {},
		OnData:       func(_ core.Time, b int) { p.bytes += b },
		OnPeerClosed: func(core.Time) { p.closed = true },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		cc.Send(now, httpsim.FormatRequest(path))
	})
	return p
}

func TestServesRequestsOnStockPoll(t *testing.T) {
	k, n, s := start(t, "poll", 0)
	probes := []*probe{get(k, n, "/index.html"), get(k, n, "/small.html"), get(k, n, "/index.html")}
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()

	if s.Stats().Served != 3 {
		t.Fatalf("served = %d", s.Stats().Served)
	}
	want6k := httpsim.ResponseSize(httpsim.StatusOK, httpsim.DefaultDocumentSize)
	if probes[0].bytes != want6k || !probes[0].closed {
		t.Fatalf("probe0 = %+v", probes[0])
	}
	if probes[1].bytes != httpsim.ResponseSize(httpsim.StatusOK, 512) {
		t.Fatalf("probe1 = %+v", probes[1])
	}
	if s.Poller().Name() != "poll" {
		t.Fatalf("poller = %s", s.Poller().Name())
	}
	if s.OpenConnections() != 0 {
		t.Fatalf("open connections = %d", s.OpenConnections())
	}
	// The listener stays registered; served connections were removed.
	if s.Poller().Len() != 1 {
		t.Fatalf("poller interests = %d", s.Poller().Len())
	}
}

func TestServesRequestsOnDevPoll(t *testing.T) {
	k, n, s := start(t, "devpoll", 0)
	p := get(k, n, "/index.html")
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()
	if s.Stats().Served != 1 || !p.closed {
		t.Fatalf("served=%d probe=%+v", s.Stats().Served, p)
	}
	if s.Poller().Name() != "devpoll" {
		t.Fatalf("poller = %s", s.Poller().Name())
	}
	st := s.Poller().(core.StatsSource).MechanismStats()
	if st.Waits == 0 || st.EventsReturned == 0 {
		t.Fatalf("mechanism stats = %+v", st)
	}
}

func TestDefaultConfigFallbacks(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	s := New(k, n, Config{})
	if s.cfg.MaxEventsPerWait <= 0 || s.cfg.WaitTimeout <= 0 {
		t.Fatalf("config fallbacks not applied: %+v", s.cfg)
	}
	if s.Poller().Name() != "poll" {
		t.Fatalf("default mechanism = %s", s.Poller().Name())
	}
	// Start is idempotent.
	s.Start()
	s.Start()
	k.Sim.RunUntil(core.Time(10 * core.Millisecond))
	s.Stop()
}

func TestIdleTimeoutClosesInactiveConnections(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.IdleTimeout = 2 * core.Second
	cfg.WaitTimeout = 500 * core.Millisecond
	s := New(k, n, cfg)
	s.Start()

	peerClosed := false
	cc := n.ConnectWith(0, netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnPeerClosed: func(core.Time) { peerClosed = true },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		cc.Send(now, httpsim.FormatPartialRequest("/index.html"))
	})
	k.Sim.RunUntil(core.Time(core.Second))
	if s.OpenConnections() != 1 {
		t.Fatalf("open connections = %d", s.OpenConnections())
	}
	k.Sim.RunUntil(core.Time(5 * core.Second))
	s.Stop()
	if s.OpenConnections() != 0 {
		t.Fatalf("idle connection not closed: %d", s.OpenConnections())
	}
	if s.Stats().IdleCloses != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	if !peerClosed {
		t.Fatal("client never saw the idle-timeout close")
	}
}

func TestStopHaltsTheLoop(t *testing.T) {
	k, _, s := start(t, "poll", core.Second)
	s.Stop()
	loopsAtStop := s.Loops()
	// With the loop stopped the simulation drains (pending timers fire once and
	// no new waits are scheduled).
	k.Sim.RunUntil(core.Time(30 * core.Second))
	if s.Loops() > loopsAtStop+2 {
		t.Fatalf("loop kept running after Stop: %d -> %d", loopsAtStop, s.Loops())
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	k, n, s := start(t, "devpoll", 0)
	const conns = 200
	probes := make([]*probe, conns)
	for i := range probes {
		i := i
		// Stagger arrivals so the listener backlog (128) is never exceeded —
		// backlog overflow behaviour has its own tests in netsim and loadgen.
		k.Sim.At(k.Now().Add(core.Duration(i)*2*core.Millisecond), func(core.Time) {
			probes[i] = get(k, n, "/index.html")
		})
	}
	k.Sim.RunUntil(core.Time(10 * core.Second))
	s.Stop()
	if got := s.Stats().Served; got != conns {
		t.Fatalf("served = %d, want %d", got, conns)
	}
	for i, p := range probes {
		if !p.closed {
			t.Fatalf("probe %d incomplete", i)
		}
	}
}

// thttpd on the RT-signal backend must survive a signal-queue overflow: the
// overflow sentinel triggers a queue flush plus a full rescan (accept drain +
// one read per open connection), because the dropped signals will never be
// re-delivered. Without that recovery the server wedges and serves nothing
// after the first overflow.
func TestRtsigBackendRecoversFromOverflow(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.OpenPoller = func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
		return rtsig.New(k, p, rtsig.Options{QueueLimit: 4})
	}
	cfg.EdgeStyle = true
	s := New(k, n, cfg)
	s.Start()
	k.Sim.RunUntil(core.Time(10 * core.Millisecond))

	const conns = 30
	probes := make([]*probe, conns)
	for i := range probes {
		probes[i] = get(k, n, "/index.html")
	}
	k.Sim.RunUntil(core.Time(20 * core.Second))
	s.Stop()

	q := s.Poller().(*rtsig.Queue)
	if q.MechanismStats().Overflows == 0 {
		t.Fatal("burst never overflowed the 4-entry queue; the test exercises nothing")
	}
	if got := s.Stats().Served; got != conns {
		t.Fatalf("served = %d, want %d despite queue overflows", got, conns)
	}
	for i, p := range probes {
		if !p.closed {
			t.Fatalf("probe %d incomplete after overflow recovery", i)
		}
	}
}
