package pushcore_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/pushcore"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// subscribe is a client's one protocol message.
var subscribe = make([]byte, pushcore.SubscribeSize)

func startServer(t *testing.T, backend string, cfg pushcore.Config) (*simkernel.Kernel, *netsim.Network, *pushcore.Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg.Backend = backend
	s := pushcore.New(k, n, cfg)
	s.Start()
	return k, n, s
}

// TestFanoutReachesIdleMembers drives the canonical push shape: members
// subscribe once, go silent, and the server's ticks deliver payloads to them
// with no client-originated traffic.
func TestFanoutReachesIdleMembers(t *testing.T) {
	for _, backend := range []string{"poll", "devpoll", "rtsig", "epoll", "epoll-et", "compio"} {
		t.Run(backend, func(t *testing.T) {
			cfg := pushcore.DefaultConfig()
			cfg.FanoutSize = 4
			cfg.Payload = 256
			cfg.TickInterval = 5 * core.Millisecond
			k, n, s := startServer(t, backend, cfg)

			const members = 8
			received := make([]int, members)
			for i := 0; i < members; i++ {
				i := i
				var cc *netsim.ClientConn
				cc = n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
					OnConnected: func(now core.Time) { cc.Send(now, subscribe) },
					OnData:      func(_ core.Time, b int) { received[i] += b },
				})
			}
			k.Sim.RunUntil(core.Time(200 * core.Millisecond))
			s.Stop()
			k.Sim.Run()

			st := s.Stats()
			if st.Subscribed != members {
				t.Fatalf("subscribed = %d, want %d", st.Subscribed, members)
			}
			if st.Ticks == 0 || st.Pushed == 0 {
				t.Fatalf("no pushes happened: %+v", st)
			}
			total := 0
			for i, b := range received {
				if b%cfg.Payload != 0 {
					t.Errorf("member %d received %d bytes, not a payload multiple", i, b)
				}
				total += b
			}
			if int64(total) != st.BytesSent {
				t.Fatalf("clients received %d bytes, server sent %d", total, st.BytesSent)
			}
			if total == 0 {
				t.Fatal("no payload reached any member")
			}
		})
	}
}

// TestPushParksOnClosedWindow jams a push against a stalled reader's window:
// the payload must not be silently dropped — the remainder parks on write
// interest and the server records the jam.
func TestPushParksOnClosedWindow(t *testing.T) {
	cfg := pushcore.DefaultConfig()
	cfg.FanoutSize = 1
	cfg.Payload = 2048
	cfg.TickInterval = 5 * core.Millisecond
	k, n, s := startServer(t, "epoll", cfg)

	var cc *netsim.ClientConn
	cc = n.ConnectWith(k.Now(), netsim.ConnectOptions{RecvWindow: 512, StallReads: true}, &simtest.ConnHooks{
		OnConnected: func(now core.Time) { cc.Send(now, subscribe) },
	})
	k.Sim.RunUntil(core.Time(100 * core.Millisecond))
	s.Stop()
	k.Sim.Run()

	st := s.Stats()
	if st.WriteBlock == 0 {
		t.Fatalf("stalled reader never jammed a push: %+v", st)
	}
	if st.PushBusy == 0 {
		t.Fatalf("later ticks should have found the member busy: %+v", st)
	}
}

// TestDeterministicAcrossRuns pins that two identical runs push identical
// byte counts — the sampling is a pure function of the configuration.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		cfg := pushcore.DefaultConfig()
		cfg.FanoutSize = 3
		cfg.TickInterval = 7 * core.Millisecond
		cfg.Seed = 42
		k, n, s := startServer(t, "epoll", cfg)
		for i := 0; i < 5; i++ {
			var cc *netsim.ClientConn
			cc = n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
				OnConnected: func(now core.Time) { cc.Send(now, subscribe) },
			})
		}
		k.Sim.RunUntil(core.Time(150 * core.Millisecond))
		s.Stop()
		k.Sim.Run()
		return s.Stats().Pushed, s.Stats().BytesSent
	}
	p1, b1 := run()
	p2, b2 := run()
	if p1 != p2 || b1 != b2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", p1, b1, p2, b2)
	}
}
