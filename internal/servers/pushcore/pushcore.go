// Package pushcore is a lightweight server-push daemon — the WebSocket/chat
// shape of the millions-mostly-idle regime. Clients connect once, send a
// small subscribe message and then go silent for the whole run; the *server*
// originates all subsequent traffic, fanning a payload out to a random member
// set on every virtual-time tick. At any instant almost every connection is
// idle, so what the run measures is pure interest-set bookkeeping: the event
// mechanism holds every member readable-registered (plus write interest for
// the occasional jammed push), and the paper's mechanisms separate on how
// much that registration costs per tick, not on request throughput.
//
// The server reuses the eventlib backend registry, so it runs unchanged on
// stock poll, /dev/poll, RT signals, epoll (either trigger mode) and the
// completion ring. It deliberately does not reuse httpcore: the subscribe
// exchange is not HTTP, and the per-connection state is two integers.
package pushcore

import (
	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/simkernel"
)

// SubscribeSize is the size of the client's one subscribe message in bytes.
const SubscribeSize = 16

// Config parameterises a pushcore instance.
type Config struct {
	// Backend names the eventlib backend ("poll", "devpoll", "epoll",
	// "epoll-et", "rtsig", "compio"); empty selects stock poll().
	Backend string
	// FanoutSize is how many members one tick pushes to (sampled with
	// replacement from the member set).
	FanoutSize int
	// Payload is the pushed message size in bytes.
	Payload int
	// TickInterval is the virtual-time period of the fan-out tick.
	TickInterval core.Duration
	// Seed drives the deterministic member sampling.
	Seed uint64
	// MaxEventsPerWait caps how many events one wait delivers.
	MaxEventsPerWait int
	// SweepInterval is the granularity of the base's timer wheel wait; it
	// exists so an otherwise-idle server still iterates (thttpd's one-second
	// timer). Zero selects one second.
	SweepInterval core.Duration
}

// DefaultConfig returns a small-chat shape: 6 KB-free 512-byte payloads to 32
// members every 10 ms on stock poll.
func DefaultConfig() Config {
	return Config{
		Backend:          "poll",
		FanoutSize:       32,
		Payload:          512,
		TickInterval:     10 * core.Millisecond,
		MaxEventsPerWait: 1024,
	}
}

// Stats tallies the push server's application events.
type Stats struct {
	Accepted   int64 // connections accepted
	Subscribed int64 // members registered (subscribe message seen)
	Ticks      int64 // fan-out ticks fired
	Pushed     int64 // pushes initiated (deliveries owed to clients)
	PushBusy   int64 // pushes skipped: the member's previous push still draining
	WriteBlock int64 // pushes that jammed against the peer window
	BytesSent  int64
	Closed     int64
}

// conn is the per-connection state: a descriptor, its registered event and
// the draining state of an in-flight push.
type conn struct {
	fd  *simkernel.FD
	sc  *netsim.ServerConn
	ev  *eventlib.Event
	idx int // index in members, -1 before the subscribe
	// pending is how many push bytes the socket has not yet accepted; while
	// positive the descriptor holds read+write interest.
	pending int
}

// Server is a running pushcore instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg       Config
	api       *netsim.SockAPI
	base      *eventlib.Base
	edgeStyle bool
	lfd       *simkernel.FD

	conns   []*conn // fd-indexed; nil = closed
	members []int   // fd numbers of subscribed members
	free    []*conn

	tick   *eventlib.Event
	tickNo uint64

	stats Stats

	// OnDeliver, when non-nil, is called (inside the batch) for every push
	// initiated: the member's connection and the tick instant the payload
	// belongs to. The load generator anchors delivery latency here.
	OnDeliver func(now core.Time, sc *netsim.ServerConn)

	started bool
}

// New creates a pushcore instance bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.Backend == "" {
		cfg.Backend = "poll"
	}
	if cfg.FanoutSize <= 0 {
		cfg.FanoutSize = 32
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 512
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 10 * core.Millisecond
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = core.Second
	}
	p := k.NewProc("pushcore")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api}

	poller, backend, err := eventlib.OpenBackend(k, p, cfg.Backend)
	if err != nil {
		panic("pushcore: " + err.Error())
	}
	s.base = eventlib.NewWithPoller(k, p, poller, eventlib.Config{
		MaxEventsPerWait: cfg.MaxEventsPerWait,
		LoopCost:         k.Cost.ServerLoopOverhead,
	})
	s.edgeStyle = backend.EdgeStyle
	return s
}

// Start opens the listening socket, arms the fan-out tick and starts
// dispatching. It may be called once.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.lfd, _ = s.api.Listen()
		acc := s.base.NewEvent(s.lfd.Num, eventlib.EvRead|eventlib.EvPersist, s.onAcceptable)
		if err := acc.Add(0); err != nil {
			panic("pushcore: registering the listener: " + err.Error())
		}
		s.tick = s.base.NewTimer(eventlib.EvPersist, s.onTick)
		if err := s.tick.Add(s.cfg.TickInterval); err != nil {
			panic("pushcore: arming the tick: " + err.Error())
		}
		if q, ok := s.base.Poller().(*rtsig.Queue); ok {
			ovf := s.base.NewEvent(rtsig.OverflowFD, eventlib.EvSignal|eventlib.EvPersist,
				func(_ int, _ eventlib.What, now core.Time) {
					q.Recover()
					s.rescan(now)
				})
			if err := ovf.Add(0); err != nil {
				panic("pushcore: arming the overflow event: " + err.Error())
			}
		}
	}, func(core.Time) {
		s.base.Dispatch()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() { s.base.Stop() }

// Stats returns the application-level counters.
func (s *Server) Stats() Stats { return s.stats }

// Members reports the current member count (the interest-set size).
func (s *Server) Members() int { return len(s.members) }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int {
	open := 0
	for _, c := range s.conns {
		if c != nil {
			open++
		}
	}
	return open
}

// Poller exposes the event mechanism (for experiment statistics).
func (s *Server) Poller() core.Poller { return s.base.Poller() }

// Base exposes the event base (for tests).
func (s *Server) Base() *eventlib.Base { return s.base }

// Loops counts completed event-loop iterations.
func (s *Server) Loops() int64 { return s.base.Iterations() }

// getConn returns fd's state, nil when unknown (stale events).
func (s *Server) getConn(fd int) *conn {
	if fd < 0 || fd >= len(s.conns) {
		return nil
	}
	return s.conns[fd]
}

func (s *Server) setConn(fd int, c *conn) {
	for fd >= len(s.conns) {
		s.conns = append(s.conns, nil)
	}
	s.conns[fd] = c
}

// onAcceptable drains the accept queue, registering a persistent read event
// per new connection. Edge-style backends read each freshly accepted
// connection once: a subscribe that arrived before registration produces no
// further transition.
func (s *Server) onAcceptable(_ int, _ eventlib.What, now core.Time) {
	for {
		fd, sc, err := s.api.Accept(s.lfd)
		if err != nil {
			return
		}
		s.stats.Accepted++
		var c *conn
		if n := len(s.free); n > 0 {
			c = s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
		} else {
			c = &conn{}
		}
		c.fd, c.sc, c.idx, c.pending = fd, sc, -1, 0
		c.ev = s.base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, s.connReady)
		s.setConn(fd.Num, c)
		_ = c.ev.Add(0)
		if s.edgeStyle {
			s.readConn(now, c)
		}
	}
}

// connReady is the shared per-connection callback; write readiness first, as
// draining a jammed push may close the connection.
func (s *Server) connReady(fd int, what eventlib.What, now core.Time) {
	c := s.getConn(fd)
	if c == nil {
		return
	}
	if what.Has(eventlib.EvWrite) {
		s.drain(now, c)
		if s.getConn(fd) != c {
			return
		}
	}
	if what.Has(eventlib.EvRead) {
		s.readConn(now, c)
	}
}

// readConn consumes whatever the member sent: the subscribe message on a
// fresh connection (anything after it is ignored — members are idle by
// protocol), and the FIN when the client leaves at the end of the run.
func (s *Server) readConn(now core.Time, c *conn) {
	data, eof := s.api.Read(c.fd, 0)
	if len(data) > 0 && c.idx < 0 {
		c.idx = len(s.members)
		s.members = append(s.members, c.fd.Num)
		s.stats.Subscribed++
	}
	if eof {
		s.closeConn(c)
	}
}

// onTick fans the payload out to FanoutSize members sampled with replacement
// from the member set. The sampling hashes (seed, tick, slot) through
// splitmix64, so it is a pure function of the configuration — identical runs
// push to identical members, on any thread count.
func (s *Server) onTick(_ int, _ eventlib.What, now core.Time) {
	s.stats.Ticks++
	m := len(s.members)
	if m == 0 {
		return
	}
	for i := 0; i < s.cfg.FanoutSize; i++ {
		h := Mix(s.cfg.Seed ^ (s.tickNo*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9))
		c := s.getConn(s.members[int(h%uint64(m))])
		if c == nil {
			continue
		}
		if c.pending > 0 {
			// The member's previous push is still draining: skip rather than
			// queue unboundedly behind a slow consumer.
			s.stats.PushBusy++
			continue
		}
		s.push(now, c)
	}
	s.tickNo++
}

// push writes one payload to a member, parking the remainder on write
// interest when the peer's receive window jams it.
func (s *Server) push(now core.Time, c *conn) {
	s.stats.Pushed++
	if s.OnDeliver != nil {
		s.OnDeliver(now, c.sc)
	}
	wrote := s.api.Write(c.fd, s.cfg.Payload)
	s.stats.BytesSent += int64(wrote)
	if wrote >= s.cfg.Payload {
		return
	}
	c.pending = s.cfg.Payload - wrote
	s.stats.WriteBlock++
	// Upgrade to read+write interest (one event per descriptor, so the read
	// event is replaced — epoll_ctl(MOD) in a real server).
	_ = c.ev.Del()
	c.ev = s.base.NewEvent(c.fd.Num, eventlib.EvRead|eventlib.EvWrite|eventlib.EvPersist, s.connReady)
	_ = c.ev.Add(0)
}

// drain retries a jammed push; once it clears, the descriptor downgrades back
// to read-only interest.
func (s *Server) drain(now core.Time, c *conn) {
	if c.pending <= 0 {
		return
	}
	wrote := s.api.Write(c.fd, c.pending)
	s.stats.BytesSent += int64(wrote)
	c.pending -= wrote
	if c.pending > 0 {
		return
	}
	_ = c.ev.Del()
	c.ev = s.base.NewEvent(c.fd.Num, eventlib.EvRead|eventlib.EvPersist, s.connReady)
	_ = c.ev.Add(0)
}

// closeConn tears down a connection, swap-removing it from the member set.
func (s *Server) closeConn(c *conn) {
	if s.getConn(c.fd.Num) != c {
		return
	}
	s.conns[c.fd.Num] = nil
	_ = c.ev.Del()
	if c.idx >= 0 {
		last := len(s.members) - 1
		moved := s.members[last]
		s.members[c.idx] = moved
		s.members = s.members[:last]
		if c.idx <= last-1 {
			if mc := s.getConn(moved); mc != nil {
				mc.idx = c.idx
			}
		}
		c.idx = -1
	}
	s.api.Close(c.fd)
	s.stats.Closed++
	c.fd, c.sc, c.ev = nil, nil, nil
	s.free = append(s.free, c)
}

// rescan recovers from a lost-notification condition (RT-signal queue
// overflow): drain the accept queue, retry every jammed push and read every
// open connection once.
func (s *Server) rescan(now core.Time) {
	s.onAcceptable(0, 0, now)
	for fd := 0; fd < len(s.conns); fd++ {
		c := s.conns[fd]
		if c == nil {
			continue
		}
		s.drain(now, c)
		if s.getConn(fd) == c {
			s.readConn(now, c)
		}
	}
}

// Mix is the splitmix64 finalizer the tick sampling uses; exported so the
// load generator and tests can reproduce the sampling sequence.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
