package prefork_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/prefork"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

// startServer builds an n-worker server on a fresh SMP kernel and network.
func startServer(t *testing.T, n int, mode prefork.Mode, shard netsim.ShardPolicy) (*simkernel.Kernel, *netsim.Network, *prefork.Server) {
	t.Helper()
	k := simkernel.NewKernelSMP(nil, n)
	cfg := netsim.DefaultConfig()
	cfg.Shard = shard
	net := netsim.New(k, cfg)
	pc := prefork.DefaultConfig(n)
	pc.Mode = mode
	s := prefork.New(k, net, pc)
	s.Start()
	// Execute the start batches; a full Run would never return, since the
	// dispatch loops re-arm their wait timeouts forever.
	k.Sim.RunUntil(core.Time(core.Millisecond))
	return k, net, s
}

// drive issues count sequential HTTP requests and returns how many complete.
func drive(k *simkernel.Kernel, net *netsim.Network, count int) int {
	completed := 0
	request := []byte("GET /index.html HTTP/1.0\r\n\r\n")
	for i := 0; i < count; i++ {
		var conn *netsim.ClientConn
		conn = net.ConnectWith(k.Now().Add(core.Duration(i)*core.Millisecond), netsim.ConnectOptions{}, &simtest.ConnHooks{
			OnConnected: func(now core.Time) { conn.Send(now, request) },
			OnPeerClosed: func(now core.Time) {
				completed++
			},
		})
	}
	k.Sim.RunUntil(k.Now().Add(30 * core.Second))
	return completed
}

func TestReuseportRegistersOneListenerPerWorker(t *testing.T) {
	k, net, s := startServer(t, 4, prefork.ModeReuseport, netsim.ShardHash)
	if got := len(net.Listeners()); got != 4 {
		t.Fatalf("listeners = %d, want 4", got)
	}
	completed := drive(k, net, 40)
	if completed != 40 {
		t.Fatalf("completed = %d, want 40", completed)
	}
	served := s.PerWorkerServed()
	total := int64(0)
	for i, n := range served {
		if n == 0 {
			t.Fatalf("worker %d served nothing: %v", i, served)
		}
		total += n
	}
	if total != 40 {
		t.Fatalf("total served = %d, want 40 (%v)", total, served)
	}
	s.Stop()
}

func TestHandoffSingleListenerDealsRoundRobin(t *testing.T) {
	k, net, s := startServer(t, 4, prefork.ModeHandoff, netsim.ShardHash)
	if got := len(net.Listeners()); got != 1 {
		t.Fatalf("listeners = %d, want 1 (single acceptor)", got)
	}
	completed := drive(k, net, 40)
	if completed != 40 {
		t.Fatalf("completed = %d, want 40", completed)
	}
	if s.Handoffs != 40 {
		t.Fatalf("handoffs = %d, want 40", s.Handoffs)
	}
	for i, n := range s.PerWorkerServed() {
		if n != 10 {
			t.Fatalf("worker %d served %d, want 10 (round-robin): %v", i, n, s.PerWorkerServed())
		}
	}
	s.Stop()
}

// Workers on distinct CPUs must all do work; the kernel's other CPUs see the
// traffic their worker owns.
func TestWorkersSpreadAcrossCPUs(t *testing.T) {
	k, net, s := startServer(t, 2, prefork.ModeReuseport, netsim.ShardHash)
	if drive(k, net, 30) != 30 {
		t.Fatal("not all requests completed")
	}
	for i := 0; i < 2; i++ {
		if k.Sched.CPU(i).Jobs == 0 {
			t.Fatalf("CPU %d did no work", i)
		}
	}
	s.Stop()
}

// Two identical multi-worker runs must be byte-for-byte deterministic.
func TestPreforkDeterminism(t *testing.T) {
	type outcome struct {
		Completed int
		Served    []int64
		Executed  int64
		Now       core.Time
	}
	run := func() outcome {
		k, net, s := startServer(t, 4, prefork.ModeReuseport, netsim.ShardHash)
		completed := drive(k, net, 50)
		s.Stop()
		k.Sim.RunUntil(k.Now().Add(5 * core.Second))
		return outcome{Completed: completed, Served: s.PerWorkerServed(), Executed: k.Sim.Executed, Now: k.Now()}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
