// Package prefork scales the thttpd shape across processors: N identical
// single-threaded workers, each with its own process (descriptor table,
// eventlib.Base, kernel-resident interest set) pinned to its own CPU — the
// architecture the descendants of this paper's work (nginx, libevent-based
// servers) converged on once multiprocessor hosts became the norm. The paper
// itself measures a uniprocessor only; this package is the axis it could not
// explore, built so that one worker degenerates exactly to the thttpd model.
//
// Two accept-distribution modes are provided, because how connections reach
// workers is the interesting design choice:
//
//   - ModeReuseport: every worker opens its own listening socket on the shared
//     port (SO_REUSEPORT) and the simulated stack shards new connections
//     across the accept queues (netsim.Config.Shard: four-tuple hash or
//     idealised round-robin). No worker ever touches another's connections.
//   - ModeHandoff: worker 0 alone listens and accepts, then deals connections
//     to workers in rotation, passing each descriptor over a UNIX-domain
//     socket (netsim.SockAPI.AcceptDetach / Adopt). This is the classic
//     pre-SO_REUSEPORT architecture; its single accept path and per-connection
//     handoff cost are what the reuseport comparison quantifies.
package prefork

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
)

// Mode selects how connections are distributed to workers.
type Mode int

// Accept-distribution modes.
const (
	// ModeReuseport shards connections across per-worker listeners in the
	// stack (SO_REUSEPORT).
	ModeReuseport Mode = iota
	// ModeHandoff funnels all accepts through worker 0, which passes
	// connections to workers round-robin over a UNIX-domain socket.
	ModeHandoff
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeHandoff {
		return "handoff"
	}
	return "reuseport"
}

// Config parameterises a prefork server.
type Config struct {
	// Workers is the number of worker processes (and the number of CPUs the
	// kernel should have been built with); zero selects 1, the thttpd shape.
	Workers int
	// Mode selects the accept-distribution architecture.
	Mode Mode
	// Backend names the eventlib backend each worker runs on; empty selects
	// epoll, the mechanism this architecture historically paired with.
	Backend string
	// Content is the static document tree; nil selects the default store.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long.
	IdleTimeout core.Duration
	// MaxEventsPerWait caps how many events one wait delivers per worker.
	MaxEventsPerWait int
	// WaitTimeout is the per-worker idle-sweep timer period.
	WaitTimeout core.Duration
	// HTTP selects the persistent-connection features (keep-alive,
	// pipelining, response cache, write path) each worker runs with; the
	// zero value is the historical one-request HTTP/1.0 behaviour.
	HTTP httpcore.Options
}

// DefaultConfig returns an N-worker configuration matching thttpd's defaults
// per worker, on epoll, with SO_REUSEPORT-style sharding.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:          workers,
		Mode:             ModeReuseport,
		Backend:          "epoll",
		IdleTimeout:      60 * core.Second,
		MaxEventsPerWait: 1024,
		WaitTimeout:      core.Second,
	}
}

// Worker is one of the server's identical single-threaded processes.
type Worker struct {
	Index int
	P     *simkernel.Proc

	api       *netsim.SockAPI
	base      *eventlib.Base
	edgeStyle bool
	handler   *httpcore.Handler
	loop      *httpcore.EventLoop
	lfd       *simkernel.FD
}

// Base exposes the worker's event base (for tests and experiments).
func (w *Worker) Base() *eventlib.Base { return w.base }

// Handler exposes the worker's HTTP engine (for tests and experiments).
func (w *Worker) Handler() *httpcore.Handler { return w.handler }

// Stats returns the worker's application-level counters.
func (w *Worker) Stats() httpcore.Stats { return w.handler.Stats }

// OpenConnections reports how many connections the worker currently holds.
func (w *Worker) OpenConnections() int { return len(w.handler.Conns) }

// Server is a running prefork instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network

	cfg     Config
	workers []*Worker
	rrNext  int
	started bool

	// Handoffs counts connections passed from worker 0 to a sibling in
	// ModeHandoff.
	Handoffs int64
}

// New creates a prefork server bound to the kernel and network. Workers are
// pinned to CPUs round-robin (worker i to CPU i mod NumCPU), so a kernel built
// with NewKernelSMP(cost, workers) gives each worker its own core, and a
// uniprocessor kernel serialises them all — the degenerate case the paper
// measured. An unknown Backend name panics with the registry's listed-choices
// error, as thttpd does.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = "epoll"
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	s := &Server{K: k, Net: net, cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		p := k.NewProcOn(fmt.Sprintf("worker%d", i), k.Sched.CPU(i%k.Sched.NumCPU()))
		w := &Worker{Index: i, P: p, api: netsim.NewSockAPI(k, p, net)}
		poller, backend, err := eventlib.OpenBackend(k, p, cfg.Backend)
		if err != nil {
			panic("prefork: " + err.Error())
		}
		w.base = eventlib.NewWithPoller(k, p, poller, eventlib.Config{
			MaxEventsPerWait: cfg.MaxEventsPerWait,
			LoopCost:         k.Cost.ServerLoopOverhead,
		})
		w.edgeStyle = backend.EdgeStyle
		w.handler = httpcore.NewHandler(k, p, w.api, cfg.Content)
		w.handler.SetOptions(cfg.HTTP)
		w.handler.IdleTimeout = cfg.IdleTimeout
		s.workers = append(s.workers, w)
	}
	return s
}

// Config returns the active configuration.
func (s *Server) Config() Config { return s.cfg }

// Workers returns the worker processes in index order.
func (s *Server) Workers() []*Worker { return s.workers }

// Start opens the listening socket(s), wires each worker's handler onto its
// event base and starts all dispatch loops. It may be called once.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, w := range s.workers {
		w := w
		listens := s.cfg.Mode == ModeReuseport || w.Index == 0
		w.P.Batch(s.K.Now(), func() {
			serveCfg := httpcore.ServeConfig{SweepInterval: s.cfg.WaitTimeout}
			if w.edgeStyle {
				serveCfg.AfterAccept = func(now core.Time, fds []int) {
					for _, fd := range fds {
						w.handler.HandleReadable(now, fd)
					}
				}
			}
			if s.cfg.Mode == ModeHandoff && w.Index == 0 {
				serveCfg.Accept = func(now core.Time) { s.acceptAndDeal(w, now) }
			}
			if listens {
				w.lfd, _ = w.api.Listen()
			}
			// Non-listening handoff workers attach with a nil listener: the
			// same per-connection events, idle sweep and Rescan recovery,
			// minus the accept event.
			w.loop = w.handler.Attach(w.base, w.lfd, serveCfg)
			if q, ok := w.base.Poller().(*rtsig.Queue); ok {
				s.armOverflowRecovery(w, q)
			}
		}, func(core.Time) {
			w.base.Dispatch()
		})
	}
}

// armOverflowRecovery mirrors thttpd's RT-signal overflow handling per
// worker: flush the queue and rescan every connection the lost signals might
// have announced (for a non-listening worker, Rescan skips the accept drain).
func (s *Server) armOverflowRecovery(w *Worker, q *rtsig.Queue) {
	ovf := w.base.NewEvent(rtsig.OverflowFD, eventlib.EvSignal|eventlib.EvPersist,
		func(_ int, _ eventlib.What, now core.Time) {
			q.Recover()
			w.loop.Rescan(now)
		})
	if err := ovf.Add(0); err != nil {
		panic("prefork: arming the overflow event: " + err.Error())
	}
}

// acceptAndDeal is worker 0's listener callback in ModeHandoff: drain the
// accept queue with AcceptDetach and deal each connection to a worker in
// rotation. The adoption runs in the receiving worker's own batch — the
// recvmsg side of descriptor passing happens in that process — and is
// deferred to the instant the acceptor's batch completes: the passed
// descriptor only becomes visible to the sibling once the CPU has actually
// finished the accept and sendmsg work that produced it.
func (s *Server) acceptAndDeal(w0 *Worker, now core.Time) {
	for {
		conn, ok := w0.api.AcceptDetach(w0.lfd)
		if !ok {
			return
		}
		target := s.workers[s.rrNext]
		s.rrNext = (s.rrNext + 1) % len(s.workers)
		s.Handoffs++
		w0.P.Defer(func(done core.Time) {
			target.P.Batch(done, func() {
				fd, ok := target.api.Adopt(conn)
				if !ok {
					return
				}
				target.handler.AdoptConn(done, fd, conn)
				// Request data may have arrived before the registration
				// existed; one unprompted read covers it, exactly like the
				// edge-style post-accept read.
				target.handler.HandleReadable(done, fd.Num)
			}, nil)
		})
	}
}

// Stop halts every worker's event loop after its current iteration.
func (s *Server) Stop() {
	for _, w := range s.workers {
		w.base.Stop()
	}
}

// Stats returns the application-level counters aggregated across workers.
func (s *Server) Stats() httpcore.Stats {
	var total httpcore.Stats
	for _, w := range s.workers {
		st := w.handler.Stats
		total.Accepted += st.Accepted
		total.Served += st.Served
		total.NotFound += st.NotFound
		total.BadRequests += st.BadRequests
		total.EOFCloses += st.EOFCloses
		total.IdleCloses += st.IdleCloses
		total.Closed += st.Closed
		total.BytesSent += st.BytesSent
		total.KeptAlive += st.KeptAlive
		total.CacheHits += st.CacheHits
		total.CacheMisses += st.CacheMisses
	}
	return total
}

// MechanismStats aggregates the workers' poller statistics.
func (s *Server) MechanismStats() core.Stats {
	var total core.Stats
	for _, w := range s.workers {
		if src, ok := w.base.Poller().(core.StatsSource); ok {
			st := src.MechanismStats()
			total.Waits += st.Waits
			total.EventsReturned += st.EventsReturned
			total.DriverPolls += st.DriverPolls
			total.HintHits += st.HintHits
			total.CacheHits += st.CacheHits
			total.CopiedIn += st.CopiedIn
			total.CopiedOut += st.CopiedOut
			total.Overflows += st.Overflows
			total.Enqueued += st.Enqueued
			total.Dropped += st.Dropped
		}
	}
	return total
}

// ServiceLatency merges the workers' request-latency histograms into one
// server-wide distribution, in worker order (the fixed bucket layout makes
// the merge an exact bucket-wise sum).
func (s *Server) ServiceLatency() metrics.LatencyHist {
	var merged metrics.LatencyHist
	for _, w := range s.workers {
		merged.Merge(&w.handler.ServiceLatency)
	}
	return merged
}

// Loops counts completed event-loop iterations across all workers.
func (s *Server) Loops() int64 {
	var total int64
	for _, w := range s.workers {
		total += w.base.Iterations()
	}
	return total
}

// OpenConnections reports how many connections the server currently holds
// across all workers.
func (s *Server) OpenConnections() int {
	total := 0
	for _, w := range s.workers {
		total += len(w.handler.Conns)
	}
	return total
}

// PerWorkerServed reports each worker's served-request count, in worker
// order: the balance the sharding policy achieved.
func (s *Server) PerWorkerServed() []int64 {
	out := make([]int64, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.handler.Stats.Served
	}
	return out
}

var _ core.StatsSource = (*Server)(nil)
