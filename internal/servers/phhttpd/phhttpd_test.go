package phhttpd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func start(t *testing.T, cfg Config) (*simkernel.Kernel, *netsim.Network, *Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	s := New(k, n, cfg)
	s.Start()
	k.Sim.RunUntil(core.Time(10 * core.Millisecond))
	return k, n, s
}

type probe struct {
	bytes  int
	closed bool
}

func get(k *simkernel.Kernel, n *netsim.Network, path string) *probe {
	p := &probe{}
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, b int) { p.bytes += b },
		OnPeerClosed: func(core.Time) { p.closed = true },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		cc.Send(now, httpsim.FormatRequest(path))
	})
	return p
}

func TestModeStringAndDefaults(t *testing.T) {
	if ModeSignal.String() != "signal" || ModePolling.String() != "polling" {
		t.Fatal("mode strings wrong")
	}
	cfg := DefaultConfig()
	if cfg.QueueLimit != 1024 || cfg.BatchDequeue || cfg.PerConnOverhead <= 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Zero-value config gets sensible fallbacks.
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	s := New(k, n, Config{})
	if s.cfg.QueueLimit <= 0 || s.cfg.Signo == 0 || s.cfg.MaxEventsPerWait <= 0 || s.cfg.WaitTimeout <= 0 {
		t.Fatalf("fallbacks = %+v", s.cfg)
	}
}

func TestServesRequestsViaRTSignals(t *testing.T) {
	k, n, s := start(t, DefaultConfig())
	probes := []*probe{get(k, n, "/index.html"), get(k, n, "/index.html")}
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()

	if s.Stats().Served != 2 {
		t.Fatalf("served = %d", s.Stats().Served)
	}
	for i, p := range probes {
		if !p.closed || p.bytes != httpsim.ResponseSize(httpsim.StatusOK, httpsim.DefaultDocumentSize) {
			t.Fatalf("probe %d = %+v", i, p)
		}
	}
	if s.Mode() != ModeSignal {
		t.Fatalf("mode = %v", s.Mode())
	}
	qstats := s.SignalQueue().MechanismStats()
	if qstats.Enqueued == 0 || qstats.EventsReturned == 0 {
		t.Fatalf("queue stats = %+v", qstats)
	}
	if s.OpenConnections() != 0 {
		t.Fatalf("open connections = %d", s.OpenConnections())
	}
}

func TestQueueOverflowSwitchesToPollingAndStillServes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 8 // tiny queue so a burst overflows it
	k, n, s := start(t, cfg)

	// A burst of simultaneous connections: each enqueues a listener transition
	// and a readable completion; with limit 8 the queue overflows while the
	// server is still working through the backlog.
	const burst = 60
	probes := make([]*probe, burst)
	for i := range probes {
		probes[i] = get(k, n, "/index.html")
	}
	k.Sim.RunUntil(core.Time(10 * core.Second))

	if s.Overflows == 0 {
		t.Fatal("queue never overflowed")
	}
	if s.Mode() != ModePolling {
		t.Fatalf("mode after overflow = %v", s.Mode())
	}
	if s.Handoffs == 0 {
		t.Fatal("no connections were handed to the poll sibling")
	}
	// The poll sibling owns the listener and keeps serving: a new request after
	// recovery still completes.
	late := get(k, n, "/index.html")
	k.Sim.RunUntil(core.Time(20 * core.Second))
	s.Stop()
	if !late.closed {
		t.Fatal("request after overflow recovery was not served")
	}
	if s.PollSet().Len() == 0 {
		t.Fatal("poll sibling interest set is empty")
	}
	// The paper notes phhttpd never switches back to signal mode.
	if s.Mode() != ModePolling {
		t.Fatal("server switched back to signal mode, which phhttpd never did")
	}
	if st := s.Stats(); st.Served < burst/2 {
		t.Fatalf("served only %d of %d despite recovery", st.Served, burst)
	}
}

func TestBatchDequeueConfigurationServes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchDequeue = true
	cfg.MaxEventsPerWait = 32
	k, n, s := start(t, cfg)
	const conns = 50
	probes := make([]*probe, conns)
	for i := range probes {
		probes[i] = get(k, n, "/index.html")
	}
	k.Sim.RunUntil(core.Time(5 * core.Second))
	s.Stop()
	if s.Stats().Served != conns {
		t.Fatalf("served = %d", s.Stats().Served)
	}
	if s.SignalQueue().Options().BatchDequeue != true {
		t.Fatal("batch dequeue not propagated")
	}
}

func TestIdleTimeoutSweepsInactiveConnections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 2 * core.Second
	cfg.WaitTimeout = 500 * core.Millisecond
	k, n, s := start(t, cfg)
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		cc.Send(now, httpsim.FormatPartialRequest("/index.html"))
	})
	k.Sim.RunUntil(core.Time(core.Second))
	if s.OpenConnections() != 1 {
		t.Fatalf("open = %d", s.OpenConnections())
	}
	k.Sim.RunUntil(core.Time(6 * core.Second))
	s.Stop()
	if s.OpenConnections() != 0 || s.Stats().IdleCloses != 1 {
		t.Fatalf("idle sweep failed: open=%d stats=%+v", s.OpenConnections(), s.Stats())
	}
}
