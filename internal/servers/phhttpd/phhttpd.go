// Package phhttpd simulates Zach Brown's phhttpd as the paper benchmarks it
// (§2, §5.2, §6): a static-content server driven by POSIX RT signals. Each
// accepted descriptor is registered with fcntl(F_SETSIG); the server keeps the
// signals masked and collects completions one at a time with sigwaitinfo().
//
// The overflow-recovery path reproduces the behaviour the paper criticises in
// §6: when the RT signal queue overflows, the server flushes pending signals,
// hands every open connection — one at a time, over a UNIX-domain socket — to
// a poll sibling, rebuilds the pollfd array from scratch, and then runs in
// polling mode for the rest of its life ("the current phhttpd server does not
// switch from polling mode back to RT signal queue mode").
//
// The server runs on an eventlib.Base whose wait target starts as the RT
// signal queue; overflow recovery re-registers every pending event on the
// poll sibling and activates it. The overflow sentinel itself arrives through
// an eventlib signal event on rtsig.OverflowFD.
package phhttpd

import (
	"repro/internal/core"
	"repro/internal/eventlib"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
	"repro/internal/stockpoll"
)

// Mode is the server's current event-delivery mode.
type Mode int

// Modes.
const (
	ModeSignal  Mode = iota // normal operation: RT signals, one event per syscall
	ModePolling             // after queue overflow: stock poll() over all descriptors
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSignal {
		return "signal"
	}
	return "polling"
}

// Config parameterises a phhttpd instance.
type Config struct {
	// Content is the static document tree; nil selects the default store.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long.
	IdleTimeout core.Duration
	// HTTP selects the persistent-connection features (keep-alive,
	// pipelining, response cache, write path); the zero value is the
	// historical one-request HTTP/1.0 behaviour.
	HTTP httpcore.Options
	// QueueLimit is the RT signal queue maximum (default 1024).
	QueueLimit int
	// Signo is the RT signal number assigned to descriptors.
	Signo int
	// BatchDequeue enables the sigtimedwait4() extension (§6 future work); the
	// faithful phhttpd configuration leaves it off.
	BatchDequeue bool
	// WaitTimeout is the idle-sweep timer period bounding each
	// sigwaitinfo()/poll() wait.
	WaitTimeout core.Duration
	// MaxEventsPerWait caps events per wait in polling mode and, with
	// BatchDequeue, per sigtimedwait4 call.
	MaxEventsPerWait int
	// PerConnOverhead is phhttpd's per-event bookkeeping cost per open
	// connection: the experimental server walks its per-thread connection
	// structures on every completion it handles. This is the term behind the
	// paper's unexpected observation that "inactive connections appear to
	// increase the overhead of handling active connections" (Figures 12, 13);
	// the default is calibrated to reproduce those figures' shapes.
	PerConnOverhead core.Duration
}

// DefaultConfig matches the single-threaded phhttpd configuration of the
// paper's Figures 11-13.
func DefaultConfig() Config {
	return Config{
		IdleTimeout:      60 * core.Second,
		QueueLimit:       rtsig.DefaultQueueLimit,
		Signo:            core.SIGRTMIN,
		BatchDequeue:     false,
		WaitTimeout:      core.Second,
		MaxEventsPerWait: 1024,
		PerConnOverhead:  600 * core.Nanosecond,
	}
}

// Server is a running phhttpd instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg     Config
	api     *netsim.SockAPI
	rtq     *rtsig.Queue
	pollset *stockpoll.Poller
	base    *eventlib.Base
	handler *httpcore.Handler
	lfd     *simkernel.FD

	mode    Mode
	started bool

	// Overflows counts queue overflows; Handoffs counts connections
	// transferred to the poll sibling during overflow recovery.
	Overflows int64
	Handoffs  int64
}

// New creates a phhttpd instance bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = rtsig.DefaultQueueLimit
	}
	if cfg.Signo == 0 {
		cfg.Signo = core.SIGRTMIN
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	p := k.NewProc("phhttpd")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api, mode: ModeSignal}
	s.rtq = rtsig.New(k, p, rtsig.Options{
		QueueLimit:   cfg.QueueLimit,
		Signo:        cfg.Signo,
		BatchDequeue: cfg.BatchDequeue,
	})
	s.pollset = stockpoll.New(k, p)
	// The base waits on the RT queue; the poll sibling is attached but
	// receives no interests until overflow recovery re-registers everything
	// (phhttpd does not maintain the pollfd array concurrently — the
	// weakness §6 calls out).
	s.base = eventlib.NewWithPoller(k, p, s.rtq, eventlib.Config{
		MaxEventsPerWait: cfg.MaxEventsPerWait,
	})
	s.base.AttachPoller(s.pollset)
	s.handler = httpcore.NewHandler(k, p, api, cfg.Content)
	s.handler.IdleTimeout = cfg.IdleTimeout
	s.handler.SetOptions(cfg.HTTP)
	return s
}

// Start opens the listening socket, wires the handler onto the event base and
// starts dispatching.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.lfd, _ = s.api.Listen()
		s.handler.Attach(s.base, s.lfd, httpcore.ServeConfig{
			Read:          s.handleReadable,
			SweepInterval: s.cfg.WaitTimeout,
			// Request data that arrived before F_SETSIG was issued never
			// generates a completion signal, so the signal-driven server must
			// read each freshly accepted connection once. In polling mode the
			// poll sibling reports it instead.
			AfterAccept: func(now core.Time, fds []int) {
				if s.mode != ModeSignal {
					return
				}
				for _, fd := range fds {
					s.handleReadable(now, fd)
				}
			},
		})
		// The queue-overflow sentinel (SIGIO) arrives as an event on the
		// reserved OverflowFD descriptor; a signal event routes it to the
		// recovery path without registering any poller interest.
		ovf := s.base.NewEvent(rtsig.OverflowFD, eventlib.EvSignal|eventlib.EvPersist,
			func(_ int, _ eventlib.What, now core.Time) { s.recoverFromOverflow(now) })
		if err := ovf.Add(0); err != nil {
			panic("phhttpd: arming the overflow event: " + err.Error())
		}
	}, func(core.Time) {
		s.base.Dispatch()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() { s.base.Stop() }

// Mode reports the current event-delivery mode.
func (s *Server) Mode() Mode { return s.mode }

// Stats returns the application-level counters.
func (s *Server) Stats() httpcore.Stats { return s.handler.Stats }

// Handler exposes the shared HTTP engine (service-latency histogram, tests).
func (s *Server) Handler() *httpcore.Handler { return s.handler }

// SignalQueue exposes the RT signal queue (for experiments and tests).
func (s *Server) SignalQueue() *rtsig.Queue { return s.rtq }

// PollSet exposes the overflow sibling's poll set (for tests).
func (s *Server) PollSet() *stockpoll.Poller { return s.pollset }

// Base exposes the event base (for tests).
func (s *Server) Base() *eventlib.Base { return s.base }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int { return len(s.handler.Conns) }

// Loops counts event-loop iterations.
func (s *Server) Loops() int64 { return s.base.Iterations() }

// handleReadable wraps the shared HTTP engine with phhttpd's per-connection
// bookkeeping cost: the experimental server walks structures proportional to
// its open connection count whenever it handles activity on a descriptor (see
// Config.PerConnOverhead and the paper's Figures 12-13 discussion).
func (s *Server) handleReadable(now core.Time, fd int) {
	s.P.Charge(s.cfg.PerConnOverhead.Scale(float64(len(s.handler.Conns))))
	s.handler.HandleReadable(now, fd)
}

// recoverFromOverflow implements phhttpd's expensive overflow recovery. It
// runs inside the dispatch batch.
func (s *Server) recoverFromOverflow(now core.Time) {
	if s.mode == ModePolling {
		// Already recovered; a stale SIGIO indication needs no further work.
		return
	}
	s.Overflows++
	// Flush pending signals (handler set to SIG_DFL).
	s.rtq.Recover()

	// Hand every connection, plus the listener, to the poll sibling one at a
	// time over a UNIX-domain socket — precisely the work §6 identifies as
	// likely to melt the server down under the very load that caused the
	// overflow. Activate then rebuilds the pollfd array from scratch by
	// re-registering every pending event.
	cost := s.K.Cost
	if s.lfd != nil {
		s.P.Charge(cost.ConnHandoff)
		s.Handoffs++
	}
	for range s.handler.OpenConns() {
		s.P.Charge(cost.ConnHandoff)
		s.Handoffs++
	}
	_ = s.base.Activate(s.pollset, true)
	s.mode = ModePolling
}
