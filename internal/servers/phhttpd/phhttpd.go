// Package phhttpd simulates Zach Brown's phhttpd as the paper benchmarks it
// (§2, §5.2, §6): a static-content server driven by POSIX RT signals. Each
// accepted descriptor is registered with fcntl(F_SETSIG); the server keeps the
// signals masked and collects completions one at a time with sigwaitinfo().
//
// The overflow-recovery path reproduces the behaviour the paper criticises in
// §6: when the RT signal queue overflows, the server flushes pending signals,
// hands every open connection — one at a time, over a UNIX-domain socket — to
// a poll sibling, rebuilds the pollfd array from scratch, and then runs in
// polling mode for the rest of its life ("the current phhttpd server does not
// switch from polling mode back to RT signal queue mode").
package phhttpd

import (
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
	"repro/internal/stockpoll"
)

// Mode is the server's current event-delivery mode.
type Mode int

// Modes.
const (
	ModeSignal  Mode = iota // normal operation: RT signals, one event per syscall
	ModePolling             // after queue overflow: stock poll() over all descriptors
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSignal {
		return "signal"
	}
	return "polling"
}

// Config parameterises a phhttpd instance.
type Config struct {
	// Content is the static document tree; nil selects the default store.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long.
	IdleTimeout core.Duration
	// QueueLimit is the RT signal queue maximum (default 1024).
	QueueLimit int
	// Signo is the RT signal number assigned to descriptors.
	Signo int
	// BatchDequeue enables the sigtimedwait4() extension (§6 future work); the
	// faithful phhttpd configuration leaves it off.
	BatchDequeue bool
	// WaitTimeout bounds each sigwaitinfo()/poll() wait so timers (idle sweeps)
	// can run.
	WaitTimeout core.Duration
	// MaxEventsPerWait caps events per wait in polling mode and, with
	// BatchDequeue, per sigtimedwait4 call.
	MaxEventsPerWait int
	// PerConnOverhead is phhttpd's per-event bookkeeping cost per open
	// connection: the experimental server walks its per-thread connection
	// structures on every completion it handles. This is the term behind the
	// paper's unexpected observation that "inactive connections appear to
	// increase the overhead of handling active connections" (Figures 12, 13);
	// the default is calibrated to reproduce those figures' shapes.
	PerConnOverhead core.Duration
}

// DefaultConfig matches the single-threaded phhttpd configuration of the
// paper's Figures 11-13.
func DefaultConfig() Config {
	return Config{
		IdleTimeout:      60 * core.Second,
		QueueLimit:       rtsig.DefaultQueueLimit,
		Signo:            core.SIGRTMIN,
		BatchDequeue:     false,
		WaitTimeout:      core.Second,
		MaxEventsPerWait: 1024,
		PerConnOverhead:  600 * core.Nanosecond,
	}
}

// Server is a running phhttpd instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg     Config
	api     *netsim.SockAPI
	rtq     *rtsig.Queue
	pollset *stockpoll.Poller
	handler *httpcore.Handler
	lfd     *simkernel.FD

	mode      Mode
	started   bool
	stopped   bool
	lastSweep core.Time

	// Loops counts event-loop iterations; Overflows counts queue overflows;
	// Handoffs counts connections transferred to the poll sibling during
	// overflow recovery.
	Loops     int64
	Overflows int64
	Handoffs  int64
}

// New creates a phhttpd instance bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = rtsig.DefaultQueueLimit
	}
	if cfg.Signo == 0 {
		cfg.Signo = core.SIGRTMIN
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	p := k.NewProc("phhttpd")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api, mode: ModeSignal}
	s.rtq = rtsig.New(k, p, rtsig.Options{
		QueueLimit:   cfg.QueueLimit,
		Signo:        cfg.Signo,
		BatchDequeue: cfg.BatchDequeue,
	})
	s.pollset = stockpoll.New(k, p)
	s.handler = httpcore.NewHandler(k, p, api, cfg.Content)
	s.handler.IdleTimeout = cfg.IdleTimeout
	s.handler.OnConnOpen = func(fd int) {
		if s.mode == ModeSignal {
			_ = s.rtq.Add(fd, core.POLLIN)
		} else {
			_ = s.pollset.Add(fd, core.POLLIN)
		}
	}
	s.handler.OnConnClose = func(fd int) {
		if s.rtq.Interested(fd) {
			_ = s.rtq.Remove(fd)
		}
		if s.pollset.Interested(fd) {
			_ = s.pollset.Remove(fd)
		}
	}
	return s
}

// Start opens the listening socket, registers it for RT signals and enters the
// event loop.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.lfd, _ = s.api.Listen()
		_ = s.rtq.Add(s.lfd.Num, core.POLLIN)
	}, func(done core.Time) {
		s.lastSweep = done
		s.loop()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() { s.stopped = true }

// Mode reports the current event-delivery mode.
func (s *Server) Mode() Mode { return s.mode }

// Stats returns the application-level counters.
func (s *Server) Stats() httpcore.Stats { return s.handler.Stats }

// SignalQueue exposes the RT signal queue (for experiments and tests).
func (s *Server) SignalQueue() *rtsig.Queue { return s.rtq }

// PollSet exposes the overflow sibling's poll set (for tests).
func (s *Server) PollSet() *stockpoll.Poller { return s.pollset }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int { return len(s.handler.Conns) }

// loop performs one wait-and-dispatch iteration in the current mode.
func (s *Server) loop() {
	if s.stopped {
		return
	}
	if s.mode == ModeSignal {
		max := 1
		if s.cfg.BatchDequeue {
			max = s.cfg.MaxEventsPerWait
		}
		s.rtq.Wait(max, s.cfg.WaitTimeout, s.handleEvents)
		return
	}
	s.pollset.Wait(s.cfg.MaxEventsPerWait, s.cfg.WaitTimeout, s.handleEvents)
}

// handleEvents processes one delivery (a single siginfo in signal mode, a
// batch of pollfd results in polling mode) as one scheduling quantum.
func (s *Server) handleEvents(events []core.Event, now core.Time) {
	if s.stopped {
		return
	}
	s.Loops++
	s.P.Batch(now, func() {
		for _, ev := range events {
			if ev.FD == rtsig.OverflowFD {
				s.recoverFromOverflow(now)
				continue
			}
			if s.lfd != nil && ev.FD == s.lfd.Num {
				newConns := s.handler.AcceptAll(now, s.lfd)
				if s.mode == ModeSignal {
					// Request data that arrived before F_SETSIG was issued never
					// generates a completion signal, so a signal-driven server
					// must read each freshly accepted connection once.
					for _, fd := range newConns {
						s.handleReadable(now, fd)
					}
				}
				continue
			}
			// Events are only hints: the connection may already be gone
			// (HandleReadable ignores unknown descriptors), or may have more
			// state changes queued behind this one.
			s.handleReadable(now, ev.FD)
		}
		if s.cfg.IdleTimeout > 0 && now.Sub(s.lastSweep) >= s.cfg.WaitTimeout {
			s.handler.SweepIdle(now)
			s.lastSweep = now
		}
	}, func(core.Time) {
		s.loop()
	})
}

// handleReadable wraps the shared HTTP engine with phhttpd's per-connection
// bookkeeping cost: the experimental server walks structures proportional to
// its open connection count whenever it handles activity on a descriptor (see
// Config.PerConnOverhead and the paper's Figures 12-13 discussion).
func (s *Server) handleReadable(now core.Time, fd int) {
	s.P.Charge(s.cfg.PerConnOverhead.Scale(float64(len(s.handler.Conns))))
	s.handler.HandleReadable(now, fd)
}

// recoverFromOverflow implements phhttpd's expensive overflow recovery. It
// must be called from inside a batch.
func (s *Server) recoverFromOverflow(now core.Time) {
	if s.mode == ModePolling {
		// Already recovered; a stale SIGIO indication needs no further work.
		return
	}
	s.Overflows++
	// Flush pending signals (handler set to SIG_DFL).
	s.rtq.Recover()

	// Hand every connection, plus the listener, to the poll sibling one at a
	// time over a UNIX-domain socket, and rebuild the pollfd array from
	// scratch — precisely the work §6 identifies as likely to melt the server
	// down under the very load that caused the overflow.
	cost := s.K.Cost
	if s.lfd != nil {
		s.P.Charge(cost.ConnHandoff)
		s.Handoffs++
		_ = s.pollset.Add(s.lfd.Num, core.POLLIN)
	}
	for _, fd := range s.handler.OpenConns() {
		s.P.Charge(cost.ConnHandoff)
		s.Handoffs++
		_ = s.pollset.Add(fd, core.POLLIN)
	}
	s.mode = ModePolling
}
