// Package hybrid implements the server the paper imagines but never builds
// (§4, §6): a static-content server that uses POSIX RT signals for low-latency
// event delivery while lightly loaded and switches to /dev/poll once the RT
// signal queue length signals heavy load, switching back when load subsides.
//
// Following §6's prescription, the /dev/poll interest set is maintained
// concurrently with RT signal activity, so a mode switch costs almost nothing:
// no per-connection handoff and no rebuilding of interest state — the
// weaknesses that doom phhttpd's overflow recovery.
package hybrid

import (
	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
)

// Mode is the server's current event-delivery mode.
type Mode int

// Modes.
const (
	ModeSignal  Mode = iota // RT signals: lowest latency per event
	ModePolling             // /dev/poll: highest throughput under load
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSignal {
		return "signal"
	}
	return "devpoll"
}

// BulkMechanism constructs the bulk-notification poller the server switches
// to under load. The default is /dev/poll, as the paper prescribes; epoll (the
// mechanism history converged on) plugs in the same way because both maintain
// their kernel-resident interest set concurrently with RT signal activity.
type BulkMechanism func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller

// Config parameterises the hybrid server.
type Config struct {
	// Content is the static document tree; nil selects the default store.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long.
	IdleTimeout core.Duration
	// QueueLimit is the RT signal queue maximum.
	QueueLimit int
	// HighWater is the queue length that triggers the switch to /dev/poll; the
	// paper suggests using the queue maximum itself, since overflow already
	// forces a poll. Zero selects QueueLimit/2, a slightly earlier, safer
	// crossover.
	HighWater int
	// LowWater is the queue length below which (together with small /dev/poll
	// result sets) the server switches back to signal mode.
	LowWater int
	// ConsecutiveLow is how many consecutive light /dev/poll scans are required
	// before switching back, to avoid oscillation.
	ConsecutiveLow int
	// BatchDequeue enables sigtimedwait4-style batch dequeue in signal mode.
	BatchDequeue bool
	// Bulk constructs the bulk poller used in polling mode; nil selects
	// /dev/poll with the DevPoll options below.
	Bulk BulkMechanism
	// DevPoll configures the /dev/poll instance used when Bulk is nil.
	DevPoll devpoll.Options
	// MaxEventsPerWait caps events per /dev/poll wait.
	MaxEventsPerWait int
	// WaitTimeout bounds each wait so timers can run.
	WaitTimeout core.Duration
}

// DefaultConfig returns a hybrid configuration with the crossover at half the
// RT queue limit and hysteresis on the way back down.
func DefaultConfig() Config {
	return Config{
		IdleTimeout:      60 * core.Second,
		QueueLimit:       rtsig.DefaultQueueLimit,
		HighWater:        rtsig.DefaultQueueLimit / 2,
		LowWater:         8,
		ConsecutiveLow:   4,
		BatchDequeue:     false,
		DevPoll:          devpoll.DefaultOptions(),
		MaxEventsPerWait: 1024,
		WaitTimeout:      core.Second,
	}
}

// Server is a running hybrid instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg     Config
	api     *netsim.SockAPI
	rtq     *rtsig.Queue
	dp      core.Poller
	handler *httpcore.Handler
	lfd     *simkernel.FD

	mode      Mode
	lowRuns   int
	started   bool
	stopped   bool
	lastSweep core.Time

	// Loops counts event-loop iterations. SwitchesToPoll and SwitchesToSignal
	// count mode transitions; ModeTime accumulates virtual time per mode.
	Loops            int64
	SwitchesToPoll   int64
	SwitchesToSignal int64
	lastModeChange   core.Time
	ModeTime         [2]core.Duration
}

// New creates a hybrid server bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = rtsig.DefaultQueueLimit
	}
	if cfg.HighWater <= 0 {
		cfg.HighWater = cfg.QueueLimit / 2
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = 8
	}
	if cfg.ConsecutiveLow <= 0 {
		cfg.ConsecutiveLow = 4
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	if cfg.DevPoll.ResultAreaSize == 0 {
		cfg.DevPoll = devpoll.DefaultOptions()
	}
	p := k.NewProc("hybrid")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api, mode: ModeSignal}
	s.rtq = rtsig.New(k, p, rtsig.Options{QueueLimit: cfg.QueueLimit, Signo: core.SIGRTMIN, BatchDequeue: cfg.BatchDequeue})
	if cfg.Bulk != nil {
		s.dp = cfg.Bulk(k, p)
	} else {
		s.dp = devpoll.Open(k, p, cfg.DevPoll)
	}
	s.handler = httpcore.NewHandler(k, p, api, cfg.Content)
	s.handler.IdleTimeout = cfg.IdleTimeout
	// Both event sources are kept up to date on every connection open/close,
	// which is what makes switching modes nearly free.
	s.handler.OnConnOpen = func(fd int) {
		_ = s.rtq.Add(fd, core.POLLIN)
		_ = s.dp.Add(fd, core.POLLIN)
	}
	s.handler.OnConnClose = func(fd int) {
		_ = s.rtq.Remove(fd)
		_ = s.dp.Remove(fd)
	}
	return s
}

// Start opens the listening socket, registers it with both mechanisms and
// enters the event loop.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.K.Now(), func() {
		s.lfd, _ = s.api.Listen()
		_ = s.rtq.Add(s.lfd.Num, core.POLLIN)
		_ = s.dp.Add(s.lfd.Num, core.POLLIN)
	}, func(done core.Time) {
		s.lastSweep = done
		s.lastModeChange = done
		s.loop()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() {
	s.stopped = true
	s.ModeTime[s.mode] += s.K.Now().Sub(s.lastModeChange)
	s.lastModeChange = s.K.Now()
}

// Mode reports the current event-delivery mode.
func (s *Server) Mode() Mode { return s.mode }

// ModeName names the current mode using the bulk poller's own name, so a
// hybrid built on epoll reports "epoll" rather than "devpoll".
func (s *Server) ModeName() string {
	if s.mode == ModeSignal {
		return ModeSignal.String()
	}
	return s.dp.Name()
}

// Stats returns the application-level counters.
func (s *Server) Stats() httpcore.Stats { return s.handler.Stats }

// SignalQueue exposes the RT signal queue (for tests and experiments).
func (s *Server) SignalQueue() *rtsig.Queue { return s.rtq }

// DevPollSet exposes the bulk poller — /dev/poll by default, or whatever
// Config.Bulk selected (for tests and experiments).
func (s *Server) DevPollSet() core.Poller { return s.dp }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int { return len(s.handler.Conns) }

// loop performs one wait-and-dispatch iteration in the current mode.
func (s *Server) loop() {
	if s.stopped {
		return
	}
	if s.mode == ModeSignal {
		max := 1
		if s.cfg.BatchDequeue {
			max = s.cfg.MaxEventsPerWait
		}
		s.rtq.Wait(max, s.cfg.WaitTimeout, s.handleEvents)
		return
	}
	s.dp.Wait(s.cfg.MaxEventsPerWait, s.cfg.WaitTimeout, s.handleEvents)
}

// handleEvents processes one delivery as a single scheduling quantum and then
// evaluates the mode-switch policy.
func (s *Server) handleEvents(events []core.Event, now core.Time) {
	if s.stopped {
		return
	}
	s.Loops++
	s.P.Batch(now, func() {
		for _, ev := range events {
			if ev.FD == rtsig.OverflowFD {
				// Overflow is simply an early, emphatic load signal; the
				// devpoll interest set is already current, so recovery is one
				// Recover plus the next devpoll scan.
				s.rtq.Recover()
				s.switchMode(now, ModePolling)
				continue
			}
			if s.lfd != nil && ev.FD == s.lfd.Num {
				newConns := s.handler.AcceptAll(now, s.lfd)
				if s.mode == ModeSignal {
					// As in phhttpd: data that arrived before registration never
					// raises a signal, so read freshly accepted connections once.
					for _, fd := range newConns {
						s.handler.HandleReadable(now, fd)
					}
				}
				continue
			}
			s.handler.HandleReadable(now, ev.FD)
		}
		if s.cfg.IdleTimeout > 0 && now.Sub(s.lastSweep) >= s.cfg.WaitTimeout {
			s.handler.SweepIdle(now)
			s.lastSweep = now
		}
		s.evaluateSwitch(now, len(events))
	}, func(core.Time) {
		s.loop()
	})
}

// evaluateSwitch applies the crossover policy of §4: the RT signal queue
// length is the load indicator.
func (s *Server) evaluateSwitch(now core.Time, delivered int) {
	switch s.mode {
	case ModeSignal:
		if s.rtq.QueueLength() >= s.cfg.HighWater || s.rtq.Overflowed() {
			// The queue is deep: one-at-a-time dequeueing is falling behind.
			// Flush it (the devpoll scan will rediscover everything pending)
			// and switch.
			s.rtq.Recover()
			s.switchMode(now, ModePolling)
		}
	case ModePolling:
		if delivered < s.cfg.LowWater && s.rtq.QueueLength() < s.cfg.LowWater {
			s.lowRuns++
			if s.lowRuns >= s.cfg.ConsecutiveLow {
				// Load has subsided; drain the stale signal backlog and return
				// to low-latency delivery.
				s.rtq.Recover()
				s.switchMode(now, ModeSignal)
			}
		} else {
			s.lowRuns = 0
		}
	}
}

// switchMode records a mode transition.
func (s *Server) switchMode(now core.Time, to Mode) {
	if s.mode == to {
		return
	}
	s.ModeTime[s.mode] += now.Sub(s.lastModeChange)
	s.lastModeChange = now
	s.lowRuns = 0
	if to == ModePolling {
		s.SwitchesToPoll++
	} else {
		s.SwitchesToSignal++
	}
	s.mode = to
}
