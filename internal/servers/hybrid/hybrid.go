// Package hybrid implements the server the paper imagines but never builds
// (§4, §6): a static-content server that uses POSIX RT signals for low-latency
// event delivery while lightly loaded and switches to /dev/poll once the RT
// signal queue length signals heavy load, switching back when load subsides.
//
// Following §6's prescription, the /dev/poll interest set is maintained
// concurrently with RT signal activity, so a mode switch costs almost nothing:
// no per-connection handoff and no rebuilding of interest state — the
// weaknesses that doom phhttpd's overflow recovery. On the eventlib.Base this
// is the MirrorInterest configuration: every Add and Del applies to both
// mechanisms, and a mode switch merely activates the other wait target.
package hybrid

import (
	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/eventlib"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/rtsig"
	"repro/internal/servers/httpcore"
	"repro/internal/simkernel"
)

// Mode is the server's current event-delivery mode.
type Mode int

// Modes.
const (
	ModeSignal  Mode = iota // RT signals: lowest latency per event
	ModePolling             // /dev/poll: highest throughput under load
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSignal {
		return "signal"
	}
	return "devpoll"
}

// Config parameterises the hybrid server.
type Config struct {
	// Content is the static document tree; nil selects the default store.
	Content *httpsim.ContentStore
	// IdleTimeout closes connections with no activity for this long.
	IdleTimeout core.Duration
	// HTTP selects the persistent-connection features (keep-alive,
	// pipelining, response cache, write path); the zero value is the
	// historical one-request HTTP/1.0 behaviour.
	HTTP httpcore.Options
	// QueueLimit is the RT signal queue maximum.
	QueueLimit int
	// HighWater is the queue length that triggers the switch to /dev/poll; the
	// paper suggests using the queue maximum itself, since overflow already
	// forces a poll. Zero selects QueueLimit/2, a slightly earlier, safer
	// crossover.
	HighWater int
	// LowWater is the queue length below which (together with small /dev/poll
	// result sets) the server switches back to signal mode.
	LowWater int
	// ConsecutiveLow is how many consecutive light /dev/poll scans are required
	// before switching back, to avoid oscillation.
	ConsecutiveLow int
	// BatchDequeue enables sigtimedwait4-style batch dequeue in signal mode.
	BatchDequeue bool
	// BulkBackend names the eventlib backend used as the bulk poller in
	// polling mode ("devpoll", "epoll", "epoll-et"); empty selects /dev/poll
	// with the DevPoll options below.
	BulkBackend string
	// Bulk, when non-nil, overrides BulkBackend with a custom-configured bulk
	// poller.
	Bulk func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller
	// DevPoll configures the /dev/poll instance used when Bulk and BulkBackend
	// are unset.
	DevPoll devpoll.Options
	// MaxEventsPerWait caps events per bulk-poller wait.
	MaxEventsPerWait int
	// WaitTimeout is the idle-sweep timer period bounding each wait.
	WaitTimeout core.Duration
}

// DefaultConfig returns a hybrid configuration with the crossover at half the
// RT queue limit and hysteresis on the way back down.
func DefaultConfig() Config {
	return Config{
		IdleTimeout:      60 * core.Second,
		QueueLimit:       rtsig.DefaultQueueLimit,
		HighWater:        rtsig.DefaultQueueLimit / 2,
		LowWater:         8,
		ConsecutiveLow:   4,
		BatchDequeue:     false,
		DevPoll:          devpoll.DefaultOptions(),
		MaxEventsPerWait: 1024,
		WaitTimeout:      core.Second,
	}
}

// Server is a running hybrid instance inside the simulation.
type Server struct {
	K   *simkernel.Kernel
	Net *netsim.Network
	P   *simkernel.Proc

	cfg     Config
	api     *netsim.SockAPI
	rtq     *rtsig.Queue
	dp      core.Poller
	base    *eventlib.Base
	handler *httpcore.Handler
	lfd     *simkernel.FD

	mode    Mode
	lowRuns int
	started bool
	stopped bool

	// SwitchesToPoll and SwitchesToSignal count mode transitions; ModeTime
	// accumulates virtual time per mode.
	SwitchesToPoll   int64
	SwitchesToSignal int64
	lastModeChange   core.Time
	ModeTime         [2]core.Duration
}

// New creates a hybrid server bound to the kernel and network.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Server {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = rtsig.DefaultQueueLimit
	}
	if cfg.HighWater <= 0 {
		cfg.HighWater = cfg.QueueLimit / 2
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = 8
	}
	if cfg.ConsecutiveLow <= 0 {
		cfg.ConsecutiveLow = 4
	}
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = core.Second
	}
	if cfg.DevPoll.ResultAreaSize == 0 {
		cfg.DevPoll = devpoll.DefaultOptions()
	}
	p := k.NewProc("hybrid")
	api := netsim.NewSockAPI(k, p, net)
	s := &Server{K: k, Net: net, P: p, cfg: cfg, api: api, mode: ModeSignal}
	s.rtq = rtsig.New(k, p, rtsig.Options{QueueLimit: cfg.QueueLimit, Signo: core.SIGRTMIN, BatchDequeue: cfg.BatchDequeue})
	switch {
	case cfg.Bulk != nil:
		s.dp = cfg.Bulk(k, p)
	case cfg.BulkBackend != "":
		poller, _, err := eventlib.OpenBackend(k, p, cfg.BulkBackend)
		if err != nil {
			panic("hybrid: " + err.Error())
		}
		s.dp = poller
	default:
		s.dp = devpoll.Open(k, p, cfg.DevPoll)
	}
	// Both interest sets are kept up to date on every connection open/close
	// (MirrorInterest), which is what makes switching modes nearly free.
	s.base = eventlib.NewWithPoller(k, p, s.rtq, eventlib.Config{
		MaxEventsPerWait: cfg.MaxEventsPerWait,
		MirrorInterest:   true,
		AfterDispatch:    s.evaluateSwitch,
	})
	s.base.AttachPoller(s.dp)
	s.handler = httpcore.NewHandler(k, p, api, cfg.Content)
	s.handler.IdleTimeout = cfg.IdleTimeout
	s.handler.SetOptions(cfg.HTTP)
	return s
}

// Start opens the listening socket, registers it with both mechanisms and
// starts dispatching.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.P.Batch(s.P.Now(), func() {
		s.lfd, _ = s.api.Listen()
		s.handler.Attach(s.base, s.lfd, httpcore.ServeConfig{
			SweepInterval: s.cfg.WaitTimeout,
			// As in phhttpd: data that arrived before registration never
			// raises a signal, so read freshly accepted connections once
			// while in signal mode.
			AfterAccept: func(now core.Time, fds []int) {
				if s.mode != ModeSignal {
					return
				}
				for _, fd := range fds {
					s.handler.HandleReadable(now, fd)
				}
			},
		})
		// Overflow is simply an early, emphatic load signal; the devpoll
		// interest set is already current, so recovery is one Recover plus
		// the next devpoll scan.
		ovf := s.base.NewEvent(rtsig.OverflowFD, eventlib.EvSignal|eventlib.EvPersist,
			func(_ int, _ eventlib.What, now core.Time) {
				s.rtq.Recover()
				s.switchMode(now, ModePolling)
			})
		if err := ovf.Add(0); err != nil {
			panic("hybrid: arming the overflow event: " + err.Error())
		}
		if s.cfg.IdleTimeout <= 0 {
			// The switch policy (AfterDispatch) needs the loop to wake at
			// least every WaitTimeout even with no I/O, as the hand-rolled
			// loop's bounded waits guaranteed; without idle sweeping there is
			// no sweep timer to drive that, so arm a policy tick.
			tick := s.base.NewTimer(eventlib.EvPersist, func(int, eventlib.What, core.Time) {})
			if err := tick.Add(s.cfg.WaitTimeout); err != nil {
				panic("hybrid: arming the policy tick: " + err.Error())
			}
		}
	}, func(done core.Time) {
		s.lastModeChange = done
		s.base.Dispatch()
	})
}

// Stop halts the event loop after the current iteration.
func (s *Server) Stop() {
	if !s.stopped {
		s.stopped = true
		s.ModeTime[s.mode] += s.P.Now().Sub(s.lastModeChange)
		s.lastModeChange = s.P.Now()
	}
	s.base.Stop()
}

// Mode reports the current event-delivery mode.
func (s *Server) Mode() Mode { return s.mode }

// ModeName names the current mode using the bulk poller's own name, so a
// hybrid built on epoll reports "epoll" rather than "devpoll".
func (s *Server) ModeName() string {
	if s.mode == ModeSignal {
		return ModeSignal.String()
	}
	return s.dp.Name()
}

// Stats returns the application-level counters.
func (s *Server) Stats() httpcore.Stats { return s.handler.Stats }

// Handler exposes the shared HTTP engine (service-latency histogram, tests).
func (s *Server) Handler() *httpcore.Handler { return s.handler }

// SignalQueue exposes the RT signal queue (for tests and experiments).
func (s *Server) SignalQueue() *rtsig.Queue { return s.rtq }

// DevPollSet exposes the bulk poller — /dev/poll by default, or whatever
// Config.Bulk/BulkBackend selected (for tests and experiments).
func (s *Server) DevPollSet() core.Poller { return s.dp }

// Base exposes the event base (for tests).
func (s *Server) Base() *eventlib.Base { return s.base }

// OpenConnections reports how many connections the server currently holds.
func (s *Server) OpenConnections() int { return len(s.handler.Conns) }

// Loops counts event-loop iterations.
func (s *Server) Loops() int64 { return s.base.Iterations() }

// evaluateSwitch applies the crossover policy of §4 after every dispatch
// batch: the RT signal queue length is the load indicator, the number of
// events the bulk scan delivered the sign that load has subsided.
func (s *Server) evaluateSwitch(delivered int, now core.Time) {
	if s.stopped {
		return
	}
	switch s.mode {
	case ModeSignal:
		if s.rtq.QueueLength() >= s.cfg.HighWater || s.rtq.Overflowed() {
			// The queue is deep: one-at-a-time dequeueing is falling behind.
			// Flush it (the devpoll scan will rediscover everything pending)
			// and switch.
			s.rtq.Recover()
			s.switchMode(now, ModePolling)
		}
	case ModePolling:
		if delivered < s.cfg.LowWater && s.rtq.QueueLength() < s.cfg.LowWater {
			s.lowRuns++
			if s.lowRuns >= s.cfg.ConsecutiveLow && s.rtq.QueueLength() == 0 {
				// Load has subsided and no signals are pending; clear the
				// overflow flags and return to low-latency delivery. The
				// empty-queue requirement makes the switch lossless: Recover
				// flushes the queue, and a flushed signal whose readiness
				// edge already fired (a listener whose backlog is non-empty)
				// would never announce itself again.
				s.rtq.Recover()
				s.switchMode(now, ModeSignal)
			}
		} else {
			s.lowRuns = 0
		}
	}
}

// switchMode records a mode transition and activates the corresponding wait
// target; both interest sets are already current, so nothing is re-registered.
func (s *Server) switchMode(now core.Time, to Mode) {
	if s.mode == to {
		return
	}
	s.ModeTime[s.mode] += now.Sub(s.lastModeChange)
	s.lastModeChange = now
	s.lowRuns = 0
	if to == ModePolling {
		s.SwitchesToPoll++
		_ = s.base.Activate(s.dp, false)
	} else {
		s.SwitchesToSignal++
		_ = s.base.Activate(s.rtq, false)
	}
	s.mode = to
}
