package hybrid

import (
	"testing"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/simkernel"
	"repro/internal/simtest"
)

func start(t *testing.T, cfg Config) (*simkernel.Kernel, *netsim.Network, *Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	s := New(k, n, cfg)
	s.Start()
	k.Sim.RunUntil(core.Time(10 * core.Millisecond))
	return k, n, s
}

type probe struct {
	bytes  int
	closed bool
}

func get(k *simkernel.Kernel, n *netsim.Network, path string) *probe {
	p := &probe{}
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{
		OnData:       func(_ core.Time, b int) { p.bytes += b },
		OnPeerClosed: func(core.Time) { p.closed = true },
	})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		cc.Send(now, httpsim.FormatRequest(path))
	})
	return p
}

func TestDefaultsAndModeString(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HighWater <= 0 || cfg.LowWater <= 0 || cfg.ConsecutiveLow <= 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if ModeSignal.String() != "signal" || ModePolling.String() != "devpoll" {
		t.Fatal("mode strings wrong")
	}
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	s := New(k, n, Config{})
	if s.cfg.HighWater <= 0 || s.cfg.QueueLimit <= 0 || s.cfg.MaxEventsPerWait <= 0 {
		t.Fatalf("fallbacks = %+v", s.cfg)
	}
}

func TestServesInSignalModeAtLowLoad(t *testing.T) {
	k, n, s := start(t, DefaultConfig())
	probes := []*probe{get(k, n, "/index.html"), get(k, n, "/index.html"), get(k, n, "/index.html")}
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()
	if s.Stats().Served != 3 {
		t.Fatalf("served = %d", s.Stats().Served)
	}
	for i, p := range probes {
		if !p.closed {
			t.Fatalf("probe %d incomplete", i)
		}
	}
	if s.Mode() != ModeSignal {
		t.Fatalf("mode = %v (low load should stay on RT signals)", s.Mode())
	}
	if s.SwitchesToPoll != 0 {
		t.Fatalf("unnecessary switches: %d", s.SwitchesToPoll)
	}
}

func TestBothInterestSetsMaintainedConcurrently(t *testing.T) {
	k, n, s := start(t, DefaultConfig())
	// An inactive connection parks itself in both interest sets.
	cc := n.ConnectWith(k.Now(), netsim.ConnectOptions{}, &simtest.ConnHooks{})
	k.Sim.After(core.Millisecond, func(now core.Time) {
		cc.Send(now, httpsim.FormatPartialRequest("/index.html"))
	})
	k.Sim.RunUntil(core.Time(core.Second))
	s.Stop()
	if s.OpenConnections() != 1 {
		t.Fatalf("open = %d", s.OpenConnections())
	}
	// listener + 1 connection in each mechanism.
	if s.SignalQueue().Len() != 2 || s.DevPollSet().Len() != 2 {
		t.Fatalf("interest sets: rtq=%d devpoll=%d", s.SignalQueue().Len(), s.DevPollSet().Len())
	}
}

func TestSwitchesToPollingUnderBurstAndBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 64
	cfg.HighWater = 8
	cfg.LowWater = 4
	cfg.ConsecutiveLow = 2
	k, n, s := start(t, cfg)

	const burst = 80
	probes := make([]*probe, burst)
	for i := range probes {
		probes[i] = get(k, n, "/index.html")
	}
	k.Sim.RunUntil(core.Time(10 * core.Second))

	if s.SwitchesToPoll == 0 {
		t.Fatal("hybrid never switched to /dev/poll under the burst")
	}
	if s.SwitchesToSignal == 0 {
		t.Fatal("hybrid never switched back to signals after the burst drained")
	}
	if s.Mode() != ModeSignal {
		t.Fatalf("final mode = %v, want signal once load subsided", s.Mode())
	}
	served := s.Stats().Served
	if served != burst {
		t.Fatalf("served = %d, want %d (no requests may be lost across switches)", served, burst)
	}
	for i, p := range probes {
		if !p.closed {
			t.Fatalf("probe %d incomplete", i)
		}
	}
	s.Stop()
	if s.ModeTime[ModeSignal] <= 0 || s.ModeTime[ModePolling] <= 0 {
		t.Fatalf("mode time accounting: %+v", s.ModeTime)
	}
}

func TestOverflowSentinelTriggersCheapRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 4
	cfg.HighWater = 1000 // never triggers on length; only overflow forces the switch
	k, n, s := start(t, cfg)
	const burst = 40
	probes := make([]*probe, burst)
	for i := range probes {
		probes[i] = get(k, n, "/index.html")
	}
	k.Sim.RunUntil(core.Time(10 * core.Second))
	s.Stop()
	if s.SwitchesToPoll == 0 {
		t.Fatal("overflow did not switch the hybrid to /dev/poll")
	}
	if s.Stats().Served != burst {
		t.Fatalf("served = %d, want %d", s.Stats().Served, burst)
	}
}

// With idle sweeping disabled there is no sweep timer, but the mode-switch
// policy still needs the loop to wake every WaitTimeout (the hand-rolled loop
// bounded every wait unconditionally): the policy tick keeps iterations
// coming, so a server stuck in polling mode with no traffic can still count
// consecutive quiet scans and switch back to signals.
func TestPolicyTickRunsWithoutIdleSweeping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTimeout = 0
	cfg.WaitTimeout = 100 * core.Millisecond
	k, _, s := start(t, cfg)

	// Force polling mode with no pending work, then go completely quiet.
	k.Sim.At(k.Now().Add(20*core.Millisecond), func(now core.Time) {
		s.rtq.Recover()
		s.switchMode(now, ModePolling)
	})
	k.Sim.RunUntil(core.Time(2 * core.Second))
	s.Stop()

	if s.Mode() != ModeSignal {
		t.Fatalf("mode = %v, want the policy to have switched back to signals with no load", s.Mode())
	}
	if s.SwitchesToSignal == 0 {
		t.Fatal("no switch back recorded")
	}
	if s.Loops() < 5 {
		t.Fatalf("loop iterations = %d; the policy tick should keep the loop waking", s.Loops())
	}
}
