package loadgen

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/netsim"
)

// ArrivalKind selects the arrival process that spaces benchmark connections.
// The paper's httperf drives a constant rate; the other processes model the
// overload shapes real servers meet: synchronized flash crowds and the
// heavy-tailed think times web traffic is famous for.
type ArrivalKind int

// Arrival processes.
const (
	// ArrivalConstant issues connections at a fixed interval with uniform
	// jitter: the paper's open-loop httperf schedule.
	ArrivalConstant ArrivalKind = iota
	// ArrivalFlashCrowd alternates burst and quiet phases: during each burst
	// the instantaneous rate is BurstFactor times the configured rate, and
	// the quiet rate is derated so the long-run mean still matches the
	// configured rate. The x axis of a figure therefore remains the offered
	// load even though its delivery is bursty.
	ArrivalFlashCrowd
	// ArrivalPareto draws inter-arrival gaps from a Pareto distribution with
	// shape ParetoAlpha, scaled so the mean gap matches the configured rate:
	// most connections arrive in clumps, punctuated by long silences.
	ArrivalPareto
)

// String names the arrival process.
func (a ArrivalKind) String() string {
	switch a {
	case ArrivalFlashCrowd:
		return "flash-crowd"
	case ArrivalPareto:
		return "pareto"
	default:
		return "constant"
	}
}

// WorkloadKind selects the traffic family a workload drives. The zero value
// is the paper's request/response family; the other kinds exercise the
// millions-mostly-idle regime where the server (push) or a churning peer
// population (dhtchurn) shapes the traffic instead of an open-loop request
// schedule.
type WorkloadKind int

// Traffic families.
const (
	// KindRequest is the paper's family: clients open connections and issue
	// HTTP requests at the configured rate.
	KindRequest WorkloadKind = iota
	// KindPush inverts the direction: clients connect once, subscribe and go
	// silent for the whole run; the server fans a payload out to random
	// member sets on a virtual-time tick, so Config.RequestRate is the
	// offered delivery rate and Config.Connections is both the member
	// population and the delivery budget.
	KindPush
	// KindDHTChurn drives the datagram transport: peers join a rendezvous
	// node at ChurnRate peers/second, each pinging its session socket until
	// a per-peer quota of RequestRate/ChurnRate pings is answered, then
	// leaving. Config.Connections counts peer sessions.
	KindDHTChurn
)

// String names the traffic family.
func (k WorkloadKind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindDHTChurn:
		return "dhtchurn"
	default:
		return "request"
	}
}

// BackgroundKind selects the behavior of the background connection population
// (Config.InactiveConnections of them).
type BackgroundKind int

// Background client behaviors.
const (
	// BackgroundInactive is the paper's load: clients that send a partial
	// request once and then stay silent, parking themselves in the server's
	// interest set until its idle sweep evicts them.
	BackgroundInactive BackgroundKind = iota
	// BackgroundSlowLoris clients trickle one request byte every
	// TrickleInterval and never complete: each byte costs the server an
	// interrupt, a readiness event, a read and a parser feed, and the
	// steady activity defeats the idle sweep that reclaims inactive
	// connections.
	BackgroundSlowLoris
	// BackgroundStalledReader clients send a complete request but advertise a
	// tiny receive window and never drain it: the server performs the full
	// accept/parse/serve work, then its response jams after StallWindow
	// bytes and the connection occupies a descriptor and a blocked write
	// until the idle sweep gives up on it.
	BackgroundStalledReader
)

// String names the background behavior.
func (b BackgroundKind) String() string {
	switch b {
	case BackgroundSlowLoris:
		return "slow-loris"
	case BackgroundStalledReader:
		return "stalled-reader"
	default:
		return "inactive"
	}
}

// Workload bundles an arrival process, a background-population behavior and a
// client RTT distribution into one named scenario. The zero value is the
// paper's workload exactly: constant arrivals, silent inactive background
// clients, uniform LAN RTTs.
type Workload struct {
	// Name identifies the workload ("" and "constant" are the paper's).
	Name string
	// Description is the one-line summary -list-workloads prints.
	Description string

	// Kind selects the traffic family; the zero value is the paper's
	// request/response family, for which the fields below apply.
	Kind WorkloadKind

	Arrival ArrivalKind
	// BurstPeriod is the flash-crowd cycle length and BurstDuration the
	// high phase within it; BurstFactor multiplies the configured rate
	// during the high phase. BurstFactor*BurstDuration must stay below
	// BurstPeriod so the quiet phase can absorb the excess.
	BurstPeriod   core.Duration
	BurstDuration core.Duration
	BurstFactor   float64
	// ParetoAlpha is the Pareto shape (must exceed 1 so the mean exists;
	// smaller is heavier-tailed).
	ParetoAlpha float64

	Background BackgroundKind
	// TrickleInterval spaces a slow-loris client's bytes.
	TrickleInterval core.Duration
	// StallWindow is the receive window (bytes) a stalled reader advertises.
	StallWindow int

	// RTTMix, when non-empty, draws each benchmark connection's RTT from the
	// given bands instead of the network default (Config.ActiveRTT).
	RTTMix []netsim.RTTBand

	// Push-family knobs (KindPush). FanoutSize is how many members the
	// server pushes to per tick and PushPayload the pushed message size —
	// both must match the push server's configuration, which the experiment
	// harness derives from them. MemberRate is the rate the member
	// population is connected at before measurement starts.
	FanoutSize  int
	PushPayload int
	MemberRate  float64

	// Churn-family knobs (KindDHTChurn). ChurnRate is the peer join rate in
	// peers/second; PingInterval spaces one peer's keepalive pings; PingSize
	// is the ping datagram size; PeerTimeout is the rendezvous node's
	// session expiry (surfaced here so figures can sweep it alongside the
	// client behavior).
	ChurnRate    float64
	PingInterval core.Duration
	PingSize     int
	PeerTimeout  core.Duration
}

// Workloads returns the registered workload scenarios, the paper's first.
func Workloads() []Workload {
	return []Workload{
		{
			Name:        "constant",
			Description: "the paper's workload: constant-rate arrivals, silent inactive background connections, LAN RTTs",
		},
		{
			Name:          "flashcrowd",
			Description:   "burst trains: 3x the offered rate for 500ms out of every 2s, same long-run mean",
			Arrival:       ArrivalFlashCrowd,
			BurstPeriod:   2 * core.Second,
			BurstDuration: 500 * core.Millisecond,
			BurstFactor:   3,
		},
		{
			Name:        "pareto",
			Description: "heavy-tailed Pareto (alpha=1.5) inter-arrival gaps: clumped arrivals with long silences, same mean rate",
			Arrival:     ArrivalPareto,
			ParetoAlpha: 1.5,
		},
		{
			Name:            "slowloris",
			Description:     "background population trickles one request byte every 250ms and never completes, defeating the idle sweep",
			Background:      BackgroundSlowLoris,
			TrickleInterval: 250 * core.Millisecond,
		},
		{
			Name:        "stalled",
			Description: "background population requests the document but never drains the response: writes jam against a 512-byte window",
			Background:  BackgroundStalledReader,
			StallWindow: 512,
		},
		{
			Name:        "wan",
			Description: "benchmark connection RTTs drawn from a WAN mix (5ms..300ms) instead of the uniform LAN",
			RTTMix:      netsim.DefaultWANMix(),
		},
		{
			Name:        "push",
			Description: "server-push fan-out: members subscribe once and idle while the server pushes to random member sets each tick",
			Kind:        KindPush,
			FanoutSize:  32,
			PushPayload: 512,
			MemberRate:  50000,
		},
		{
			Name:         "dhtchurn",
			Description:  "datagram peer churn: peers join a rendezvous node, ping their session sockets, and leave; sessions expire on a timer sweep",
			Kind:         KindDHTChurn,
			ChurnRate:    200,
			PingInterval: 500 * core.Millisecond,
			PingSize:     64,
			PeerTimeout:  5 * core.Second,
		},
	}
}

// LookupWorkload resolves a workload by name; the empty name selects the
// paper's constant workload.
func LookupWorkload(name string) (Workload, bool) {
	if strings.TrimSpace(name) == "" {
		return Workload{Name: "constant"}, true
	}
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// UnknownWorkloadError is the single source of the listed-choices error for
// workload names, mirroring eventlib's for backends.
func UnknownWorkloadError(name string) error {
	names := make([]string, 0, 8)
	for _, w := range Workloads() {
		names = append(names, w.Name)
	}
	return fmt.Errorf("loadgen: unknown workload %q (choices: %s)",
		name, strings.Join(names, ", "))
}
