package loadgen

import (
	"repro/internal/core"
	"repro/internal/netsim"
)

// This file holds the two non-request traffic families of the
// millions-mostly-idle regime: the server-push family (KindPush), where the
// server originates every measured byte, and the datagram churn family
// (KindDHTChurn), where a peer population joins and leaves a rendezvous node.
// Both reuse the generator's books (recordReply, recordError, the keep-alive
// resolution path), so their results read exactly like a request run's:
// Replies counts deliveries or pongs, Completed counts members or peer
// sessions, and the reply-rate samples feed the same figure machinery.

// pushSubscribe is the one message a push member sends: anything non-empty
// registers the connection in the server's member set.
var pushSubscribe = make([]byte, 16)

// dhtRendezvousAddr is the datagram address peers ping to join — the value of
// dhtnode.WellKnownAddr, restated here because the client deliberately does
// not import the server package (the generator tests pin the two against a
// real dhtnode).
const dhtRendezvousAddr netsim.Addr = 1

// startPush launches the member population for a server-push run. Members
// connect at Workload.MemberRate, subscribe and then go idle; measurement
// starts only once the full population is connected, so the delivery-rate
// samples and latency percentiles observe the steady interest-set size, not
// the ramp. The run ends after Config.Connections post-warmup deliveries.
func (g *Generator) startPush(now core.Time) {
	wl := g.cfg.Workload
	g.pushPayload = wl.PushPayload
	if g.pushPayload <= 0 {
		g.pushPayload = 512
	}
	memberRate := wl.MemberRate
	if memberRate <= 0 {
		memberRate = 50000
	}
	g.pushByConn = make(map[*netsim.ClientConn]*pushMember, g.cfg.Connections)
	g.pushMembers = make([]*pushMember, 0, g.cfg.Connections)

	interval := core.Duration(float64(core.Second) / memberRate)
	at := now
	for i := 0; i < g.cfg.Connections; i++ {
		launch := at.Add(g.jitterFor(interval))
		if launch < now {
			launch = now
		}
		g.driverQ.At(launch, g.launchMember)
		at = at.Add(interval)
	}
	// Measurement begins once the population is established (the paper's
	// procedure for its inactive load): deliveries the server initiates
	// during the ramp are delivered but not booked.
	g.started = at.Add(400 * core.Millisecond)
	g.sampler.Start(g.started)
}

// launchMember opens one member connection from the driver lane.
func (g *Generator) launchMember(now core.Time) {
	g.issued++
	m := &pushMember{gen: g}
	m.conn = g.net.ConnectWith(now, netsim.ConnectOptions{RTT: g.cfg.ActiveRTT}, m)
}

// PushDeliver books a server-initiated delivery: the push server's OnDeliver
// hook, called inside the server's batch at push initiation. The instant is
// queued against the member and becomes the latency anchor when the payload
// finishes arriving, so the measured latency spans eventlib arming, the write
// (including any window jam and drain) and the wire.
func (g *Generator) PushDeliver(now core.Time, sc *netsim.ServerConn) {
	m := g.pushByConn[sc.Peer()]
	if m == nil || m.resolved {
		return
	}
	m.pending = append(m.pending, now)
}

// pushMember is one subscribed connection: it subscribes on connect, then
// only ever receives. It implements netsim.ConnHandler.
type pushMember struct {
	gen      *Generator
	conn     *netsim.ClientConn
	received int
	pending  []core.Time // initiation instants of deliveries not yet received
	resolved bool
}

// Connected implements netsim.ConnHandler.
func (m *pushMember) Connected(now core.Time) {
	if m.resolved {
		return
	}
	g := m.gen
	if g.pushClosing {
		// The budget was reached while this member's SYN was in flight.
		m.resolved = true
		m.conn.Close(now)
		g.resolveKeepAlive(m.conn.Q(), now)
		return
	}
	g.pushByConn[m.conn] = m
	g.pushMembers = append(g.pushMembers, m)
	m.conn.Send(now, pushSubscribe)
}

// Refused implements netsim.ConnHandler.
func (m *pushMember) Refused(now core.Time, reason netsim.RefuseReason) {
	if m.resolved {
		return
	}
	m.resolved = true
	switch reason {
	case netsim.RefusedPorts:
		m.gen.recordError(m.conn.Q(), ErrPortSpace, now)
	case netsim.RefusedReset:
		m.gen.recordError(m.conn.Q(), ErrReset, now)
	default:
		m.gen.recordError(m.conn.Q(), ErrRefused, now)
	}
}

// Data implements netsim.ConnHandler: payload boundaries are recognised by
// cumulative size, and each completed payload closes out the oldest pending
// delivery (pushes to one member never overlap — the server skips a member
// whose previous push is still draining).
func (m *pushMember) Data(now core.Time, n int) {
	if m.resolved {
		return
	}
	g := m.gen
	m.received += n
	for len(m.pending) > 0 && m.received >= g.pushPayload {
		m.received -= g.pushPayload
		anchor := m.pending[0]
		m.pending = m.pending[1:]
		if anchor < g.started {
			continue // warmup delivery: the population was still ramping
		}
		g.recordReply(m.conn.Q(), anchor, now)
		g.pushDone++
		if g.pushDone >= g.cfg.Connections {
			g.finishPush(now)
			return
		}
	}
}

// PeerClosed implements netsim.ConnHandler: the server never closes a member
// mid-run, so an unexpected close is an error (server shutdown, reset).
func (m *pushMember) PeerClosed(now core.Time) {
	if m.resolved {
		return
	}
	m.resolved = true
	m.gen.recordError(m.conn.Q(), ErrReset, now)
}

// finishPush ends the run once the delivery budget is spent: every live
// member closes (all of them live on the executing lane) and resolves as a
// completed connection.
func (g *Generator) finishPush(now core.Time) {
	if g.pushClosing {
		return
	}
	g.pushClosing = true
	for _, m := range g.pushMembers {
		if m.resolved {
			continue
		}
		m.resolved = true
		m.conn.Close(now)
		g.resolveKeepAlive(m.conn.Q(), now)
	}
}

// startDHT launches the churning peer population. Peers join at
// Workload.ChurnRate; each pings the rendezvous address, then its dedicated
// session socket, every PingInterval until a quota of
// RequestRate/ChurnRate pongs is answered — so the steady-state ping rate is
// the configured request rate — and then leaves. Config.Connections counts
// peer sessions.
func (g *Generator) startDHT(now core.Time) {
	wl := g.cfg.Workload
	churn := wl.ChurnRate
	if churn <= 0 {
		churn = 100
	}
	g.dhtPingInterval = wl.PingInterval
	if g.dhtPingInterval <= 0 {
		g.dhtPingInterval = 500 * core.Millisecond
	}
	g.dhtPingSize = wl.PingSize
	if g.dhtPingSize <= 0 {
		g.dhtPingSize = 64
	}
	g.dhtQuota = int(g.cfg.RequestRate/churn + 0.5)
	if g.dhtQuota < 1 {
		g.dhtQuota = 1
	}

	g.started = now
	g.sampler.Start(now)
	interval := core.Duration(float64(core.Second) / churn)
	at := now
	for i := 0; i < g.cfg.Connections; i++ {
		launch := at.Add(g.jitterFor(interval))
		if launch < now {
			launch = now
		}
		g.driverQ.At(launch, g.launchPeer)
		at = at.Add(interval)
	}
}

// launchPeer joins one peer from the driver lane.
func (g *Generator) launchPeer(now core.Time) {
	g.issued++
	cp := &churnPeer{gen: g}
	cp.peer = g.net.NewPeer(now, netsim.PeerOptions{RTT: g.cfg.ActiveRTT}, cp)
}

// churnPeer is one peer session: ping, await pong, repeat until the quota is
// met. It implements netsim.DgramHandler; every callback runs on the datagram
// home lane.
type churnPeer struct {
	gen      *Generator
	peer     *netsim.Peer
	session  netsim.Addr // learned from the first pong; 0 = ping the rendezvous
	ponged   int
	pingAt   core.Time // in-flight ping's dispatch; zero = none outstanding
	epoch    int       // invalidates stale watchdogs
	rejoins  int
	resolved bool
}

// Started implements netsim.DgramHandler.
func (cp *churnPeer) Started(now core.Time) {
	if cp.resolved || cp.gen.done {
		return
	}
	cp.ping(now)
}

// ping sends one datagram — to the session socket once one is known, to the
// rendezvous address otherwise — and arms the watchdog for it.
func (cp *churnPeer) ping(now core.Time) {
	g := cp.gen
	cp.pingAt = now
	cp.epoch++
	to := cp.session
	if to == 0 {
		to = dhtRendezvousAddr
	}
	cp.peer.SendTo(now, to, g.dhtPingSize)
	epoch := cp.epoch
	cp.peer.Q().At(now.Add(g.cfg.Timeout), func(t core.Time) { cp.onPingTimeout(t, epoch) })
}

// Datagram implements netsim.DgramHandler: a pong. The sender is the peer's
// session socket (on the first pong, how the peer learns it exists).
func (cp *churnPeer) Datagram(now core.Time, from netsim.Addr, _ int) {
	if cp.resolved || cp.pingAt == 0 {
		return // late or duplicate pong
	}
	g := cp.gen
	cp.session = from
	cp.ponged++
	g.recordReply(cp.peer.Q(), cp.pingAt, now)
	cp.pingAt = 0
	if cp.ponged >= g.dhtQuota {
		cp.resolved = true
		cp.peer.Close(now)
		g.resolveKeepAlive(cp.peer.Q(), now)
		return
	}
	cp.peer.Q().At(now.Add(g.dhtPingInterval), cp.nextPing)
}

func (cp *churnPeer) nextPing(now core.Time) {
	if cp.resolved || cp.gen.done {
		return
	}
	cp.ping(now)
}

// onPingTimeout fires when a ping's pong has not arrived within the client
// timeout. A session ping may have died with an expired session (the node's
// sweep closed it while the peer idled between pings), so the peer rejoins
// through the rendezvous address once; an unanswered rendezvous ping is a
// dead node and resolves the session as an error.
func (cp *churnPeer) onPingTimeout(now core.Time, epoch int) {
	if cp.resolved || cp.epoch != epoch || cp.pingAt == 0 {
		return
	}
	if cp.session != 0 {
		cp.session = 0
		cp.rejoins++
		cp.ping(now)
		return
	}
	cp.resolved = true
	cp.peer.Close(now)
	cp.gen.recordError(cp.peer.Q(), ErrTimeout, now)
}
