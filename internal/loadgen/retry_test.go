package loadgen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
)

// With no server at all, every attempt is refused: each connection burns its
// full retry budget before recording the one error the no-retry run records
// immediately. Conservation (completed + errors == issued) must hold.
func TestRetryExhaustsBudgetWithoutServer(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig(500, 0)
	cfg.Connections = 50
	cfg.Profile.Retry = true
	gen := New(k, n, cfg)
	if gen.cfg.Profile.RetryMax != 3 || gen.cfg.Profile.RetryBase != 100*core.Millisecond {
		t.Fatalf("retry defaults not applied: %+v", gen.cfg.Profile)
	}
	gen.OnDone(func(Result) { k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))
	res := gen.Result()
	if !gen.Done() {
		t.Fatal("run did not finish")
	}
	if res.Errors != 50 || res.Completed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Retries != 50*3 {
		t.Fatalf("retries = %d, want %d", res.Retries, 50*3)
	}
	if res.ErrorsBy[ErrRefused] != 50 {
		t.Fatalf("errors by reason = %+v", res.ErrorsBy)
	}
}

// Against a healthy server with injected connection resets, retry converts
// most doomed connections into (late) completions: errors drop, retries are
// counted, and the books still balance.
func TestRetryRecoversInjectedResets(t *testing.T) {
	run := func(retry bool) Result {
		k := simkernel.NewKernel(nil)
		k.Faults = faults.Config{Seed: 7, ResetRate: 0.3}
		n := netsim.New(k, netsim.DefaultConfig())
		scfg := thttpd.DefaultConfig()
		scfg.Backend = "devpoll"
		s := thttpd.New(k, n, scfg)
		s.Start()
		cfg := DefaultConfig(400, 0)
		cfg.Connections = 200
		cfg.SampleInterval = 500 * core.Millisecond
		cfg.Profile.Retry = retry
		gen := New(k, n, cfg)
		gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
		gen.Start(0)
		k.Sim.RunUntil(core.Time(60 * core.Second))
		if !gen.Done() {
			t.Fatal("run did not finish")
		}
		return gen.Result()
	}
	plain := run(false)
	retried := run(true)
	if plain.Errors == 0 {
		t.Fatal("fault plane injected no resets; test needs a doomed population")
	}
	if plain.Retries != 0 {
		t.Fatalf("retries without Retry = %d", plain.Retries)
	}
	if retried.Retries == 0 {
		t.Fatal("no retries recorded with Retry enabled")
	}
	if retried.Errors >= plain.Errors {
		t.Fatalf("retry did not reduce errors: %d -> %d", plain.Errors, retried.Errors)
	}
	for _, res := range []Result{plain, retried} {
		if res.Completed+res.Errors != res.Issued || res.Issued != 200 {
			t.Fatalf("conservation violated: %+v", res)
		}
	}
}

// A stale watchdog armed for a failed attempt must not kill the retry's
// fresh connection: with a server that refuses the first wave (no listener
// until 1s in), retried connections complete even though each still has the
// original attempt's timer pending when it relaunches.
func TestRetryOutlivesStaleWatchdog(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	scfg := thttpd.DefaultConfig()
	scfg.Backend = "devpoll"
	s := thttpd.New(k, n, scfg)
	k.Sim.At(core.Time(core.Second), func(core.Time) { s.Start() })

	cfg := DefaultConfig(200, 0)
	cfg.Connections = 40
	cfg.SampleInterval = 500 * core.Millisecond
	cfg.Profile.Retry = true
	cfg.Profile.RetryBase = 400 * core.Millisecond
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(60 * core.Second))
	res := gen.Result()
	if !gen.Done() {
		t.Fatal("run did not finish")
	}
	if res.Retries == 0 {
		t.Fatal("expected the first wave to be refused and retried")
	}
	if res.Completed == 0 {
		t.Fatalf("no retried connection completed: %+v", res)
	}
	if res.Completed+res.Errors != res.Issued {
		t.Fatalf("conservation violated: %+v", res)
	}
}
