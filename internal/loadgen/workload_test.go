package loadgen

import (
	"strings"
	"testing"
)

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) < 6 || ws[0].Name != "constant" {
		t.Fatalf("registry malformed: %+v", ws)
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.Description == "" {
			t.Fatalf("unnamed workload: %+v", w)
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestLookupWorkload(t *testing.T) {
	if w, ok := LookupWorkload(""); !ok || w.Arrival != ArrivalConstant || w.Background != BackgroundInactive {
		t.Fatalf("empty name must select the paper's workload, got %+v ok=%v", w, ok)
	}
	if w, ok := LookupWorkload("slowloris"); !ok || w.Background != BackgroundSlowLoris {
		t.Fatalf("slowloris lookup failed: %+v ok=%v", w, ok)
	}
	if _, ok := LookupWorkload("nope"); ok {
		t.Fatal("unknown workload resolved")
	}
	err := UnknownWorkloadError("nope")
	msg := err.Error()
	for _, w := range Workloads() {
		if !strings.Contains(msg, w.Name) {
			t.Fatalf("error %q does not list workload %s", msg, w.Name)
		}
	}
}

func TestWorkloadKindStrings(t *testing.T) {
	if ArrivalConstant.String() != "constant" || ArrivalFlashCrowd.String() != "flash-crowd" || ArrivalPareto.String() != "pareto" {
		t.Fatal("ArrivalKind strings wrong")
	}
	if BackgroundInactive.String() != "inactive" || BackgroundSlowLoris.String() != "slow-loris" || BackgroundStalledReader.String() != "stalled-reader" {
		t.Fatal("BackgroundKind strings wrong")
	}
}
