package loadgen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
)

// testbed starts a devpoll thttpd (plenty of capacity) and returns everything
// needed to run a generator against it.
func testbed(t *testing.T) (*simkernel.Kernel, *netsim.Network, *thttpd.Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := thttpd.DefaultConfig()
	cfg.Backend = "devpoll"
	cfg.IdleTimeout = 10 * core.Second
	cfg.WaitTimeout = core.Second
	s := thttpd.New(k, n, cfg)
	s.Start()
	return k, n, s
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(700, 251)
	if cfg.RequestRate != 700 || cfg.InactiveConnections != 251 || cfg.Connections != 35000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.DocumentSize != 6*1024 || cfg.Timeout != 5*core.Second {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestGeneratorCompletesAgainstHealthyServer(t *testing.T) {
	k, n, s := testbed(t)
	cfg := DefaultConfig(400, 0)
	cfg.Connections = 300
	cfg.SampleInterval = 200 * core.Millisecond
	gen := New(k, n, cfg)
	var final Result
	doneCalled := 0
	gen.OnDone(func(r Result) { final = r; doneCalled++; s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))

	if !gen.Done() || doneCalled != 1 {
		t.Fatalf("done=%v calls=%d", gen.Done(), doneCalled)
	}
	if final.Issued != 300 || final.Completed != 300 || final.Errors != 0 {
		t.Fatalf("result = %+v", final)
	}
	if final.ErrorPercent != 0 {
		t.Fatalf("error percent = %v", final.ErrorPercent)
	}
	if final.ReplyRate.Mean < 300 || final.ReplyRate.Mean > 500 {
		t.Fatalf("reply rate mean = %v, want ≈400", final.ReplyRate.Mean)
	}
	if final.MedianLatencyMs <= 0 || final.MedianLatencyMs > 50 {
		t.Fatalf("median latency = %v ms", final.MedianLatencyMs)
	}
	if final.MeanLatencyMs <= 0 || final.P90LatencyMs < final.MedianLatencyMs || final.MaxLatencyMs < final.P90LatencyMs {
		t.Fatalf("latency summary inconsistent: %+v", final)
	}
	if final.OfferedRate < 300 || final.OfferedRate > 500 {
		t.Fatalf("offered rate = %v", final.OfferedRate)
	}
	if final.String() == "" {
		t.Fatal("empty String")
	}
	issued, resolved := gen.Progress()
	if issued != 300 || resolved != 300 {
		t.Fatalf("progress = %d %d", issued, resolved)
	}
}

func TestInactiveConnectionsOccupyServerInterestSet(t *testing.T) {
	k, n, s := testbed(t)
	cfg := DefaultConfig(200, 40)
	cfg.Connections = 100
	cfg.SampleInterval = 200 * core.Millisecond
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))
	// All 40 inactive connections are parked on the server (plus the listener
	// interest); benchmark connections came and went.
	if got := s.OpenConnections(); got != 40 {
		t.Fatalf("server open connections = %d, want 40 inactive", got)
	}
	if s.Poller().Len() != 41 {
		t.Fatalf("poller interests = %d, want 41", s.Poller().Len())
	}
	res := gen.Result()
	if res.Completed != 100 {
		t.Fatalf("completed = %d", res.Completed)
	}
	s.Stop()
}

func TestInactiveClientsReopenAfterServerTimeout(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := thttpd.DefaultConfig()
	cfg.Backend = "devpoll"
	cfg.IdleTimeout = 2 * core.Second // aggressive idle timeout
	cfg.WaitTimeout = 500 * core.Millisecond
	s := thttpd.New(k, n, cfg)
	s.Start()

	lcfg := DefaultConfig(100, 10)
	lcfg.Connections = 400 // run long enough for at least one idle sweep
	lcfg.SampleInterval = core.Second
	gen := New(k, n, lcfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(60 * core.Second))

	if !gen.Done() {
		t.Fatal("run did not finish")
	}
	if gen.InactiveReopens() == 0 {
		t.Fatal("inactive clients never reopened despite server idle timeouts")
	}
	if s.Stats().IdleCloses == 0 {
		t.Fatal("server never timed out an idle connection")
	}
}

func TestErrorsRecordedWithoutAnyServer(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig(500, 0)
	cfg.Connections = 50
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(20 * core.Second))
	res := gen.Result()
	if res.Errors != 50 || res.Completed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.ErrorsBy[ErrRefused] != 50 {
		t.Fatalf("errors by reason = %+v", res.ErrorsBy)
	}
	if res.ErrorPercent != 100 {
		t.Fatalf("error percent = %v", res.ErrorPercent)
	}
}

func TestClientTimeoutAgainstStalledServer(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	// A listener exists but nothing ever accepts or serves: connections that
	// land in the backlog must be failed by the client-side timeout.
	p := k.NewProc("stalled")
	api := netsim.NewSockAPI(k, p, n)
	p.Batch(0, func() { api.Listen() }, nil)

	cfg := DefaultConfig(200, 0)
	cfg.Connections = 30
	cfg.Timeout = 2 * core.Second
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))
	res := gen.Result()
	if res.Completed != 0 || res.Errors != 30 {
		t.Fatalf("result = %+v", res)
	}
	if res.ErrorsBy[ErrTimeout] == 0 {
		t.Fatalf("expected client timeouts, got %+v", res.ErrorsBy)
	}
}

func TestConservationInvariant(t *testing.T) {
	// DESIGN.md §6: replies + errors == connections issued, for a mix of
	// successes and failures (tiny backlog forces refusals).
	k := simkernel.NewKernel(nil)
	netCfg := netsim.DefaultConfig()
	netCfg.ListenBacklog = 4
	n := netsim.New(k, netCfg)
	cfg := thttpd.DefaultConfig()
	cfg.Backend = "poll"
	s := thttpd.New(k, n, cfg)
	s.Start()

	lcfg := DefaultConfig(900, 20)
	lcfg.Connections = 500
	lcfg.SampleInterval = 500 * core.Millisecond
	lcfg.Timeout = core.Second
	gen := New(k, n, lcfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(60 * core.Second))

	res := gen.Result()
	if !gen.Done() {
		t.Fatal("run did not finish")
	}
	if res.Completed+res.Errors != res.Issued || res.Issued != 500 {
		t.Fatalf("conservation violated: %+v", res)
	}
	total := 0
	for _, v := range res.ErrorsBy {
		total += v
	}
	if total != res.Errors {
		t.Fatalf("error breakdown (%d) does not sum to errors (%d)", total, res.Errors)
	}
}

func TestConfigSanitisation(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	gen := New(k, n, Config{Jitter: 5, RequestRate: -1, Connections: -1})
	if gen.cfg.Jitter > 1 || gen.cfg.RequestRate <= 0 || gen.cfg.Connections <= 0 {
		t.Fatalf("config not sanitised: %+v", gen.cfg)
	}
	if gen.cfg.DocumentPath == "" || gen.cfg.Timeout <= 0 || gen.cfg.SampleInterval <= 0 {
		t.Fatalf("config not defaulted: %+v", gen.cfg)
	}
	// Start twice is harmless.
	gen.Start(0)
	gen.Start(0)
}
