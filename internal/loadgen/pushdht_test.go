package loadgen

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/dhtnode"
	"repro/internal/servers/pushcore"
	"repro/internal/simkernel"
)

func TestPushWorkloadDeliversBudget(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())

	wl, ok := LookupWorkload("push")
	if !ok || wl.Kind != KindPush {
		t.Fatalf("push workload missing: %+v ok=%v", wl, ok)
	}
	wl.FanoutSize = 8
	scfg := pushcore.DefaultConfig()
	scfg.Backend = "epoll"
	scfg.FanoutSize = wl.FanoutSize
	scfg.Payload = wl.PushPayload
	scfg.TickInterval = 5 * core.Millisecond
	srv := pushcore.New(k, n, scfg)

	cfg := DefaultConfig(1600, 0)
	cfg.Connections = 100
	cfg.SampleInterval = 100 * core.Millisecond
	cfg.Workload = wl
	gen := New(k, n, cfg)
	srv.OnDeliver = gen.PushDeliver

	var final Result
	gen.OnDone(func(r Result) { final = r; srv.Stop(); k.Sim.Stop() })
	srv.Start()
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))

	if !gen.Done() {
		t.Fatalf("push run never finished: %+v", gen.Result())
	}
	if final.Issued != 100 || final.Completed != 100 || final.Errors != 0 {
		t.Fatalf("result = issued %d completed %d errors %d (%+v)",
			final.Issued, final.Completed, final.Errors, final.ErrorsBy)
	}
	// The budget is exact: one booked delivery per configured connection.
	if final.Replies != 100 {
		t.Fatalf("replies = %d, want 100", final.Replies)
	}
	if final.MedianLatencyMs <= 0 {
		t.Fatalf("median delivery latency = %v ms", final.MedianLatencyMs)
	}
	// The member population was fully subscribed before measurement started.
	if st := srv.Stats(); st.Subscribed != 100 {
		t.Fatalf("subscribed = %d, want 100", st.Subscribed)
	}
}

func TestDHTChurnWorkloadPingsQuota(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())

	wl, ok := LookupWorkload("dhtchurn")
	if !ok || wl.Kind != KindDHTChurn {
		t.Fatalf("dhtchurn workload missing: %+v ok=%v", wl, ok)
	}
	scfg := dhtnode.DefaultConfig()
	scfg.Backend = "epoll"
	scfg.PeerTimeout = wl.PeerTimeout
	srv := dhtnode.New(k, n, scfg)

	cfg := DefaultConfig(1000, 0) // quota = 1000/200 = 5 pings per peer
	cfg.Connections = 20
	cfg.SampleInterval = 500 * core.Millisecond
	cfg.Workload = wl
	gen := New(k, n, cfg)

	var final Result
	gen.OnDone(func(r Result) { final = r; srv.Stop(); k.Sim.Stop() })
	srv.Start()
	gen.Start(0)
	k.Sim.RunUntil(core.Time(60 * core.Second))

	if !gen.Done() {
		t.Fatalf("dht run never finished: %+v", gen.Result())
	}
	if final.Issued != 20 || final.Completed != 20 || final.Errors != 0 {
		t.Fatalf("result = issued %d completed %d errors %d (%+v)",
			final.Issued, final.Completed, final.Errors, final.ErrorsBy)
	}
	if final.Replies != 100 {
		t.Fatalf("pongs = %d, want 20 peers x 5 pings", final.Replies)
	}
	if st := srv.Stats(); st.Joins != 20 || st.Pongs != 100 {
		t.Fatalf("server joins=%d pongs=%d", st.Joins, st.Pongs)
	}
}

// TestDHTPeerRejoinsAfterSessionExpiry pins the churn interplay: a node
// timeout shorter than the ping interval expires every session between
// pings, so peers must re-enter through the rendezvous address (and the
// node's descriptor churn shows up as expiries), yet the run still
// completes without client-visible errors.
func TestDHTPeerRejoinsAfterSessionExpiry(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())

	wl, _ := LookupWorkload("dhtchurn")
	wl.ChurnRate = 100
	wl.PingInterval = 400 * core.Millisecond
	scfg := dhtnode.DefaultConfig()
	scfg.Backend = "poll"
	scfg.PeerTimeout = 100 * core.Millisecond // expires every idle session
	scfg.SweepInterval = 50 * core.Millisecond
	srv := dhtnode.New(k, n, scfg)

	cfg := DefaultConfig(200, 0) // quota = 2 pongs per peer
	cfg.Connections = 3
	cfg.Timeout = core.Second
	cfg.Workload = wl
	gen := New(k, n, cfg)

	var final Result
	gen.OnDone(func(r Result) { final = r; srv.Stop(); k.Sim.Stop() })
	srv.Start()
	gen.Start(0)
	k.Sim.RunUntil(core.Time(120 * core.Second))

	if !gen.Done() {
		t.Fatalf("run never finished: %+v", gen.Result())
	}
	if final.Completed != 3 || final.Errors != 0 {
		t.Fatalf("completed=%d errors=%d (%+v)", final.Completed, final.Errors, final.ErrorsBy)
	}
	st := srv.Stats()
	if st.Expired == 0 {
		t.Fatalf("no sessions expired, sweep never churned descriptors: %+v", st)
	}
	if st.Joins <= 3 {
		t.Fatalf("joins = %d, want rejoins beyond the 3 first joins", st.Joins)
	}
}

// TestClientProfileEquivalence pins the API collapse: a run configured
// through the deprecated flat fields and one configured through ClientProfile
// produce byte-identical results.
func TestClientProfileEquivalence(t *testing.T) {
	run := func(cfg Config) Result {
		k, n, s := testbed(t)
		gen := New(k, n, cfg)
		var final Result
		gen.OnDone(func(r Result) { final = r; s.Stop(); k.Sim.Stop() })
		gen.Start(0)
		k.Sim.RunUntil(core.Time(60 * core.Second))
		if !gen.Done() {
			t.Fatalf("run never finished: %+v", gen.Result())
		}
		return final
	}

	legacy := DefaultConfig(400, 0)
	legacy.Connections = 200
	legacy.SampleInterval = 200 * core.Millisecond
	legacy.RequestsPerConn = 4
	legacy.PipelineDepth = 2
	legacy.Timeout = 2 * core.Second
	legacy.ActiveRTT = core.Millisecond
	legacy.InactiveRTT = 50 * core.Millisecond
	legacy.Jitter = 0.3

	profiled := DefaultConfig(400, 0)
	profiled.Connections = 200
	profiled.SampleInterval = 200 * core.Millisecond
	profiled.Profile = ClientProfile{
		RequestsPerConn: 4,
		PipelineDepth:   2,
		Timeout:         2 * core.Second,
		ActiveRTT:       core.Millisecond,
		InactiveRTT:     50 * core.Millisecond,
		Jitter:          0.3,
	}

	a, b := run(legacy), run(profiled)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("profile run diverged from legacy run:\n%+v\nvs\n%+v", a, b)
	}
}

// TestProfileNormalisation pins that New mirrors the merged knobs into both
// views of the configuration.
func TestProfileNormalisation(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := DefaultConfig(100, 0)
	cfg.Profile = ClientProfile{RequestsPerConn: 3, Timeout: 7 * core.Second}
	g := New(k, n, cfg)
	got := g.cfg
	if got.RequestsPerConn != 3 || got.Timeout != 7*core.Second {
		t.Fatalf("legacy view not updated: %+v", got)
	}
	if got.Profile.RequestsPerConn != 3 || got.Profile.Timeout != 7*core.Second {
		t.Fatalf("profile view not mirrored: %+v", got.Profile)
	}
	if got.Profile.PipelineDepth != 1 || got.Profile.InactiveRTT != 100*core.Millisecond || got.Profile.Jitter != 0.2 {
		t.Fatalf("profile defaults not mirrored: %+v", got.Profile)
	}
}
