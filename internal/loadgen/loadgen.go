// Package loadgen reimplements the measurement client of the paper: httperf
// driving a fixed request rate of HTTP/1.0 GETs for a 6 KB document, modified
// as the authors describe (§5) to also maintain a constant population of
// inactive, high-latency connections that never complete a request and that
// reopen themselves whenever the server times them out.
//
// The generator is open-loop: connections are started on a fixed schedule
// derived from the target request rate regardless of whether earlier ones have
// completed, which is what drives an overloaded server into the collapsing
// reply rates and rising error percentages of Figures 4-13.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simkernel"
)

// ErrorReason labels a failed benchmark connection, mirroring httperf's error
// classes.
type ErrorReason string

// Error reasons.
const (
	ErrRefused   ErrorReason = "connrefused" // SYN rejected (backlog full / no listener)
	ErrReset     ErrorReason = "connreset"   // connection reset or truncated response
	ErrTimeout   ErrorReason = "client-timo" // no complete response within Timeout
	ErrPortSpace ErrorReason = "fd-unavail"  // client ran out of ports/descriptors
)

// ClientProfile bundles the per-connection client knobs — request count,
// pipelining, patience and path latency — into one value a caller can pass
// around whole. The zero value selects today's defaults exactly (one-request
// HTTP/1.0 clients, serial dispatch, 5 s patience, network-default RTTs), and
// a zero field inside a non-zero profile likewise defers to the default, so
// profiles compose with DefaultConfig the way the individual fields always
// have.
type ClientProfile struct {
	// RequestsPerConn is how many requests each benchmark connection issues
	// (HTTP/1.1, the final one carrying Connection: close) before the
	// connection ends; 0 or 1 selects the historical one-request HTTP/1.0
	// client. Config.RequestRate remains the request rate: connections
	// launch at RequestRate/RequestsPerConn so a figure's x axis stays the
	// offered request load.
	RequestsPerConn int
	// PipelineDepth is how many requests a keep-alive client keeps
	// outstanding — sent before their predecessors' responses arrive; 0 or 1
	// waits for each response before sending the next request.
	PipelineDepth int
	// Timeout aborts a connection that has not completed in this long
	// (httperf --timeout). Default 5 s.
	Timeout core.Duration
	// ActiveRTT is the round-trip time of benchmark connections (0 selects
	// the network default, i.e. the LAN).
	ActiveRTT core.Duration
	// InactiveRTT is the round-trip time of the inactive clients (default
	// 100 ms, a modem-like path).
	InactiveRTT core.Duration
	// Jitter is the fraction of the inter-arrival gap randomised (0..1).
	Jitter float64
	// Retry enables deterministic client retry: a benchmark connection that
	// fails (refused, reset, truncated, timed out, out of ports) relaunches
	// after a capped exponential backoff with seeded jitter instead of being
	// booked as an error, until RetryMax attempts are exhausted. Off by
	// default; the sweep tools gate it behind -retry. A retried connection
	// keeps its original start time, so latency measures the full
	// client-perceived wait, backoffs included.
	Retry bool
	// RetryMax is how many retry attempts each connection gets beyond the
	// original; zero with Retry set selects 3.
	RetryMax int
	// RetryBase is the backoff before the first retry; retry n waits
	// RetryBase·2^(n-1), capped at 32·RetryBase, scaled by a deterministic
	// per-(connection, attempt) jitter factor in [0.5, 1.5). Zero selects
	// 100 ms.
	RetryBase core.Duration
}

// Config parameterises one benchmark run (one point in a figure).
type Config struct {
	// RequestRate is the targeted connection (request) rate in requests/second.
	RequestRate float64
	// Connections is the number of benchmark connections to issue; the paper
	// uses 35000 per run to stay clear of the TIME-WAIT port limit.
	Connections int
	// InactiveConnections is the constant population of stalled, high-latency
	// connections (the paper's loads of 1, 251 and 501).
	InactiveConnections int
	// DocumentPath is the requested URL (default /index.html, 6 KB).
	DocumentPath string
	// DocumentSize is the expected body size, used to recognise a complete
	// response (default 6 KB).
	DocumentSize int
	// Profile bundles the per-connection client knobs. Non-zero fields
	// override the corresponding deprecated fields below; New normalises
	// both views so either may be read after construction.
	Profile ClientProfile
	// Timeout aborts a connection that has not completed in this long.
	//
	// Deprecated: set Profile.Timeout.
	Timeout core.Duration
	// ActiveRTT is the round-trip time of benchmark connections.
	//
	// Deprecated: set Profile.ActiveRTT.
	ActiveRTT core.Duration
	// InactiveRTT is the round-trip time of the inactive clients.
	//
	// Deprecated: set Profile.InactiveRTT.
	InactiveRTT core.Duration
	// SampleInterval is the reply-rate sampling period (httperf uses 5 s).
	SampleInterval core.Duration
	// Seed drives the arrival jitter; runs with equal seeds are identical.
	Seed int64
	// Jitter is the fraction of the inter-arrival gap randomised (0..1).
	//
	// Deprecated: set Profile.Jitter.
	Jitter float64
	// Workload selects the traffic family, the arrival process, the
	// background-population behavior and the client RTT distribution. The
	// zero value is the paper's workload (constant arrivals, silent inactive
	// clients, LAN).
	Workload Workload
	// RequestsPerConn is how many requests each benchmark connection issues.
	//
	// Deprecated: set Profile.RequestsPerConn.
	RequestsPerConn int
	// PipelineDepth is how many requests a keep-alive client keeps
	// outstanding.
	//
	// Deprecated: set Profile.PipelineDepth.
	PipelineDepth int
}

// DefaultConfig returns the paper's workload shape at the given request rate
// and inactive-connection load.
func DefaultConfig(rate float64, inactive int) Config {
	return Config{
		RequestRate:         rate,
		Connections:         35000,
		InactiveConnections: inactive,
		DocumentPath:        httpsim.DefaultDocumentPath,
		DocumentSize:        httpsim.DefaultDocumentSize,
		Timeout:             5 * core.Second,
		InactiveRTT:         100 * core.Millisecond,
		SampleInterval:      5 * core.Second,
		Seed:                1,
		Jitter:              0.2,
	}
}

// Result summarises one benchmark run.
type Result struct {
	Config Config

	Started  core.Time
	Finished core.Time

	Issued    int
	Completed int
	Errors    int
	ErrorsBy  map[ErrorReason]int

	// ReplyRate summarises the per-interval reply-rate samples (avg/min/max/sd),
	// exactly what Figures 4-9 and 11-13 plot per offered rate.
	ReplyRateSamples []float64
	ReplyRate        metrics.Summary

	// Latency of completed connections, in milliseconds.
	MedianLatencyMs float64
	MeanLatencyMs   float64
	P90LatencyMs    float64
	MaxLatencyMs    float64

	// Latency is the percentile summary (p50/p90/p99/p999) of the same
	// completed-connection latencies, derived from the generator's fixed
	// bucket histogram — the distribution lens the overload figures plot
	// next to reply rate.
	Latency metrics.LatencyPercentiles

	// Replies counts completed responses across all connections: equal to
	// Completed for one-request connections, up to RequestsPerConn times it
	// for keep-alive runs. Reply-rate samples count replies, not connections.
	Replies int

	// ErrorPercent is the percentage of benchmark connections that failed
	// (Figure 10).
	ErrorPercent float64

	// Retries counts retry relaunches across all connections (always zero
	// unless Profile.Retry is enabled).
	Retries int

	// OfferedRate is the achieved connection-issue rate.
	OfferedRate float64
}

// String renders the one-line summary the sweep tool prints per point.
func (r Result) String() string {
	return fmt.Sprintf("rate=%4.0f load=%3d reply(avg=%6.1f min=%6.1f max=%6.1f sd=%5.1f) err=%5.1f%% median=%6.2fms",
		r.Config.RequestRate, r.Config.InactiveConnections,
		r.ReplyRate.Mean, r.ReplyRate.Min, r.ReplyRate.Max, r.ReplyRate.StdDev,
		r.ErrorPercent, r.MedianLatencyMs)
}

// Generator drives one benchmark run against the simulated server.
type Generator struct {
	k   *simkernel.Kernel
	net *netsim.Network
	cfg Config
	rng *rand.Rand

	request        []byte
	partialRequest []byte
	expectedSize   int

	// Keep-alive client state (reqsPerConn > 1): the persistent and the final
	// Connection: close request, and the two response sizes the client needs
	// to recognise reply boundaries on a shared connection.
	reqsPerConn int
	pipeDepth   int
	kaRequest   []byte
	kaFinal     []byte
	kaSize      int
	closeSize   int

	issued    int
	resolved  int
	completed int
	replies   int
	errors    int
	retries   int
	errorsBy  map[ErrorReason]int

	latenciesMs []float64
	hist        metrics.LatencyHist
	sampler     *metrics.RateSampler

	// Parallel-run state. On a sharded simulator every connection's client
	// callbacks execute on its home lane, so the bookkeeping above would be a
	// data race; instead each lane accumulates into its own laneAcc (indexed
	// by the connection's lane) and Result merges them. driverQ is lane 0,
	// where the launch schedule, the rng and the port accounting live; on a
	// sequential run it is the global-queue delegate and everything below
	// collapses to the exact legacy behavior.
	parallel bool
	driverQ  simkernel.Q
	lanes    []laneAcc
	psamples []float64
	pbase    bool

	inactive []*inactiveClient

	// Push-family state (KindPush). The member registry and the delivery
	// budget are owned by the push server's lane — every member's home lane,
	// since they all hash to the one listener — so they stay single-writer
	// on a parallel run; the driver lane only launches connections.
	pushPayload int
	pushMembers []*pushMember
	pushByConn  map[*netsim.ClientConn]*pushMember
	pushDone    int
	pushClosing bool

	// Churn-family state (KindDHTChurn), read-only after Start; the peers
	// themselves live on the datagram home lane.
	dhtQuota        int
	dhtPingSize     int
	dhtPingInterval core.Duration

	started  core.Time
	finished core.Time
	running  bool
	done     bool
	onDone   func(Result)
}

// laneAcc is one lane's share of the run bookkeeping: written only by
// callbacks executing on that lane, read only in barrier serial sections or
// after the run.
type laneAcc struct {
	resolved      int
	completed     int
	replies       int
	errors        int
	errorsBy      map[ErrorReason]int
	latenciesMs   []float64
	hist          metrics.LatencyHist
	counts        []int // completions per sampling interval, by interval index
	lastResolveAt core.Time
	lastRecordAt  core.Time
	_             [64]byte // keep adjacent lanes off one cache line
}

func (ln *laneAcc) bump(idx int) {
	for len(ln.counts) <= idx {
		ln.counts = append(ln.counts, 0)
	}
	ln.counts[idx]++
}

// New creates a generator for the given kernel, network and workload.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Generator {
	// A profile's non-zero fields win over the deprecated flat fields; the
	// merged values are then normalised in place and mirrored back into the
	// profile so either view reads the effective configuration.
	if p := cfg.Profile; p != (ClientProfile{}) {
		if p.RequestsPerConn > 0 {
			cfg.RequestsPerConn = p.RequestsPerConn
		}
		if p.PipelineDepth > 0 {
			cfg.PipelineDepth = p.PipelineDepth
		}
		if p.Timeout > 0 {
			cfg.Timeout = p.Timeout
		}
		if p.ActiveRTT > 0 {
			cfg.ActiveRTT = p.ActiveRTT
		}
		if p.InactiveRTT > 0 {
			cfg.InactiveRTT = p.InactiveRTT
		}
		if p.Jitter > 0 {
			cfg.Jitter = p.Jitter
		}
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	if cfg.RequestRate <= 0 {
		cfg.RequestRate = 1
	}
	if cfg.DocumentPath == "" {
		cfg.DocumentPath = httpsim.DefaultDocumentPath
	}
	if cfg.DocumentSize <= 0 {
		cfg.DocumentSize = httpsim.DefaultDocumentSize
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * core.Second
	}
	if cfg.Profile.Retry {
		if cfg.Profile.RetryMax <= 0 {
			cfg.Profile.RetryMax = 3
		}
		if cfg.Profile.RetryBase <= 0 {
			cfg.Profile.RetryBase = 100 * core.Millisecond
		}
	}
	if cfg.InactiveRTT <= 0 {
		cfg.InactiveRTT = 100 * core.Millisecond
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 5 * core.Second
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 1 {
		cfg.Jitter = 1
	}
	if cfg.RequestsPerConn < 1 {
		cfg.RequestsPerConn = 1
	}
	if cfg.PipelineDepth < 1 {
		cfg.PipelineDepth = 1
	}
	cfg.Profile = ClientProfile{
		RequestsPerConn: cfg.RequestsPerConn,
		PipelineDepth:   cfg.PipelineDepth,
		Timeout:         cfg.Timeout,
		ActiveRTT:       cfg.ActiveRTT,
		InactiveRTT:     cfg.InactiveRTT,
		Jitter:          cfg.Jitter,
		Retry:           cfg.Profile.Retry,
		RetryMax:        cfg.Profile.RetryMax,
		RetryBase:       cfg.Profile.RetryBase,
	}
	g := &Generator{
		k:              k,
		net:            net,
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		request:        httpsim.FormatRequest(cfg.DocumentPath),
		partialRequest: httpsim.FormatPartialRequest(cfg.DocumentPath),
		expectedSize:   httpsim.ResponseSize(httpsim.StatusOK, cfg.DocumentSize),
		errorsBy:       make(map[ErrorReason]int),
		sampler:        metrics.NewRateSampler(cfg.SampleInterval),
	}
	g.reqsPerConn = cfg.RequestsPerConn
	g.pipeDepth = cfg.PipelineDepth
	if g.reqsPerConn > 1 {
		g.kaRequest = httpsim.FormatRequest11(cfg.DocumentPath, false)
		g.kaFinal = httpsim.FormatRequest11(cfg.DocumentPath, true)
		g.kaSize = httpsim.ResponseSizeVersion(httpsim.StatusOK, cfg.DocumentSize, true)
		g.closeSize = httpsim.ResponseSizeVersion(httpsim.StatusOK, cfg.DocumentSize, false)
	}
	g.driverQ = k.Sim.LaneQ(0)
	if k.Sim.Sharded() && net.Parallel() {
		g.parallel = true
		g.lanes = make([]laneAcc, k.Sim.NumLanes())
		for i := range g.lanes {
			g.lanes[i].errorsBy = make(map[ErrorReason]int)
		}
	}
	return g
}

// OnDone registers a callback invoked once every benchmark connection has
// resolved (completed or failed).
func (g *Generator) OnDone(fn func(Result)) { g.onDone = fn }

// Done reports whether the run has finished.
func (g *Generator) Done() bool { return g.done }

// Progress reports issued and resolved connection counts. On a parallel run
// it is only meaningful between runs or after the engine stops.
func (g *Generator) Progress() (issued, resolved int) {
	resolved = g.resolved
	if g.parallel {
		resolved = 0
		for i := range g.lanes {
			resolved += g.lanes[i].resolved
		}
	}
	return g.issued, resolved
}

// Start launches the inactive-connection population and schedules the
// benchmark connections at the configured rate.
func (g *Generator) Start(now core.Time) {
	if g.running {
		return
	}
	g.running = true
	if g.parallel {
		// Completion cannot be detected inside a lane (no lane sees the
		// others' resolution counts), so it is checked in the serial section
		// of every barrier, where all lanes are quiescent.
		g.k.Sim.OnBarrier(g.checkDone)
	}
	switch g.cfg.Workload.Kind {
	case KindPush:
		g.startPush(now)
		return
	case KindDHTChurn:
		g.startDHT(now)
		return
	}

	for i := 0; i < g.cfg.InactiveConnections; i++ {
		ic := &inactiveClient{gen: g, id: i, kind: g.cfg.Workload.Background}
		g.inactive = append(g.inactive, ic)
		// Stagger inactive connection setup over the first 200 ms so the
		// listener backlog is not hit by a synchronised burst.
		delay := core.Duration(g.rng.Int63n(int64(200 * core.Millisecond)))
		g.driverQ.At(now.Add(delay), ic.open)
	}

	at := now
	if g.cfg.InactiveConnections > 0 {
		// The paper's procedure establishes the inactive population before the
		// measured load is applied; give it a head start so every benchmark
		// point sees the full configured interest-set size.
		at = at.Add(400 * core.Millisecond)
	}
	// Measurement (reply-rate sampling, offered-rate accounting) begins when
	// the benchmark load begins, not when the inactive population is set up.
	g.started = at
	g.sampler.Start(at)
	switch g.cfg.Workload.Arrival {
	case ArrivalFlashCrowd:
		g.scheduleFlashCrowd(now, at)
	case ArrivalPareto:
		g.schedulePareto(now, at)
	default:
		g.scheduleConstant(now, at)
	}
}

// scheduleConstant is the paper's open-loop schedule: fixed inter-arrival
// interval with uniform jitter.
func (g *Generator) scheduleConstant(now, at core.Time) {
	interval := core.Duration(float64(core.Second) / g.connRate())
	for i := 0; i < g.cfg.Connections; i++ {
		launch := at.Add(g.jitterFor(interval))
		if launch < now {
			launch = now
		}
		g.driverQ.At(launch, g.launchOne)
		at = at.Add(interval)
	}
}

// scheduleFlashCrowd issues burst trains: BurstFactor times the configured
// rate for BurstDuration out of every BurstPeriod, with the quiet phase
// derated so the long-run mean rate is preserved.
func (g *Generator) scheduleFlashCrowd(now, at core.Time) {
	wl := g.cfg.Workload
	period := wl.BurstPeriod
	if period <= 0 {
		period = 2 * core.Second
	}
	burst := wl.BurstDuration
	if burst <= 0 || burst >= period {
		burst = period / 4
	}
	factor := wl.BurstFactor
	if factor <= 1 {
		factor = 3
	}
	rate := g.connRate()
	burstRate := rate * factor
	// Solve rate*period = burstRate*burst + quietRate*(period-burst); a
	// factor too large for the period leaves nothing for the quiet phase, so
	// clamp it to a trickle rather than schedule backwards.
	quietRate := rate * (period.Seconds() - factor*burst.Seconds()) / (period.Seconds() - burst.Seconds())
	if quietRate < rate/100 {
		quietRate = rate / 100
	}
	offset := core.Duration(0)
	for i := 0; i < g.cfg.Connections; i++ {
		r := burstRate
		if offset%period >= burst {
			r = quietRate
		}
		interval := core.Duration(float64(core.Second) / r)
		launch := at.Add(offset).Add(g.jitterFor(interval))
		if launch < now {
			launch = now
		}
		g.driverQ.At(launch, g.launchOne)
		offset += interval
	}
}

// schedulePareto draws inter-arrival gaps from a Pareto distribution with
// shape alpha and scale chosen so the mean gap is 1/rate: the heavy-tailed
// clumping of real web traffic. Gaps are capped at one hundred mean gaps so a
// single extreme draw cannot stall the run.
func (g *Generator) schedulePareto(now, at core.Time) {
	alpha := g.cfg.Workload.ParetoAlpha
	if alpha <= 1.05 {
		alpha = 1.5
	}
	mean := 1 / g.connRate() // seconds
	xm := mean * (alpha - 1) / alpha
	offset := core.Duration(0)
	for i := 0; i < g.cfg.Connections; i++ {
		launch := at.Add(offset)
		if launch < now {
			launch = now
		}
		g.driverQ.At(launch, g.launchOne)
		u := 1 - g.rng.Float64() // (0, 1]
		gap := xm / math.Pow(u, 1/alpha)
		if gap > 100*mean {
			gap = 100 * mean
		}
		offset += core.Duration(gap * float64(core.Second))
	}
}

// connRate is the connection-launch rate: the configured request rate spread
// over each connection's request count, so keep-alive runs offer the same
// request load through fewer, longer-lived connections.
func (g *Generator) connRate() float64 {
	return g.cfg.RequestRate / float64(g.reqsPerConn)
}

// jitterFor draws the uniform schedule jitter for one inter-arrival interval.
func (g *Generator) jitterFor(interval core.Duration) core.Duration {
	if g.cfg.Jitter <= 0 {
		return 0
	}
	span := float64(interval) * g.cfg.Jitter
	return core.Duration((g.rng.Float64() - 0.5) * span)
}

// launchOne starts a single benchmark connection.
func (g *Generator) launchOne(now core.Time) {
	g.issued++
	rtt := g.cfg.ActiveRTT
	if len(g.cfg.Workload.RTTMix) > 0 {
		rtt = netsim.SampleRTT(g.cfg.Workload.RTTMix, g.rng.Float64())
	}
	ac := &activeConn{gen: g, started: now, reqStart: now, lastProgress: now, rtt: rtt}
	ac.conn = g.net.ConnectWith(now, netsim.ConnectOptions{RTT: rtt}, ac)
	// httperf's client-side timeout, delivered on the connection's home lane
	// (an ordinary global-queue event on a sequential run).
	g.driverQ.Post(ac.conn.Q(), now.Add(g.cfg.Timeout), ac.onTimeout)
}

// recordCompletion books a successful reply. q is the resolving connection's
// home lane — the executing lane for every resolution callback — so on a
// parallel run the books are kept in that lane's accumulator.
func (g *Generator) recordCompletion(q simkernel.Q, started, now core.Time) {
	if g.parallel {
		ln := &g.lanes[q.LaneIndex()]
		ln.completed++
		ln.replies++
		ln.resolved++
		ln.bump(g.sampleIdx(now))
		ln.latenciesMs = append(ln.latenciesMs, now.Sub(started).Milliseconds())
		ln.hist.Observe(now.Sub(started))
		ln.lastResolveAt = now
		ln.lastRecordAt = now
		return
	}
	g.completed++
	g.replies++
	g.resolved++
	g.sampler.Record(now)
	g.latenciesMs = append(g.latenciesMs, now.Sub(started).Milliseconds())
	g.hist.Observe(now.Sub(started))
	g.maybeFinish(now)
}

// recordReply books one completed keep-alive reply: the reply-rate sample and
// the per-reply latency (anchored at the request's dispatch — the previous
// reply's arrival on a pipelined stream). Connection resolution is booked
// separately once the final reply lands.
func (g *Generator) recordReply(q simkernel.Q, reqStart, now core.Time) {
	if g.parallel {
		ln := &g.lanes[q.LaneIndex()]
		ln.replies++
		ln.bump(g.sampleIdx(now))
		ln.latenciesMs = append(ln.latenciesMs, now.Sub(reqStart).Milliseconds())
		ln.hist.Observe(now.Sub(reqStart))
		ln.lastRecordAt = now
		return
	}
	g.replies++
	g.sampler.Record(now)
	g.latenciesMs = append(g.latenciesMs, now.Sub(reqStart).Milliseconds())
	g.hist.Observe(now.Sub(reqStart))
}

// resolveKeepAlive books the end of a keep-alive connection whose final reply
// recordReply already counted.
func (g *Generator) resolveKeepAlive(q simkernel.Q, now core.Time) {
	if g.parallel {
		ln := &g.lanes[q.LaneIndex()]
		ln.completed++
		ln.resolved++
		ln.lastResolveAt = now
		return
	}
	g.completed++
	g.resolved++
	g.maybeFinish(now)
}

// expectAfter is the cumulative response bytes a keep-alive client expects
// once k replies have arrived: k keep-alive responses, with the final reply
// carrying the (shorter) Connection: close head.
func (g *Generator) expectAfter(k int) int {
	if k >= g.reqsPerConn {
		return (g.reqsPerConn-1)*g.kaSize + g.closeSize
	}
	return k * g.kaSize
}

// recordError books a failed benchmark connection.
func (g *Generator) recordError(q simkernel.Q, reason ErrorReason, now core.Time) {
	if g.parallel {
		ln := &g.lanes[q.LaneIndex()]
		ln.errors++
		ln.resolved++
		ln.errorsBy[reason]++
		ln.lastResolveAt = now
		return
	}
	g.errors++
	g.resolved++
	g.errorsBy[reason]++
	g.maybeFinish(now)
}

// sampleIdx maps a completion instant onto its sampling-interval index, with
// the sampler's edge rule: a completion exactly on an interval edge counts
// toward the interval that starts there.
func (g *Generator) sampleIdx(now core.Time) int {
	d := now.Sub(g.started)
	if d < 0 {
		return 0
	}
	return int(d / g.cfg.SampleInterval)
}

// checkDone is the parallel-run finish check, invoked in the serial section
// of every barrier epoch while all lanes are quiescent.
func (g *Generator) checkDone(core.Time) {
	if g.done || g.issued < g.cfg.Connections {
		return
	}
	resolved := 0
	var last core.Time
	for i := range g.lanes {
		resolved += g.lanes[i].resolved
		if g.lanes[i].lastResolveAt > last {
			last = g.lanes[i].lastResolveAt
		}
	}
	if resolved < g.issued {
		return
	}
	g.done = true
	// The sequential run finishes inside the last resolution event; the
	// parallel run detects it a barrier later, so the recorded finish instant
	// is pinned to that last resolution, not the barrier floor.
	g.finished = last
	if g.onDone != nil {
		g.onDone(g.Result())
	}
}

// maybeFinish completes the run once every issued connection has resolved and
// the full population has been issued.
func (g *Generator) maybeFinish(now core.Time) {
	if g.done || g.issued < g.cfg.Connections || g.resolved < g.issued {
		return
	}
	g.done = true
	g.finished = now
	if g.onDone != nil {
		g.onDone(g.Result())
	}
}

// Result assembles the run summary. It may be called once Done is true (or at
// any time for a partial view).
func (g *Generator) Result() Result {
	if g.parallel {
		return g.parallelResult()
	}
	end := g.finished
	if end == 0 {
		end = g.k.Now()
	}
	samples := append([]float64(nil), g.sampler.Samples()...)
	if g.done {
		samples = g.sampler.Finish(end)
	}
	res := Result{
		Config:           g.cfg,
		Started:          g.started,
		Finished:         end,
		Issued:           g.issued,
		Completed:        g.completed,
		Replies:          g.replies,
		Errors:           g.errors,
		Retries:          g.retries,
		ErrorsBy:         copyReasons(g.errorsBy),
		ReplyRateSamples: samples,
		ReplyRate:        metrics.Summarize(samples),
	}
	if g.issued > 0 {
		res.ErrorPercent = 100 * float64(g.errors) / float64(g.issued)
	}
	if elapsed := end.Sub(g.started); elapsed > 0 {
		res.OfferedRate = float64(g.issued) / elapsed.Seconds()
	}
	if len(g.latenciesMs) > 0 {
		res.MedianLatencyMs = metrics.Median(g.latenciesMs)
		res.MeanLatencyMs = metrics.Summarize(g.latenciesMs).Mean
		res.P90LatencyMs = metrics.Percentile(g.latenciesMs, 90)
		sorted := append([]float64(nil), g.latenciesMs...)
		sort.Float64s(sorted)
		res.MaxLatencyMs = sorted[len(sorted)-1]
	}
	res.Latency = g.hist.Percentiles()
	return res
}

// parallelResult merges the per-lane accumulators into the same summary the
// sequential books would have produced: every merged quantity is either an
// order-free reduction (counts, sorted percentiles, histogram buckets) or
// reconstructed with the sequential sampler's exact arithmetic, so a sharded
// run's figures are byte-identical to the single-threaded run's.
func (g *Generator) parallelResult() Result {
	end := g.finished
	if end == 0 {
		end = g.k.Now()
	}
	completed, replies, errors := 0, 0, 0
	errorsBy := make(map[ErrorReason]int)
	var lat []float64
	var hist metrics.LatencyHist
	var lastRecord core.Time
	for i := range g.lanes {
		ln := &g.lanes[i]
		completed += ln.completed
		replies += ln.replies
		errors += ln.errors
		for k, v := range ln.errorsBy {
			errorsBy[k] += v
		}
		lat = append(lat, ln.latenciesMs...)
		hist.Merge(&ln.hist)
		if ln.lastRecordAt > lastRecord {
			lastRecord = ln.lastRecordAt
		}
	}
	total := func(k int) int {
		n := 0
		for i := range g.lanes {
			if k < len(g.lanes[i].counts) {
				n += g.lanes[i].counts[k]
			}
		}
		return n
	}
	res := Result{
		Config:           g.cfg,
		Started:          g.started,
		Finished:         end,
		Issued:           g.issued,
		Completed:        completed,
		Replies:          replies,
		Errors:           errors,
		Retries:          g.retries,
		ErrorsBy:         errorsBy,
		ReplyRateSamples: g.mergedSamples(end, lastRecord, total),
	}
	res.ReplyRate = metrics.Summarize(res.ReplyRateSamples)
	if g.issued > 0 {
		res.ErrorPercent = 100 * float64(errors) / float64(g.issued)
	}
	if elapsed := end.Sub(g.started); elapsed > 0 {
		res.OfferedRate = float64(g.issued) / elapsed.Seconds()
	}
	if len(lat) > 0 {
		res.MedianLatencyMs = metrics.Median(lat)
		res.MeanLatencyMs = metrics.Summarize(lat).Mean
		res.P90LatencyMs = metrics.Percentile(lat, 90)
		sorted := append([]float64(nil), lat...)
		sort.Float64s(sorted)
		res.MaxLatencyMs = sorted[len(sorted)-1]
	}
	res.Latency = hist.Percentiles()
	return res
}

// mergedSamples reconstructs the sequential RateSampler's output from the
// merged per-interval completion counts: one sample per closed interval
// (zero-count intervals included), and the trailing partial interval when it
// is at least half an interval long and non-empty. The sequential sampler's
// Finish appends that tail on every call and Result is invoked once by the
// OnDone callback and once more by the harness, so the same one-tail-per-call
// growth is reproduced here.
func (g *Generator) mergedSamples(end, lastRecord core.Time, total func(int) int) []float64 {
	interval := g.cfg.SampleInterval
	if !g.done {
		if lastRecord == 0 {
			return nil
		}
		closed := int(lastRecord.Sub(g.started) / interval)
		if closed < 0 {
			closed = 0
		}
		out := make([]float64, 0, closed)
		for k := 0; k < closed; k++ {
			out = append(out, float64(total(k))/interval.Seconds())
		}
		return out
	}
	closed := int(end.Sub(g.started) / interval)
	if closed < 0 {
		closed = 0
	}
	if !g.pbase {
		g.pbase = true
		for k := 0; k < closed; k++ {
			g.psamples = append(g.psamples, float64(total(k))/interval.Seconds())
		}
	}
	tail := end.Sub(g.started) - core.Duration(closed)*interval
	if cur := total(closed); tail >= interval/2 && cur > 0 {
		g.psamples = append(g.psamples, float64(cur)/tail.Seconds())
	}
	return append([]float64(nil), g.psamples...)
}

// LatencyHistogram exposes the completed-connection latency histogram (for
// tests and percentile tooling).
func (g *Generator) LatencyHistogram() *metrics.LatencyHist { return &g.hist }

func copyReasons(m map[ErrorReason]int) map[ErrorReason]int {
	out := make(map[ErrorReason]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// activeConn is one benchmark connection's client-side state machine. It
// implements netsim.ConnHandler directly, so launching a connection costs one
// interface value instead of a closure per callback.
type activeConn struct {
	gen      *Generator
	conn     *netsim.ClientConn
	started  core.Time
	received int
	resolved bool
	rtt      core.Duration

	// Retry state (Profile.Retry): the attempt number, incremented when a
	// failure is absorbed into a retry. Timers and late callbacks armed for
	// an earlier attempt compare their stamp against it and stand down.
	attempt int

	// Keep-alive state: requests sent and replies recognised so far, the
	// in-flight request's dispatch time (the latency anchor) and the last
	// instant of progress (the rolling watchdog's anchor).
	sent         int
	replied      int
	reqStart     core.Time
	lastProgress core.Time
}

// Connected implements netsim.ConnHandler.
func (a *activeConn) Connected(now core.Time) {
	if a.resolved {
		return
	}
	if a.gen.reqsPerConn <= 1 {
		a.conn.Send(now, a.gen.request)
		return
	}
	a.reqStart, a.lastProgress = now, now
	burst := a.gen.pipeDepth
	if burst > a.gen.reqsPerConn {
		burst = a.gen.reqsPerConn
	}
	for i := 0; i < burst; i++ {
		a.sendNext(now)
	}
}

// sendNext issues the connection's next request; the last one carries
// Connection: close.
func (a *activeConn) sendNext(now core.Time) {
	a.sent++
	if a.sent == a.gen.reqsPerConn {
		a.conn.Send(now, a.gen.kaFinal)
		return
	}
	a.conn.Send(now, a.gen.kaRequest)
}

// Refused implements netsim.ConnHandler.
func (a *activeConn) Refused(now core.Time, reason netsim.RefuseReason) {
	if a.resolved {
		return
	}
	a.resolved = true
	switch reason {
	case netsim.RefusedPorts:
		a.failOrRetry(now, ErrPortSpace)
	case netsim.RefusedReset:
		a.failOrRetry(now, ErrReset)
	default:
		a.failOrRetry(now, ErrRefused)
	}
}

// Data implements netsim.ConnHandler.
func (a *activeConn) Data(now core.Time, n int) {
	a.received += n
	if a.gen.reqsPerConn <= 1 || a.resolved {
		return
	}
	// Recognise completed replies by cumulative size, book each one, and keep
	// the pipeline primed (or, serially, dispatch the next request).
	for a.replied < a.sent && a.received >= a.gen.expectAfter(a.replied+1) {
		a.replied++
		a.gen.recordReply(a.conn.Q(), a.reqStart, now)
		a.reqStart, a.lastProgress = now, now
		if a.replied == a.gen.reqsPerConn {
			a.resolved = true
			a.conn.Close(now)
			a.gen.resolveKeepAlive(a.conn.Q(), now)
			return
		}
		if a.sent < a.gen.reqsPerConn {
			a.sendNext(now)
		}
	}
}

// PeerClosed implements netsim.ConnHandler.
func (a *activeConn) PeerClosed(now core.Time) {
	if a.resolved {
		return
	}
	a.resolved = true
	if a.gen.reqsPerConn <= 1 && a.received >= a.gen.expectedSize {
		a.gen.recordCompletion(a.conn.Q(), a.started, now)
		return
	}
	// The server closed the connection before delivering the full response —
	// bad request path, shutdown, idle timeout, or (keep-alive) a close before
	// the final reply; Data has already booked whatever replies did complete.
	// Count it like httperf's connection-reset errors.
	a.failOrRetry(now, ErrReset)
}

// failOrRetry books a terminal connection failure — unless retry is enabled
// and attempts remain, in which case the failure is absorbed and the
// connection relaunches after a capped exponential backoff with seeded
// jitter. The jitter is keyed by the failed attempt's connection id; every
// connection is launched from the driver lane, so the id — and with it the
// whole retry schedule — is thread-count invariant. Called with a.resolved
// already set, which keeps any late callbacks against the failed attempt
// inert during the backoff.
func (a *activeConn) failOrRetry(now core.Time, reason ErrorReason) {
	g := a.gen
	p := &g.cfg.Profile
	if !p.Retry || a.attempt >= p.RetryMax {
		g.recordError(a.conn.Q(), reason, now)
		return
	}
	a.attempt++
	backoff := p.RetryBase << uint(a.attempt-1)
	if lim := p.RetryBase << 5; backoff > lim {
		backoff = lim
	}
	backoff = core.Duration(float64(backoff) * faults.RetryJitter(uint64(g.cfg.Seed), a.conn.ID, a.attempt))
	// Connection launch state (ports, conn ids) lives on the driver lane;
	// hop there, the same way the inactive population reopens itself.
	a.conn.Q().Post(g.driverQ, now.Add(backoff), a.relaunch)
}

// relaunch opens the retried connection on the driver lane, resetting the
// exchange state but keeping the original start time: the connection's
// latency, if it completes, is the full client-perceived wait.
func (a *activeConn) relaunch(now core.Time) {
	g := a.gen
	g.retries++
	a.resolved = false
	a.received = 0
	a.sent, a.replied = 0, 0
	a.reqStart, a.lastProgress = now, now
	a.conn = g.net.ConnectWith(now, netsim.ConnectOptions{RTT: a.rtt}, a)
	attempt := a.attempt
	g.driverQ.Post(a.conn.Q(), now.Add(g.cfg.Timeout), func(t core.Time) { a.timeout(attempt, t) })
}

func (a *activeConn) onTimeout(now core.Time) { a.timeout(0, now) }

// timeout is the client-patience watchdog, stamped with the attempt it was
// armed for: a watchdog armed for an attempt that has since failed and been
// retried must not kill the retry's fresh connection early.
func (a *activeConn) timeout(attempt int, now core.Time) {
	if a.resolved || attempt != a.attempt {
		return
	}
	if a.gen.reqsPerConn > 1 {
		// A keep-alive connection legitimately outlives one Timeout; the
		// watchdog instead requires a reply every Timeout window, re-arming
		// itself from the last instant of progress.
		if deadline := a.lastProgress.Add(a.gen.cfg.Timeout); deadline > now {
			if attempt == 0 {
				a.conn.Q().At(deadline, a.onTimeout)
			} else {
				a.conn.Q().At(deadline, func(t core.Time) { a.timeout(attempt, t) })
			}
			return
		}
	}
	a.resolved = true
	a.conn.Close(now)
	a.failOrRetry(now, ErrTimeout)
}

// inactiveClient keeps one perpetually unserviceable connection open against
// the server, reopening it whenever it is refused or timed out, so the
// adversarial population stays constant. Its behavior after connecting
// depends on the workload's BackgroundKind: stay silent with a partial
// request (the paper's inactive load), trickle request bytes forever
// (slow-loris), or request the document and never drain the response
// (stalled reader).
type inactiveClient struct {
	gen     *Generator
	id      int
	kind    BackgroundKind
	conn    *netsim.ClientConn
	reopens int
}

func (ic *inactiveClient) open(now core.Time) {
	if ic.gen.done {
		return
	}
	opts := netsim.ConnectOptions{RTT: ic.gen.cfg.InactiveRTT}
	if ic.kind == BackgroundStalledReader {
		window := ic.gen.cfg.Workload.StallWindow
		if window <= 0 {
			window = 512
		}
		opts.RecvWindow = window
		opts.StallReads = true
	}
	ic.conn = ic.gen.net.ConnectWith(now, opts, ic)
}

// Connected implements netsim.ConnHandler.
func (ic *inactiveClient) Connected(now core.Time) {
	switch ic.kind {
	case BackgroundSlowLoris:
		// Open with the incomplete request, then keep dribbling bytes so the
		// idle sweep never reclaims the connection.
		ic.conn.Send(now, ic.gen.partialRequest)
		ic.scheduleTrickle(now, ic.conn)
	case BackgroundStalledReader:
		// A complete request: the server does the full parse-and-serve work,
		// then its response jams against the never-draining window.
		ic.conn.Send(now, ic.gen.request)
	default:
		// Send a deliberately incomplete request so the server parks the
		// connection in its interest set.
		ic.conn.Send(now, ic.gen.partialRequest)
	}
}

// Data implements netsim.ConnHandler.
func (ic *inactiveClient) Data(core.Time, int) {}

// Refused implements netsim.ConnHandler.
func (ic *inactiveClient) Refused(now core.Time, reason netsim.RefuseReason) {
	ic.onClosedOrRefused(now, reason)
}

// PeerClosed implements netsim.ConnHandler.
func (ic *inactiveClient) PeerClosed(now core.Time) {
	ic.onClosedOrRefused(now, netsim.RefusedReset)
}

// scheduleTrickle arms the next slow-loris byte for the given connection on
// the connection's own lane. The loop is bound to one connection instance: a
// connection never returns to the established state once it leaves it, so
// after a refusal or close the stale loop dies and Connected starts a new one
// for the replacement connection.
func (ic *inactiveClient) scheduleTrickle(now core.Time, conn *netsim.ClientConn) {
	interval := ic.gen.cfg.Workload.TrickleInterval
	if interval <= 0 {
		interval = 250 * core.Millisecond
	}
	conn.Q().At(now.Add(interval), func(t core.Time) {
		if ic.gen.done || conn.State() != netsim.StateEstablished {
			return
		}
		conn.Send(t, trickleByte)
		ic.scheduleTrickle(t, conn)
	})
}

// trickleByte is the one-byte payload a slow-loris client dribbles: header
// filler that never completes the request (the parser only gives up at its
// request-size cap, which takes tens of virtual minutes at trickle pace).
var trickleByte = []byte("a")

func (ic *inactiveClient) onClosedOrRefused(now core.Time, _ netsim.RefuseReason) {
	if ic.gen.done {
		return
	}
	ic.reopens++
	// Reopen after a short pause, keeping the inactive population constant.
	// The refusal/close callback executes on the dead connection's lane;
	// open must run on the driver, where connection launch state lives.
	q := ic.gen.driverQ
	if ic.conn != nil {
		q = ic.conn.Q()
	}
	q.Post(ic.gen.driverQ, now.Add(250*core.Millisecond), ic.open)
}

// InactiveReopens reports how many times inactive clients had to reconnect
// (server idle timeouts, refusals); exposed for tests and experiment logs.
func (g *Generator) InactiveReopens() int {
	total := 0
	for _, ic := range g.inactive {
		total += ic.reopens
	}
	return total
}
