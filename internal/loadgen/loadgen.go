// Package loadgen reimplements the measurement client of the paper: httperf
// driving a fixed request rate of HTTP/1.0 GETs for a 6 KB document, modified
// as the authors describe (§5) to also maintain a constant population of
// inactive, high-latency connections that never complete a request and that
// reopen themselves whenever the server times them out.
//
// The generator is open-loop: connections are started on a fixed schedule
// derived from the target request rate regardless of whether earlier ones have
// completed, which is what drives an overloaded server into the collapsing
// reply rates and rising error percentages of Figures 4-13.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simkernel"
)

// ErrorReason labels a failed benchmark connection, mirroring httperf's error
// classes.
type ErrorReason string

// Error reasons.
const (
	ErrRefused   ErrorReason = "connrefused" // SYN rejected (backlog full / no listener)
	ErrReset     ErrorReason = "connreset"   // connection reset or truncated response
	ErrTimeout   ErrorReason = "client-timo" // no complete response within Timeout
	ErrPortSpace ErrorReason = "fd-unavail"  // client ran out of ports/descriptors
)

// Config parameterises one benchmark run (one point in a figure).
type Config struct {
	// RequestRate is the targeted connection (request) rate in requests/second.
	RequestRate float64
	// Connections is the number of benchmark connections to issue; the paper
	// uses 35000 per run to stay clear of the TIME-WAIT port limit.
	Connections int
	// InactiveConnections is the constant population of stalled, high-latency
	// connections (the paper's loads of 1, 251 and 501).
	InactiveConnections int
	// DocumentPath is the requested URL (default /index.html, 6 KB).
	DocumentPath string
	// DocumentSize is the expected body size, used to recognise a complete
	// response (default 6 KB).
	DocumentSize int
	// Timeout aborts a connection that has not completed in this long
	// (httperf --timeout). Default 5 s.
	Timeout core.Duration
	// ActiveRTT is the round-trip time of benchmark connections (0 selects the
	// network default, i.e. the LAN).
	ActiveRTT core.Duration
	// InactiveRTT is the round-trip time of the inactive clients (default
	// 100 ms, a modem-like path).
	InactiveRTT core.Duration
	// SampleInterval is the reply-rate sampling period (httperf uses 5 s).
	SampleInterval core.Duration
	// Seed drives the arrival jitter; runs with equal seeds are identical.
	Seed int64
	// Jitter is the fraction of the inter-arrival gap randomised (0..1).
	Jitter float64
	// Workload selects the arrival process, the background-population
	// behavior and the client RTT distribution. The zero value is the
	// paper's workload (constant arrivals, silent inactive clients, LAN).
	Workload Workload
}

// DefaultConfig returns the paper's workload shape at the given request rate
// and inactive-connection load.
func DefaultConfig(rate float64, inactive int) Config {
	return Config{
		RequestRate:         rate,
		Connections:         35000,
		InactiveConnections: inactive,
		DocumentPath:        httpsim.DefaultDocumentPath,
		DocumentSize:        httpsim.DefaultDocumentSize,
		Timeout:             5 * core.Second,
		InactiveRTT:         100 * core.Millisecond,
		SampleInterval:      5 * core.Second,
		Seed:                1,
		Jitter:              0.2,
	}
}

// Result summarises one benchmark run.
type Result struct {
	Config Config

	Started  core.Time
	Finished core.Time

	Issued    int
	Completed int
	Errors    int
	ErrorsBy  map[ErrorReason]int

	// ReplyRate summarises the per-interval reply-rate samples (avg/min/max/sd),
	// exactly what Figures 4-9 and 11-13 plot per offered rate.
	ReplyRateSamples []float64
	ReplyRate        metrics.Summary

	// Latency of completed connections, in milliseconds.
	MedianLatencyMs float64
	MeanLatencyMs   float64
	P90LatencyMs    float64
	MaxLatencyMs    float64

	// Latency is the percentile summary (p50/p90/p99/p999) of the same
	// completed-connection latencies, derived from the generator's fixed
	// bucket histogram — the distribution lens the overload figures plot
	// next to reply rate.
	Latency metrics.LatencyPercentiles

	// ErrorPercent is the percentage of benchmark connections that failed
	// (Figure 10).
	ErrorPercent float64

	// OfferedRate is the achieved connection-issue rate.
	OfferedRate float64
}

// String renders the one-line summary the sweep tool prints per point.
func (r Result) String() string {
	return fmt.Sprintf("rate=%4.0f load=%3d reply(avg=%6.1f min=%6.1f max=%6.1f sd=%5.1f) err=%5.1f%% median=%6.2fms",
		r.Config.RequestRate, r.Config.InactiveConnections,
		r.ReplyRate.Mean, r.ReplyRate.Min, r.ReplyRate.Max, r.ReplyRate.StdDev,
		r.ErrorPercent, r.MedianLatencyMs)
}

// Generator drives one benchmark run against the simulated server.
type Generator struct {
	k   *simkernel.Kernel
	net *netsim.Network
	cfg Config
	rng *rand.Rand

	request        []byte
	partialRequest []byte
	expectedSize   int

	issued    int
	resolved  int
	completed int
	errors    int
	errorsBy  map[ErrorReason]int

	latenciesMs []float64
	hist        metrics.LatencyHist
	sampler     *metrics.RateSampler

	inactive []*inactiveClient

	started  core.Time
	finished core.Time
	running  bool
	done     bool
	onDone   func(Result)
}

// New creates a generator for the given kernel, network and workload.
func New(k *simkernel.Kernel, net *netsim.Network, cfg Config) *Generator {
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	if cfg.RequestRate <= 0 {
		cfg.RequestRate = 1
	}
	if cfg.DocumentPath == "" {
		cfg.DocumentPath = httpsim.DefaultDocumentPath
	}
	if cfg.DocumentSize <= 0 {
		cfg.DocumentSize = httpsim.DefaultDocumentSize
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * core.Second
	}
	if cfg.InactiveRTT <= 0 {
		cfg.InactiveRTT = 100 * core.Millisecond
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 5 * core.Second
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Jitter > 1 {
		cfg.Jitter = 1
	}
	return &Generator{
		k:              k,
		net:            net,
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		request:        httpsim.FormatRequest(cfg.DocumentPath),
		partialRequest: httpsim.FormatPartialRequest(cfg.DocumentPath),
		expectedSize:   httpsim.ResponseSize(httpsim.StatusOK, cfg.DocumentSize),
		errorsBy:       make(map[ErrorReason]int),
		sampler:        metrics.NewRateSampler(cfg.SampleInterval),
	}
}

// OnDone registers a callback invoked once every benchmark connection has
// resolved (completed or failed).
func (g *Generator) OnDone(fn func(Result)) { g.onDone = fn }

// Done reports whether the run has finished.
func (g *Generator) Done() bool { return g.done }

// Progress reports issued and resolved connection counts.
func (g *Generator) Progress() (issued, resolved int) { return g.issued, g.resolved }

// Start launches the inactive-connection population and schedules the
// benchmark connections at the configured rate.
func (g *Generator) Start(now core.Time) {
	if g.running {
		return
	}
	g.running = true

	for i := 0; i < g.cfg.InactiveConnections; i++ {
		ic := &inactiveClient{gen: g, id: i, kind: g.cfg.Workload.Background}
		g.inactive = append(g.inactive, ic)
		// Stagger inactive connection setup over the first 200 ms so the
		// listener backlog is not hit by a synchronised burst.
		delay := core.Duration(g.rng.Int63n(int64(200 * core.Millisecond)))
		g.k.Sim.At(now.Add(delay), ic.open)
	}

	at := now
	if g.cfg.InactiveConnections > 0 {
		// The paper's procedure establishes the inactive population before the
		// measured load is applied; give it a head start so every benchmark
		// point sees the full configured interest-set size.
		at = at.Add(400 * core.Millisecond)
	}
	// Measurement (reply-rate sampling, offered-rate accounting) begins when
	// the benchmark load begins, not when the inactive population is set up.
	g.started = at
	g.sampler.Start(at)
	switch g.cfg.Workload.Arrival {
	case ArrivalFlashCrowd:
		g.scheduleFlashCrowd(now, at)
	case ArrivalPareto:
		g.schedulePareto(now, at)
	default:
		g.scheduleConstant(now, at)
	}
}

// scheduleConstant is the paper's open-loop schedule: fixed inter-arrival
// interval with uniform jitter.
func (g *Generator) scheduleConstant(now, at core.Time) {
	interval := core.Duration(float64(core.Second) / g.cfg.RequestRate)
	for i := 0; i < g.cfg.Connections; i++ {
		launch := at.Add(g.jitterFor(interval))
		if launch < now {
			launch = now
		}
		g.k.Sim.At(launch, g.launchOne)
		at = at.Add(interval)
	}
}

// scheduleFlashCrowd issues burst trains: BurstFactor times the configured
// rate for BurstDuration out of every BurstPeriod, with the quiet phase
// derated so the long-run mean rate is preserved.
func (g *Generator) scheduleFlashCrowd(now, at core.Time) {
	wl := g.cfg.Workload
	period := wl.BurstPeriod
	if period <= 0 {
		period = 2 * core.Second
	}
	burst := wl.BurstDuration
	if burst <= 0 || burst >= period {
		burst = period / 4
	}
	factor := wl.BurstFactor
	if factor <= 1 {
		factor = 3
	}
	rate := g.cfg.RequestRate
	burstRate := rate * factor
	// Solve rate*period = burstRate*burst + quietRate*(period-burst); a
	// factor too large for the period leaves nothing for the quiet phase, so
	// clamp it to a trickle rather than schedule backwards.
	quietRate := rate * (period.Seconds() - factor*burst.Seconds()) / (period.Seconds() - burst.Seconds())
	if quietRate < rate/100 {
		quietRate = rate / 100
	}
	offset := core.Duration(0)
	for i := 0; i < g.cfg.Connections; i++ {
		r := burstRate
		if offset%period >= burst {
			r = quietRate
		}
		interval := core.Duration(float64(core.Second) / r)
		launch := at.Add(offset).Add(g.jitterFor(interval))
		if launch < now {
			launch = now
		}
		g.k.Sim.At(launch, g.launchOne)
		offset += interval
	}
}

// schedulePareto draws inter-arrival gaps from a Pareto distribution with
// shape alpha and scale chosen so the mean gap is 1/rate: the heavy-tailed
// clumping of real web traffic. Gaps are capped at one hundred mean gaps so a
// single extreme draw cannot stall the run.
func (g *Generator) schedulePareto(now, at core.Time) {
	alpha := g.cfg.Workload.ParetoAlpha
	if alpha <= 1.05 {
		alpha = 1.5
	}
	mean := 1 / g.cfg.RequestRate // seconds
	xm := mean * (alpha - 1) / alpha
	offset := core.Duration(0)
	for i := 0; i < g.cfg.Connections; i++ {
		launch := at.Add(offset)
		if launch < now {
			launch = now
		}
		g.k.Sim.At(launch, g.launchOne)
		u := 1 - g.rng.Float64() // (0, 1]
		gap := xm / math.Pow(u, 1/alpha)
		if gap > 100*mean {
			gap = 100 * mean
		}
		offset += core.Duration(gap * float64(core.Second))
	}
}

// jitterFor draws the uniform schedule jitter for one inter-arrival interval.
func (g *Generator) jitterFor(interval core.Duration) core.Duration {
	if g.cfg.Jitter <= 0 {
		return 0
	}
	span := float64(interval) * g.cfg.Jitter
	return core.Duration((g.rng.Float64() - 0.5) * span)
}

// launchOne starts a single benchmark connection.
func (g *Generator) launchOne(now core.Time) {
	g.issued++
	rtt := g.cfg.ActiveRTT
	if len(g.cfg.Workload.RTTMix) > 0 {
		rtt = netsim.SampleRTT(g.cfg.Workload.RTTMix, g.rng.Float64())
	}
	ac := &activeConn{gen: g, started: now}
	ac.conn = g.net.ConnectWith(now, netsim.ConnectOptions{RTT: rtt}, ac)
	// httperf's client-side timeout.
	g.k.Sim.At(now.Add(g.cfg.Timeout), ac.onTimeout)
}

// recordCompletion books a successful reply.
func (g *Generator) recordCompletion(started, now core.Time) {
	g.completed++
	g.resolved++
	g.sampler.Record(now)
	g.latenciesMs = append(g.latenciesMs, now.Sub(started).Milliseconds())
	g.hist.Observe(now.Sub(started))
	g.maybeFinish(now)
}

// recordError books a failed benchmark connection.
func (g *Generator) recordError(reason ErrorReason, now core.Time) {
	g.errors++
	g.resolved++
	g.errorsBy[reason]++
	g.maybeFinish(now)
}

// maybeFinish completes the run once every issued connection has resolved and
// the full population has been issued.
func (g *Generator) maybeFinish(now core.Time) {
	if g.done || g.issued < g.cfg.Connections || g.resolved < g.issued {
		return
	}
	g.done = true
	g.finished = now
	if g.onDone != nil {
		g.onDone(g.Result())
	}
}

// Result assembles the run summary. It may be called once Done is true (or at
// any time for a partial view).
func (g *Generator) Result() Result {
	end := g.finished
	if end == 0 {
		end = g.k.Now()
	}
	samples := append([]float64(nil), g.sampler.Samples()...)
	if g.done {
		samples = g.sampler.Finish(end)
	}
	res := Result{
		Config:           g.cfg,
		Started:          g.started,
		Finished:         end,
		Issued:           g.issued,
		Completed:        g.completed,
		Errors:           g.errors,
		ErrorsBy:         copyReasons(g.errorsBy),
		ReplyRateSamples: samples,
		ReplyRate:        metrics.Summarize(samples),
	}
	if g.issued > 0 {
		res.ErrorPercent = 100 * float64(g.errors) / float64(g.issued)
	}
	if elapsed := end.Sub(g.started); elapsed > 0 {
		res.OfferedRate = float64(g.issued) / elapsed.Seconds()
	}
	if len(g.latenciesMs) > 0 {
		res.MedianLatencyMs = metrics.Median(g.latenciesMs)
		res.MeanLatencyMs = metrics.Summarize(g.latenciesMs).Mean
		res.P90LatencyMs = metrics.Percentile(g.latenciesMs, 90)
		sorted := append([]float64(nil), g.latenciesMs...)
		sort.Float64s(sorted)
		res.MaxLatencyMs = sorted[len(sorted)-1]
	}
	res.Latency = g.hist.Percentiles()
	return res
}

// LatencyHistogram exposes the completed-connection latency histogram (for
// tests and percentile tooling).
func (g *Generator) LatencyHistogram() *metrics.LatencyHist { return &g.hist }

func copyReasons(m map[ErrorReason]int) map[ErrorReason]int {
	out := make(map[ErrorReason]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// activeConn is one benchmark connection's client-side state machine. It
// implements netsim.ConnHandler directly, so launching a connection costs one
// interface value instead of a closure per callback.
type activeConn struct {
	gen      *Generator
	conn     *netsim.ClientConn
	started  core.Time
	received int
	resolved bool
}

// Connected implements netsim.ConnHandler.
func (a *activeConn) Connected(now core.Time) {
	if a.resolved {
		return
	}
	a.conn.Send(now, a.gen.request)
}

// Refused implements netsim.ConnHandler.
func (a *activeConn) Refused(now core.Time, reason netsim.RefuseReason) {
	if a.resolved {
		return
	}
	a.resolved = true
	switch reason {
	case netsim.RefusedPorts:
		a.gen.recordError(ErrPortSpace, now)
	case netsim.RefusedReset:
		a.gen.recordError(ErrReset, now)
	default:
		a.gen.recordError(ErrRefused, now)
	}
}

// Data implements netsim.ConnHandler.
func (a *activeConn) Data(now core.Time, n int) {
	a.received += n
}

// PeerClosed implements netsim.ConnHandler.
func (a *activeConn) PeerClosed(now core.Time) {
	if a.resolved {
		return
	}
	a.resolved = true
	if a.received >= a.gen.expectedSize {
		a.gen.recordCompletion(a.started, now)
		return
	}
	// The server closed the connection before delivering the full response
	// (bad request path, shutdown, or idle timeout): count it like httperf's
	// connection-reset errors.
	a.gen.recordError(ErrReset, now)
}

func (a *activeConn) onTimeout(now core.Time) {
	if a.resolved {
		return
	}
	a.resolved = true
	a.conn.Close(now)
	a.gen.recordError(ErrTimeout, now)
}

// inactiveClient keeps one perpetually unserviceable connection open against
// the server, reopening it whenever it is refused or timed out, so the
// adversarial population stays constant. Its behavior after connecting
// depends on the workload's BackgroundKind: stay silent with a partial
// request (the paper's inactive load), trickle request bytes forever
// (slow-loris), or request the document and never drain the response
// (stalled reader).
type inactiveClient struct {
	gen     *Generator
	id      int
	kind    BackgroundKind
	conn    *netsim.ClientConn
	reopens int
}

func (ic *inactiveClient) open(now core.Time) {
	if ic.gen.done {
		return
	}
	opts := netsim.ConnectOptions{RTT: ic.gen.cfg.InactiveRTT}
	if ic.kind == BackgroundStalledReader {
		window := ic.gen.cfg.Workload.StallWindow
		if window <= 0 {
			window = 512
		}
		opts.RecvWindow = window
		opts.StallReads = true
	}
	ic.conn = ic.gen.net.ConnectWith(now, opts, ic)
}

// Connected implements netsim.ConnHandler.
func (ic *inactiveClient) Connected(now core.Time) {
	switch ic.kind {
	case BackgroundSlowLoris:
		// Open with the incomplete request, then keep dribbling bytes so the
		// idle sweep never reclaims the connection.
		ic.conn.Send(now, ic.gen.partialRequest)
		ic.scheduleTrickle(now, ic.conn)
	case BackgroundStalledReader:
		// A complete request: the server does the full parse-and-serve work,
		// then its response jams against the never-draining window.
		ic.conn.Send(now, ic.gen.request)
	default:
		// Send a deliberately incomplete request so the server parks the
		// connection in its interest set.
		ic.conn.Send(now, ic.gen.partialRequest)
	}
}

// Data implements netsim.ConnHandler.
func (ic *inactiveClient) Data(core.Time, int) {}

// Refused implements netsim.ConnHandler.
func (ic *inactiveClient) Refused(now core.Time, reason netsim.RefuseReason) {
	ic.onClosedOrRefused(now, reason)
}

// PeerClosed implements netsim.ConnHandler.
func (ic *inactiveClient) PeerClosed(now core.Time) {
	ic.onClosedOrRefused(now, netsim.RefusedReset)
}

// scheduleTrickle arms the next slow-loris byte for the given connection. The
// loop is bound to one connection instance: after a reopen, the stale loop
// notices the connection changed and dies, and onConnected starts a new one.
func (ic *inactiveClient) scheduleTrickle(now core.Time, conn *netsim.ClientConn) {
	interval := ic.gen.cfg.Workload.TrickleInterval
	if interval <= 0 {
		interval = 250 * core.Millisecond
	}
	ic.gen.k.Sim.At(now.Add(interval), func(t core.Time) {
		if ic.gen.done || ic.conn != conn || conn.State() != netsim.StateEstablished {
			return
		}
		conn.Send(t, trickleByte)
		ic.scheduleTrickle(t, conn)
	})
}

// trickleByte is the one-byte payload a slow-loris client dribbles: header
// filler that never completes the request (the parser only gives up at its
// request-size cap, which takes tens of virtual minutes at trickle pace).
var trickleByte = []byte("a")

func (ic *inactiveClient) onClosedOrRefused(now core.Time, _ netsim.RefuseReason) {
	if ic.gen.done {
		return
	}
	ic.reopens++
	// Reopen after a short pause, keeping the inactive population constant.
	ic.gen.k.Sim.At(now.Add(250*core.Millisecond), ic.open)
}

// InactiveReopens reports how many times inactive clients had to reconnect
// (server idle timeouts, refusals); exposed for tests and experiment logs.
func (g *Generator) InactiveReopens() int {
	total := 0
	for _, ic := range g.inactive {
		total += ic.reopens
	}
	return total
}
