package loadgen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/servers/httpcore"
	"repro/internal/servers/thttpd"
	"repro/internal/simkernel"
)

// testbedHTTP starts a devpoll thttpd with the given persistent-connection
// options for keep-alive client tests.
func testbedHTTP(t *testing.T, opts httpcore.Options) (*simkernel.Kernel, *netsim.Network, *thttpd.Server) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := netsim.New(k, netsim.DefaultConfig())
	cfg := thttpd.DefaultConfig()
	cfg.Backend = "devpoll"
	cfg.IdleTimeout = 10 * core.Second
	cfg.WaitTimeout = core.Second
	cfg.HTTP = opts
	s := thttpd.New(k, n, cfg)
	s.Start()
	return k, n, s
}

// TestKeepAliveClientServesAllRequests: serial keep-alive clients issue N
// requests per connection; every reply is booked individually while issued and
// completed stay connection-scoped.
func TestKeepAliveClientServesAllRequests(t *testing.T) {
	k, n, s := testbedHTTP(t, httpcore.Options{KeepAlive: true})
	cfg := DefaultConfig(400, 0)
	cfg.Connections = 50
	cfg.RequestsPerConn = 4
	cfg.SampleInterval = 200 * core.Millisecond
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))

	res := gen.Result()
	if res.Issued != 50 || res.Completed != 50 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Replies != 200 {
		t.Fatalf("replies = %d, want 200", res.Replies)
	}
	st := s.Stats()
	if st.Served != 200 || st.KeptAlive != 150 {
		t.Fatalf("server stats = %+v", st)
	}
	// One latency observation per reply.
	if res.MedianLatencyMs <= 0 {
		t.Fatalf("median latency = %v", res.MedianLatencyMs)
	}
}

// TestPipelinedClientKeepsDepthOutstanding: the pipelined client bursts its
// depth up front and refills as replies land; the server sees the same total
// request count.
func TestPipelinedClientKeepsDepthOutstanding(t *testing.T) {
	k, n, s := testbedHTTP(t, httpcore.Options{KeepAlive: true})
	cfg := DefaultConfig(400, 0)
	cfg.Connections = 30
	cfg.RequestsPerConn = 8
	cfg.PipelineDepth = 4
	cfg.SampleInterval = 200 * core.Millisecond
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))

	res := gen.Result()
	if res.Completed != 30 || res.Errors != 0 || res.Replies != 240 {
		t.Fatalf("result = %+v", res)
	}
	if st := s.Stats(); st.Served != 240 {
		t.Fatalf("server stats = %+v", st)
	}
}

// TestKeepAliveWatchdogRollsWithProgress: a connection whose total lifetime
// exceeds Timeout does not error as long as every reply arrives within one
// Timeout window of the last.
func TestKeepAliveWatchdogRollsWithProgress(t *testing.T) {
	k, n, s := testbedHTTP(t, httpcore.Options{KeepAlive: true})
	cfg := DefaultConfig(100, 0)
	cfg.Connections = 5
	cfg.RequestsPerConn = 6
	cfg.Timeout = 100 * core.Millisecond
	cfg.ActiveRTT = 60 * core.Millisecond // each serial round trip ≈60 ms; six exceed Timeout
	cfg.SampleInterval = 100 * core.Millisecond
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))

	res := gen.Result()
	if res.Completed != 5 || res.Errors != 0 || res.Replies != 30 {
		t.Fatalf("result = %+v (errors by %v)", res, res.ErrorsBy)
	}
}

// TestKeepAliveClientAgainstHTTP10Server: a server without keep-alive closes
// after the first reply; the client books that reply's absence (the close head
// is shorter than the keep-alive head it awaits) as a reset error.
func TestKeepAliveClientAgainstHTTP10Server(t *testing.T) {
	k, n, s := testbedHTTP(t, httpcore.Options{})
	cfg := DefaultConfig(200, 0)
	cfg.Connections = 20
	cfg.RequestsPerConn = 4
	cfg.SampleInterval = 200 * core.Millisecond
	gen := New(k, n, cfg)
	gen.OnDone(func(Result) { s.Stop(); k.Sim.Stop() })
	gen.Start(0)
	k.Sim.RunUntil(core.Time(30 * core.Second))

	res := gen.Result()
	if res.Errors != 20 || res.ErrorsBy[ErrReset] != 20 || res.Completed != 0 {
		t.Fatalf("result = %+v (errors by %v)", res, res.ErrorsBy)
	}
}

// TestKeepAliveLaunchRateSpreadsRequests: with N requests per connection the
// connection-launch interval stretches by N so the offered request rate is
// unchanged.
func TestKeepAliveLaunchRateSpreadsRequests(t *testing.T) {
	k, n, _ := testbedHTTP(t, httpcore.Options{KeepAlive: true})
	cfg := DefaultConfig(400, 0)
	cfg.Connections = 40
	cfg.RequestsPerConn = 4
	gen := New(k, n, cfg)
	if got := gen.connRate(); got != 100 {
		t.Fatalf("connRate = %v, want 100", got)
	}
	_ = k
}
