// Package faults is the deterministic fault-injection plane of the simulator:
// a seeded configuration of syscall faults (EINTR on blocking waits, EAGAIN on
// accept/read/write), resource exhaustion (a per-process RLIMIT_NOFILE that
// makes accept fail with EMFILE) and connection faults (mid-request and
// mid-response resets, silently vanishing peers).
//
// Every decision is a stateless splitmix64 hash of (seed, stream salt,
// sequence), exactly the scheme netsim uses for datagram loss and reordering:
// no generator state is shared between lanes, so a sharded run makes the same
// decisions as a sequential one as long as each decision is keyed by a value
// that is itself thread-invariant (a lane-local sequence counter, a
// driver-assigned connection id). The zero Config injects nothing, performs no
// hashing, and charges nothing — the existing figures are byte-identical with
// the fault plane present but disabled.
package faults

import "repro/internal/core"

// Config parameterises the fault plane. The zero value disables every fault
// class; each injection site checks its rate (or limit) before hashing, so a
// disabled class costs nothing on the hot path.
type Config struct {
	// Seed drives every fault decision; runs with equal seeds inject
	// identical faults at identical points.
	Seed uint64

	// --- syscall faults ---

	// EINTRRate is the probability that one blocking-wait episode (a
	// poll/ioctl/sigwaitinfo/epoll_wait/io_uring_enter that actually blocks)
	// is interrupted by a signal. The wait restarts with a recomputed timeout:
	// the original absolute deadline still bounds it, and readiness arriving
	// during the interrupt window is collected by the restarted call.
	EINTRRate float64
	// EINTRDelay scales how long after blocking the interrupt arrives; the
	// actual delay is deterministic per episode in [EINTRDelay/2, 3/2·EINTRDelay).
	// Zero selects 200µs.
	EINTRDelay core.Duration
	// AcceptEAGAINRate is the probability one accept(2) fails spuriously with
	// EAGAIN, charged like the real failed syscall.
	AcceptEAGAINRate float64
	// ReadEAGAINRate is the probability one read(2) on a socket with buffered
	// data fails spuriously with EAGAIN.
	ReadEAGAINRate float64
	// WriteEAGAINRate is the probability one write/writev/sendfile accepts
	// nothing and fails with EAGAIN, parking the response on write interest.
	WriteEAGAINRate float64

	// --- resource exhaustion ---

	// FDLimit is the per-process RLIMIT_NOFILE: accept(2) fails with EMFILE
	// while the process holds this many descriptors or more. Zero means
	// unlimited. Servers survive it with the reserve-descriptor accept-drain
	// trick plus paced accept backoff.
	FDLimit int
	// OverflowStormRate is the probability that one asynchronously posted
	// notification (an RT signal enqueue, a completion-ring post) lands in the
	// middle of a kernel-side burst that has already filled the queue: the
	// notification is dropped and the overflow flag raises, exactly as a
	// genuine overflow would. The mechanism must run its recovery rescan, so
	// sweeping the rate measures overflow-storm recovery under live traffic.
	// Only the notification-queue mechanisms (RT signals, the completion
	// ring) consult it.
	OverflowStormRate float64

	// --- connection faults ---

	// ResetRate is the fraction of benchmark connections that deterministically
	// reset (RST) mid-exchange: half of them mid-request (the server's next
	// read fails with ECONNRESET), half mid-response (the reset arrives while
	// response bytes are in flight, and a parked write fails with EPIPE).
	ResetRate float64
	// VanishRate is the fraction of benchmark connections whose peer silently
	// disappears after connecting: no FIN, no RST, no window updates — the
	// server only reclaims the connection through its idle sweep.
	VanishRate float64
}

// Enabled reports whether any fault class is configured.
func (c *Config) Enabled() bool {
	return c.EINTRRate > 0 || c.AcceptEAGAINRate > 0 || c.ReadEAGAINRate > 0 ||
		c.WriteEAGAINRate > 0 || c.FDLimit > 0 || c.OverflowStormRate > 0 ||
		c.ResetRate > 0 || c.VanishRate > 0
}

// Stream salts separate the decision streams so one knob's rate change cannot
// shift another knob's decisions.
const (
	saltEINTR  uint64 = 0x45494e5452 // "EINTR"
	saltAccept uint64 = 0x6163636570 // "accep"
	saltRead   uint64 = 0x72656164   // "read"
	saltWrite  uint64 = 0x7772697465 // "write"
	saltFate   uint64 = 0x66617465   // "fate"
	saltCut    uint64 = 0x637574     // "cut"
	saltDelay  uint64 = 0x64656c6179 // "delay"
	saltRetry  uint64 = 0x7265747279 // "retry"
	saltOvf    uint64 = 0x6f7666     // "ovf"
)

// splitmix64 is the mixing function behind every decision (the same finaliser
// netsim's datagram wire uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SaltString folds a name (an engine or process name) into a stream salt, so
// per-instance decision streams stay independent without numeric ids.
func SaltString(s string) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// roll returns the deterministic uniform [0,1) variate for one decision.
func (c *Config) roll(salt, seq uint64) float64 {
	return float64(splitmix64(splitmix64(c.Seed^salt)+seq)>>11) / float64(1<<53)
}

// EINTR decides whether blocking episode seq of the wait stream salted with
// salt is interrupted, and if so after how long.
func (c *Config) EINTR(salt, seq uint64) (bool, core.Duration) {
	if c.EINTRRate <= 0 || c.roll(saltEINTR^salt, seq) >= c.EINTRRate {
		return false, 0
	}
	base := c.EINTRDelay
	if base <= 0 {
		base = 200 * core.Microsecond
	}
	// Deterministic delay in [base/2, 3/2·base): soon enough to interrupt the
	// episode it was rolled for under benchmark load, spread enough that
	// storms do not synchronise.
	u := c.roll(saltDelay^salt, seq)
	return true, base/2 + core.Duration(u*float64(base))
}

// AcceptEAGAIN decides whether accept attempt seq on the stream salted with
// salt fails spuriously.
func (c *Config) AcceptEAGAIN(salt, seq uint64) bool {
	return c.AcceptEAGAINRate > 0 && c.roll(saltAccept^salt, seq) < c.AcceptEAGAINRate
}

// ReadEAGAIN decides whether read attempt seq fails spuriously.
func (c *Config) ReadEAGAIN(salt, seq uint64) bool {
	return c.ReadEAGAINRate > 0 && c.roll(saltRead^salt, seq) < c.ReadEAGAINRate
}

// OverflowStorm decides whether notification post seq on the stream salted
// with salt is swallowed by an injected queue-overflow episode.
func (c *Config) OverflowStorm(salt, seq uint64) bool {
	return c.OverflowStormRate > 0 && c.roll(saltOvf^salt, seq) < c.OverflowStormRate
}

// WriteEAGAIN decides whether write attempt seq fails spuriously.
func (c *Config) WriteEAGAIN(salt, seq uint64) bool {
	return c.WriteEAGAINRate > 0 && c.roll(saltWrite^salt, seq) < c.WriteEAGAINRate
}

// ConnFate is a benchmark connection's injected destiny, fixed at connect time
// from its driver-assigned id.
type ConnFate int

// Connection fates.
const (
	// FateNone: the connection behaves normally.
	FateNone ConnFate = iota
	// FateResetRequest: the client resets the connection mid-request — after
	// its first bytes are sent but before the exchange completes. The server's
	// next read on the connection fails with ECONNRESET.
	FateResetRequest
	// FateResetResponse: the client resets mid-response, once part of the
	// response has arrived; a response still draining fails with EPIPE.
	FateResetResponse
	// FateVanish: the peer silently disappears after connecting — no FIN, no
	// RST, no reads. Only the server's idle sweep reclaims the connection.
	FateVanish
)

// String names the fate for traces and tests.
func (f ConnFate) String() string {
	switch f {
	case FateResetRequest:
		return "reset-request"
	case FateResetResponse:
		return "reset-response"
	case FateVanish:
		return "vanish"
	default:
		return "none"
	}
}

// FateOf returns the injected fate of connection connID. Fate decisions hash
// the driver-assigned connection id, which is thread-count invariant, so a
// sharded run dooms exactly the connections a sequential run dooms.
func (c *Config) FateOf(connID int64) ConnFate {
	if c.ResetRate <= 0 && c.VanishRate <= 0 {
		return FateNone
	}
	u := c.roll(saltFate, uint64(connID))
	if u < c.ResetRate {
		// Alternate the reset flavour deterministically within the doomed set.
		if splitmix64(c.Seed^saltCut^uint64(connID))&1 == 0 {
			return FateResetRequest
		}
		return FateResetResponse
	}
	if u < c.ResetRate+c.VanishRate {
		return FateVanish
	}
	return FateNone
}

// CutFraction returns the deterministic fraction (in [0.1, 0.9)) of the
// expected transfer after which a doomed connection pulls its trigger: how much
// of the request a mid-request reset lets through, how much of the response a
// mid-response reset waits for.
func (c *Config) CutFraction(connID int64) float64 {
	return 0.1 + 0.8*c.roll(saltCut, uint64(connID))
}

// RetryJitter returns the deterministic jitter factor (in [0.5, 1.5)) applied
// to retry attempt number attempt of connection connID by the load generator's
// capped exponential backoff.
func RetryJitter(seed uint64, connID int64, attempt int) float64 {
	u := float64(splitmix64(splitmix64(seed^saltRetry)+uint64(connID)*31+uint64(attempt))>>11) / float64(1<<53)
	return 0.5 + u
}
