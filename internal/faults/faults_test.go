package faults

import (
	"testing"

	"repro/internal/core"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	for seq := uint64(0); seq < 100; seq++ {
		if fire, _ := c.EINTR(1, seq); fire {
			t.Fatal("zero config fired EINTR")
		}
		if c.AcceptEAGAIN(1, seq) || c.ReadEAGAIN(1, seq) || c.WriteEAGAIN(1, seq) || c.OverflowStorm(1, seq) {
			t.Fatal("zero config fired a syscall fault")
		}
		if c.FateOf(int64(seq)) != FateNone {
			t.Fatal("zero config doomed a connection")
		}
	}
}

func TestEnabledPerKnob(t *testing.T) {
	knobs := []Config{
		{EINTRRate: 0.1},
		{AcceptEAGAINRate: 0.1},
		{ReadEAGAINRate: 0.1},
		{WriteEAGAINRate: 0.1},
		{FDLimit: 100},
		{OverflowStormRate: 0.1},
		{ResetRate: 0.1},
		{VanishRate: 0.1},
	}
	for i, c := range knobs {
		if !c.Enabled() {
			t.Errorf("knob %d not reported by Enabled: %+v", i, c)
		}
	}
	if (&Config{Seed: 99}).Enabled() {
		t.Error("a bare seed must not enable the plane")
	}
}

func TestDecisionsAreDeterministicAndSeedSensitive(t *testing.T) {
	a := Config{Seed: 1, EINTRRate: 0.5, ResetRate: 0.3, OverflowStormRate: 0.5}
	b := Config{Seed: 1, EINTRRate: 0.5, ResetRate: 0.3, OverflowStormRate: 0.5}
	other := Config{Seed: 2, EINTRRate: 0.5, ResetRate: 0.3, OverflowStormRate: 0.5}
	sameEINTR, sameStorm, sameFate := true, true, true
	for seq := uint64(0); seq < 512; seq++ {
		af, ad := a.EINTR(7, seq)
		bf, bd := b.EINTR(7, seq)
		if af != bf || ad != bd {
			t.Fatalf("seq %d: equal seeds diverged on EINTR", seq)
		}
		if a.OverflowStorm(7, seq) != b.OverflowStorm(7, seq) {
			t.Fatalf("seq %d: equal seeds diverged on OverflowStorm", seq)
		}
		if a.FateOf(int64(seq)) != b.FateOf(int64(seq)) {
			t.Fatalf("conn %d: equal seeds diverged on FateOf", seq)
		}
		of, _ := other.EINTR(7, seq)
		sameEINTR = sameEINTR && af == of
		sameStorm = sameStorm && a.OverflowStorm(7, seq) == other.OverflowStorm(7, seq)
		sameFate = sameFate && a.FateOf(int64(seq)) == other.FateOf(int64(seq))
	}
	if sameEINTR || sameStorm || sameFate {
		t.Fatalf("different seeds never diverged: eintr=%v storm=%v fate=%v", sameEINTR, sameStorm, sameFate)
	}
}

func TestRatesRoughlyHonoured(t *testing.T) {
	c := Config{Seed: 9, EINTRRate: 0.25, OverflowStormRate: 0.5, ResetRate: 0.2, VanishRate: 0.1}
	const n = 20000
	eintr, storm, resets, vanishes := 0, 0, 0, 0
	for seq := uint64(0); seq < n; seq++ {
		if fire, _ := c.EINTR(3, seq); fire {
			eintr++
		}
		if c.OverflowStorm(3, seq) {
			storm++
		}
		switch c.FateOf(int64(seq)) {
		case FateResetRequest, FateResetResponse:
			resets++
		case FateVanish:
			vanishes++
		}
	}
	within := func(got int, rate float64) bool {
		want := rate * n
		return float64(got) > 0.9*want && float64(got) < 1.1*want
	}
	if !within(eintr, 0.25) || !within(storm, 0.5) || !within(resets, 0.2) || !within(vanishes, 0.1) {
		t.Fatalf("rates off: eintr=%d storm=%d resets=%d vanishes=%d of %d", eintr, storm, resets, vanishes, n)
	}
}

func TestEINTRDelayWithinDocumentedBand(t *testing.T) {
	c := Config{Seed: 4, EINTRRate: 1, EINTRDelay: core.Millisecond}
	for seq := uint64(0); seq < 1000; seq++ {
		fire, d := c.EINTR(11, seq)
		if !fire {
			t.Fatalf("seq %d: rate 1 did not fire", seq)
		}
		if d < core.Millisecond/2 || d >= 3*core.Millisecond/2 {
			t.Fatalf("seq %d: delay %v outside [base/2, 3/2·base)", seq, d)
		}
	}
	// The zero delay defaults to 200µs.
	c.EINTRDelay = 0
	if _, d := c.EINTR(11, 0); d < 100*core.Microsecond || d >= 300*core.Microsecond {
		t.Fatalf("default delay %v outside the 200µs band", d)
	}
}

func TestResetFlavoursAlternateAndCutFractionBounded(t *testing.T) {
	c := Config{Seed: 6, ResetRate: 1}
	req, resp := 0, 0
	for id := int64(0); id < 1000; id++ {
		switch c.FateOf(id) {
		case FateResetRequest:
			req++
		case FateResetResponse:
			resp++
		default:
			t.Fatalf("conn %d: rate 1 left fate %v", id, c.FateOf(id))
		}
		if f := c.CutFraction(id); f < 0.1 || f >= 0.9 {
			t.Fatalf("conn %d: cut fraction %v outside [0.1, 0.9)", id, f)
		}
	}
	if req < 400 || resp < 400 {
		t.Fatalf("reset flavours unbalanced: request=%d response=%d", req, resp)
	}
}

func TestRetryJitterBandAndDeterminism(t *testing.T) {
	for conn := int64(0); conn < 100; conn++ {
		for attempt := 1; attempt <= 4; attempt++ {
			j := RetryJitter(1, conn, attempt)
			if j < 0.5 || j >= 1.5 {
				t.Fatalf("jitter %v outside [0.5, 1.5)", j)
			}
			if j != RetryJitter(1, conn, attempt) {
				t.Fatal("jitter not deterministic")
			}
		}
	}
	if RetryJitter(1, 1, 1) == RetryJitter(2, 1, 1) &&
		RetryJitter(1, 2, 1) == RetryJitter(2, 2, 1) &&
		RetryJitter(1, 3, 1) == RetryJitter(2, 3, 1) {
		t.Fatal("jitter ignores the seed")
	}
}

func TestSaltStringSeparatesStreams(t *testing.T) {
	if SaltString("server-a") == SaltString("server-b") {
		t.Fatal("distinct names share a salt")
	}
	c := Config{Seed: 1, OverflowStormRate: 0.5}
	same := true
	for seq := uint64(0); seq < 256; seq++ {
		same = same && c.OverflowStorm(SaltString("a"), seq) == c.OverflowStorm(SaltString("b"), seq)
	}
	if same {
		t.Fatal("per-instance streams are identical")
	}
}

func TestFateStrings(t *testing.T) {
	for fate, want := range map[ConnFate]string{
		FateNone:          "none",
		FateResetRequest:  "reset-request",
		FateResetResponse: "reset-response",
		FateVanish:        "vanish",
	} {
		if fate.String() != want {
			t.Fatalf("fate %d = %q, want %q", fate, fate.String(), want)
		}
	}
}
