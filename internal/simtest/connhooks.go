package simtest

import (
	"repro/internal/core"
	"repro/internal/netsim"
)

// ConnHooks adapts ad-hoc closures to netsim.ConnHandler for tests and
// examples, the successor of the deleted netsim.Handlers shim: populate the
// callbacks you care about and pass a pointer to ConnectWith. Any hook may be
// nil. Allocation-sensitive callers (the load generator) implement
// ConnHandler directly instead.
type ConnHooks struct {
	OnConnected  func(now core.Time)
	OnRefused    func(now core.Time, reason netsim.RefuseReason)
	OnData       func(now core.Time, n int)
	OnPeerClosed func(now core.Time)
}

// Connected implements netsim.ConnHandler.
func (h *ConnHooks) Connected(now core.Time) {
	if h.OnConnected != nil {
		h.OnConnected(now)
	}
}

// Refused implements netsim.ConnHandler.
func (h *ConnHooks) Refused(now core.Time, reason netsim.RefuseReason) {
	if h.OnRefused != nil {
		h.OnRefused(now, reason)
	}
}

// Data implements netsim.ConnHandler.
func (h *ConnHooks) Data(now core.Time, n int) {
	if h.OnData != nil {
		h.OnData(now, n)
	}
}

// PeerClosed implements netsim.ConnHandler.
func (h *ConnHooks) PeerClosed(now core.Time) {
	if h.OnPeerClosed != nil {
		h.OnPeerClosed(now)
	}
}

// DgramHooks is the datagram counterpart of ConnHooks: closures adapted to
// netsim.DgramHandler.
type DgramHooks struct {
	OnStarted  func(now core.Time)
	OnDatagram func(now core.Time, from netsim.Addr, size int)
}

// Started implements netsim.DgramHandler.
func (h *DgramHooks) Started(now core.Time) {
	if h.OnStarted != nil {
		h.OnStarted(now)
	}
}

// Datagram implements netsim.DgramHandler.
func (h *DgramHooks) Datagram(now core.Time, from netsim.Addr, size int) {
	if h.OnDatagram != nil {
		h.OnDatagram(now, from, size)
	}
}
