// Package simtest provides small helpers shared by the unit tests of the
// event-notification mechanisms: a controllable fake file (socket stand-in)
// and a pre-wired kernel/process pair.
package simtest

import (
	"repro/internal/core"
	"repro/internal/simkernel"
)

// FakeFile is a minimal simkernel.File whose readiness is set explicitly by
// the test, standing in for a socket driver.
type FakeFile struct {
	ReadyMask core.EventMask
	notify    simkernel.Notifier
	IsClosed  bool
	Polls     int
}

// Poll implements simkernel.File and counts driver poll callbacks.
func (f *FakeFile) Poll() core.EventMask {
	f.Polls++
	return f.ReadyMask
}

// SetNotifier implements simkernel.File.
func (f *FakeFile) SetNotifier(n simkernel.Notifier) { f.notify = n }

// Close implements simkernel.File.
func (f *FakeFile) Close(now core.Time) { f.IsClosed = true }

// SetReady changes the readiness mask and fires the driver notification, as a
// real device driver would on packet arrival.
func (f *FakeFile) SetReady(now core.Time, mask core.EventMask) {
	f.ReadyMask = mask
	if f.notify != nil {
		f.notify.Notify(now, mask)
	}
}

// Env is a ready-to-use kernel and process for mechanism tests.
type Env struct {
	K *simkernel.Kernel
	P *simkernel.Proc
}

// NewEnv builds a kernel (default cost model) and one process.
func NewEnv() *Env {
	k := simkernel.NewKernel(nil)
	return &Env{K: k, P: k.NewProc("test")}
}

// NewFD installs a fresh FakeFile and returns both.
func (e *Env) NewFD(ready core.EventMask) (*simkernel.FD, *FakeFile) {
	f := &FakeFile{ReadyMask: ready}
	fd := e.P.Install(f)
	return fd, f
}

// Run drains the simulator.
func (e *Env) Run() { e.K.Sim.Run() }

// Collector gathers Wait results for assertions.
type Collector struct {
	Calls  int
	Events []core.Event
	At     core.Time
}

// Handler returns a Wait handler that records into the collector.
func (c *Collector) Handler() func(events []core.Event, now core.Time) {
	return func(events []core.Event, now core.Time) {
		c.Calls++
		c.Events = append([]core.Event(nil), events...)
		c.At = now
	}
}

// FDNums extracts the descriptor numbers from the collected events.
func (c *Collector) FDNums() []int {
	out := make([]int, 0, len(c.Events))
	for _, e := range c.Events {
		out = append(out, e.FD)
	}
	return out
}
