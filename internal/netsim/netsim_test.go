package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// testbed builds a kernel, network, server process and socket API with a
// listener already installed.
func testbed(t *testing.T, cfg Config) (*simkernel.Kernel, *Network, *simkernel.Proc, *SockAPI, *simkernel.FD, *Listener) {
	t.Helper()
	k := simkernel.NewKernel(nil)
	n := New(k, cfg)
	p := k.NewProc("server")
	api := NewSockAPI(k, p, n)
	var lfd *simkernel.FD
	var l *Listener
	p.Batch(0, func() { lfd, l = api.Listen() }, nil)
	k.Sim.Run()
	return k, n, p, api, lfd, l
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LinkBandwidthBps != 100e6 || cfg.PortSpace != 60000 || cfg.TimeWait != 60*core.Second {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.String() == "" {
		t.Fatal("empty config string")
	}
}

func TestNewAppliesDefaults(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := New(k, Config{})
	if n.Cfg.LinkBandwidthBps <= 0 || n.Cfg.DefaultRTT <= 0 || n.Cfg.ListenBacklog <= 0 || n.Cfg.PortSpace <= 0 {
		t.Fatalf("defaults not applied: %+v", n.Cfg)
	}
}

func TestTransmitDelay(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := New(k, DefaultConfig())
	// 6 KB at 100 Mbit/s is 6*1024*8/100e6 s = 491.52 µs.
	d := n.TransmitDelay(6 * 1024)
	seconds := float64(6*1024*8) / 100e6
	want := core.Duration(seconds * float64(core.Second))
	if d != want {
		t.Fatalf("TransmitDelay = %v, want %v", d, want)
	}
	if n.TransmitDelay(0) != 0 || n.TransmitDelay(-1) != 0 {
		t.Fatal("non-positive sizes must have zero delay")
	}
}

func TestConnectAcceptServeClose(t *testing.T) {
	k, n, p, api, lfd, l := testbed(t, DefaultConfig())

	var connectedAt, dataAt, closedAt core.Time
	var gotBytes int
	cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnConnected:  func(now core.Time) { connectedAt = now },
		OnData:       func(now core.Time, b int) { dataAt = now; gotBytes += b },
		OnPeerClosed: func(now core.Time) { closedAt = now },
	})
	k.Sim.Run()

	if cc.State() != StateEstablished {
		t.Fatalf("state = %v", cc.State())
	}
	if connectedAt <= 0 {
		t.Fatal("OnConnected never fired")
	}
	if l.Backlog() != 1 {
		t.Fatalf("backlog = %d", l.Backlog())
	}
	if lfd.Poll() != core.POLLIN {
		t.Fatalf("listener poll = %v", lfd.Poll())
	}

	// Client sends a 100-byte request.
	cc.Send(k.Now(), make([]byte, 100))
	k.Sim.Run()

	// Server accepts, reads, writes 6 KB, closes — all in one batch.
	var conn *ServerConn
	var fd *simkernel.FD
	p.Batch(k.Now(), func() {
		var err error
		fd, conn, err = api.Accept(lfd)
		if err != nil {
			t.Fatal("Accept failed")
		}
		data, eof := api.Read(fd, 0)
		if len(data) != 100 || eof {
			t.Fatalf("Read = %d eof=%v", len(data), eof)
		}
		api.Write(fd, 6*1024)
		api.Close(fd)
	}, nil)
	k.Sim.Run()

	if !conn.Accepted() {
		t.Fatal("conn not marked accepted")
	}
	if gotBytes != 6*1024 {
		t.Fatalf("client received %d bytes", gotBytes)
	}
	if dataAt <= 0 || closedAt < dataAt {
		t.Fatalf("delivery ordering: data at %v, close at %v", dataAt, closedAt)
	}
	if cc.State() != StateClosed {
		t.Fatalf("final state = %v", cc.State())
	}

	st := n.Stats()
	if st.ConnAttempts != 1 || st.ConnEstablished != 1 || st.Accepted != 1 || st.ServerCloses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesToServer != 100 || st.BytesToClient != 6*1024 {
		t.Fatalf("byte stats = %+v", st)
	}
	if p.NumFDs() != 1 { // only the listener remains
		t.Fatalf("NumFDs = %d", p.NumFDs())
	}
}

func TestServerConnReadinessTransitions(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
	cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{})
	k.Sim.Run()

	var fd *simkernel.FD
	var conn *ServerConn
	p.Batch(k.Now(), func() {
		var err error
		fd, conn, err = api.Accept(lfd)
		if err != nil {
			t.Fatal("accept failed")
		}
	}, nil)
	k.Sim.Run()

	// No data yet: connection is writable but not readable.
	if m := fd.Poll(); m.Any(core.POLLIN) || !m.Has(core.POLLOUT) {
		t.Fatalf("initial poll = %v", m)
	}

	cc.Send(k.Now(), []byte("GET /index.html HTTP/1.0\r\nHost: citi.umich.edu\r\n\r\n")[:50])
	k.Sim.Run()
	if m := fd.Poll(); !m.Has(core.POLLIN) {
		t.Fatalf("poll after data = %v", m)
	}
	if conn.Buffered() != 50 {
		t.Fatalf("Buffered = %d", conn.Buffered())
	}

	// Partial read drains half and returns the actual request prefix.
	p.Batch(k.Now(), func() {
		data, eof := api.Read(fd, 20)
		if len(data) != 20 || eof {
			t.Fatalf("partial read = %d eof=%v", len(data), eof)
		}
		if string(data[:4]) != "GET " {
			t.Fatalf("payload corrupted: %q", data)
		}
	}, nil)
	k.Sim.Run()
	if conn.Buffered() != 30 {
		t.Fatalf("Buffered after partial read = %d", conn.Buffered())
	}

	// Drain fully; then a read on the empty buffer reports no data, no EOF.
	p.Batch(k.Now(), func() {
		if data, _ := api.Read(fd, 0); len(data) != 30 {
			t.Fatalf("drain read = %d", len(data))
		}
		if data, eof := api.Read(fd, 0); len(data) != 0 || eof {
			t.Fatalf("empty read = %d eof=%v", len(data), eof)
		}
	}, nil)
	k.Sim.Run()

	// Client closes: POLLHUP is reported, read sees EOF.
	cc.Close(k.Now())
	k.Sim.Run()
	if !conn.PeerClosed() {
		t.Fatal("PeerClosed = false")
	}
	if m := fd.Poll(); !m.Has(core.POLLIN | core.POLLHUP) {
		t.Fatalf("poll after FIN = %v", m)
	}
	p.Batch(k.Now(), func() {
		if data, eof := api.Read(fd, 0); len(data) != 0 || !eof {
			t.Fatalf("EOF read = %d eof=%v", len(data), eof)
		}
	}, nil)
	k.Sim.Run()
}

func TestBacklogOverflowRefusesConnections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ListenBacklog = 2
	k, n, _, _, _, l := testbed(t, cfg)

	refused := 0
	reasons := map[RefuseReason]int{}
	connected := 0
	for i := 0; i < 5; i++ {
		n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
			OnConnected: func(core.Time) { connected++ },
			OnRefused:   func(_ core.Time, r RefuseReason) { refused++; reasons[r]++ },
		})
	}
	k.Sim.Run()

	if connected != 2 || refused != 3 {
		t.Fatalf("connected=%d refused=%d", connected, refused)
	}
	if reasons[RefusedBacklog] != 3 {
		t.Fatalf("reasons = %v", reasons)
	}
	if l.Overflows != 3 {
		t.Fatalf("listener overflows = %d", l.Overflows)
	}
	st := n.Stats()
	if st.ConnRefused != 3 || st.ConnEstablished != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConnectWithoutListenerRefused(t *testing.T) {
	k := simkernel.NewKernel(nil)
	n := New(k, DefaultConfig())
	var reason RefuseReason = -1
	n.ConnectWith(0, ConnectOptions{}, &testHooks{OnRefused: func(_ core.Time, r RefuseReason) { reason = r }})
	k.Sim.Run()
	if reason != RefusedClosed {
		t.Fatalf("reason = %v", reason)
	}
}

func TestPortExhaustionAndTimeWait(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PortSpace = 2
	cfg.TimeWait = 10 * core.Second
	k, n, p, api, lfd, _ := testbed(t, cfg)

	var refusedPorts int
	mk := func() *ClientConn {
		return n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
			OnRefused: func(_ core.Time, r RefuseReason) {
				if r == RefusedPorts {
					refusedPorts++
				}
			},
		})
	}
	c1 := mk()
	c2 := mk()
	mk() // third must fail locally: no ports
	k.Sim.Run()
	if refusedPorts != 1 {
		t.Fatalf("refusedPorts = %d", refusedPorts)
	}
	if got := n.PortsAvailable(k.Now()); got != 0 {
		t.Fatalf("PortsAvailable = %d", got)
	}

	// Serve and close both connections; ports go to TIME-WAIT, still unusable.
	p.Batch(k.Now(), func() {
		for {
			fd, _, err := api.Accept(lfd)
			if err != nil {
				break
			}
			api.Close(fd)
		}
	}, nil)
	k.Sim.Run()
	_ = c1
	_ = c2
	if tw := n.PortsInTimeWait(k.Now()); tw != 2 {
		t.Fatalf("PortsInTimeWait = %d", tw)
	}
	if got := n.PortsAvailable(k.Now()); got != 0 {
		t.Fatalf("PortsAvailable during TIME-WAIT = %d", got)
	}

	// After TIME-WAIT expires the ports are reusable.
	k.Sim.After(cfg.TimeWait+core.Second, func(core.Time) {})
	k.Sim.Run()
	if got := n.PortsAvailable(k.Now()); got != 2 {
		t.Fatalf("PortsAvailable after TIME-WAIT = %d", got)
	}
}

func TestHighLatencyConnectionUsesItsRTT(t *testing.T) {
	k, n, _, _, _, _ := testbed(t, DefaultConfig())
	var fast, slow core.Time
	n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{OnConnected: func(now core.Time) { fast = now }})
	n.ConnectWith(k.Now(), ConnectOptions{RTT: 100 * core.Millisecond}, &testHooks{OnConnected: func(now core.Time) { slow = now }})
	k.Sim.Run()
	if fast <= 0 || slow <= 0 {
		t.Fatal("handshakes incomplete")
	}
	if slow < core.Time(100*core.Millisecond) {
		t.Fatalf("high-latency handshake completed too early: %v", slow)
	}
	if fast >= slow {
		t.Fatalf("LAN handshake (%v) should beat modem handshake (%v)", fast, slow)
	}
}

func TestAcceptOnEmptyQueueAndWrongFD(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
	p.Batch(k.Now(), func() {
		if _, _, err := api.Accept(lfd); err == nil {
			t.Error("accept on empty queue should fail")
		}
	}, nil)
	k.Sim.Run()

	// Accept on a non-listener descriptor fails gracefully.
	cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{})
	k.Sim.Run()
	_ = cc
	var connFD *simkernel.FD
	p.Batch(k.Now(), func() {
		fd, _, err := api.Accept(lfd)
		if err != nil {
			t.Fatal("accept failed")
		}
		connFD = fd
		if _, _, err := api.Accept(fd); err == nil {
			t.Error("accept on a connection descriptor should fail")
		}
	}, nil)
	k.Sim.Run()

	// Read on the listener descriptor reports EOF-ish failure, not a crash.
	p.Batch(k.Now(), func() {
		if data, eof := api.Read(lfd, 0); len(data) != 0 || !eof {
			t.Errorf("read on listener = %d eof=%v", len(data), eof)
		}
		// Write on the listener is ignored.
		api.Write(lfd, 10)
		_ = connFD
	}, nil)
	k.Sim.Run()
}

func TestMaxServerFDsResetsConnection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxServerFDs = 1 // only the listener fits
	k, n, p, api, lfd, _ := testbed(t, cfg)

	var reset bool
	n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnRefused: func(_ core.Time, r RefuseReason) {
			if r == RefusedReset {
				reset = true
			}
		},
	})
	k.Sim.Run()
	p.Batch(k.Now(), func() {
		if _, _, err := api.Accept(lfd); err == nil {
			t.Error("accept should fail at the descriptor limit")
		}
	}, nil)
	k.Sim.Run()
	if !reset {
		t.Fatal("client never saw the reset")
	}
	if api.EMFILECount != 1 {
		t.Fatalf("EMFILECount = %d", api.EMFILECount)
	}
}

func TestListenerCloseResetsPending(t *testing.T) {
	k, n, p, _, lfd, _ := testbed(t, DefaultConfig())
	var refused RefuseReason = -1
	cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnRefused: func(_ core.Time, r RefuseReason) { refused = r },
	})
	k.Sim.Run()
	if cc.State() != StateEstablished {
		t.Fatalf("state = %v", cc.State())
	}
	p.Batch(k.Now(), func() {
		_ = p.CloseFD(k.Now(), lfd.Num)
	}, nil)
	k.Sim.Run()
	if refused != RefusedReset {
		t.Fatalf("refused = %v", refused)
	}
	if cc.State() != StateClosed {
		t.Fatalf("state after reset = %v", cc.State())
	}
}

func TestClientCloseDeliversFINToServer(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
	cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{})
	k.Sim.Run()
	var conn *ServerConn
	p.Batch(k.Now(), func() {
		_, c, err := api.Accept(lfd)
		if err != nil {
			t.Fatal("accept failed")
		}
		conn = c
	}, nil)
	k.Sim.Run()

	cc.Close(k.Now())
	k.Sim.Run()
	if !conn.PeerClosed() {
		t.Fatal("server never saw FIN")
	}
	if n.Stats().ClientCloses != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
	// Double close is idempotent.
	cc.Close(k.Now())
	k.Sim.Run()
	if n.Stats().ClientCloses != 1 {
		t.Fatalf("double close counted twice: %+v", n.Stats())
	}
}

func TestWriteToClosedOrHungUpConnectionIsIgnored(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
	received := 0
	cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnData: func(_ core.Time, b int) { received += b },
	})
	k.Sim.Run()
	var fd *simkernel.FD
	p.Batch(k.Now(), func() {
		f, _, err := api.Accept(lfd)
		if err != nil {
			t.Fatal("accept failed")
		}
		fd = f
		api.Close(fd)
		// Writing after close is a no-op.
		api.Write(fd, 1024)
	}, nil)
	k.Sim.Run()
	if received != 0 {
		t.Fatalf("client received %d bytes from a closed connection", received)
	}
	_ = cc
}

func TestRefuseReasonStrings(t *testing.T) {
	for _, r := range []RefuseReason{RefusedBacklog, RefusedClosed, RefusedPorts, RefusedReset, RefuseReason(99)} {
		if r.String() == "" {
			t.Fatalf("empty string for reason %d", int(r))
		}
	}
}

// Property: connections are conserved — every attempt ends up established or
// refused (port failures included), and accepted never exceeds established.
func TestConnectionConservationProperty(t *testing.T) {
	f := func(nconns uint8, backlog uint8, ports uint8) bool {
		cfg := DefaultConfig()
		cfg.ListenBacklog = int(backlog%8) + 1
		cfg.PortSpace = int(ports%16) + 1
		cfg.TimeWait = core.Second
		k := simkernel.NewKernel(nil)
		n := New(k, cfg)
		p := k.NewProc("server")
		api := NewSockAPI(k, p, n)
		var lfd *simkernel.FD
		p.Batch(0, func() { lfd, _ = api.Listen() }, nil)
		k.Sim.Run()

		total := int(nconns%40) + 1
		outcomes := 0
		for i := 0; i < total; i++ {
			n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
				OnConnected: func(core.Time) { outcomes++ },
				OnRefused:   func(core.Time, RefuseReason) { outcomes++ },
			})
		}
		k.Sim.Run()
		// Accept everything pending.
		p.Batch(k.Now(), func() {
			for {
				if _, _, err := api.Accept(lfd); err != nil {
					break
				}
			}
		}, nil)
		k.Sim.Run()

		st := n.Stats()
		if outcomes != total {
			return false
		}
		if st.ConnAttempts != int64(total) {
			return false
		}
		if st.ConnEstablished+st.ConnRefused+st.ConnPortFail != int64(total) {
			return false
		}
		return st.Accepted <= st.ConnEstablished
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A read on a descriptor with a registered buffer (compio's fixed-buffer
// reads) costs exactly Cost.SockReadCopy less than a normal read — the
// modeled user-space copy is the only component skipped.
func TestRegisteredBufferReadSkipsExactlyTheCopyCharge(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())

	readCharge := func(register bool) core.Duration {
		cc := n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{})
		k.Sim.Run()
		cc.Send(k.Now(), make([]byte, 100))
		k.Sim.Run()
		var charge core.Duration
		p.Batch(k.Now(), func() {
			fd, _, err := api.Accept(lfd)
			if err != nil {
				t.Fatal("Accept failed")
			}
			fd.BufferRegistered = register
			before := p.TotalCharged
			data, _ := api.Read(fd, 0)
			if len(data) != 100 {
				t.Fatalf("Read = %d bytes", len(data))
			}
			charge = p.TotalCharged - before
			api.Close(fd)
		}, nil)
		k.Sim.Run()
		return charge
	}

	plain := readCharge(false)
	registered := readCharge(true)
	if want := k.Cost.SyscallEntry + k.Cost.SockRead; plain != want {
		t.Fatalf("plain read charged %v, want %v", plain, want)
	}
	if got, want := plain-registered, k.Cost.SockReadCopy; got != want {
		t.Fatalf("registered-buffer discount = %v, want exactly %v", got, want)
	}
}
