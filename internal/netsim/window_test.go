package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// accept drains one connection from the listener inside a server batch.
func accept(t *testing.T, k *simkernel.Kernel, p *simkernel.Proc, api *SockAPI, lfd *simkernel.FD) (*simkernel.FD, *ServerConn) {
	t.Helper()
	var fd *simkernel.FD
	var conn *ServerConn
	p.Batch(k.Now(), func() {
		var err error
		fd, conn, err = api.Accept(lfd)
		if err != nil {
			t.Fatal("Accept failed")
		}
	}, nil)
	k.Sim.Run()
	return fd, conn
}

// TestStalledReaderJamsResponse: a client that advertises a small window and
// never drains it accepts only the first window's worth of response bytes;
// the server's connection loses POLLOUT and further writes return zero.
func TestStalledReaderJamsResponse(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())

	var got int
	n.ConnectWith(k.Now(), ConnectOptions{RecvWindow: 512, StallReads: true}, &testHooks{
		OnData: func(_ core.Time, b int) { got += b },
	})
	k.Sim.Run()
	fd, conn := accept(t, k, p, api, lfd)

	if conn.SendWindowAvail() != 512 {
		t.Fatalf("SendWindowAvail = %d, want 512", conn.SendWindowAvail())
	}
	var first, second int
	p.Batch(k.Now(), func() {
		first = api.Write(fd, 6*1024)
		second = api.Write(fd, 100)
	}, nil)
	k.Sim.Run()

	if first != 512 || second != 0 {
		t.Fatalf("writes accepted %d then %d bytes, want 512 then 0", first, second)
	}
	if conn.SendWindowAvail() != 0 {
		t.Fatalf("window not exhausted: %d", conn.SendWindowAvail())
	}
	if conn.Poll()&core.POLLOUT != 0 {
		t.Fatal("POLLOUT reported while the window is closed")
	}
	if got != 512 {
		t.Fatalf("client received %d bytes, want 512", got)
	}
}

// TestDrainingClientReopensWindow: with a finite window and a draining
// client, a jammed write resumes after the window update arrives: POLLOUT
// returns, the notifier fires, and the response can finish.
func TestDrainingClientReopensWindow(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())

	var got int
	n.ConnectWith(k.Now(), ConnectOptions{RecvWindow: 1024}, &testHooks{
		OnData: func(_ core.Time, b int) { got += b },
	})
	k.Sim.Run()
	fd, conn := accept(t, k, p, api, lfd)

	var pollout bool
	conn.SetNotifier(simkernel.NotifierFunc(func(_ core.Time, mask core.EventMask) {
		if mask&core.POLLOUT != 0 {
			pollout = true
		}
	}))

	var first int
	p.Batch(k.Now(), func() { first = api.Write(fd, 2048) }, nil)
	k.Sim.Run()
	if first != 1024 {
		t.Fatalf("first write accepted %d bytes, want 1024", first)
	}
	// The draining client consumed the batch; its window update has arrived
	// by the time the simulation quiesces.
	if !pollout {
		t.Fatal("no POLLOUT notification after window update")
	}
	if conn.SendWindowAvail() != 1024 {
		t.Fatalf("window did not reopen: %d", conn.SendWindowAvail())
	}

	var rest int
	p.Batch(k.Now(), func() { rest = api.Write(fd, 2048-first) }, nil)
	k.Sim.Run()
	if rest != 1024 {
		t.Fatalf("resumed write accepted %d bytes, want 1024", rest)
	}
	if got != 2048 {
		t.Fatalf("client received %d bytes, want 2048", got)
	}
}

// TestUnlimitedWindowUnchanged pins the paper's workload: without a window
// the write path accepts everything in one call and POLLOUT never drops.
func TestUnlimitedWindowUnchanged(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
	var got int
	n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnData: func(_ core.Time, b int) { got += b },
	})
	k.Sim.Run()
	fd, conn := accept(t, k, p, api, lfd)
	if conn.SendWindowAvail() != -1 {
		t.Fatalf("SendWindowAvail = %d, want -1 (unlimited)", conn.SendWindowAvail())
	}
	var wrote int
	p.Batch(k.Now(), func() { wrote = api.Write(fd, 64*1024) }, nil)
	k.Sim.Run()
	if wrote != 64*1024 || got != 64*1024 {
		t.Fatalf("wrote %d, client got %d, want 64K both", wrote, got)
	}
	if conn.Poll()&core.POLLOUT == 0 {
		t.Fatal("POLLOUT missing on unlimited-window connection")
	}
}

// TestWritevChargesExactlyOneCombinedWrite pins the vectored write to the
// historical single-write charge: same CPU cost, same delivered bytes.
func TestWritevChargesExactlyOneCombinedWrite(t *testing.T) {
	run := func(vectored bool) (core.Duration, int) {
		k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
		var got int
		n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
			OnData: func(_ core.Time, b int) { got += b },
		})
		k.Sim.Run()
		fd, _ := accept(t, k, p, api, lfd)
		before := p.TotalCharged
		p.Batch(k.Now(), func() {
			if vectored {
				api.Writev(fd, 155, 6144)
			} else {
				api.Write(fd, 155+6144)
			}
		}, nil)
		k.Sim.Run()
		return p.TotalCharged - before, got
	}
	plainCost, plainGot := run(false)
	vecCost, vecGot := run(true)
	if plainCost != vecCost {
		t.Fatalf("writev cost %v != single write cost %v", vecCost, plainCost)
	}
	if plainGot != 155+6144 || vecGot != plainGot {
		t.Fatalf("delivered %d vs %d bytes", vecGot, plainGot)
	}
}

// TestSendfileSkipsCopyAndChargesPages: sendfile delivers the same bytes as
// write but charges the copy-free per-page rate, and it honours the peer's
// receive window exactly like write.
func TestSendfileSkipsCopyAndChargesPages(t *testing.T) {
	k, n, p, api, lfd, _ := testbed(t, DefaultConfig())
	var got int
	n.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnData: func(_ core.Time, b int) { got += b },
	})
	k.Sim.Run()
	fd, _ := accept(t, k, p, api, lfd)

	const body = 6144
	before := p.TotalCharged
	p.Batch(k.Now(), func() { api.Sendfile(fd, body) }, nil)
	k.Sim.Run()
	cost := p.TotalCharged - before
	want := k.Cost.SyscallEntry + k.Cost.SendfileCost(body)
	if cost != want {
		t.Fatalf("sendfile charged %v, want %v", cost, want)
	}
	if writeCost := k.Cost.SyscallEntry + k.Cost.WriteCost(body); cost >= writeCost {
		t.Fatalf("sendfile (%v) not cheaper than write (%v)", cost, writeCost)
	}
	if got != body {
		t.Fatalf("client received %d bytes, want %d", got, body)
	}

	// A stalled window clamps sendfile the same way it clamps write.
	k2, n2, p2, api2, lfd2, _ := testbed(t, DefaultConfig())
	n2.ConnectWith(k2.Now(), ConnectOptions{RecvWindow: 512, StallReads: true}, &testHooks{})
	k2.Sim.Run()
	fd2, conn2 := accept(t, k2, p2, api2, lfd2)
	var first, second int
	p2.Batch(k2.Now(), func() {
		first = api2.Sendfile(fd2, body)
		second = api2.Sendfile(fd2, 100)
	}, nil)
	k2.Sim.Run()
	if first != 512 || second != 0 {
		t.Fatalf("windowed sendfile accepted %d then %d, want 512 then 0", first, second)
	}
	if conn2.SendWindowAvail() != 0 {
		t.Fatalf("window not exhausted: %d", conn2.SendWindowAvail())
	}
}

func TestSampleRTT(t *testing.T) {
	if SampleRTT(nil, 0.5) != 0 {
		t.Fatal("empty mix must select the network default (zero)")
	}
	mix := []RTTBand{
		{Weight: 1, RTT: 10 * core.Millisecond},
		{Weight: 3, RTT: 100 * core.Millisecond},
	}
	cases := []struct {
		u    float64
		want core.Duration
	}{
		{0, 10 * core.Millisecond},
		{0.2499, 10 * core.Millisecond},
		{0.25, 100 * core.Millisecond},
		{0.9999, 100 * core.Millisecond},
	}
	for _, c := range cases {
		if got := SampleRTT(mix, c.u); got != c.want {
			t.Errorf("SampleRTT(u=%v) = %v, want %v", c.u, got, c.want)
		}
	}
	// Degenerate weights fall back to the first band.
	if got := SampleRTT([]RTTBand{{Weight: 0, RTT: 7 * core.Millisecond}}, 0.9); got != 7*core.Millisecond {
		t.Fatalf("zero-weight mix = %v, want first band", got)
	}
	// The default WAN mix is well-formed: positive weights, ascending RTTs.
	prev := core.Duration(0)
	for _, b := range DefaultWANMix() {
		if b.Weight <= 0 || b.RTT <= prev {
			t.Fatalf("malformed WAN mix band: %+v", b)
		}
		prev = b.RTT
	}
}
