package netsim

import "repro/internal/core"

// testHooks adapts closures to ConnHandler for this package's tests — the
// in-package twin of simtest.ConnHooks (which cannot be imported from here
// without a cycle). Any hook may be nil.
type testHooks struct {
	OnConnected  func(now core.Time)
	OnRefused    func(now core.Time, reason RefuseReason)
	OnData       func(now core.Time, n int)
	OnPeerClosed func(now core.Time)
}

func (h *testHooks) Connected(now core.Time) {
	if h.OnConnected != nil {
		h.OnConnected(now)
	}
}

func (h *testHooks) Refused(now core.Time, reason RefuseReason) {
	if h.OnRefused != nil {
		h.OnRefused(now, reason)
	}
}

func (h *testHooks) Data(now core.Time, n int) {
	if h.OnData != nil {
		h.OnData(now, n)
	}
}

func (h *testHooks) PeerClosed(now core.Time) {
	if h.OnPeerClosed != nil {
		h.OnPeerClosed(now)
	}
}
