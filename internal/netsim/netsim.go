// Package netsim simulates the network between the benchmark client host and
// the server host of the paper's testbed: TCP connection establishment with a
// listener backlog, per-connection round-trip latency, transmission delay on a
// 100 Mbit/s link, the ~60000-port / 60-second TIME-WAIT limitation that
// dictates the paper's 35000-connection benchmark procedure, and the
// server-side socket system calls (accept/read/write/close) with their CPU
// costs charged to the simulated kernel.
//
// The client host (the 4-way Xeon driving httperf) is modelled with unbounded
// CPU: client-side actions occur exactly at their network event times. The
// server host is the uniprocessor simulated by package simkernel.
package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// Config describes the simulated testbed.
type Config struct {
	// LinkBandwidthBps is the bandwidth of the Ethernet link in bits/second.
	LinkBandwidthBps float64
	// DefaultRTT is the round-trip time used for connections that do not
	// specify their own (the LAN-attached httperf clients).
	DefaultRTT core.Duration
	// ListenBacklog bounds the server's accept queue; SYNs arriving when it is
	// full are refused, which is one of the error sources Figure 10 counts.
	ListenBacklog int
	// PortSpace is the number of client ephemeral ports available (the paper's
	// "about 60000 open sockets at a single point in time").
	PortSpace int
	// TimeWait is how long a client port stays unusable after its connection
	// finishes (the paper's sixty seconds).
	TimeWait core.Duration
	// MaxServerFDs bounds the server process's descriptor table; 0 means
	// unlimited. thttpd/phhttpd in the paper run with a large limit.
	MaxServerFDs int
	// Shard selects how new connections are distributed when several
	// listeners share the port SO_REUSEPORT-style (a prefork server's
	// workers). With a single listener the policy is irrelevant and the
	// behaviour is exactly the paper's single accept queue.
	Shard ShardPolicy
	// DgramLossRate is the probability a datagram is dropped in flight
	// (either direction). Losses are decided by a deterministic hash of a
	// per-network send sequence, so identical runs lose identical datagrams.
	// Zero (the default) loses nothing; stream traffic is never affected.
	DgramLossRate float64
	// DgramReorderRate is the probability a datagram is delayed by an extra
	// half-RTT in flight, arriving behind datagrams sent after it. Decided by
	// the same deterministic sequence hash as losses.
	DgramReorderRate float64
}

// ShardPolicy distributes incoming connections across the listeners sharing
// the served port.
type ShardPolicy int

// Sharding policies.
const (
	// ShardHash hashes the connection onto a listener, as the kernel's
	// SO_REUSEPORT four-tuple hash does: stateless, and a connection's queue
	// is fixed at SYN time.
	ShardHash ShardPolicy = iota
	// ShardRoundRobin deals connections to listeners in rotation — an
	// idealised perfectly-balanced dispatch, the comparison point for the
	// hash's statistical balance.
	ShardRoundRobin
)

// String names the policy.
func (s ShardPolicy) String() string {
	if s == ShardRoundRobin {
		return "rr"
	}
	return "hash"
}

// DefaultConfig returns the testbed configuration used by the paper's
// evaluation (100 Mbit/s switched Ethernet, LAN RTT, 60 s TIME-WAIT).
func DefaultConfig() Config {
	return Config{
		LinkBandwidthBps: 100e6,
		DefaultRTT:       200 * core.Microsecond,
		ListenBacklog:    128,
		PortSpace:        60000,
		TimeWait:         60 * core.Second,
		MaxServerFDs:     0,
	}
}

// Stats aggregates network-level counters for an experiment run.
type Stats struct {
	ConnAttempts    int64 // client connect() calls
	ConnEstablished int64 // connections that completed the handshake
	ConnRefused     int64 // SYNs rejected (backlog full or listener closed)
	ConnPortFail    int64 // connects that failed locally for lack of ports
	BytesToServer   int64 // request bytes delivered to the server
	BytesToClient   int64 // response bytes delivered to clients
	SegmentsRx      int64 // segments received by the server (IRQ charges)
	Accepted        int64 // connections accepted by the server
	ServerCloses    int64 // server-initiated closes
	ClientCloses    int64 // client-initiated closes
	DgramsSent      int64 // datagrams handed to the network (both directions)
	DgramsDelivered int64 // datagrams delivered to a live endpoint
	DgramsDropped   int64 // datagrams lost in flight or unroutable
	DgramsStale     int64 // datagrams discarded by the fd-generation check
}

// timewaitRing holds the release instants of ports waiting out TIME-WAIT.
// Every port enters with release = now + the fixed TIME-WAIT duration and the
// clock never runs backwards, so entries arrive already sorted: a FIFO ring
// (reusing its backing array) replaces the former heap with identical
// pop order and no per-entry boxing.
type timewaitRing struct {
	releases []core.Time
	head     int
}

func (r *timewaitRing) len() int { return len(r.releases) - r.head }

func (r *timewaitRing) push(release core.Time) {
	r.releases = append(r.releases, release)
}

// expire drops entries whose release instant has passed, compacting the
// backing array once the dead prefix outweighs the live suffix so a long run
// holds O(live TIME-WAIT ports) memory, not O(total connections).
func (r *timewaitRing) expire(now core.Time) {
	for r.head < len(r.releases) && r.releases[r.head] <= now {
		r.head++
	}
	if r.head == len(r.releases) {
		r.releases = r.releases[:0]
		r.head = 0
	} else if r.head > 64 && r.head*2 >= len(r.releases) {
		n := copy(r.releases, r.releases[r.head:])
		r.releases = r.releases[:n]
		r.head = 0
	}
}

// Network is the simulated wire between the client host and the server host.
type Network struct {
	K   *simkernel.Kernel
	Cfg Config

	listeners []*Listener
	rrNext    int

	// lstats holds one Stats block per lane (a single block on a sequential
	// run). Counters are incremented on the lane where the counted event
	// executes and summed by Stats, so a parallel run needs no atomics and a
	// sequential run is exactly the old single-struct accounting.
	lstats []Stats

	portsInUse int
	timewait   timewaitRing

	// pools recycles the scheduled-delivery records of client.go, one pool
	// per lane: a record is taken from the scheduling lane's pool and
	// returned to the executing lane's, so each pool has a single writer.
	pools [][]*connEvt

	nextConnID int64

	// Datagram-transport state (see datagram.go). All of it — the binding
	// table, the peer address table and the loss/reorder sequence — lives on
	// the datagram home lane (the lane of the process that opened the first
	// datagram socket; the driver lane before any exists), so a parallel run
	// needs no locking and matches the sequential engine event for event.
	dgramBinds    map[Addr]*dgramBind
	peerAddrs     map[Addr]*Peer
	dgramHome     simkernel.Q
	dgramHomeSet  bool
	dgramSeq      uint64
	nextDgramAddr Addr

	// Parallel-run state (see Parallelize). driverQ doubles as the global
	// queue delegate on a sequential run, so scheduling code is identical on
	// both paths.
	parallel  bool
	lookahead core.Duration
	driverQ   simkernel.Q
}

// New creates a network bound to the given simulated kernel.
func New(k *simkernel.Kernel, cfg Config) *Network {
	if cfg.LinkBandwidthBps <= 0 {
		cfg.LinkBandwidthBps = 100e6
	}
	if cfg.DefaultRTT <= 0 {
		cfg.DefaultRTT = 200 * core.Microsecond
	}
	if cfg.ListenBacklog <= 0 {
		cfg.ListenBacklog = 128
	}
	if cfg.PortSpace <= 0 {
		cfg.PortSpace = 60000
	}
	if cfg.TimeWait < 0 {
		cfg.TimeWait = 0
	}
	n := &Network{
		K: k, Cfg: cfg,
		lstats:        make([]Stats, 1),
		pools:         make([][]*connEvt, 1),
		driverQ:       k.Sim.LaneQ(0),
		dgramBinds:    make(map[Addr]*dgramBind),
		peerAddrs:     make(map[Addr]*Peer),
		nextDgramAddr: dgramAutoAddrBase,
	}
	n.dgramHome = n.driverQ
	return n
}

// Parallelize homes the network onto the kernel's sharded lanes: the
// experiment driver (connection launches, the shared port/TIME-WAIT pool,
// connection-id assignment) owns lane 0, and every connection lives wholly on
// the lane of the server process whose listener receives it — client-side
// callbacks included — so all per-connection state stays single-writer and
// same-instant event ties within a connection keep the sequential engine's
// order. Only two event classes cross lanes: SYNs (driver to the connection's
// lane, at least half an RTT out) and port releases (connection lane back to
// the driver, deferred by the lookahead with the TIME-WAIT expiry carried as
// an absolute instant, which keeps PortsAvailable identical to a sequential
// run at every instant). Must be called after Kernel.EnableParallel and
// before any server or connection exists.
//
// Configurations whose semantics depend on global event order (round-robin
// listener sharding) or whose port-release deferral would be observable
// (TimeWait below the lookahead) cannot be parallelized; they panic here, and
// the experiment driver falls back to a sequential run for them instead.
func (n *Network) Parallelize() {
	sim := n.K.Sim
	if !sim.Sharded() {
		return
	}
	if n.Cfg.Shard == ShardRoundRobin {
		panic("netsim: round-robin listener sharding depends on global SYN order and cannot run parallel")
	}
	la := sim.Lookahead()
	if n.Cfg.TimeWait < la {
		panic("netsim: TimeWait below the lookahead would make deferred port release observable")
	}
	n.parallel = true
	n.lookahead = la
	n.driverQ = sim.LaneQ(0)
	n.dgramHome = n.driverQ
	n.lstats = make([]Stats, sim.NumLanes())
	n.pools = make([][]*connEvt, sim.NumLanes())
}

// Parallel reports whether the network has been homed onto sharded lanes.
func (n *Network) Parallel() bool { return n.parallel }

// statsAt returns the counter block for the lane q is bound to (the single
// block on a sequential run).
func (n *Network) statsAt(q simkernel.Q) *Stats {
	return &n.lstats[q.LaneIndex()]
}

// Stats returns a snapshot of the network counters, summed across lanes.
func (n *Network) Stats() Stats {
	s := n.lstats[0]
	for _, ls := range n.lstats[1:] {
		s.ConnAttempts += ls.ConnAttempts
		s.ConnEstablished += ls.ConnEstablished
		s.ConnRefused += ls.ConnRefused
		s.ConnPortFail += ls.ConnPortFail
		s.BytesToServer += ls.BytesToServer
		s.BytesToClient += ls.BytesToClient
		s.SegmentsRx += ls.SegmentsRx
		s.Accepted += ls.Accepted
		s.ServerCloses += ls.ServerCloses
		s.ClientCloses += ls.ClientCloses
		s.DgramsSent += ls.DgramsSent
		s.DgramsDelivered += ls.DgramsDelivered
		s.DgramsDropped += ls.DgramsDropped
		s.DgramsStale += ls.DgramsStale
	}
	return s
}

// Listener returns the first registered listening socket, if any — the only
// one on every single-worker server.
func (n *Network) Listener() *Listener {
	if len(n.listeners) == 0 {
		return nil
	}
	return n.listeners[0]
}

// Listeners returns all listening sockets sharing the served port, in
// registration order (worker order for a prefork server).
func (n *Network) Listeners() []*Listener { return n.listeners }

// pickListener selects the accept queue for a new connection according to the
// sharding policy. With one listener (the paper's topology) every policy
// degenerates to that listener. Closed listeners still occupy their slot so
// worker indexes stay stable; a SYN sharded onto one is refused, as a real
// dead SO_REUSEPORT socket would refuse it.
func (n *Network) pickListener(connID int64) *Listener {
	switch len(n.listeners) {
	case 0:
		return nil
	case 1:
		return n.listeners[0]
	}
	switch n.Cfg.Shard {
	case ShardRoundRobin:
		l := n.listeners[n.rrNext]
		n.rrNext = (n.rrNext + 1) % len(n.listeners)
		return l
	default:
		// Fibonacci hash of the connection id stands in for the kernel's
		// four-tuple hash: deterministic per connection, statistically even.
		return n.listeners[int((uint64(connID)*2654435761)%uint64(len(n.listeners)))]
	}
}

// TransmitDelay returns the serialisation delay for sending size bytes over
// the link (excluding propagation, which is covered by the RTT).
func (n *Network) TransmitDelay(size int) core.Duration {
	if size <= 0 {
		return 0
	}
	seconds := float64(size*8) / n.Cfg.LinkBandwidthBps
	return core.Duration(seconds * float64(core.Second))
}

// PortsAvailable reports how many client ephemeral ports can be allocated at
// virtual time now, after lazily expiring TIME-WAIT entries.
func (n *Network) PortsAvailable(now core.Time) int {
	n.timewait.expire(now)
	return n.Cfg.PortSpace - n.portsInUse - n.timewait.len()
}

// PortsInTimeWait reports how many ports are currently waiting out TIME-WAIT.
func (n *Network) PortsInTimeWait(now core.Time) int {
	n.timewait.expire(now)
	return n.timewait.len()
}

// allocPort claims a client ephemeral port; it returns false when the port
// space (including TIME-WAIT entries) is exhausted, which the paper avoids by
// limiting runs to 35000 connections.
func (n *Network) allocPort(now core.Time) bool {
	if n.PortsAvailable(now) <= 0 {
		return false
	}
	n.portsInUse++
	return true
}

// releasePort moves a port into TIME-WAIT at time now.
func (n *Network) releasePort(now core.Time) {
	if n.portsInUse <= 0 {
		return
	}
	n.portsInUse--
	if n.Cfg.TimeWait > 0 {
		n.timewait.push(now.Add(n.Cfg.TimeWait))
	}
}

// connID returns a fresh connection identifier for tracing.
func (n *Network) connID() int64 {
	n.nextConnID++
	return n.nextConnID
}

func (n *Network) tracef(now core.Time, format string, args ...interface{}) {
	n.K.Tracef(now, "net", format, args...)
}

// String summarises the configuration, mostly for experiment logs.
func (c Config) String() string {
	return fmt.Sprintf("link=%.0fMbit/s rtt=%v backlog=%d ports=%d timewait=%v",
		c.LinkBandwidthBps/1e6, c.DefaultRTT, c.ListenBacklog, c.PortSpace, c.TimeWait)
}
