package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// Transport distinguishes the socket families netsim simulates.
type Transport int

// The two transports.
const (
	// Stream is connection-oriented TCP: ConnectOptions/ConnHandler on the
	// client side, Listener/ServerConn behind accept() on the server side.
	Stream Transport = iota
	// Datagram is connectionless UDP: OpenDatagram/SendTo/RecvFrom on the
	// server side, Peer on the client side, loss and reorder on the wire.
	Datagram
)

// String names the transport.
func (t Transport) String() string {
	if t == Datagram {
		return "dgram"
	}
	return "stream"
}

// Socket is the transport-generic face of a netsim endpoint: everything the
// simulation hands a consumer — stream connections on either end, datagram
// sockets, datagram peers — reports which transport it speaks and which lane
// its events execute on. The stream-specific surfaces (ConnectOptions,
// ConnHandler, SockAPI's accept/read/write) and the datagram-specific ones
// (OpenDatagram/SendTo/RecvFrom, DgramHandler) are specializations over this
// common shape, which is what a future real-kernel backend implements behind
// the same interface.
type Socket interface {
	// Transport reports the socket family.
	Transport() Transport
	// Q returns the scheduling handle of the lane the socket's events
	// execute on (the global-queue delegate on a sequential run).
	Q() simkernel.Q
}

// Compile-time checks: every consumer-facing endpoint is a Socket.
var (
	_ Socket = (*ClientConn)(nil)
	_ Socket = (*ServerConn)(nil)
	_ Socket = (*DgramSock)(nil)
	_ Socket = (*Peer)(nil)
)

// Addr identifies a datagram endpoint: positive addresses are server-side
// bound sockets (well-known services bind low addresses explicitly,
// OpenDatagram(0) auto-allocates from dgramAutoAddrBase up), negative
// addresses are client-side peers (assigned by NewPeer).
type Addr int

// dgramAutoAddrBase is the first auto-allocated server socket address;
// explicit binds must stay below it.
const dgramAutoAddrBase Addr = 1024

// dgram is one queued datagram on a bound socket's receive queue.
type dgram struct {
	from Addr
	size int
}

// dgramBind is one entry of the network's address→socket binding table. The
// sender captures the whole entry — descriptor number and generation included
// — when it hands a datagram to the network; the delivery checks the capture
// against the live descriptor table, so a datagram in flight across a
// close/reopen of the same descriptor slot is discarded as stale instead of
// leaking into the unrelated socket that recycled the number (the PR 3
// fd-generation machinery, extended to connectionless traffic).
type dgramBind struct {
	sock *DgramSock
	fdn  int
	gen  uint64
}

// DgramSock is a server-side bound datagram socket. It implements
// simkernel.File so it lives in the owning process's descriptor table and is
// pollable by every event mechanism: readable while datagrams are queued,
// always writable (UDP never blocks on a peer window).
type DgramSock struct {
	net   *Network
	owner *simkernel.Proc
	addr  Addr
	q     simkernel.Q

	rcvQ   []dgram
	closed bool

	notifier simkernel.Notifier

	// Drops counts datagrams discarded because the socket buffer was full.
	Drops int64
}

// Transport implements Socket.
func (s *DgramSock) Transport() Transport { return Datagram }

// Q implements Socket.
func (s *DgramSock) Q() simkernel.Q { return s.q }

// Addr returns the bound address.
func (s *DgramSock) Addr() Addr { return s.addr }

// Queued reports how many datagrams are waiting to be read.
func (s *DgramSock) Queued() int { return len(s.rcvQ) }

// Poll implements simkernel.File.
func (s *DgramSock) Poll() core.EventMask {
	if s.closed {
		return core.POLLNVAL
	}
	m := core.EventMask(core.POLLOUT)
	if len(s.rcvQ) > 0 {
		m |= core.POLLIN
	}
	return m
}

// SetNotifier implements simkernel.File.
func (s *DgramSock) SetNotifier(n simkernel.Notifier) { s.notifier = n }

// Close implements simkernel.File: the binding is removed, so datagrams
// already in flight toward it are dropped on arrival (as stale if the
// descriptor slot was recycled, as unroutable otherwise).
func (s *DgramSock) Close(now core.Time) {
	if s.closed {
		return
	}
	s.closed = true
	s.rcvQ = nil
	delete(s.net.dgramBinds, s.addr)
}

func (s *DgramSock) notify(now core.Time, mask core.EventMask) {
	if s.notifier != nil {
		s.notifier.Notify(now, mask)
	}
}

// dgramRcvQMax bounds a socket's receive queue, as SO_RCVBUF does: datagrams
// arriving past it are dropped and counted, never delivered late.
const dgramRcvQMax = 4096

// deliver queues an arriving datagram, raising POLLIN on empty→non-empty.
func (s *DgramSock) deliver(now core.Time, from Addr, size int) {
	if s.closed {
		return
	}
	if len(s.rcvQ) >= dgramRcvQMax {
		s.Drops++
		s.net.statsAt(s.q).DgramsDropped++
		return
	}
	s.rcvQ = append(s.rcvQ, dgram{from: from, size: size})
	if len(s.rcvQ) == 1 {
		s.notify(now, core.POLLIN)
	}
}

// dgramHomeQ resolves the datagram home lane, claiming it for process p when
// no datagram socket exists yet. All datagram state — bindings, peers, the
// loss sequence — is single-writer on this lane; a second server process on a
// different lane cannot join (that would split the writer), which mirrors
// Parallelize's refusal of configurations whose semantics need global order.
func (n *Network) dgramHomeQ(p *simkernel.Proc) simkernel.Q {
	if !n.dgramHomeSet {
		n.dgramHome = p.Q()
		n.dgramHomeSet = true
		return n.dgramHome
	}
	if n.parallel && p.Q().LaneIndex() != n.dgramHome.LaneIndex() {
		panic("netsim: datagram sockets from a second lane would split the home lane's single writer")
	}
	return n.dgramHome
}

// OpenDatagram creates a bound datagram socket for the calling process and
// installs it in the descriptor table. addr 0 auto-allocates an address;
// a well-known service passes its own (below dgramAutoAddrBase). Binding an
// address twice panics — it is a programming error, like EADDRINUSE without
// SO_REUSEADDR.
func (a *SockAPI) OpenDatagram(addr Addr) (*simkernel.FD, *DgramSock) {
	a.P.ChargeSyscall(a.K.Cost.Accept) // socket+bind lumped together
	q := a.Net.dgramHomeQ(a.P)
	if addr == 0 {
		addr = a.Net.nextDgramAddr
		a.Net.nextDgramAddr++
	} else if addr >= dgramAutoAddrBase {
		panic(fmt.Sprintf("netsim: explicit datagram addr %d collides with the auto-allocated range", addr))
	}
	if _, taken := a.Net.dgramBinds[addr]; taken {
		panic(fmt.Sprintf("netsim: datagram addr %d already bound", addr))
	}
	s := &DgramSock{net: a.Net, owner: a.P, addr: addr, q: q}
	fd := a.P.Install(s)
	a.Net.dgramBinds[addr] = &dgramBind{sock: s, fdn: fd.Num, gen: fd.Gen}
	return fd, s
}

// SendTo queues one size-byte datagram toward the peer at to, charging the
// per-datagram syscall and copy cost. Like stream writes, the externally
// visible transmission is deferred to the current batch's completion instant;
// routing, loss and reordering are resolved there. The return value reports
// only that the local send succeeded — UDP gives no delivery feedback.
func (a *SockAPI) SendTo(fd *simkernel.FD, to Addr, size int) bool {
	a.P.ChargeSyscall(a.K.Cost.DgramSendCost(size))
	s, isDgram := fd.File().(*DgramSock)
	if !isDgram || fd.Closed() || s.closed || size <= 0 {
		return false
	}
	n := a.Net
	e := n.getEvt(a.P.Q())
	e.kind, e.ds, e.addr, e.n = evtDgramXmit, s, to, size
	e.lane = a.P.Q().LaneIndex()
	a.P.Defer(e.fn)
	return true
}

// RecvFrom dequeues the oldest datagram from the socket, charging the
// per-datagram receive cost. ok is false when the queue is empty (EAGAIN).
func (a *SockAPI) RecvFrom(fd *simkernel.FD) (from Addr, size int, ok bool) {
	a.P.ChargeSyscall(a.K.Cost.DgramRecv)
	s, isDgram := fd.File().(*DgramSock)
	if !isDgram || fd.Closed() || len(s.rcvQ) == 0 {
		return 0, 0, false
	}
	d := s.rcvQ[0]
	s.rcvQ = s.rcvQ[1:]
	if len(s.rcvQ) == 0 {
		s.rcvQ = nil
	}
	return d.from, d.size, true
}

// DgramHandler receives a Peer's callbacks. The client host has unbounded
// CPU, so methods run exactly at the event's virtual time, on the datagram
// home lane.
type DgramHandler interface {
	// Started fires once the peer is routable: its address is registered and
	// datagrams can flow both ways.
	Started(now core.Time)
	// Datagram delivers one arriving datagram.
	Datagram(now core.Time, from Addr, size int)
}

// PeerOptions parameterise one datagram peer.
type PeerOptions struct {
	// RTT is the round-trip time between this peer and the server; zero
	// selects the network's default (LAN) RTT.
	RTT core.Duration
}

// Peer is a client-host datagram endpoint — one DHT node, one NAT'd P2P
// client. It is the datagram counterpart of ClientConn: no kernel CPU is
// charged for its actions, and all its callbacks execute on the datagram home
// lane.
type Peer struct {
	net    *Network
	ID     int64
	addr   Addr
	rtt    core.Duration
	h      DgramHandler
	closed bool
}

// Transport implements Socket.
func (p *Peer) Transport() Transport { return Datagram }

// Q implements Socket: the datagram home lane, where every callback of every
// peer executes.
func (p *Peer) Q() simkernel.Q { return p.net.dgramHome }

// Addr returns the peer's address, the from seen by the server's RecvFrom.
func (p *Peer) Addr() Addr { return p.addr }

// RTT returns the peer's round-trip time.
func (p *Peer) RTT() core.Duration { return p.rtt }

// NewPeer creates a datagram peer at virtual time now. Like ConnectWith it
// must be called from driver-lane code on a parallelized network (peer-id
// assignment is driver state); the peer becomes routable — and h.Started
// fires, on the datagram home lane — half an RTT later, the one cross-lane
// hop a peer's lifetime needs.
func (n *Network) NewPeer(now core.Time, opts PeerOptions, h DgramHandler) *Peer {
	rtt := opts.RTT
	if rtt <= 0 {
		rtt = n.Cfg.DefaultRTT
	}
	p := &Peer{net: n, ID: n.connID(), rtt: rtt, h: h}
	p.addr = Addr(-p.ID)
	e := n.getEvt(n.driverQ)
	e.kind, e.peer = evtPeerStart, p
	e.lane = n.dgramHome.LaneIndex()
	n.driverQ.Post(n.dgramHome, now.Add(rtt/2), e.fn)
	return p
}

// peerStart registers the peer on the home lane and announces it.
func (p *Peer) peerStart(t core.Time) {
	if p.closed {
		return
	}
	p.net.peerAddrs[p.addr] = p
	p.h.Started(t)
}

// SendTo hands one size-byte datagram to the network, addressed to a bound
// server socket (or another peer). It must be called from code executing on
// the datagram home lane — a Started/Datagram callback or work scheduled on
// Q(). The destination binding, with its descriptor generation, is captured
// here: what the datagram arrives at is whatever that capture still resolves
// to, exactly like a real packet in flight.
func (p *Peer) SendTo(now core.Time, to Addr, size int) {
	if p.closed || size <= 0 {
		return
	}
	n := p.net
	st := n.statsAt(n.dgramHome)
	st.DgramsSent++
	delay, lost := n.dgramWire(size, p.rtt)
	if lost {
		st.DgramsDropped++
		return
	}
	if b, okB := n.dgramBinds[to]; okB {
		e := n.getEvt(n.dgramHome)
		e.kind, e.ds, e.addr, e.n = evtDgramToServer, b.sock, p.addr, size
		e.fdn, e.gen = b.fdn, b.gen
		e.lane = n.dgramHome.LaneIndex()
		n.dgramHome.Post(n.dgramHome, now.Add(delay), e.fn)
		return
	}
	if q, okP := n.peerAddrs[to]; okP {
		n.scheduleDgramToPeer(now.Add(delay), q, p.addr, size)
		return
	}
	st.DgramsDropped++ // unroutable: no ICMP in this network
}

// Close withdraws the peer: its address stops routing and in-flight datagrams
// toward it are dropped on arrival. Home-lane code only, like SendTo.
func (p *Peer) Close(now core.Time) {
	if p.closed {
		return
	}
	p.closed = true
	delete(p.net.peerAddrs, p.addr)
}

// scheduleDgramToPeer books a delivery to a peer endpoint (home lane).
func (n *Network) scheduleDgramToPeer(at core.Time, p *Peer, from Addr, size int) {
	e := n.getEvt(n.dgramHome)
	e.kind, e.peer, e.addr, e.n = evtDgramToPeer, p, from, size
	e.lane = n.dgramHome.LaneIndex()
	n.dgramHome.Post(n.dgramHome, at, e.fn)
}

// splitmix64 is the 64-bit finalizer the loss/reorder decisions hash the send
// sequence through: stateless, deterministic and independent of Go's RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dgramWire decides one datagram's fate on the wire — loss, and otherwise its
// one-way delay (half an RTT plus serialisation, plus an extra half-RTT when
// the reorder knob fires). It consumes one step of the home-lane loss
// sequence, so the decisions are a pure function of send order.
func (n *Network) dgramWire(size int, rtt core.Duration) (delay core.Duration, lost bool) {
	delay = rtt/2 + n.TransmitDelay(size)
	seq := n.dgramSeq
	n.dgramSeq++
	if n.Cfg.DgramLossRate > 0 {
		u := float64(splitmix64(seq)>>11) / float64(1<<53)
		if u < n.Cfg.DgramLossRate {
			return 0, true
		}
	}
	if n.Cfg.DgramReorderRate > 0 {
		u := float64(splitmix64(seq^0xdeadbeefcafef00d)>>11) / float64(1<<53)
		if u < n.Cfg.DgramReorderRate {
			delay += rtt / 2
		}
	}
	return delay, false
}

// dispatchDgram routes a datagram-family pooled event (see connEvt.run).
func (e *connEvt) dispatchDgram(t core.Time) {
	switch e.kind {
	case evtDgramToServer:
		e.dgramArriveServer(t)
	case evtDgramToPeer:
		n := e.net
		st := n.statsAt(n.dgramHome)
		if e.peer.closed {
			st.DgramsDropped++
			return
		}
		st.DgramsDelivered++
		e.peer.h.Datagram(t, e.addr, e.n)
	case evtDgramXmit:
		e.dgramXmit(t)
	case evtPeerStart:
		e.peer.peerStart(t)
	}
}

// dgramArriveServer is the arrival half of a peer→server send: the IRQ and
// demux charge, then the fd-generation check before delivery. The check is
// the datagram mirror of the stream path's stale-readiness defence: the
// capture taken at send time must still resolve to the same descriptor
// generation and the same socket, or the datagram dies here as stale.
func (e *connEvt) dgramArriveServer(t core.Time) {
	n, s := e.net, e.ds
	st := n.statsAt(n.dgramHome)
	n.K.InterruptOn(s.owner.CPU(), t, n.K.Cost.NetRxIRQ+n.K.Cost.DgramDemux, nil)
	st.SegmentsRx++
	fd, ok := s.owner.Get(e.fdn)
	if !ok || fd.Gen != e.gen || fd.File() != simkernel.File(s) || s.closed {
		st.DgramsStale++
		return
	}
	st.DgramsDelivered++
	s.deliver(t, e.addr, e.n)
}

// dgramXmit is the deferred batch effect of a server SendTo: the datagram
// leaves the host at the batch's completion instant, and routing happens now,
// against the tables as they stand when the packet hits the wire.
func (e *connEvt) dgramXmit(t core.Time) {
	n, s := e.net, e.ds
	st := n.statsAt(n.dgramHome)
	st.DgramsSent++
	if p, okP := n.peerAddrs[e.addr]; okP {
		delay, lost := n.dgramWire(e.n, p.rtt)
		if lost {
			st.DgramsDropped++
			return
		}
		n.scheduleDgramToPeer(t.Add(delay), p, s.addr, e.n)
		return
	}
	if b, okB := n.dgramBinds[e.addr]; okB && b.sock != s {
		// Server→server loopback between two bound sockets (a DHT node
		// talking to a sibling service) travels the default LAN RTT.
		delay, lost := n.dgramWire(e.n, n.Cfg.DefaultRTT)
		if lost {
			st.DgramsDropped++
			return
		}
		e2 := n.getEvt(n.dgramHome)
		e2.kind, e2.ds, e2.addr, e2.n = evtDgramToServer, b.sock, s.addr, e.n
		e2.fdn, e2.gen = b.fdn, b.gen
		e2.lane = n.dgramHome.LaneIndex()
		n.dgramHome.Post(n.dgramHome, t.Add(delay), e2.fn)
		return
	}
	st.DgramsDropped++
}
