package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// testDgramHooks adapts closures to DgramHandler for this package's tests,
// like testHooks does for ConnHandler.
type testDgramHooks struct {
	OnStarted  func(now core.Time)
	OnDatagram func(now core.Time, from Addr, size int)
}

func (h *testDgramHooks) Started(now core.Time) {
	if h.OnStarted != nil {
		h.OnStarted(now)
	}
}

func (h *testDgramHooks) Datagram(now core.Time, from Addr, size int) {
	if h.OnDatagram != nil {
		h.OnDatagram(now, from, size)
	}
}

// TestDatagramGenerationStress churns a bound socket's descriptor slot while
// datagrams are in flight toward it. Every round sends a burst at the live
// socket, closes and reopens the same address (recycling the descriptor slot
// under a new generation) before the burst lands, then sends a second burst
// at the reopened socket. The in-flight burst must die as stale — a datagram
// addressed to a dead generation may never leak into the unrelated socket
// that recycled the slot — and the post-reopen burst must arrive intact.
func TestDatagramGenerationStress(t *testing.T) {
	const (
		addr   Addr = 1
		rounds      = 50
		burst       = 8
		size        = 64
	)
	k := simkernel.NewKernel(nil)
	n := New(k, DefaultConfig())
	p := k.NewProc("server")
	api := NewSockAPI(k, p, n)

	var fd *simkernel.FD
	var sock *DgramSock
	p.Batch(0, func() { fd, sock = api.OpenDatagram(addr) }, nil)
	peer := n.NewPeer(0, PeerOptions{}, &testDgramHooks{})
	k.Sim.Run()

	received := 0
	for round := 0; round < rounds; round++ {
		// Burst A leaves now and lands half an RTT later — at a socket that
		// will be gone by then.
		now := k.Now()
		for i := 0; i < burst; i++ {
			peer.SendTo(now, addr, size)
		}

		// Close and reopen the same address in one batch, before burst A
		// arrives. The slot must actually recycle — same descriptor number,
		// newer generation — or the test would only exercise the missing-fd
		// path, not the stale-generation one.
		oldNum, oldGen := fd.Num, fd.Gen
		p.Batch(now, func() {
			api.Close(fd)
			fd, sock = api.OpenDatagram(addr)
		}, nil)
		k.Sim.Run()
		if fd.Num != oldNum || fd.Gen <= oldGen {
			t.Fatalf("round %d: reopen got fd %d gen %d, want recycled slot %d with gen > %d",
				round, fd.Num, fd.Gen, oldNum, oldGen)
		}

		// Burst B targets the reopened socket and must be delivered to it.
		now = k.Now()
		for i := 0; i < burst; i++ {
			peer.SendTo(now, addr, size)
		}
		k.Sim.Run()

		got := 0
		p.Batch(k.Now(), func() {
			for {
				from, sz, ok := api.RecvFrom(fd)
				if !ok {
					break
				}
				if from != peer.Addr() || sz != size {
					t.Errorf("round %d: datagram from %d size %d, want from %d size %d",
						round, from, sz, peer.Addr(), size)
				}
				got++
			}
		}, nil)
		k.Sim.Run()
		if got != burst {
			t.Fatalf("round %d: reopened socket received %d datagrams, want %d (stale leak or loss)",
				round, got, burst)
		}
		received += got
	}

	st := n.Stats()
	if st.DgramsStale != rounds*burst {
		t.Fatalf("DgramsStale = %d, want %d (every pre-reopen burst dies at the generation check)",
			st.DgramsStale, rounds*burst)
	}
	if st.DgramsDelivered != int64(received) || received != rounds*burst {
		t.Fatalf("delivered %d / received %d, want %d each", st.DgramsDelivered, received, rounds*burst)
	}
	if st.DgramsSent != 2*rounds*burst {
		t.Fatalf("DgramsSent = %d, want %d", st.DgramsSent, 2*rounds*burst)
	}
	if sock.Drops != 0 {
		t.Fatalf("socket counted %d buffer drops on an unloaded queue", sock.Drops)
	}
}

// TestDatagramConservationUnderLossReorderChurn turns on the loss and reorder
// knobs and keeps churning the socket while bursts are in flight: whatever
// the wire does, every sent datagram must be accounted exactly once — as
// delivered, as dropped, or as stale — and nothing may reach the application
// beyond what was delivered.
func TestDatagramConservationUnderLossReorderChurn(t *testing.T) {
	const (
		addr   Addr = 1
		rounds      = 40
		burst       = 16
	)
	cfg := DefaultConfig()
	cfg.DgramLossRate = 0.2
	cfg.DgramReorderRate = 0.3
	k := simkernel.NewKernel(nil)
	n := New(k, cfg)
	p := k.NewProc("server")
	api := NewSockAPI(k, p, n)

	var fd *simkernel.FD
	p.Batch(0, func() { fd, _ = api.OpenDatagram(addr) }, nil)
	peer := n.NewPeer(0, PeerOptions{}, &testDgramHooks{})
	k.Sim.Run()

	received := 0
	for round := 0; round < rounds; round++ {
		now := k.Now()
		for i := 0; i < burst; i++ {
			peer.SendTo(now, addr, 128)
		}
		// Churn the slot mid-flight on every other round.
		if round%2 == 1 {
			p.Batch(now, func() {
				api.Close(fd)
				fd, _ = api.OpenDatagram(addr)
			}, nil)
		}
		k.Sim.Run()
		p.Batch(k.Now(), func() {
			for {
				if _, _, ok := api.RecvFrom(fd); !ok {
					break
				}
				received++
			}
		}, nil)
		k.Sim.Run()
	}

	st := n.Stats()
	if st.DgramsSent != rounds*burst {
		t.Fatalf("DgramsSent = %d, want %d", st.DgramsSent, rounds*burst)
	}
	if st.DgramsDelivered+st.DgramsDropped+st.DgramsStale != st.DgramsSent {
		t.Fatalf("conservation broken: sent %d != delivered %d + dropped %d + stale %d",
			st.DgramsSent, st.DgramsDelivered, st.DgramsDropped, st.DgramsStale)
	}
	if st.DgramsStale == 0 {
		t.Fatal("no stale datagrams despite mid-flight close/reopen churn")
	}
	if st.DgramsDropped == 0 {
		t.Fatal("no losses at a 20% loss rate")
	}
	if int64(received) != st.DgramsDelivered {
		t.Fatalf("application received %d datagrams, delivered %d — misdelivery or loss after delivery",
			received, st.DgramsDelivered)
	}
}
