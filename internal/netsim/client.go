package netsim

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simkernel"
)

// RefuseReason explains why a connection attempt failed.
type RefuseReason int

// Reasons a connection attempt can fail.
const (
	RefusedBacklog RefuseReason = iota // server accept queue full
	RefusedClosed                      // no listener / listener closed
	RefusedPorts                       // client ran out of ephemeral ports
	RefusedReset                       // connection reset before being served
)

// String names the refusal reason.
func (r RefuseReason) String() string {
	switch r {
	case RefusedBacklog:
		return "backlog-full"
	case RefusedClosed:
		return "listener-closed"
	case RefusedPorts:
		return "ports-exhausted"
	case RefusedReset:
		return "reset"
	default:
		return "unknown"
	}
}

// ConnState is the client's view of the connection lifecycle.
type ConnState int

// Client connection states.
const (
	StateConnecting ConnState = iota
	StateEstablished
	StateRefused
	StateClosed
)

// ConnHandler receives the client-side connection callbacks — the stream
// specialization of the Socket consumer surface (Peer/DgramHandler is the
// datagram one). The client host has unbounded CPU, so methods run exactly at
// the event's virtual time. Implementing the interface directly is the
// allocation-free path the load generator uses: one interface value per
// connection instead of a closure per callback; closure-based callers adapt
// with simtest.ConnHooks.
type ConnHandler interface {
	Connected(now core.Time)
	Refused(now core.Time, reason RefuseReason)
	Data(now core.Time, n int)
	PeerClosed(now core.Time)
}

// noopHandler stands in when a caller passes a nil handler.
type noopHandler struct{}

func (noopHandler) Connected(core.Time)             {}
func (noopHandler) Refused(core.Time, RefuseReason) {}
func (noopHandler) Data(core.Time, int)             {}
func (noopHandler) PeerClosed(core.Time)            {}

var sharedNoopHandler ConnHandler = noopHandler{}

// ConnectOptions parameterise one client connection.
type ConnectOptions struct {
	// RTT is the round-trip time between this client and the server; zero
	// selects the network's default (LAN) RTT. The paper's inactive clients
	// use a large RTT to model modem-attached users.
	RTT core.Duration
	// RecvWindow is the client's advertised receive window in bytes; zero
	// means unlimited (the paper's workload, where clients always drain).
	// With a finite window the server's writes only progress as fast as the
	// client application consumes: each delivered byte occupies the window
	// until the client reads it, and the window update travels half an RTT
	// back before the server sees POLLOUT again.
	RecvWindow int
	// StallReads makes the client application never consume delivered bytes:
	// the receive window, once filled, never reopens. Combined with a small
	// RecvWindow this is the classic stalled-reader (slow-read) adversary —
	// the server's response jams after RecvWindow bytes and the connection
	// occupies a descriptor, an interest-set entry and a blocked write until
	// the server's idle sweep gives up on it.
	StallReads bool
}

// ClientConn is the client-side endpoint of a simulated TCP connection.
type ClientConn struct {
	net *Network
	ID  int64
	rtt core.Duration

	// q is the lane every event of this connection — client-side callbacks
	// included — executes on: the lane of the server process whose listener
	// the connection hashes to (the global queue delegate on a sequential
	// run). synQ is the same handle, kept separate only for the SYN of a
	// connection that never establishes.
	q    simkernel.Q
	synQ simkernel.Q

	h     ConnHandler
	state ConnState

	server *ServerConn

	bytesReceived int
	recvWindow    int
	portHeld      bool
	peerClosed    bool
	closedLocal   bool
	stallReads    bool

	// fate is the fault plane's verdict for this connection, fixed at connect
	// time from the driver-assigned id (thread-count invariant); fateFired
	// records that the trigger has been pulled, vanished that the peer went
	// silent (its eventual Close releases the port without a FIN).
	fate      faults.ConnFate
	fateFired bool
	vanished  bool

	// StartedAt is when Connect was called; loadgen uses it for latency.
	StartedAt core.Time
}

// ConnectWith starts a connection attempt at virtual time now. The returned
// ClientConn reports progress through h (which may be nil for fire-and-forget
// connections). On a parallelized network it must be called from code
// executing on the driver lane: connection-id assignment and the port pool
// are driver-lane state.
func (n *Network) ConnectWith(now core.Time, opts ConnectOptions, h ConnHandler) *ClientConn {
	if h == nil {
		h = sharedNoopHandler
	}
	rtt := opts.RTT
	if rtt <= 0 {
		rtt = n.Cfg.DefaultRTT
	}
	c := &ClientConn{
		net: n, ID: n.connID(), rtt: rtt, h: h, state: StateConnecting,
		StartedAt: now, recvWindow: opts.RecvWindow, stallReads: opts.StallReads,
	}
	c.q = n.driverQ
	c.synQ = c.q
	if f := &n.K.Faults; f.ResetRate > 0 || f.VanishRate > 0 {
		c.fate = f.FateOf(c.ID)
	}
	st := n.statsAt(n.driverQ)
	st.ConnAttempts++

	if !n.allocPort(now) {
		st.ConnPortFail++
		c.state = StateRefused
		// Port-refused connections stay homed on the driver lane: their one
		// and only callback fires right here, on the driver.
		n.driverQ.After(0, func(t core.Time) { h.Refused(t, RefusedPorts) })
		return c
	}
	c.portHeld = true

	// Home the connection: the listener choice is a pure function of the
	// connection id (Parallelize forbids round-robin sharding), so the home
	// lane can be resolved at launch, before the SYN travels.
	if n.parallel {
		if l := n.pickListener(c.ID); l != nil && l.owner != nil {
			c.q = l.owner.Q()
			c.synQ = c.q
		}
	}

	// SYN reaches the server half an RTT from now; the handshake completes (or
	// the refusal is learned) another half RTT later.
	n.schedule(n.driverQ, c.synQ, now.Add(rtt/2), evtSYN, c, nil, 0, 0, nil)
	return c
}

// State reports the client's view of the connection.
func (c *ClientConn) State() ConnState { return c.state }

// Transport implements Socket.
func (c *ClientConn) Transport() Transport { return Stream }

// Q returns the scheduling handle of the lane the connection is homed on (the
// global-queue delegate on a sequential run). Client-side callbacks execute
// on this lane; callers scheduling follow-up work against the connection
// (timeouts, think times) must target it.
func (c *ClientConn) Q() simkernel.Q { return c.q }

// BytesReceived reports how many response bytes have arrived.
func (c *ClientConn) BytesReceived() int { return c.bytesReceived }

// RTT returns the connection's round-trip time.
func (c *ClientConn) RTT() core.Duration { return c.rtt }

// Fate reports the fault plane's verdict for this connection (for tests and
// the load generator's accounting).
func (c *ClientConn) Fate() faults.ConnFate { return c.fate }

// synArrive handles the SYN reaching the server host. It executes on the
// connection's home lane — the lane of the listener the id hashes to.
func (c *ClientConn) synArrive(t core.Time) {
	n := c.net
	st := n.statsAt(c.synQ)
	// The sharding decision is made in the NIC/stack before the interrupt
	// is raised, so the SYN's interrupt cost lands on the CPU of the
	// worker whose accept queue receives the connection (IRQ steering).
	l := n.pickListener(c.ID)
	var irq *simkernel.CPU
	if l != nil && l.owner != nil {
		irq = l.owner.CPU()
	}
	n.K.InterruptOn(irq, t, n.K.Cost.NetRxIRQ, nil)
	st.SegmentsRx++
	reason := RefusedClosed
	if l != nil {
		// The client's receive window is advertised in the handshake.
		sc := &ServerConn{net: n, ID: c.ID, rtt: c.rtt, peer: c, owner: l.owner,
			q: c.synQ, sndWindow: c.recvWindow, sndAvail: c.recvWindow}
		if l.deliverSYN(t, sc) {
			c.server = sc
			st.ConnEstablished++
			n.schedule(c.synQ, c.q, t.Add(c.rtt/2), evtEstablished, c, nil, 0, 0, nil)
			return
		}
		reason = RefusedBacklog
	}
	st.ConnRefused++
	n.schedule(c.synQ, c.q, t.Add(c.rtt/2), evtRefuse, c, nil, 0, reason, nil)
}

// established completes the handshake on the client side.
func (c *ClientConn) established(t core.Time) {
	if c.state != StateConnecting {
		return
	}
	c.state = StateEstablished
	c.h.Connected(t)
}

// Send transmits request bytes toward the server at time now. Bytes arrive
// after half an RTT plus the link transmission delay and are buffered on the
// server connection until it reads them. The data slice is retained until
// delivery and must not be mutated by the caller in the meantime.
func (c *ClientConn) Send(now core.Time, data []byte) {
	if c.state != StateEstablished && c.state != StateConnecting {
		return
	}
	if len(data) == 0 {
		return
	}
	switch c.fate {
	case faults.FateVanish:
		// The vanished peer's request never leaves its host: the server sees
		// an accepted connection that stays silent until the idle sweep.
		c.vanished = true
		return
	case faults.FateResetRequest:
		if !c.fateFired {
			c.fateFired = true
			// A deterministic fraction of the request escapes, then the RST
			// chases it down the same path so the server reads a truncated
			// request and then fails with ECONNRESET.
			cut := int(c.net.K.Faults.CutFraction(c.ID) * float64(len(data)))
			if cut < 1 {
				cut = 1
			}
			if cut > len(data) {
				cut = len(data)
			}
			data = data[:cut:cut]
			arrival := now.Add(c.rtt / 2).Add(c.net.TransmitDelay(cut))
			c.net.schedule(c.q, c.synQ, arrival, evtDataToServer, c, nil, cut, 0, data)
			c.abortWithReset(now, arrival)
		}
		return
	}
	n := len(data)
	arrival := now.Add(c.rtt / 2).Add(c.net.TransmitDelay(n))
	c.net.schedule(c.q, c.synQ, arrival, evtDataToServer, c, nil, n, 0, data)
}

// abortWithReset tears the connection down from the client side with an RST
// that reaches the server at rstArrival, surfacing the abort to the client's
// handler as a reset. The ephemeral port is released immediately — a reset
// connection skips TIME-WAIT's FIN handshake bookkeeping on the sender.
func (c *ClientConn) abortWithReset(now core.Time, rstArrival core.Time) {
	if c.closedLocal {
		return
	}
	c.closedLocal = true
	c.state = StateClosed
	c.releasePort(now)
	if c.server != nil {
		c.net.schedule(c.q, c.server.q, rstArrival, evtRSTToServer, nil, c.server, 0, 0, nil)
	}
	c.h.Refused(now, RefusedReset)
}

// dataArriveServer delivers sent bytes to the server host.
func (c *ClientConn) dataArriveServer(t core.Time, data []byte) {
	if c.server == nil {
		return
	}
	net := c.net
	st := net.statsAt(c.server.q)
	net.K.InterruptOn(c.server.irqCPU(), t, net.K.Cost.NetRxIRQ, nil)
	st.SegmentsRx++
	st.BytesToServer += int64(len(data))
	c.server.deliverData(t, data)
}

// Close closes the client end at time now; the FIN reaches the server half an
// RTT later. The client's ephemeral port enters TIME-WAIT.
func (c *ClientConn) Close(now core.Time) {
	if c.closedLocal {
		return
	}
	c.closedLocal = true
	if c.state == StateEstablished || c.state == StateConnecting {
		c.state = StateClosed
	}
	c.net.statsAt(c.q).ClientCloses++
	c.releasePort(now)
	if c.server == nil || c.vanished {
		// A vanished peer never announces the close: no FIN reaches the
		// server, which reclaims the connection only through its idle sweep.
		return
	}
	c.net.schedule(c.q, c.server.q, now.Add(c.rtt/2), evtFINToServer, c, c.server, 0, 0, nil)
}

// refuse finalises a failed connection attempt on the client side.
func (c *ClientConn) refuse(now core.Time, reason RefuseReason) {
	if c.state != StateConnecting {
		return
	}
	c.state = StateRefused
	c.releasePort(now)
	c.h.Refused(now, reason)
}

// scheduleData delivers response bytes to the client at the given instant.
// A draining client (the normal case) consumes the bytes on arrival, and the
// window update announcing the freed space reaches the server half an RTT
// later; a stalled reader leaves the window occupied forever.
func (c *ClientConn) scheduleData(at core.Time, n int) {
	c.net.schedule(c.server.q, c.q, at, evtDataToClient, c, nil, n, 0, nil)
}

// dataArriveClient consumes delivered response bytes on the client host.
func (c *ClientConn) dataArriveClient(t core.Time, n int) {
	if c.closedLocal {
		return
	}
	c.bytesReceived += n
	if c.fate == faults.FateResetResponse && !c.fateFired {
		// Mid-response reset: the first response bytes have arrived, more may
		// be in flight, and the client slams the connection shut. The server's
		// still-draining response fails with EPIPE when the RST lands.
		c.fateFired = true
		c.abortWithReset(t, t.Add(c.rtt/2))
		return
	}
	c.h.Data(t, n)
	if !c.stallReads && c.server != nil && c.server.sndWindow > 0 {
		// The window update is an ACK segment: it costs the server an RX
		// interrupt like any other arriving segment.
		c.net.schedule(c.q, c.server.q, t.Add(c.rtt/2), evtWindowUpdate, nil, c.server, n, 0, nil)
	}
}

// schedulePeerClose delivers the server's FIN to the client at the given
// instant.
func (c *ClientConn) schedulePeerClose(at core.Time) {
	c.net.schedule(c.server.q, c.q, at, evtPeerClose, c, nil, 0, 0, nil)
}

// peerCloseArrive handles the server's FIN on the client host.
func (c *ClientConn) peerCloseArrive(t core.Time) {
	if c.peerClosed || c.closedLocal {
		return
	}
	c.peerClosed = true
	c.state = StateClosed
	c.releasePort(t)
	c.h.PeerClosed(t)
}

// scheduleReset aborts the connection from the server side (listener torn
// down, descriptor limit, ...), surfacing it to the client as a refusal. It
// executes on the server lane the connection is homed on.
func (c *ClientConn) scheduleReset(now core.Time) {
	src := c.synQ
	if c.server != nil {
		src = c.server.q
	}
	c.net.schedule(src, c.q, now.Add(c.rtt/2), evtReset, c, nil, 0, 0, nil)
}

// resetArrive handles a server-side reset on the client host.
func (c *ClientConn) resetArrive(t core.Time) {
	if c.closedLocal || c.peerClosed {
		return
	}
	switch c.state {
	case StateConnecting:
		c.refuse(t, RefusedReset)
	case StateEstablished:
		c.state = StateClosed
		c.peerClosed = true
		c.releasePort(t)
		c.h.Refused(t, RefusedReset)
	}
}

// releasePort returns the client's ephemeral port to TIME-WAIT exactly once.
// On a parallelized network the port pool is driver-lane state, so the
// release travels to the driver as a cross-lane event deferred by the
// lookahead, carrying the absolute TIME-WAIT expiry computed from the true
// release instant. PortsAvailable is unaffected by the deferral: a port in
// flight still counts as in use, and in-use plus TIME-WAIT is exactly the sum
// a sequential run maintains (Parallelize refuses TimeWait below the
// lookahead, the one configuration where the expiry could precede delivery).
func (c *ClientConn) releasePort(now core.Time) {
	if !c.portHeld {
		return
	}
	c.portHeld = false
	n := c.net
	if !n.parallel {
		n.releasePort(now)
		return
	}
	e := n.getEvt(c.q)
	e.kind, e.when, e.lane = evtPortRelease, now.Add(n.Cfg.TimeWait), 0
	c.q.Post(n.driverQ, now.Add(n.lookahead), e.fn)
}

// evtKind identifies what a pooled network event does when it fires.
type evtKind int

const (
	evtSYN           evtKind = iota // SYN reaches the server host
	evtEstablished                  // SYN-ACK reaches the client: handshake done
	evtRefuse                       // refusal reaches the client
	evtDataToServer                 // request bytes reach the server host
	evtDataToClient                 // response bytes reach the client host
	evtWindowUpdate                 // window-update ACK reaches the server host
	evtPeerClose                    // server FIN reaches the client host
	evtFINToServer                  // client FIN reaches the server host
	evtReset                        // server reset reaches the client host
	evtRSTToServer                  // client RST reaches the server host (fault plane)
	evtXmit                         // server write leaves the host (batch completion)
	evtSrvClose                     // server close's FIN leaves the host (batch completion)
	evtPortRelease                  // deferred port release reaches the driver lane
	evtDgramToServer                // datagram reaches a bound server socket
	evtDgramToPeer                  // datagram reaches a client-host peer
	evtDgramXmit                    // server SendTo leaves the host (batch completion)
	evtPeerStart                    // peer registration reaches the datagram home lane
)

// connEvt is one scheduled network delivery. Records are pooled on the
// Network and each carries a callback bound once for its life, so the
// per-segment traffic of a run — the majority of all scheduled events —
// allocates nothing at steady state. lane is the index of the lane the event
// executes on (its pool of recycle); when carries the absolute TIME-WAIT
// expiry of a deferred port release.
type connEvt struct {
	net    *Network
	kind   evtKind
	lane   int
	c      *ClientConn
	sc     *ServerConn
	n      int
	reason RefuseReason
	when   core.Time
	data   []byte
	fn     func(now core.Time)

	// Datagram-event payload: the socket or peer the event touches, the
	// source/destination address and the descriptor capture checked at
	// delivery (see datagram.go).
	ds   *DgramSock
	peer *Peer
	addr Addr
	fdn  int
	gen  uint64
}

// getEvt pops a recycled delivery record from the scheduling lane's pool (or
// allocates one with its callback bound) — the single home of the pool
// discipline. Records return to the executing lane's pool, so every pool has
// exactly one touching goroutine per epoch.
func (n *Network) getEvt(src simkernel.Q) *connEvt {
	pool := n.pools[src.LaneIndex()]
	if l := len(pool); l > 0 {
		e := pool[l-1]
		pool[l-1] = nil
		n.pools[src.LaneIndex()] = pool[:l-1]
		return e
	}
	e := &connEvt{net: n}
	e.fn = e.run
	return e
}

// schedule books a pooled delivery event at the given instant, from code
// executing on src's lane, to execute on dst's lane. On a sequential run both
// handles delegate to the global queue and this is exactly the old Sim.At.
func (n *Network) schedule(src, dst simkernel.Q, at core.Time, kind evtKind, c *ClientConn, sc *ServerConn, count int, reason RefuseReason, data []byte) {
	e := n.getEvt(src)
	e.kind, e.c, e.sc, e.n, e.reason, e.data = kind, c, sc, count, reason, data
	e.lane = dst.LaneIndex()
	src.Post(dst, at, e.fn)
}

// defer_ books a pooled delivery event as a deferred batch effect of the
// given process (the transmit side of server syscalls); it executes on the
// process's own lane at the batch's completion instant.
func (n *Network) defer_(p *simkernel.Proc, kind evtKind, sc *ServerConn, count int) {
	e := n.getEvt(p.Q())
	e.kind, e.sc, e.n = kind, sc, count
	e.lane = p.Q().LaneIndex()
	p.Defer(e.fn)
}

// run dispatches the event and recycles its record. The fields are extracted
// (and the record returned to the executing lane's pool) before the work
// runs, because the work itself may schedule and thus re-issue this very
// record.
func (e *connEvt) run(t core.Time) {
	net, kind, lane, c, sc, n, reason, when, data := e.net, e.kind, e.lane, e.c, e.sc, e.n, e.reason, e.when, e.data
	switch kind {
	case evtDgramToServer, evtDgramToPeer, evtDgramXmit, evtPeerStart:
		// Datagram events keep their record through the dispatch (the
		// handlers read the capture fields directly) and recycle afterwards;
		// any event they schedule draws a fresh record from the pool first.
		e.dispatchDgram(t)
		e.c, e.sc, e.data, e.ds, e.peer = nil, nil, nil, nil, nil
		net.pools[lane] = append(net.pools[lane], e)
		return
	}
	e.c, e.sc, e.data = nil, nil, nil
	net.pools[lane] = append(net.pools[lane], e)
	switch kind {
	case evtSYN:
		c.synArrive(t)
	case evtEstablished:
		c.established(t)
	case evtRefuse:
		c.refuse(t, reason)
	case evtDataToServer:
		c.dataArriveServer(t, data)
	case evtDataToClient:
		c.dataArriveClient(t, n)
	case evtWindowUpdate:
		net.K.InterruptOn(sc.irqCPU(), t, net.K.Cost.NetRxIRQ, nil)
		net.statsAt(sc.q).SegmentsRx++
		sc.windowOpen(t, n)
	case evtPeerClose:
		c.peerCloseArrive(t)
	case evtFINToServer:
		net.K.InterruptOn(sc.irqCPU(), t, net.K.Cost.NetRxIRQ, nil)
		net.statsAt(sc.q).SegmentsRx++
		sc.deliverFIN(t)
	case evtReset:
		c.resetArrive(t)
	case evtRSTToServer:
		net.K.InterruptOn(sc.irqCPU(), t, net.K.Cost.NetRxIRQ, nil)
		net.statsAt(sc.q).SegmentsRx++
		sc.deliverRST(t)
	case evtPortRelease:
		// Driver lane: fold the released port into TIME-WAIT at its
		// original expiry. Pushes stay monotonic because every release is
		// deferred by the same lookahead.
		if net.portsInUse > 0 {
			net.portsInUse--
			net.timewait.push(when)
		}
	case evtXmit:
		arrival := t.Add(net.TransmitDelay(n)).Add(sc.rtt / 2)
		if arrival < sc.lastDeliveryAt {
			arrival = sc.lastDeliveryAt
		}
		sc.lastDeliveryAt = arrival
		net.statsAt(sc.q).BytesToClient += int64(n)
		if sc.peer != nil {
			sc.peer.scheduleData(arrival, n)
		}
	case evtSrvClose:
		net.statsAt(sc.q).ServerCloses++
		arrival := t.Add(sc.rtt / 2)
		if arrival < sc.lastDeliveryAt {
			arrival = sc.lastDeliveryAt
		}
		sc.lastDeliveryAt = arrival
		if sc.peer != nil {
			sc.peer.schedulePeerClose(arrival)
		}
	}
}
