package netsim

import (
	"repro/internal/core"
	"repro/internal/simkernel"
)

// RefuseReason explains why a connection attempt failed.
type RefuseReason int

// Reasons a connection attempt can fail.
const (
	RefusedBacklog RefuseReason = iota // server accept queue full
	RefusedClosed                      // no listener / listener closed
	RefusedPorts                       // client ran out of ephemeral ports
	RefusedReset                       // connection reset before being served
)

// String names the refusal reason.
func (r RefuseReason) String() string {
	switch r {
	case RefusedBacklog:
		return "backlog-full"
	case RefusedClosed:
		return "listener-closed"
	case RefusedPorts:
		return "ports-exhausted"
	case RefusedReset:
		return "reset"
	default:
		return "unknown"
	}
}

// ConnState is the client's view of the connection lifecycle.
type ConnState int

// Client connection states.
const (
	StateConnecting ConnState = iota
	StateEstablished
	StateRefused
	StateClosed
)

// Handlers are the client-side callbacks driven by network events. The client
// host has unbounded CPU, so handlers run exactly at the event's virtual time.
// Any handler may be nil.
type Handlers struct {
	OnConnected  func(now core.Time)
	OnRefused    func(now core.Time, reason RefuseReason)
	OnData       func(now core.Time, n int)
	OnPeerClosed func(now core.Time)
}

// ConnectOptions parameterise one client connection.
type ConnectOptions struct {
	// RTT is the round-trip time between this client and the server; zero
	// selects the network's default (LAN) RTT. The paper's inactive clients
	// use a large RTT to model modem-attached users.
	RTT core.Duration
	// RecvWindow is the client's advertised receive window in bytes; zero
	// means unlimited (the paper's workload, where clients always drain).
	// With a finite window the server's writes only progress as fast as the
	// client application consumes: each delivered byte occupies the window
	// until the client reads it, and the window update travels half an RTT
	// back before the server sees POLLOUT again.
	RecvWindow int
	// StallReads makes the client application never consume delivered bytes:
	// the receive window, once filled, never reopens. Combined with a small
	// RecvWindow this is the classic stalled-reader (slow-read) adversary —
	// the server's response jams after RecvWindow bytes and the connection
	// occupies a descriptor, an interest-set entry and a blocked write until
	// the server's idle sweep gives up on it.
	StallReads bool
}

// ClientConn is the client-side endpoint of a simulated TCP connection.
type ClientConn struct {
	net *Network
	ID  int64
	rtt core.Duration

	handlers Handlers
	state    ConnState

	server *ServerConn

	bytesReceived int
	portHeld      bool
	peerClosed    bool
	closedLocal   bool
	stallReads    bool

	// StartedAt is when Connect was called; loadgen uses it for latency.
	StartedAt core.Time
}

// Connect starts a connection attempt at virtual time now. The returned
// ClientConn reports progress through the supplied handlers.
func (n *Network) Connect(now core.Time, opts ConnectOptions, h Handlers) *ClientConn {
	rtt := opts.RTT
	if rtt <= 0 {
		rtt = n.Cfg.DefaultRTT
	}
	c := &ClientConn{net: n, ID: n.connID(), rtt: rtt, handlers: h, state: StateConnecting, StartedAt: now, stallReads: opts.StallReads}
	n.stats.ConnAttempts++

	if !n.allocPort(now) {
		n.stats.ConnPortFail++
		c.state = StateRefused
		n.K.Sim.After(0, func(t core.Time) {
			if h.OnRefused != nil {
				h.OnRefused(t, RefusedPorts)
			}
		})
		return c
	}
	c.portHeld = true

	// SYN reaches the server half an RTT from now; the handshake completes (or
	// the refusal is learned) another half RTT later.
	n.K.Sim.At(now.Add(rtt/2), func(t core.Time) {
		// The sharding decision is made in the NIC/stack before the interrupt
		// is raised, so the SYN's interrupt cost lands on the CPU of the
		// worker whose accept queue receives the connection (IRQ steering).
		l := n.pickListener(c.ID)
		var irq *simkernel.CPU
		if l != nil && l.owner != nil {
			irq = l.owner.CPU()
		}
		n.K.InterruptOn(irq, t, n.K.Cost.NetRxIRQ, nil)
		n.stats.SegmentsRx++
		reason := RefusedClosed
		if l != nil {
			// The client's receive window is advertised in the handshake.
			sc := &ServerConn{net: n, ID: c.ID, rtt: rtt, peer: c, owner: l.owner,
				sndWindow: opts.RecvWindow, sndAvail: opts.RecvWindow}
			if l.deliverSYN(t, sc) {
				c.server = sc
				n.stats.ConnEstablished++
				n.K.Sim.At(t.Add(rtt/2), func(t2 core.Time) {
					if c.state != StateConnecting {
						return
					}
					c.state = StateEstablished
					if h.OnConnected != nil {
						h.OnConnected(t2)
					}
				})
				return
			}
			reason = RefusedBacklog
		}
		n.stats.ConnRefused++
		n.K.Sim.At(t.Add(rtt/2), func(t2 core.Time) { c.refuse(t2, reason) })
	})
	return c
}

// State reports the client's view of the connection.
func (c *ClientConn) State() ConnState { return c.state }

// BytesReceived reports how many response bytes have arrived.
func (c *ClientConn) BytesReceived() int { return c.bytesReceived }

// RTT returns the connection's round-trip time.
func (c *ClientConn) RTT() core.Duration { return c.rtt }

// Send transmits request bytes toward the server at time now. Bytes arrive
// after half an RTT plus the link transmission delay and are buffered on the
// server connection until it reads them.
func (c *ClientConn) Send(now core.Time, data []byte) {
	if c.state != StateEstablished && c.state != StateConnecting {
		return
	}
	n := len(data)
	if n == 0 {
		return
	}
	payload := append([]byte(nil), data...)
	net := c.net
	arrival := now.Add(c.rtt / 2).Add(net.TransmitDelay(n))
	net.K.Sim.At(arrival, func(t core.Time) {
		if c.server == nil {
			return
		}
		net.K.InterruptOn(c.server.irqCPU(), t, net.K.Cost.NetRxIRQ, nil)
		net.stats.SegmentsRx++
		net.stats.BytesToServer += int64(n)
		c.server.deliverData(t, payload)
	})
}

// Close closes the client end at time now; the FIN reaches the server half an
// RTT later. The client's ephemeral port enters TIME-WAIT.
func (c *ClientConn) Close(now core.Time) {
	if c.closedLocal {
		return
	}
	c.closedLocal = true
	if c.state == StateEstablished || c.state == StateConnecting {
		c.state = StateClosed
	}
	c.net.stats.ClientCloses++
	c.releasePort(now)
	server := c.server
	if server == nil {
		return
	}
	net := c.net
	net.K.Sim.At(now.Add(c.rtt/2), func(t core.Time) {
		net.K.InterruptOn(server.irqCPU(), t, net.K.Cost.NetRxIRQ, nil)
		net.stats.SegmentsRx++
		server.deliverFIN(t)
	})
}

// refuse finalises a failed connection attempt on the client side.
func (c *ClientConn) refuse(now core.Time, reason RefuseReason) {
	if c.state != StateConnecting {
		return
	}
	c.state = StateRefused
	c.releasePort(now)
	if c.handlers.OnRefused != nil {
		c.handlers.OnRefused(now, reason)
	}
}

// scheduleData delivers response bytes to the client at the given instant.
// A draining client (the normal case) consumes the bytes on arrival, and the
// window update announcing the freed space reaches the server half an RTT
// later; a stalled reader leaves the window occupied forever.
func (c *ClientConn) scheduleData(at core.Time, n int) {
	c.net.K.Sim.At(at, func(t core.Time) {
		if c.closedLocal {
			return
		}
		c.bytesReceived += n
		if c.handlers.OnData != nil {
			c.handlers.OnData(t, n)
		}
		if !c.stallReads && c.server != nil && c.server.sndWindow > 0 {
			server := c.server
			net := c.net
			c.net.K.Sim.At(t.Add(c.rtt/2), func(t2 core.Time) {
				// The window update is an ACK segment: it costs the server an
				// RX interrupt like any other arriving segment.
				net.K.InterruptOn(server.irqCPU(), t2, net.K.Cost.NetRxIRQ, nil)
				net.stats.SegmentsRx++
				server.windowOpen(t2, n)
			})
		}
	})
}

// schedulePeerClose delivers the server's FIN to the client at the given
// instant.
func (c *ClientConn) schedulePeerClose(at core.Time) {
	c.net.K.Sim.At(at, func(t core.Time) {
		if c.peerClosed || c.closedLocal {
			return
		}
		c.peerClosed = true
		c.state = StateClosed
		c.releasePort(t)
		if c.handlers.OnPeerClosed != nil {
			c.handlers.OnPeerClosed(t)
		}
	})
}

// scheduleReset aborts the connection from the server side (listener torn
// down, descriptor limit, ...), surfacing it to the client as a refusal.
func (c *ClientConn) scheduleReset(now core.Time) {
	c.net.K.Sim.At(now.Add(c.rtt/2), func(t core.Time) {
		if c.closedLocal || c.peerClosed {
			return
		}
		switch c.state {
		case StateConnecting:
			c.refuse(t, RefusedReset)
		case StateEstablished:
			c.state = StateClosed
			c.peerClosed = true
			c.releasePort(t)
			if c.handlers.OnRefused != nil {
				c.handlers.OnRefused(t, RefusedReset)
			}
		}
	})
}

// releasePort returns the client's ephemeral port to TIME-WAIT exactly once.
func (c *ClientConn) releasePort(now core.Time) {
	if !c.portHeld {
		return
	}
	c.portHeld = false
	c.net.releasePort(now)
}
