package netsim

import "repro/internal/core"

// RTTBand is one class of client path in an RTT mix: a relative weight and
// the round-trip time clients in that band experience. The paper's testbed is
// a uniform LAN; real WAN populations mix LAN-fast proxies, cable/DSL users
// and intercontinental or modem paths, which is what stretches a server's
// connection lifetimes and interest-set residency.
type RTTBand struct {
	Weight float64
	RTT    core.Duration
}

// DefaultWANMix returns a deterministic wide-area RTT population, roughly the
// shape of late-90s server logs: a fifth of clients nearby, a broad middle,
// and a heavy slow tail.
func DefaultWANMix() []RTTBand {
	return []RTTBand{
		{Weight: 0.20, RTT: 5 * core.Millisecond},   // regional/proxy
		{Weight: 0.35, RTT: 40 * core.Millisecond},  // same-continent
		{Weight: 0.30, RTT: 120 * core.Millisecond}, // intercontinental
		{Weight: 0.15, RTT: 300 * core.Millisecond}, // modem / congested tail
	}
}

// SampleRTT maps u (a uniform variate in [0,1), drawn by the caller from its
// own seeded source so the choice stays deterministic) onto a band of the
// mix. An empty mix returns zero, selecting the network's default RTT.
func SampleRTT(mix []RTTBand, u float64) core.Duration {
	if len(mix) == 0 {
		return 0
	}
	total := 0.0
	for _, b := range mix {
		total += b.Weight
	}
	if total <= 0 {
		return mix[0].RTT
	}
	target := u * total
	acc := 0.0
	for _, b := range mix {
		acc += b.Weight
		if target < acc {
			return b.RTT
		}
	}
	return mix[len(mix)-1].RTT
}
