package netsim

import (
	"errors"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simkernel"
)

// Errors returned by the socket layer, mirroring the errno a real server sees.
var (
	// ErrAgain is accept(2)'s EAGAIN: nothing to return right now, either
	// because the accept queue is empty or because the fault plane injected a
	// spurious failure.
	ErrAgain = errors.New("netsim: resource temporarily unavailable (EAGAIN)")
	// ErrMFile is accept(2)'s EMFILE: the per-process descriptor limit is
	// reached. With the fault plane's FDLimit the pending connection stays on
	// the accept queue (the real syscall fails before touching it), so the
	// reserve-descriptor trick can still drain it.
	ErrMFile = errors.New("netsim: too many open files (EMFILE)")
)

// Listener is the server's listening socket ("port 80"). It implements
// simkernel.File so it can live in the server's descriptor table and be polled
// by any of the event mechanisms: it is readable whenever its accept queue is
// non-empty. Several listeners may share the served port SO_REUSEPORT-style
// (one per prefork worker); the network shards new connections across them
// (Config.Shard).
type Listener struct {
	net     *Network
	owner   *simkernel.Proc // the process that opened the socket (IRQ target)
	backlog int

	acceptQ []*ServerConn
	closed  bool

	notifier simkernel.Notifier

	// Overflows counts SYNs refused because the accept queue was full.
	Overflows int64
}

// Poll implements simkernel.File: POLLIN when a connection is waiting.
func (l *Listener) Poll() core.EventMask {
	if l.closed {
		return core.POLLNVAL
	}
	if len(l.acceptQ) > 0 {
		return core.POLLIN
	}
	return 0
}

// SetNotifier implements simkernel.File.
func (l *Listener) SetNotifier(n simkernel.Notifier) { l.notifier = n }

// Close implements simkernel.File.
func (l *Listener) Close(now core.Time) {
	l.closed = true
	// Connections still in the accept queue are reset.
	for _, c := range l.acceptQ {
		c.resetFromServer(now)
	}
	l.acceptQ = nil
}

// Backlog reports the current accept-queue depth.
func (l *Listener) Backlog() int { return len(l.acceptQ) }

// notify wakes pollers/hints after the queue became non-empty.
func (l *Listener) notify(now core.Time, mask core.EventMask) {
	if l.notifier != nil {
		l.notifier.Notify(now, mask)
	}
}

// deliverSYN is called by the network when a client's SYN reaches the server.
// It reports whether the connection was placed on the accept queue.
func (l *Listener) deliverSYN(now core.Time, conn *ServerConn) bool {
	if l.closed || len(l.acceptQ) >= l.backlog {
		l.Overflows++
		return false
	}
	conn.EstablishedAt = now
	l.acceptQ = append(l.acceptQ, conn)
	if len(l.acceptQ) == 1 {
		l.notify(now, core.POLLIN)
	}
	return true
}

// pop removes the oldest pending connection.
func (l *Listener) pop() (*ServerConn, bool) {
	if len(l.acceptQ) == 0 {
		return nil, false
	}
	c := l.acceptQ[0]
	l.acceptQ = l.acceptQ[1:]
	return c, true
}

// ServerConn is the server-side endpoint of an established connection. It
// implements simkernel.File: readable when request bytes are buffered or the
// peer has closed, writable while open.
type ServerConn struct {
	net   *Network
	ID    int64
	rtt   core.Duration
	peer  *ClientConn
	owner *simkernel.Proc // whose CPU receives this connection's interrupts

	// q is the lane the connection is homed on (its listener owner's lane;
	// the global-queue delegate on a sequential run). It matches the peer
	// ClientConn's home, so both endpoints of a connection execute on one
	// lane.
	q simkernel.Q

	rcvBuf      []byte // request bytes buffered, not yet read by the server
	peerClosed  bool   // client sent FIN
	closedLocal bool   // server closed its end
	resetPeer   bool   // client sent RST (fault plane): reads fail ECONNRESET, writes EPIPE
	accepted    bool

	// sndWindow is the peer's advertised receive window (0 = unlimited, the
	// paper's always-draining clients); sndAvail is how much of it is free.
	// Writes only accept up to sndAvail bytes, POLLOUT is withheld while the
	// window is closed, and window updates from a draining client reopen it.
	sndWindow int
	sndAvail  int

	// lastDeliveryAt is the client-side arrival time of the last response data
	// scheduled, used to keep FIN delivery ordered after the data.
	lastDeliveryAt core.Time

	// EstablishedAt is when the SYN was placed on the accept queue: the
	// anchor for server-side service latency, so that time spent waiting in
	// the backlog counts the same whether a server accepts eagerly (poll
	// loops) or only once request data has arrived (edge-style RT signals).
	EstablishedAt core.Time

	notifier simkernel.Notifier
}

// Poll implements simkernel.File.
func (c *ServerConn) Poll() core.EventMask {
	if c.closedLocal {
		return core.POLLNVAL
	}
	if c.resetPeer {
		// A reset connection reports error + hangup; both read- and
		// write-interested pollers surface it so the server can unwind.
		return core.POLLIN | core.POLLERR | core.POLLHUP
	}
	var m core.EventMask
	if len(c.rcvBuf) > 0 {
		m |= core.POLLIN
	}
	if c.peerClosed {
		m |= core.POLLIN | core.POLLHUP
	}
	if c.sndWindow == 0 || c.sndAvail > 0 {
		m |= core.POLLOUT
	}
	return m
}

// SetNotifier implements simkernel.File.
func (c *ServerConn) SetNotifier(n simkernel.Notifier) { c.notifier = n }

// Close implements simkernel.File. Note that the externally visible FIN is
// scheduled by SockAPI.Close as a deferred batch effect; this only marks local
// state.
func (c *ServerConn) Close(now core.Time) { c.closedLocal = true }

// Buffered reports how many unread request bytes are queued.
func (c *ServerConn) Buffered() int { return len(c.rcvBuf) }

// PeerClosed reports whether the client already sent FIN.
func (c *ServerConn) PeerClosed() bool { return c.peerClosed }

// ResetPeer reports whether the client reset the connection (fault plane).
func (c *ServerConn) ResetPeer() bool { return c.resetPeer }

// Accepted reports whether the server has accepted the connection.
func (c *ServerConn) Accepted() bool { return c.accepted }

// Peer returns the client endpoint (used by tests and the load generator).
func (c *ServerConn) Peer() *ClientConn { return c.peer }

// Transport implements Socket.
func (c *ServerConn) Transport() Transport { return Stream }

// Q implements Socket: the lane the connection is homed on.
func (c *ServerConn) Q() simkernel.Q { return c.q }

// Owner returns the process whose CPU this connection's interrupts are
// steered to (the accepting worker once accepted, its listener's owner before
// that).
func (c *ServerConn) Owner() *simkernel.Proc { return c.owner }

// irqCPU resolves the CPU that receives this connection's interrupts; nil
// selects the kernel's default (CPU 0), the uniprocessor behaviour.
func (c *ServerConn) irqCPU() *simkernel.CPU {
	if c.owner == nil {
		return nil
	}
	return c.owner.CPU()
}

func (c *ServerConn) notify(now core.Time, mask core.EventMask) {
	if c.notifier != nil {
		c.notifier.Notify(now, mask)
	}
}

// deliverData is called by the network when request bytes arrive.
func (c *ServerConn) deliverData(now core.Time, data []byte) {
	if c.closedLocal || len(data) == 0 {
		return
	}
	c.rcvBuf = append(c.rcvBuf, data...)
	c.notify(now, core.POLLIN)
}

// SendWindowAvail reports the free send-window space (-1 for an unlimited
// window), exposed for tests.
func (c *ServerConn) SendWindowAvail() int {
	if c.sndWindow == 0 {
		return -1
	}
	return c.sndAvail
}

// windowOpen is called by the network when a window update arrives: the
// draining peer consumed n bytes. Reopening a fully closed window raises
// POLLOUT, waking any write-interested poller.
func (c *ServerConn) windowOpen(now core.Time, n int) {
	if c.sndWindow == 0 || c.closedLocal {
		return
	}
	was := c.sndAvail
	c.sndAvail += n
	if c.sndAvail > c.sndWindow {
		c.sndAvail = c.sndWindow
	}
	if was == 0 && c.sndAvail > 0 {
		c.notify(now, core.POLLOUT)
	}
}

// deliverRST is called by the network when a client RST arrives (fault
// plane): buffered request bytes are discarded — a reset flushes the receive
// queue — and the connection is marked so the server's next read fails like
// ECONNRESET and its next write like EPIPE.
func (c *ServerConn) deliverRST(now core.Time) {
	if c.closedLocal || c.resetPeer {
		return
	}
	c.resetPeer = true
	c.rcvBuf = nil
	c.notify(now, core.POLLIN|core.POLLERR|core.POLLHUP)
}

// deliverFIN is called by the network when the client's FIN arrives.
func (c *ServerConn) deliverFIN(now core.Time) {
	if c.closedLocal {
		return
	}
	c.peerClosed = true
	c.notify(now, core.POLLIN|core.POLLHUP)
}

// resetFromServer aborts a connection that was never accepted (listener
// closed underneath it).
func (c *ServerConn) resetFromServer(now core.Time) {
	if c.peer != nil {
		c.peer.scheduleReset(now)
	}
}

// SockAPI exposes the socket system calls to a simulated server process. Every
// method charges its CPU cost to the process's current batch (see
// simkernel.Proc.Batch); externally visible effects — transmissions and FINs —
// are deferred to the batch's completion instant.
type SockAPI struct {
	K   *simkernel.Kernel
	P   *simkernel.Proc
	Net *Network

	// EMFILECount counts accepts that failed due to the descriptor limit.
	EMFILECount int64

	// Fault-plane decision streams. The salt is derived from the process name
	// and the sequence counters advance only while the corresponding rate is
	// non-zero, so they are lane-local (one SockAPI per process per lane) and
	// a zero fault config leaves the hot path untouched.
	faultSalt uint64
	acceptSeq uint64
	readSeq   uint64
	writeSeq  uint64
}

// fsalt lazily derives the per-process fault stream salt.
func (a *SockAPI) fsalt() uint64 {
	if a.faultSalt == 0 {
		a.faultSalt = faults.SaltString(a.P.Name)
	}
	return a.faultSalt
}

// NewSockAPI builds the socket interface for process p.
func NewSockAPI(k *simkernel.Kernel, p *simkernel.Proc, net *Network) *SockAPI {
	return &SockAPI{K: k, P: p, Net: net}
}

// Listen creates the listening socket, installs it in the descriptor table and
// registers it with the network so client SYNs can reach it. A second Listen —
// from another worker's SockAPI — joins the SO_REUSEPORT group: the network
// shards new connections across all registered listeners.
func (a *SockAPI) Listen() (*simkernel.FD, *Listener) {
	a.P.ChargeSyscall(a.K.Cost.Accept) // socket+bind+listen lumped together
	l := &Listener{net: a.Net, owner: a.P, backlog: a.Net.Cfg.ListenBacklog}
	fd := a.P.Install(l)
	a.Net.listeners = append(a.Net.listeners, l)
	return fd, l
}

// Accept pops one pending connection from the listener's queue, installing a
// new descriptor for it. It fails with ErrAgain when the queue is empty (or
// the fault plane injected a spurious EAGAIN, leaving the queue untouched) and
// with ErrMFile when a descriptor limit is reached. Under the fault plane's
// FDLimit the pending connection stays queued — the real syscall fails before
// dequeuing — while the network-level MaxServerFDs keeps its historical
// pop-and-reset semantics.
func (a *SockAPI) Accept(lfd *simkernel.FD) (fd *simkernel.FD, conn *ServerConn, err error) {
	a.P.ChargeSyscall(a.K.Cost.Accept)
	l, isListener := lfd.File().(*Listener)
	if !isListener {
		return nil, nil, core.ErrBadFD
	}
	if f := &a.K.Faults; f.AcceptEAGAINRate > 0 {
		a.acceptSeq++
		if f.AcceptEAGAIN(a.fsalt(), a.acceptSeq) {
			return nil, nil, ErrAgain
		}
	}
	if lim := a.K.Faults.FDLimit; lim > 0 && a.P.NumFDs() >= lim {
		a.EMFILECount++
		return nil, nil, ErrMFile
	}
	c, ok := l.pop()
	if !ok {
		return nil, nil, ErrAgain
	}
	if a.Net.Cfg.MaxServerFDs > 0 && a.P.NumFDs() >= a.Net.Cfg.MaxServerFDs {
		a.EMFILECount++
		c.resetFromServer(a.P.Now())
		return nil, nil, ErrMFile
	}
	c.accepted = true
	c.owner = a.P
	a.Net.statsAt(a.P.Q()).Accepted++
	fd = a.P.Install(c)
	return fd, c, nil
}

// AcceptDetach pops one pending connection without installing a descriptor
// for it: the single-acceptor half of a prefork handoff, where the accepting
// worker immediately passes the connection to a sibling over a UNIX-domain
// socket (the sendmsg side is charged here as ConnHandoff). ok is false when
// the queue is empty. The connection's interrupts stay steered to the
// acceptor's CPU until a sibling Adopts it.
func (a *SockAPI) AcceptDetach(lfd *simkernel.FD) (conn *ServerConn, ok bool) {
	a.P.ChargeSyscall(a.K.Cost.Accept)
	l, isListener := lfd.File().(*Listener)
	if !isListener {
		return nil, false
	}
	c, ok := l.pop()
	if !ok {
		return nil, false
	}
	c.accepted = true
	c.owner = a.P
	a.Net.statsAt(a.P.Q()).Accepted++
	a.P.Charge(a.K.Cost.ConnHandoff)
	return c, true
}

// Adopt installs a connection obtained from a sibling's AcceptDetach into this
// process's descriptor table — the recvmsg side of descriptor passing. The
// connection's interrupts are re-steered to the adopting worker's CPU. ok is
// false when the adopting process is out of descriptors (the connection is
// reset, as in Accept).
func (a *SockAPI) Adopt(conn *ServerConn) (fd *simkernel.FD, ok bool) {
	if a.Net.parallel {
		// Adoption moves a connection between processes — and so between
		// lanes — which would split its single-writer home. Handoff-mode
		// prefork is forced onto the sequential engine by the experiment
		// driver; fail loudly if a new caller slips through.
		panic("netsim: Adopt is not supported on a parallelized network")
	}
	a.P.ChargeSyscall(0) // recvmsg collecting the passed descriptor
	if a.Net.Cfg.MaxServerFDs > 0 && a.P.NumFDs() >= a.Net.Cfg.MaxServerFDs {
		a.EMFILECount++
		conn.resetFromServer(a.P.Now())
		return nil, false
	}
	conn.owner = a.P
	return a.P.Install(conn), true
}

// Read consumes up to max buffered request bytes from the connection,
// returning the data read and whether end-of-file (peer FIN with an empty
// buffer) was reached. max <= 0 reads everything buffered.
func (a *SockAPI) Read(fd *simkernel.FD, max int) (data []byte, eof bool) {
	cost := a.K.Cost.SockRead
	if fd.BufferRegistered {
		// Reads into a registered (pre-pinned) buffer skip the user-space
		// copy component; the descriptor-lookup and protocol work remain.
		if cost > a.K.Cost.SockReadCopy {
			cost -= a.K.Cost.SockReadCopy
		} else {
			cost = 0
		}
	}
	a.P.ChargeSyscall(cost)
	conn, isConn := fd.File().(*ServerConn)
	if !isConn || fd.Closed() {
		return nil, true
	}
	if f := &a.K.Faults; f.ReadEAGAINRate > 0 {
		a.readSeq++
		if f.ReadEAGAIN(a.fsalt(), a.readSeq) {
			// Injected spurious EAGAIN: no data, not EOF. The buffered bytes
			// stay queued and the descriptor stays readable, so a
			// level-triggered poller re-reports it and an edge-triggered one
			// already primed on Add retries on the next wakeup.
			return nil, false
		}
	}
	n := len(conn.rcvBuf)
	if max > 0 && max < n {
		n = max
	}
	if n > 0 {
		data = conn.rcvBuf[:n:n]
		conn.rcvBuf = conn.rcvBuf[n:]
	}
	if n == 0 && (conn.peerClosed || conn.resetPeer) {
		// A FIN'd connection drains to EOF; a reset one has had its buffer
		// flushed, so the read fails immediately (ECONNRESET — callers
		// distinguish via ResetPeer).
		eof = true
	}
	return data, eof
}

// Write queues up to n response bytes for transmission to the client,
// returning how many the socket accepted: all n with an unlimited peer window
// (the paper's workload), only what fits in the free window otherwise — the
// partial write a server must retry when POLLOUT returns. The CPU cost of the
// accepted bytes is charged now; they arrive at the client one
// link-transmission plus half an RTT after the batch completes.
func (a *SockAPI) Write(fd *simkernel.FD, n int) int {
	conn, isConn := fd.File().(*ServerConn)
	if !isConn || fd.Closed() || n <= 0 || conn.closedLocal {
		// The kernel still walks the write path before failing the call.
		a.P.ChargeSyscall(a.K.Cost.WriteCost(n))
		return 0
	}
	if conn.resetPeer {
		// EPIPE: the kernel fails the call before copying any bytes.
		a.P.ChargeSyscall(a.K.Cost.WriteCost(0))
		return 0
	}
	if f := &a.K.Faults; f.WriteEAGAINRate > 0 {
		a.writeSeq++
		if f.WriteEAGAIN(a.fsalt(), a.writeSeq) {
			// Injected spurious EAGAIN, priced like the real failed call.
			a.P.ChargeSyscall(a.K.Cost.WriteCost(0))
			return 0
		}
	}
	accepted := n
	if conn.sndWindow > 0 {
		if accepted > conn.sndAvail {
			accepted = conn.sndAvail
		}
		conn.sndAvail -= accepted
	}
	a.P.ChargeSyscall(a.K.Cost.WriteCost(accepted))
	if accepted <= 0 {
		return 0 // window closed: EAGAIN
	}
	a.Net.defer_(a.P, evtXmit, conn, accepted)
	return accepted
}

// Writev queues head+body response bytes for transmission as one vectored
// write, returning how many bytes the socket accepted. The two iovecs
// coalesce into a single syscall: the charge is exactly Write(head+body) —
// one kernel entry, one copy/checksum pass over the total — which is why a
// server assembling header and body separately still pays the single-write
// cost the historical combined-buffer path charged.
func (a *SockAPI) Writev(fd *simkernel.FD, head, body int) int {
	return a.Write(fd, head+body)
}

// Sendfile queues n response-body bytes for zero-copy transmission, returning
// how many the socket accepted. It follows Write's window semantics exactly,
// but the accepted bytes are charged at the sendfile rate: the write path
// minus the user-space copy (the bytes go from the page cache straight to the
// device) plus a per-page wiring charge — the transmit-side mirror of the
// registered-buffer read discount.
func (a *SockAPI) Sendfile(fd *simkernel.FD, n int) int {
	conn, isConn := fd.File().(*ServerConn)
	if !isConn || fd.Closed() || n <= 0 || conn.closedLocal {
		a.P.ChargeSyscall(a.K.Cost.SendfileCost(n))
		return 0
	}
	if conn.resetPeer {
		a.P.ChargeSyscall(a.K.Cost.SendfileCost(0))
		return 0
	}
	if f := &a.K.Faults; f.WriteEAGAINRate > 0 {
		a.writeSeq++
		if f.WriteEAGAIN(a.fsalt(), a.writeSeq) {
			a.P.ChargeSyscall(a.K.Cost.SendfileCost(0))
			return 0
		}
	}
	accepted := n
	if conn.sndWindow > 0 {
		if accepted > conn.sndAvail {
			accepted = conn.sndAvail
		}
		conn.sndAvail -= accepted
	}
	a.P.ChargeSyscall(a.K.Cost.SendfileCost(accepted))
	if accepted <= 0 {
		return 0 // window closed: EAGAIN
	}
	a.Net.defer_(a.P, evtXmit, conn, accepted)
	return accepted
}

// Close releases the descriptor and sends a FIN to the client after the
// current batch completes. For HTTP/1.0 the server closes every connection
// after writing the response, so the FIN is what lets the client measure the
// connection as complete.
func (a *SockAPI) Close(fd *simkernel.FD) {
	a.P.ChargeSyscall(a.K.Cost.SockClose)
	conn, isConn := fd.File().(*ServerConn)
	_ = a.P.CloseFD(a.P.Now(), fd.Num)
	if !isConn {
		return
	}
	if conn.resetPeer {
		// The peer already tore the connection down; there is no one to FIN.
		return
	}
	a.Net.defer_(a.P, evtSrvClose, conn, 0)
}

// Fcntl models fcntl() calls such as F_SETSIG/F_SETOWN/O_ASYNC, charging their
// cost; the RT-signal mechanism calls it when registering descriptors.
func (a *SockAPI) Fcntl(fd *simkernel.FD) {
	a.P.ChargeSyscall(a.K.Cost.FcntlSetSig)
}
