package netsim

// Tests for multi-listener accept sharding (SO_REUSEPORT-style), the
// round-robin policy, IRQ steering to the owning worker's CPU, and the
// AcceptDetach/Adopt descriptor-passing primitives behind the prefork
// server's single-acceptor mode.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// smpTestbed builds an n-CPU kernel with one listening worker per CPU.
func smpTestbed(t *testing.T, n int, shard ShardPolicy) (*simkernel.Kernel, *Network, []*SockAPI, []*simkernel.FD, []*Listener) {
	t.Helper()
	k := simkernel.NewKernelSMP(nil, n)
	cfg := DefaultConfig()
	cfg.Shard = shard
	net := New(k, cfg)
	apis := make([]*SockAPI, n)
	lfds := make([]*simkernel.FD, n)
	ls := make([]*Listener, n)
	for i := 0; i < n; i++ {
		p := k.NewProcOn("worker", k.Sched.CPU(i))
		apis[i] = NewSockAPI(k, p, net)
		i := i
		p.Batch(k.Now(), func() { lfds[i], ls[i] = apis[i].Listen() }, nil)
	}
	k.Sim.Run()
	return k, net, apis, lfds, ls
}

func connectN(k *simkernel.Kernel, net *Network, count int) {
	for i := 0; i < count; i++ {
		net.ConnectWith(k.Now().Add(core.Duration(i)*core.Millisecond), ConnectOptions{}, &testHooks{})
	}
	k.Sim.Run()
}

func TestShardHashSpreadsAcrossListeners(t *testing.T) {
	k, net, _, _, ls := smpTestbed(t, 4, ShardHash)
	if len(net.Listeners()) != 4 {
		t.Fatalf("listeners = %d", len(net.Listeners()))
	}
	connectN(k, net, 64)
	total := 0
	for i, l := range ls {
		if l.Backlog() == 0 {
			t.Fatalf("listener %d received no connections", i)
		}
		total += l.Backlog()
	}
	if total != 64 {
		t.Fatalf("total backlog = %d, want 64", total)
	}
}

func TestShardRoundRobinDealsEvenly(t *testing.T) {
	k, net, _, _, ls := smpTestbed(t, 4, ShardRoundRobin)
	connectN(k, net, 64)
	for i, l := range ls {
		if l.Backlog() != 16 {
			t.Fatalf("listener %d backlog = %d, want 16", i, l.Backlog())
		}
	}
}

// A single listener must behave exactly as the paper's topology regardless of
// the configured policy.
func TestSingleListenerIgnoresPolicy(t *testing.T) {
	k, net, _, _, ls := smpTestbed(t, 1, ShardRoundRobin)
	connectN(k, net, 10)
	if ls[0].Backlog() != 10 {
		t.Fatalf("backlog = %d, want 10", ls[0].Backlog())
	}
}

// SYN interrupts are steered to the CPU of the worker whose accept queue
// receives the connection, not funnelled through CPU 0.
func TestIRQSteeringFollowsSharding(t *testing.T) {
	k, net, _, _, _ := smpTestbed(t, 2, ShardRoundRobin)
	jobs0 := k.Sched.CPU(0).Jobs
	jobs1 := k.Sched.CPU(1).Jobs
	connectN(k, net, 8)
	if d := k.Sched.CPU(0).Jobs - jobs0; d != 4 {
		t.Fatalf("CPU 0 took %d SYN interrupts, want 4", d)
	}
	if d := k.Sched.CPU(1).Jobs - jobs1; d != 4 {
		t.Fatalf("CPU 1 took %d SYN interrupts, want 4", d)
	}
}

func TestAcceptDetachAndAdopt(t *testing.T) {
	k, net, apis, lfds, _ := smpTestbed(t, 2, ShardHash)
	var conn *ClientConn
	conn = net.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{
		OnConnected: func(now core.Time) { conn.Send(now, []byte("GET / HTTP/1.0\r\n\r\n")) },
	})
	k.Sim.Run()

	// The hash picked a listener; detach from whichever holds the connection.
	acceptor := 0
	if net.Listeners()[1].Backlog() == 1 {
		acceptor = 1
	}
	adopter := 1 - acceptor

	var sc *ServerConn
	apis[acceptor].P.Batch(k.Now(), func() {
		var ok bool
		sc, ok = apis[acceptor].AcceptDetach(lfds[acceptor])
		if !ok {
			t.Fatal("AcceptDetach found no pending connection")
		}
	}, nil)
	k.Sim.Run()
	if !sc.Accepted() || sc.Owner() != apis[acceptor].P {
		t.Fatal("detached connection not owned by the acceptor")
	}
	if apis[acceptor].P.NumFDs() != 1 { // just the listener
		t.Fatalf("AcceptDetach must not install a descriptor: %d fds", apis[acceptor].P.NumFDs())
	}

	var fd *simkernel.FD
	apis[adopter].P.Batch(k.Now(), func() {
		var ok bool
		fd, ok = apis[adopter].Adopt(sc)
		if !ok {
			t.Fatal("Adopt failed")
		}
	}, nil)
	k.Sim.Run()
	if fd == nil || fd.Proc != apis[adopter].P {
		t.Fatal("adopted descriptor not in the adopter's table")
	}
	if sc.Owner() != apis[adopter].P {
		t.Fatal("adoption did not re-steer the connection's interrupts")
	}
	// The request bytes that arrived in between are waiting on the connection.
	apis[adopter].P.Batch(k.Now(), func() {
		data, _ := apis[adopter].Read(fd, 0)
		if len(data) == 0 {
			t.Fatal("request data lost across the handoff")
		}
	}, nil)
	k.Sim.Run()
}

func TestAdoptRespectsDescriptorLimit(t *testing.T) {
	k := simkernel.NewKernelSMP(nil, 1)
	cfg := DefaultConfig()
	cfg.MaxServerFDs = 1
	net := New(k, cfg)
	p := k.NewProc("server")
	api := NewSockAPI(k, p, net)
	var lfd *simkernel.FD
	p.Batch(0, func() { lfd, _ = api.Listen() }, nil)
	k.Sim.Run()

	net.ConnectWith(k.Now(), ConnectOptions{}, &testHooks{})
	k.Sim.Run()

	p.Batch(k.Now(), func() {
		sc, ok := api.AcceptDetach(lfd)
		if !ok {
			t.Fatal("no pending connection")
		}
		if _, ok := api.Adopt(sc); ok {
			t.Fatal("Adopt should fail at the descriptor limit")
		}
		if api.EMFILECount != 1 {
			t.Fatalf("EMFILECount = %d", api.EMFILECount)
		}
	}, nil)
	k.Sim.Run()
}
