package eventlib_test

// Tests for the hard edges of the event API: timer-only dispatch, deleting an
// event from inside a callback, priority starvation ordering, re-adding a
// one-shot event, close-while-pending, and the interest bookkeeping behind
// Activate/MirrorInterest that the dual-mechanism servers rely on.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/eventlib"
	"repro/internal/rtsig"
	"repro/internal/simtest"
	"repro/internal/stockpoll"
)

// fire records one callback invocation.
type fire struct {
	fd   int
	what eventlib.What
	at   core.Time
}

// recorder collects callback invocations tagged with a label.
type recorder struct {
	fires  []fire
	labels []string
}

func (r *recorder) cb(label string) eventlib.Callback {
	return func(fd int, what eventlib.What, now core.Time) {
		r.fires = append(r.fires, fire{fd: fd, what: what, at: now})
		r.labels = append(r.labels, label)
	}
}

func TestBackendRegistry(t *testing.T) {
	names := eventlib.BackendNames()
	if len(names) < 4 || names[0] != "epoll" || names[len(names)-1] != "poll" {
		t.Fatalf("backend preference order = %v", names)
	}
	for _, want := range []string{"epoll", "epoll-et", "devpoll", "rtsig", "poll"} {
		if _, ok := eventlib.Lookup(want); !ok {
			t.Fatalf("backend %q not registered", want)
		}
	}
	if b, ok := eventlib.Lookup(""); !ok || b.Name != "epoll" {
		t.Fatalf("empty name should select the preferred backend, got %+v ok=%v", b, ok)
	}
	if _, ok := eventlib.Lookup("kqueue"); ok {
		t.Fatal("kqueue should not be registered")
	}
	err := eventlib.UnknownBackendError("kqueue")
	if err == nil || !strings.Contains(err.Error(), "choices") || !strings.Contains(err.Error(), "devpoll") {
		t.Fatalf("listed-choices error = %v", err)
	}
	rb, ok := eventlib.Lookup("rtsig")
	if !ok || !rb.EdgeStyle {
		t.Fatalf("rtsig backend should be edge-style: %+v", rb)
	}

	env := simtest.NewEnv()
	for _, name := range names {
		p, b, err := eventlib.OpenBackend(env.K, env.P, name)
		if err != nil {
			t.Fatalf("OpenBackend(%s): %v", name, err)
		}
		if b.Name != name {
			t.Fatalf("OpenBackend(%s) metadata = %+v", name, b)
		}
		if p.Name() != name {
			t.Fatalf("backend %q opened poller %q", name, p.Name())
		}
	}
	if _, _, err := eventlib.OpenBackend(env.K, env.P, "kqueue"); err == nil {
		t.Fatal("OpenBackend(kqueue) should fail")
	}
}

func TestNewUsesRegistryAndOwnsPoller(t *testing.T) {
	env := simtest.NewEnv()
	base, err := eventlib.New(env.K, env.P, eventlib.Config{Backend: "devpoll"})
	if err != nil {
		t.Fatal(err)
	}
	if base.Poller().Name() != "devpoll" {
		t.Fatalf("poller = %s", base.Poller().Name())
	}
	if base.Backend().Name != "devpoll" {
		t.Fatalf("backend metadata = %+v", base.Backend())
	}
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	// The base owned the poller, so Close closed it too.
	if err := base.Poller().Add(3, core.POLLIN); err != core.ErrClosed {
		t.Fatalf("owned poller after base Close: Add = %v, want ErrClosed", err)
	}
	if err := base.Close(); err != core.ErrClosed {
		t.Fatalf("double Close = %v", err)
	}

	if _, err := eventlib.New(env.K, env.P, eventlib.Config{Backend: "kqueue"}); err == nil {
		t.Fatal("New with an unknown backend should fail")
	}
}

func TestTimerOnlyDispatch(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{})

	var rec recorder
	oneShot := base.NewTimer(0, rec.cb("once"))
	if err := oneShot.Add(5 * core.Millisecond); err != nil {
		t.Fatal(err)
	}
	periodic := base.NewTimer(eventlib.EvPersist, rec.cb("tick"))
	if err := periodic.Add(10 * core.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A pure timer without a timeout is meaningless.
	if err := base.NewTimer(0, rec.cb("bad")).Add(0); err == nil {
		t.Fatal("pure timer with no timeout should fail to Add")
	}

	base.Dispatch()
	env.K.Sim.At(core.Time(35*core.Millisecond), func(core.Time) {
		_ = periodic.Del()
		base.Stop()
	})
	env.Run()

	var ticks []core.Time
	for i, f := range rec.fires {
		if !f.what.Has(eventlib.EvTimeout) {
			t.Fatalf("fire %d what = %v", i, f.what)
		}
		if rec.labels[i] == "tick" {
			ticks = append(ticks, f.at)
		}
	}
	if rec.labels[0] != "once" || rec.fires[0].at < core.Time(5*core.Millisecond) {
		t.Fatalf("one-shot timer: %v %v", rec.labels, rec.fires)
	}
	if oneShot.Pending() {
		t.Fatal("one-shot timer still pending after firing")
	}
	// The periodic timer re-armed itself every 10 ms: 10, 20, 30.
	if len(ticks) != 3 {
		t.Fatalf("periodic ticks = %v", ticks)
	}
	for i, at := range ticks {
		want := core.Time(core.Duration(i+1) * 10 * core.Millisecond)
		if at < want || at > want.Add(core.Millisecond) {
			t.Fatalf("tick %d at %v, want ~%v", i, at, want)
		}
	}
	if base.Running() {
		t.Fatal("loop still running after Stop")
	}
}

func TestDispatchExitsWhenNothingRemains(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{})
	var rec recorder
	if err := base.NewTimer(0, rec.cb("once")).Add(core.Millisecond); err != nil {
		t.Fatal(err)
	}
	base.Dispatch()
	env.Run()
	if len(rec.fires) != 1 {
		t.Fatalf("fires = %d", len(rec.fires))
	}
	if base.Running() {
		t.Fatal("dispatch should exit once no events remain")
	}
	// The loop can be restarted.
	if err := base.NewTimer(0, rec.cb("again")).Add(core.Millisecond); err != nil {
		t.Fatal(err)
	}
	base.Dispatch()
	env.Run()
	if len(rec.fires) != 2 {
		t.Fatalf("fires after restart = %d", len(rec.fires))
	}
}

func TestDelFromInsideCallback(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{})

	fdA, fileA := env.NewFD(0)
	fdB, fileB := env.NewFD(0)
	var rec recorder
	var evA, evB *eventlib.Event
	evA = base.NewEvent(fdA.Num, eventlib.EvRead|eventlib.EvPersist, func(fd int, what eventlib.What, now core.Time) {
		rec.cb("A")(fd, what, now)
		// Deleting a sibling activated in the same batch must prevent its
		// callback from running.
		_ = evB.Del()
		_ = evA.Del()
		base.Stop()
	})
	evB = base.NewEvent(fdB.Num, eventlib.EvRead|eventlib.EvPersist, rec.cb("B"))
	if err := evA.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := evB.Add(0); err != nil {
		t.Fatal(err)
	}
	// Both become readable before the scan, so both activate in one batch, in
	// registration order.
	fileA.ReadyMask = core.POLLIN
	fileB.ReadyMask = core.POLLIN
	base.Dispatch()
	env.Run()

	if len(rec.fires) != 1 || rec.labels[0] != "A" {
		t.Fatalf("fires = %v (labels %v), want only A", rec.fires, rec.labels)
	}
	if evB.Pending() || base.Poller().Interested(fdB.Num) {
		t.Fatal("B still registered after Del")
	}
	if fdB.Watchers() != 0 {
		t.Fatalf("watchers leaked on B: %d", fdB.Watchers())
	}
}

func TestReAddOneShot(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{})

	fd, file := env.NewFD(core.POLLIN)
	var fires int
	var ev *eventlib.Event
	ev = base.NewEvent(fd.Num, eventlib.EvRead, func(_ int, what eventlib.What, _ core.Time) {
		if !what.Has(eventlib.EvRead) {
			t.Fatalf("what = %v", what)
		}
		fires++
		// A one-shot event is deleted before its callback runs…
		if ev.Pending() || base.Poller().Interested(fd.Num) {
			t.Fatal("one-shot event still registered inside its callback")
		}
		if fires < 3 {
			// …so the callback may re-add it, as in libevent.
			if err := ev.Add(0); err != nil {
				t.Fatal(err)
			}
		} else {
			base.Stop()
		}
	})
	if err := ev.Add(0); err != nil {
		t.Fatal(err)
	}
	_ = file
	base.Dispatch()
	env.Run()

	if fires != 3 {
		t.Fatalf("fires = %d, want 3 (one per re-add)", fires)
	}
	if ev.Pending() {
		t.Fatal("event pending after final fire without re-add")
	}
}

func TestPriorityStarvationOrdering(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{Priorities: 3})

	// Three permanently readable descriptors at priorities 0, 1 and 2. Each
	// iteration drains only the highest-priority non-empty bucket, so as long
	// as the priority-0 event keeps firing the others starve; deleting it lets
	// the next bucket through, in priority order.
	var rec recorder
	evs := make([]*eventlib.Event, 3)
	fires := 0
	policy := func() {
		fires++
		switch fires {
		case 5:
			_ = evs[0].Del()
		case 7:
			_ = evs[1].Del()
		case 8:
			base.Stop()
		}
	}
	// Register in the order low, high, mid so dispatch order is decided by
	// priority, not registration.
	for i, pri := range []int{2, 0, 1} {
		fd, _ := env.NewFD(core.POLLIN)
		label := []string{"low", "high", "mid"}[i]
		ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, func(fd int, what eventlib.What, now core.Time) {
			rec.cb(label)(fd, what, now)
			policy()
		})
		if err := ev.SetPriority(pri); err != nil {
			t.Fatal(err)
		}
		if err := ev.Add(0); err != nil {
			t.Fatal(err)
		}
		evs[pri] = ev
	}
	if err := evs[0].SetPriority(5); err == nil {
		t.Fatal("out-of-range priority should fail")
	}

	base.Dispatch()
	env.Run()

	want := []string{"high", "high", "high", "high", "high", "mid", "mid", "low"}
	if len(rec.labels) != len(want) {
		t.Fatalf("labels = %v, want %v", rec.labels, want)
	}
	for i := range want {
		if rec.labels[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", rec.labels, want)
		}
	}
}

func TestCloseWhileWaitPending(t *testing.T) {
	env := simtest.NewEnv()
	base, err := eventlib.New(env.K, env.P, eventlib.Config{Backend: "poll"})
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := env.NewFD(0) // never becomes ready
	var rec recorder
	ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, rec.cb("never"))
	if err := ev.Add(0); err != nil {
		t.Fatal(err)
	}
	base.Dispatch()
	env.K.Sim.At(core.Time(core.Millisecond), func(core.Time) {
		if err := base.Close(); err != nil {
			t.Errorf("Close while pending: %v", err)
		}
	})
	env.Run()

	if len(rec.fires) != 0 {
		t.Fatalf("callback ran despite close: %v", rec.fires)
	}
	if base.Running() {
		t.Fatal("loop still running after Close")
	}
	if ev.Pending() {
		t.Fatal("event survived Close")
	}
	if fd.Watchers() != 0 {
		t.Fatalf("watchers leaked: %d", fd.Watchers())
	}
}

func TestPersistentTimeoutRearmsAfterActivity(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{})
	fd, file := env.NewFD(0)
	var rec recorder
	ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, func(f int, what eventlib.What, now core.Time) {
		rec.cb("ev")(f, what, now)
		if what.Has(eventlib.EvRead) {
			file.ReadyMask = 0 // drain, so the next firing is a timeout
		}
		if len(rec.fires) == 3 {
			base.Stop()
		}
	})
	if err := ev.Add(10 * core.Millisecond); err != nil {
		t.Fatal(err)
	}
	base.Dispatch()
	// Readiness at 4 ms beats the 10 ms timeout…
	env.K.Sim.At(core.Time(4*core.Millisecond), func(now core.Time) {
		file.SetReady(now, core.POLLIN)
	})
	env.Run()

	if len(rec.fires) != 3 {
		t.Fatalf("fires = %v", rec.fires)
	}
	if !rec.fires[0].what.Has(eventlib.EvRead) || rec.fires[0].at < core.Time(4*core.Millisecond) {
		t.Fatalf("first fire = %+v, want EvRead at ~4ms", rec.fires[0])
	}
	// …and the persistent timeout re-arms from the activity, so the next two
	// firings are timeouts ~10 ms apart.
	for i := 1; i < 3; i++ {
		if !rec.fires[i].what.Has(eventlib.EvTimeout) {
			t.Fatalf("fire %d = %+v, want EvTimeout", i, rec.fires[i])
		}
		gap := rec.fires[i].at.Sub(rec.fires[i-1].at)
		if gap < 9*core.Millisecond || gap > 12*core.Millisecond {
			t.Fatalf("timeout gap %d = %v, want ~10ms", i, gap)
		}
	}
}

func TestMirrorInterestAndActivate(t *testing.T) {
	env := simtest.NewEnv()
	primary := rtsig.New(env.K, env.P, rtsig.DefaultOptions())
	mirror := devpoll.Open(env.K, env.P, devpoll.DefaultOptions())
	base := eventlib.NewWithPoller(env.K, env.P, primary, eventlib.Config{MirrorInterest: true})
	base.AttachPoller(mirror)

	fd, _ := env.NewFD(0)
	ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, func(int, eventlib.What, core.Time) {})
	if err := ev.Add(0); err != nil {
		t.Fatal(err)
	}
	if !primary.Interested(fd.Num) || !mirror.Interested(fd.Num) {
		t.Fatal("MirrorInterest should register on both pollers")
	}
	if err := base.Activate(mirror, false); err != nil {
		t.Fatal(err)
	}
	if base.Poller() != mirror {
		t.Fatal("Activate did not switch the wait target")
	}
	if err := base.Activate(stockpoll.New(env.K, env.P), false); err == nil {
		t.Fatal("Activate of an unattached poller should fail")
	}
	if err := ev.Del(); err != nil {
		t.Fatal(err)
	}
	if primary.Interested(fd.Num) || mirror.Interested(fd.Num) {
		t.Fatal("Del should remove the interest from both pollers")
	}
}

func TestActivateReregisters(t *testing.T) {
	env := simtest.NewEnv()
	primary := rtsig.New(env.K, env.P, rtsig.DefaultOptions())
	sibling := stockpoll.New(env.K, env.P)
	base := eventlib.NewWithPoller(env.K, env.P, primary, eventlib.Config{})
	base.AttachPoller(sibling)

	var fds []int
	for i := 0; i < 3; i++ {
		fd, _ := env.NewFD(0)
		ev := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, func(int, eventlib.What, core.Time) {})
		if err := ev.Add(0); err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd.Num)
	}
	if sibling.Len() != 0 {
		t.Fatal("sibling gained interests without MirrorInterest")
	}
	// phhttpd's overflow recovery: rebuild the sibling's interest set from the
	// pending events, then wait on it.
	if err := base.Activate(sibling, true); err != nil {
		t.Fatal(err)
	}
	for _, fd := range fds {
		if !sibling.Interested(fd) {
			t.Fatalf("fd %d not re-registered on the sibling", fd)
		}
	}
	// Interests registered before the switch linger on the old mechanism (as
	// phhttpd leaves its F_SETSIG registrations behind); Del cleans up both.
	if primary.Len() != 3 {
		t.Fatalf("primary interests = %d", primary.Len())
	}
}

func TestDuplicateEventPerDescriptorRejected(t *testing.T) {
	env := simtest.NewEnv()
	base := eventlib.NewWithPoller(env.K, env.P, stockpoll.New(env.K, env.P), eventlib.Config{})
	fd, _ := env.NewFD(0)
	a := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, func(int, eventlib.What, core.Time) {})
	b := base.NewEvent(fd.Num, eventlib.EvRead|eventlib.EvPersist, func(int, eventlib.What, core.Time) {})
	if err := a.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(0); err == nil {
		t.Fatal("second event on the same descriptor should fail to Add")
	}
	// Re-adding the same handle is fine (it re-arms the timeout).
	if err := a.Add(core.Second); err != nil {
		t.Fatal(err)
	}
}

func TestWhatString(t *testing.T) {
	w := eventlib.EvRead | eventlib.EvPersist
	if s := w.String(); !strings.Contains(s, "READ") || !strings.Contains(s, "PERSIST") {
		t.Fatalf("What.String = %q", s)
	}
	if eventlib.What(0).String() != "0" {
		t.Fatal("zero What should render as 0")
	}
}
