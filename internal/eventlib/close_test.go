package eventlib

// White-box test for Base.Close's timer teardown. The loop used to read the
// heap head and call Del, trusting Del to remove that exact element; progress
// depended on an invariant Del does not promise (it early-returns for events
// it considers not pending). The teardown now pops the head unconditionally,
// so no state an event can reach — today's or a future Del early-return — can
// turn Close into an infinite loop.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simkernel"
)

func closeTestBase(t *testing.T) *Base {
	t.Helper()
	k := simkernel.NewKernel(nil)
	p := k.NewProc("close-test")
	b, err := New(k, p, Config{Backend: "poll"})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCloseDrainsTimerHeap(t *testing.T) {
	b := closeTestBase(t)
	var evs []*Event
	for i := 0; i < 5; i++ {
		ev := b.NewTimer(EvPersist, func(int, What, core.Time) {})
		if err := ev.Add(core.Duration(i+1) * core.Second); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if b.timers.Len() != 0 {
		t.Fatalf("timer heap not drained: %d left", b.timers.Len())
	}
	for i, ev := range evs {
		if ev.Pending() || ev.timerArmed() {
			t.Fatalf("timer %d still armed after Close (pending=%v armed=%v)", i, ev.Pending(), ev.timerArmed())
		}
	}
}

// TestCloseTerminatesWhenDelWouldNoOp forces the exact hazard: a heaped timer
// whose added flag is already false makes Del a pure no-op, so a teardown
// relying on Del for heap progress would spin forever. The unconditional pop
// must still terminate and empty the heap.
func TestCloseTerminatesWhenDelWouldNoOp(t *testing.T) {
	b := closeTestBase(t)
	ev := b.NewTimer(EvPersist, func(int, What, core.Time) {})
	if err := ev.Add(core.Second); err != nil {
		t.Fatal(err)
	}
	// Simulate the state a future Del early-return could leave behind: the
	// event sits in the heap but Del will refuse to touch it.
	ev.added = false

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.Close()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not terminate with a no-op Del event on the heap")
	}
	if b.timers.Len() != 0 {
		t.Fatalf("timer heap not drained: %d left", b.timers.Len())
	}
}
