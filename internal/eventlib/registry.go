package eventlib

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/epoll"
	"repro/internal/rtsig"
	"repro/internal/simkernel"
	"repro/internal/stockpoll"
)

// Backend describes one registered event-notification mechanism: how to
// construct it and the delivery quirks a generic consumer must know about.
type Backend struct {
	// Name is the registry key ("epoll", "devpoll", "rtsig", "poll", ...).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Open constructs a fresh poller instance with the backend's default
	// options.
	Open func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller
	// EdgeStyle marks transition-driven backends: readiness that existed
	// before interest was registered is never reported, so a server must
	// perform one unprompted read on each freshly accepted descriptor (the
	// paper's RT-signal servers do exactly this).
	EdgeStyle bool
}

// backends holds the registry in preference order: the mechanism history
// converged on first, the paper's extension, the paper's asynchronous
// mechanism, the baseline last.
var backends = []Backend{
	{
		Name:        "epoll",
		Description: "epoll, level-triggered (the mechanism Linux adopted)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return epoll.Open(k, p, epoll.DefaultOptions())
		},
	},
	{
		Name:        "epoll-et",
		Description: "epoll, edge-triggered (EPOLLET on every descriptor)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			opts := epoll.DefaultOptions()
			opts.EdgeTriggered = true
			return epoll.Open(k, p, opts)
		},
	},
	{
		Name:        "devpoll",
		Description: "/dev/poll with driver hints and the mmap result area (the paper's §3)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return devpoll.Open(k, p, devpoll.DefaultOptions())
		},
	},
	{
		Name:        "rtsig",
		Description: "POSIX RT signal queue, one siginfo per sigwaitinfo (the paper's §2)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return rtsig.New(k, p, rtsig.DefaultOptions())
		},
		EdgeStyle: true,
	},
	{
		Name:        "poll",
		Description: "stock poll(), the paper's baseline",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return stockpoll.New(k, p)
		},
	},
}

// Backends returns the registered backends in preference order (epoll first,
// stock poll last). The slice is a copy; mutate freely.
func Backends() []Backend {
	out := make([]Backend, len(backends))
	copy(out, backends)
	return out
}

// BackendNames returns the registered names in preference order.
func BackendNames() []string {
	out := make([]string, len(backends))
	for i, b := range backends {
		out[i] = b.Name
	}
	return out
}

// Register appends a backend to the registry (lowest preference). It replaces
// an existing backend with the same name in place, preserving its preference
// rank.
func Register(b Backend) {
	for i, existing := range backends {
		if existing.Name == b.Name {
			backends[i] = b
			return
		}
	}
	backends = append(backends, b)
}

// Lookup finds a backend by name; the empty name selects the
// highest-preference backend.
func Lookup(name string) (Backend, bool) {
	if name == "" {
		return backends[0], true
	}
	for _, b := range backends {
		if b.Name == name {
			return b, true
		}
	}
	return Backend{}, false
}

// UnknownBackendError is the single source of the listed-choices error for a
// backend name that is not registered.
func UnknownBackendError(name string) error {
	return fmt.Errorf("eventlib: unknown backend %q (choices: %s)",
		name, strings.Join(BackendNames(), ", "))
}

// OpenBackend constructs the named backend's poller, with the listed-choices
// error for unknown names.
func OpenBackend(k *simkernel.Kernel, p *simkernel.Proc, name string) (core.Poller, Backend, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, Backend{}, UnknownBackendError(name)
	}
	return b.Open(k, p), b, nil
}
