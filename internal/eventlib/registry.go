package eventlib

import (
	"fmt"
	"strings"

	"repro/internal/compio"
	"repro/internal/core"
	"repro/internal/devpoll"
	"repro/internal/epoll"
	"repro/internal/rtsig"
	"repro/internal/simkernel"
	"repro/internal/stockpoll"
)

// Backend describes one registered event-notification mechanism: how to
// construct it and the delivery quirks a generic consumer must know about.
type Backend struct {
	// Name is the registry key ("epoll", "devpoll", "rtsig", "poll", ...).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Open constructs a fresh poller instance with the backend's default
	// options.
	Open func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller
	// EdgeStyle marks transition-driven backends: readiness that existed
	// before interest was registered is never reported, so a server must
	// perform one unprompted read on each freshly accepted descriptor (the
	// paper's RT-signal servers do exactly this).
	EdgeStyle bool
	// Completion marks completion-substrate backends (shared-ring delivery,
	// batched submission) as opposed to readiness-substrate ones. Purely
	// informational — both shapes implement the same Poller contract — but
	// listings print it so the mechanisms can be told apart.
	Completion bool
}

// DeliveryStyle renders the backend's delivery semantics for listings:
// completion vs readiness substrate, edge- vs level-shaped reporting.
func (b Backend) DeliveryStyle() string {
	substrate := "readiness"
	if b.Completion {
		substrate = "completion"
	}
	edge := "level"
	if b.EdgeStyle {
		edge = "edge"
	}
	return substrate + "/" + edge
}

// backends holds the registry in preference order: the mechanism history
// converged on first, the paper's extension, the paper's asynchronous
// mechanism, the baseline last.
var backends = []Backend{
	{
		Name:        "epoll",
		Description: "epoll, level-triggered (the mechanism Linux adopted)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return epoll.Open(k, p, epoll.DefaultOptions())
		},
	},
	{
		Name:        "epoll-et",
		Description: "epoll, edge-triggered (EPOLLET; registration primes readiness, so the consumer contract stays level-shaped)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			opts := epoll.DefaultOptions()
			opts.EdgeTriggered = true
			return epoll.Open(k, p, opts)
		},
	},
	{
		Name:        "compio",
		Description: "completion rings, io_uring-shaped: batched submission, registered buffers",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return compio.Open(k, p, compio.DefaultOptions())
		},
		// Registration primes current readiness into the CQ, so no unprompted
		// reads are needed even though delivery is transition-shaped.
		Completion: true,
	},
	{
		Name:        "devpoll",
		Description: "/dev/poll with driver hints and the mmap result area (the paper's §3)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return devpoll.Open(k, p, devpoll.DefaultOptions())
		},
	},
	{
		Name:        "rtsig",
		Description: "POSIX RT signal queue, one siginfo per sigwaitinfo (the paper's §2)",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return rtsig.New(k, p, rtsig.DefaultOptions())
		},
		EdgeStyle: true,
	},
	{
		Name:        "poll",
		Description: "stock poll(), the paper's baseline",
		Open: func(k *simkernel.Kernel, p *simkernel.Proc) core.Poller {
			return stockpoll.New(k, p)
		},
	},
}

// Backends returns the registered backends in preference order (epoll first,
// stock poll last). The slice is a copy; mutate freely.
func Backends() []Backend {
	out := make([]Backend, len(backends))
	copy(out, backends)
	return out
}

// BackendNames returns the registered names in preference order.
func BackendNames() []string {
	out := make([]string, len(backends))
	for i, b := range backends {
		out[i] = b.Name
	}
	return out
}

// Register appends a backend to the registry (lowest preference). It replaces
// an existing backend with the same name in place, preserving its preference
// rank.
func Register(b Backend) {
	for i, existing := range backends {
		if existing.Name == b.Name {
			backends[i] = b
			return
		}
	}
	backends = append(backends, b)
}

// Lookup finds a backend by name; the empty name selects the
// highest-preference backend.
func Lookup(name string) (Backend, bool) {
	if name == "" {
		return backends[0], true
	}
	for _, b := range backends {
		if b.Name == name {
			return b, true
		}
	}
	return Backend{}, false
}

// DescribeBackends renders one line per registered backend — name, delivery
// style, description — for listings and the listed-choices error, so the
// mechanisms can be told apart without reading DESIGN.md.
func DescribeBackends(indent string) string {
	var sb strings.Builder
	for i, b := range backends {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s%-10s %-17s %s", indent, b.Name,
			"["+b.DeliveryStyle()+"]", b.Description)
	}
	return sb.String()
}

// UnknownBackendError is the single source of the listed-choices error for a
// backend name that is not registered.
func UnknownBackendError(name string) error {
	return fmt.Errorf("eventlib: unknown backend %q; choices:\n%s",
		name, DescribeBackends("  "))
}

// OpenBackend constructs the named backend's poller, with the listed-choices
// error for unknown names.
func OpenBackend(k *simkernel.Kernel, p *simkernel.Proc, name string) (core.Poller, Backend, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, Backend{}, UnknownBackendError(name)
	}
	return b.Open(k, p), b, nil
}
