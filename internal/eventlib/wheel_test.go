package eventlib

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// wheelRef is the reference model for the property test below: the armed set
// as a plain map, popped by scanning for the (deadline, seq) minimum — the
// semantics of the timer heap the wheel replaced. The wheel must reproduce
// this order exactly for every schedule, or dispatch batches (and with them
// every figure) would stop being bit-reproducible across the rewrite.
type wheelRef map[*Event]core.Time

func (r wheelRef) min() (*Event, bool) {
	var best *Event
	for ev, d := range r {
		if best == nil || d < r[best] || (d == r[best] && ev.seq < best.seq) {
			best = ev
		}
	}
	return best, best != nil
}

func (r wheelRef) expired(now core.Time) []*Event {
	var due []*Event
	for ev, d := range r {
		if d <= now {
			due = append(due, ev)
		}
	}
	sort.Slice(due, func(i, j int) bool { return timerBefore(due[i], due[j]) })
	return due
}

// TestTimerWheelMatchesReferenceHeap drives randomized schedules — same-tick
// clusters with exact-deadline ties, sub-granule offsets, cancels and
// re-arms, far-future deadlines beyond level-2 coverage, and time jumps that
// force multi-level cascades — through both the wheel and the reference
// model, and requires pop order, pop identity, exact MinDeadline and counts
// to match at every step.
func TestTimerWheelMatchesReferenceHeap(t *testing.T) {
	granule := core.Duration(1) << wheelGranuleShift
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		var w timerWheel
		ref := wheelRef{}
		var seq uint64
		var armed []*Event
		now := core.Time(0)

		newEvent := func() *Event {
			seq++
			return &Event{seq: seq, wheelLevel: wheelUnarmed}
		}
		randDelay := func() core.Duration {
			switch rng.Intn(10) {
			case 0, 1, 2: // same-slot cluster, frequent exact ties
				return core.Duration(rng.Intn(3)) * granule
			case 3, 4: // sub-granule offsets: exact sub-slot ordering
				return core.Duration(rng.Intn(int(granule)))
			case 5, 6: // level-1 territory
				return core.Duration(rng.Intn(60000)) * core.Millisecond
			case 7, 8: // level-2 territory
				return core.Duration(1+rng.Intn(120)) * 2 * core.Minute
			default: // beyond level-2 coverage: the far list
				return 360*core.Minute + core.Duration(rng.Intn(1000))*core.Second
			}
		}

		check := func(what string) {
			if w.Len() != len(ref) {
				t.Fatalf("trial %d (%s): wheel holds %d timers, reference %d", trial, what, w.Len(), len(ref))
			}
			gotMin, gotOK := w.MinDeadline()
			refEv, refOK := ref.min()
			if gotOK != refOK {
				t.Fatalf("trial %d (%s): MinDeadline ok=%v, reference %v", trial, what, gotOK, refOK)
			}
			if refOK && gotMin != ref[refEv] {
				t.Fatalf("trial %d (%s): MinDeadline %d, reference %d (seq %d)", trial, what, gotMin, ref[refEv], refEv.seq)
			}
		}

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // arm a fresh timer
				ev := newEvent()
				d := now.Add(randDelay())
				w.Schedule(ev, d)
				ref[ev] = d
				armed = append(armed, ev)
			case op < 6 && len(armed) > 0: // re-arm an existing timer
				ev := armed[rng.Intn(len(armed))]
				if _, ok := ref[ev]; ok {
					d := now.Add(randDelay())
					w.Schedule(ev, d)
					ref[ev] = d
				}
			case op < 8 && len(armed) > 0: // cancel
				ev := armed[rng.Intn(len(armed))]
				if _, ok := ref[ev]; ok {
					w.Cancel(ev)
					delete(ref, ev)
				}
			default: // advance time and drain expired
				var jump core.Duration
				switch rng.Intn(4) {
				case 0:
					jump = core.Duration(rng.Intn(int(4 * granule)))
				case 1:
					jump = core.Duration(rng.Intn(2000)) * core.Millisecond
				case 2:
					jump = core.Duration(rng.Intn(10)) * core.Minute
				default:
					jump = core.Duration(rng.Intn(3)) * 180 * core.Minute // multi-level cascade
				}
				now = now.Add(jump)
				want := ref.expired(now)
				for i := 0; ; i++ {
					got := w.PopExpired(now)
					if got == nil {
						if i != len(want) {
							t.Fatalf("trial %d step %d: wheel popped %d events, reference expects %d", trial, step, i, len(want))
						}
						break
					}
					if i >= len(want) {
						t.Fatalf("trial %d step %d: wheel popped extra event seq %d (deadline %d, now %d)",
							trial, step, got.seq, got.deadline, now)
					}
					if got != want[i] {
						t.Fatalf("trial %d step %d: pop %d: wheel fired seq %d (deadline %d), reference expects seq %d (deadline %d)",
							trial, step, i, got.seq, got.deadline, want[i].seq, want[i].deadline)
					}
					if got.timerArmed() {
						t.Fatalf("trial %d step %d: popped event seq %d still marked armed", trial, step, got.seq)
					}
					delete(ref, got)
				}
			}
			check("step")
		}

		// Drain the remainder through PopMin (Close's path): exact global
		// order to the end.
		for {
			refEv, ok := ref.min()
			got := w.PopMin()
			if !ok {
				if got != nil {
					t.Fatalf("trial %d: PopMin returned seq %d from an empty reference", trial, got.seq)
				}
				break
			}
			if got != refEv {
				t.Fatalf("trial %d: PopMin fired seq %d, reference expects seq %d", trial, got.seq, refEv.seq)
			}
			delete(ref, got)
		}
		if w.Len() != 0 {
			t.Fatalf("trial %d: %d timers left after drain", trial, w.Len())
		}
	}
}

// TestTimerWheelSameTickFIFO pins the tie rule explicitly: timers sharing an
// exact deadline fire in creation-sequence order, even when armed in reverse
// and interleaved with cancels — the heap's (deadline, seq) comparator.
func TestTimerWheelSameTickFIFO(t *testing.T) {
	var w timerWheel
	deadline := core.Time(500 * core.Millisecond)
	evs := make([]*Event, 6)
	for i := range evs {
		evs[i] = &Event{seq: uint64(i + 1), wheelLevel: wheelUnarmed}
	}
	// Arm in reverse creation order; the pop must come back in seq order.
	for i := len(evs) - 1; i >= 0; i-- {
		w.Schedule(evs[i], deadline)
	}
	w.Cancel(evs[2])
	want := []uint64{1, 2, 4, 5, 6}
	var got []uint64
	for {
		ev := w.PopExpired(deadline)
		if ev == nil {
			break
		}
		got = append(got, ev.seq)
	}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want seq order %v", got, want)
		}
	}
}

// TestTimerWheelFarFutureCascade pins far-list behavior: a deadline beyond
// level-2 coverage is still reported exactly by MinDeadline, survives
// arbitrary advancement below its deadline, and fires at — not before — its
// exact instant after cascading down through every level.
func TestTimerWheelFarFutureCascade(t *testing.T) {
	var w timerWheel
	far := &Event{seq: 1, wheelLevel: wheelUnarmed}
	deadline := core.Time(540*core.Minute + 123*core.Millisecond + 45)
	w.Schedule(far, deadline)
	if min, ok := w.MinDeadline(); !ok || min != deadline {
		t.Fatalf("MinDeadline = %d,%v; want exact far deadline %d", min, ok, deadline)
	}
	// Walk forward in uneven steps; the timer must not fire early.
	for _, at := range []core.Time{
		core.Time(60 * core.Minute), core.Time(300 * core.Minute),
		deadline - 1,
	} {
		if ev := w.PopExpired(at); ev != nil {
			t.Fatalf("timer fired at %d, %d before its deadline", at, deadline-at)
		}
		if min, ok := w.MinDeadline(); !ok || min != deadline {
			t.Fatalf("MinDeadline after advance to %d = %d,%v; want %d", at, min, ok, deadline)
		}
	}
	if ev := w.PopExpired(deadline); ev != far {
		t.Fatalf("timer did not fire at its exact deadline")
	}
	if w.Len() != 0 {
		t.Fatalf("%d timers left", w.Len())
	}
}
