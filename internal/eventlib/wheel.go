package eventlib

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
)

// timerWheel is a hierarchical timing wheel replacing the former timer heap:
// three 256-slot levels over a ~1 ms granule (level 0 spans ~268 ms, level 1
// ~68 s, level 2 ~4.9 h) plus an unbounded "far" list, with per-level
// occupancy bitmaps. Schedule and Cancel are O(1) list splices; cascading is
// charged only when the wheel base actually turns past a level boundary. This
// is what keeps millions of idle keep-alive/peer timers affordable in the
// 100k–1M-connection regime.
//
// Determinism contract (DESIGN.md §12): the wheel reproduces the heap's
// observable order exactly. PopExpired returns due events in ascending
// (deadline, creation seq) order — sub-granule deadlines are kept exact, and
// a slot's list is insertion-sorted the first time the pop path reaches it —
// and MinDeadline is the exact earliest deadline (not a slot floor), so poll
// timeouts, iteration counts and cost charges are bit-identical to the heap's.
//
// Events link into slots intrusively (wheelPrev/wheelNext on Event), so the
// wheel allocates nothing at steady state.
type timerWheel struct {
	// curTick is the wheel position: floor(virtual time / granule) up to
	// which expired slots have been collected.
	curTick int64

	// level[k][s] heads the doubly-linked event list of slot s at level k.
	level [wheelLevels][wheelSlots]*Event
	// occupied[k] is the per-level slot-occupancy bitmap (4×64 = 256 bits).
	occupied [wheelLevels][wheelSlots / 64]uint64
	// sorted[k] marks slots whose list the pop path has already
	// insertion-sorted; Schedule into a sorted slot inserts in place.
	sorted [wheelLevels][wheelSlots / 64]uint64

	// far holds events beyond level-2 coverage; refiltered when the wheel
	// crosses a level-2 wrap boundary. Practically always empty here (the
	// servers arm second-scale timeouts) but required for correctness.
	far *Event

	count int

	// minEv caches the globally earliest armed event. It is invalidated
	// (nil) when that specific event is removed; inserting an earlier event
	// just replaces it, so recomputation is rare and bounded by one slot
	// scan per level.
	minEv *Event

	// scratch is the reused buffer for sorting a slot's list.
	scratch []*Event
}

const (
	wheelGranuleShift = 20 // 2^20 ns ≈ 1.05 ms per tick
	wheelBits         = 8
	wheelSlots        = 1 << wheelBits
	wheelLevels       = 3

	// wheelFarLevel marks events parked on the far list.
	wheelFarLevel = int8(wheelLevels)
	// wheelUnarmed marks events not in the wheel at all.
	wheelUnarmed = int8(-1)
)

func wheelTick(t core.Time) int64 { return int64(t) >> wheelGranuleShift }

// timerArmed reports whether the event currently sits in the wheel (the old
// heapIdx >= 0 predicate).
func (ev *Event) timerArmed() bool { return ev.wheelLevel != wheelUnarmed }

// timerBefore is the pop order: deadline, then creation sequence — identical
// to the heap's comparator.
func timerBefore(a, b *Event) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

// Len reports the number of armed timers.
func (w *timerWheel) Len() int { return w.count }

// Schedule (re)arms ev for the given deadline, replacing any previous
// position — the heap's push-or-fix in O(1).
func (w *timerWheel) Schedule(ev *Event, deadline core.Time) {
	if ev.timerArmed() {
		w.unlink(ev)
	}
	ev.deadline = deadline
	w.insert(ev)
}

// Cancel disarms ev if armed.
func (w *timerWheel) Cancel(ev *Event) {
	if ev.timerArmed() {
		w.unlink(ev)
	}
}

// MinDeadline returns the exact earliest armed deadline; ok is false when no
// timer is armed.
func (w *timerWheel) MinDeadline() (core.Time, bool) {
	if w.count == 0 {
		return 0, false
	}
	if w.minEv == nil {
		w.recomputeMin()
	}
	return w.minEv.deadline, true
}

// PopExpired removes and returns the earliest armed event with
// deadline <= now, advancing (and cascading) the wheel as far as the pop
// requires; nil when nothing is due. Repeated calls drain due events in
// exact (deadline, seq) order.
func (w *timerWheel) PopExpired(now core.Time) *Event {
	target := wheelTick(now)
	for {
		if w.count == 0 {
			if target > w.curTick {
				w.curTick = target
			}
			return nil
		}
		slot := int(w.curTick & (wheelSlots - 1))
		if w.level[0][slot] != nil {
			w.sortSlot(0, slot)
			head := w.level[0][slot]
			if head.deadline <= now {
				w.unlink(head)
				return head
			}
			// The earliest event of the earliest occupied slot is still in
			// the future; nothing anywhere is due.
			return nil
		}
		if w.curTick >= target {
			return nil
		}
		w.advance(target)
	}
}

// PopMin removes and returns the globally earliest armed event regardless of
// time (used by Close to drain deterministically); nil when empty.
func (w *timerWheel) PopMin() *Event {
	if w.count == 0 {
		return nil
	}
	if w.minEv == nil {
		w.recomputeMin()
	}
	ev := w.minEv
	w.unlink(ev)
	return ev
}

// advance moves curTick forward — to the next occupied level-0 slot, the next
// cascade boundary, or the target tick, whichever comes first — and cascades
// higher-level slots as boundaries are crossed. Empty stretches are skipped
// via the occupancy bitmap rather than tick by tick.
func (w *timerWheel) advance(target int64) {
	// End of the current level-0 window (the next multiple of 256 ticks),
	// where level-1 time must cascade down before level 0 can continue.
	windowEnd := (w.curTick | (wheelSlots - 1)) + 1
	next := target
	if next > windowEnd {
		next = windowEnd
	}
	if t, ok := w.nextOccupiedL0(next); ok {
		w.curTick = t
		return
	}
	w.curTick = next
	if w.curTick == windowEnd {
		w.cascadeAt(w.curTick)
	}
}

// nextOccupiedL0 scans the level-0 bitmap for the first occupied slot in
// ticks (curTick, limit); ok is false when none exists below limit.
func (w *timerWheel) nextOccupiedL0(limit int64) (int64, bool) {
	for t := w.curTick + 1; t < limit; {
		slot := int(t & (wheelSlots - 1))
		word := slot >> 6
		rem := w.occupied[0][word] >> uint(slot&63)
		if rem != 0 {
			t += int64(bits.TrailingZeros64(rem))
			if t < limit {
				return t, true
			}
			return 0, false
		}
		t += int64(64 - slot&63)
	}
	return 0, false
}

// cascadeAt redistributes the higher-level slots that become current when the
// wheel base reaches tick (a multiple of 256): the matching level-1 slot, the
// level-2 slot when a level-1 wrap completes, and the far list when level 2
// wraps. Cascaded events re-insert at their exact level for the new base, so
// cascade order cannot affect pop order.
func (w *timerWheel) cascadeAt(tick int64) {
	if tick&(1<<(2*wheelBits)-1) == 0 {
		if tick&(1<<(3*wheelBits)-1) == 0 {
			// Level-2 wrap: refilter the far list.
			far := w.far
			w.far = nil
			for far != nil {
				ev := far
				far = ev.wheelNext
				ev.wheelLevel = wheelUnarmed
				ev.wheelPrev, ev.wheelNext = nil, nil
				w.count--
				w.insert(ev)
			}
		}
		w.cascadeSlot(2, int((tick>>(2*wheelBits))&(wheelSlots-1)))
	}
	w.cascadeSlot(1, int((tick>>wheelBits)&(wheelSlots-1)))
}

func (w *timerWheel) cascadeSlot(lvl, slot int) {
	head := w.level[lvl][slot]
	if head == nil {
		return
	}
	w.level[lvl][slot] = nil
	w.occupied[lvl][slot>>6] &^= 1 << uint(slot&63)
	w.sorted[lvl][slot>>6] &^= 1 << uint(slot&63)
	for head != nil {
		ev := head
		head = ev.wheelNext
		ev.wheelLevel = wheelUnarmed
		ev.wheelPrev, ev.wheelNext = nil, nil
		w.count--
		w.insert(ev)
	}
}

// insert places ev at the level its distance from curTick selects. Deadlines
// at or before the wheel position land in the current level-0 slot (they pop
// immediately and in correct order, since the slot is min-scanned).
func (w *timerWheel) insert(ev *Event) {
	tick := wheelTick(ev.deadline)
	delta := tick - w.curTick
	if delta < 0 {
		tick = w.curTick
		delta = 0
	}
	var lvl, slot int
	switch {
	case delta < wheelSlots:
		lvl, slot = 0, int(tick&(wheelSlots-1))
	case delta < 1<<(2*wheelBits):
		lvl, slot = 1, int((tick>>wheelBits)&(wheelSlots-1))
	case delta < 1<<(3*wheelBits):
		lvl, slot = 2, int((tick>>(2*wheelBits))&(wheelSlots-1))
	default:
		ev.wheelLevel = wheelFarLevel
		ev.wheelPrev = nil
		ev.wheelNext = w.far
		if w.far != nil {
			w.far.wheelPrev = ev
		}
		w.far = ev
		w.count++
		if w.minEv != nil && timerBefore(ev, w.minEv) {
			w.minEv = ev
		}
		return
	}
	ev.wheelLevel = int8(lvl)
	ev.wheelSlot = uint8(slot)
	if w.sorted[lvl][slot>>6]&(1<<uint(slot&63)) != 0 {
		w.insertSorted(lvl, slot, ev)
	} else {
		// Unsorted slot: push front; order is established when the pop path
		// first reaches the slot.
		ev.wheelPrev = nil
		ev.wheelNext = w.level[lvl][slot]
		if ev.wheelNext != nil {
			ev.wheelNext.wheelPrev = ev
		}
		w.level[lvl][slot] = ev
	}
	w.occupied[lvl][slot>>6] |= 1 << uint(slot&63)
	w.count++
	if w.minEv != nil && timerBefore(ev, w.minEv) {
		w.minEv = ev
	}
}

// insertSorted splices ev into an already-sorted slot list by (deadline, seq).
func (w *timerWheel) insertSorted(lvl, slot int, ev *Event) {
	head := w.level[lvl][slot]
	if head == nil || timerBefore(ev, head) {
		ev.wheelPrev = nil
		ev.wheelNext = head
		if head != nil {
			head.wheelPrev = ev
		}
		w.level[lvl][slot] = ev
		return
	}
	p := head
	for p.wheelNext != nil && !timerBefore(ev, p.wheelNext) {
		p = p.wheelNext
	}
	ev.wheelNext = p.wheelNext
	ev.wheelPrev = p
	if p.wheelNext != nil {
		p.wheelNext.wheelPrev = ev
	}
	p.wheelNext = ev
}

// sortSlot insertion-sorts a slot's list by (deadline, seq) the first time
// the pop path reaches it, so subsequent pops and same-slot inserts are
// order-preserving splices.
func (w *timerWheel) sortSlot(lvl, slot int) {
	if w.sorted[lvl][slot>>6]&(1<<uint(slot&63)) != 0 {
		return
	}
	w.sorted[lvl][slot>>6] |= 1 << uint(slot&63)
	head := w.level[lvl][slot]
	if head == nil || head.wheelNext == nil {
		return
	}
	buf := w.scratch[:0]
	for ev := head; ev != nil; ev = ev.wheelNext {
		buf = append(buf, ev)
	}
	sort.Slice(buf, func(i, j int) bool { return timerBefore(buf[i], buf[j]) })
	var prev *Event
	for _, ev := range buf {
		ev.wheelPrev = prev
		ev.wheelNext = nil
		if prev != nil {
			prev.wheelNext = ev
		} else {
			w.level[lvl][slot] = ev
		}
		prev = ev
	}
	for i := range buf {
		buf[i] = nil
	}
	w.scratch = buf[:0]
}

// unlink removes ev from whatever list holds it.
func (w *timerWheel) unlink(ev *Event) {
	switch {
	case ev.wheelLevel == wheelFarLevel:
		if ev.wheelPrev != nil {
			ev.wheelPrev.wheelNext = ev.wheelNext
		} else {
			w.far = ev.wheelNext
		}
		if ev.wheelNext != nil {
			ev.wheelNext.wheelPrev = ev.wheelPrev
		}
	case ev.wheelLevel >= 0:
		lvl, slot := int(ev.wheelLevel), int(ev.wheelSlot)
		if ev.wheelPrev != nil {
			ev.wheelPrev.wheelNext = ev.wheelNext
		} else {
			w.level[lvl][slot] = ev.wheelNext
		}
		if ev.wheelNext != nil {
			ev.wheelNext.wheelPrev = ev.wheelPrev
		}
		if w.level[lvl][slot] == nil {
			w.occupied[lvl][slot>>6] &^= 1 << uint(slot&63)
			w.sorted[lvl][slot>>6] &^= 1 << uint(slot&63)
		}
	default:
		panic(fmt.Sprintf("eventlib: unlink of unarmed timer (seq %d)", ev.seq))
	}
	ev.wheelLevel = wheelUnarmed
	ev.wheelPrev, ev.wheelNext = nil, nil
	w.count--
	if w.minEv == ev {
		w.minEv = nil
	}
}

// recomputeMin rescans for the earliest armed event. Per level, slots scanned
// circularly from the wheel base hold strictly increasing tick ranges, so the
// first occupied slot yields that level's earliest deadlines — with one twist
// per hierarchy level above 0: the base slot's current-wrap events cascaded
// away when the window opened, so anything still there belongs to the *next*
// wrap and the scan must start one past the base, checking the base slot last.
// Levels do NOT cover disjoint deadline ranges across insertion times (an old
// level-2 resident can be earlier than a fresh level-1 one, and far-list
// entries can undercut level entries between refilters), so the global minimum
// compares every level's candidate and the whole far list.
func (w *timerWheel) recomputeMin() {
	var best *Event
	scan := func(head *Event) {
		for ev := head; ev != nil; ev = ev.wheelNext {
			if best == nil || timerBefore(ev, best) {
				best = ev
			}
		}
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		base := int((w.curTick >> uint(lvl*wheelBits)) & (wheelSlots - 1))
		start := 0
		if lvl > 0 {
			start = 1
		}
		for i := start; i < start+wheelSlots; i++ {
			slot := (base + i) & (wheelSlots - 1)
			if w.occupied[lvl][slot>>6]&(1<<uint(slot&63)) != 0 {
				scan(w.level[lvl][slot])
				break
			}
		}
	}
	scan(w.far)
	if best == nil {
		panic("eventlib: recomputeMin on an empty wheel")
	}
	w.minEv = best
}
