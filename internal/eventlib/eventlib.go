// Package eventlib is the callback-driven event API the servers program
// against — the programming model Provos extracted from this line of work into
// libevent, recast over the simulated kernel. A Base owns one event-notification
// mechanism (any core.Poller), a timer heap in virtual time, and the dispatch
// loop every server used to hand-roll: it computes poll timeouts from the
// armed timers, iterates readiness results, and invokes per-event callbacks
// inside a process batch so every dispatch still charges the calibrated cost
// model.
//
// Event handles carry read/write/timeout interest, persistent versus one-shot
// semantics, and a priority; active events are queued into priority buckets and
// the highest-priority bucket is drained first (priority 0 is the highest, as
// in libevent). Teardown is deterministic: deleting an event from inside a
// callback — including a callback for a different event activated in the same
// batch — guarantees the deleted event's callback never runs again, and
// closing the base while a wait is pending completes the wait instead of
// stranding it.
//
// The package deliberately mirrors libevent's shape (event_base / event /
// event_add / event_del / dispatch) so that one server runs unchanged over
// poll, /dev/poll, RT signals, or epoll; the backend registry in registry.go
// replaces the per-server mechanism constructors.
package eventlib

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/simkernel"
)

// What is a bitmask of the conditions an event is registered for, and of the
// conditions reported to its callback. The values mirror libevent's EV_* bits.
type What uint8

// Event condition bits.
const (
	// EvTimeout reports that the event's timeout expired.
	EvTimeout What = 0x01
	// EvRead requests/reports readability (POLLIN and error conditions).
	EvRead What = 0x02
	// EvWrite requests/reports writability.
	EvWrite What = 0x04
	// EvSignal marks an event dispatched by descriptor match only: the base
	// never registers poller interest for it. The RT-signal queue's overflow
	// sentinel (a negative descriptor) is delivered through a signal event.
	EvSignal What = 0x08
	// EvPersist keeps the event registered after it fires; without it the
	// event is deleted immediately before its callback runs (re-adding it from
	// inside the callback re-arms it, as in libevent).
	EvPersist What = 0x10
)

// Has reports whether every bit of want is set in w.
func (w What) Has(want What) bool { return w&want == want }

// String renders the mask for diagnostics.
func (w What) String() string {
	if w == 0 {
		return "0"
	}
	names := []struct {
		bit  What
		name string
	}{
		{EvTimeout, "TIMEOUT"}, {EvRead, "READ"}, {EvWrite, "WRITE"},
		{EvSignal, "SIGNAL"}, {EvPersist, "PERSIST"},
	}
	out := ""
	for _, n := range names {
		if w&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	return out
}

// Callback is invoked when an event becomes active. what holds the conditions
// that fired (EvRead/EvWrite/EvTimeout/EvSignal); now is the virtual instant of
// the dispatch batch. Callbacks run inside a process batch: socket calls and
// event Add/Del are legal, a nested Dispatch is not.
type Callback func(fd int, what What, now core.Time)

// Config parameterises a Base.
type Config struct {
	// Backend names the registry backend New constructs ("" selects the
	// highest-preference backend; see Backends). Ignored by NewWithPoller.
	Backend string
	// MaxEventsPerWait caps how many readiness events one poller wait may
	// deliver; zero selects 1024. Mechanisms with stricter semantics (the RT
	// signal queue dequeues one siginfo per sigwaitinfo call) clamp further.
	MaxEventsPerWait int
	// Priorities is the number of priority buckets (zero selects 1). Priority
	// 0 is the highest; each dispatch iteration drains only the
	// highest-priority non-empty bucket, so a steady stream of high-priority
	// activations starves lower buckets, exactly as in libevent.
	Priorities int
	// LoopCost is charged to the process once per dispatch iteration — the
	// per-loop bookkeeping a real server performs (thttpd charges its timer
	// list scan and fdwatch setup here). Zero charges nothing.
	LoopCost core.Duration
	// MirrorInterest, when true, applies every interest registration and
	// removal to all attached pollers rather than only the active one. The
	// hybrid server uses it to keep /dev/poll's interest set current while RT
	// signals deliver events, which is what makes its mode switch nearly free.
	MirrorInterest bool
	// AfterDispatch, when non-nil, runs inside the dispatch batch after the
	// bucket drain with the number of readiness events the poller delivered in
	// this iteration. The hybrid server evaluates its mode-switch policy here.
	AfterDispatch func(delivered int, now core.Time)
}

// Base is the event loop: one active poller (plus optional attached pollers),
// the timer heap, the active-event priority buckets, and the dispatch state.
type Base struct {
	K *simkernel.Kernel
	P *simkernel.Proc

	cfg     Config
	backend Backend // metadata when constructed through the registry

	pollers []core.Poller // attachment order; pollers[active] is the wait target
	active  int
	owned   bool // Close closes pollers the registry constructed

	// evs is the fd -> event table for non-negative descriptors, dense
	// because the simulated kernel allocates descriptors lowest-unused; the
	// rare negative descriptors (signal sentinels like the RT-signal overflow
	// event) live in evNeg. evCount counts entries across both.
	evs     []*Event
	evNeg   map[int]*Event
	evCount int
	timers  timerWheel
	nextSeq uint64

	buckets [][]*Event
	spare   []*Event // recycled bucket backing storage

	// The dispatch loop's per-iteration state and pre-bound callbacks: the
	// wait completion, the dispatch batch body and its completion are the
	// three hottest closures in the system, so they are created once here
	// and the per-iteration values travel through fields.
	onWaitFn       func(events []core.Event, now core.Time)
	dispatchFn     func()
	dispatchDoneFn func(now core.Time)
	pendingEvents  []core.Event
	pendingNow     core.Time

	running    bool
	stopped    bool
	closed     bool
	iterations int64
}

// New constructs a Base whose poller comes from the backend registry:
// cfg.Backend by name, or the highest-preference backend when empty. The
// returned Base owns the poller and closes it in Close. Unknown backend names
// produce an error listing the registered choices.
func New(k *simkernel.Kernel, p *simkernel.Proc, cfg Config) (*Base, error) {
	b, ok := Lookup(cfg.Backend)
	if !ok {
		return nil, UnknownBackendError(cfg.Backend)
	}
	base := NewWithPoller(k, p, b.Open(k, p), cfg)
	base.backend = b
	base.owned = true
	return base, nil
}

// NewWithPoller constructs a Base over a caller-supplied poller. The caller
// retains ownership: Close tears down the base's events but leaves the poller
// open.
func NewWithPoller(k *simkernel.Kernel, p *simkernel.Proc, poller core.Poller, cfg Config) *Base {
	if cfg.MaxEventsPerWait <= 0 {
		cfg.MaxEventsPerWait = 1024
	}
	if cfg.Priorities <= 0 {
		cfg.Priorities = 1
	}
	b := &Base{
		K:       k,
		P:       p,
		cfg:     cfg,
		pollers: []core.Poller{poller},
		buckets: make([][]*Event, cfg.Priorities),
	}
	b.onWaitFn = b.onWait
	b.dispatchFn = b.dispatchBatch
	b.dispatchDoneFn = b.dispatchDone
	return b
}

// eventFor returns the I/O or signal event registered on fd.
func (b *Base) eventFor(fd int) (*Event, bool) {
	if fd >= 0 {
		if fd < len(b.evs) && b.evs[fd] != nil {
			return b.evs[fd], true
		}
		return nil, false
	}
	ev, ok := b.evNeg[fd]
	return ev, ok
}

// setEvent registers ev as fd's event.
func (b *Base) setEvent(fd int, ev *Event) {
	if fd >= 0 {
		for fd >= len(b.evs) {
			b.evs = append(b.evs, nil)
		}
		b.evs[fd] = ev
	} else {
		if b.evNeg == nil {
			b.evNeg = make(map[int]*Event)
		}
		b.evNeg[fd] = ev
	}
	b.evCount++
}

// clearEvent removes fd's event registration.
func (b *Base) clearEvent(fd int) {
	if fd >= 0 {
		if fd < len(b.evs) && b.evs[fd] != nil {
			b.evs[fd] = nil
			b.evCount--
		}
	} else if _, ok := b.evNeg[fd]; ok {
		delete(b.evNeg, fd)
		b.evCount--
	}
}

// eachEvent visits every registered fd event (in no particular order).
func (b *Base) eachEvent(fn func(ev *Event)) {
	for _, ev := range b.evs {
		if ev != nil {
			fn(ev)
		}
	}
	for _, ev := range b.evNeg {
		fn(ev)
	}
}

// Backend returns the registry metadata for a Base built by New; for
// NewWithPoller bases it returns a zero Backend with only Name filled from the
// poller.
func (b *Base) Backend() Backend {
	if b.backend.Open != nil {
		return b.backend
	}
	return Backend{Name: b.Poller().Name()}
}

// Poller returns the active wait target.
func (b *Base) Poller() core.Poller { return b.pollers[b.active] }

// AttachPoller registers an additional mechanism with the base. With
// Config.MirrorInterest set, subsequent Adds and Dels apply to it too; either
// way it becomes a valid argument to Activate. Attach pollers before adding
// events: existing interests are not copied retroactively.
func (b *Base) AttachPoller(p core.Poller) {
	b.pollers = append(b.pollers, p)
}

// Activate makes p — the current poller or one previously attached — the wait
// target for subsequent dispatch iterations. With reregister set, every
// pending I/O event's interest is added to p first (skipping descriptors p
// already tracks), in event-creation order: phhttpd's rebuild-the-pollfd-array
// handoff. Without it the caller warrants that p's interest set is already
// current (the hybrid server's mirrored sets).
func (b *Base) Activate(p core.Poller, reregister bool) error {
	idx := -1
	for i, attached := range b.pollers {
		if attached == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("eventlib: Activate of a poller that was never attached")
	}
	if reregister {
		for _, ev := range b.eventsInOrder() {
			if ev.what&EvSignal != 0 || !ev.added {
				continue
			}
			if !p.Interested(ev.fd) {
				_ = p.Add(ev.fd, ev.interestMask())
			}
		}
	}
	b.active = idx
	return nil
}

// Iterations reports completed dispatch iterations (the servers' former
// per-loop counters).
func (b *Base) Iterations() int64 { return b.iterations }

// NumEvents reports how many events are currently added (pending I/O, signal
// and timer events alike).
func (b *Base) NumEvents() int {
	n := b.evCount + b.timers.Len()
	// Timers that are also in the fd table (I/O events with timeouts) must not
	// be double-counted.
	b.eachEvent(func(ev *Event) {
		if ev.timerArmed() {
			n--
		}
	})
	return n
}

// eventsInOrder returns the fd-mapped events sorted by creation sequence, the
// deterministic order used for re-registration.
func (b *Base) eventsInOrder() []*Event {
	out := make([]*Event, 0, b.evCount)
	b.eachEvent(func(ev *Event) { out = append(out, ev) })
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// NewEvent creates an event handle for fd with the given conditions and
// callback. The event is not armed until Add. At most one I/O event may exist
// per descriptor (the Poller interface registers one interest per fd); adding
// a second event for the same descriptor is an error reported by Add, not
// here, so handles can be prepared freely.
//
// Events created with EvSignal (or a negative fd, which implies it) are
// dispatched by descriptor match alone and never touch the poller's interest
// set.
func (b *Base) NewEvent(fd int, what What, cb Callback) *Event {
	if fd < 0 {
		what |= EvSignal
	}
	b.nextSeq++
	return &Event{base: b, fd: fd, what: what, cb: cb, wheelLevel: wheelUnarmed, seq: b.nextSeq}
}

// NewTimer creates a pure timer event: no descriptor, fired only by its
// timeout. what may include EvPersist for a periodic timer.
func (b *Base) NewTimer(what What, cb Callback) *Event {
	b.nextSeq++
	return &Event{base: b, fd: -1, what: (what & EvPersist) | EvTimeout | EvSignal, timerOnly: true, cb: cb, wheelLevel: wheelUnarmed, seq: b.nextSeq}
}

// Dispatch starts the event loop. It returns immediately — the loop advances
// through the simulator as waits complete — and runs until Stop or Close, or
// until no events remain added. It may be restarted after it exits.
func (b *Base) Dispatch() {
	if b.running {
		panic("eventlib: Dispatch while the loop is already running")
	}
	if b.closed {
		return
	}
	b.running = true
	b.stopped = false
	b.loop()
}

// Stop halts the loop after the current iteration, leaving all events
// registered; Dispatch may be called again.
func (b *Base) Stop() { b.stopped = true }

// Running reports whether the dispatch loop is active.
func (b *Base) Running() bool { return b.running }

// Close deletes every event, closes registry-owned pollers, and completes any
// in-flight wait (the poller's close aborts it, delivering an empty result, so
// a close-while-pending never strands the loop).
func (b *Base) Close() error {
	if b.closed {
		return core.ErrClosed
	}
	b.closed = true
	b.stopped = true
	for _, ev := range b.eventsInOrder() {
		_ = ev.Del()
	}
	for b.timers.Len() > 0 {
		// Pop unconditionally rather than trusting Del to remove the wheel
		// minimum: Del is a no-op for events it considers not pending, and
		// relying on it for loop progress would turn Close into an infinite
		// loop the moment any such event reached the wheel.
		ev := b.timers.PopMin()
		_ = ev.Del()
	}
	if b.owned {
		for _, p := range b.pollers {
			_ = p.Close()
		}
	}
	return nil
}

// loop performs one wait-and-dispatch iteration.
func (b *Base) loop() {
	if b.stopped || b.closed {
		b.running = false
		return
	}
	if b.evCount == 0 && b.timers.Len() == 0 && !b.anyActive() {
		// Nothing can ever fire: the natural exit of event_base_dispatch.
		b.running = false
		return
	}
	b.Poller().Wait(b.cfg.MaxEventsPerWait, b.nextTimeout(), b.onWaitFn)
}

// anyActive reports whether any bucket still holds activations from a
// previous iteration (lower-priority events waiting their turn).
func (b *Base) anyActive() bool {
	for _, q := range b.buckets {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// nextTimeout derives the poll timeout from the timer heap: zero (never
// block) when activations are still queued or a deadline has passed, the time
// to the earliest deadline otherwise, Forever with no timers armed.
func (b *Base) nextTimeout() core.Duration {
	if b.anyActive() {
		return 0
	}
	min, ok := b.timers.MinDeadline()
	if !ok {
		return core.Forever
	}
	remaining := min.Sub(b.P.Now())
	if remaining < 0 {
		return 0
	}
	return remaining
}

// onWait is the poller wait completion: one dispatch batch. The events slice
// and instant travel through fields so the pre-bound batch closures carry no
// per-iteration state of their own.
func (b *Base) onWait(events []core.Event, now core.Time) {
	if b.stopped || b.closed {
		b.running = false
		return
	}
	b.iterations++
	b.pendingEvents = events
	b.pendingNow = now
	b.P.Batch(now, b.dispatchFn, b.dispatchDoneFn)
}

// dispatchBatch is the body of one dispatch iteration's batch.
func (b *Base) dispatchBatch() {
	events := b.pendingEvents
	now := b.pendingNow
	b.pendingEvents = nil
	if b.cfg.LoopCost > 0 {
		b.P.Charge(b.cfg.LoopCost)
	}
	// Readiness first, then expired timers, so a timer callback (an idle
	// sweep) observes the batch's I/O effects — the order the hand-rolled
	// server loops used.
	for _, pe := range events {
		ev, ok := b.eventFor(pe.FD)
		if !ok {
			// Stale: the event was deleted while the readiness report was
			// in flight (an RT signal for a closed connection, for
			// example). Real servers must ignore these, says the paper.
			continue
		}
		if pe.Gen != 0 && ev.gen != 0 && pe.Gen != ev.gen {
			// Stale, and worse: the descriptor number was recycled, so the
			// raw fd now names a different connection than the one this
			// report is about. Without the generation check the report
			// would fire the new event's callback — the fd-reuse aliasing
			// the paper's stale-signal warning is really about.
			continue
		}
		b.activate(ev, ev.firedWhat(pe.Ready))
	}
	for {
		ev := b.timers.PopExpired(now)
		if ev == nil {
			break
		}
		b.activate(ev, EvTimeout)
	}
	b.processActive(now)
	if b.cfg.AfterDispatch != nil {
		b.cfg.AfterDispatch(len(events), now)
	}
}

// dispatchDone runs at the dispatch batch's completion: the next iteration.
func (b *Base) dispatchDone(core.Time) {
	b.loop()
}

// activate queues ev into its priority bucket, or folds the new conditions
// into an activation already queued.
func (b *Base) activate(ev *Event, what What) {
	if what == 0 {
		return
	}
	if ev.activeWhat != 0 {
		ev.activeWhat |= what
		return
	}
	ev.activeWhat = what
	b.buckets[ev.priority] = append(b.buckets[ev.priority], ev)
}

// processActive drains the highest-priority non-empty bucket, invoking
// callbacks in activation order. Lower buckets wait for later iterations —
// the starvation semantics libevent documents. Events deleted between
// activation and their turn (by an earlier callback in the same bucket) are
// skipped.
func (b *Base) processActive(now core.Time) {
	for pri := range b.buckets {
		if len(b.buckets[pri]) == 0 {
			continue
		}
		queue := b.buckets[pri]
		// Swap in the spare backing array instead of nil so activations from
		// inside the callbacks append without reallocating; the drained queue
		// becomes the next spare.
		b.buckets[pri] = b.spare[:0]
		b.spare = nil
		for i := 0; i < len(queue); i++ {
			ev := queue[i]
			if ev.activeWhat == 0 || !ev.added {
				continue // deleted (or already dispatched) since activation
			}
			what := ev.activeWhat
			ev.activeWhat = 0
			if ev.what&EvPersist == 0 {
				// One-shot: deleted before the callback runs, so the callback
				// may re-Add it.
				_ = ev.Del()
			} else if ev.timeout > 0 {
				// A persistent event's timeout re-arms on every firing,
				// whether by I/O or by expiry.
				ev.schedule(now.Add(ev.timeout))
			}
			ev.cb(ev.fd, what, now)
		}
		for i := range queue {
			queue[i] = nil // release the handles for the collector
		}
		b.spare = queue[:0]
		return
	}
}

// Event is one registration: a descriptor (or pure timer), the conditions of
// interest, a callback, and a priority. Handles are created by Base.NewEvent /
// Base.NewTimer and armed with Add.
type Event struct {
	base      *Base
	fd        int
	what      What
	cb        Callback
	priority  int
	timerOnly bool
	seq       uint64

	added    bool
	timeout  core.Duration
	deadline core.Time

	// Timer-wheel linkage (intrusive doubly-linked slot lists; see wheel.go).
	// wheelLevel is wheelUnarmed when the event holds no timer.
	wheelPrev  *Event
	wheelNext  *Event
	wheelLevel int8
	wheelSlot  uint8

	// gen is the generation of the descriptor instance the event was armed
	// for (simkernel.FD.Gen, captured at Add). Readiness reports carrying a
	// different generation are about a previous open of the same descriptor
	// number and are dropped instead of dispatched. Zero for signal events and
	// for descriptors the process does not hold.
	gen uint64

	activeWhat What
}

// FD returns the descriptor the event watches (negative for timers and signal
// events).
func (ev *Event) FD() int { return ev.fd }

// Pending reports whether the event is added.
func (ev *Event) Pending() bool { return ev.added }

// Priority returns the event's priority bucket.
func (ev *Event) Priority() int { return ev.priority }

// SetPriority assigns the event to a bucket (0 is highest). It must be called
// while the event is not active; priorities outside the base's configured
// range are an error.
func (ev *Event) SetPriority(pri int) error {
	if pri < 0 || pri >= len(ev.base.buckets) {
		return fmt.Errorf("eventlib: priority %d outside [0,%d)", pri, len(ev.base.buckets))
	}
	if ev.activeWhat != 0 {
		return fmt.Errorf("eventlib: SetPriority on an active event")
	}
	ev.priority = pri
	return nil
}

// interestMask translates the event's conditions into a poller interest mask.
func (ev *Event) interestMask() core.EventMask {
	var m core.EventMask
	if ev.what&EvRead != 0 {
		m |= core.POLLIN
	}
	if ev.what&EvWrite != 0 {
		m |= core.POLLOUT
	}
	return m
}

// firedWhat maps a poller readiness mask onto the conditions this event
// registered for. Error conditions activate whichever of read/write interest
// the event holds, as poll(2) reports POLLERR/POLLHUP regardless of the
// requested mask.
func (ev *Event) firedWhat(ready core.EventMask) What {
	if ev.what&EvSignal != 0 {
		return EvSignal
	}
	var w What
	if ev.what&EvRead != 0 && ready.Any(core.POLLIN|core.POLLPRI|core.POLLERR|core.POLLHUP|core.POLLNVAL) {
		w |= EvRead
	}
	if ev.what&EvWrite != 0 && ready.Any(core.POLLOUT|core.POLLERR|core.POLLHUP|core.POLLNVAL) {
		w |= EvWrite
	}
	return w
}

// Add arms the event: I/O interest is registered with the base's poller (all
// attached pollers under MirrorInterest), and a positive timeout arms the
// timer heap — EvTimeout fires if the conditions stay quiet that long. Zero
// (or Forever) means no timeout; pure timers require one. Re-adding a pending
// event just re-arms its timeout.
//
// Add takes effect at the next dispatch iteration: call it before Dispatch or
// from inside a callback (the loop recomputes its poll timeout after every
// batch). Arming a timer from outside the loop while a wait is already
// blocked does not shorten that wait — the new deadline is only considered
// once the wait returns.
func (ev *Event) Add(timeout core.Duration) error {
	b := ev.base
	if b.closed {
		return core.ErrClosed
	}
	if timeout == core.Forever {
		timeout = 0
	}
	if ev.timerOnly && timeout <= 0 {
		return fmt.Errorf("eventlib: a pure timer needs a positive timeout")
	}
	if !ev.added {
		if ev.what&EvSignal == 0 {
			if existing, dup := b.eventFor(ev.fd); dup && existing != ev {
				return fmt.Errorf("eventlib: descriptor %d already has an event", ev.fd)
			}
			for _, p := range b.registrationTargets() {
				if err := p.Add(ev.fd, ev.interestMask()); err != nil {
					return err
				}
			}
			// Bind the registration to this particular open of the descriptor
			// number, so a report still in flight for a previous open (which
			// carries the same raw fd) cannot fire this event's callback.
			ev.gen = 0
			if entry, ok := b.P.Get(ev.fd); ok {
				ev.gen = entry.Gen
			}
			b.setEvent(ev.fd, ev)
		} else if !ev.timerOnly {
			if existing, dup := b.eventFor(ev.fd); dup && existing != ev {
				return fmt.Errorf("eventlib: descriptor %d already has an event", ev.fd)
			}
			b.setEvent(ev.fd, ev)
		}
		ev.added = true
	}
	ev.timeout = timeout
	if timeout > 0 {
		ev.schedule(b.P.Now().Add(timeout))
	} else {
		b.timers.Cancel(ev)
	}
	return nil
}

// registrationTargets returns the pollers an interest registration applies
// to: all attached pollers under MirrorInterest, the active one otherwise.
func (b *Base) registrationTargets() []core.Poller {
	if b.cfg.MirrorInterest {
		return b.pollers
	}
	return []core.Poller{b.Poller()}
}

// schedule (re)arms the event's timer-wheel entry for the given deadline.
func (ev *Event) schedule(deadline core.Time) {
	ev.base.timers.Schedule(ev, deadline)
}

// Del disarms the event: poller interest is removed from every attached
// poller that tracks the descriptor (covering interests left behind on a
// previously active mechanism), the timer entry is cancelled, and any queued
// activation is discarded — deleting from inside a callback guarantees the
// event will not fire afterwards. Deleting a non-pending event is a no-op.
func (ev *Event) Del() error {
	b := ev.base
	if !ev.added {
		return nil
	}
	ev.added = false
	ev.activeWhat = 0
	b.timers.Cancel(ev)
	if !ev.timerOnly {
		b.clearEvent(ev.fd)
	}
	if ev.what&EvSignal == 0 {
		for _, p := range b.pollers {
			if p.Interested(ev.fd) {
				_ = p.Remove(ev.fd)
			}
		}
	}
	return nil
}

// The timer structure itself — a hierarchical timing wheel with exact
// (deadline, seq) pop order — lives in wheel.go.
